package quorumselect_test

import (
	"fmt"
	"time"

	qs "quorumselect"
)

// Example reproduces the README quick start: a simulated 4-process
// system tolerating one fault, where a single suspicion moves every
// correct process to the same new quorum.
func Example() {
	cfg := qs.MustConfig(4, 1)
	opts := qs.DefaultNodeOptions()
	opts.HeartbeatPeriod = 0 // suspicions injected manually below
	cluster := qs.NewSimulatedCluster(cfg, qs.ClusterOptions{Node: &opts})

	// p1's failure detector suspects p2 (e.g. an omitted message):
	cluster.Node(1).Selector.OnSuspected(qs.NewProcSet(2))
	cluster.Run(time.Second)

	quorum, agreed := cluster.Agreed()
	fmt.Println(agreed, quorum)
	// Output: true {p1,p3,p4}
}

// ExampleNewSimulatedFollowerCluster shows Follower Selection: a
// suspicion against the leader moves the whole system to the next
// leader's FOLLOWERS choice, while follower-follower suspicions are
// tolerated.
func ExampleNewSimulatedFollowerCluster() {
	cfg := qs.MustConfig(7, 2) // n > 3f required
	opts := qs.DefaultNodeOptions()
	opts.HeartbeatPeriod = 0
	cluster := qs.NewSimulatedFollowerCluster(cfg, qs.ClusterOptions{Node: &opts})

	cluster.Node(3).Selector.OnSuspected(qs.NewProcSet(1)) // p3 suspects the leader
	cluster.Run(time.Second)

	quorum, agreed := cluster.Agreed()
	fmt.Println(agreed, quorum.Leader)
	// Output: true p2
}

// ExampleNewXPaxosNode runs replicated state-machine commands through
// XPaxos composed with Quorum Selection on the simulator.
func ExampleNewXPaxosNode() {
	cfg := qs.MustConfig(4, 1)
	opts := qs.DefaultNodeOptions()
	opts.HeartbeatPeriod = 0

	// Build one node per process; the cluster helper is for plain
	// selection, so wire the replicas through the simulator directly.
	kv := qs.NewKVMachine()
	node1, replica1 := qs.NewXPaxosNode(qs.XPaxosOptions{SM: kv}, opts)
	nodes := map[qs.ProcessID]qs.RuntimeNode{1: node1}
	replicas := map[qs.ProcessID]*qs.XPaxosReplica{1: replica1}
	for _, p := range cfg.All()[1:] {
		node, replica := qs.NewXPaxosNode(qs.XPaxosOptions{}, opts)
		nodes[p] = node
		replicas[p] = replica
	}
	cluster := qs.NewSimulatedClusterOf(cfg, nodes, qs.ClusterOptions{})

	replica1.Submit(&qs.Request{Client: 1, Seq: 1, Op: []byte("set greeting hello")})
	cluster.RunUntil(func() bool { return replica1.LastExecuted() >= 1 }, time.Minute)

	v, _ := kv.Get("greeting")
	fmt.Println(v)
	// Output: hello
}
