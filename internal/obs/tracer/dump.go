package tracer

import (
	"encoding/json"
	"io"
	"os"
	"sync"

	"quorumselect/internal/obs"
)

// Dump is a flight-recorder snapshot: the reason it was taken, the
// retained spans, and the retained protocol events — everything needed
// to reconstruct the causal timeline leading up to a failure. Field
// order is part of the dump format; deterministic inputs (the chaos
// simulator) produce byte-identical dumps across replays.
type Dump struct {
	Reason        string      `json:"reason"`
	SpansDropped  uint64      `json:"spans_dropped"`
	EventsDropped uint64      `json:"events_dropped"`
	Spans         []Span      `json:"spans"`
	Events        []obs.Event `json:"events"`
}

// Capture snapshots the tracer and event bus (either may be nil).
func Capture(reason string, t *Tracer, bus *obs.Bus) Dump {
	d := Dump{Reason: reason}
	if t != nil {
		d.Spans = t.Spans()
		d.SpansDropped = t.Dropped()
	}
	if bus != nil {
		d.Events = bus.Events()
		d.EventsDropped = bus.Dropped()
	}
	return d
}

// JSON renders the dump as indented, deterministic JSON.
func (d Dump) JSON() []byte {
	out, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		// Dump holds only marshalable fields; this cannot fail.
		panic("tracer: dump marshal: " + err.Error())
	}
	return append(out, '\n')
}

// chromeEvent is one entry of the Chrome trace-event format (the
// JSON "traceEvents" array consumed by chrome://tracing and Perfetto).
type chromeEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat"`
	Ph   string     `json:"ph"`
	Ts   float64    `json:"ts"` // microseconds
	Dur  float64    `json:"dur,omitempty"`
	Pid  uint64     `json:"pid"` // node
	Tid  uint64     `json:"tid"` // trace
	S    string     `json:"s,omitempty"`
	Args chromeArgs `json:"args"`
}

type chromeArgs struct {
	Trace  uint64 `json:"trace,omitempty"`
	ID     uint64 `json:"id,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	Slot   uint64 `json:"slot,omitempty"`
	View   uint64 `json:"view,omitempty"`
	Detail string `json:"detail,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// Chrome renders the dump in the Chrome trace-event format: spans as
// complete ("X") events grouped by node (pid) and trace (tid), protocol
// events as instants ("i"). Load the output in Perfetto or
// chrome://tracing to see the per-node span timelines.
func (d Dump) Chrome() []byte {
	ct := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(d.Spans)+len(d.Events))}
	for _, s := range d.Spans {
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  "span",
			Ph:   "X",
			Ts:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			Pid:  uint64(s.Node),
			Tid:  s.Trace,
			Args: chromeArgs{Trace: s.Trace, ID: s.ID, Parent: s.Parent, Slot: s.Slot, View: s.View},
		})
	}
	for _, e := range d.Events {
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: e.Type.String(),
			Cat:  "event",
			Ph:   "i",
			Ts:   float64(e.At.Nanoseconds()) / 1e3,
			Pid:  uint64(e.Node),
			S:    "t", // thread-scoped instant
			Args: chromeArgs{Slot: e.Slot, View: e.View, Detail: e.Detail},
		})
	}
	out, err := json.MarshalIndent(ct, "", " ")
	if err != nil {
		panic("tracer: chrome marshal: " + err.Error())
	}
	return append(out, '\n')
}

// crashW receives flight-recorder dumps written on fail-stop paths
// (the host kernel's persist panic). Default: standard error, so a
// crashing replica leaves its timeline in the process log.
var (
	crashMu sync.Mutex
	crashW  io.Writer = os.Stderr
)

// SetCrashWriter redirects crash dumps (nil restores standard error).
// It returns the previous writer.
func SetCrashWriter(w io.Writer) io.Writer {
	crashMu.Lock()
	defer crashMu.Unlock()
	prev := crashW
	if w == nil {
		w = os.Stderr
	}
	crashW = w
	return prev
}

// WriteCrash captures a dump and writes it to the crash writer. It is
// called on paths that are about to panic, so it never fails loudly:
// a write error is ignored (the panic itself still reports the cause).
func WriteCrash(reason string, t *Tracer, bus *obs.Bus) {
	crashMu.Lock()
	defer crashMu.Unlock()
	_, _ = crashW.Write(Capture(reason, t, bus).JSON())
}
