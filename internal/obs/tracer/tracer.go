// Package tracer is the causal commit-path tracer: a bounded ring of
// spans recording where each client request / slot spent its time as it
// crossed the replica fleet (ingress buffering, leader propose,
// follower accept, WAL fsync, commit quorum, execution).
//
// Causality crosses processes through wire.TraceContext, piggybacked on
// protocol frames outside signature coverage: a span started with a
// remote parent context joins the remote trace, so the recorded spans
// of all nodes assemble into one tree per request batch.
//
// The tracer is clock-agnostic: callers stamp spans with their own
// runtime.Env clock (virtual in simulations, monotonic per host on
// TCP). Under the simulator all processes share one tracer and one
// virtual clock, so cross-node durations compare directly; on TCP each
// host records against its own monotonic origin and only the span
// *structure* (IDs, parents) is comparable across hosts.
//
// Span identifiers are node-prefixed sequence numbers — never wall
// time or global randomness — so a deterministic simulation produces
// byte-identical trace dumps across replays (the chaos flight
// recorder depends on this).
package tracer

import (
	"sync"
	"sync/atomic"
	"time"

	"quorumselect/internal/ids"
	"quorumselect/internal/wire"
)

// DefaultCapacity bounds the span ring when New is given no capacity:
// enough for the recent history of a busy fleet without unbounded
// growth. The ring holds pointers (span names), so its size is GC scan
// work on every cycle — keep it modest, and grow it lazily (see
// record) so idle or lightly-traced processes never pay for the cap.
const DefaultCapacity = 4096

// nodeShift positions the node identifier above the per-node sequence
// number in span IDs. 40 bits of sequence keep IDs unique for ~10^12
// spans per node while node IDs up to 2^13 keep the full ID inside
// float64-exact integer range (Chrome trace viewers parse JSON
// numbers).
const nodeShift = 40

// Span is one recorded stage of a trace. Start and Dur are durations
// on the *recording node's* clock domain (see the package comment).
// JSON field order and omitempty choices are part of the flight-dump
// format; golden tests pin them.
type Span struct {
	Trace  uint64        `json:"trace"`
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"`
	Node   ids.ProcessID `json:"node"`
	Name   string        `json:"name"`
	Start  time.Duration `json:"start"`
	Dur    time.Duration `json:"dur"`
	Slot   uint64        `json:"slot,omitempty"`
	View   uint64        `json:"view,omitempty"`
}

// Context returns the trace context that parents a child span on this
// span.
func (s Span) Context() wire.TraceContext {
	return wire.TraceContext{Trace: s.Trace, Span: s.ID}
}

// Tracer records completed spans into a bounded ring, keeping the most
// recent ones. All methods are safe for concurrent use (the /trace
// endpoint reads while the event loop records) and safe on a nil
// receiver: a nil *Tracer is the disabled tracer and records nothing.
type Tracer struct {
	disabled atomic.Bool

	mu    sync.Mutex
	ring  []Span
	limit int    // retention bound; the ring grows lazily up to it
	next  int    // ring write cursor once full
	total uint64 // spans ever recorded
	seq   map[ids.ProcessID]uint64
}

// New creates a tracer retaining the last capacity spans
// (DefaultCapacity if capacity <= 0). The ring's backing storage is
// not allocated up front: it doubles as needed up to the bound, so a
// tracer that records little costs little — in memory and, since the
// ring is live GC-scanned state, in collector time.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{
		limit: capacity,
		seq:   make(map[ids.ProcessID]uint64),
	}
}

// SetEnabled turns span recording on or off at runtime (a tracer
// starts enabled). While disabled the tracer behaves like the nil
// tracer — Start returns an inert Active — at the cost of one atomic
// load per Start, so tracing can be toggled on a live node without
// re-plumbing anything. Spans already open when recording is disabled
// still record on End. Safe on a nil receiver.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.disabled.Store(!on)
	}
}

// Enabled reports whether Start currently records spans.
func (t *Tracer) Enabled() bool { return t != nil && !t.disabled.Load() }

// Active is an open span: started, not yet recorded. The zero Active
// (from a nil or disabled tracer) is inert — Context returns the
// untraced zero context and End records nothing — so protocol code
// traces unconditionally.
type Active struct {
	t *Tracer
	s Span
}

// Start opens a span on node at time at. A zero parent context starts
// a new trace rooted at this span; otherwise the span joins the
// parent's trace. Nothing is recorded until End.
func (t *Tracer) Start(node ids.ProcessID, name string, parent wire.TraceContext, at time.Duration) Active {
	if t == nil || t.disabled.Load() {
		return Active{}
	}
	t.mu.Lock()
	t.seq[node]++
	id := uint64(node)<<nodeShift | (t.seq[node] & (1<<nodeShift - 1))
	t.mu.Unlock()
	s := Span{ID: id, Node: node, Name: name, Start: at}
	if parent.Zero() {
		s.Trace = id
	} else {
		s.Trace = parent.Trace
		s.Parent = parent.Span
	}
	return Active{t: t, s: s}
}

// Instant records a zero-duration span immediately (e.g. a message
// arrival), returning it.
func (t *Tracer) Instant(node ids.ProcessID, name string, parent wire.TraceContext, at time.Duration) Span {
	a := t.Start(node, name, parent, at)
	a.End(at)
	return a.s
}

// Traced reports whether the span will be recorded.
func (a Active) Traced() bool { return a.t != nil }

// Context returns the context a child span or outgoing frame should
// carry. Valid before End — the span's identity is fixed at Start.
func (a Active) Context() wire.TraceContext {
	if a.t == nil {
		return wire.TraceContext{}
	}
	return a.s.Context()
}

// SetSlot tags the span with a consensus slot.
func (a *Active) SetSlot(slot uint64) { a.s.Slot = slot }

// SetView tags the span with a view number.
func (a *Active) SetView(view uint64) { a.s.View = view }

// End records the span with the duration from Start to at (clamped to
// zero if the clock moved backwards across a restart).
func (a Active) End(at time.Duration) {
	if a.t == nil {
		return
	}
	if at > a.s.Start {
		a.s.Dur = at - a.s.Start
	}
	a.t.record(a.s)
}

func (t *Tracer) record(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) == cap(t.ring) && cap(t.ring) < t.limit {
		// Grow geometrically, clamped to the retention bound so the
		// GC never scans more backing array than the bound allows.
		grown := 2 * cap(t.ring)
		if grown == 0 {
			grown = 64
		}
		if grown > t.limit {
			grown = t.limit
		}
		next := make([]Span, len(t.ring), grown)
		copy(next, t.ring)
		t.ring = next
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.next = (t.next + 1) % len(t.ring)
	}
	t.total++
}

// Spans returns the retained spans in recording order (oldest first).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Of returns the retained spans of one trace, in recording order.
func (t *Tracer) Of(trace uint64) []Span {
	all := t.Spans()
	out := all[:0]
	for _, s := range all {
		if s.Trace == trace {
			out = append(out, s)
		}
	}
	return out
}

// Total returns how many spans were ever recorded.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many spans the ring has evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(len(t.ring))
}
