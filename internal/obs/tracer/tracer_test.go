package tracer

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"quorumselect/internal/ids"
	"quorumselect/internal/wire"
)

func TestSpanTreeBasics(t *testing.T) {
	tr := New(8)
	root := tr.Start(3, "ingress", wire.TraceContext{}, 10*time.Millisecond)
	if root.Context().Trace != root.Context().Span {
		t.Errorf("root trace %#x != span %#x", root.Context().Trace, root.Context().Span)
	}
	child := tr.Start(3, "propose", root.Context(), 12*time.Millisecond)
	child.SetSlot(7)
	child.SetView(2)
	child.End(15 * time.Millisecond)
	root.End(20 * time.Millisecond)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	// Recording order is End order: the child closed first.
	c, r := spans[0], spans[1]
	if c.Name != "propose" || r.Name != "ingress" {
		t.Fatalf("unexpected recording order: %q, %q", c.Name, r.Name)
	}
	if c.Trace != r.ID || c.Parent != r.ID {
		t.Errorf("child not parented on root: %+v vs root %+v", c, r)
	}
	if c.Slot != 7 || c.View != 2 {
		t.Errorf("slot/view tags lost: %+v", c)
	}
	if c.Dur != 3*time.Millisecond || r.Dur != 10*time.Millisecond {
		t.Errorf("durations: child %v (want 3ms), root %v (want 10ms)", c.Dur, r.Dur)
	}
}

func TestNodePrefixedIDsNeverCollide(t *testing.T) {
	tr := New(64)
	seen := make(map[uint64]bool)
	for node := 1; node <= 4; node++ {
		for i := 0; i < 10; i++ {
			a := tr.Start(ids.ProcessID(node), "s", wire.TraceContext{}, 0)
			if seen[a.Context().Span] {
				t.Fatalf("duplicate span ID %#x", a.Context().Span)
			}
			seen[a.Context().Span] = true
			a.End(0)
		}
	}
}

func TestRingEvictionAndDropped(t *testing.T) {
	tr := New(4)
	for i := 1; i <= 10; i++ {
		tr.Instant(1, "e", wire.TraceContext{}, time.Duration(i))
	}
	if got := tr.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want 4", len(spans))
	}
	// Oldest-first: the last four recorded instants in order.
	for i, s := range spans {
		if want := time.Duration(i + 7); s.Start != want {
			t.Errorf("span %d start = %v, want %v (eviction order broken)", i, s.Start, want)
		}
	}
}

func TestBackwardsClockClampsToZero(t *testing.T) {
	tr := New(4)
	a := tr.Start(1, "s", wire.TraceContext{}, 10*time.Millisecond)
	a.End(5 * time.Millisecond) // restarted clock
	if d := tr.Spans()[0].Dur; d != 0 {
		t.Errorf("backwards clock produced duration %v, want 0", d)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	a := tr.Start(1, "s", wire.TraceContext{}, 0)
	if a.Traced() {
		t.Error("nil tracer returned a traced Active")
	}
	if !a.Context().Zero() {
		t.Error("nil tracer's context is not zero")
	}
	a.SetSlot(1)
	a.SetView(1)
	a.End(time.Second) // must not panic
	tr.Instant(1, "i", wire.TraceContext{}, 0)
	if tr.Spans() != nil || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer is not empty")
	}
}

func TestOfFiltersByTrace(t *testing.T) {
	tr := New(16)
	a := tr.Start(1, "a", wire.TraceContext{}, 0)
	b := tr.Start(2, "b", wire.TraceContext{}, 0)
	tr.Instant(1, "a.child", a.Context(), 1)
	tr.Instant(2, "b.child", b.Context(), 1)
	a.End(2)
	b.End(2)
	got := tr.Of(a.Context().Trace)
	if len(got) != 2 {
		t.Fatalf("Of returned %d spans, want 2", len(got))
	}
	for _, s := range got {
		if s.Node != 1 {
			t.Errorf("trace A contains span from node %s", s.Node)
		}
	}
}

func TestCaptureNilSafety(t *testing.T) {
	d := Capture("empty", nil, nil)
	if d.Reason != "empty" || len(d.Spans) != 0 || len(d.Events) != 0 {
		t.Errorf("Capture(nil, nil) = %+v", d)
	}
	var dump Dump
	if err := json.Unmarshal(d.JSON(), &dump); err != nil {
		t.Fatalf("dump JSON does not round-trip: %v", err)
	}
	var ct struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(d.Chrome(), &ct); err != nil {
		t.Fatalf("chrome export does not parse: %v", err)
	}
	if ct.TraceEvents == nil {
		t.Error("chrome export omits traceEvents array")
	}
}

func TestSetCrashWriter(t *testing.T) {
	var buf bytes.Buffer
	prev := SetCrashWriter(&buf)
	defer SetCrashWriter(prev)
	tr := New(4)
	tr.Instant(2, "doomed", wire.TraceContext{}, time.Millisecond)
	WriteCrash("test crash", tr, nil)
	var d Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("crash dump does not parse: %v", err)
	}
	if d.Reason != "test crash" || len(d.Spans) != 1 || d.Spans[0].Name != "doomed" {
		t.Errorf("crash dump = %+v", d)
	}
}

// TestConcurrentStorm hammers one tracer from writers and readers at
// once; run under -race this pins the locking contract the /trace
// endpoint and multi-host TCP deployments rely on.
func TestConcurrentStorm(t *testing.T) {
	tr := New(128)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 1; w <= 4; w++ {
		writers.Add(1)
		go func(node ids.ProcessID) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				a := tr.Start(node, "storm", wire.TraceContext{}, time.Duration(i))
				a.SetSlot(uint64(i))
				tr.Instant(node, "storm.instant", a.Context(), time.Duration(i))
				a.End(time.Duration(i + 1))
			}
		}(ids.ProcessID(w))
	}
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = tr.Spans()
					_ = tr.Dropped()
					_ = Capture("storm", tr, nil).JSON()
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if got := tr.Total(); got != 4*500*2 {
		t.Errorf("Total = %d, want %d", got, 4*500*2)
	}
	if got := len(tr.Spans()); got != 128 {
		t.Errorf("ring len = %d, want 128", got)
	}
}
