package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBusSequenceAndSince(t *testing.T) {
	b := NewBus(8)
	for i := 0; i < 5; i++ {
		seq := b.Publish(Event{Type: TypeSuspected, Node: 1})
		if seq != uint64(i+1) {
			t.Fatalf("Publish #%d returned seq %d", i+1, seq)
		}
	}
	if b.Total() != 5 || b.Len() != 5 || b.Dropped() != 0 {
		t.Fatalf("total=%d len=%d dropped=%d", b.Total(), b.Len(), b.Dropped())
	}
	ev, missed := b.Since(2)
	if missed != 0 || len(ev) != 3 || ev[0].Seq != 3 || ev[2].Seq != 5 {
		t.Fatalf("Since(2) = %v (missed %d)", ev, missed)
	}
	if ev, _ := b.Since(5); ev != nil {
		t.Fatalf("Since(latest) = %v, want empty", ev)
	}
	if ev, _ := b.Since(99); ev != nil {
		t.Fatalf("Since(future) = %v, want empty", ev)
	}
}

func TestBusRingEviction(t *testing.T) {
	b := NewBus(4)
	for i := 1; i <= 10; i++ {
		b.Publish(Event{Type: TypeExpect, Slot: uint64(i)})
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4", b.Len())
	}
	if b.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", b.Dropped())
	}
	ev, missed := b.Since(0)
	if missed != 6 {
		t.Fatalf("missed = %d, want 6", missed)
	}
	if len(ev) != 4 || ev[0].Seq != 7 || ev[3].Seq != 10 {
		t.Fatalf("events = %v", ev)
	}
	// Partial catch-up inside the retained window.
	ev, missed = b.Since(8)
	if missed != 0 || len(ev) != 2 || ev[0].Seq != 9 {
		t.Fatalf("Since(8) = %v (missed %d)", ev, missed)
	}
}

func TestBusOfTypeAndString(t *testing.T) {
	b := NewBus(16)
	b.Publish(Event{Type: TypeSuspected, Node: 1, Subject: 4})
	b.Publish(Event{Type: TypeQuorumChange, Node: 1, Epoch: 2, Detail: "{p1,p3,p4}"})
	b.Publish(Event{Type: TypeSuspected, Node: 2, Subject: 4})
	if got := len(b.OfType(TypeSuspected)); got != 2 {
		t.Errorf("OfType(SUSPECTED) = %d, want 2", got)
	}
	s := b.OfType(TypeQuorumChange)[0].String()
	for _, want := range []string{"QUORUM_CHANGE", "epoch=2", "{p1,p3,p4}"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestEventJSON(t *testing.T) {
	e := Event{Seq: 3, At: 5 * time.Millisecond, Node: 2, Type: TypeDetected, Subject: 4}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"type":"DETECTED"`, `"seq":3`, `"subject":4`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON %s missing %s", s, want)
		}
	}
	if strings.Contains(s, "view") || strings.Contains(s, "detail") {
		t.Errorf("JSON %s should omit zero optional fields", s)
	}
}

// TestBusConcurrency hammers Publish/Since/Dropped from multiple
// goroutines; meaningful under -race.
func TestBusConcurrency(t *testing.T) {
	b := NewBus(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.Publish(Event{Type: TypeExpect, Node: 1})
				if i%50 == 0 {
					_, _ = b.Since(uint64(i))
					_ = b.Dropped()
					_ = b.Events()
				}
			}
		}()
	}
	wg.Wait()
	if b.Total() != 8000 {
		t.Fatalf("Total = %d, want 8000", b.Total())
	}
	if b.Len() != 128 || b.Dropped() != 8000-128 {
		t.Fatalf("len=%d dropped=%d", b.Len(), b.Dropped())
	}
}
