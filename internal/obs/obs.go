// Package obs is the typed protocol event bus: a bounded, concurrency-
// safe ring of structured events covering the paper's module interface
// (EXPECT / SUSPECTED / DETECTED / CANCEL), quorum changes, view
// changes, checkpoints and epoch advances.
//
// Where the trace package captures free-form log lines, obs events are
// typed records with stable fields, so frontends can serve them over
// HTTP (`GET /events?since=`) and experiments can assert on protocol
// phases without grepping log text. Every event gets a monotonically
// increasing sequence number; the ring bounds memory, and overwritten
// events are accounted in Dropped().
package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"quorumselect/internal/ids"
)

// Type classifies a protocol event.
type Type uint8

// Event types, mapping the paper's interface events plus the phase
// transitions the observability layer times.
const (
	// TypeExpect is the failure detector's ⟨EXPECT, P, i⟩.
	TypeExpect Type = iota + 1
	// TypeSuspected is a new suspicion: ⟨SUSPECTED, S⟩ grew.
	TypeSuspected
	// TypeSuspicionCleared is a suspicion canceled by a late matching
	// message (eventual strong accuracy in action).
	TypeSuspicionCleared
	// TypeDetected is the application's ⟨DETECTED, i⟩: permanent.
	TypeDetected
	// TypeCancel is ⟨CANCEL⟩ / per-scope expectation cancellation.
	TypeCancel
	// TypeQuorumChange is the selector's ⟨QUORUM, Q⟩.
	TypeQuorumChange
	// TypeViewChangeStart marks a replica entering a view change.
	TypeViewChangeStart
	// TypeViewChangeEnd marks the new view installed.
	TypeViewChangeEnd
	// TypeCheckpoint marks a stable checkpoint taken.
	TypeCheckpoint
	// TypeEpochAdvance marks a suspicion-store epoch advance.
	TypeEpochAdvance
	// TypeLifecycle marks a replica-host lifecycle transition (running,
	// stopped); Detail carries the new state.
	TypeLifecycle
	// TypeLoadPhase marks a workload-generator phase transition (warmup,
	// steady, fault, drain); Detail carries the phase name. Emitted by
	// harnesses driving open-loop load so protocol events in a trace can
	// be read against what the workload was doing at the time.
	TypeLoadPhase
)

var typeNames = map[Type]string{
	TypeExpect:           "EXPECT",
	TypeSuspected:        "SUSPECTED",
	TypeSuspicionCleared: "SUSPICION_CLEARED",
	TypeDetected:         "DETECTED",
	TypeCancel:           "CANCEL",
	TypeQuorumChange:     "QUORUM_CHANGE",
	TypeViewChangeStart:  "VIEW_CHANGE_START",
	TypeViewChangeEnd:    "VIEW_CHANGE_END",
	TypeCheckpoint:       "CHECKPOINT",
	TypeEpochAdvance:     "EPOCH_ADVANCE",
	TypeLifecycle:        "LIFECYCLE",
	TypeLoadPhase:        "LOAD_PHASE",
}

// String returns the stable wire name of the type.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE(%d)", uint8(t))
}

// MarshalJSON encodes the type as its stable name.
func (t Type) MarshalJSON() ([]byte, error) { return json.Marshal(t.String()) }

// Event is one structured protocol event. Zero-valued optional fields
// are omitted from JSON.
type Event struct {
	// Seq is the bus-assigned sequence number, monotonically increasing
	// from 1.
	Seq uint64 `json:"seq"`
	// At is the emitting process's clock (virtual in simulations, time
	// since host start on TCP), in nanoseconds on the wire.
	At time.Duration `json:"at"`
	// Node is the emitting process.
	Node ids.ProcessID `json:"node"`
	// Type classifies the event.
	Type Type `json:"type"`
	// Subject is the process the event is about (the expected sender,
	// the suspected/detected process), when there is one.
	Subject ids.ProcessID `json:"subject,omitempty"`
	// View is the XPaxos view, for view-change events.
	View uint64 `json:"view,omitempty"`
	// Epoch is the suspicion-store epoch, for quorum/epoch events.
	Epoch uint64 `json:"epoch,omitempty"`
	// Slot is the log slot, for checkpoint events.
	Slot uint64 `json:"slot,omitempty"`
	// Detail is free-form context (quorum membership, scope tags, ...).
	Detail string `json:"detail,omitempty"`
}

// String renders the event as a timeline row.
func (e Event) String() string {
	s := fmt.Sprintf("%10s %s %-17s", e.At, e.Node, e.Type)
	if e.Subject != 0 {
		s += " subject=" + e.Subject.String()
	}
	if e.View != 0 {
		s += fmt.Sprintf(" view=%d", e.View)
	}
	if e.Epoch != 0 {
		s += fmt.Sprintf(" epoch=%d", e.Epoch)
	}
	if e.Slot != 0 {
		s += fmt.Sprintf(" slot=%d", e.Slot)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// DefaultCapacity is the ring size used when none is given: enough for
// the live deployment's /events window without risking OOM on long
// runs.
const DefaultCapacity = 65536

// Bus is a bounded ring of events, safe for concurrent use.
type Bus struct {
	mu    sync.Mutex
	buf   []Event
	total uint64 // events ever published; the latest event's Seq
}

// NewBus returns a bus storing up to capacity events; capacity <= 0
// selects DefaultCapacity.
func NewBus(capacity int) *Bus {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Bus{buf: make([]Event, capacity)}
}

// Publish assigns the event's sequence number and stores it, evicting
// the oldest event once the ring is full. It returns the assigned
// sequence number.
func (b *Bus) Publish(e Event) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.total++
	e.Seq = b.total
	b.buf[int((b.total-1)%uint64(len(b.buf)))] = e
	return e.Seq
}

// Total returns how many events were ever published (the latest Seq).
func (b *Bus) Total() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Len returns how many events are currently retained.
func (b *Bus) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return int(b.retained())
}

// Dropped returns how many events have been evicted from the ring.
func (b *Bus) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total - b.retained()
}

// retained returns the number of events still in the ring (mu held).
func (b *Bus) retained() uint64 {
	if b.total < uint64(len(b.buf)) {
		return b.total
	}
	return uint64(len(b.buf))
}

// Since returns a copy of every retained event with Seq > seq, in
// sequence order, plus the count of matching events already evicted
// (non-zero when the caller fell behind the ring).
func (b *Bus) Since(seq uint64) (events []Event, missed uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	oldest := b.total - b.retained() + 1 // seq of the oldest retained event
	if b.total == 0 || seq >= b.total {
		return nil, 0
	}
	start := seq + 1
	if start < oldest {
		missed = oldest - start
		start = oldest
	}
	events = make([]Event, 0, b.total-start+1)
	for s := start; s <= b.total; s++ {
		events = append(events, b.buf[int((s-1)%uint64(len(b.buf)))])
	}
	return events, missed
}

// Events returns every retained event in sequence order.
func (b *Bus) Events() []Event {
	ev, _ := b.Since(0)
	return ev
}

// OfType returns the retained events of the given type, in order.
func (b *Bus) OfType(t Type) []Event {
	var out []Event
	for _, e := range b.Events() {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}
