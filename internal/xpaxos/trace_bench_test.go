package xpaxos_test

import (
	"strings"
	"testing"
	"time"

	"quorumselect/internal/obs/tracer"
	"quorumselect/internal/sim"
	"quorumselect/internal/wire"
	"quorumselect/internal/xpaxos"
)

// BenchmarkXPaxosTracedThroughput measures what span recording costs on
// the committed-request path at batch 32. The workload runs fully
// traced; the overhead is then computed as
//
//	overhead_pct = spans/req × ns/span ÷ ns/req × 100
//
// from the ACTUAL span count of the run and the per-span recording
// cost measured on the same, still-warm tracer (full ring — the
// steady-state eviction path). This decomposition is deliberate:
// differencing two wall-clock runs (traced vs untraced) cannot resolve
// an effect this small — A/A probes of paired-chunk designs on a
// 1-CPU machine show 5-30% artifacts from GC phase and memory-layout
// luck, while the real tracing cost is ~0.5 span per request at ~100ns
// per span, three orders of magnitude below the noise floor. The
// product of measured span rate and measured span cost is a direct
// upper bound on tracing's share of the commit path and is stable
// run-to-run. benchjson lifts overhead_pct into trace.overhead.*; the
// acceptance bar for the tracing layer is ≤5% at batch 32.
func BenchmarkXPaxosTracedThroughput(b *testing.B) {
	b.Run("batch=32", func(b *testing.B) {
		tr := tracer.New(0)
		c := newBatchClusterOpts(b, 4, 1, xpaxos.Options{
			BatchSize:       32,
			MaxBatchLatency: time.Millisecond,
		}, quietNodeOpts(), sim.Options{Tracer: tr})
		b.ResetTimer()
		c.submitAll(b.N)
		c.runUntilExecuted(b, b.N)
		b.StopTimer()

		nsPerReq := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		spansPerReq := float64(tr.Total()) / float64(b.N)
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
		b.ReportMetric(spansPerReq, "spans/req")

		// Per-span cost on the workload's own tracer, ring at capacity.
		const probe = 1 << 17
		parent := tr.Start(1, "probe.root", wire.TraceContext{}, 0)
		start := time.Now()
		for i := 0; i < probe; i++ {
			a := tr.Start(2, "probe", parent.Context(), time.Duration(i))
			a.SetSlot(uint64(i))
			a.End(time.Duration(i + 1))
		}
		nsPerSpan := float64(time.Since(start).Nanoseconds()) / probe
		b.ReportMetric(nsPerSpan, "ns/span")
		if nsPerReq > 0 {
			b.ReportMetric(100*spansPerReq*nsPerSpan/nsPerReq, "overhead_pct")
		}
	})
}

// BenchmarkXPaxosCommitPathStages runs a traced batch-32 workload and
// reports where the commit path spends its (virtual) time, as the
// percentage share of each recorded stage. benchjson lifts the pct.*
// metrics into commit_path.stage_pct.* in the JSON report.
func BenchmarkXPaxosCommitPathStages(b *testing.B) {
	tr := tracer.New(1 << 16)
	c := newBatchClusterOpts(b, 4, 1, xpaxos.Options{
		BatchSize:       32,
		MaxBatchLatency: time.Millisecond,
	}, quietNodeOpts(), sim.Options{Tracer: tr})
	b.ResetTimer()
	c.submitAll(b.N)
	c.runUntilExecuted(b, b.N)
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")

	totals := make(map[string]time.Duration)
	var sum time.Duration
	for _, s := range tr.Spans() {
		switch s.Name {
		case "ingress", "propose", "accept", "quorum", "execute", "wal.sync":
			totals[s.Name] += s.Dur
			sum += s.Dur
		}
	}
	if sum <= 0 {
		b.Fatal("traced run recorded no stage time")
	}
	for name, d := range totals {
		b.ReportMetric(100*float64(d)/float64(sum), "pct."+strings.ReplaceAll(name, ".", "_"))
	}
}

// BenchmarkTracerSpan is the microbenchmark under the macro numbers:
// the cost of one start/tag/end cycle on the bounded ring.
func BenchmarkTracerSpan(b *testing.B) {
	tr := tracer.New(0)
	parent := tr.Start(1, "parent", wire.TraceContext{}, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := tr.Start(2, "bench", parent.Context(), time.Duration(i))
		a.SetSlot(uint64(i))
		a.End(time.Duration(i + 1))
	}
}
