package xpaxos_test

import (
	"fmt"
	"testing"
	"time"

	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/xpaxos"
)

// TestInitialViewStaggersLeader pins the fleet's leader-staggering
// lever: a group configured with a non-zero InitialView starts in that
// view — no view change — with the enumeration quorum of that view
// active, and commits normally under its leader.
func TestInitialViewStaggersLeader(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	leader := ids.ProcessID(2)
	view, ok := xpaxos.FirstViewLedBy(cfg, leader)
	if !ok {
		t.Fatal("no view led by p2 in the n=4 enumeration")
	}
	if view == 0 {
		t.Fatal("p2's first view is 0; the test needs a non-zero stagger")
	}
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	replicas := make(map[ids.ProcessID]*xpaxos.Replica, cfg.N)
	for _, p := range cfg.All() {
		node, replica := xpaxos.NewQSNode(xpaxos.Options{InitialView: view}, quietNodeOpts())
		nodes[p] = node
		replicas[p] = replica
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{})
	defer net.Close()

	if got := replicas[1].Leader(); got != leader {
		t.Fatalf("initial leader %s, want %s", got, leader)
	}
	if v := replicas[1].View(); v != view {
		t.Fatalf("initial view %d, want %d", v, view)
	}
	for i := 1; i <= 5; i++ {
		replicas[leader].Submit(req(7, uint64(i), fmt.Sprintf("set k%d v%d", i, i)))
	}
	net.Run(2 * time.Second)
	for _, p := range replicas[leader].ActiveQuorum().Members {
		if got := replicas[p].LastExecuted(); got != 5 {
			t.Errorf("%s executed %d slots, want 5", p, got)
		}
	}
	if vc := replicas[leader].ViewChanges(); vc != 0 {
		t.Errorf("%d view changes during a staggered-start commit run", vc)
	}
}
