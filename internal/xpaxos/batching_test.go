package xpaxos_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"quorumselect/internal/chaos"
	"quorumselect/internal/core"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/wire"
	"quorumselect/internal/xpaxos"
)

// batchCluster builds an n-process XPaxos-on-QS simulation with the
// given replica options (the plain fixture hard-codes defaults).
type batchCluster struct {
	net      *sim.Network
	replicas map[ids.ProcessID]*xpaxos.Replica
}

func newBatchCluster(tb testing.TB, n, f int, xopts xpaxos.Options) *batchCluster {
	return newBatchClusterOpts(tb, n, f, xopts, quietNodeOpts(), sim.Options{})
}

func newBatchClusterOpts(tb testing.TB, n, f int, xopts xpaxos.Options, nodeOpts core.NodeOptions, simOpts sim.Options) *batchCluster {
	tb.Helper()
	cfg := ids.MustConfig(n, f)
	nodes := make(map[ids.ProcessID]runtime.Node, n)
	c := &batchCluster{replicas: make(map[ids.ProcessID]*xpaxos.Replica, n)}
	for _, p := range cfg.All() {
		node, replica := xpaxos.NewQSNode(xopts, nodeOpts)
		c.replicas[p] = replica
		nodes[p] = node
	}
	c.net = sim.NewNetwork(cfg, nodes, simOpts)
	return c
}

func (c *batchCluster) submitAll(total int) {
	c.submitRange(1, total)
}

// submitRange submits requests from..to (inclusive, 1-based) of the
// standard workload, so callers can feed the cluster incrementally.
func (c *batchCluster) submitRange(from, to int) {
	for i := from; i <= to; i++ {
		c.replicas[1].Submit(req(uint64(1+i%3), uint64(1+(i-1)/3), fmt.Sprintf("set k%d v%d", i, i)))
	}
}

func (c *batchCluster) runUntilExecuted(tb testing.TB, total int) {
	tb.Helper()
	ok := c.net.RunUntil(func() bool {
		for _, p := range []ids.ProcessID{1, 2, 3} {
			if len(c.replicas[p].Executions()) < total {
				return false
			}
		}
		return true
	}, 60*time.Second)
	if !ok {
		tb.Fatalf("cluster stalled: leader executed %d/%d requests",
			len(c.replicas[1].Executions()), total)
	}
}

// TestBatchingEquivalence commits the same workload unbatched (batch
// size 1, the seed proposal path) and batched (32), and requires the
// replicated request streams to be identical: same requests, same
// relative order, same results, on every quorum member. Batching may
// change slot boundaries but must never change the replicated history.
func TestBatchingEquivalence(t *testing.T) {
	const total = 24
	run := func(batch int) *batchCluster {
		c := newBatchCluster(t, 4, 1, xpaxos.Options{
			BatchSize:       batch,
			MaxBatchLatency: 2 * time.Millisecond,
		})
		c.submitAll(total)
		c.runUntilExecuted(t, total)
		return c
	}
	unbatched := run(1)
	batched := run(32)

	// Every quorum member of each run agrees with its own leader.
	for _, c := range []*batchCluster{unbatched, batched} {
		lead := c.replicas[1].Executions()
		for _, p := range []ids.ProcessID{2, 3} {
			other := c.replicas[p].Executions()
			if len(other) != len(lead) {
				t.Fatalf("%s executed %d requests, leader %d", p, len(other), len(lead))
			}
			for i := range lead {
				if lead[i].Slot != other[i].Slot || !bytes.Equal(lead[i].Op, other[i].Op) {
					t.Fatalf("%s diverges at %d: %v vs %v", p, i, other[i], lead[i])
				}
			}
		}
	}

	// Batched and unbatched histories carry the same requests in the
	// same order with the same results; only slot numbering may differ.
	a, b := unbatched.replicas[1].Executions(), batched.replicas[1].Executions()
	if len(a) != total || len(b) != total {
		t.Fatalf("executed %d unbatched vs %d batched, want %d", len(a), len(b), total)
	}
	for i := range a {
		if a[i].Client != b[i].Client || a[i].Seq != b[i].Seq ||
			!bytes.Equal(a[i].Op, b[i].Op) || !bytes.Equal(a[i].Result, b[i].Result) {
			t.Fatalf("histories diverge at %d: unbatched %v (%q) vs batched %v (%q)",
				i, a[i], a[i].Result, b[i], b[i].Result)
		}
	}

	// The batched run must actually have batched: far fewer PREPAREs
	// (one per slot, many requests per slot).
	up := unbatched.net.Metrics().Counter("msg.sent.PREPARE")
	bp := batched.net.Metrics().Counter("msg.sent.PREPARE")
	if bp >= up {
		t.Errorf("batched run sent %d PREPAREs, unbatched %d: batching had no effect", bp, up)
	}
}

// exemptClientPath passes client-facing frames (REQUEST forwards and
// ingress BATCH gossip) through untouched and applies the inner chaos
// schedule to everything else. Client requests are submitted exactly
// once and never retransmitted, so dropping them would turn the
// differential test into a test of client retry logic the repo does not
// model; protocol traffic (PREPARE, COMMIT, view changes, heartbeats)
// takes the full schedule.
type exemptClientPath struct{ inner sim.Filter }

func (e exemptClientPath) Filter(from, to ids.ProcessID, m wire.Message, now time.Duration) sim.Verdict {
	switch m.Kind() {
	case wire.TypeRequest, wire.TypeBatch:
		return sim.Verdict{}
	}
	return e.inner.Filter(from, to, m, now)
}

// chaosSeeds picks the first want seeds whose generated schedule leaves
// process 1 — the submission target and initial leader — correct, so
// every submitted request stays recoverable via that replica's log.
func chaosSeeds(cfg ids.Config, classes []chaos.FaultClass, want int) []int64 {
	var seeds []int64
	for seed := int64(1); len(seeds) < want && seed < 200; seed++ {
		sc := chaos.GenerateScenario(cfg, seed, classes, false, 4*time.Second)
		if !sc.Faulty.Contains(1) {
			seeds = append(seeds, seed)
		}
	}
	return seeds
}

// TestBatchingEquivalenceUnderChaos is the adversarial version of
// TestBatchingEquivalence: the same chaos-generated drop/delay/
// duplication schedule is replayed against batch sizes 1, 8, and 32,
// and all three runs must commit the identical request stream — same
// requests, same order, same results. Message loss may change slot
// boundaries, trigger view changes, and force re-proposals, but it must
// never change the replicated history.
func TestBatchingEquivalenceUnderChaos(t *testing.T) {
	classes := []chaos.FaultClass{
		chaos.FaultOmission, chaos.FaultBurst, chaos.FaultTiming,
		chaos.FaultIncreasingTiming, chaos.FaultDuplicate,
	}
	cfg := ids.MustConfig(4, 1)
	const total = 18

	for _, seed := range chaosSeeds(cfg, classes, 3) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			run := func(batch int) []xpaxos.Execution {
				// Filters are stateful (omission counters, burst clocks):
				// regenerate the schedule for every run.
				sc := chaos.GenerateScenario(cfg, seed, classes, false, 4*time.Second)
				// Heartbeats stay on (unlike the quiet fixture): they are
				// the traffic the fault schedule mostly acts on, and they
				// drive the suspicions that make quorums move mid-run.
				c := newBatchClusterOpts(t, 4, 1, xpaxos.Options{
					BatchSize:       batch,
					MaxBatchLatency: 2 * time.Millisecond,
				}, core.DefaultNodeOptions(), sim.Options{
					Seed:   seed,
					Filter: exemptClientPath{inner: sc.Filter},
				})
				// Spread submissions across the fault windows — submitted
				// all at once they would commit before the first window
				// opens and the schedule would never touch the run.
				gap := 4 * time.Second / time.Duration(total+1)
				for i := 1; i <= total; i++ {
					i := i
					c.net.At(time.Duration(i)*gap, func() {
						c.replicas[1].Submit(req(uint64(1+i%3), uint64(1+(i-1)/3), fmt.Sprintf("set k%d v%d", i, i)))
					})
				}
				ok := c.net.RunUntil(func() bool {
					return len(c.replicas[1].Executions()) >= total
				}, 60*time.Second)
				if !ok {
					t.Fatalf("batch=%d stalled: %d/%d executed under schedule %v",
						batch, len(c.replicas[1].Executions()), total, sc.Desc)
				}
				return c.replicas[1].Executions()
			}

			ref := run(1)
			if len(ref) != total {
				t.Fatalf("unbatched run executed %d requests, want %d", len(ref), total)
			}
			for _, batch := range []int{8, 32} {
				got := run(batch)
				if len(got) != len(ref) {
					t.Fatalf("batch=%d executed %d requests, unbatched %d", batch, len(got), len(ref))
				}
				for i := range ref {
					if ref[i].Client != got[i].Client || ref[i].Seq != got[i].Seq ||
						!bytes.Equal(ref[i].Op, got[i].Op) || !bytes.Equal(ref[i].Result, got[i].Result) {
						t.Fatalf("batch=%d diverges from unbatched at %d: %v (%q) vs %v (%q)",
							batch, i, got[i], got[i].Result, ref[i], ref[i].Result)
					}
				}
			}
		})
	}
}

// BenchmarkXPaxosBatchedThroughput measures wall-clock committed
// requests per second on the simulator at increasing batch sizes. The
// simulator's virtual clock pipelines slots regardless of batching, so
// the honest signal is real elapsed time: batching cuts per-request
// protocol messages (and signatures) roughly by the batch factor.
func BenchmarkXPaxosBatchedThroughput(b *testing.B) {
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			c := newBatchCluster(b, 4, 1, xpaxos.Options{
				BatchSize:       batch,
				MaxBatchLatency: time.Millisecond,
			})
			b.ResetTimer()
			c.submitAll(b.N)
			c.runUntilExecuted(b, b.N)
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}
