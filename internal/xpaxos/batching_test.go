package xpaxos_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/xpaxos"
)

// batchCluster builds an n-process XPaxos-on-QS simulation with the
// given replica options (the plain fixture hard-codes defaults).
type batchCluster struct {
	net      *sim.Network
	replicas map[ids.ProcessID]*xpaxos.Replica
}

func newBatchCluster(tb testing.TB, n, f int, xopts xpaxos.Options) *batchCluster {
	tb.Helper()
	cfg := ids.MustConfig(n, f)
	nodes := make(map[ids.ProcessID]runtime.Node, n)
	c := &batchCluster{replicas: make(map[ids.ProcessID]*xpaxos.Replica, n)}
	for _, p := range cfg.All() {
		node, replica := xpaxos.NewQSNode(xopts, quietNodeOpts())
		c.replicas[p] = replica
		nodes[p] = node
	}
	c.net = sim.NewNetwork(cfg, nodes, sim.Options{})
	return c
}

func (c *batchCluster) submitAll(total int) {
	for i := 1; i <= total; i++ {
		c.replicas[1].Submit(req(uint64(1+i%3), uint64(1+(i-1)/3), fmt.Sprintf("set k%d v%d", i, i)))
	}
}

func (c *batchCluster) runUntilExecuted(tb testing.TB, total int) {
	tb.Helper()
	ok := c.net.RunUntil(func() bool {
		for _, p := range []ids.ProcessID{1, 2, 3} {
			if len(c.replicas[p].Executions()) < total {
				return false
			}
		}
		return true
	}, 60*time.Second)
	if !ok {
		tb.Fatalf("cluster stalled: leader executed %d/%d requests",
			len(c.replicas[1].Executions()), total)
	}
}

// TestBatchingEquivalence commits the same workload unbatched (batch
// size 1, the seed proposal path) and batched (32), and requires the
// replicated request streams to be identical: same requests, same
// relative order, same results, on every quorum member. Batching may
// change slot boundaries but must never change the replicated history.
func TestBatchingEquivalence(t *testing.T) {
	const total = 24
	run := func(batch int) *batchCluster {
		c := newBatchCluster(t, 4, 1, xpaxos.Options{
			BatchSize:       batch,
			MaxBatchLatency: 2 * time.Millisecond,
		})
		c.submitAll(total)
		c.runUntilExecuted(t, total)
		return c
	}
	unbatched := run(1)
	batched := run(32)

	// Every quorum member of each run agrees with its own leader.
	for _, c := range []*batchCluster{unbatched, batched} {
		lead := c.replicas[1].Executions()
		for _, p := range []ids.ProcessID{2, 3} {
			other := c.replicas[p].Executions()
			if len(other) != len(lead) {
				t.Fatalf("%s executed %d requests, leader %d", p, len(other), len(lead))
			}
			for i := range lead {
				if lead[i].Slot != other[i].Slot || !bytes.Equal(lead[i].Op, other[i].Op) {
					t.Fatalf("%s diverges at %d: %v vs %v", p, i, other[i], lead[i])
				}
			}
		}
	}

	// Batched and unbatched histories carry the same requests in the
	// same order with the same results; only slot numbering may differ.
	a, b := unbatched.replicas[1].Executions(), batched.replicas[1].Executions()
	if len(a) != total || len(b) != total {
		t.Fatalf("executed %d unbatched vs %d batched, want %d", len(a), len(b), total)
	}
	for i := range a {
		if a[i].Client != b[i].Client || a[i].Seq != b[i].Seq ||
			!bytes.Equal(a[i].Op, b[i].Op) || !bytes.Equal(a[i].Result, b[i].Result) {
			t.Fatalf("histories diverge at %d: unbatched %v (%q) vs batched %v (%q)",
				i, a[i], a[i].Result, b[i], b[i].Result)
		}
	}

	// The batched run must actually have batched: far fewer PREPAREs
	// (one per slot, many requests per slot).
	up := unbatched.net.Metrics().Counter("msg.sent.PREPARE")
	bp := batched.net.Metrics().Counter("msg.sent.PREPARE")
	if bp >= up {
		t.Errorf("batched run sent %d PREPAREs, unbatched %d: batching had no effect", bp, up)
	}
}

// BenchmarkXPaxosBatchedThroughput measures wall-clock committed
// requests per second on the simulator at increasing batch sizes. The
// simulator's virtual clock pipelines slots regardless of batching, so
// the honest signal is real elapsed time: batching cuts per-request
// protocol messages (and signatures) roughly by the batch factor.
func BenchmarkXPaxosBatchedThroughput(b *testing.B) {
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			c := newBatchCluster(b, 4, 1, xpaxos.Options{
				BatchSize:       batch,
				MaxBatchLatency: time.Millisecond,
			})
			b.ResetTimer()
			c.submitAll(b.N)
			c.runUntilExecuted(b, b.N)
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}
