// Package xpaxos implements the XPaxos state-machine replication
// protocol (Liu et al., OSDI'16) as described and extended in §V of the
// paper: the PREPARE/COMMIT normal case over an active quorum of n−f
// processes, the failure-detector integration with its three
// subtleties (Fig 3), equivocation detection, and quorum installation
// via view change (§V-B).
//
// Two quorum-change regimes are supported:
//
//   - ModeQuorumSelection: views are installed by the paper's Quorum
//     Selection module; on ⟨QUORUM, Q⟩ all quorums enumerated before Q
//     are skipped.
//   - ModeEnumeration: the original XPaxos behavior — on any suspicion
//     of an active-quorum member, move to the next quorum in the
//     lexicographic enumeration of all C(n, q) quorums, round-robin.
//     This is the baseline experiment E5 measures against.
//
// The view change itself is deliberately simpler than XPaxos's full
// XFT view change (which handles partial synchrony edge cases the
// paper does not exercise): replicas send their accepted PREPAREs to
// the incoming leader, which merges by highest view per slot,
// re-proposes, and installs. DESIGN.md records this substitution.
package xpaxos

import (
	"fmt"
	"sort"
	"strings"

	"quorumselect/internal/wire"
)

// StateMachine is the replicated application: Apply must be
// deterministic.
type StateMachine interface {
	// Apply executes one operation and returns its result.
	Apply(op []byte) []byte
}

// Snapshotter is optionally implemented by state machines that support
// checkpoint-based catch-up: Snapshot must be deterministic (identical
// state → identical bytes) so checkpoint digests can be compared across
// replicas.
type Snapshotter interface {
	// Snapshot serializes the full state.
	Snapshot() []byte
	// Restore replaces the state with a previous Snapshot.
	Restore(snapshot []byte) error
}

// KVMachine is a deterministic key-value store used by the examples and
// tests. Operations are "set k v", "get k", "del k" and "append k v";
// anything else echoes.
type KVMachine struct {
	data map[string]string
}

var (
	_ StateMachine = (*KVMachine)(nil)
	_ Snapshotter  = (*KVMachine)(nil)
)

// NewKVMachine returns an empty store.
func NewKVMachine() *KVMachine { return &KVMachine{data: make(map[string]string)} }

// Apply implements StateMachine.
func (kv *KVMachine) Apply(op []byte) []byte {
	parts := strings.SplitN(string(op), " ", 3)
	switch {
	case len(parts) == 3 && parts[0] == "set":
		kv.data[parts[1]] = parts[2]
		return []byte("OK")
	case len(parts) == 3 && parts[0] == "append":
		kv.data[parts[1]] += parts[2]
		return []byte("OK")
	case len(parts) == 2 && parts[0] == "get":
		v, ok := kv.data[parts[1]]
		if !ok {
			return []byte("NIL")
		}
		return []byte(v)
	case len(parts) == 2 && parts[0] == "del":
		delete(kv.data, parts[1])
		return []byte("OK")
	default:
		return append([]byte("ECHO "), op...)
	}
}

// Snapshot implements Snapshotter: keys in sorted order, each key and
// value length-prefixed — deterministic for identical state.
func (kv *KVMachine) Snapshot() []byte {
	keys := make([]string, 0, len(kv.data))
	for k := range kv.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b wire.Buffer
	b.PutUint32(uint32(len(keys)))
	for _, k := range keys {
		b.PutBytes([]byte(k))
		b.PutBytes([]byte(kv.data[k]))
	}
	return b.Bytes()
}

// Restore implements Snapshotter.
func (kv *KVMachine) Restore(snapshot []byte) error {
	r := wire.NewReader(snapshot)
	n, err := r.Uint32()
	if err != nil {
		return fmt.Errorf("xpaxos: corrupt snapshot: %w", err)
	}
	data := make(map[string]string, n)
	for i := uint32(0); i < n; i++ {
		k, err := r.Bytes()
		if err != nil {
			return fmt.Errorf("xpaxos: corrupt snapshot key: %w", err)
		}
		v, err := r.Bytes()
		if err != nil {
			return fmt.Errorf("xpaxos: corrupt snapshot value: %w", err)
		}
		data[string(k)] = string(v)
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("xpaxos: %d trailing snapshot bytes", r.Remaining())
	}
	kv.data = data
	return nil
}

// Len returns the number of keys, for test assertions.
func (kv *KVMachine) Len() int { return len(kv.data) }

// Get reads a key directly (bypassing the log), for test assertions.
func (kv *KVMachine) Get(key string) (string, bool) {
	v, ok := kv.data[key]
	return v, ok
}

// EchoMachine returns its input; the cheapest deterministic state
// machine, used by benchmarks.
type EchoMachine struct{}

var _ StateMachine = EchoMachine{}

// Apply implements StateMachine.
func (EchoMachine) Apply(op []byte) []byte { return op }

// Execution records one executed request, observed by tests and
// experiment harnesses in place of a remote client.
type Execution struct {
	Slot   uint64
	Client uint64
	Seq    uint64
	Op     []byte
	Result []byte
}

// String renders the execution compactly.
func (e Execution) String() string {
	return fmt.Sprintf("slot=%d client=%d seq=%d op=%q", e.Slot, e.Client, e.Seq, e.Op)
}
