package xpaxos

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"quorumselect/internal/crypto"
	"quorumselect/internal/fd"
	"quorumselect/internal/host"
	"quorumselect/internal/ids"
	"quorumselect/internal/logging"
	"quorumselect/internal/obs"
	"quorumselect/internal/obs/tracer"
	"quorumselect/internal/quorum"
	"quorumselect/internal/runtime"
	"quorumselect/internal/wire"
)

// Scope tags XPaxos's expectations in the failure detector.
const Scope = "xpaxos"

// Mode selects the quorum-change regime.
type Mode int

// Modes. See the package comment.
const (
	// ModeQuorumSelection installs quorums issued by the paper's
	// selection module (§V-B).
	ModeQuorumSelection Mode = iota + 1
	// ModeEnumeration is the original XPaxos baseline: on suspicion of
	// an active-quorum member, move to the next quorum in the
	// lexicographic enumeration, round-robin.
	ModeEnumeration
)

// Options configures a Replica.
type Options struct {
	// Mode selects the quorum-change regime (default
	// ModeQuorumSelection).
	Mode Mode
	// SM is the replicated state machine (default KVMachine).
	SM StateMachine
	// OnExecute observes executions in slot order; the sim harness uses
	// it in place of a remote client.
	OnExecute func(Execution)
	// CheckpointInterval takes a stable checkpoint (and garbage-collects
	// the log below it) every this many executed slots. Requires a
	// state machine implementing Snapshotter; 0 disables checkpointing
	// and the log grows without bound.
	CheckpointInterval uint64
	// BatchSize is the client-request ingress batch size: the leader
	// commits up to this many requests per slot. Values < 1 mean 1
	// (unbatched: every request proposes its own slot, the original
	// behavior).
	BatchSize int
	// MaxBatchLatency caps how long a buffered request waits for its
	// batch to fill; <= 0 selects host.DefaultMaxBatchLatency. Ignored
	// at BatchSize 1, where every submit flushes synchronously.
	MaxBatchLatency time.Duration
	// InitialView is the view every replica starts in (default 0). It
	// is configuration, exactly like view 0: all replicas of one group
	// must agree on it, and the group's initial leader is
	// quorumAt(InitialView).Members[0]. The fleet staggers shards
	// across initial views so their leaders land on different
	// processes instead of all on the first enumeration quorum's head.
	InitialView uint64
	// Window bounds how many slots the leader keeps in flight (proposed
	// but not yet committed). With a full window, new batches pool in
	// the ingress mempool instead of becoming protocol state; capacity
	// freed by a committing slot drains them. 0 means unbounded — the
	// lockstep-free behavior of the unwindowed design. Followers accept
	// out of order regardless; execution is in slot order either way.
	Window int
	// System is the generalized quorum system the replica runs on; nil
	// means the paper's n−f threshold system from the configuration.
	// The view enumeration walks the system's minimal quorums and
	// certificate acceptance asks System.IsQuorum instead of counting
	// signatures to q. All replicas of one group must agree on it, and
	// callers must validate non-default specs with quorum.Check first —
	// an intersection-violating spec lets disjoint signer sets both
	// certify.
	System quorum.System
}

// checkpoint is a stable checkpoint: the replica's state after
// executing all slots up to and including Slot.
type checkpoint struct {
	Slot     uint64
	Snapshot []byte
	Digest   []byte
}

// slotTrace is the per-slot tracing state of the commit path: the
// context of this replica's propose/accept span (carried on its
// outgoing COMMIT so peers can parent arrival instants on it) and the
// open quorum-wait span that closes when the slot commits.
type slotTrace struct {
	prep   wire.TraceContext
	quorum tracer.Active
}

// entry is the per-slot round state of the current view.
type entry struct {
	prep       *wire.Prepare // prepare accepted in the current view
	adopted    bool          // prep was learned from a COMMIT (Fig 3)
	commits    map[ids.ProcessID]*wire.Commit
	commitSent bool
	committed  bool
}

// Replica is one XPaxos replica. It implements core.Application so it
// can be composed with the quorum-selection stack, and is also driven
// directly by StandaloneNode in enumeration mode.
type Replica struct {
	opts     Options
	env      runtime.Env
	detector *fd.Detector
	cfg      ids.Config
	log      logging.Logger

	sys         quorum.System
	enumeration []ids.Quorum
	view        uint64
	active      ids.Quorum
	changing    bool

	nextSlot uint64
	entries  map[uint64]*entry
	// accepted holds the highest-view prepare per slot across views —
	// the log reported in VIEW-CHANGE messages.
	accepted map[uint64]*wire.Prepare
	// committedReq holds the request batch of each committed slot, in
	// proposal order, for execution.
	committedReq map[uint64][]*wire.Request
	// ingress is the client-request mempool: requests accumulate there
	// and flush into proposals (leader) or leader forwards (others).
	ingress     *host.Ingress
	lastExec    uint64
	clientTable map[uint64]uint64 // client → highest executed seq

	vcVotes map[uint64]map[ids.ProcessID]*wire.ViewChange
	pending []*wire.Request
	// buffered holds PREPARE/COMMIT messages for the view currently
	// being installed: a peer that finished its view change earlier may
	// send them before our NEW-VIEW arrives; they are replayed at
	// install instead of being lost (messages are never retransmitted).
	buffered []wire.Message

	executions  []Execution
	viewChanges int
	ckpt        checkpoint

	// wal is the host's durable log (nil when the host has no storage);
	// recovering suppresses persistence, client callbacks, and
	// checkpointing while the WAL tail replays.
	wal        host.AppLog
	recovering bool

	// slotStart records when each slot's prepare was first accepted
	// locally, feeding the commit-latency histogram.
	slotStart map[uint64]time.Duration
	// traces holds the open per-slot commit-path spans (see slotTrace);
	// dropped wholesale on a view change, trimmed with the checkpoint.
	traces map[uint64]*slotTrace
	// vcTrace is the span covering an in-progress view change.
	vcTrace tracer.Active
	// vcStart records when the in-progress view change began, feeding
	// the view-change-duration histogram.
	vcStart time.Duration
}

// NewReplica creates an XPaxos replica.
func NewReplica(opts Options) *Replica {
	if opts.Mode == 0 {
		opts.Mode = ModeQuorumSelection
	}
	if opts.SM == nil {
		opts.SM = NewKVMachine()
	}
	return &Replica{
		opts:         opts,
		entries:      make(map[uint64]*entry),
		accepted:     make(map[uint64]*wire.Prepare),
		committedReq: make(map[uint64][]*wire.Request),
		clientTable:  make(map[uint64]uint64),
		vcVotes:      make(map[uint64]map[ids.ProcessID]*wire.ViewChange),
		slotStart:    make(map[uint64]time.Duration),
		traces:       make(map[uint64]*slotTrace),
	}
}

// Attach implements core.Application.
func (r *Replica) Attach(env runtime.Env, detector *fd.Detector) {
	r.env = env
	r.detector = detector
	r.cfg = env.Config()
	r.log = env.Logger()
	r.sys = r.opts.System
	if r.sys == nil {
		r.sys = quorum.FromConfig(r.cfg)
	}
	if r.sys.N() != r.cfg.N {
		panic("xpaxos: quorum system size does not match configuration n")
	}
	r.enumeration = enumerationFor(r.sys)
	r.view = r.opts.InitialView
	r.active = r.quorumAt(r.view)
	r.nextSlot = 1
	r.ingress = host.NewIngress(env, host.IngressOptions{
		BatchSize:  r.opts.BatchSize,
		MaxLatency: r.opts.MaxBatchLatency,
	}, r.flushBatch)
	// The commit window gates ingress flushes only while this replica
	// leads: followers forward batches immediately (the leader's own
	// ingress applies its window), and during a view change flushBatch
	// parks batches in r.pending, so the gate stays open.
	r.ingress.SetGate(func() bool {
		return !r.IsLeader() || r.changing || r.windowOpen()
	})
	runtime.SetNodeGauge(r.env, "xpaxos.view", float64(r.view))
}

// Stop implements host.Stoppable: cancel the ingress flush timer so a
// stopped replica holds no live timers.
func (r *Replica) Stop() {
	if r.ingress != nil {
		r.ingress.Stop()
	}
}

// View returns the current view number.
func (r *Replica) View() uint64 { return r.view }

// ActiveQuorum returns the current active quorum.
func (r *Replica) ActiveQuorum() ids.Quorum { return r.active }

// Leader returns the leader of the current view: the active-quorum
// member with the lowest identifier (§V-A step 1).
func (r *Replica) Leader() ids.ProcessID { return r.active.Members[0] }

// IsLeader reports whether this replica leads the current view.
func (r *Replica) IsLeader() bool { return r.Leader() == r.env.ID() }

// InQuorum reports whether this replica is in the active quorum.
func (r *Replica) InQuorum() bool { return r.active.Contains(r.env.ID()) }

// ViewChanges returns how many view changes this replica performed.
func (r *Replica) ViewChanges() int { return r.viewChanges }

// LastExecuted returns the highest executed slot.
func (r *Replica) LastExecuted() uint64 { return r.lastExec }

// Executions returns the executions observed so far, in order.
func (r *Replica) Executions() []Execution {
	out := make([]Execution, len(r.executions))
	copy(out, r.executions)
	return out
}

// System returns the quorum system the replica runs on.
func (r *Replica) System() quorum.System { return r.sys }

// quorumAt maps a view number to its quorum: the lexicographic
// enumeration of the system's minimal quorums, round-robin (§V-B).
func (r *Replica) quorumAt(v uint64) ids.Quorum {
	return r.enumeration[int(v%uint64(len(r.enumeration)))]
}

// enumerationFor builds the view→quorum enumeration of a system: the
// threshold fast path reuses ids.EnumerateQuorums (identical to the
// original §V-B enumeration, byte for byte); generalized systems walk
// their minimal quorums. A system too large to enumerate cannot drive
// XPaxos views — that is a deployment-configuration error, caught at
// Attach rather than silently mapping views to arbitrary quorums.
func enumerationFor(sys quorum.System) []ids.Quorum {
	if t, ok := sys.(quorum.Threshold); ok {
		return ids.EnumerateQuorums(t.N(), t.QuorumSize())
	}
	mq := sys.MinQuorums()
	if len(mq) == 0 {
		panic(fmt.Sprintf("xpaxos: quorum system %s has no enumerable quorums", sys))
	}
	out := make([]ids.Quorum, len(mq))
	for i, m := range mq {
		out[i] = ids.NewQuorum(m)
	}
	return out
}

// quorumIndex maps an issued quorum back to its view-enumeration slot,
// or -1 when the quorum is not one the system enumerates. Threshold
// systems answer arithmetically (ids.QuorumIndex); generalized systems
// scan their (bounded, pre-materialized) enumeration.
func (r *Replica) quorumIndex(q ids.Quorum) int {
	if _, ok := r.sys.(quorum.Threshold); ok {
		return ids.QuorumIndex(r.cfg.N, ids.NewQuorum(q.Members))
	}
	want := ids.NewQuorum(q.Members)
	for i, e := range r.enumeration {
		if e.Equal(want) {
			return i
		}
	}
	return -1
}

// FirstViewLedBy returns the lowest view whose quorum is led by p, and
// whether any view is. A quorum's leader is its first (smallest)
// member, so under lexicographic enumeration only processes 1..n-q+1
// ever lead; the fleet cycles shard initial views across that range to
// spread leader load over distinct processes.
func FirstViewLedBy(cfg ids.Config, p ids.ProcessID) (uint64, bool) {
	for v, q := range ids.EnumerateQuorums(cfg.N, cfg.Q()) {
		if len(q.Members) > 0 && q.Members[0] == p {
			return uint64(v), true
		}
	}
	return 0, false
}

// inflight counts slots proposed (or accepted) in the current view that
// have not committed yet — the pipeline depth the window bounds. The
// entries map holds at most a checkpoint interval plus a window of
// slots, so the scan stays cheap, and deriving the count from round
// state (rather than a counter) keeps it trivially correct across view
// changes, which rebuild that state wholesale.
func (r *Replica) inflight() int {
	n := 0
	for _, e := range r.entries {
		if e.prep != nil && !e.committed {
			n++
		}
	}
	return n
}

// windowOpen reports whether the leader may take another slot in
// flight.
func (r *Replica) windowOpen() bool {
	return r.opts.Window <= 0 || r.inflight() < r.opts.Window
}

// Submit injects a client request at this replica (the harness's or
// server frontend's entry point). Requests buffer in the ingress
// mempool; flushed batches propose (leader) or forward to the leader.
// At batch size 1 every Submit flushes synchronously, the original
// request-per-slot behavior.
func (r *Replica) Submit(req *wire.Request) {
	if r.clientTable[req.Client] >= req.Seq {
		return // already executed; a real deployment would re-reply
	}
	if err := r.ingress.Submit(req); err != nil {
		r.env.Metrics().Inc("xpaxos.submit.rejected", 1)
	}
}

// traceStart opens a commit-path span unless the replica is replaying
// its WAL: recovered history already happened and is not re-traced.
func (r *Replica) traceStart(name string, parent wire.TraceContext) tracer.Active {
	if r.recovering {
		return tracer.Active{}
	}
	return runtime.TraceStart(r.env, name, parent)
}

func (r *Replica) slotTraceFor(slot uint64) *slotTrace {
	st, ok := r.traces[slot]
	if !ok {
		st = &slotTrace{}
		r.traces[slot] = st
	}
	return st
}

// flushBatch receives ingress batches. The role check happens at flush
// time, not submit time: leadership may have changed while the batch
// filled. tc is the ingress span covering the batch's buffering time;
// it parents the propose span (here, or on the leader after a forward).
func (r *Replica) flushBatch(reqs []*wire.Request, tc wire.TraceContext) {
	if !r.IsLeader() {
		batch := &wire.Batch{Reqs: make([]wire.Request, len(reqs)), TC: tc}
		for i, req := range reqs {
			batch.Reqs[i] = *req
		}
		r.env.Send(r.Leader(), batch)
		return
	}
	if r.changing {
		// Requests survive the view change; their ingress trace does not
		// (they re-enter ingress when the new view installs).
		r.pending = append(r.pending, reqs...)
		return
	}
	r.propose(reqs, tc)
}

// propose assigns the next slot to the batch and runs step 1 of the
// normal case; the batch rides in the PREPARE (Req + Rest), covered by
// the leader's signature.
func (r *Replica) propose(reqs []*wire.Request, tc wire.TraceContext) {
	slot := r.nextSlot
	r.nextSlot++
	stage := r.traceStart("propose", tc)
	stage.SetSlot(slot)
	stage.SetView(r.view)
	prep := &wire.Prepare{
		Leader: r.env.ID(),
		View:   r.view,
		Slot:   slot,
		Req:    *reqs[0],
	}
	if len(reqs) > 1 {
		prep.Rest = make([]wire.Request, len(reqs)-1)
		for i, req := range reqs[1:] {
			prep.Rest[i] = *req
		}
	}
	runtime.Sign(r.env, prep)
	prep.TC = stage.Context() // outside signature coverage
	r.env.Metrics().Inc("xpaxos.prepare.sent", 1)
	for _, p := range r.active.Members {
		if p != r.env.ID() {
			r.env.Send(p, prep)
		}
	}
	// The leader "receives" its own PREPARE: accept it, issue the
	// commit expectations, and send its COMMIT (§V-A: expectations are
	// issued when receiving or *sending* a PREPARE).
	r.acceptPrepare(prep, stage)
	if r.opts.Window > 0 {
		runtime.SetNodeGauge(r.env, "xpaxos.window.inflight", float64(r.inflight()))
	}
}

// Deliver implements core.Application: demultiplex authenticated
// application messages.
func (r *Replica) Deliver(from ids.ProcessID, m wire.Message) {
	switch msg := m.(type) {
	case *wire.Request:
		// Forwarded client request; only the leader proposes.
		if r.IsLeader() {
			r.Submit(msg)
		}
	case *wire.Batch:
		// Forwarded ingress batch; only the leader proposes. Requests
		// re-enter this replica's ingress, so forwarded traffic batches
		// on the leader's own policy; the forwarder's trace is adopted
		// so the commit path hangs off the originating replica's tree.
		if r.IsLeader() {
			r.ingress.Adopt(msg.TC)
			for i := range msg.Reqs {
				req := msg.Reqs[i]
				r.Submit(&req)
			}
		}
	case *wire.Prepare:
		r.onPrepare(msg)
	case *wire.Commit:
		r.onCommit(msg)
	case *wire.CommitCert:
		r.onCommitCert(msg)
	case *wire.ViewChange:
		r.onViewChange(msg)
	case *wire.NewView:
		r.onNewView(msg)
	default:
		r.log.Logf(logging.LevelDebug, "xpaxos: ignoring %s from %s", m.Kind(), from)
	}
}

// onPrepare is step 2 of the normal case plus the equivocation check.
func (r *Replica) onPrepare(p *wire.Prepare) {
	if p.View == r.view && r.changing {
		r.buffered = append(r.buffered, p)
		return // replayed once the view is installed
	}
	if p.View != r.view || r.changing || !r.InQuorum() {
		return // stale view or not participating
	}
	if p.Leader != r.Leader() {
		// Signed PREPARE from a non-leader quorum member: a commission
		// failure by the signer.
		r.detector.Detected(p.Leader)
		return
	}
	e := r.entry(p.Slot)
	if e.prep != nil && !e.adopted {
		// A second direct PREPARE for the same (view, slot): detect
		// equivocation if it differs.
		if !bytes.Equal(e.prep.SigBytes(), p.SigBytes()) {
			r.env.Metrics().Inc("xpaxos.detected.equivocation", 1)
			r.detector.Detected(p.Leader)
		}
		return
	}
	if e.prep != nil && e.adopted {
		// Fig 3: the prepare adopted from an early COMMIT must match
		// the leader's direct PREPARE.
		if !bytes.Equal(e.prep.SigBytes(), p.SigBytes()) {
			r.env.Metrics().Inc("xpaxos.detected.equivocation", 1)
			r.detector.Detected(p.Leader)
			return
		}
		e.adopted = false // direct prepare received; expectation matched
		return
	}
	stage := r.traceStart("accept", p.TC)
	stage.SetSlot(p.Slot)
	stage.SetView(p.View)
	r.acceptPrepare(p, stage)
}

// acceptPrepare stores the prepare, issues the §V-A expectations and
// sends this replica's COMMIT. stage is the open propose (leader) or
// accept (follower) span covering this slot's local processing; it
// closes once the COMMIT is out and the quorum wait begins.
func (r *Replica) acceptPrepare(p *wire.Prepare, stage tracer.Active) {
	e := r.entry(p.Slot)
	if _, ok := r.slotStart[p.Slot]; !ok {
		r.slotStart[p.Slot] = r.env.Now()
	}
	e.prep = p
	e.adopted = false
	r.accepted[p.Slot] = p
	st := r.slotTraceFor(p.Slot)
	st.prep = stage.Context()
	// Persist-before-act: the COMMIT below promises this prepare is in
	// our log, so it must be on disk before the COMMIT leaves.
	var ws tracer.Active
	if r.wal != nil {
		ws = r.traceStart("wal.sync", stage.Context())
	}
	r.persistRecord(recPrepareBytes(recAccepted, p))
	r.persistSync()
	runtime.TraceEnd(r.env, ws)
	// First subtlety (§V-A): no expectation for processes whose COMMIT
	// already arrived.
	for _, k := range r.active.Members {
		if _, have := e.commits[k]; k == r.env.ID() || have {
			continue
		}
		r.expectCommit(k, p.View, p.Slot)
	}
	r.sendCommit(e, p)
	runtime.TraceEnd(r.env, stage)
	st.quorum = r.traceStart("quorum", stage.Context())
	st.quorum.SetSlot(p.Slot)
	st.quorum.SetView(p.View)
	r.tryCommit(p.Slot, e)
}

func (r *Replica) expectCommit(k ids.ProcessID, view, slot uint64) {
	r.detector.Expect(Scope, k, fmt.Sprintf("COMMIT(v=%d,s=%d)", view, slot),
		func(m wire.Message) bool {
			c, ok := m.(*wire.Commit)
			return ok && c.Replica == k && c.View == view && c.Slot == slot
		})
}

func (r *Replica) expectPrepare(leader ids.ProcessID, view, slot uint64) {
	r.detector.Expect(Scope, leader, fmt.Sprintf("PREPARE(v=%d,s=%d)", view, slot),
		func(m wire.Message) bool {
			p, ok := m.(*wire.Prepare)
			return ok && p.Leader == leader && p.View == view && p.Slot == slot
		})
}

// sendCommit broadcasts this replica's COMMIT (carrying the full
// PREPARE, the paper's second protocol change) to the other quorum
// members.
func (r *Replica) sendCommit(e *entry, p *wire.Prepare) {
	if e.commitSent {
		return
	}
	e.commitSent = true
	c := &wire.Commit{
		Replica: r.env.ID(),
		View:    p.View,
		Slot:    p.Slot,
		HasPrep: true,
		Prep:    *p,
	}
	runtime.Sign(r.env, c)
	if st, ok := r.traces[p.Slot]; ok {
		c.TC = st.prep // receivers parent their arrival instant on our span
	}
	e.commits[r.env.ID()] = c
	r.env.Metrics().Inc("xpaxos.commit.sent", 1)
	for _, k := range r.active.Members {
		if k != r.env.ID() {
			r.env.Send(k, c)
		}
	}
}

// onCommit is step 3 of the normal case plus the §V-A subtleties.
func (r *Replica) onCommit(c *wire.Commit) {
	if c.View == r.view && r.changing {
		r.buffered = append(r.buffered, c)
		return // replayed once the view is installed
	}
	if c.View != r.view || r.changing || !r.InQuorum() {
		return
	}
	if !r.active.Contains(c.Replica) {
		return // commits count only from active-quorum members
	}
	// Second subtlety: a COMMIT must include a valid PREPARE. The
	// outer signature was verified by the failure detector; the
	// embedded prepare is verified here (memoized against the slot's
	// already-verified prepare in the steady state).
	if !c.HasPrep || c.Prep.View != c.View || c.Prep.Slot != c.Slot ||
		c.Prep.Leader != r.Leader() ||
		r.verifyEmbedded(c) != nil {
		r.env.Metrics().Inc("xpaxos.detected.malformed", 1)
		r.detector.Detected(c.Replica)
		return
	}
	if !c.TC.Zero() && !r.recovering {
		runtime.TraceInstant(r.env, "commit.recv", c.TC)
	}
	e := r.entry(c.Slot)
	if e.prep != nil {
		// Equivocation: a valid PREPARE that differs from ours.
		if !bytes.Equal(e.prep.SigBytes(), c.Prep.SigBytes()) {
			r.env.Metrics().Inc("xpaxos.detected.equivocation", 1)
			r.detector.Detected(r.Leader())
			return
		}
	} else {
		// Third subtlety (Fig 3): COMMIT before PREPARE — adopt the
		// embedded prepare, send our own COMMIT, and expect the direct
		// PREPARE from the leader. The embedded prepare kept its trace
		// context, so the accept span still joins the leader's trace.
		prep := c.Prep
		e.prep = &prep
		e.adopted = true
		r.accepted[c.Slot] = &prep
		stage := r.traceStart("accept", prep.TC)
		stage.SetSlot(c.Slot)
		stage.SetView(c.View)
		st := r.slotTraceFor(c.Slot)
		st.prep = stage.Context()
		// Adopted prepares carry the same promise as direct ones:
		// persist before our COMMIT goes out.
		var ws tracer.Active
		if r.wal != nil {
			ws = r.traceStart("wal.sync", stage.Context())
		}
		r.persistRecord(recPrepareBytes(recAccepted, &prep))
		r.persistSync()
		runtime.TraceEnd(r.env, ws)
		r.expectPrepare(r.Leader(), c.View, c.Slot)
		r.sendCommit(e, &prep)
		runtime.TraceEnd(r.env, stage)
		st.quorum = r.traceStart("quorum", stage.Context())
		st.quorum.SetSlot(c.Slot)
		st.quorum.SetView(c.View)
	}
	e.commits[c.Replica] = c
	r.tryCommit(c.Slot, e)
}

// verifyEmbedded checks a COMMIT's embedded prepare signature. In the
// steady state every COMMIT for a slot embeds a byte-identical copy of
// the prepare this replica already accepted — and that prepare's
// signature was verified when it arrived (by the failure detector for a
// direct PREPARE, or right here for the first adopting COMMIT) — so a
// matching copy is vouched for without a second crypto pass. This
// matters at q−1 redundant verifications per slot on the hot path.
func (r *Replica) verifyEmbedded(c *wire.Commit) error {
	if e, ok := r.entries[c.Slot]; ok && e.prep != nil &&
		bytes.Equal(e.prep.SigBytes(), c.Prep.SigBytes()) &&
		bytes.Equal(e.prep.Signature(), c.Prep.Signature()) {
		r.env.Metrics().Inc("xpaxos.verify.memoized", 1)
		return nil
	}
	return runtime.Verify(r.env, &c.Prep)
}

// tryCommit commits the slot once COMMITs from every other quorum
// member arrived with matching prepares, then executes in slot order.
func (r *Replica) tryCommit(slot uint64, e *entry) {
	if e.committed || e.prep == nil || !e.commitSent {
		return
	}
	for _, k := range r.active.Members {
		if _, ok := e.commits[k]; !ok {
			return
		}
	}
	e.committed = true
	st := r.traces[slot]
	if st != nil {
		runtime.TraceEnd(r.env, st.quorum)
	}
	reqs := e.prep.Requests()
	r.committedReq[slot] = reqs
	// The slot is decided: persist the deciding prepare before
	// executing it or shipping the certificate to passive replicas.
	var ws tracer.Active
	if st != nil && st.quorum.Traced() && r.wal != nil {
		ws = r.traceStart("wal.sync", st.quorum.Context())
	}
	r.persistRecord(recPrepareBytes(recCommitted, e.prep))
	r.persistSync()
	runtime.TraceEnd(r.env, ws)
	r.env.Metrics().Inc("xpaxos.committed", int64(len(reqs)))
	if start, ok := r.slotStart[slot]; ok {
		r.env.Metrics().Observe("xpaxos.commit.latency.seconds",
			(r.env.Now() - start).Seconds())
		delete(r.slotStart, slot)
	}
	// Lazy replication (XPaxos keeps passive replicas "lazily
	// updated"): the leader ships the self-certifying commit
	// certificate to the processes outside the active quorum.
	if r.IsLeader() {
		cert := &wire.CommitCert{Slot: slot}
		for _, k := range r.active.Members {
			cert.Commits = append(cert.Commits, *e.commits[k])
		}
		for _, p := range r.cfg.All() {
			if !r.active.Contains(p) {
				r.env.Send(p, cert)
			}
		}
	}
	r.execute()
	// A committed slot frees window capacity: drain batches the gate
	// held back. Flush is reentrancy-guarded, so reaching here from a
	// flush-triggered propose chain is fine — the outer drain loop
	// continues instead.
	if r.opts.Window > 0 {
		runtime.SetNodeGauge(r.env, "xpaxos.window.inflight", float64(r.inflight()))
		if r.IsLeader() && !r.changing {
			r.ingress.Flush()
		}
	}
}

// onCommitCert verifies a lazy-replication certificate and adopts the
// committed request: a quorum of distinct validly signed COMMITs (per
// the replica's quorum system — n−f of them under the default threshold
// spec) embedding the same valid PREPARE for this slot. Quorum
// intersection guarantees at least one signer is correct and committed
// the slot, so the value is the decided one — which is exactly why an
// intersection-violating spec must never get this far.
func (r *Replica) onCommitCert(cert *wire.CommitCert) {
	if _, have := r.committedReq[cert.Slot]; have || cert.Slot <= r.lastExec {
		return
	}
	// Pass 1: structural checks, collecting every plausible commit's
	// signature work — the outer COMMIT and its embedded PREPARE — into
	// one batch. A well-formed certificate embeds the SAME prepare in
	// each of its q commits, so batched verification (which dedups
	// identical items) does q+1 actual checks where a serial loop does
	// 2q.
	cand := make([]int, 0, len(cert.Commits))
	items := make([]crypto.BatchItem, 0, 2*len(cert.Commits))
	for i := range cert.Commits {
		c := &cert.Commits[i]
		if c.Slot != cert.Slot || !c.HasPrep || c.Prep.Slot != cert.Slot || c.Prep.View != c.View {
			continue
		}
		if !c.Replica.Valid(r.cfg.N) {
			continue
		}
		cand = append(cand, i)
		items = append(items, runtime.BatchItemOf(c), runtime.BatchItemOf(&c.Prep))
	}
	errs := runtime.VerifyBatch(r.env, items)
	// Pass 2: count distinct, validly signed commits agreeing on one
	// embedded prepare.
	signers := ids.NewProcSet()
	var prep *wire.Prepare
	for j, i := range cand {
		c := &cert.Commits[i]
		if signers.Contains(c.Replica) || errs[2*j] != nil || errs[2*j+1] != nil {
			continue
		}
		if prep == nil {
			p := c.Prep
			prep = &p
		} else if !bytes.Equal(prep.SigBytes(), c.Prep.SigBytes()) {
			continue // conflicting embedded prepare: not part of this cert
		}
		signers.Add(c.Replica)
	}
	if prep == nil || !r.sys.IsQuorum(signers.Sorted()) {
		r.env.Metrics().Inc("xpaxos.cert.rejected", 1)
		r.log.Logf(logging.LevelDebug, "xpaxos: rejecting commit certificate for slot %d", cert.Slot)
		return
	}
	r.committedReq[cert.Slot] = prep.Requests()
	if !prep.TC.Zero() && !r.recovering {
		// Lazily replicated slots still join the original trace: the
		// embedded prepare's context parents this replica's execute span.
		r.slotTraceFor(cert.Slot).prep = prep.TC
	}
	if cur, ok := r.accepted[cert.Slot]; !ok || prep.View >= cur.View {
		r.accepted[cert.Slot] = prep
	}
	r.persistRecord(recPrepareBytes(recCommitted, prep))
	r.persistSync()
	r.env.Metrics().Inc("xpaxos.cert.applied", 1)
	r.execute()
}

// execute applies committed slots in order — and within a slot, the
// batch's requests in proposal order — taking periodic checkpoints.
func (r *Replica) execute() {
	for {
		reqs, ok := r.committedReq[r.lastExec+1]
		if !ok {
			return
		}
		r.lastExec++
		var es tracer.Active
		if st := r.traces[r.lastExec]; st != nil {
			parent := st.quorum.Context()
			if parent.Zero() {
				parent = st.prep // lazy replication: no quorum span
			}
			es = r.traceStart("execute", parent)
			es.SetSlot(r.lastExec)
		}
		for _, req := range reqs {
			result := r.opts.SM.Apply(req.Op)
			if req.Seq > r.clientTable[req.Client] {
				r.clientTable[req.Client] = req.Seq
			}
			exec := Execution{
				Slot:   r.lastExec,
				Client: req.Client,
				Seq:    req.Seq,
				Op:     append([]byte(nil), req.Op...),
				Result: result,
			}
			r.executions = append(r.executions, exec)
			r.env.Metrics().Inc("xpaxos.executed", 1)
			if r.opts.OnExecute != nil && !r.recovering {
				r.opts.OnExecute(exec)
			}
		}
		runtime.TraceEnd(r.env, es)
		delete(r.traces, r.lastExec)
		runtime.SetNodeGauge(r.env, "xpaxos.checkpoint.lag", float64(r.lastExec-r.ckpt.Slot))
		if r.opts.CheckpointInterval > 0 && !r.recovering && r.lastExec%r.opts.CheckpointInterval == 0 {
			r.takeCheckpoint()
		}
	}
}

// takeCheckpoint snapshots the executed state (state machine plus the
// client table, so duplicate suppression survives a restore) and
// garbage-collects the log below it. Requires a Snapshotter state
// machine; silently skipped otherwise.
func (r *Replica) takeCheckpoint() {
	snap, ok := r.opts.SM.(Snapshotter)
	if !ok {
		return
	}
	var b wire.Buffer
	clients := make([]uint64, 0, len(r.clientTable))
	for c := range r.clientTable {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	b.PutUint32(uint32(len(clients)))
	for _, c := range clients {
		b.PutUint64(c)
		b.PutUint64(r.clientTable[c])
	}
	b.PutBytes(snap.Snapshot())
	data := b.Bytes()
	r.ckpt = checkpoint{Slot: r.lastExec, Snapshot: data, Digest: crypto.Digest(data)}
	r.env.Metrics().Inc("xpaxos.checkpoint.taken", 1)
	runtime.SetNodeGauge(r.env, "xpaxos.checkpoint.lag", 0)
	runtime.Emit(r.env, obs.Event{Type: obs.TypeCheckpoint, View: r.view, Slot: r.lastExec})
	r.gcBelow(r.lastExec)
	// The checkpoint moved: compact the WAL behind a fresh durable
	// snapshot.
	r.persistSnapshot()
}

// restoreCheckpoint installs a stable checkpoint received during a view
// change: state machine, client table and execution cursor.
func (r *Replica) restoreCheckpoint(slot uint64, data []byte) error {
	snap, ok := r.opts.SM.(Snapshotter)
	if !ok {
		return fmt.Errorf("xpaxos: state machine %T cannot restore snapshots", r.opts.SM)
	}
	rd := wire.NewReader(data)
	n, err := rd.Uint32()
	if err != nil {
		return fmt.Errorf("xpaxos: corrupt checkpoint: %w", err)
	}
	table := make(map[uint64]uint64, n)
	for i := uint32(0); i < n; i++ {
		c, err := rd.Uint64()
		if err != nil {
			return fmt.Errorf("xpaxos: corrupt checkpoint client: %w", err)
		}
		seq, err := rd.Uint64()
		if err != nil {
			return fmt.Errorf("xpaxos: corrupt checkpoint seq: %w", err)
		}
		table[c] = seq
	}
	smData, err := rd.Bytes()
	if err != nil {
		return fmt.Errorf("xpaxos: corrupt checkpoint snapshot: %w", err)
	}
	if err := snap.Restore(smData); err != nil {
		return err
	}
	r.clientTable = table
	r.lastExec = slot
	r.ckpt = checkpoint{Slot: slot, Snapshot: data, Digest: crypto.Digest(data)}
	r.env.Metrics().Inc("xpaxos.checkpoint.restored", 1)
	runtime.SetNodeGauge(r.env, "xpaxos.checkpoint.lag", 0)
	r.gcBelow(slot)
	// The NEW-VIEW jump is not represented by WAL records, so it must
	// become durable as a snapshot immediately: recovering to the
	// pre-jump state would roll lastExec back below slots this replica
	// has already acknowledged executing.
	r.persistSnapshot()
	return nil
}

// gcBelow drops per-slot state at or below the stable checkpoint.
func (r *Replica) gcBelow(slot uint64) {
	for s := range r.accepted {
		if s <= slot {
			delete(r.accepted, s)
		}
	}
	for s := range r.committedReq {
		if s <= slot {
			delete(r.committedReq, s)
		}
	}
	for s, e := range r.entries {
		if s <= slot && e.committed {
			delete(r.entries, s)
		}
	}
	for s := range r.slotStart {
		if s <= slot {
			delete(r.slotStart, s)
		}
	}
	for s := range r.traces {
		if s <= slot {
			delete(r.traces, s)
		}
	}
}

// LogSize reports the retained per-slot state (accepted prepares), for
// tests asserting that checkpointing bounds memory.
func (r *Replica) LogSize() int { return len(r.accepted) }

// CheckpointSlot returns the latest stable checkpoint slot (0 if none).
func (r *Replica) CheckpointSlot() uint64 { return r.ckpt.Slot }

func (r *Replica) entry(slot uint64) *entry {
	e, ok := r.entries[slot]
	if !ok {
		e = &entry{commits: make(map[ids.ProcessID]*wire.Commit)}
		r.entries[slot] = e
	}
	return e
}
