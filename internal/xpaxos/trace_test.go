package xpaxos_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"quorumselect/internal/ids"
	"quorumselect/internal/obs/tracer"
	"quorumselect/internal/sim"
	"quorumselect/internal/wire"
)

// traceFixture is the qsFixture plus a span recorder shared by every
// simulated process (one virtual clock, so durations compare exactly).
func newTraceFixture(t *testing.T, simOpts sim.Options) (*qsFixture, *tracer.Tracer) {
	t.Helper()
	tr := tracer.New(0)
	simOpts.Tracer = tr
	if simOpts.Latency == nil {
		simOpts.Latency = sim.ConstantLatency(2 * time.Millisecond)
	}
	fx := newQSFixture(t, 4, 1, quietNodeOpts(), simOpts, ids.NewProcSet(), nil)
	return fx, tr
}

// spanIndex maps span IDs to spans for parent resolution.
func spanIndex(spans []tracer.Span) map[uint64]tracer.Span {
	idx := make(map[uint64]tracer.Span, len(spans))
	for _, s := range spans {
		idx[s.ID] = s
	}
	return idx
}

func namesOn(spans []tracer.Span, node ids.ProcessID) map[string]tracer.Span {
	out := make(map[string]tracer.Span)
	for _, s := range spans {
		if s.Node == node {
			out[s.Name] = s
		}
	}
	return out
}

// TestTraceSpanTreeAcrossReplicas is the end-to-end causality check: a
// request submitted at the passive replica p4 must produce ONE span
// tree covering all four processes — p4's ingress (the root), the
// forwarded batch re-entering the leader's ingress, the leader's
// propose/quorum/execute stages, the followers' accept stages, and
// p4's lazy-replication execute — with every parent pointer resolving
// inside the trace and the leader's stage durations tiling the
// end-to-end commit latency exactly (one virtual clock).
func TestTraceSpanTreeAcrossReplicas(t *testing.T) {
	fx, tr := newTraceFixture(t, sim.Options{})
	fx.replicas[4].Submit(req(7, 1, "set traced yes"))
	ok := fx.net.RunUntil(func() bool {
		for _, p := range []ids.ProcessID{1, 2, 3, 4} {
			if fx.replicas[p].LastExecuted() < 1 {
				return false
			}
		}
		return true
	}, 5*time.Second)
	if !ok {
		t.Fatal("request submitted at passive replica did not execute everywhere")
	}

	// Exactly one trace, rooted at p4's ingress span.
	var roots []tracer.Span
	for _, s := range tr.Spans() {
		if s.Parent == 0 {
			roots = append(roots, s)
		}
	}
	if len(roots) != 1 {
		t.Fatalf("found %d root spans, want exactly 1: %+v", len(roots), roots)
	}
	root := roots[0]
	if root.Name != "ingress" || root.Node != 4 {
		t.Fatalf("root span = %s on %s, want ingress on p4", root.Name, root.Node)
	}
	if root.Trace != root.ID {
		t.Errorf("root span ID %#x != trace ID %#x", root.ID, root.Trace)
	}

	spans := tr.Of(root.Trace)
	if got, want := len(spans), int(tr.Total()); got != want {
		t.Errorf("trace holds %d spans but %d were recorded — a span escaped the tree", got, want)
	}
	idx := spanIndex(spans)
	nodes := make(map[ids.ProcessID]bool)
	for _, s := range spans {
		nodes[s.Node] = true
		if s.Parent != 0 {
			if _, ok := idx[s.Parent]; !ok {
				t.Errorf("span %s on %s: parent %#x not in trace", s.Name, s.Node, s.Parent)
			}
		}
		if s.Dur < 0 {
			t.Errorf("span %s on %s has negative duration %v", s.Name, s.Node, s.Dur)
		}
	}
	if len(nodes) < 4 {
		t.Errorf("trace covers %d nodes, want all 4", len(nodes))
	}

	// The causal chain: p4 ingress → leader ingress → propose → quorum
	// → execute, and follower accepts hang off the propose span.
	leader := namesOn(spans, 1)
	for _, name := range []string{"ingress", "propose", "quorum", "execute"} {
		if _, ok := leader[name]; !ok {
			t.Fatalf("leader recorded no %q span", name)
		}
	}
	if leader["ingress"].Parent != root.ID {
		t.Errorf("leader ingress parent = %#x, want forwarding ingress %#x", leader["ingress"].Parent, root.ID)
	}
	if leader["propose"].Parent != leader["ingress"].ID {
		t.Errorf("propose parent = %#x, want leader ingress %#x", leader["propose"].Parent, leader["ingress"].ID)
	}
	if leader["quorum"].Parent != leader["propose"].ID {
		t.Errorf("quorum parent = %#x, want propose %#x", leader["quorum"].Parent, leader["propose"].ID)
	}
	if leader["execute"].Parent != leader["quorum"].ID {
		t.Errorf("execute parent = %#x, want quorum %#x", leader["execute"].Parent, leader["quorum"].ID)
	}
	for _, p := range []ids.ProcessID{2, 3} {
		follower := namesOn(spans, p)
		acc, ok := follower["accept"]
		if !ok {
			t.Fatalf("%s recorded no accept span", p)
		}
		if acc.Parent != leader["propose"].ID {
			t.Errorf("%s accept parent = %#x, want propose %#x", p, acc.Parent, leader["propose"].ID)
		}
		if acc.Slot != 1 {
			t.Errorf("%s accept slot = %d, want 1", p, acc.Slot)
		}
	}
	// The passive replica's execute (lazy replication via CommitCert)
	// joins the tree through the certificate's embedded PREPARE.
	passive := namesOn(spans, 4)
	if exec, ok := passive["execute"]; !ok {
		t.Error("passive p4 recorded no execute span")
	} else if exec.Parent != leader["propose"].ID {
		t.Errorf("p4 execute parent = %#x, want propose %#x", exec.Parent, leader["propose"].ID)
	}

	// Stage tiling: on the leader the four stages are contiguous on one
	// virtual clock, so their durations sum EXACTLY to the end-to-end
	// latency from batch arrival to execution.
	var sum time.Duration
	for _, name := range []string{"ingress", "propose", "quorum", "execute"} {
		sum += leader[name].Dur
	}
	e2e := leader["execute"].Start + leader["execute"].Dur - leader["ingress"].Start
	if sum != e2e {
		t.Errorf("leader stage durations sum to %v, want end-to-end %v", sum, e2e)
	}
}

// TestMutatedTraceContextDegradesGracefully pins the observability
// contract: the trace context rides OUTSIDE signature coverage, so an
// adversary corrupting (or stripping) it on every PREPARE/COMMIT/BATCH
// frame degrades tracing to unlinked spans but can never disturb the
// protocol — no failed verification, no suspicion, no view change, and
// the request still commits everywhere.
func TestMutatedTraceContextDegradesGracefully(t *testing.T) {
	for _, tc := range []struct {
		name  string
		stamp wire.TraceContext
	}{
		{"scrambled", wire.TraceContext{Trace: 0xDEAD, Span: 0xBEEF}},
		{"stripped", wire.TraceContext{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			restamp := func(frame []byte) []byte {
				m, err := wire.Decode(frame)
				if err != nil {
					return frame
				}
				c, ok := m.(wire.TraceCarrier)
				if !ok {
					return frame
				}
				c.SetTraceCtx(tc.stamp)
				return wire.Encode(m)
			}
			filter := sim.FilterFunc(func(_, _ ids.ProcessID, m wire.Message, _ time.Duration) sim.Verdict {
				switch m.Kind() {
				case wire.TypeBatch, wire.TypePrepare, wire.TypeCommit:
					return sim.Verdict{Mutate: restamp}
				}
				return sim.Verdict{}
			})
			fx, tr := newTraceFixture(t, sim.Options{Filter: filter})
			fx.replicas[4].Submit(req(7, 1, "set traced no"))
			ok := fx.net.RunUntil(func() bool {
				for _, p := range []ids.ProcessID{1, 2, 3} {
					if fx.replicas[p].LastExecuted() < 1 {
						return false
					}
				}
				return true
			}, 5*time.Second)
			if !ok {
				t.Fatal("commit path broke under trace-context corruption")
			}
			for p, n := range fx.nodes {
				if !n.Detector.Suspected().Empty() {
					t.Errorf("%s suspects %s because of a trace-context mutation", p, n.Detector.Suspected())
				}
			}
			if fx.replicas[1].ViewChanges() != 0 {
				t.Error("trace-context corruption triggered a view change")
			}
			// Tracing degraded but kept recording: the leader still has
			// a propose span; it just no longer parents the follower
			// accepts (their PREPARE arrived re-stamped).
			var propose, accepts int
			for _, s := range tr.Spans() {
				switch s.Name {
				case "propose":
					propose++
				case "accept":
					accepts++
					if want := (tc.stamp == wire.TraceContext{}); want != (s.Parent == 0) {
						t.Errorf("accept span parent = %#x under %s context", s.Parent, tc.name)
					}
				}
			}
			if propose == 0 || accepts == 0 {
				t.Errorf("spans stopped being recorded under mutation: propose=%d accepts=%d", propose, accepts)
			}
		})
	}
}

// TestChromeExportGolden pins the Chrome trace-event export of a fixed,
// fully deterministic simulation: span IDs are node-prefixed sequence
// numbers and the virtual clock is seeded, so the export is
// byte-identical across runs (regenerate with UPDATE_GOLDEN=1).
func TestChromeExportGolden(t *testing.T) {
	fx, tr := newTraceFixture(t, sim.Options{Seed: 42})
	for i := 1; i <= 3; i++ {
		fx.replicas[1].Submit(req(9, uint64(i), "set golden run"))
	}
	fx.net.Run(time.Second)
	if fx.replicas[1].LastExecuted() != 3 {
		t.Fatalf("golden scenario executed %d slots, want 3", fx.replicas[1].LastExecuted())
	}
	got := tracer.Capture("golden", tr, fx.net.Events()).Chrome()

	golden := filepath.Join("testdata", "chrome_trace_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Chrome export drifted from golden file %s (%d vs %d bytes); "+
			"regenerate with UPDATE_GOLDEN=1 if the change is intentional", golden, len(got), len(want))
	}
}
