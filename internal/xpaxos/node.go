package xpaxos

import (
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/fd"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/wire"
)

// NewQSNode composes an XPaxos replica with the full quorum-selection
// stack of Figure 1 (failure detector, suspicion store, Algorithm 1
// selector). The returned node and replica run in ModeQuorumSelection.
func NewQSNode(opts Options, nodeOpts core.NodeOptions) (*core.Node, *Replica) {
	opts.Mode = ModeQuorumSelection
	r := NewReplica(opts)
	nodeOpts.App = r
	return core.NewNode(nodeOpts), r
}

// StandaloneOptions configures an enumeration-baseline node.
type StandaloneOptions struct {
	// FD configures the failure detector.
	FD fd.Options
	// HeartbeatPeriod enables heartbeat traffic when positive.
	HeartbeatPeriod time.Duration
	// Replica configures the XPaxos replica (Mode is forced to
	// ModeEnumeration).
	Replica Options
}

// DefaultStandaloneOptions mirrors core.DefaultNodeOptions.
func DefaultStandaloneOptions() StandaloneOptions {
	return StandaloneOptions{
		FD:              fd.DefaultOptions(),
		HeartbeatPeriod: 25 * time.Millisecond,
	}
}

// StandaloneNode runs an XPaxos replica in the original quorum-change
// regime (ModeEnumeration): network → failure detector → replica, with
// no quorum-selection module. FD suspicions feed the replica directly
// and trigger next-quorum view changes.
type StandaloneNode struct {
	opts StandaloneOptions

	env      runtime.Env
	Detector *fd.Detector
	Replica  *Replica
	HB       *fd.Heartbeater
}

var _ runtime.Node = (*StandaloneNode)(nil)

// NewStandaloneNode creates an unstarted enumeration-baseline node.
func NewStandaloneNode(opts StandaloneOptions) *StandaloneNode {
	opts.Replica.Mode = ModeEnumeration
	return &StandaloneNode{opts: opts, Replica: NewReplica(opts.Replica)}
}

// Init implements runtime.Node.
func (n *StandaloneNode) Init(env runtime.Env) {
	n.env = env
	n.Detector = fd.New(n.opts.FD)
	n.Detector.Bind(env,
		func(from ids.ProcessID, m wire.Message) {
			if fd.IsHeartbeat(m) {
				return
			}
			n.Replica.Deliver(from, m)
		},
		n.Replica.OnSuspected,
	)
	n.Replica.Attach(env, n.Detector)
	if n.opts.HeartbeatPeriod > 0 {
		n.HB = fd.NewHeartbeater(n.Detector, n.opts.HeartbeatPeriod)
		n.HB.Start(env)
	}
}

// Receive implements runtime.Node.
func (n *StandaloneNode) Receive(from ids.ProcessID, m wire.Message) {
	n.Detector.Receive(from, m)
}
