package xpaxos

import (
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/fd"
	"quorumselect/internal/host"
	"quorumselect/internal/runtime"
	"quorumselect/internal/storage"
)

// NewQSNode composes an XPaxos replica with the full quorum-selection
// stack of Figure 1 (failure detector, suspicion store, Algorithm 1
// selector). The returned node and replica run in ModeQuorumSelection.
// The quorum system may arrive on either options struct (Options.System
// for the replica, NodeOptions.Quorum for the selector); NewQSNode
// syncs them so the certificate path and the selection path can never
// disagree on what a quorum is.
func NewQSNode(opts Options, nodeOpts core.NodeOptions) (*core.Node, *Replica) {
	opts.Mode = ModeQuorumSelection
	if opts.System == nil {
		opts.System = nodeOpts.Quorum
	} else if nodeOpts.Quorum == nil {
		nodeOpts.Quorum = opts.System
	} else if opts.System.String() != nodeOpts.Quorum.String() {
		panic("xpaxos: Options.System and NodeOptions.Quorum disagree")
	}
	r := NewReplica(opts)
	nodeOpts.App = r
	return core.NewNode(nodeOpts), r
}

// StandaloneOptions configures an enumeration-baseline node.
type StandaloneOptions struct {
	// FD configures the failure detector.
	FD fd.Options
	// HeartbeatPeriod enables heartbeat traffic when positive.
	HeartbeatPeriod time.Duration
	// Replica configures the XPaxos replica (Mode is forced to
	// ModeEnumeration).
	Replica Options
	// Storage, when set, makes the node durable (see
	// host.Options.Storage).
	Storage storage.Backend
	// StorageOptions tune the WAL (see host.Options.StorageOptions).
	StorageOptions storage.Options
}

// DefaultStandaloneOptions mirrors core.DefaultNodeOptions.
func DefaultStandaloneOptions() StandaloneOptions {
	return StandaloneOptions{
		FD:              fd.DefaultOptions(),
		HeartbeatPeriod: 25 * time.Millisecond,
	}
}

// StandaloneNode runs an XPaxos replica in the original quorum-change
// regime (ModeEnumeration): network → failure detector → replica, with
// no quorum-selection module. It is the replica-host kernel in
// ModeFDOnly, with FD suspicions feeding the replica directly to
// trigger next-quorum view changes.
type StandaloneNode struct {
	*host.Host
	Replica *Replica
}

var (
	_ runtime.Node    = (*StandaloneNode)(nil)
	_ runtime.Stopper = (*StandaloneNode)(nil)
)

// NewStandaloneNode creates an unstarted enumeration-baseline node.
func NewStandaloneNode(opts StandaloneOptions) *StandaloneNode {
	opts.Replica.Mode = ModeEnumeration
	r := NewReplica(opts.Replica)
	return &StandaloneNode{
		Host: host.New(host.Options{
			Mode:            host.ModeFDOnly,
			FD:              opts.FD,
			HeartbeatPeriod: opts.HeartbeatPeriod,
			App:             r,
			OnSuspect:       r.OnSuspected,
			Storage:         opts.Storage,
			StorageOptions:  opts.StorageOptions,
		}),
		Replica: r,
	}
}
