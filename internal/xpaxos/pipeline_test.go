package xpaxos_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"quorumselect/internal/chaos"
	"quorumselect/internal/core"
	"quorumselect/internal/crypto"
	"quorumselect/internal/ids"
	"quorumselect/internal/obs/tracer"
	"quorumselect/internal/sim"
	"quorumselect/internal/wire"
	"quorumselect/internal/xpaxos"
)

// TestWindowBoundsInflight pins the backpressure contract: with a
// commit window of w, a burst of submissions proposes exactly w slots
// and pools the rest in the ingress mempool until capacity frees; every
// pooled request still commits, in order, once the pipeline drains.
func TestWindowBoundsInflight(t *testing.T) {
	const total, window = 10, 2
	c := newBatchClusterOpts(t, 4, 1, xpaxos.Options{
		BatchSize: 1,
		Window:    window,
	}, quietNodeOpts(), sim.Options{Latency: sim.ConstantLatency(2 * time.Millisecond)})

	c.submitAll(total)
	// Nothing has round-tripped yet at t=1ms (links are 2ms), so the
	// leader's proposals are exactly the window; the other 8 requests sit
	// in the mempool as buffered ingress, not protocol state.
	c.net.Run(time.Millisecond)
	if got := c.net.Metrics().Counter("xpaxos.prepare.sent"); got != window {
		t.Fatalf("leader proposed %d slots with window %d in flight-limit state", got, window)
	}

	c.runUntilExecuted(t, total)
	for _, p := range []ids.ProcessID{1, 2, 3} {
		execs := c.replicas[p].Executions()
		if len(execs) != total {
			t.Fatalf("%s executed %d requests, want %d", p, len(execs), total)
		}
		for i, e := range execs {
			if e.Slot != uint64(i+1) {
				t.Fatalf("%s executed slot %d at position %d: pipeline broke slot order", p, e.Slot, i)
			}
		}
	}
	lead := c.replicas[1].Executions()
	for _, p := range []ids.ProcessID{2, 3} {
		other := c.replicas[p].Executions()
		for i := range lead {
			if !bytes.Equal(lead[i].Op, other[i].Op) {
				t.Fatalf("%s diverges from leader at slot %d", p, lead[i].Slot)
			}
		}
	}
}

// dropFrom drops every message sent by one process — a silent
// (crash-like omission) fault that stalls the active quorum and forces
// a view change away from it.
type dropFrom struct{ p ids.ProcessID }

func (d dropFrom) Filter(from, _ ids.ProcessID, _ wire.Message, _ time.Duration) sim.Verdict {
	if from == d.p {
		return sim.Verdict{Drop: true}
	}
	return sim.Verdict{}
}

// TestViewChangeWithInflightWindow is the pipelined view-change test:
// the leader has a full window of uncommitted slots in flight (plus a
// mempool of gated requests behind them) when a quorum member goes
// silent and the view changes. Every in-flight slot must survive the
// change via the accepted-log merge and re-propose, the gated residue
// must drain after the install, and the final histories must be
// complete, gap-free, and identical on every member of the new quorum.
func TestViewChangeWithInflightWindow(t *testing.T) {
	const total, window = 8, 4
	c := newBatchClusterOpts(t, 4, 1, xpaxos.Options{
		BatchSize: 1,
		Window:    window,
	}, core.DefaultNodeOptions(), sim.Options{
		Latency: sim.ConstantLatency(2 * time.Millisecond),
		Filter:  dropFrom{p: 2},
	})

	c.submitAll(total)
	// Before the failure detector times out (base 40ms), the stalled
	// pipeline holds exactly a window of proposals: p2's COMMITs never
	// arrive, so nothing commits and nothing new may propose.
	c.net.Run(20 * time.Millisecond)
	if got := c.net.Metrics().Counter("xpaxos.prepare.sent"); got != window {
		t.Fatalf("stalled leader proposed %d slots, want the window %d", got, window)
	}

	// Let suspicion, quorum selection, the view change, the in-flight
	// re-propose, and the mempool drain all play out.
	ok := c.net.RunUntil(func() bool {
		for _, p := range []ids.ProcessID{1, 3, 4} {
			if len(c.replicas[p].Executions()) < total {
				return false
			}
		}
		return true
	}, 60*time.Second)
	if !ok {
		t.Fatalf("pipeline did not recover across the view change: leader executed %d/%d",
			len(c.replicas[1].Executions()), total)
	}
	if vc := c.replicas[1].ViewChanges(); vc == 0 {
		t.Fatal("no view change happened; the test exercised nothing")
	}
	if q := c.replicas[1].ActiveQuorum(); q.Contains(2) {
		t.Fatalf("active quorum %s still contains the silent process", q)
	}

	lead := c.replicas[1].Executions()
	for _, p := range []ids.ProcessID{3, 4} {
		other := c.replicas[p].Executions()
		if len(other) != total {
			t.Fatalf("%s executed %d requests, want %d", p, len(other), total)
		}
		for i := range lead {
			if lead[i].Slot != other[i].Slot || !bytes.Equal(lead[i].Op, other[i].Op) {
				t.Fatalf("%s diverges from leader at position %d: slot %d vs %d",
					p, i, other[i].Slot, lead[i].Slot)
			}
		}
	}
	// No slot lost, none executed twice: positions map 1:1 onto slots.
	for i, e := range lead {
		if e.Slot != uint64(i+1) {
			t.Fatalf("leader history has slot %d at position %d: gap or duplicate across the view change", e.Slot, i)
		}
	}
}

// TestPipelinedBatchingEquivalence is the windowed differential: the
// same workload through the unwindowed unbatched seed path, a
// lockstep window (1), and a deep window with batching must produce
// identical replicated request streams. Windowing changes scheduling
// and backpressure, never history.
func TestPipelinedBatchingEquivalence(t *testing.T) {
	const total = 24
	run := func(batch, window int) []xpaxos.Execution {
		c := newBatchCluster(t, 4, 1, xpaxos.Options{
			BatchSize:       batch,
			MaxBatchLatency: 2 * time.Millisecond,
			Window:          window,
		})
		c.submitAll(total)
		c.runUntilExecuted(t, total)
		return c.replicas[1].Executions()
	}
	ref := run(1, 0)
	if len(ref) != total {
		t.Fatalf("reference run executed %d requests, want %d", len(ref), total)
	}
	for _, cfg := range []struct{ batch, window int }{{1, 1}, {4, 4}, {4, 1}, {1, 16}} {
		got := run(cfg.batch, cfg.window)
		if len(got) != len(ref) {
			t.Fatalf("batch=%d window=%d executed %d requests, reference %d",
				cfg.batch, cfg.window, len(got), len(ref))
		}
		for i := range ref {
			if ref[i].Client != got[i].Client || ref[i].Seq != got[i].Seq ||
				!bytes.Equal(ref[i].Op, got[i].Op) || !bytes.Equal(ref[i].Result, got[i].Result) {
				t.Fatalf("batch=%d window=%d diverges from reference at %d: %v vs %v",
					cfg.batch, cfg.window, i, got[i], ref[i])
			}
		}
	}
}

// TestAsyncVerifyDeterminism replays one seed twice with every
// nondeterminism-prone feature of this PR enabled at once — real
// Ed25519 signatures, the asynchronous verification path, per-link
// reordering, a bounded window — and requires byte-identical outcomes:
// same executions and the same Chrome trace export, span for span.
// This is the claim that async verification in the simulator is
// virtual-time-scheduled, not goroutine-raced.
func TestAsyncVerifyDeterminism(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	run := func() ([]xpaxos.Execution, []byte) {
		auth, err := crypto.NewEd25519Ring(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		tr := tracer.New(0)
		c := newBatchClusterOpts(t, 4, 1, xpaxos.Options{
			BatchSize: 2,
			Window:    3,
		}, quietNodeOpts(), sim.Options{
			Seed:         99,
			Latency:      sim.UniformLatency(time.Millisecond, 8*time.Millisecond),
			Auth:         auth,
			AsyncVerify:  true,
			AllowReorder: true,
			Tracer:       tr,
		})
		const total = 16
		c.submitAll(total)
		c.runUntilExecuted(t, total)
		return c.replicas[1].Executions(), tracer.Capture("determinism", tr, c.net.Events()).Chrome()
	}
	execA, chromeA := run()
	execB, chromeB := run()
	if len(execA) != len(execB) {
		t.Fatalf("replays executed %d vs %d requests", len(execA), len(execB))
	}
	for i := range execA {
		if execA[i].Slot != execB[i].Slot || !bytes.Equal(execA[i].Op, execB[i].Op) ||
			!bytes.Equal(execA[i].Result, execB[i].Result) {
			t.Fatalf("replays diverge at %d: %v vs %v", i, execA[i], execB[i])
		}
	}
	if !bytes.Equal(chromeA, chromeB) {
		t.Fatalf("Chrome exports differ across replays (%d vs %d bytes): async verification leaked nondeterminism",
			len(chromeA), len(chromeB))
	}
}

// TestTraceVerifyWaitSpans pins the tracing contract of asynchronous
// verification: when a signed, trace-carrying message waits for an
// off-loop signature check, the wait is visible as a verify.wait span
// whose parent resolves inside the sender's trace — and when
// verification is synchronous, no such span exists (the PR 6 goldens
// stay intact).
func TestTraceVerifyWaitSpans(t *testing.T) {
	countWaits := func(async bool) int {
		tr := tracer.New(0)
		c := newBatchClusterOpts(t, 4, 1, xpaxos.Options{
			BatchSize: 1,
			Window:    4,
		}, quietNodeOpts(), sim.Options{
			Latency:     sim.ConstantLatency(2 * time.Millisecond),
			AsyncVerify: async,
			Tracer:      tr,
		})
		c.submitAll(6)
		c.runUntilExecuted(t, 6)

		spans := tr.Spans()
		idx := spanIndex(spans)
		waits := 0
		for _, s := range spans {
			if s.Name != "verify.wait" {
				continue
			}
			waits++
			if s.Parent == 0 {
				t.Errorf("verify.wait span on %s has no parent", s.Node)
			} else if _, ok := idx[s.Parent]; !ok {
				t.Errorf("verify.wait span on %s: parent %#x not recorded", s.Node, s.Parent)
			}
		}
		return waits
	}
	if got := countWaits(false); got != 0 {
		t.Fatalf("synchronous run recorded %d verify.wait spans, want 0", got)
	}
	if got := countWaits(true); got == 0 {
		t.Fatal("async run recorded no verify.wait spans")
	}
}

// TestPipelineUnderChaosSchedule replays a chaos-generated fault
// schedule against the windowed pipeline and the unwindowed reference:
// both must commit the identical request stream even when the schedule
// drops, delays, and duplicates protocol traffic mid-window.
func TestPipelineUnderChaosSchedule(t *testing.T) {
	classes := []chaos.FaultClass{
		chaos.FaultOmission, chaos.FaultBurst, chaos.FaultTiming, chaos.FaultDuplicate,
	}
	cfg := ids.MustConfig(4, 1)
	const total = 18
	seeds := chaosSeeds(cfg, classes, 2)
	if len(seeds) == 0 {
		t.Fatal("no usable chaos seeds")
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			run := func(window int) []xpaxos.Execution {
				sc := chaos.GenerateScenario(cfg, seed, classes, false, 4*time.Second)
				c := newBatchClusterOpts(t, 4, 1, xpaxos.Options{
					BatchSize:       2,
					MaxBatchLatency: 2 * time.Millisecond,
					Window:          window,
				}, core.DefaultNodeOptions(), sim.Options{
					Seed:   seed,
					Filter: exemptClientPath{inner: sc.Filter},
				})
				gap := 4 * time.Second / time.Duration(total+1)
				for i := 1; i <= total; i++ {
					i := i
					c.net.At(time.Duration(i)*gap, func() {
						c.replicas[1].Submit(req(uint64(1+i%3), uint64(1+(i-1)/3), fmt.Sprintf("set k%d v%d", i, i)))
					})
				}
				ok := c.net.RunUntil(func() bool {
					return len(c.replicas[1].Executions()) >= total
				}, 60*time.Second)
				if !ok {
					t.Fatalf("window=%d stalled: %d/%d executed under schedule %v",
						window, len(c.replicas[1].Executions()), total, sc.Desc)
				}
				return c.replicas[1].Executions()
			}
			ref := run(0)
			got := run(4)
			if len(got) != len(ref) {
				t.Fatalf("windowed run executed %d requests, reference %d", len(got), len(ref))
			}
			for i := range ref {
				if ref[i].Client != got[i].Client || ref[i].Seq != got[i].Seq ||
					!bytes.Equal(ref[i].Op, got[i].Op) || !bytes.Equal(ref[i].Result, got[i].Result) {
					t.Fatalf("windowed history diverges at %d: %v vs %v", i, got[i], ref[i])
				}
			}
		})
	}
}
