package xpaxos_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/wire"
	"quorumselect/internal/xpaxos"
)

func TestKVMachineSnapshotRoundTrip(t *testing.T) {
	kv := xpaxos.NewKVMachine()
	kv.Apply([]byte("set alpha 1"))
	kv.Apply([]byte("set beta two words"))
	kv.Apply([]byte("append alpha 23"))
	snap := kv.Snapshot()

	restored := xpaxos.NewKVMachine()
	restored.Apply([]byte("set garbage x"))
	if err := restored.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if v, _ := restored.Get("alpha"); v != "123" {
		t.Errorf("alpha = %q, want 123", v)
	}
	if v, _ := restored.Get("beta"); v != "two words" {
		t.Errorf("beta = %q", v)
	}
	if _, ok := restored.Get("garbage"); ok {
		t.Error("Restore did not replace prior state")
	}
	// Determinism: identical state → identical bytes.
	if !bytes.Equal(snap, restored.Snapshot()) {
		t.Error("snapshot not deterministic for identical state")
	}
}

func TestKVMachineRestoreRejectsCorrupt(t *testing.T) {
	kv := xpaxos.NewKVMachine()
	for _, data := range [][]byte{
		{1, 2, 3},
		append(kv.Snapshot(), 0xff), // trailing bytes
	} {
		if err := xpaxos.NewKVMachine().Restore(data); err == nil {
			t.Errorf("corrupt snapshot %v accepted", data)
		}
	}
}

func TestCheckpointingBoundsLog(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	const interval = 10
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	replicas := make(map[ids.ProcessID]*xpaxos.Replica, cfg.N)
	for _, p := range cfg.All() {
		opts := core.DefaultNodeOptions()
		opts.HeartbeatPeriod = 0
		node, r := xpaxos.NewQSNode(xpaxos.Options{CheckpointInterval: interval}, opts)
		replicas[p] = r
		nodes[p] = node
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{})
	const requests = 55
	for i := 1; i <= requests; i++ {
		replicas[1].Submit(req(1, uint64(i), fmt.Sprintf("set k%d v%d", i, i)))
	}
	if !net.RunUntil(func() bool { return replicas[2].LastExecuted() >= requests }, 30*time.Second) {
		t.Fatal("requests did not execute")
	}
	for _, p := range []ids.ProcessID{1, 2, 3} {
		r := replicas[p]
		if r.CheckpointSlot() != 50 {
			t.Errorf("%s: checkpoint slot = %d, want 50", p, r.CheckpointSlot())
		}
		// Only the 5 slots above the checkpoint are retained.
		if r.LogSize() > requests-50 {
			t.Errorf("%s: log size = %d after checkpointing, want ≤ %d", p, r.LogSize(), requests-50)
		}
	}
	// Without checkpointing the log retains everything.
	noCkpt := make(map[ids.ProcessID]runtime.Node, cfg.N)
	var first *xpaxos.Replica
	for _, p := range cfg.All() {
		opts := core.DefaultNodeOptions()
		opts.HeartbeatPeriod = 0
		node, r := xpaxos.NewQSNode(xpaxos.Options{}, opts)
		if first == nil {
			first = r
		}
		noCkpt[p] = node
	}
	net2 := sim.NewNetwork(cfg, noCkpt, sim.Options{})
	for i := 1; i <= requests; i++ {
		first.Submit(req(1, uint64(i), "op"))
	}
	net2.RunUntil(func() bool { return first.LastExecuted() >= requests }, 30*time.Second)
	if first.LogSize() != requests {
		t.Errorf("without checkpointing log size = %d, want %d", first.LogSize(), requests)
	}
}

func TestCheckpointCatchUpAfterViewChange(t *testing.T) {
	// Slots 1..20 execute and are checkpointed (interval 5) among
	// {1,2,3}; the log below slot 20 is gone. p3 crashes. The view
	// change can only hand p4 the checkpoint snapshot — p4 must restore
	// it and then execute new slots on top.
	cfg := ids.MustConfig(4, 1)
	machines := make(map[ids.ProcessID]*xpaxos.KVMachine, cfg.N)
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	replicas := make(map[ids.ProcessID]*xpaxos.Replica, cfg.N)
	wrappers := make(map[ids.ProcessID]*crashable, cfg.N)
	for _, p := range cfg.All() {
		kv := xpaxos.NewKVMachine()
		opts := core.DefaultNodeOptions()
		opts.HeartbeatPeriod = 20 * time.Millisecond
		node, r := xpaxos.NewQSNode(xpaxos.Options{SM: kv, CheckpointInterval: 5}, opts)
		machines[p] = kv
		replicas[p] = r
		wrappers[p] = &crashable{inner: node}
		nodes[p] = wrappers[p]
	}
	dropCerts := sim.FilterFunc(func(_, _ ids.ProcessID, m wire.Message, _ time.Duration) sim.Verdict {
		return sim.Verdict{Drop: m.Kind() == wire.TypeCommitCert}
	})
	net := sim.NewNetwork(cfg, nodes, sim.Options{
		Latency: sim.ConstantLatency(2 * time.Millisecond),
		Filter:  dropCerts,
	})
	for i := 1; i <= 20; i++ {
		replicas[1].Submit(req(1, uint64(i), fmt.Sprintf("set k%d v%d", i, i)))
	}
	if !net.RunUntil(func() bool { return replicas[1].LastExecuted() >= 20 }, 30*time.Second) {
		t.Fatal("setup: slots did not execute")
	}
	if replicas[1].CheckpointSlot() != 20 {
		t.Fatalf("setup: checkpoint slot = %d", replicas[1].CheckpointSlot())
	}

	wrappers[3].crashed = true
	replicas[1].Submit(req(1, 21, "set k21 v21"))
	ok := net.RunUntil(func() bool {
		for _, p := range []ids.ProcessID{1, 2, 4} {
			if replicas[p].LastExecuted() < 21 {
				return false
			}
		}
		return true
	}, 30*time.Second)
	if !ok {
		for p, r := range replicas {
			t.Logf("%s: exec=%d ckpt=%d view=%d quorum=%s",
				p, r.LastExecuted(), r.CheckpointSlot(), r.View(), r.ActiveQuorum())
		}
		t.Fatal("newcomer did not catch up from the checkpoint")
	}
	// p4's state machine must hold the pre-checkpoint keys it never saw
	// as requests.
	for _, key := range []string{"k1", "k13", "k20", "k21"} {
		want, _ := machines[1].Get(key)
		got, ok := machines[4].Get(key)
		if !ok || got != want {
			t.Errorf("p4[%s] = %q (%v), want %q", key, got, ok, want)
		}
	}
	// Duplicate suppression survived the restore.
	replicas[1].Submit(req(1, 21, "set k21 duplicate"))
	net.Run(net.Now() + time.Second)
	if v, _ := machines[1].Get("k21"); v != "v21" {
		t.Errorf("duplicate re-executed after checkpoint restore: k21 = %q", v)
	}
}
