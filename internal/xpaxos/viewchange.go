package xpaxos

import (
	"fmt"
	"sort"

	"quorumselect/internal/ids"
	"quorumselect/internal/logging"
	"quorumselect/internal/obs"
	"quorumselect/internal/obs/tracer"
	"quorumselect/internal/runtime"
	"quorumselect/internal/wire"
)

// OnQuorum implements core.Application: the Quorum Selection module
// issued ⟨QUORUM, Q⟩. Per §V-B the replica suspects every quorum
// ordered before Q (jumping straight to the first view whose quorum is
// Q) and cancels its outstanding expectations.
func (r *Replica) OnQuorum(q ids.Quorum) {
	if r.opts.Mode != ModeQuorumSelection {
		return
	}
	target := r.quorumIndex(q)
	if target < 0 {
		r.log.Logf(logging.LevelError, "xpaxos: quorum %s not in enumeration", q)
		return
	}
	size := len(r.enumeration)
	cur := int(r.view % uint64(size))
	delta := (target - cur + size) % size
	if delta == 0 {
		return // already on this quorum
	}
	r.startViewChange(r.view + uint64(delta))
}

// OnSuspected drives the enumeration baseline: any suspicion of an
// active-quorum member moves to the next view, trying quorums "one
// after the other" as the original XPaxos does — skipping ahead until a
// quorum free of currently-suspected members is reached (or the whole
// enumeration was cycled once, in which case the system is stuck by
// assumption violation and we stop advancing). In quorum-selection mode
// suspicions are handled by the selection module instead.
func (r *Replica) OnSuspected(s ids.ProcSet) {
	if r.opts.Mode != ModeEnumeration {
		return
	}
	for tries := 0; tries < len(r.enumeration) && r.quorumSuspected(s); tries++ {
		r.startViewChange(r.view + 1)
	}
}

func (r *Replica) quorumSuspected(s ids.ProcSet) bool {
	for _, p := range r.active.Members {
		if p != r.env.ID() && s.Contains(p) {
			return true
		}
	}
	return false
}

// startViewChange moves to view v > view: cancel expectations (§V-B),
// mark the view in progress, and send VIEW-CHANGE with the accepted
// log to the members of the new quorum.
func (r *Replica) startViewChange(v uint64) {
	if v <= r.view {
		return
	}
	// A view change in progress that jumps to a higher view keeps its
	// original start: the duration covers the whole outage. The span
	// follows the same rule: one span per outage, tagged with the view
	// finally installed.
	if !r.changing {
		r.vcStart = r.env.Now()
		r.vcTrace = r.traceStart("viewchange", wire.TraceContext{})
	}
	r.vcTrace.SetView(v)
	r.view = v
	r.active = r.quorumAt(v)
	r.changing = true
	r.viewChanges++
	r.env.Metrics().Inc("xpaxos.viewchange", 1)
	runtime.SetNodeGauge(r.env, "xpaxos.view", float64(v))
	runtime.Emit(r.env, obs.Event{Type: obs.TypeViewChangeStart, View: v,
		Detail: r.active.String()})
	r.log.Logf(logging.LevelDebug, "xpaxos: view change to %d, quorum %s", v, r.active)
	r.detector.CancelScope(Scope)
	// Reset per-view round state; the accepted log survives. Messages
	// buffered for an older in-progress view are obsolete. Open
	// commit-path spans die with the view (never recorded); surviving
	// slots re-trace when the new leader re-proposes them.
	r.entries = make(map[uint64]*entry)
	r.buffered = nil
	r.traces = make(map[uint64]*slotTrace)
	// Persist-before-act: the adopted view must be on disk before the
	// VIEW-CHANGE announces it — a replica that crashes after sending
	// must not recover into the abandoned view and accept prepares
	// there.
	r.persistRecord(recViewBytes(v))
	r.persistSync()

	vc := &wire.ViewChange{
		Replica:        r.env.ID(),
		NewViewNum:     v,
		CheckpointSlot: r.ckpt.Slot,
		CheckpointDig:  r.ckpt.Digest,
		Snapshot:       r.ckpt.Snapshot,
		Log:            r.acceptedLog(),
	}
	runtime.Sign(r.env, vc)
	vc.TC = r.vcTrace.Context()
	r.env.Metrics().Inc("xpaxos.viewchange.sent", 1)
	newLeader := r.active.Members[0]
	for _, p := range r.active.Members {
		if p != r.env.ID() {
			r.env.Send(p, vc)
		}
	}
	if r.env.ID() == newLeader {
		r.recordViewChange(vc)
	} else if r.InQuorum() {
		// Expect the NEW-VIEW installation from the incoming leader.
		r.detector.Expect(Scope, newLeader, fmt.Sprintf("NEW-VIEW(v=%d)", v),
			func(m wire.Message) bool {
				nv, ok := m.(*wire.NewView)
				return ok && nv.Leader == newLeader && nv.ViewNum == v
			})
	}
}

// acceptedLog serializes the highest-view accepted prepares, sorted by
// slot.
func (r *Replica) acceptedLog() []wire.LogSlot {
	slots := make([]uint64, 0, len(r.accepted))
	for s := range r.accepted {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	out := make([]wire.LogSlot, 0, len(slots))
	for _, s := range slots {
		out = append(out, wire.LogSlot{Slot: s, Prep: *r.accepted[s]})
	}
	return out
}

// onViewChange collects VIEW-CHANGE votes. A replica seeing a vote for
// a higher view joins it (the standard catch-up rule); the new leader
// installs the view once it holds votes from every member of the new
// quorum.
func (r *Replica) onViewChange(vc *wire.ViewChange) {
	if vc.NewViewNum > r.view {
		r.startViewChange(vc.NewViewNum)
	}
	r.recordViewChange(vc)
}

func (r *Replica) recordViewChange(vc *wire.ViewChange) {
	v := vc.NewViewNum
	if v != r.view || r.quorumAt(v).Members[0] != r.env.ID() {
		return // not the leader of that view (or stale)
	}
	votes, ok := r.vcVotes[v]
	if !ok {
		votes = make(map[ids.ProcessID]*wire.ViewChange)
		r.vcVotes[v] = votes
	}
	votes[vc.Replica] = vc
	// View-change votes hit disk before they count: the install
	// decision below is a function of the vote set, and a leader that
	// installed a view, crashed, and recovered without the votes could
	// otherwise install a different log for the same view from a
	// fresher vote set (see DESIGN.md §10).
	r.persistRecord(recVoteBytes(vc))
	r.persistSync()
	// Install once every member of the new quorum reported (XFT: all
	// q members of the active quorum participate).
	for _, p := range r.active.Members {
		if _, ok := votes[p]; !ok {
			return
		}
	}
	r.installView(v, votes)
}

// installView selects the stable checkpoint (the highest checkpoint
// slot whose digest at least f+1 votes agree on — at least one of them
// correct), merges the reported logs above it (highest prepare view
// wins per slot), broadcasts NEW-VIEW, and re-proposes the merged slots
// in the new view.
func (r *Replica) installView(v uint64, votes map[ids.ProcessID]*wire.ViewChange) {
	ckptSlot, snapshot := r.stableCheckpoint(votes)
	merged := make(map[uint64]wire.Prepare)
	for _, vc := range votes {
		for _, ls := range vc.Log {
			if ls.Slot <= ckptSlot {
				continue // covered by the checkpoint
			}
			cur, ok := merged[ls.Slot]
			if !ok || ls.Prep.View > cur.View {
				merged[ls.Slot] = ls.Prep
			}
		}
	}
	slots := make([]uint64, 0, len(merged))
	for s := range merged {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	log := make([]wire.LogSlot, 0, len(slots))
	for _, s := range slots {
		log = append(log, wire.LogSlot{Slot: s, Prep: merged[s]})
	}

	nv := &wire.NewView{
		Leader:         r.env.ID(),
		ViewNum:        v,
		CheckpointSlot: ckptSlot,
		Snapshot:       snapshot,
		Log:            log,
	}
	runtime.Sign(r.env, nv)
	nv.TC = r.vcTrace.Context()
	r.env.Metrics().Inc("xpaxos.newview.sent", 1)
	for _, p := range r.active.Members {
		if p != r.env.ID() {
			r.env.Send(p, nv)
		}
	}
	r.applyNewView(nv)
}

// stableCheckpoint returns the highest checkpoint slot supported by at
// least f+1 matching (slot, digest) votes, with a snapshot from one of
// the supporters. Slot 0 (no checkpoint) is always available.
func (r *Replica) stableCheckpoint(votes map[ids.ProcessID]*wire.ViewChange) (uint64, []byte) {
	type key struct {
		slot uint64
		dig  string
	}
	count := make(map[key]int)
	snap := make(map[key][]byte)
	for _, vc := range votes {
		k := key{slot: vc.CheckpointSlot, dig: string(vc.CheckpointDig)}
		count[k]++
		snap[k] = vc.Snapshot
	}
	var bestSlot uint64
	var bestSnap []byte
	for k, c := range count {
		if c >= r.cfg.F+1 && k.slot > bestSlot {
			bestSlot = k.slot
			bestSnap = snap[k]
		}
	}
	return bestSlot, bestSnap
}

// onNewView installs a view announced by its leader.
func (r *Replica) onNewView(nv *wire.NewView) {
	if nv.ViewNum < r.view {
		return
	}
	if nv.ViewNum > r.view {
		r.startViewChange(nv.ViewNum)
	}
	if nv.Leader != r.active.Members[0] {
		// Signed NEW-VIEW from a non-leader: commission failure.
		r.detector.Detected(nv.Leader)
		return
	}
	if !nv.TC.Zero() && !r.recovering {
		runtime.TraceInstant(r.env, "newview.recv", nv.TC)
	}
	r.applyNewView(nv)
}

// applyNewView adopts the consolidated log and resumes normal
// operation; the leader re-proposes every slot that is not yet
// executed locally so the commit phase re-runs in the new view.
func (r *Replica) applyNewView(nv *wire.NewView) {
	if !r.changing || nv.ViewNum != r.view {
		return
	}
	r.changing = false
	r.env.Metrics().Observe("xpaxos.viewchange.duration.seconds",
		(r.env.Now() - r.vcStart).Seconds())
	runtime.TraceEnd(r.env, r.vcTrace)
	r.vcTrace = tracer.Active{}
	runtime.Emit(r.env, obs.Event{Type: obs.TypeViewChangeEnd, View: nv.ViewNum,
		Detail: r.active.String()})
	// Catch up from the stable checkpoint if it is ahead of local
	// execution. (The snapshot is taken from the leader's NEW-VIEW; the
	// leader justified it with f+1 matching VIEW-CHANGE digests. A
	// faulty leader forging it is a commission failure outside this
	// reproduction's simplified view change — see DESIGN.md.)
	if nv.CheckpointSlot > r.lastExec {
		if err := r.restoreCheckpoint(nv.CheckpointSlot, nv.Snapshot); err != nil {
			r.log.Logf(logging.LevelError, "xpaxos: checkpoint restore failed: %v", err)
			r.detector.Detected(nv.Leader)
			return
		}
	}
	maxSlot := nv.CheckpointSlot
	for _, ls := range nv.Log {
		prep := ls.Prep
		if cur, ok := r.accepted[ls.Slot]; !ok || prep.View >= cur.View {
			p := prep
			r.accepted[ls.Slot] = &p
		}
		if ls.Slot > maxSlot {
			maxSlot = ls.Slot
		}
	}
	r.log.Logf(logging.LevelDebug, "xpaxos: view %d installed, quorum %s, log to slot %d",
		r.view, r.active, maxSlot)

	// Replay normal-case messages that arrived for this view while the
	// change was still in progress.
	buffered := r.buffered
	r.buffered = nil
	for _, m := range buffered {
		switch msg := m.(type) {
		case *wire.Prepare:
			r.onPrepare(msg)
		case *wire.Commit:
			r.onCommit(msg)
		}
	}

	if r.IsLeader() {
		if r.nextSlot <= maxSlot {
			r.nextSlot = maxSlot + 1
		}
		// Re-propose every slot of the consolidated log under the new
		// view — not just the ones this leader has yet to execute: a
		// member of the new quorum that was passive before (XPaxos
		// keeps non-quorum replicas lazily updated; this reproduction
		// has no separate state-transfer path) needs the full prefix
		// to execute in order. Replicas that already executed a slot
		// re-commit it but skip re-execution.
		for _, ls := range nv.Log {
			// The re-proposal joins the slot's original trace when the
			// merged prepare still carries one: the span tree then shows
			// the request crossing the view change.
			stage := r.traceStart("propose", ls.Prep.TC)
			stage.SetSlot(ls.Slot)
			stage.SetView(r.view)
			req := ls.Prep.Req
			prep := &wire.Prepare{
				Leader: r.env.ID(),
				View:   r.view,
				Slot:   ls.Slot,
				Req:    req,
				// The whole batch re-proposes with its slot; dropping
				// Rest would silently un-commit the tail requests.
				Rest: append([]wire.Request(nil), ls.Prep.Rest...),
			}
			runtime.Sign(r.env, prep)
			prep.TC = stage.Context()
			r.env.Metrics().Inc("xpaxos.prepare.sent", 1)
			for _, p := range r.active.Members {
				if p != r.env.ID() {
					r.env.Send(p, prep)
				}
			}
			r.acceptPrepare(prep, stage)
		}
		// Drain requests queued during the change.
		pending := r.pending
		r.pending = nil
		for _, req := range pending {
			r.Submit(req)
		}
	}
	// Batches may have pooled behind a closed window gate in the old
	// view (the gate reports open again now that r.changing cleared or
	// leadership moved); drain them under the new view's rules.
	r.ingress.Flush()
}
