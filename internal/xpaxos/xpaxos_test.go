package xpaxos_test

import (
	"fmt"
	"testing"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/ids"
	"quorumselect/internal/obs"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/wire"
	"quorumselect/internal/xpaxos"
)

type silent struct{}

func (silent) Init(runtime.Env)                    {}
func (silent) Receive(ids.ProcessID, wire.Message) {}

type qsFixture struct {
	net      *sim.Network
	nodes    map[ids.ProcessID]*core.Node
	replicas map[ids.ProcessID]*xpaxos.Replica
}

func newQSFixture(t *testing.T, n, f int, nodeOpts core.NodeOptions, simOpts sim.Options,
	crashed ids.ProcSet, override map[ids.ProcessID]runtime.Node) *qsFixture {
	t.Helper()
	cfg := ids.MustConfig(n, f)
	nodes := make(map[ids.ProcessID]runtime.Node, n)
	fx := &qsFixture{
		nodes:    make(map[ids.ProcessID]*core.Node, n),
		replicas: make(map[ids.ProcessID]*xpaxos.Replica, n),
	}
	for _, p := range cfg.All() {
		if o, ok := override[p]; ok {
			nodes[p] = o
			continue
		}
		if crashed.Contains(p) {
			nodes[p] = silent{}
			continue
		}
		node, replica := xpaxos.NewQSNode(xpaxos.Options{}, nodeOpts)
		fx.nodes[p] = node
		fx.replicas[p] = replica
		nodes[p] = node
	}
	fx.net = sim.NewNetwork(cfg, nodes, simOpts)
	return fx
}

func quietNodeOpts() core.NodeOptions {
	opts := core.DefaultNodeOptions()
	opts.HeartbeatPeriod = 0
	return opts
}

func req(client, seq uint64, op string) *wire.Request {
	return &wire.Request{Client: client, Seq: seq, Op: []byte(op)}
}

func TestNormalCaseCommitsAndExecutes(t *testing.T) {
	fx := newQSFixture(t, 4, 1, quietNodeOpts(), sim.Options{}, ids.NewProcSet(), nil)
	for i := 1; i <= 5; i++ {
		fx.replicas[1].Submit(req(7, uint64(i), fmt.Sprintf("set k%d v%d", i, i)))
	}
	fx.net.Run(2 * time.Second)
	// Quorum members (1,2,3) execute everything, in the same order.
	for _, p := range []ids.ProcessID{1, 2, 3} {
		r := fx.replicas[p]
		if r.LastExecuted() != 5 {
			t.Errorf("%s executed %d slots, want 5", p, r.LastExecuted())
		}
	}
	a, b := fx.replicas[1].Executions(), fx.replicas[2].Executions()
	for i := range a {
		if string(a[i].Op) != string(b[i].Op) || a[i].Slot != b[i].Slot {
			t.Fatalf("execution order diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// The passive replica p4 follows via lazy replication: the leader
	// ships self-certifying commit certificates (XPaxos keeps passive
	// replicas "lazily updated").
	if fx.replicas[4].LastExecuted() != 5 {
		t.Errorf("passive p4 executed %d slots via lazy replication, want 5", fx.replicas[4].LastExecuted())
	}
	// Nobody was suspected or detected during the fault-free run.
	for p, n := range fx.nodes {
		if !n.Detector.Suspected().Empty() {
			t.Errorf("%s suspects %s in a fault-free run", p, n.Detector.Suspected())
		}
	}
	// No view changes happened.
	if fx.replicas[1].ViewChanges() != 0 {
		t.Errorf("fault-free run did %d view changes", fx.replicas[1].ViewChanges())
	}
}

func TestFigure2MessagePattern(t *testing.T) {
	// One request with quorum size q: q−1 PREPAREs and q×(q−1) COMMITs.
	fx := newQSFixture(t, 7, 2, quietNodeOpts(), sim.Options{}, ids.NewProcSet(), nil)
	fx.replicas[1].Submit(req(1, 1, "set x 1"))
	fx.net.Run(time.Second)
	q := int64(5)
	m := fx.net.Metrics()
	if got := m.Counter("msg.sent.PREPARE"); got != q-1 {
		t.Errorf("PREPARE messages = %d, want %d", got, q-1)
	}
	if got := m.Counter("msg.sent.COMMIT"); got != q*(q-1) {
		t.Errorf("COMMIT messages = %d, want %d", got, q*(q-1))
	}
	for _, p := range []ids.ProcessID{1, 2, 3, 4, 5} {
		if fx.replicas[p].LastExecuted() != 1 {
			t.Errorf("%s did not execute", p)
		}
	}
}

func TestFigure3DelayedPrepare(t *testing.T) {
	// The PREPARE from the leader to p3 is delayed beyond the COMMITs
	// of the other replicas: p3 must adopt the prepare from a COMMIT,
	// send its own COMMIT, and the slot must commit without any false
	// suspicion between correct processes.
	delay := sim.FilterFunc(func(from, to ids.ProcessID, m wire.Message, _ time.Duration) sim.Verdict {
		if from == 1 && to == 3 && m.Kind() == wire.TypePrepare {
			return sim.Verdict{Delay: 15 * time.Millisecond}
		}
		return sim.Verdict{}
	})
	fx := newQSFixture(t, 4, 1, quietNodeOpts(), sim.Options{
		Latency: sim.ConstantLatency(2 * time.Millisecond),
		Filter:  delay,
	}, ids.NewProcSet(), nil)
	fx.replicas[1].Submit(req(1, 1, "set a 1"))
	fx.net.Run(time.Second)
	for _, p := range []ids.ProcessID{1, 2, 3} {
		if fx.replicas[p].LastExecuted() != 1 {
			t.Errorf("%s did not execute the delayed-prepare slot", p)
		}
	}
	for p, n := range fx.nodes {
		if !n.Detector.Suspected().Empty() {
			t.Errorf("%s raised suspicions on a merely-delayed PREPARE: %s",
				p, n.Detector.Suspected())
		}
	}
	if fx.replicas[1].ViewChanges() != 0 {
		t.Error("delayed PREPARE caused a view change")
	}
}

// equivocator is a malicious leader that sends conflicting PREPAREs for
// the same slot to different replicas.
type equivocator struct {
	env runtime.Env
}

func (e *equivocator) Init(env runtime.Env) {
	e.env = env
	prepA := &wire.Prepare{Leader: 1, View: 0, Slot: 1,
		Req: wire.Request{Client: 1, Seq: 1, Op: []byte("op A")}, Sig: []byte{0}}
	prepB := &wire.Prepare{Leader: 1, View: 0, Slot: 1,
		Req: wire.Request{Client: 1, Seq: 1, Op: []byte("op B")}, Sig: []byte{0}}
	env.After(time.Millisecond, func() {
		env.Send(2, prepA)
		env.Send(3, prepB)
	})
}

func (e *equivocator) Receive(ids.ProcessID, wire.Message) {}

func TestEquivocationDetected(t *testing.T) {
	fx := newQSFixture(t, 4, 1, quietNodeOpts(), sim.Options{}, ids.NewProcSet(),
		map[ids.ProcessID]runtime.Node{1: &equivocator{}})
	fx.net.Run(2 * time.Second)
	// p2 and p3 exchanged COMMITs carrying conflicting PREPAREs; at
	// least one of them must detect the leader's equivocation.
	detected := false
	for _, p := range []ids.ProcessID{2, 3} {
		if fx.nodes[p].Detector.IsDetected(1) {
			detected = true
		}
	}
	if !detected {
		t.Fatal("equivocating leader was not detected")
	}
	if fx.net.Metrics().Counter("xpaxos.detected.equivocation") == 0 {
		t.Error("equivocation metric not incremented")
	}
}

// malformedCommitter sends a COMMIT without an embedded PREPARE.
type malformedCommitter struct{ env runtime.Env }

func (mc *malformedCommitter) Init(env runtime.Env) {
	mc.env = env
	bad := &wire.Commit{Replica: 2, View: 0, Slot: 1, HasPrep: false, Sig: []byte{0}}
	env.After(time.Millisecond, func() { env.Send(3, bad) })
}

func (mc *malformedCommitter) Receive(ids.ProcessID, wire.Message) {}

func TestMalformedCommitDetected(t *testing.T) {
	fx := newQSFixture(t, 4, 1, quietNodeOpts(), sim.Options{}, ids.NewProcSet(),
		map[ids.ProcessID]runtime.Node{2: &malformedCommitter{}})
	fx.net.Run(time.Second)
	if !fx.nodes[3].Detector.IsDetected(2) {
		t.Error("malformed COMMIT (no PREPARE) was not detected")
	}
}

func TestCrashedQuorumMemberReplaced(t *testing.T) {
	// p3 (an active-quorum member) is crashed. Commit expectations
	// expire, Quorum Selection excludes p3, the view changes to quorum
	// {1,2,4}, and the outstanding request commits there.
	opts := core.DefaultNodeOptions()
	opts.HeartbeatPeriod = 0 // commit expectations alone must catch this
	fx := newQSFixture(t, 4, 1, opts, sim.Options{Latency: sim.ConstantLatency(2 * time.Millisecond)},
		ids.NewProcSet(3), nil)
	fx.replicas[1].Submit(req(9, 1, "set x crash-test"))
	ok := fx.net.RunUntil(func() bool {
		for _, p := range []ids.ProcessID{1, 2, 4} {
			if fx.replicas[p].LastExecuted() < 1 {
				return false
			}
		}
		return true
	}, 10*time.Second)
	if !ok {
		for p, r := range fx.replicas {
			t.Logf("%s: view=%d quorum=%s executed=%d", p, r.View(), r.ActiveQuorum(), r.LastExecuted())
		}
		t.Fatal("request did not execute after quorum member crash")
	}
	want := ids.NewQuorum([]ids.ProcessID{1, 2, 4})
	for _, p := range []ids.ProcessID{1, 2, 4} {
		r := fx.replicas[p]
		if !ids.NewQuorum(r.ActiveQuorum().Members).Equal(want) {
			t.Errorf("%s: active quorum = %s, want %s", p, r.ActiveQuorum(), want)
		}
		if r.ViewChanges() == 0 {
			t.Errorf("%s performed no view change", p)
		}
	}
	// Executions agree.
	a := fx.replicas[1].Executions()
	b := fx.replicas[2].Executions()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("execution logs differ: %v vs %v", a, b)
	}
	if string(a[0].Op) != "set x crash-test" {
		t.Errorf("executed op = %q", a[0].Op)
	}
	// The recovery is observable: the view change and the commit both
	// left latency samples, and the bus carries the phase transitions.
	reg := fx.net.Metrics()
	if h, ok := reg.Hist("xpaxos.viewchange.duration.seconds"); !ok || h.Count == 0 {
		t.Error("xpaxos.viewchange.duration.seconds histogram empty after a view change")
	} else if p50 := h.Percentile(50); p50 <= 0 {
		t.Errorf("view-change duration p50 = %v, want positive", p50)
	}
	if h, ok := reg.Hist("xpaxos.commit.latency.seconds"); !ok || h.Count == 0 {
		t.Error("xpaxos.commit.latency.seconds histogram empty after a commit")
	}
	bus := fx.net.Events()
	if len(bus.OfType(obs.TypeViewChangeStart)) == 0 || len(bus.OfType(obs.TypeViewChangeEnd)) == 0 {
		t.Error("missing VIEW_CHANGE_START/VIEW_CHANGE_END events")
	}
}

func TestCrashedLeaderReplaced(t *testing.T) {
	// The default leader p1 is crashed. With heartbeats on, everyone
	// suspects it; the new quorum {2,3,4} elects p2 as leader and new
	// requests execute there.
	opts := core.DefaultNodeOptions()
	opts.HeartbeatPeriod = 15 * time.Millisecond
	fx := newQSFixture(t, 4, 1, opts, sim.Options{Latency: sim.ConstantLatency(2 * time.Millisecond)},
		ids.NewProcSet(1), nil)
	ok := fx.net.RunUntil(func() bool {
		for _, p := range []ids.ProcessID{2, 3, 4} {
			r := fx.replicas[p]
			if r.ActiveQuorum().Contains(1) || r.Leader() != 2 {
				return false
			}
		}
		return true
	}, 10*time.Second)
	if !ok {
		t.Fatal("crashed leader was not replaced")
	}
	fx.replicas[2].Submit(req(5, 1, "set y after-leader-crash"))
	ok = fx.net.RunUntil(func() bool {
		for _, p := range []ids.ProcessID{2, 3, 4} {
			if fx.replicas[p].LastExecuted() < 1 {
				return false
			}
		}
		return true
	}, 10*time.Second)
	if !ok {
		t.Fatal("request did not execute under the new leader")
	}
}

func TestEnumerationBaselineCrash(t *testing.T) {
	// The enumeration baseline must also recover from a crashed quorum
	// member by advancing views round-robin until a clean quorum is
	// found.
	cfg := ids.MustConfig(4, 1)
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	replicas := make(map[ids.ProcessID]*xpaxos.Replica, cfg.N)
	for _, p := range cfg.All() {
		if p == 3 {
			nodes[p] = silent{}
			continue
		}
		sn := xpaxos.NewStandaloneNode(xpaxos.StandaloneOptions{
			FD:              xpaxos.DefaultStandaloneOptions().FD,
			HeartbeatPeriod: 15 * time.Millisecond,
		})
		replicas[p] = sn.Replica
		nodes[p] = sn
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{Latency: sim.ConstantLatency(2 * time.Millisecond)})
	ok := net.RunUntil(func() bool {
		for _, p := range []ids.ProcessID{1, 2, 4} {
			if replicas[p].ActiveQuorum().Contains(3) {
				return false
			}
		}
		return true
	}, 10*time.Second)
	if !ok {
		for p, r := range replicas {
			t.Logf("%s: view=%d quorum=%s", p, r.View(), r.ActiveQuorum())
		}
		t.Fatal("baseline did not move past the crashed member")
	}
	replicas[1].Submit(req(2, 1, "set z baseline"))
	ok = net.RunUntil(func() bool {
		for _, p := range []ids.ProcessID{1, 2, 4} {
			if replicas[p].LastExecuted() < 1 {
				return false
			}
		}
		return true
	}, 10*time.Second)
	if !ok {
		t.Fatal("baseline did not execute after view change")
	}
}

// crashable allows killing a live node mid-run.
type crashable struct {
	inner   runtime.Node
	crashed bool
}

func (c *crashable) Init(env runtime.Env) { c.inner.Init(env) }
func (c *crashable) Receive(from ids.ProcessID, m wire.Message) {
	if !c.crashed {
		c.inner.Receive(from, m)
	}
}

func TestPassiveReplicaCatchesUpAfterViewChange(t *testing.T) {
	// Slots 1..5 commit in view 0 among {1,2,3} while p4 is passive —
	// with the lazy-replication certificates suppressed, so p4 really
	// holds nothing. p3 then crashes; the view change must hand p4 the
	// full log so it executes from slot 1.
	cfg := ids.MustConfig(4, 1)
	opts := core.DefaultNodeOptions()
	opts.HeartbeatPeriod = 20 * time.Millisecond
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	replicas := make(map[ids.ProcessID]*xpaxos.Replica, cfg.N)
	wrappers := make(map[ids.ProcessID]*crashable, cfg.N)
	for _, p := range cfg.All() {
		node, replica := xpaxos.NewQSNode(xpaxos.Options{}, opts)
		replicas[p] = replica
		wrappers[p] = &crashable{inner: node}
		nodes[p] = wrappers[p]
	}
	dropCerts := sim.FilterFunc(func(_, _ ids.ProcessID, m wire.Message, _ time.Duration) sim.Verdict {
		return sim.Verdict{Drop: m.Kind() == wire.TypeCommitCert}
	})
	net := sim.NewNetwork(cfg, nodes, sim.Options{
		Latency: sim.ConstantLatency(2 * time.Millisecond),
		Filter:  dropCerts,
	})
	for i := 1; i <= 5; i++ {
		replicas[1].Submit(req(1, uint64(i), "op"))
	}
	if !net.RunUntil(func() bool { return replicas[1].LastExecuted() >= 5 }, 10*time.Second) {
		t.Fatal("setup: slots 1..5 did not commit")
	}
	if replicas[4].LastExecuted() != 0 {
		t.Fatalf("setup: passive p4 executed %d", replicas[4].LastExecuted())
	}
	wrappers[3].crashed = true
	replicas[1].Submit(req(1, 6, "op"))
	ok := net.RunUntil(func() bool {
		for _, p := range []ids.ProcessID{1, 2, 4} {
			if replicas[p].LastExecuted() < 6 {
				return false
			}
		}
		return true
	}, 30*time.Second)
	if !ok {
		for p, r := range replicas {
			t.Logf("%s: executed=%d view=%d quorum=%s", p, r.LastExecuted(), r.View(), r.ActiveQuorum())
		}
		t.Fatal("former passive replica did not catch up after view change")
	}
	// Execution logs agree prefix-wise between an old member and the
	// newcomer.
	a, b := replicas[1].Executions(), replicas[4].Executions()
	if len(b) != 6 {
		t.Fatalf("p4 executions = %d, want 6", len(b))
	}
	for i := range b {
		if a[i].Slot != b[i].Slot || string(a[i].Op) != string(b[i].Op) {
			t.Fatalf("execution mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestClientRequestForwarding(t *testing.T) {
	// Submitting at a non-leader forwards to the leader.
	fx := newQSFixture(t, 4, 1, quietNodeOpts(), sim.Options{}, ids.NewProcSet(), nil)
	fx.replicas[2].Submit(req(3, 1, "set f forwarded"))
	fx.net.Run(time.Second)
	for _, p := range []ids.ProcessID{1, 2, 3} {
		if fx.replicas[p].LastExecuted() != 1 {
			t.Errorf("%s did not execute the forwarded request", p)
		}
	}
}

func TestDuplicateRequestSuppressed(t *testing.T) {
	fx := newQSFixture(t, 4, 1, quietNodeOpts(), sim.Options{}, ids.NewProcSet(), nil)
	fx.replicas[1].Submit(req(3, 1, "set d once"))
	fx.net.Run(time.Second)
	fx.replicas[1].Submit(req(3, 1, "set d once")) // duplicate
	fx.net.Run(fx.net.Now() + time.Second)
	if got := fx.replicas[2].LastExecuted(); got != 1 {
		t.Errorf("duplicate executed: lastExec = %d, want 1", got)
	}
}

func TestOnQuorumSameQuorumNoViewChange(t *testing.T) {
	// A ⟨QUORUM⟩ event naming the already-active quorum must not
	// trigger a view change (the delta == 0 path of §V-B).
	fx := newQSFixture(t, 4, 1, quietNodeOpts(), sim.Options{}, ids.NewProcSet(), nil)
	r := fx.replicas[2]
	r.OnQuorum(ids.NewQuorum([]ids.ProcessID{1, 2, 3})) // the default
	fx.net.Run(time.Second)
	if r.ViewChanges() != 0 {
		t.Errorf("redundant QUORUM caused %d view changes", r.ViewChanges())
	}
	if r.View() != 0 {
		t.Errorf("view = %d, want 0", r.View())
	}
}

func TestKVMachineStateAgrees(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	machines := make(map[ids.ProcessID]*xpaxos.KVMachine, cfg.N)
	replicas := make(map[ids.ProcessID]*xpaxos.Replica, cfg.N)
	for _, p := range cfg.All() {
		kv := xpaxos.NewKVMachine()
		node, replica := xpaxos.NewQSNode(xpaxos.Options{SM: kv}, quietNodeOpts())
		machines[p] = kv
		replicas[p] = replica
		nodes[p] = node
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{})
	replicas[1].Submit(req(1, 1, "set name quorum"))
	replicas[1].Submit(req(1, 2, "append name -selection"))
	net.Run(2 * time.Second)
	for _, p := range []ids.ProcessID{1, 2, 3} {
		v, ok := machines[p].Get("name")
		if !ok || v != "quorum-selection" {
			t.Errorf("%s: name = %q, %v", p, v, ok)
		}
	}
}
