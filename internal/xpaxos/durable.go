// Durable replica state (host.DurableApp): what XPaxos must persist
// before acting, and how a restarted replica rebuilds itself.
//
// WAL records (first byte is the kind):
//
//	recView      — the view adopted at startViewChange, synced before
//	               the VIEW-CHANGE message is sent: a replica must not
//	               forget it abandoned a view.
//	recAccepted  — an accepted PREPARE, synced before this replica's
//	               COMMIT goes out: the COMMIT promises the prepare is
//	               part of the replica's log.
//	recCommitted — a slot's deciding PREPARE, synced before execution
//	               and before the commit certificate ships.
//	recVCVote    — a VIEW-CHANGE vote received by the incoming leader,
//	               synced before it counts toward installing the view
//	               (see DESIGN.md §10 for why votes hit disk first).
//
// The durable snapshot (written through host.AppLog.Snapshot whenever a
// checkpoint is taken or restored) carries the view, the proposal
// cursor, the checkpoint blob (state machine + client table), and the
// execution history, so recovery is snapshot + WAL-tail replay.
package xpaxos

import (
	"fmt"

	"quorumselect/internal/host"
	"quorumselect/internal/ids"
	"quorumselect/internal/logging"
	"quorumselect/internal/obs"
	"quorumselect/internal/runtime"
	"quorumselect/internal/wire"
)

const (
	recView      byte = 1
	recAccepted  byte = 2
	recCommitted byte = 3
	recVCVote    byte = 4
)

var _ host.DurableApp = (*Replica)(nil)

// persistRecord appends one durable record; persistSync is the
// persist-before-act barrier. An error reaching this code is always a
// tolerated shutdown artifact: the host kernel fail-stops (panics) on
// any real persist failure before returning it (host.Host.storageErr),
// so what comes back here is storage.ErrCrashed from the simulated
// backend after an injected power cut — when the process is already
// dead by fiat — or storage.ErrClosed when Stop raced the event loop.
// Those are counted, not acted on.
func (r *Replica) persistRecord(rec []byte) {
	if r.wal == nil || r.recovering {
		return
	}
	if err := r.wal.Append(rec); err != nil {
		r.env.Metrics().Inc("xpaxos.wal.errors", 1)
	}
}

func (r *Replica) persistSync() {
	if r.wal == nil || r.recovering {
		return
	}
	if err := r.wal.Sync(); err != nil {
		r.env.Metrics().Inc("xpaxos.wal.errors", 1)
	}
}

func recViewBytes(v uint64) []byte {
	var b wire.Buffer
	b.PutUint8(recView)
	b.PutUint64(v)
	return b.Bytes()
}

func recPrepareBytes(kind byte, p *wire.Prepare) []byte {
	var b wire.Buffer
	b.PutUint8(kind)
	b.PutBytes(wire.Encode(p))
	return b.Bytes()
}

func recVoteBytes(vc *wire.ViewChange) []byte {
	var b wire.Buffer
	b.PutUint8(recVCVote)
	b.PutBytes(wire.Encode(vc))
	return b.Bytes()
}

// persistSnapshot writes the durable snapshot through the host log,
// compacting the WAL. Called wherever the in-memory checkpoint moves.
func (r *Replica) persistSnapshot() {
	if r.wal == nil || r.recovering {
		return
	}
	if err := r.wal.Snapshot(r.encodeDurable()); err != nil {
		r.env.Metrics().Inc("xpaxos.wal.errors", 1)
	}
}

// encodeDurable serializes the replica's application section of the
// durable snapshot. The execution history rides along so a recovered
// replica reports the same history prefix it acknowledged before the
// crash (the chaos history checker compares cross-replica histories
// index-wise); a production system would persist only the checkpoint
// and align by slot.
func (r *Replica) encodeDurable() []byte {
	var b wire.Buffer
	b.PutUint64(r.view)
	b.PutUint64(r.nextSlot)
	b.PutUint64(r.ckpt.Slot)
	b.PutBytes(r.ckpt.Snapshot)
	b.PutUint32(uint32(len(r.executions)))
	for i := range r.executions {
		e := &r.executions[i]
		b.PutUint64(e.Slot)
		b.PutUint64(e.Client)
		b.PutUint64(e.Seq)
		b.PutBytes(e.Op)
		b.PutBytes(e.Result)
	}
	return b.Bytes()
}

func (r *Replica) restoreDurable(data []byte) error {
	rd := wire.NewReader(data)
	view, err := rd.Uint64()
	if err != nil {
		return fmt.Errorf("xpaxos: durable snapshot view: %w", err)
	}
	nextSlot, err := rd.Uint64()
	if err != nil {
		return fmt.Errorf("xpaxos: durable snapshot nextSlot: %w", err)
	}
	ckptSlot, err := rd.Uint64()
	if err != nil {
		return fmt.Errorf("xpaxos: durable snapshot ckptSlot: %w", err)
	}
	ckptData, err := rd.Bytes()
	if err != nil {
		return fmt.Errorf("xpaxos: durable snapshot checkpoint: %w", err)
	}
	count, err := rd.Uint32()
	if err != nil {
		return fmt.Errorf("xpaxos: durable snapshot executions: %w", err)
	}
	execs := make([]Execution, 0, count)
	for i := uint32(0); i < count; i++ {
		var e Execution
		var e1, e2, e3, e4, e5 error
		e.Slot, e1 = rd.Uint64()
		e.Client, e2 = rd.Uint64()
		e.Seq, e3 = rd.Uint64()
		e.Op, e4 = rd.Bytes()
		e.Result, e5 = rd.Bytes()
		if e1 != nil || e2 != nil || e3 != nil || e4 != nil || e5 != nil {
			return fmt.Errorf("xpaxos: durable snapshot execution %d corrupt", i)
		}
		execs = append(execs, e)
	}
	if view > r.view {
		r.view = view
	}
	if ckptSlot > 0 && len(ckptData) > 0 {
		if err := r.restoreCheckpoint(ckptSlot, ckptData); err != nil {
			return err
		}
	}
	r.executions = execs
	if nextSlot > r.nextSlot {
		r.nextSlot = nextSlot
	}
	return nil
}

func (r *Replica) replayRecord(rec []byte) error {
	rd := wire.NewReader(rec)
	kind, err := rd.Uint8()
	if err != nil {
		return err
	}
	switch kind {
	case recView:
		v, err := rd.Uint64()
		if err != nil {
			return err
		}
		if v > r.view {
			r.view = v
		}
	case recAccepted, recCommitted:
		data, err := rd.Bytes()
		if err != nil {
			return err
		}
		m, err := wire.Decode(data)
		if err != nil {
			return err
		}
		p, ok := m.(*wire.Prepare)
		if !ok {
			return fmt.Errorf("xpaxos: %T in prepare record", m)
		}
		if cur, have := r.accepted[p.Slot]; !have || p.View >= cur.View {
			r.accepted[p.Slot] = p
		}
		if kind == recCommitted {
			r.committedReq[p.Slot] = p.Requests()
		}
		if p.Slot >= r.nextSlot {
			r.nextSlot = p.Slot + 1
		}
		if p.View > r.view {
			r.view = p.View
		}
	case recVCVote:
		data, err := rd.Bytes()
		if err != nil {
			return err
		}
		m, err := wire.Decode(data)
		if err != nil {
			return err
		}
		vc, ok := m.(*wire.ViewChange)
		if !ok {
			return fmt.Errorf("xpaxos: %T in view-change record", m)
		}
		votes, have := r.vcVotes[vc.NewViewNum]
		if !have {
			votes = make(map[ids.ProcessID]*wire.ViewChange)
			r.vcVotes[vc.NewViewNum] = votes
		}
		votes[vc.Replica] = vc
	default:
		return fmt.Errorf("xpaxos: unknown record kind %d", kind)
	}
	return nil
}

// Recover implements host.DurableApp: install the durable snapshot,
// replay the WAL tail in append order, then resume from the recovered
// view. A recovered replica restarts in normal case (changing=false):
// if it crashed mid view change, the vote it synced is still in
// vcVotes/accepted, and the failure detector re-drives the view change
// if the view never installed — recovery must not block on peers
// resending votes they already sent.
func (r *Replica) Recover(log host.AppLog, snapshot []byte, records [][]byte) error {
	r.wal = log
	if len(snapshot) == 0 && len(records) == 0 {
		return nil
	}
	r.recovering = true
	defer func() { r.recovering = false }()
	if len(snapshot) > 0 {
		if err := r.restoreDurable(snapshot); err != nil {
			return err
		}
	}
	replayed := 0
	for _, rec := range records {
		if err := r.replayRecord(rec); err != nil {
			// A record the CRC accepted but the codec rejects means
			// the schema changed underneath the log; surface it.
			return fmt.Errorf("xpaxos: replaying record %d: %w", replayed, err)
		}
		replayed++
	}
	r.active = r.quorumAt(r.view)
	r.changing = false
	if r.nextSlot <= r.lastExec {
		r.nextSlot = r.lastExec + 1
	}
	// Re-execute whatever the replayed committedReq slots allow; the
	// OnExecute callback and checkpointing are suppressed (recovering)
	// so replay is invisible to clients.
	r.execute()
	runtime.SetNodeGauge(r.env, "xpaxos.view", float64(r.view))
	r.env.Metrics().Inc("xpaxos.recoveries", 1)
	runtime.Emit(r.env, obs.Event{Type: obs.TypeLifecycle, View: r.view, Slot: r.lastExec,
		Detail: fmt.Sprintf("xpaxos recovered: view=%d lastExec=%d records=%d", r.view, r.lastExec, replayed)})
	r.log.Logf(logging.LevelDebug, "xpaxos: recovered view=%d lastExec=%d nextSlot=%d (%d records)",
		r.view, r.lastExec, r.nextSlot, replayed)
	return nil
}
