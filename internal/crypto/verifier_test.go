package crypto

import (
	"fmt"
	"sync"
	"testing"

	"quorumselect/internal/ids"
)

// certItems builds the verification batch of a quorum commit
// certificate over ring: one distinct COMMIT signature per quorum
// member plus, for each, a copy of the SAME embedded PREPARE signature
// — 2q items, q+1 distinct checks.
func certItems(tb testing.TB, cfg ids.Config, ring Authenticator) []BatchItem {
	tb.Helper()
	members := cfg.All()[:cfg.Q()]
	prepData := []byte("PREPARE view=1 slot=42 op=set k v")
	prepSig, err := ring.Sign(members[0], prepData)
	if err != nil {
		tb.Fatal(err)
	}
	items := make([]BatchItem, 0, 2*len(members))
	for _, p := range members {
		commitData := []byte(fmt.Sprintf("COMMIT view=1 slot=42 replica=%s", p))
		commitSig, err := ring.Sign(p, commitData)
		if err != nil {
			tb.Fatal(err)
		}
		items = append(items,
			BatchItem{Signer: p, Data: commitData, Sig: commitSig},
			BatchItem{Signer: members[0], Data: prepData, Sig: prepSig})
	}
	return items
}

func TestVerifySerialAligned(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	ring := NewHMACRing(cfg, []byte("vk"))
	items := certItems(t, cfg, ring)
	items[2].Sig = []byte("forged")
	errs := VerifySerial(ring, items)
	if len(errs) != len(items) {
		t.Fatalf("got %d errors for %d items", len(errs), len(items))
	}
	for i, err := range errs {
		if (i == 2) != (err != nil) {
			t.Fatalf("item %d: unexpected verdict %v", i, err)
		}
	}
}

func TestPoolVerifyBatchDedupsAndAligns(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	ring := NewHMACRing(cfg, []byte("vk"))
	pool := NewPool(ring, 2)
	defer pool.Close()

	items := certItems(t, cfg, ring)
	errs := pool.VerifyBatch(items)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("valid cert item %d rejected: %v", i, err)
		}
	}

	// A forged duplicate must fail everywhere it is aliased: corrupt the
	// shared prepare signature on every copy.
	bad := certItems(t, cfg, ring)
	for i := 1; i < len(bad); i += 2 {
		bad[i].Sig = []byte("forged")
	}
	errs = pool.VerifyBatch(bad)
	for i, err := range errs {
		odd := i%2 == 1
		if odd && err == nil {
			t.Fatalf("forged prepare copy %d accepted", i)
		}
		if !odd && err != nil {
			t.Fatalf("valid commit %d rejected: %v", i, err)
		}
	}
}

func TestPoolVerifyBatchSignerConfusion(t *testing.T) {
	// Two items with identical signature bytes but different signers (or
	// different data) must NOT share a verdict: the dedup key includes
	// both.
	cfg := ids.MustConfig(4, 1)
	ring := NewHMACRing(cfg, []byte("vk"))
	pool := NewPool(ring, 1)
	defer pool.Close()
	data := []byte("payload")
	sig, err := ring.Sign(1, data)
	if err != nil {
		t.Fatal(err)
	}
	items := []BatchItem{
		{Signer: 1, Data: data, Sig: sig},
		{Signer: 2, Data: data, Sig: sig},                 // same sig, wrong signer
		{Signer: 1, Data: []byte("other data"), Sig: sig}, // same sig, wrong data
	}
	errs := pool.VerifyBatch(items)
	if errs[0] != nil {
		t.Fatalf("genuine item rejected: %v", errs[0])
	}
	if errs[1] == nil {
		t.Fatal("signature accepted for the wrong signer")
	}
	if errs[2] == nil {
		t.Fatal("signature accepted over the wrong data")
	}
}

func TestPoolVerifyAsyncDelivers(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	ring := NewHMACRing(cfg, []byte("vk"))
	pool := NewPool(ring, 2)
	defer pool.Close()

	data := []byte("async payload")
	sig, err := ring.Sign(3, data)
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 64
	results := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		if i%2 == 0 {
			pool.VerifyAsync(3, data, sig, func(err error) { results <- err })
		} else {
			pool.VerifyAsync(3, data, []byte("forged"), func(err error) { results <- err })
		}
	}
	good, bad := 0, 0
	for i := 0; i < jobs; i++ {
		if err := <-results; err != nil {
			bad++
		} else {
			good++
		}
	}
	if good != jobs/2 || bad != jobs/2 {
		t.Fatalf("got %d good / %d bad verdicts, want %d/%d", good, bad, jobs/2, jobs/2)
	}
}

func TestPoolCloseDropsQueued(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	ring := NewHMACRing(cfg, []byte("vk"))
	pool := NewPool(ring, 1)
	pool.Close()
	pool.Close() // idempotent
	// Submissions after Close are dropped without invoking done.
	pool.VerifyAsync(1, []byte("x"), []byte("y"), func(error) {
		t.Error("done callback ran after Close")
	})
}

// TestPoolRaceStorm hammers one pool from many goroutines mixing async
// submissions, batched passes, and a mid-storm Close — the -race
// harness for the verifier's locking.
func TestPoolRaceStorm(t *testing.T) {
	cfg := ids.MustConfig(7, 2)
	ring := NewHMACRing(cfg, []byte("storm"))
	pool := NewPool(ring, 4)
	items := certItems(t, cfg, ring)
	data := []byte("storm payload")
	sig, err := ring.Sign(1, data)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if g%2 == 0 {
					pool.VerifyAsync(1, data, sig, func(error) {})
				} else {
					pool.VerifyBatch(items)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		pool.Close()
	}()
	wg.Wait()
	pool.Close()
}

// BenchmarkQuorumCertVerify measures the signature cost of validating
// one lazy-replication commit certificate at n=7, f=2 (q=5): 2q
// signature checks serially versus one batched pass whose dedup
// collapses the q identical embedded-prepare copies into a single
// check (q+1 total). The ns/verify metric is per certificate item, so
// the batched/serial ratio is the per-signature amortization benchjson
// derives.
func BenchmarkQuorumCertVerify(b *testing.B) {
	cfg := ids.MustConfig(7, 2)
	ring, err := NewEd25519Ring(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	items := certItems(b, cfg, ring)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, err := range VerifySerial(ring, items) {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(items)), "ns/verify")
	})
	b.Run("batched", func(b *testing.B) {
		pool := NewPool(ring, 0)
		defer pool.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, err := range pool.VerifyBatch(items) {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(items)), "ns/verify")
	})
}
