package crypto

import (
	"bytes"
	gort "runtime"
	"sync"
	"sync/atomic"

	"quorumselect/internal/ids"
)

// BatchItem is one signature check of a batched verification pass:
// did Signer sign Data with Sig?
type BatchItem struct {
	Signer ids.ProcessID
	Data   []byte
	Sig    []byte
}

// VerifySerial checks every item independently, in order, on the
// calling goroutine — the baseline the batched pass amortizes against.
func VerifySerial(auth Authenticator, items []BatchItem) []error {
	errs := make([]error, len(items))
	for i, it := range items {
		errs[i] = auth.Verify(it.Signer, it.Data, it.Sig)
	}
	return errs
}

// verifyJob is one queued asynchronous verification.
type verifyJob struct {
	item BatchItem
	done func(error)
}

// Pool verifies signatures off the caller's thread: a fixed set of
// standing workers drains an unbounded job queue, so the event loop
// submitting work is never blocked (blocking it could deadlock against
// a worker trying to post a completion back onto that same loop).
//
// Two entry points share the workers' Authenticator:
//
//   - VerifyAsync queues one check and invokes done(err) from a worker
//     goroutine when it completes. Completions are unordered; callers
//     needing arrival order re-sequence (see fd.Detector).
//   - VerifyBatch checks a batch synchronously, deduplicating identical
//     (signer, data, sig) items so each distinct signature is verified
//     once, and fanning the distinct checks out across the CPUs. A
//     quorum commit certificate embeds the same PREPARE in every
//     COMMIT, so dedup alone cuts a cert's cost from 2q to q+1 checks.
//
// Pool is safe for concurrent use. Close stops the workers; jobs still
// queued at Close are dropped without their done callback (the host
// tearing the pool down has already detached the loop they would post
// to).
type Pool struct {
	auth    Authenticator
	workers int

	mu     sync.Mutex
	queue  []verifyJob
	wake   chan struct{}
	closed bool

	done chan struct{}
	wg   sync.WaitGroup
}

// NewPool starts a verification pool with the given worker count;
// workers <= 0 selects GOMAXPROCS.
func NewPool(auth Authenticator, workers int) *Pool {
	if workers <= 0 {
		workers = gort.GOMAXPROCS(0)
	}
	p := &Pool{
		auth:    auth,
		workers: workers,
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// VerifyAsync queues one signature check; done(err) is called from a
// worker goroutine. After Close the job is dropped and done is never
// called.
func (p *Pool) VerifyAsync(signer ids.ProcessID, data, sig []byte, done func(error)) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.queue = append(p.queue, verifyJob{item: BatchItem{Signer: signer, Data: data, Sig: sig}, done: done})
	p.mu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		job, ok := p.pop()
		if !ok {
			select {
			case <-p.wake:
				continue
			case <-p.done:
				return
			}
		}
		job.done(p.auth.Verify(job.item.Signer, job.item.Data, job.item.Sig))
	}
}

func (p *Pool) pop() (verifyJob, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queue) == 0 {
		return verifyJob{}, false
	}
	job := p.queue[0]
	p.queue[0] = verifyJob{}
	p.queue = p.queue[1:]
	if len(p.queue) > 0 {
		// More work remains: keep the wake token set so another idle
		// worker picks it up.
		select {
		case p.wake <- struct{}{}:
		default:
		}
	}
	return job, true
}

// VerifyBatch checks all items and returns one error slice aligned with
// them. Identical items — same signer, same signature, same data —
// are verified once and share the result; the distinct checks run
// across min(Workers, distinct) goroutines. The call blocks until the
// whole batch is decided.
func (p *Pool) VerifyBatch(items []BatchItem) []error {
	errs := make([]error, len(items))
	if len(items) == 0 {
		return errs
	}
	// Dedup: alias[i] names the representative index whose result item
	// i shares. Signature bytes key the map (identical data virtually
	// implies identical sigs for honest signers); data equality is
	// confirmed before aliasing so a colliding signature over different
	// bytes still gets its own check.
	alias := make([]int, len(items))
	distinct := make([]int, 0, len(items))
	seen := make(map[string][]int, len(items))
	for i, it := range items {
		key := string(it.Sig)
		rep := -1
		for _, j := range seen[key] {
			r := items[j]
			if r.Signer == it.Signer && bytes.Equal(r.Data, it.Data) {
				rep = j
				break
			}
		}
		if rep >= 0 {
			alias[i] = rep
			continue
		}
		alias[i] = i
		distinct = append(distinct, i)
		seen[key] = append(seen[key], i)
	}

	workers := p.workers
	if workers > len(distinct) {
		workers = len(distinct)
	}
	if workers <= 1 {
		for _, i := range distinct {
			it := items[i]
			errs[i] = p.auth.Verify(it.Signer, it.Data, it.Sig)
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					k := int(next.Add(1))
					if k >= len(distinct) {
						return
					}
					i := distinct[k]
					it := items[i]
					errs[i] = p.auth.Verify(it.Signer, it.Data, it.Sig)
				}
			}()
		}
		wg.Wait()
	}
	for i := range items {
		if alias[i] != i {
			errs[i] = errs[alias[i]]
		}
	}
	return errs
}

// Close stops the workers and drops any queued jobs. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.queue = nil
	p.mu.Unlock()
	close(p.done)
	p.wg.Wait()
}
