package crypto

import (
	"testing"

	"quorumselect/internal/ids"
)

func rings(t *testing.T) map[string]Authenticator {
	t.Helper()
	cfg := ids.MustConfig(4, 1)
	ed, err := NewEd25519Ring(cfg, nil)
	if err != nil {
		t.Fatalf("NewEd25519Ring: %v", err)
	}
	return map[string]Authenticator{
		"ed25519": ed,
		"hmac":    NewHMACRing(cfg, []byte("master secret")),
	}
}

func TestSignVerify(t *testing.T) {
	for name, ring := range rings(t) {
		t.Run(name, func(t *testing.T) {
			msg := []byte("the canonical bytes of a message")
			sig, err := ring.Sign(2, msg)
			if err != nil {
				t.Fatalf("Sign: %v", err)
			}
			if err := ring.Verify(2, msg, sig); err != nil {
				t.Errorf("Verify of genuine signature failed: %v", err)
			}
		})
	}
}

func TestVerifyRejectsTamperedData(t *testing.T) {
	for name, ring := range rings(t) {
		t.Run(name, func(t *testing.T) {
			msg := []byte("original")
			sig, _ := ring.Sign(1, msg)
			if err := ring.Verify(1, []byte("tampered"), sig); err == nil {
				t.Error("tampered data verified")
			}
		})
	}
}

func TestVerifyRejectsWrongSigner(t *testing.T) {
	for name, ring := range rings(t) {
		t.Run(name, func(t *testing.T) {
			msg := []byte("hello")
			sig, _ := ring.Sign(1, msg)
			if err := ring.Verify(2, msg, sig); err == nil {
				t.Error("signature by p1 verified as p2 (impersonation)")
			}
		})
	}
}

func TestVerifyRejectsGarbageSignature(t *testing.T) {
	for name, ring := range rings(t) {
		t.Run(name, func(t *testing.T) {
			if err := ring.Verify(1, []byte("x"), []byte("not a signature")); err == nil {
				t.Error("garbage signature verified")
			}
		})
	}
}

func TestUnknownSigner(t *testing.T) {
	for name, ring := range rings(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := ring.Sign(99, []byte("x")); err == nil {
				t.Error("Sign for unknown process succeeded")
			}
			if err := ring.Verify(99, []byte("x"), []byte("sig")); err == nil {
				t.Error("Verify for unknown process succeeded")
			}
		})
	}
}

func TestEd25519View(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	full, err := NewEd25519Ring(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	view := full.View(2)
	msg := []byte("data")
	if _, err := view.Sign(2, msg); err != nil {
		t.Errorf("view cannot sign as its owner: %v", err)
	}
	if _, err := view.Sign(3, msg); err == nil {
		t.Error("view signed as a different process")
	}
	// The view still verifies everyone.
	sig, _ := full.Sign(3, msg)
	if err := view.Verify(3, msg, sig); err != nil {
		t.Errorf("view cannot verify p3: %v", err)
	}
}

func TestDeterministicKeyGeneration(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	a, _ := NewEd25519Ring(cfg, deterministicReader(7))
	b, _ := NewEd25519Ring(cfg, deterministicReader(7))
	msg := []byte("m")
	sig, _ := a.Sign(1, msg)
	if err := b.Verify(1, msg, sig); err != nil {
		t.Error("same seed produced different keys")
	}
}

func TestNopRing(t *testing.T) {
	var ring NopRing
	sig, err := ring.Sign(1, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ring.Verify(42, []byte("anything"), sig); err != nil {
		t.Error("NopRing must accept everything")
	}
}

func TestDigest(t *testing.T) {
	a := Digest([]byte("x"))
	b := Digest([]byte("x"))
	c := Digest([]byte("y"))
	if string(a) != string(b) {
		t.Error("Digest not deterministic")
	}
	if string(a) == string(c) {
		t.Error("Digest collision on different inputs")
	}
	if len(a) != 32 {
		t.Errorf("Digest length = %d, want 32", len(a))
	}
}
