package crypto

import "quorumselect/internal/ids"

// DomainAuth wraps an Authenticator with domain separation: every sign
// and verify runs over domain || 0x00 || data instead of the raw data.
// Two DomainAuths over the same inner ring but different domains accept
// none of each other's signatures, which is how the fleet keeps shard
// groups cryptographically disjoint: a frame signed for shard 2 and
// misrouted to shard 5 fails verification there even though both shards
// share one keyring per process.
//
// The NUL terminator makes the wrapping injective as long as domains
// themselves contain no NUL byte (enforced by NewDomainAuth): no
// (domain, data) pair collides with any other, so domain separation
// never weakens the inner authenticator.
type DomainAuth struct {
	inner  Authenticator
	prefix []byte // domain || 0x00
}

var _ Authenticator = (*DomainAuth)(nil)

// NewDomainAuth wraps inner under the given domain. Domains must be
// non-empty and NUL-free; violating either panics (a misconfigured
// domain is a programming error, not a runtime condition).
func NewDomainAuth(inner Authenticator, domain string) *DomainAuth {
	if domain == "" {
		panic("crypto: empty signing domain")
	}
	for i := 0; i < len(domain); i++ {
		if domain[i] == 0 {
			panic("crypto: signing domain contains NUL")
		}
	}
	prefix := make([]byte, 0, len(domain)+1)
	prefix = append(prefix, domain...)
	prefix = append(prefix, 0)
	return &DomainAuth{inner: inner, prefix: prefix}
}

// Inner returns the wrapped authenticator.
func (a *DomainAuth) Inner() Authenticator { return a.inner }

// Wrap returns domain || 0x00 || data — the bytes the inner
// authenticator actually signs. Callers that hand verification work to
// a raw pool (runtime.RawAsyncVerifier) wrap explicitly and verify
// against the inner ring.
func (a *DomainAuth) Wrap(data []byte) []byte {
	out := make([]byte, 0, len(a.prefix)+len(data))
	out = append(out, a.prefix...)
	return append(out, data...)
}

// Sign implements Authenticator.
func (a *DomainAuth) Sign(as ids.ProcessID, data []byte) ([]byte, error) {
	return a.inner.Sign(as, a.Wrap(data))
}

// Verify implements Authenticator.
func (a *DomainAuth) Verify(signer ids.ProcessID, data []byte, sig []byte) error {
	return a.inner.Verify(signer, a.Wrap(data), sig)
}
