// Package crypto provides the message-authentication primitives the
// paper assumes unbreakable ("we assume that cryptographic primitives
// cannot be broken", §IV).
//
// Two interchangeable authenticators are provided:
//
//   - Ed25519Ring: real public-key signatures (crypto/ed25519), used by
//     the TCP deployment and any test that exercises actual forgery
//     resistance.
//   - HMACRing: per-pair HMAC-SHA256 authenticators, cheaper, matching
//     the MAC-based authentication common in PBFT-style systems.
//   - NopRing: no-op authenticator for pure algorithm simulations where
//     the adversary is modeled at the protocol level and crypto cost
//     would only slow the event loop.
//
// All three implement Authenticator, so protocol code is agnostic.
package crypto

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/rand"

	"quorumselect/internal/ids"
)

// Authenticator signs canonical message bytes on behalf of the local
// process and verifies signatures attributed to any process in Π.
type Authenticator interface {
	// Sign returns a signature over data using the key of process as.
	// Implementations may restrict signing to the local process.
	Sign(as ids.ProcessID, data []byte) ([]byte, error)
	// Verify checks that sig is a valid signature over data by signer.
	Verify(signer ids.ProcessID, data []byte, sig []byte) error
}

// ErrBadSignature is returned by Verify on any authentication failure.
var ErrBadSignature = errors.New("crypto: signature verification failed")

// ErrUnknownSigner is returned when the claimed signer is not in Π.
var ErrUnknownSigner = errors.New("crypto: unknown signer")

// Digest returns the SHA-256 digest of data; used for request hashes in
// COMMIT and baseline phase messages.
func Digest(data []byte) []byte {
	d := sha256.Sum256(data)
	return d[:]
}

// Ed25519Ring holds one ed25519 keypair per process. All processes know
// all public keys; each runtime instance additionally holds the private
// keys it is entitled to use (in simulations, all of them).
type Ed25519Ring struct {
	pub  map[ids.ProcessID]ed25519.PublicKey
	priv map[ids.ProcessID]ed25519.PrivateKey
}

var _ Authenticator = (*Ed25519Ring)(nil)

// NewEd25519Ring generates a fresh keyring for all n processes using
// the given randomness source (pass a seeded source for deterministic
// tests; nil falls back to a fixed-seed source).
func NewEd25519Ring(cfg ids.Config, rnd io.Reader) (*Ed25519Ring, error) {
	if rnd == nil {
		rnd = deterministicReader(1)
	}
	r := &Ed25519Ring{
		pub:  make(map[ids.ProcessID]ed25519.PublicKey, cfg.N),
		priv: make(map[ids.ProcessID]ed25519.PrivateKey, cfg.N),
	}
	for _, p := range cfg.All() {
		pub, priv, err := ed25519.GenerateKey(rnd)
		if err != nil {
			return nil, fmt.Errorf("crypto: generating key for %s: %w", p, err)
		}
		r.pub[p] = pub
		r.priv[p] = priv
	}
	return r, nil
}

// Sign implements Authenticator.
func (r *Ed25519Ring) Sign(as ids.ProcessID, data []byte) ([]byte, error) {
	priv, ok := r.priv[as]
	if !ok {
		return nil, fmt.Errorf("%w: no private key for %s", ErrUnknownSigner, as)
	}
	return ed25519.Sign(priv, data), nil
}

// Verify implements Authenticator.
func (r *Ed25519Ring) Verify(signer ids.ProcessID, data []byte, sig []byte) error {
	pub, ok := r.pub[signer]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSigner, signer)
	}
	if !ed25519.Verify(pub, data, sig) {
		return fmt.Errorf("%w: signer %s", ErrBadSignature, signer)
	}
	return nil
}

// View returns a restricted ring containing all public keys but only
// the private key of owner, modelling a real deployment where each
// process holds only its own signing key.
func (r *Ed25519Ring) View(owner ids.ProcessID) *Ed25519Ring {
	v := &Ed25519Ring{
		pub:  r.pub,
		priv: map[ids.ProcessID]ed25519.PrivateKey{},
	}
	if priv, ok := r.priv[owner]; ok {
		v.priv[owner] = priv
	}
	return v
}

// HMACRing derives one symmetric key per process from a master secret
// and authenticates with HMAC-SHA256. A signature by process p can be
// verified by anyone holding the ring — adequate for simulations and
// for trusted-LAN deployments, and substantially faster than ed25519.
type HMACRing struct {
	keys map[ids.ProcessID][]byte
}

var _ Authenticator = (*HMACRing)(nil)

// NewHMACRing derives per-process keys from master for all processes.
func NewHMACRing(cfg ids.Config, master []byte) *HMACRing {
	r := &HMACRing{keys: make(map[ids.ProcessID][]byte, cfg.N)}
	for _, p := range cfg.All() {
		mac := hmac.New(sha256.New, master)
		fmt.Fprintf(mac, "process-key-%d", p)
		r.keys[p] = mac.Sum(nil)
	}
	return r
}

// Sign implements Authenticator.
func (r *HMACRing) Sign(as ids.ProcessID, data []byte) ([]byte, error) {
	key, ok := r.keys[as]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSigner, as)
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(data)
	return mac.Sum(nil), nil
}

// Verify implements Authenticator.
func (r *HMACRing) Verify(signer ids.ProcessID, data []byte, sig []byte) error {
	want, err := r.Sign(signer, data)
	if err != nil {
		return err
	}
	if !hmac.Equal(want, sig) {
		return fmt.Errorf("%w: signer %s", ErrBadSignature, signer)
	}
	return nil
}

// NopRing accepts everything. Simulation-only: with NopRing the
// adversary is modeled at the protocol level (which messages faulty
// processes send) rather than the crypto level.
type NopRing struct{}

var _ Authenticator = NopRing{}

// Sign implements Authenticator; the returned tag is constant.
func (NopRing) Sign(ids.ProcessID, []byte) ([]byte, error) { return []byte{0}, nil }

// Verify implements Authenticator; it always succeeds.
func (NopRing) Verify(ids.ProcessID, []byte, []byte) error { return nil }

// deterministicReader yields a reproducible byte stream for key
// generation in tests and simulations.
func deterministicReader(seed int64) io.Reader {
	return readerFunc{r: rand.New(rand.NewSource(seed))}
}

type readerFunc struct{ r *rand.Rand }

func (f readerFunc) Read(p []byte) (int, error) {
	// rand.Rand.Read fills the whole slice from the generator's word
	// stream (8 bytes per draw) and never fails; drawing one byte per
	// Intn call made key generation for large rings measurably slow.
	return f.r.Read(p)
}
