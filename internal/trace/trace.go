// Package trace captures structured, virtually-timestamped protocol
// events from simulation runs. It plugs in as a logging.Logger, so
// every module's existing log lines become queryable events without
// touching protocol code; the simulator's deterministic clock makes
// traces reproducible byte-for-byte across runs with the same seed.
//
// Typical use:
//
//	rec := trace.NewRecorder(clock, logging.LevelDebug)
//	net := sim.NewNetwork(cfg, nodes, sim.Options{Logger: rec})
//	...
//	fmt.Print(rec.Timeline(trace.Filter{Contains: "QUORUM"}))
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"quorumselect/internal/logging"
)

// Clock supplies the timestamp for each event — in simulations, the
// network's virtual clock (sim.Network.Now satisfies it via a closure).
type Clock func() time.Duration

// Event is one captured log line.
type Event struct {
	At      time.Duration
	Level   logging.Level
	Message string
}

// String renders the event as a timeline row.
func (e Event) String() string {
	return fmt.Sprintf("%10s %-5s %s", e.At, e.Level, e.Message)
}

// DefaultCapacity is the ring size used by NewRecorder: ample for test
// assertions and CLI timelines while bounding memory on long or chatty
// runs (each captured line is retained, so unbounded growth was easy to
// hit with Debug-level capture).
const DefaultCapacity = 65536

// Recorder captures events up to a maximum level into a bounded ring;
// once full, the oldest events are evicted and counted in Dropped. It
// is safe for concurrent use (the TCP transport logs from multiple
// goroutines).
type Recorder struct {
	clock Clock
	max   logging.Level

	mu    sync.Mutex
	buf   []Event
	total uint64 // events ever captured
}

var _ logging.Logger = (*Recorder)(nil)

// NewRecorder returns a recorder timestamping with clock (nil clock
// records zero timestamps) and capturing lines at or below max, bounded
// at DefaultCapacity events.
func NewRecorder(clock Clock, max logging.Level) *Recorder {
	return NewBounded(clock, max, DefaultCapacity)
}

// NewBounded returns a recorder retaining up to capacity events
// (capacity <= 0 selects DefaultCapacity).
func NewBounded(clock Clock, max logging.Level, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{clock: clock, max: max, buf: make([]Event, capacity)}
}

// Logf implements logging.Logger.
func (r *Recorder) Logf(level logging.Level, format string, args ...any) {
	if level > r.max {
		return
	}
	var at time.Duration
	if r.clock != nil {
		at = r.clock()
	}
	e := Event{At: at, Level: level, Message: fmt.Sprintf(format, args...)}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[int(r.total%uint64(len(r.buf)))] = e
	r.total++
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.retained())
}

// Dropped returns how many events were evicted from the ring.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - r.retained()
}

// retained returns the number of events still in the ring (mu held).
func (r *Recorder) retained() uint64 {
	if r.total < uint64(len(r.buf)) {
		return r.total
	}
	return uint64(len(r.buf))
}

// Filter selects events.
type Filter struct {
	// Contains keeps only events whose message contains this substring
	// (empty keeps all).
	Contains string
	// MaxLevel keeps only events at or below this level (zero keeps
	// all).
	MaxLevel logging.Level
	// From/To bound the timestamps; a zero To means no upper bound.
	From, To time.Duration
}

func (f Filter) match(e Event) bool {
	if f.Contains != "" && !strings.Contains(e.Message, f.Contains) {
		return false
	}
	if f.MaxLevel != 0 && e.Level > f.MaxLevel {
		return false
	}
	if e.At < f.From {
		return false
	}
	if f.To != 0 && e.At > f.To {
		return false
	}
	return true
}

// Events returns a copy of the matching retained events, in capture
// order (which, under the deterministic simulator, is causal order).
func (r *Recorder) Events(f Filter) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	n := r.retained()
	for i := r.total - n; i < r.total; i++ {
		e := r.buf[int(i%uint64(len(r.buf)))]
		if f.match(e) {
			out = append(out, e)
		}
	}
	return out
}

// Timeline renders the matching events, one per line.
func (r *Recorder) Timeline(f Filter) string {
	var b strings.Builder
	for _, e := range r.Events(f) {
		fmt.Fprintln(&b, e)
	}
	return b.String()
}

// Count returns how many events match.
func (r *Recorder) Count(f Filter) int { return len(r.Events(f)) }
