package trace_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/ids"
	"quorumselect/internal/logging"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/trace"
)

func TestRecorderBasics(t *testing.T) {
	now := time.Duration(0)
	rec := trace.NewRecorder(func() time.Duration { return now }, logging.LevelDebug)
	rec.Logf(logging.LevelInfo, "first %d", 1)
	now = 50 * time.Millisecond
	rec.Logf(logging.LevelDebug, "second")
	rec.Logf(logging.LevelTrace, "dropped (too verbose)")

	if rec.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rec.Len())
	}
	events := rec.Events(trace.Filter{})
	if events[0].Message != "first 1" || events[0].At != 0 {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].At != 50*time.Millisecond {
		t.Errorf("event 1 at %v", events[1].At)
	}
}

func TestRecorderFilters(t *testing.T) {
	now := time.Duration(0)
	rec := trace.NewRecorder(func() time.Duration { return now }, logging.LevelDebug)
	rec.Logf(logging.LevelError, "boom")
	now = 10 * time.Millisecond
	rec.Logf(logging.LevelInfo, "quorum issued")
	now = 20 * time.Millisecond
	rec.Logf(logging.LevelDebug, "quorum recomputed")

	if got := rec.Count(trace.Filter{Contains: "quorum"}); got != 2 {
		t.Errorf("Contains filter = %d, want 2", got)
	}
	if got := rec.Count(trace.Filter{MaxLevel: logging.LevelInfo}); got != 2 {
		t.Errorf("MaxLevel filter = %d, want 2", got)
	}
	if got := rec.Count(trace.Filter{From: 15 * time.Millisecond}); got != 1 {
		t.Errorf("From filter = %d, want 1", got)
	}
	if got := rec.Count(trace.Filter{To: 15 * time.Millisecond}); got != 2 {
		t.Errorf("To filter = %d, want 2", got)
	}
	tl := rec.Timeline(trace.Filter{Contains: "boom"})
	if !strings.Contains(tl, "ERROR") || !strings.Contains(tl, "boom") {
		t.Errorf("Timeline = %q", tl)
	}
}

func TestRecorderRingEviction(t *testing.T) {
	rec := trace.NewBounded(nil, logging.LevelDebug, 4)
	for i := 1; i <= 10; i++ {
		rec.Logf(logging.LevelInfo, "line %d", i)
	}
	if rec.Len() != 4 {
		t.Fatalf("Len = %d, want 4", rec.Len())
	}
	if rec.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", rec.Dropped())
	}
	events := rec.Events(trace.Filter{})
	if len(events) != 4 || events[0].Message != "line 7" || events[3].Message != "line 10" {
		t.Fatalf("retained events = %v", events)
	}
}

func TestRecorderBoundedDefaultCapacity(t *testing.T) {
	rec := trace.NewBounded(nil, logging.LevelDebug, 0)
	rec.Logf(logging.LevelInfo, "one")
	if rec.Len() != 1 || rec.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", rec.Len(), rec.Dropped())
	}
}

// TestRecorderConcurrency hammers Logf/Events/Len/Dropped from multiple
// goroutines; meaningful under -race.
func TestRecorderConcurrency(t *testing.T) {
	rec := trace.NewBounded(nil, logging.LevelDebug, 128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				rec.Logf(logging.LevelInfo, "g%d line %d", g, i)
				if i%100 == 0 {
					_ = rec.Events(trace.Filter{Contains: fmt.Sprintf("g%d", g)})
					_ = rec.Len()
					_ = rec.Dropped()
				}
			}
		}(g)
	}
	wg.Wait()
	if rec.Len() != 128 {
		t.Fatalf("Len = %d, want 128", rec.Len())
	}
	if rec.Dropped() != 8*500-128 {
		t.Fatalf("Dropped = %d, want %d", rec.Dropped(), 8*500-128)
	}
}

func TestRecorderCapturesSimulationDeterministically(t *testing.T) {
	run := func() string {
		cfg := ids.MustConfig(4, 1)
		opts := core.DefaultNodeOptions()
		opts.HeartbeatPeriod = 0
		nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
		coreNodes := make(map[ids.ProcessID]*core.Node, cfg.N)
		for _, p := range cfg.All() {
			node := core.NewNode(opts)
			coreNodes[p] = node
			nodes[p] = node
		}
		var net *sim.Network
		rec := trace.NewRecorder(func() time.Duration { return net.Now() }, logging.LevelDebug)
		net = sim.NewNetwork(cfg, nodes, sim.Options{Seed: 3, Logger: rec})
		coreNodes[1].Selector.OnSuspected(ids.NewProcSet(2))
		net.Run(time.Second)
		return rec.Timeline(trace.Filter{Contains: "QUORUM"})
	}
	a, b := run(), run()
	if a == "" {
		t.Fatal("no QUORUM events captured")
	}
	if a != b {
		t.Fatalf("traces differ between identical runs:\n%s\nvs\n%s", a, b)
	}
	// Every process logged the same quorum decision.
	if got := strings.Count(a, "QUORUM {p1,p3,p4}"); got != 4 {
		t.Errorf("expected 4 QUORUM events, trace:\n%s", a)
	}
}
