package chaos

import (
	"fmt"
	"strings"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/crypto"
	"quorumselect/internal/fd"
	"quorumselect/internal/host"
	"quorumselect/internal/ids"
	"quorumselect/internal/logging"
	"quorumselect/internal/obs"
	"quorumselect/internal/obs/tracer"
	"quorumselect/internal/pbftlite"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/storage"
	"quorumselect/internal/tendermint"
	"quorumselect/internal/trace"
	"quorumselect/internal/wire"
	"quorumselect/internal/xpaxos"
)

// Protocol names a cluster composition the harness can fuzz.
type Protocol string

// The compositions under test.
const (
	// ProtocolQS is the core-only quorum-selection stack (no
	// application): Figure 1 without an SMR on top. The only cluster
	// whose crash faults may restart, because Host.Init rebuilds all
	// protocol state from scratch.
	ProtocolQS Protocol = "qs"
	// ProtocolXPaxos is XPaxos composed with quorum selection.
	ProtocolXPaxos Protocol = "xpaxos"
	// ProtocolPBFT is the PBFT-style ActiveQuorum replica composed with
	// quorum selection. It has no view-change recovery for dropped
	// slots, so the harness checks safety only.
	ProtocolPBFT Protocol = "pbftlite"
	// ProtocolTendermint is the tendermint-style replica composed with
	// quorum selection.
	ProtocolTendermint Protocol = "tendermint"
)

// AllProtocols returns every protocol, in stable order.
func AllProtocols() []Protocol {
	return []Protocol{ProtocolQS, ProtocolXPaxos, ProtocolPBFT, ProtocolTendermint}
}

// ParseProtocols parses a comma-separated protocol list; "all" or ""
// selects every protocol.
func ParseProtocols(s string) ([]Protocol, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return AllProtocols(), nil
	}
	known := make(map[Protocol]bool)
	for _, p := range AllProtocols() {
		known[p] = true
	}
	var out []Protocol
	for _, part := range strings.Split(s, ",") {
		p := Protocol(strings.TrimSpace(part))
		if !known[p] {
			return nil, fmt.Errorf("chaos: unknown protocol %q", p)
		}
		out = append(out, p)
	}
	return out, nil
}

// restartable reports whether crash faults may restart processes of
// this protocol. The core-only stack restarts stateless by design;
// xpaxos and pbftlite restart by recovering their durable state from a
// per-member storage backend (see durable). Tendermint has no durable
// layer yet, so its crashes stay permanent.
func (p Protocol) restartable() bool {
	return p == ProtocolQS || p == ProtocolXPaxos || p == ProtocolPBFT
}

// durable reports whether the protocol's members are composed with a
// storage backend, making crash-restart recovery meaningful.
func (p Protocol) durable() bool { return p == ProtocolXPaxos || p == ProtocolPBFT }

// smr reports whether the protocol carries a replicated history.
func (p Protocol) smr() bool { return p != ProtocolQS }

// checksLiveness reports whether the harness may demand post-fault
// progress. pbftlite is excluded: without view changes, one dropped
// PRE-PREPARE stalls in-order execution forever by design.
func (p Protocol) checksLiveness() bool {
	return p == ProtocolXPaxos || p == ProtocolTendermint
}

// settles reports whether the composition quiesces once faults stop,
// which is what the quorum-selection Agreement and Termination checks
// assume. pbftlite is excluded for the same reason it skips liveness: a
// slot stuck on a dropped PRE-PREPARE keeps failing protocol-level
// expectations forever, so suspicions — and with them quorums — keep
// churning by design and never converge.
func (p Protocol) settles() bool { return p != ProtocolPBFT }

// member is one process of a chaos cluster: the simulator-facing node
// plus the protocol-generic inspection hooks the checkers use.
type member struct {
	node    runtime.Node
	host    *host.Host
	submit  func(*wire.Request)
	history func() []xpaxos.Execution
	// backend is the member's durable storage (nil for non-durable
	// protocols). It survives member replacement on restart: it is the
	// only state a resurrected process inherits.
	backend *storage.MemBackend
}

// running reports whether the member's host is live (not crashed).
func (m *member) running() bool { return m.host.State() == host.StateRunning }

// cluster is one simulated system under chaos: n composed processes,
// the network, and the run's recorders.
type cluster struct {
	cfg       ids.Config
	protocol  Protocol
	batchSize int
	window    int
	skipSync  bool
	fdOpts    fd.Options
	net       *sim.Network
	members   map[ids.ProcessID]*member
	rec       *trace.Recorder
	bus       *obs.Bus
	spans     *tracer.Tracer
}

// newCluster builds the protocol's composition for every process and
// wires it into a seeded simulated network. All runs authenticate with
// a real (HMAC) ring: chaos mutates frames, and only unforgeable
// signatures make "a corrupted signed message is dropped, not
// attributed" hold the way the paper assumes.
func newCluster(cfg ids.Config, run Config, seed int64, filter sim.Filter) *cluster {
	c := &cluster{
		cfg:       cfg,
		protocol:  run.Protocol,
		batchSize: run.BatchSize,
		window:    run.Window,
		skipSync:  run.TamperSkipSync,
		fdOpts:    core.DefaultNodeOptions().FD,
		members:   make(map[ids.ProcessID]*member, cfg.N),
		bus:       obs.NewBus(0),
		spans:     tracer.New(0),
	}
	latency := sim.UniformLatency(2*time.Millisecond, 12*time.Millisecond)
	if run.Topology != nil {
		latency = run.Topology.LatencyModel()
		// A WAN link slower than the LAN-tuned failure detector would
		// turn every heartbeat into a false suspicion — the same scaling
		// the load generator's sim mode applies.
		if oneWay := run.Topology.MaxOneWay(); 4*oneWay > c.fdOpts.BaseTimeout {
			c.fdOpts.BaseTimeout = 4 * oneWay
			if 10*c.fdOpts.BaseTimeout > c.fdOpts.MaxTimeout {
				c.fdOpts.MaxTimeout = 10 * c.fdOpts.BaseTimeout
			}
		}
		if lf := run.Topology.LinkFilter(); lf != nil {
			filter = sim.ChainFilters(lf, filter)
		}
	}
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	for _, p := range cfg.All() {
		m := c.newMember(nil)
		c.members[p] = m
		nodes[p] = m.node
	}
	// The recorder's clock closes over the network pointer, which is
	// assigned right after — by the time anything logs, it is set.
	c.rec = trace.NewRecorder(func() time.Duration { return c.net.Now() }, logging.LevelDebug)
	c.net = sim.NewNetwork(cfg, nodes, sim.Options{
		Metrics:      run.Metrics,
		Seed:         seed,
		Latency:      latency,
		Filter:       filter,
		Auth:         crypto.NewHMACRing(cfg, []byte("chaos-master")),
		Logger:       c.rec,
		Events:       c.bus,
		Tracer:       c.spans,
		AllowReorder: run.Reorder,
		AsyncVerify:  run.AsyncVerify,
	})
	return c
}

// newMember composes one process of the cluster's protocol. For
// durable protocols a nil backend allocates a fresh one (initial
// construction); a non-nil backend is inherited from a crashed
// predecessor (restart-with-recovery).
func (c *cluster) newMember(backend *storage.MemBackend) *member {
	if c.protocol.durable() && backend == nil {
		backend = storage.NewMemBackend()
		if c.skipSync {
			backend.SetSkipSync(true)
		}
	}
	nodeOpts := core.DefaultNodeOptions()
	nodeOpts.FD = c.fdOpts
	if backend != nil {
		nodeOpts.Storage = backend
	}
	switch c.protocol {
	case ProtocolQS:
		n := core.NewNode(nodeOpts)
		return &member{node: n, host: n.Host}
	case ProtocolXPaxos:
		n, r := xpaxos.NewQSNode(xpaxos.Options{
			CheckpointInterval: 8,
			BatchSize:          c.batchSize,
			Window:             c.window,
		}, nodeOpts)
		return &member{node: n, host: n.Host, submit: r.Submit, history: r.Executions, backend: backend}
	case ProtocolPBFT:
		n, r := pbftlite.NewQSNode(pbftlite.Options{}, nodeOpts)
		return &member{node: n, host: n.Host, submit: r.Submit, history: r.Executions, backend: backend}
	case ProtocolTendermint:
		n, r := tendermint.NewQSNode(tendermint.Options{
			BatchSize: c.batchSize,
		}, nodeOpts)
		return &member{node: n, host: n.Host, submit: r.Submit, history: r.Executions, backend: backend}
	default:
		panic(fmt.Sprintf("chaos: unknown protocol %q", c.protocol))
	}
}

// crash takes p down. A hard crash models power loss: the backend
// drops every write that was not durably synced (and invalidates the
// live file handles) before the host lifecycle tears the process down.
// A plain crash is a process kill whose final flush still reaches disk.
func (c *cluster) crash(p ids.ProcessID, hard bool) {
	m := c.members[p]
	if hard && m.backend != nil {
		m.backend.Crash()
	}
	c.net.StopProcess(p)
}

// restart resurrects p as a freshly constructed member over the old
// member's storage backend — the only state that legitimately survives
// a crash. Non-durable protocols come back with total amnesia, which
// only the stateless core-only composition tolerates.
func (c *cluster) restart(p ids.ProcessID) {
	old := c.members[p]
	m := c.newMember(old.backend)
	c.members[p] = m
	c.net.ReplaceProcess(p, m.node)
}
