package chaos

import (
	"bytes"
	"encoding/json"
	"testing"

	"quorumselect/internal/ids"
	"quorumselect/internal/xpaxos"
)

// TestFlightRecorderDeterministic is the flight-recorder acceptance
// bar: replaying one seed must reproduce the BYTE-IDENTICAL flight
// dump — span IDs are node-prefixed sequence numbers and all clocks
// are virtual, so nothing nondeterministic can leak into the JSON.
func TestFlightRecorderDeterministic(t *testing.T) {
	for _, protocol := range []Protocol{ProtocolXPaxos, ProtocolQS} {
		protocol := protocol
		t.Run(string(protocol), func(t *testing.T) {
			t.Parallel()
			cfg := Config{Protocol: protocol}
			d1, f1, _ := ReplayDump(cfg, 3)
			d2, f2, _ := ReplayDump(cfg, 3)
			if d1 != d2 {
				t.Fatal("same seed produced different text dumps")
			}
			if !bytes.Equal(f1, f2) {
				t.Fatalf("same seed produced different flight dumps (%d vs %d bytes)", len(f1), len(f2))
			}
			if len(f1) == 0 {
				t.Fatal("replay produced no flight dump")
			}
		})
	}
}

// TestFlightRecorderContents checks the dump is a well-formed snapshot:
// parseable JSON with a replay-identifying reason, spans from the run,
// and the protocol event ring alongside them.
func TestFlightRecorderContents(t *testing.T) {
	_, flight, _ := ReplayDump(Config{Protocol: ProtocolXPaxos}, 3)
	var d struct {
		Reason        string `json:"reason"`
		SpansDropped  uint64 `json:"spans_dropped"`
		EventsDropped uint64 `json:"events_dropped"`
		Spans         []struct {
			Trace uint64 `json:"trace"`
			ID    uint64 `json:"id"`
			Node  uint64 `json:"node"`
			Name  string `json:"name"`
		} `json:"spans"`
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal(flight, &d); err != nil {
		t.Fatalf("flight dump does not parse: %v", err)
	}
	if d.Reason != "chaos replay seed=3" {
		t.Errorf("reason = %q", d.Reason)
	}
	if len(d.Spans) == 0 || len(d.Events) == 0 {
		t.Fatalf("flight dump is hollow: %d spans, %d events", len(d.Spans), len(d.Events))
	}
	names := make(map[string]bool)
	for _, s := range d.Spans {
		if s.ID == 0 || s.Trace == 0 {
			t.Fatalf("span with zero identity: %+v", s)
		}
		names[s.Name] = true
	}
	// The commit path's stages must all appear in a 28-virtual-second
	// xpaxos run.
	for _, want := range []string{"ingress", "propose", "accept", "quorum", "execute"} {
		if !names[want] {
			t.Errorf("flight dump records no %q span (got %v)", want, names)
		}
	}
}

// TestViolationCarriesFlightDump: when the harness detects a
// violation, the attached flight dump must equal the one a replay of
// the same seed captures — the artifact CI uploads is exactly what a
// developer reproduces locally.
func TestViolationCarriesFlightDump(t *testing.T) {
	cfg := Config{
		Protocol:  ProtocolXPaxos,
		Seeds:     50,
		FirstSeed: 1,
		TamperHistory: func(p ids.ProcessID, h []xpaxos.Execution) []xpaxos.Execution {
			if p != 2 || len(h) == 0 {
				return h
			}
			out := append([]xpaxos.Execution(nil), h...)
			out[0].Result = []byte("tampered")
			return out
		},
	}
	res := Run(cfg)
	if res.Violation == nil {
		t.Fatal("expected a violation")
	}
	if len(res.Violation.Flight) == 0 {
		t.Fatal("violation carries no flight dump")
	}
	var d struct {
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(res.Violation.Flight, &d); err != nil {
		t.Fatalf("violation flight dump does not parse: %v", err)
	}
	if d.Reason == "" {
		t.Error("violation flight dump has no reason")
	}
}
