package chaos

import (
	"strings"
	"testing"
)

// TestUnsafeSpecCheckerRejects is the boot-gate half of the adversary:
// both the exact checker and the seed-plumbed forced sampler must
// reject the intersection-violating spec before any node boots, so the
// scenario reports no violation.
func TestUnsafeSpecCheckerRejects(t *testing.T) {
	res := RunUnsafeSpec(UnsafeSpecConfig{FirstSeed: 3, Seeds: 3})
	if res.Violation != nil {
		t.Fatalf("checker failed to reject unsafe spec:\n%s", res.Violation.Dump)
	}
	if res.Seeds != 3 {
		t.Fatalf("ran %d seeds, want 3", res.Seeds)
	}
}

// TestUnsafeSpecSafeSpecIsConfigError pins the ground-truth polarity:
// feeding the adversary a spec with intersection is a scenario
// misconfiguration, not a checker finding.
func TestUnsafeSpecSafeSpecIsConfigError(t *testing.T) {
	res := RunUnsafeSpec(UnsafeSpecConfig{Spec: "threshold:n=4;f=1", FirstSeed: 1})
	if res.Violation == nil || res.Violation.Checker != "unsafe-spec-config" {
		t.Fatalf("safe spec not flagged as config error: %+v", res.Violation)
	}
}

// TestUnsafeSpecForcedForkViolates forces the unsafe spec past the
// checker and demands the demonstration: the two disjoint quorums
// certify divergent slot-1 histories across the partition, and the
// post-heal certificate crosses sides. The violation proves the spec
// the checker rejects is genuinely unsafe at the wire level.
func TestUnsafeSpecForcedForkViolates(t *testing.T) {
	res := RunUnsafeSpec(UnsafeSpecConfig{Force: true, FirstSeed: 5})
	if res.Violation == nil {
		t.Fatal("forced unsafe spec did not fork the log")
	}
	if res.Violation.Checker != "unsafe-spec-history" {
		t.Fatalf("violation from %q, want unsafe-spec-history:\n%s",
			res.Violation.Checker, res.Violation.Dump)
	}
	if !strings.Contains(res.Violation.Detail, "histories diverge at slot 1") {
		t.Fatalf("violation detail %q does not pin the slot-1 fork", res.Violation.Detail)
	}
	dump := res.Violation.Dump
	for _, want := range []string{
		"chaos-unsafe-spec: seed=5",
		"mode=sampled",
		"disjoint quorums {p1,p2} | {p3,p4}",
		`spec="slices:n=4;1={2};2={1};3={4};4={3}"`,
	} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
}

// TestUnsafeSpecReplayDeterministic pins the replay contract for the
// forced run: the chaos seed feeds both the network schedule and the
// randomized intersection sampler, so two replays of one seed — checker
// verdicts included — are byte-identical.
func TestUnsafeSpecReplayDeterministic(t *testing.T) {
	cfg := UnsafeSpecConfig{Force: true}
	a, va := ReplayUnsafeSpec(cfg, 9)
	b, vb := ReplayUnsafeSpec(cfg, 9)
	if (va == nil) != (vb == nil) {
		t.Fatalf("replays disagree on violation: %v vs %v", va, vb)
	}
	if a != b {
		t.Fatalf("replay dumps differ for one seed:\n--- first\n%s\n--- second\n%s", a, b)
	}
	if !strings.Contains(a, "seed=9") {
		t.Fatalf("dump missing seed header:\n%s", a)
	}
	if !strings.Contains(a, "seed=9 confidence=0.99") {
		t.Fatalf("dump missing seeded sampler report:\n%s", a)
	}
}
