package chaos

import (
	"fmt"
	"strings"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/crypto"
	"quorumselect/internal/fleet"
	"quorumselect/internal/ids"
	"quorumselect/internal/metrics"
	"quorumselect/internal/obs"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/wire"
	"quorumselect/internal/xpaxos"
)

// ShardedConfig parameterizes the sharded-partition scenario: a fleet
// of independent XPaxos groups multiplexed over one simulated network,
// with shard 0's leader partitioned at the envelope level — only
// shard-0 frames to and from that process are dropped, so the same
// process keeps serving its other shards throughout.
type ShardedConfig struct {
	// N, F are the per-group cluster parameters (default 4, 1).
	N, F int
	// Shards is the fleet width (default 3, minimum 2). With the
	// default leader stagger the partitioned process also leads another
	// shard, which pins the envelope-level precision of the fault: the
	// process is unreachable for shard 0 and a committing leader for
	// that other shard at the same time.
	Shards int
	// Seeds is how many consecutive seeds Run executes (default 1);
	// FirstSeed is the first.
	Seeds     int
	FirstSeed int64
	// Requests is the per-live-shard workload submitted while the
	// partition is open (default 10).
	Requests int
	// Window bounds each group's commit pipeline (default 8).
	Window int
	// PartitionFrom/PartitionUntil bound the fault window (default
	// 1s-9s). Settle is when post-heal probes go out (default 18s);
	// Horizon ends the run (default 26s).
	PartitionFrom, PartitionUntil, Settle, Horizon time.Duration
	// Metrics, when set, receives the runs' metrics.
	Metrics *metrics.Registry
}

// RunSharded executes cfg.Seeds consecutive sharded-partition seeds
// and stops at the first invariant violation.
func RunSharded(cfg ShardedConfig) Result {
	cfg = cfg.shardedDefaults()
	for i := 0; i < cfg.Seeds; i++ {
		seed := cfg.FirstSeed + int64(i)
		if v, _ := runShardedSeed(cfg, seed, false); v != nil {
			return Result{Protocol: "sharded", Seeds: i + 1, Violation: v}
		}
	}
	return Result{Protocol: "sharded", Seeds: cfg.Seeds}
}

// ReplaySharded executes one seed and returns the full dump regardless
// of outcome. The dump is a pure function of (cfg, seed): every
// timestamp is virtual and every event string deterministic, so two
// replays of one seed produce identical bytes.
func ReplaySharded(cfg ShardedConfig, seed int64) (string, *Violation) {
	v, dump := runShardedSeed(cfg.shardedDefaults(), seed, true)
	return dump, v
}

func (c ShardedConfig) shardedDefaults() ShardedConfig {
	if c.N == 0 {
		c.N, c.F = 4, 1
	}
	if c.Shards == 0 {
		c.Shards = 3
	}
	if c.Shards < 2 {
		c.Shards = 2
	}
	if c.Seeds == 0 {
		c.Seeds = 1
	}
	if c.Requests == 0 {
		c.Requests = 10
	}
	if c.Window == 0 {
		c.Window = 8
	}
	if c.PartitionFrom == 0 {
		c.PartitionFrom = 1 * time.Second
	}
	if c.PartitionUntil == 0 {
		c.PartitionUntil = 9 * time.Second
	}
	if c.Settle == 0 {
		c.Settle = 18 * time.Second
	}
	if c.Horizon == 0 {
		c.Horizon = 26 * time.Second
	}
	return c
}

// shardedRun is one live sharded cluster under the scenario.
type shardedRun struct {
	cfg      ShardedConfig
	idsCfg   ids.Config
	net      *sim.Network
	bus      *obs.Bus
	replicas map[int]map[ids.ProcessID]*xpaxos.Replica
	leaders  []ids.ProcessID
	victim   ids.ProcessID // shard 0's initial leader
}

// runShardedSeed builds the fleet cluster, plays the partition, and
// evaluates the per-shard checkers at their phase boundaries.
func runShardedSeed(cfg ShardedConfig, seed int64, alwaysDump bool) (*Violation, string) {
	idsCfg := ids.MustConfig(cfg.N, cfg.F)
	r := &shardedRun{
		cfg:      cfg,
		idsCfg:   idsCfg,
		bus:      obs.NewBus(0),
		replicas: make(map[int]map[ids.ProcessID]*xpaxos.Replica, cfg.Shards),
		leaders:  make([]ids.ProcessID, cfg.Shards),
	}

	// Stagger shard leaders across the leadable heads of the quorum
	// enumeration, exactly as a fleet deployment does.
	views := make([]uint64, cfg.Shards)
	leadable := idsCfg.N - idsCfg.Q() + 1
	for s := 0; s < cfg.Shards; s++ {
		p := ids.ProcessID(s%leadable + 1)
		v, ok := xpaxos.FirstViewLedBy(idsCfg, p)
		if !ok {
			panic(fmt.Sprintf("chaos: no view led by %s", p))
		}
		views[s], r.leaders[s] = v, p
		r.replicas[s] = make(map[ids.ProcessID]*xpaxos.Replica, cfg.N)
	}
	r.victim = r.leaders[0]

	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	for _, p := range idsCfg.All() {
		p := p
		nodes[p] = fleet.New(fleet.Options{
			Shards: cfg.Shards,
			NewShard: func(s int) runtime.Node {
				n, rep := xpaxos.NewQSNode(xpaxos.Options{
					InitialView:        views[s],
					Window:             cfg.Window,
					CheckpointInterval: 8,
				}, core.DefaultNodeOptions())
				r.replicas[s][p] = rep
				return n
			},
		})
	}

	// The fault: drop every shard-0 envelope to or from the victim
	// while the window is open. A pure function of (from, to, frame,
	// now), so the schedule is identical on every replay of the seed.
	victim := r.victim
	filter := sim.FilterFunc(func(from, to ids.ProcessID, m wire.Message, now time.Duration) sim.Verdict {
		if now < cfg.PartitionFrom || now >= cfg.PartitionUntil {
			return sim.Verdict{}
		}
		if from != victim && to != victim {
			return sim.Verdict{}
		}
		if env, ok := m.(*wire.ShardEnvelope); ok && env.Shard == 0 {
			return sim.Verdict{Drop: true}
		}
		return sim.Verdict{}
	})

	r.net = sim.NewNetwork(idsCfg, nodes, sim.Options{
		Metrics: cfg.Metrics,
		Seed:    seed,
		Latency: sim.UniformLatency(2*time.Millisecond, 12*time.Millisecond),
		Filter:  filter,
		Auth:    crypto.NewHMACRing(idsCfg, []byte("chaos-master")),
		Events:  r.bus,
	})
	defer r.net.Close()

	// Workload on every live shard (1..S-1), spread across the open
	// partition and submitted at each shard's leader. Shard 0 gets no
	// workload while its leader is cut off; its liveness is probed
	// after the heal.
	span := cfg.PartitionUntil - cfg.PartitionFrom - cfg.PartitionUntil/10
	gap := span / time.Duration(cfg.Requests+1)
	for s := 1; s < cfg.Shards; s++ {
		s := s
		for i := 1; i <= cfg.Requests; i++ {
			req := &wire.Request{
				Client: uint64(100 + s),
				Seq:    uint64(i),
				Op:     []byte(fmt.Sprintf("set s%dk%d v%d", s, i, i)),
			}
			r.net.At(cfg.PartitionFrom+time.Duration(i)*gap, func() {
				r.replicas[s][r.leaders[s]].Submit(req)
			})
		}
	}

	// Phase 1 — partition still open: every live shard must have
	// committed its full workload while shard 0's leader was cut off.
	var v *Violation
	r.net.Run(cfg.PartitionUntil)
	for s := 1; v == nil && s < cfg.Shards; s++ {
		if got := r.executed(s, uint64(100+s)); got < cfg.Requests {
			v = r.violation(seed, "sharded-liveness", fmt.Sprintf(
				"shard %d committed %d/%d requests while shard 0's leader %s was partitioned",
				s, got, cfg.Requests, r.victim))
		}
	}

	// Phase 2 — heal, settle, then probe every shard (including shard
	// 0): all probes must execute by the horizon. Probes go in at a
	// non-leader so they exercise forwarding under whatever quorum each
	// shard settled on.
	if v == nil {
		r.net.Run(cfg.Settle)
		for s := 0; s < cfg.Shards; s++ {
			for i := 1; i <= probeCount; i++ {
				r.replicas[s][ids.ProcessID(r.idsCfg.N)].Submit(&wire.Request{
					Client: probeClient,
					Seq:    uint64(i),
					Op:     []byte(fmt.Sprintf("set probe p%d", i)),
				})
			}
		}
		r.net.Run(cfg.Horizon)
		for s := 0; v == nil && s < cfg.Shards; s++ {
			if got := r.executed(s, probeClient); got < probeCount {
				v = r.violation(seed, "sharded-heal", fmt.Sprintf(
					"shard %d executed %d/%d post-heal probes", s, got, probeCount))
			}
		}
	}

	// Phase 3 — per-shard history agreement: within each shard, any
	// slot executed by two replicas carries the same request. Shards
	// are compared independently; cross-shard histories share nothing.
	if v == nil {
		for s := 0; v == nil && s < cfg.Shards; s++ {
			if err := r.historiesAgree(s); err != nil {
				v = r.violation(seed, "sharded-history", err.Error())
			}
		}
	}

	var dump string
	if v != nil || alwaysDump {
		dump = r.dump(seed, v)
	}
	if v != nil {
		v.Dump = dump
	}
	return v, dump
}

// executed returns the best replica's count of distinct sequence
// numbers this shard executed for the client — system progress, the
// way the generic liveness checker counts it.
func (r *shardedRun) executed(shard int, client uint64) int {
	best := 0
	for _, p := range r.idsCfg.All() {
		seen := make(map[uint64]bool)
		for _, e := range r.replicas[shard][p].Executions() {
			if e.Client == client {
				seen[e.Seq] = true
			}
		}
		if len(seen) > best {
			best = len(seen)
		}
	}
	return best
}

// historiesAgree verifies slot-aligned agreement across the shard's
// replicas, the historyChecker invariant scoped to one group.
func (r *shardedRun) historiesAgree(shard int) error {
	procs := r.idsCfg.All()
	for i := 0; i < len(procs); i++ {
		for j := i + 1; j < len(procs); j++ {
			a := r.replicas[shard][procs[i]].Executions()
			b := r.replicas[shard][procs[j]].Executions()
			for x, y := 0, 0; x < len(a) && y < len(b); {
				switch {
				case a[x].Slot < b[y].Slot:
					x++
				case a[x].Slot > b[y].Slot:
					y++
				default:
					if a[x].Client != b[y].Client || a[x].Seq != b[y].Seq {
						return fmt.Errorf(
							"shard %d histories diverge at slot %d: %s executed client=%d seq=%d, %s executed client=%d seq=%d",
							shard, a[x].Slot, procs[i], a[x].Client, a[x].Seq,
							procs[j], b[y].Client, b[y].Seq)
					}
					x++
					y++
				}
			}
		}
	}
	return nil
}

func (r *shardedRun) violation(seed int64, checker, detail string) *Violation {
	return &Violation{Seed: seed, Checker: checker, At: r.net.Now(), Detail: detail}
}

// dump renders the replayable evidence: schedule, per-shard end state,
// and the tail of the event stream — all derived from virtual time and
// the seed, so replays are byte-identical.
func (r *shardedRun) dump(seed int64, v *Violation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos-sharded: seed=%d n=%d f=%d shards=%d window=%d\n",
		seed, r.cfg.N, r.cfg.F, r.cfg.Shards, r.cfg.Window)
	fmt.Fprintf(&b, "schedule:\n  shard 0 leader %s: shard-0 envelopes dropped in [%s,%s)\n",
		r.victim, r.cfg.PartitionFrom, r.cfg.PartitionUntil)
	if v != nil {
		fmt.Fprintf(&b, "violation: checker=%s at=%s\n  %s\n", v.Checker, v.At, v.Detail)
	} else {
		b.WriteString("no violation\n")
	}
	b.WriteString("shards:\n")
	for s := 0; s < r.cfg.Shards; s++ {
		lead := r.replicas[s][r.leaders[s]]
		fmt.Fprintf(&b, "  shard %d: leader0=%s view=%d viewchanges=%d executed=[",
			s, r.leaders[s], lead.View(), lead.ViewChanges())
		for i, p := range r.idsCfg.All() {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s:%d", p, r.replicas[s][p].LastExecuted())
		}
		b.WriteString("]\n")
	}
	evs := r.bus.Events()
	if len(evs) > dumpEvents {
		evs = evs[len(evs)-dumpEvents:]
	}
	fmt.Fprintf(&b, "events (last %d):\n", len(evs))
	for _, e := range evs {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}
