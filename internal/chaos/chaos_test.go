package chaos

import (
	"strings"
	"testing"

	"quorumselect/internal/ids"
	"quorumselect/internal/xpaxos"
)

// TestScenarioDeterministic: the generator is a pure function of its
// inputs — same seed, same schedule.
func TestScenarioDeterministic(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	for seed := int64(0); seed < 20; seed++ {
		a := GenerateScenario(cfg, seed, nil, true, 8e9)
		b := GenerateScenario(cfg, seed, nil, true, 8e9)
		if strings.Join(a.Desc, "\n") != strings.Join(b.Desc, "\n") {
			t.Fatalf("seed %d: schedules differ:\n%v\nvs\n%v", seed, a.Desc, b.Desc)
		}
		if !a.Faulty.Equal(b.Faulty) {
			t.Fatalf("seed %d: faulty sets differ: %s vs %s", seed, a.Faulty, b.Faulty)
		}
	}
}

// TestScenarioRespectsFBound: the generator never marks more than f
// processes faulty — the ground rule that makes every violation a real
// protocol bug rather than an over-strong adversary.
func TestScenarioRespectsFBound(t *testing.T) {
	cfg := ids.MustConfig(7, 2)
	for seed := int64(0); seed < 100; seed++ {
		sc := GenerateScenario(cfg, seed, nil, false, 8e9)
		if got := len(sc.Faulty.Sorted()); got > cfg.F {
			t.Fatalf("seed %d: %d faulty processes exceeds f=%d", seed, got, cfg.F)
		}
	}
}

// TestReplayDeterministic is the acceptance bar for reproducibility:
// replaying the same seed twice yields byte-identical trace dumps.
func TestReplayDeterministic(t *testing.T) {
	for _, protocol := range AllProtocols() {
		protocol := protocol
		t.Run(string(protocol), func(t *testing.T) {
			t.Parallel()
			cfg := Config{Protocol: protocol}
			d1, v1 := Replay(cfg, 42)
			d2, v2 := Replay(cfg, 42)
			if d1 != d2 {
				t.Fatalf("same seed produced different dumps:\n--- first\n%s\n--- second\n%s", tail(d1), tail(d2))
			}
			if (v1 == nil) != (v2 == nil) {
				t.Fatalf("same seed produced different verdicts: %v vs %v", v1, v2)
			}
			if d1 == "" {
				t.Fatal("replay produced an empty dump")
			}
		})
	}
}

// TestChaosProperty is the fuzzer run as a plain property test: a batch
// of consecutive seeds per protocol must violate no invariant.
func TestChaosProperty(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for _, protocol := range AllProtocols() {
		protocol := protocol
		t.Run(string(protocol), func(t *testing.T) {
			t.Parallel()
			res := Run(Config{Protocol: protocol, Seeds: seeds, FirstSeed: 1})
			if res.Violation != nil {
				t.Fatalf("unexpected violation:\n%s", res.Violation.Dump)
			}
			if res.Seeds != seeds {
				t.Fatalf("executed %d seeds, want %d", res.Seeds, seeds)
			}
		})
	}
}

// TestChaosBatchedProperty exercises the batched replica paths the
// plain property run (BatchSize 1) never reaches.
func TestChaosBatchedProperty(t *testing.T) {
	for _, protocol := range []Protocol{ProtocolXPaxos, ProtocolTendermint} {
		protocol := protocol
		t.Run(string(protocol), func(t *testing.T) {
			t.Parallel()
			res := Run(Config{Protocol: protocol, BatchSize: 8, Seeds: 3, FirstSeed: 100})
			if res.Violation != nil {
				t.Fatalf("unexpected violation:\n%s", res.Violation.Dump)
			}
		})
	}
}

// TestChaosPipelinedReorder exercises the pipelined commit path under
// the harshest delivery schedule the simulator offers: a bounded
// in-flight window keeps several slots open at once, per-link FIFO is
// off so COMMITs overtake PREPAREs and slots interleave arbitrarily,
// and every signature check detours through the deterministic
// async-verify path. Execution must stay in slot order and agree
// across replicas regardless.
func TestChaosPipelinedReorder(t *testing.T) {
	seeds := 4
	if testing.Short() {
		seeds = 2
	}
	res := Run(Config{
		Protocol:    ProtocolXPaxos,
		BatchSize:   4,
		Window:      4,
		Reorder:     true,
		AsyncVerify: true,
		Seeds:       seeds,
		FirstSeed:   300,
	})
	if res.Violation != nil {
		t.Fatalf("unexpected violation:\n%s", res.Violation.Dump)
	}
	if res.Seeds != seeds {
		t.Fatalf("executed %d seeds, want %d", res.Seeds, seeds)
	}
}

// TestInjectedAgreementBugCaught is the harness's own smoke alarm test:
// deliberately corrupt one replica's history through the test-only
// tamper hook and demand the fuzzer reports a violating seed within 200
// seeds.
func TestInjectedAgreementBugCaught(t *testing.T) {
	res := Run(Config{
		Protocol:  ProtocolXPaxos,
		Seeds:     200,
		FirstSeed: 1,
		TamperHistory: func(p ids.ProcessID, h []xpaxos.Execution) []xpaxos.Execution {
			// Replica 2 "executes" a different op in its third slot —
			// the kind of divergence a real agreement bug would cause.
			if p != 2 || len(h) < 3 {
				return h
			}
			out := append([]xpaxos.Execution(nil), h...)
			out[2].Op = []byte("set evil 1")
			return out
		},
	})
	if res.Violation == nil {
		t.Fatalf("injected agreement bug not caught in %d seeds", res.Seeds)
	}
	if res.Violation.Checker != "history-agreement" {
		t.Fatalf("caught by %q, want history-agreement: %s", res.Violation.Checker, res.Violation.Detail)
	}
	if res.Violation.Seed < 1 || res.Violation.Seed > 200 {
		t.Fatalf("violating seed %d outside campaign range", res.Violation.Seed)
	}
	if !strings.Contains(res.Violation.Dump, "violation: checker=history-agreement") {
		t.Fatalf("dump does not identify the violated checker:\n%s", tail(res.Violation.Dump))
	}
	t.Logf("injected bug caught at seed %d after %d seeds", res.Violation.Seed, res.Seeds)
}

// TestCrashRestartRecovery runs the crash-restart fault class alone
// against the durable protocols: every seed must restart its crashed
// replicas from the surviving WAL + snapshot with the acknowledged
// history intact (crash-recovery checker) and, for xpaxos, execute the
// post-fault liveness probes.
func TestCrashRestartRecovery(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for _, protocol := range []Protocol{ProtocolXPaxos, ProtocolPBFT} {
		protocol := protocol
		t.Run(string(protocol), func(t *testing.T) {
			t.Parallel()
			res := Run(Config{
				Protocol: protocol,
				Faults:   []FaultClass{FaultCrashRestart},
				Seeds:    seeds,
			})
			if res.Violation != nil {
				t.Fatalf("unexpected violation:\n%s", res.Violation.Dump)
			}
		})
	}
}

// TestSkipSyncTamperCaught is the durability smoke alarm: a storage
// backend that acknowledges fsyncs without persisting must be caught by
// the crash-recovery checker when a hard crash drops the acknowledged
// writes — and the identical untampered seed must pass, proving the
// violation comes from the tamper, not the schedule.
func TestSkipSyncTamperCaught(t *testing.T) {
	for _, protocol := range []Protocol{ProtocolXPaxos, ProtocolPBFT} {
		protocol := protocol
		t.Run(string(protocol), func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				Protocol:       protocol,
				Faults:         []FaultClass{FaultCrashRestart},
				Seeds:          60,
				TamperSkipSync: true,
			}
			res := Run(cfg)
			if res.Violation == nil {
				t.Fatalf("skip-fsync tamper not caught in %d seeds", res.Seeds)
			}
			if res.Violation.Checker != "crash-recovery" {
				t.Fatalf("caught by %q, want crash-recovery: %s",
					res.Violation.Checker, res.Violation.Detail)
			}
			clean := cfg
			clean.TamperSkipSync = false
			if v := RunSeed(clean, res.Violation.Seed); v != nil {
				t.Fatalf("seed %d fails even without the tamper: %v", res.Violation.Seed, v)
			}
			t.Logf("tamper caught at seed %d: %s", res.Violation.Seed, res.Violation.Detail)
		})
	}
}

// TestViolationDumpReplays: the dump attached to a violation is exactly
// what Replay reconstructs from the seed — the reproduction workflow a
// developer follows from a CI failure.
func TestViolationDumpReplays(t *testing.T) {
	cfg := Config{
		Protocol:  ProtocolXPaxos,
		Seeds:     50,
		FirstSeed: 1,
		TamperHistory: func(p ids.ProcessID, h []xpaxos.Execution) []xpaxos.Execution {
			if p != 3 || len(h) == 0 {
				return h
			}
			out := append([]xpaxos.Execution(nil), h...)
			out[0].Result = []byte("tampered")
			return out
		},
	}
	res := Run(cfg)
	if res.Violation == nil {
		t.Fatal("expected a violation to replay")
	}
	dump, v := Replay(cfg, res.Violation.Seed)
	if v == nil {
		t.Fatalf("replay of seed %d found no violation", res.Violation.Seed)
	}
	if dump != res.Violation.Dump {
		t.Fatalf("replayed dump differs from original:\n--- original\n%s\n--- replay\n%s",
			tail(res.Violation.Dump), tail(dump))
	}
}

// TestParseHelpers covers the CLI-facing parsers.
func TestParseHelpers(t *testing.T) {
	if ps, err := ParseProtocols("all"); err != nil || len(ps) != len(AllProtocols()) {
		t.Fatalf("ParseProtocols(all) = %v, %v", ps, err)
	}
	if ps, err := ParseProtocols("xpaxos, qs"); err != nil || len(ps) != 2 || ps[0] != ProtocolXPaxos || ps[1] != ProtocolQS {
		t.Fatalf("ParseProtocols(xpaxos, qs) = %v, %v", ps, err)
	}
	if _, err := ParseProtocols("raft"); err == nil {
		t.Fatal("ParseProtocols(raft) should fail")
	}
	if fs, err := ParseFaults(""); err != nil || len(fs) != len(AllFaults()) {
		t.Fatalf("ParseFaults(\"\") = %v, %v", fs, err)
	}
	if fs, err := ParseFaults("crash,mutate"); err != nil || len(fs) != 2 {
		t.Fatalf("ParseFaults(crash,mutate) = %v, %v", fs, err)
	}
	if _, err := ParseFaults("gamma-ray"); err == nil {
		t.Fatal("ParseFaults(gamma-ray) should fail")
	}
}

// FuzzChaosSeed exposes the harness to go's native fuzzer: any seed the
// mutation engine invents must satisfy every invariant on every
// protocol (the low bits pick the protocol, so one corpus covers all
// four).
func FuzzChaosSeed(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(1))
	f.Add(int64(7))
	f.Add(int64(1 << 33))
	f.Add(int64(-5))
	f.Fuzz(func(t *testing.T, seed int64) {
		protocols := AllProtocols()
		protocol := protocols[((seed%int64(len(protocols)))+int64(len(protocols)))%int64(len(protocols))]
		if v := RunSeed(Config{Protocol: protocol}, seed); v != nil {
			t.Fatalf("seed %d violates %s on %s:\n%s", seed, v.Checker, protocol, tail(v.Dump))
		}
	})
}

// tail bounds a dump for test-failure output.
func tail(s string) string {
	const max = 4000
	if len(s) <= max {
		return s
	}
	return "..." + s[len(s)-max:]
}
