package chaos

import (
	"fmt"
	"strings"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/crypto"
	"quorumselect/internal/ids"
	"quorumselect/internal/metrics"
	"quorumselect/internal/obs"
	"quorumselect/internal/quorum"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/wire"
	"quorumselect/internal/xpaxos"
)

// DefaultUnsafeSpec is an intersection-violating slice spec: p1 and p2
// rely only on each other, as do p3 and p4. Its minimal quorums are the
// DISJOINT pair {p1,p2} and {p3,p4} — a split-brain configuration the
// checker must reject before any node boots on it.
const DefaultUnsafeSpec = "slices:n=4;1={2};2={1};3={4};4={3}"

// UnsafeSpecConfig parameterizes the unsafe-spec adversary. Two
// regimes:
//
//   - Force=false (the boot gate): run the intersection checker —
//     including the seeded randomized sampler, forced on even at n=4 —
//     against the spec. A checker that ACCEPTS the unsafe spec is the
//     violation.
//   - Force=true (the demonstration): skip the gate, boot a cluster on
//     the spec with the two disjoint quorums active on either side of a
//     partition, and let both sides certify. The expected outcome is a
//     history-agreement violation with the cross-side commit
//     certificate accepted by System.IsQuorum — proof that the spec the
//     checker rejects really does fork the log.
type UnsafeSpecConfig struct {
	// Spec is the quorum spec under attack (default DefaultUnsafeSpec).
	Spec string
	// Force boots a cluster on the spec instead of (only) checking it.
	Force bool
	// Seeds is how many consecutive seeds Run executes (default 1);
	// FirstSeed is the first. The seed feeds both the network schedule
	// and the checker's sampler.
	Seeds     int
	FirstSeed int64
	// Samples is the forced sampler's budget (default 2048; a disjoint
	// bipartition of the default spec is hit with probability 1/8 per
	// sample, so the sweep is certain in practice while staying seeded).
	Samples int
	// HealAt closes the partition (default 60ms); SettleAt submits the
	// post-heal request whose certificate crosses sides (default 75ms);
	// Horizon ends the run (default 200ms).
	HealAt, SettleAt, Horizon time.Duration
	// Metrics, when set, receives the runs' metrics.
	Metrics *metrics.Registry
}

func (c UnsafeSpecConfig) unsafeDefaults() UnsafeSpecConfig {
	if c.Spec == "" {
		c.Spec = DefaultUnsafeSpec
	}
	if c.Seeds == 0 {
		c.Seeds = 1
	}
	if c.Samples == 0 {
		c.Samples = 2048
	}
	if c.HealAt == 0 {
		c.HealAt = 60 * time.Millisecond
	}
	if c.SettleAt == 0 {
		c.SettleAt = 75 * time.Millisecond
	}
	if c.Horizon == 0 {
		c.Horizon = 200 * time.Millisecond
	}
	return c
}

// RunUnsafeSpec executes cfg.Seeds consecutive seeds and stops at the
// first violation. Note the polarity per regime: without Force a
// violation means the checker FAILED to reject the unsafe spec; with
// Force a violation (history divergence) is the expected demonstration,
// and its absence is reported by the caller as the failure.
func RunUnsafeSpec(cfg UnsafeSpecConfig) Result {
	cfg = cfg.unsafeDefaults()
	for i := 0; i < cfg.Seeds; i++ {
		seed := cfg.FirstSeed + int64(i)
		if v, _ := runUnsafeSpecSeed(cfg, seed, false); v != nil {
			return Result{Protocol: "unsafe-spec", Seeds: i + 1, Violation: v}
		}
	}
	return Result{Protocol: "unsafe-spec", Seeds: cfg.Seeds}
}

// ReplayUnsafeSpec executes one seed and returns the full dump
// regardless of outcome. The dump is a pure function of (cfg, seed):
// virtual time, deterministic event strings, and a checker whose
// sampler is seeded from the chaos seed — two replays produce identical
// bytes.
func ReplayUnsafeSpec(cfg UnsafeSpecConfig, seed int64) (string, *Violation) {
	v, dump := runUnsafeSpecSeed(cfg.unsafeDefaults(), seed, true)
	return dump, v
}

type unsafeSpecRun struct {
	cfg      UnsafeSpecConfig
	idsCfg   ids.Config
	net      *sim.Network
	bus      *obs.Bus
	nodes    map[ids.ProcessID]*core.Node
	replicas map[ids.ProcessID]*xpaxos.Replica
	sideA    ids.ProcSet // members of the first disjoint quorum
	reports  []quorum.Report
}

func runUnsafeSpecSeed(cfg UnsafeSpecConfig, seed int64, alwaysDump bool) (*Violation, string) {
	r := &unsafeSpecRun{cfg: cfg, bus: obs.NewBus(0)}

	sys, err := quorum.ParseSpec(cfg.Spec)
	if err != nil {
		// A malformed spec is a configuration error of the scenario
		// itself, not a finding about the checker.
		v := &Violation{Seed: seed, Checker: "unsafe-spec-config",
			Detail: fmt.Sprintf("spec does not parse: %v", err)}
		v.Dump = fmt.Sprintf("chaos-unsafe-spec: seed=%d spec=%q\nviolation: %s\n", seed, cfg.Spec, v.Detail)
		return v, v.Dump
	}

	// The boot gate, both ways: the exact checker and the seeded
	// sampler (forced via MaxExactN=-1 so replays exercise the
	// randomized path deterministically). Both verdicts go in the dump.
	exact := quorum.Check(sys, quorum.CheckOptions{Faults: 1})
	sampled := quorum.Check(sys, quorum.CheckOptions{
		MaxExactN: -1, Samples: cfg.Samples, Seed: uint64(seed), Faults: 1})
	r.reports = []quorum.Report{exact, sampled}

	var v *Violation
	if exact.Err() == nil {
		// The exact checker is ground truth at these sizes: a spec it
		// calls safe has no disjoint quorums, so there is nothing for
		// this scenario to demonstrate.
		v = &Violation{Seed: seed, Checker: "unsafe-spec-config",
			Detail: fmt.Sprintf("spec %q is safe (exact checker found no disjoint quorums); the unsafe-spec scenario needs an intersection-violating spec", cfg.Spec)}
	} else if sampled.Err() == nil {
		v = &Violation{Seed: seed, Checker: "unsafe-spec-checker",
			Detail: fmt.Sprintf("seeded sampler accepted a spec the exact checker rejects (%v)", exact.Err())}
	}
	if !cfg.Force || v != nil {
		var dump string
		if v != nil || alwaysDump {
			dump = r.gateDump(seed, v)
		}
		if v != nil {
			v.Dump = dump
		}
		return v, dump
	}

	// Forced past the gate: boot the cluster with the two lex-first
	// disjoint quorums active on either side of a partition. The fork
	// must be staged through initial views — a partition alone does not
	// move the selector (both sides still pick the lex-first quorum of
	// an unchanged suspect graph), so each side starts in the view of
	// "its" quorum, with heartbeats off to keep the failure detector
	// (and hence selection) quiet.
	mq := sys.MinQuorums()
	pair, ok := disjointPair(mq)
	if !ok {
		v = &Violation{Seed: seed, Checker: "unsafe-spec-config",
			Detail: "spec rejected by checker but no enumerable disjoint quorum pair to force"}
		v.Dump = r.gateDump(seed, v)
		return v, v.Dump
	}
	viewA, viewB := quorumViewIndex(mq, pair[0]), quorumViewIndex(mq, pair[1])
	r.sideA = ids.FromSlice(pair[0])
	n := sys.N()
	r.idsCfg = ids.MustConfig(n, 1)
	r.nodes = make(map[ids.ProcessID]*core.Node, n)
	r.replicas = make(map[ids.ProcessID]*xpaxos.Replica, n)

	simNodes := make(map[ids.ProcessID]runtime.Node, n)
	for _, p := range r.idsCfg.All() {
		view := uint64(viewB)
		if r.sideA.Contains(p) {
			view = uint64(viewA)
		}
		nodeOpts := core.DefaultNodeOptions()
		nodeOpts.HeartbeatPeriod = 0
		nodeOpts.Quorum = sys
		node, rep := xpaxos.NewQSNode(xpaxos.Options{InitialView: view}, nodeOpts)
		r.nodes[p] = node
		r.replicas[p] = rep
		simNodes[p] = node
	}

	// The fault: drop every cross-side frame until HealAt. Pure
	// function of (from, to, now) — identical on every replay.
	sideA := r.sideA
	filter := sim.FilterFunc(func(from, to ids.ProcessID, m wire.Message, now time.Duration) sim.Verdict {
		if now < cfg.HealAt && sideA.Contains(from) != sideA.Contains(to) {
			return sim.Verdict{Drop: true}
		}
		return sim.Verdict{}
	})

	r.net = sim.NewNetwork(r.idsCfg, simNodes, sim.Options{
		Metrics: cfg.Metrics,
		Seed:    seed,
		Latency: sim.UniformLatency(2*time.Millisecond, 12*time.Millisecond),
		Filter:  filter,
		Auth:    crypto.NewHMACRing(r.idsCfg, []byte("chaos-master")),
		Events:  r.bus,
	})
	defer r.net.Close()

	leaderA, leaderB := pair[0][0], pair[1][0]
	// While partitioned, each side's quorum certifies its own slot 1.
	r.net.At(5*time.Millisecond, func() {
		r.replicas[leaderA].Submit(&wire.Request{Client: 100, Seq: 1, Op: []byte("set side A1")})
	})
	r.net.At(5*time.Millisecond, func() {
		r.replicas[leaderB].Submit(&wire.Request{Client: 300, Seq: 1, Op: []byte("set side B1")})
	})
	// After the heal, side A commits slot 2; its commit certificate —
	// signed only by side A's quorum — reaches side B, whose replicas
	// accept it through System.IsQuorum: the wire-level proof that the
	// cert path trusts whatever the spec calls a quorum.
	r.net.At(cfg.SettleAt, func() {
		r.replicas[leaderA].Submit(&wire.Request{Client: 100, Seq: 2, Op: []byte("set side A2")})
	})
	r.net.Run(cfg.Horizon)

	// Expected evidence, in order of strength: both disjoint quorums
	// certified slot 1 (divergent histories), and side B adopted side
	// A's slot-2 certificate across the healed link.
	if err := r.historiesAgree(); err != nil {
		v = &Violation{Seed: seed, Checker: "unsafe-spec-history", At: r.net.Now(), Detail: err.Error()}
	}
	dump := ""
	if v != nil || alwaysDump {
		dump = r.forceDump(seed, v, pair)
	}
	if v != nil {
		v.Dump = dump
	}
	return v, dump
}

// disjointPair returns the lexicographically-first pair of disjoint
// minimal quorums.
func disjointPair(mq [][]ids.ProcessID) ([2][]ids.ProcessID, bool) {
	for i := 0; i < len(mq); i++ {
		a := ids.FromSlice(mq[i])
		for j := i + 1; j < len(mq); j++ {
			if a.Intersect(ids.FromSlice(mq[j])).Empty() {
				return [2][]ids.ProcessID{mq[i], mq[j]}, true
			}
		}
	}
	return [2][]ids.ProcessID{}, false
}

func quorumViewIndex(mq [][]ids.ProcessID, q []ids.ProcessID) int {
	want := ids.NewQuorum(q)
	for i, m := range mq {
		if ids.NewQuorum(m).Equal(want) {
			return i
		}
	}
	return 0
}

// historiesAgree is the sharded-history invariant on the single group:
// any slot executed by two replicas must carry the same request.
func (r *unsafeSpecRun) historiesAgree() error {
	procs := r.idsCfg.All()
	for i := 0; i < len(procs); i++ {
		for j := i + 1; j < len(procs); j++ {
			a := r.replicas[procs[i]].Executions()
			b := r.replicas[procs[j]].Executions()
			for x, y := 0, 0; x < len(a) && y < len(b); {
				switch {
				case a[x].Slot < b[y].Slot:
					x++
				case a[x].Slot > b[y].Slot:
					y++
				default:
					if a[x].Client != b[y].Client || a[x].Seq != b[y].Seq {
						return fmt.Errorf(
							"histories diverge at slot %d: %s executed client=%d seq=%d, %s executed client=%d seq=%d",
							a[x].Slot, procs[i], a[x].Client, a[x].Seq,
							procs[j], b[y].Client, b[y].Seq)
					}
					x++
					y++
				}
			}
		}
	}
	return nil
}

// gateDump renders the checker-only evidence.
func (r *unsafeSpecRun) gateDump(seed int64, v *Violation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos-unsafe-spec: seed=%d spec=%q force=%v\n", seed, r.cfg.Spec, r.cfg.Force)
	for _, rep := range r.reports {
		fmt.Fprintf(&b, "  %s\n", rep)
	}
	if v != nil {
		fmt.Fprintf(&b, "violation: checker=%s\n  %s\n", v.Checker, v.Detail)
	} else {
		b.WriteString("no violation: checker rejected the spec before boot\n")
	}
	return b.String()
}

// forceDump renders the full forced-run evidence: checker verdicts, the
// staged disjoint quorums, per-replica end state (including the active
// spec each node's kernel reports), and the event-stream tail — all
// virtual-time deterministic, byte-identical per seed.
func (r *unsafeSpecRun) forceDump(seed int64, v *Violation, pair [2][]ids.ProcessID) string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos-unsafe-spec: seed=%d spec=%q force=true\n", seed, r.cfg.Spec)
	for _, rep := range r.reports {
		fmt.Fprintf(&b, "  %s\n", rep)
	}
	fmt.Fprintf(&b, "schedule:\n  disjoint quorums %s | %s partitioned until %s; cross-cert request at %s\n",
		ids.NewQuorum(pair[0]), ids.NewQuorum(pair[1]), r.cfg.HealAt, r.cfg.SettleAt)
	if v != nil {
		fmt.Fprintf(&b, "violation: checker=%s at=%s\n  %s\n", v.Checker, v.At, v.Detail)
	} else {
		b.WriteString("no violation (forced unsafe spec failed to fork — scenario bug)\n")
	}
	b.WriteString("replicas:\n")
	for _, p := range r.idsCfg.All() {
		rep := r.replicas[p]
		spec := "<none>"
		if sys := r.nodes[p].QuorumSystem(); sys != nil {
			spec = sys.String()
		}
		fmt.Fprintf(&b, "  %s: view=%d active=%s executed=%d spec=%q\n",
			p, rep.View(), rep.ActiveQuorum(), rep.LastExecuted(), spec)
		for _, e := range rep.Executions() {
			fmt.Fprintf(&b, "    slot=%d client=%d seq=%d\n", e.Slot, e.Client, e.Seq)
		}
	}
	evs := r.bus.Events()
	if len(evs) > dumpEvents {
		evs = evs[len(evs)-dumpEvents:]
	}
	fmt.Fprintf(&b, "events (last %d):\n", len(evs))
	for _, e := range evs {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}
