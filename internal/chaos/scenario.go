package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"quorumselect/internal/adversary"
	"quorumselect/internal/ids"
	"quorumselect/internal/sim"
)

// FaultClass names one of the paper's §II failure classes as the
// scenario generator injects it. Every class is scoped to the
// scenario's faulty set, so at most f processes misbehave and the
// protocols' safety claims must hold.
type FaultClass string

// The fault taxonomy. See DESIGN.md §9 for the mapping to the paper's
// failure classes.
const (
	// FaultCrash stops a process via the host lifecycle (crash failure);
	// on a restart-capable cluster it may later come back, recovering
	// whatever its durable storage holds.
	FaultCrash FaultClass = "crash"
	// FaultCrashRestart hard-crashes a process — its storage backend
	// drops every write not yet durably synced, modeling power loss —
	// and always restarts it, forcing a recovery from the surviving
	// WAL + snapshot. On a non-restartable protocol it degrades to a
	// permanent hard crash.
	FaultCrashRestart FaultClass = "crash-restart"
	// FaultOmission drops one in every k messages from a faulty process
	// (repeated omission failure).
	FaultOmission FaultClass = "omission"
	// FaultBurst drops everything from a faulty process during the On
	// part of an On/Off cycle (repeated omission with unbounded gaps).
	FaultBurst FaultClass = "burst"
	// FaultPartition severs all links between one faulty process and the
	// rest until the window closes (link omission; opens and heals).
	FaultPartition FaultClass = "partition"
	// FaultTiming adds bounded pseudo-random delay to a faulty process's
	// messages (timing failure).
	FaultTiming FaultClass = "timing"
	// FaultIncreasingTiming adds monotonically growing delay (the
	// paper's increasing timing failure) while the window is open.
	FaultIncreasingTiming FaultClass = "increasing-timing"
	// FaultDuplicate replays frames from a faulty process (faulty link).
	FaultDuplicate FaultClass = "duplicate"
	// FaultMutate corrupts frames from a faulty process with
	// wire.MutateFrame (commission failure: flipped fields, forged
	// signatures, truncations).
	FaultMutate FaultClass = "mutate"
)

// AllFaults returns every fault class, in stable order.
func AllFaults() []FaultClass {
	return []FaultClass{
		FaultCrash, FaultCrashRestart, FaultOmission, FaultBurst,
		FaultPartition, FaultTiming, FaultIncreasingTiming,
		FaultDuplicate, FaultMutate,
	}
}

// ParseFaults parses a comma-separated fault-class list ("crash,mutate");
// "all" or "" selects every class.
func ParseFaults(s string) ([]FaultClass, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return AllFaults(), nil
	}
	known := make(map[FaultClass]bool)
	for _, f := range AllFaults() {
		known[f] = true
	}
	var out []FaultClass
	for _, part := range strings.Split(s, ",") {
		f := FaultClass(strings.TrimSpace(part))
		if !known[f] {
			return nil, fmt.Errorf("chaos: unknown fault class %q", f)
		}
		out = append(out, f)
	}
	return out, nil
}

// CrashPlan schedules one crash (and optional restart) of a faulty
// process.
type CrashPlan struct {
	Proc ids.ProcessID
	At   time.Duration
	// RestartAt resurrects the process from its durable state (zero:
	// stays down). Only set when the cluster is restart-capable.
	RestartAt time.Duration
	// Hard marks a power-loss crash: unsynced writes are dropped from
	// the process's storage backend before it stops.
	Hard bool
}

// Scenario is one fully derived fault schedule: everything RunSeed
// needs to replay a run is determined by (Config, Seed).
type Scenario struct {
	Seed int64
	// Faulty is the set of misbehaving processes, |Faulty| ≤ f.
	Faulty ids.ProcSet
	// Crashes lists the crash/restart churn (faults of class crash).
	Crashes []CrashPlan
	// Filter is the composed network-fault filter for the run.
	Filter sim.Filter
	// FaultEnd is when all fault windows have closed (crashes excepted:
	// an un-restarted crash is permanent).
	FaultEnd time.Duration
	// Desc is the deterministic, human-readable fault schedule, one
	// line per faulty process.
	Desc []string
}

// Restarted reports whether p crashes and later restarts in this
// scenario.
func (s *Scenario) Restarted(p ids.ProcessID) bool {
	for _, c := range s.Crashes {
		if c.Proc == p && c.RestartAt > 0 {
			return true
		}
	}
	return false
}

// CrashedForever reports whether p crashes and never restarts.
func (s *Scenario) CrashedForever(p ids.ProcessID) bool {
	for _, c := range s.Crashes {
		if c.Proc == p && c.RestartAt == 0 {
			return true
		}
	}
	return false
}

// GenerateScenario derives the fault schedule for one seed. The same
// (cfg, seed, classes, restartable, faultEnd) always produces the same
// scenario: all randomness flows from one source, and filters that need
// randomness at run time get private sources derived from the seed.
func GenerateScenario(cfg ids.Config, seed int64, classes []FaultClass, restartable bool, faultEnd time.Duration) *Scenario {
	if len(classes) == 0 {
		classes = AllFaults()
	}
	rng := rand.New(rand.NewSource(seed))
	sc := &Scenario{Seed: seed, Faulty: ids.NewProcSet(), FaultEnd: faultEnd}

	if cfg.F == 0 {
		sc.Filter = adversary.Chain()
		sc.Desc = []string{"no faults (f=0)"}
		return sc
	}

	// Choose 1..f faulty processes.
	nFaulty := 1 + rng.Intn(cfg.F)
	perm := rng.Perm(cfg.N)
	var faulty []ids.ProcessID
	for _, i := range perm[:nFaulty] {
		p := ids.ProcessID(i + 1)
		faulty = append(faulty, p)
		sc.Faulty.Add(p)
	}
	sort.Slice(faulty, func(i, j int) bool { return faulty[i] < faulty[j] })

	// One fault class per faulty process, each inside its own window.
	var filters []sim.Filter
	for _, p := range faulty {
		class := classes[rng.Intn(len(classes))]
		from := time.Duration(rng.Int63n(int64(faultEnd / 2)))
		until := from + faultEnd/8 + time.Duration(rng.Int63n(int64(faultEnd-from-faultEnd/8)))
		one := ids.NewProcSet(p)
		window := func(inner sim.Filter) sim.Filter {
			return &adversary.Window{From: from, Until: until, Inner: inner}
		}
		switch class {
		case FaultCrash:
			plan := CrashPlan{Proc: p, At: from}
			if restartable && rng.Intn(2) == 0 {
				plan.RestartAt = until
				sc.Desc = append(sc.Desc, fmt.Sprintf("%s: crash at %s, restart at %s", p, from, until))
			} else {
				sc.Desc = append(sc.Desc, fmt.Sprintf("%s: crash at %s", p, from))
			}
			sc.Crashes = append(sc.Crashes, plan)
		case FaultCrashRestart:
			plan := CrashPlan{Proc: p, At: from, Hard: true}
			if restartable {
				plan.RestartAt = until
				sc.Desc = append(sc.Desc, fmt.Sprintf("%s: hard crash at %s, recover at %s", p, from, until))
			} else {
				sc.Desc = append(sc.Desc, fmt.Sprintf("%s: hard crash at %s (protocol not restartable)", p, from))
			}
			sc.Crashes = append(sc.Crashes, plan)
		case FaultOmission:
			k := 1 + rng.Intn(4)
			filters = append(filters, window(adversary.NewRepeatedOmission(one, k)))
			sc.Desc = append(sc.Desc, fmt.Sprintf("%s: omission 1/%d in [%s,%s)", p, k, from, until))
		case FaultBurst:
			on := 100*time.Millisecond + time.Duration(rng.Int63n(int64(300*time.Millisecond)))
			off := 100*time.Millisecond + time.Duration(rng.Int63n(int64(300*time.Millisecond)))
			filters = append(filters, window(&adversary.BurstOmission{Faulty: one, On: on, Off: off}))
			sc.Desc = append(sc.Desc, fmt.Sprintf("%s: burst omission %s on/%s off in [%s,%s)", p, on, off, from, until))
		case FaultPartition:
			filters = append(filters, window(&adversary.Partition{Group: one}))
			sc.Desc = append(sc.Desc, fmt.Sprintf("%s: partitioned in [%s,%s)", p, from, until))
		case FaultTiming:
			max := 50*time.Millisecond + time.Duration(rng.Int63n(int64(250*time.Millisecond)))
			filters = append(filters, window(adversary.NewJitterDelay(one, max, rng.Int63())))
			sc.Desc = append(sc.Desc, fmt.Sprintf("%s: jitter delay <%s in [%s,%s)", p, max, from, until))
		case FaultIncreasingTiming:
			step := 100*time.Millisecond + time.Duration(rng.Int63n(int64(200*time.Millisecond)))
			filters = append(filters, window(&adversary.SteppedDelay{Faulty: one, Step: step, Every: 500 * time.Millisecond}))
			sc.Desc = append(sc.Desc, fmt.Sprintf("%s: stepped delay +%s/500ms in [%s,%s)", p, step, from, until))
		case FaultDuplicate:
			k := 1 + rng.Intn(3)
			filters = append(filters, window(&adversary.Duplicator{Faulty: one, Every: k}))
			sc.Desc = append(sc.Desc, fmt.Sprintf("%s: duplicate 1/%d in [%s,%s)", p, k, from, until))
		case FaultMutate:
			k := 1 + rng.Intn(3)
			filters = append(filters, window(&adversary.Mutator{
				Faulty: one, Every: k, Rng: rand.New(rand.NewSource(rng.Int63())),
			}))
			sc.Desc = append(sc.Desc, fmt.Sprintf("%s: mutate 1/%d in [%s,%s)", p, k, from, until))
		}
	}
	sc.Filter = adversary.Chain(filters...)
	return sc
}
