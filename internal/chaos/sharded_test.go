package chaos

import (
	"strings"
	"testing"
)

// TestShardedPartitionScenario runs the sharded-partition scenario:
// with shard 0's leader cut off at the envelope level, every other
// shard commits its full workload during the window, every shard
// (including the healed shard 0) executes its post-heal probes, and
// per-shard histories agree.
func TestShardedPartitionScenario(t *testing.T) {
	res := RunSharded(ShardedConfig{FirstSeed: 7, Seeds: 2})
	if res.Violation != nil {
		t.Fatalf("sharded-partition violated:\n%s", res.Violation.Dump)
	}
	if res.Seeds != 2 {
		t.Fatalf("ran %d seeds, want 2", res.Seeds)
	}
}

// TestShardedPartitionReplayDeterministic pins the replay contract:
// two executions of the same seed produce byte-identical dumps.
func TestShardedPartitionReplayDeterministic(t *testing.T) {
	cfg := ShardedConfig{FirstSeed: 11}
	a, va := ReplaySharded(cfg, 11)
	b, vb := ReplaySharded(cfg, 11)
	if (va == nil) != (vb == nil) {
		t.Fatalf("replays disagree on violation: %v vs %v", va, vb)
	}
	if a != b {
		t.Fatalf("replay dumps differ for one seed:\n--- first\n%s\n--- second\n%s", a, b)
	}
	if !strings.Contains(a, "chaos-sharded: seed=11") {
		t.Fatalf("dump missing header:\n%s", a)
	}
	if !strings.Contains(a, "shard 0 leader") {
		t.Fatalf("dump missing schedule:\n%s", a)
	}
}
