package chaos

import (
	"bytes"
	"fmt"

	"quorumselect/internal/ids"
	"quorumselect/internal/xpaxos"
)

// Phase tells a checker where in the run it is being evaluated.
type Phase int

const (
	// PhaseOnline is a periodic check while faults may still be active:
	// only invariants that hold at every instant belong here.
	PhaseOnline Phase = iota
	// PhaseSettled runs once, after faults have stopped and the settle
	// time has passed; checkers snapshot state to compare at PhaseFinal.
	PhaseSettled
	// PhaseFinal runs once at the end of the horizon.
	PhaseFinal
)

// Checker is one pluggable invariant, evaluated against live node state
// during a run. A non-nil error is a violation and aborts the seed.
type Checker interface {
	Name() string
	Check(r *RunState, phase Phase) error
}

// defaultCheckers assembles the invariant suite for a protocol.
func defaultCheckers(p Protocol) []Checker {
	cs := []Checker{
		&noSuspicionChecker{},
		&accuracyChecker{},
		&completenessChecker{},
	}
	if p.settles() {
		cs = append(cs, &agreementChecker{}, &terminationChecker{})
	}
	if p.smr() {
		cs = append(cs, &historyChecker{})
	}
	if p.durable() {
		cs = append(cs, &recoveryChecker{})
	}
	if p.checksLiveness() {
		cs = append(cs, &livenessChecker{})
	}
	return cs
}

// noSuspicionChecker verifies the paper's No suspicion property at
// every instant: each process's current quorum is an independent set of
// its own suspect graph, so no current suspicion connects two quorum
// members. The selector re-evaluates synchronously on every store
// change, so between simulator events the invariant must hold exactly.
type noSuspicionChecker struct{}

func (noSuspicionChecker) Name() string { return "no-suspicion" }

func (noSuspicionChecker) Check(r *RunState, _ Phase) error {
	for _, p := range r.cluster.cfg.All() {
		m := r.cluster.members[p]
		if !m.running() || m.host.Store == nil {
			continue
		}
		q := m.host.CurrentQuorum()
		if !m.host.Store.SuspectGraph().IsIndependentSet(q.Members) {
			return fmt.Errorf("%s: quorum %s is not an independent set of the suspect graph %s",
				p, q, m.host.Store.SuspectGraph())
		}
	}
	return nil
}

// accuracyChecker verifies detector accuracy: DETECTED is permanent, so
// no process may ever permanently detect a correct (never-faulty)
// process. Faulty processes are fair game — detecting them is the
// point.
type accuracyChecker struct{}

func (accuracyChecker) Name() string { return "detector-accuracy" }

func (accuracyChecker) Check(r *RunState, _ Phase) error {
	for _, p := range r.cluster.cfg.All() {
		m := r.cluster.members[p]
		if !m.running() {
			continue
		}
		for _, q := range r.cluster.cfg.All() {
			if r.Scenario.Faulty.Contains(q) {
				continue
			}
			if m.host.Detector.IsDetected(q) {
				return fmt.Errorf("%s permanently DETECTED correct process %s", p, q)
			}
		}
	}
	return nil
}

// completenessChecker verifies detection completeness for crash
// failures: once faults have settled, every running process suspects
// every permanently crashed process (its standing heartbeat expectation
// can never match again).
type completenessChecker struct{}

func (completenessChecker) Name() string { return "detector-completeness" }

func (completenessChecker) Check(r *RunState, phase Phase) error {
	if phase != PhaseFinal {
		return nil
	}
	for _, crashed := range r.cluster.cfg.All() {
		if !r.Scenario.CrashedForever(crashed) {
			continue
		}
		for _, p := range r.cluster.cfg.All() {
			m := r.cluster.members[p]
			if !m.running() {
				continue
			}
			if !m.host.Detector.Suspected().Contains(crashed) {
				return fmt.Errorf("%s does not suspect crashed process %s at end of run", p, crashed)
			}
		}
	}
	return nil
}

// agreementChecker verifies quorum-selection Agreement: after faults
// stop and suspicions settle, every correct process converges on the
// same quorum. Restarted processes are excluded: a process that was
// down missed UPDATE broadcasts the paper's reliable channels would
// have delivered, which is outside the model (the store gossips rows
// only on change, so there is no anti-entropy to catch it up).
type agreementChecker struct{}

func (agreementChecker) Name() string { return "qs-agreement" }

func (agreementChecker) Check(r *RunState, phase Phase) error {
	if phase != PhaseFinal {
		return nil
	}
	var ref *ids.Quorum
	var refProc ids.ProcessID
	for _, p := range r.cluster.cfg.All() {
		m := r.cluster.members[p]
		if !m.running() || m.host.Store == nil || r.Scenario.Restarted(p) {
			continue
		}
		q := m.host.CurrentQuorum()
		if ref == nil {
			ref, refProc = &q, p
			continue
		}
		if !q.Equal(*ref) {
			return fmt.Errorf("quorum disagreement after settling: %s has %s, %s has %s",
				refProc, *ref, p, q)
		}
	}
	return nil
}

// terminationChecker verifies quorum-selection Termination in its
// testable form: once suspicions stop changing (faults over, settle
// time passed), no process issues another quorum. It snapshots issued
// counts at PhaseSettled and demands no growth by PhaseFinal.
type terminationChecker struct {
	snap map[ids.ProcessID]int
}

func (*terminationChecker) Name() string { return "qs-termination" }

func (t *terminationChecker) Check(r *RunState, phase Phase) error {
	switch phase {
	case PhaseSettled:
		t.snap = make(map[ids.ProcessID]int, r.cluster.cfg.N)
		for _, p := range r.cluster.cfg.All() {
			m := r.cluster.members[p]
			if m.running() && m.host.Store != nil {
				t.snap[p] = len(m.host.Quorums())
			}
		}
	case PhaseFinal:
		if t.snap == nil {
			return nil
		}
		for _, p := range r.cluster.cfg.All() {
			m := r.cluster.members[p]
			if !m.running() || m.host.Store == nil || r.Scenario.Restarted(p) {
				continue
			}
			was, ok := t.snap[p]
			if !ok {
				continue
			}
			if now := len(m.host.Quorums()); now > was {
				return fmt.Errorf("%s issued %d quorums after suspicions settled", p, now-was)
			}
		}
	}
	return nil
}

// historyChecker verifies cross-replica replicated-history agreement at
// every instant: each replica executes in strictly increasing slot
// order, and any slot executed by two replicas carries the same request
// and result. Alignment is by slot, not list index — a replica that
// caught up through a checkpoint transfer legitimately skips the slots
// the checkpoint subsumes. Crashed replicas keep their frozen history
// and stay in the comparison.
type historyChecker struct{}

func (historyChecker) Name() string { return "history-agreement" }

func (historyChecker) Check(r *RunState, _ Phase) error {
	procs := r.cluster.cfg.All()
	hists := make([][]xpaxos.Execution, len(procs))
	for i, p := range procs {
		h := r.history(p)
		// Slots are non-decreasing: a batched slot executes one entry
		// per request, all under the same slot number.
		for k := 1; k < len(h); k++ {
			if h[k].Slot < h[k-1].Slot {
				return fmt.Errorf("%s executed slot %d after slot %d (out of order)",
					p, h[k].Slot, h[k-1].Slot)
			}
		}
		hists[i] = h
	}
	for i := 0; i < len(procs); i++ {
		for j := i + 1; j < len(procs); j++ {
			a, b := hists[i], hists[j]
			for x, y := 0, 0; x < len(a) && y < len(b); {
				if a[x].Slot < b[y].Slot {
					x++
					continue
				}
				if a[x].Slot > b[y].Slot {
					y++
					continue
				}
				s := a[x].Slot
				x2, y2 := x, y
				for x2 < len(a) && a[x2].Slot == s {
					x2++
				}
				for y2 < len(b) && b[y2].Slot == s {
					y2++
				}
				if x2-x != y2-y {
					return fmt.Errorf("histories diverge at slot %d: %s executed %d requests, %s executed %d",
						s, procs[i], x2-x, procs[j], y2-y)
				}
				for k := 0; k < x2-x; k++ {
					ea, eb := a[x+k], b[y+k]
					if ea.Client != eb.Client || ea.Seq != eb.Seq ||
						!bytes.Equal(ea.Op, eb.Op) || !bytes.Equal(ea.Result, eb.Result) {
						return fmt.Errorf(
							"histories diverge at slot %d: %s executed client=%d seq=%d, %s executed client=%d seq=%d",
							s, procs[i], ea.Client, ea.Seq, procs[j], eb.Client, eb.Seq)
					}
				}
				x, y = x2, y2
			}
		}
	}
	return nil
}

// recoveryChecker verifies crash-restart durability: every restarted
// durable member must be running again by the end of the run, and its
// post-restart history must extend — element for element — the history
// it had acknowledged when it crashed. Every execution is persisted and
// fsynced before it happens, so even a power-loss (hard) crash may not
// shorten the acknowledged prefix; a backend that lies about fsync (the
// TamperSkipSync hook) is exactly what this checker exists to catch.
type recoveryChecker struct{}

func (recoveryChecker) Name() string { return "crash-recovery" }

func (recoveryChecker) Check(r *RunState, phase Phase) error {
	if phase != PhaseFinal {
		return nil
	}
	for _, p := range r.cluster.cfg.All() {
		pre, ok := r.preCrash[p]
		if !ok || !r.Scenario.Restarted(p) {
			continue
		}
		m := r.cluster.members[p]
		if !m.running() {
			return fmt.Errorf("%s never came back up after its restart", p)
		}
		cur := r.history(p)
		if len(cur) < len(pre) {
			return fmt.Errorf("%s recovered only %d of the %d executions it acknowledged before crashing",
				p, len(cur), len(pre))
		}
		for k := range pre {
			if pre[k].Slot != cur[k].Slot || pre[k].Client != cur[k].Client ||
				pre[k].Seq != cur[k].Seq || !bytes.Equal(pre[k].Op, cur[k].Op) ||
				!bytes.Equal(pre[k].Result, cur[k].Result) {
				return fmt.Errorf("%s recovered a diverged history at index %d: acknowledged slot=%d client=%d seq=%d, recovered slot=%d client=%d seq=%d",
					p, k, pre[k].Slot, pre[k].Client, pre[k].Seq,
					cur[k].Slot, cur[k].Client, cur[k].Seq)
			}
		}
	}
	return nil
}

// livenessChecker verifies post-fault progress: probe requests
// submitted after the faults settled must all execute somewhere by the
// end of the horizon. It demands progress of the system, not of every
// replica — a non-quorum replica may legitimately trail until lazy
// replication or catch-up reaches it.
type livenessChecker struct{}

func (livenessChecker) Name() string { return "liveness" }

func (livenessChecker) Check(r *RunState, phase Phase) error {
	if phase != PhaseFinal || r.probes == 0 {
		return nil
	}
	best, bestProc := -1, ids.ProcessID(0)
	for _, p := range r.cluster.cfg.All() {
		seen := make(map[uint64]bool)
		for _, e := range r.history(p) {
			if e.Client == probeClient {
				seen[e.Seq] = true
			}
		}
		if len(seen) > best {
			best, bestProc = len(seen), p
		}
	}
	if best < r.probes {
		return fmt.Errorf("only %d of %d post-fault probes executed (best replica %s)",
			best, r.probes, bestProc)
	}
	return nil
}
