package chaos

import (
	"bytes"
	"fmt"

	"quorumselect/internal/ids"
)

// Phase tells a checker where in the run it is being evaluated.
type Phase int

const (
	// PhaseOnline is a periodic check while faults may still be active:
	// only invariants that hold at every instant belong here.
	PhaseOnline Phase = iota
	// PhaseSettled runs once, after faults have stopped and the settle
	// time has passed; checkers snapshot state to compare at PhaseFinal.
	PhaseSettled
	// PhaseFinal runs once at the end of the horizon.
	PhaseFinal
)

// Checker is one pluggable invariant, evaluated against live node state
// during a run. A non-nil error is a violation and aborts the seed.
type Checker interface {
	Name() string
	Check(r *RunState, phase Phase) error
}

// defaultCheckers assembles the invariant suite for a protocol.
func defaultCheckers(p Protocol) []Checker {
	cs := []Checker{
		&noSuspicionChecker{},
		&accuracyChecker{},
		&completenessChecker{},
	}
	if p.settles() {
		cs = append(cs, &agreementChecker{}, &terminationChecker{})
	}
	if p.smr() {
		cs = append(cs, &historyChecker{})
	}
	if p.checksLiveness() {
		cs = append(cs, &livenessChecker{})
	}
	return cs
}

// noSuspicionChecker verifies the paper's No suspicion property at
// every instant: each process's current quorum is an independent set of
// its own suspect graph, so no current suspicion connects two quorum
// members. The selector re-evaluates synchronously on every store
// change, so between simulator events the invariant must hold exactly.
type noSuspicionChecker struct{}

func (noSuspicionChecker) Name() string { return "no-suspicion" }

func (noSuspicionChecker) Check(r *RunState, _ Phase) error {
	for _, p := range r.cluster.cfg.All() {
		m := r.cluster.members[p]
		if !m.running() || m.host.Store == nil {
			continue
		}
		q := m.host.CurrentQuorum()
		if !m.host.Store.SuspectGraph().IsIndependentSet(q.Members) {
			return fmt.Errorf("%s: quorum %s is not an independent set of the suspect graph %s",
				p, q, m.host.Store.SuspectGraph())
		}
	}
	return nil
}

// accuracyChecker verifies detector accuracy: DETECTED is permanent, so
// no process may ever permanently detect a correct (never-faulty)
// process. Faulty processes are fair game — detecting them is the
// point.
type accuracyChecker struct{}

func (accuracyChecker) Name() string { return "detector-accuracy" }

func (accuracyChecker) Check(r *RunState, _ Phase) error {
	for _, p := range r.cluster.cfg.All() {
		m := r.cluster.members[p]
		if !m.running() {
			continue
		}
		for _, q := range r.cluster.cfg.All() {
			if r.Scenario.Faulty.Contains(q) {
				continue
			}
			if m.host.Detector.IsDetected(q) {
				return fmt.Errorf("%s permanently DETECTED correct process %s", p, q)
			}
		}
	}
	return nil
}

// completenessChecker verifies detection completeness for crash
// failures: once faults have settled, every running process suspects
// every permanently crashed process (its standing heartbeat expectation
// can never match again).
type completenessChecker struct{}

func (completenessChecker) Name() string { return "detector-completeness" }

func (completenessChecker) Check(r *RunState, phase Phase) error {
	if phase != PhaseFinal {
		return nil
	}
	for _, crashed := range r.cluster.cfg.All() {
		if !r.Scenario.CrashedForever(crashed) {
			continue
		}
		for _, p := range r.cluster.cfg.All() {
			m := r.cluster.members[p]
			if !m.running() {
				continue
			}
			if !m.host.Detector.Suspected().Contains(crashed) {
				return fmt.Errorf("%s does not suspect crashed process %s at end of run", p, crashed)
			}
		}
	}
	return nil
}

// agreementChecker verifies quorum-selection Agreement: after faults
// stop and suspicions settle, every correct process converges on the
// same quorum. Restarted processes are excluded: a process that was
// down missed UPDATE broadcasts the paper's reliable channels would
// have delivered, which is outside the model (the store gossips rows
// only on change, so there is no anti-entropy to catch it up).
type agreementChecker struct{}

func (agreementChecker) Name() string { return "qs-agreement" }

func (agreementChecker) Check(r *RunState, phase Phase) error {
	if phase != PhaseFinal {
		return nil
	}
	var ref *ids.Quorum
	var refProc ids.ProcessID
	for _, p := range r.cluster.cfg.All() {
		m := r.cluster.members[p]
		if !m.running() || m.host.Store == nil || r.Scenario.Restarted(p) {
			continue
		}
		q := m.host.CurrentQuorum()
		if ref == nil {
			ref, refProc = &q, p
			continue
		}
		if !q.Equal(*ref) {
			return fmt.Errorf("quorum disagreement after settling: %s has %s, %s has %s",
				refProc, *ref, p, q)
		}
	}
	return nil
}

// terminationChecker verifies quorum-selection Termination in its
// testable form: once suspicions stop changing (faults over, settle
// time passed), no process issues another quorum. It snapshots issued
// counts at PhaseSettled and demands no growth by PhaseFinal.
type terminationChecker struct {
	snap map[ids.ProcessID]int
}

func (*terminationChecker) Name() string { return "qs-termination" }

func (t *terminationChecker) Check(r *RunState, phase Phase) error {
	switch phase {
	case PhaseSettled:
		t.snap = make(map[ids.ProcessID]int, r.cluster.cfg.N)
		for _, p := range r.cluster.cfg.All() {
			m := r.cluster.members[p]
			if m.running() && m.host.Store != nil {
				t.snap[p] = len(m.host.Quorums())
			}
		}
	case PhaseFinal:
		if t.snap == nil {
			return nil
		}
		for _, p := range r.cluster.cfg.All() {
			m := r.cluster.members[p]
			if !m.running() || m.host.Store == nil || r.Scenario.Restarted(p) {
				continue
			}
			was, ok := t.snap[p]
			if !ok {
				continue
			}
			if now := len(m.host.Quorums()); now > was {
				return fmt.Errorf("%s issued %d quorums after suspicions settled", p, now-was)
			}
		}
	}
	return nil
}

// historyChecker verifies cross-replica replicated-history agreement:
// at every instant, any two replicas' execution histories must be
// prefix-consistent — one is a prefix of the other, element for
// element. Crashed replicas keep their frozen prefix and stay in the
// comparison.
type historyChecker struct{}

func (historyChecker) Name() string { return "history-agreement" }

func (historyChecker) Check(r *RunState, _ Phase) error {
	procs := r.cluster.cfg.All()
	for i := 0; i < len(procs); i++ {
		for j := i + 1; j < len(procs); j++ {
			a, b := r.history(procs[i]), r.history(procs[j])
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			for k := 0; k < n; k++ {
				if a[k].Slot != b[k].Slot || a[k].Client != b[k].Client ||
					a[k].Seq != b[k].Seq || !bytes.Equal(a[k].Op, b[k].Op) ||
					!bytes.Equal(a[k].Result, b[k].Result) {
					return fmt.Errorf(
						"histories diverge at index %d: %s executed slot=%d client=%d seq=%d, %s executed slot=%d client=%d seq=%d",
						k, procs[i], a[k].Slot, a[k].Client, a[k].Seq,
						procs[j], b[k].Slot, b[k].Client, b[k].Seq)
				}
			}
		}
	}
	return nil
}

// livenessChecker verifies post-fault progress: probe requests
// submitted after the faults settled must all execute somewhere by the
// end of the horizon. It demands progress of the system, not of every
// replica — a non-quorum replica may legitimately trail until lazy
// replication or catch-up reaches it.
type livenessChecker struct{}

func (livenessChecker) Name() string { return "liveness" }

func (livenessChecker) Check(r *RunState, phase Phase) error {
	if phase != PhaseFinal || r.probes == 0 {
		return nil
	}
	best, bestProc := -1, ids.ProcessID(0)
	for _, p := range r.cluster.cfg.All() {
		seen := make(map[uint64]bool)
		for _, e := range r.history(p) {
			if e.Client == probeClient {
				seen[e.Seq] = true
			}
		}
		if len(seen) > best {
			best, bestProc = len(seen), p
		}
	}
	if best < r.probes {
		return fmt.Errorf("only %d of %d post-fault probes executed (best replica %s)",
			best, r.probes, bestProc)
	}
	return nil
}
