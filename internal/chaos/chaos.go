// Package chaos is a seeded, fully deterministic scenario fuzzer for
// the quorum-selection stack. From a single int64 seed it derives a
// complete fault schedule (GenerateScenario), executes it against a
// simulated cluster of any supported protocol composition, and checks a
// suite of pluggable safety and liveness invariants online while the
// faults play out. Because every source of randomness flows from the
// seed and the simulator is single-threaded, a violating seed replays
// byte-for-byte: Run reports the first bad seed, and Replay reproduces
// its full trace dump on demand.
package chaos

import (
	"fmt"
	"strings"
	"time"

	"quorumselect/internal/ids"
	"quorumselect/internal/metrics"
	"quorumselect/internal/obs/tracer"
	"quorumselect/internal/sim"
	"quorumselect/internal/trace"
	"quorumselect/internal/wire"
	"quorumselect/internal/xpaxos"
)

// probeClient is the reserved client id for post-fault liveness probes;
// workload clients are small integers, so it can never collide.
const probeClient uint64 = 0xC4A05

// probeCount is how many liveness probes are submitted once faults
// settle.
const probeCount = 4

// Dump size bounds: the tail of each stream is what localizes a
// violation; unbounded dumps would bury it.
const (
	dumpEvents = 200
	dumpTrace  = 120
	dumpSpans  = 120
)

// Config parameterizes a chaos campaign.
type Config struct {
	// N, F are the cluster parameters (default 4, 1).
	N, F int
	// Protocol selects the composition under test (default ProtocolQS).
	Protocol Protocol
	// Faults restricts the fault classes the generator draws from
	// (default: all).
	Faults []FaultClass
	// Seeds is how many consecutive seeds Run executes (default 1).
	Seeds int
	// FirstSeed is the first seed of the campaign.
	FirstSeed int64
	// BatchSize is the replica batch size for batching protocols
	// (default 1).
	BatchSize int
	// Window bounds the XPaxos leader's in-flight pipeline (0 =
	// unbounded, the unwindowed behavior). Other protocols ignore it.
	Window int
	// Reorder disables the simulator's per-link FIFO clamp so messages
	// on one link may overtake each other — the schedule a pipelined
	// commit path must tolerate (COMMIT before PREPARE, slots out of
	// order).
	Reorder bool
	// AsyncVerify routes signature checks through the simulator's
	// deterministic asynchronous-verification path (a zero-delay
	// completion event per check) instead of inline calls, exercising
	// the off-loop verify plumbing under faults.
	AsyncVerify bool
	// Requests is the workload size submitted while faults are active
	// (default 30; ignored for the core-only protocol).
	Requests int
	// FaultEnd is when every generated fault window has closed (default
	// 8s). Settle is when suspicions are assumed stable and liveness
	// probes go out (default 18s); Horizon ends the run (default 28s).
	// Slice is the online-checker cadence (default 500ms).
	FaultEnd, Settle, Horizon, Slice time.Duration
	// Checkers overrides the protocol's default invariant suite.
	Checkers []Checker
	// TamperHistory, when set, rewrites a replica's execution history
	// before the checkers see it. Test-only: it exists so the harness's
	// own tests can inject an agreement bug and prove the fuzzer catches
	// it.
	TamperHistory func(p ids.ProcessID, h []xpaxos.Execution) []xpaxos.Execution
	// Metrics, when set, receives every run's metrics (message
	// accounting, protocol counters, span/event drop gauges). Shared
	// across the seeds of a sweep; nil keeps accounting private to the
	// run.
	Metrics *metrics.Registry
	// TamperSkipSync, when set, makes every member's storage backend
	// acknowledge fsyncs without making the writes durable. Test-only:
	// a hard crash then loses acknowledged state, and the
	// crash-recovery checker must catch the shortened history — proof
	// the harness would notice a protocol that skips its
	// persist-before-act barrier.
	TamperSkipSync bool
	// Topology, when set, replaces the default LAN latency band with a
	// WAN topology's link model (its partition windows chain in front of
	// the generated fault filter) and scales failure-detector timeouts
	// to the worst one-way delay, so chaos campaigns run against the
	// same region geometry the load generator uses.
	Topology *sim.BoundTopology
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N, c.F = 4, 1
	}
	if c.Protocol == "" {
		c.Protocol = ProtocolQS
	}
	if c.Seeds == 0 {
		c.Seeds = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 1
	}
	if c.Requests == 0 {
		c.Requests = 30
	}
	if c.FaultEnd == 0 {
		c.FaultEnd = 8 * time.Second
	}
	if c.Settle == 0 {
		c.Settle = 18 * time.Second
	}
	if c.Horizon == 0 {
		c.Horizon = 28 * time.Second
	}
	if c.Slice == 0 {
		c.Slice = 500 * time.Millisecond
	}
	return c
}

// Violation is one invariant breach, pinned to the seed that reproduces
// it.
type Violation struct {
	Seed    int64
	Checker string
	At      time.Duration
	Detail  string
	// Dump is the replayable evidence: fault schedule, violation, and
	// the tails of the observability and trace streams. It is
	// byte-identical across replays of the same seed.
	Dump string
	// Flight is the flight-recorder dump (tracer.Dump JSON): the
	// retained causal spans and protocol events of the violating run.
	// Span identifiers are node-prefixed sequence numbers and all
	// timestamps are virtual, so it too is byte-identical across
	// replays of the same seed.
	Flight []byte
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("chaos: seed %d violates %s at %s: %s", v.Seed, v.Checker, v.At, v.Detail)
}

// Result summarizes a campaign.
type Result struct {
	Protocol Protocol
	// Seeds is how many seeds actually executed (the campaign stops at
	// the first violation).
	Seeds int
	// Violation is the first breach found, nil if every seed passed.
	Violation *Violation
}

// Run executes cfg.Seeds consecutive seeds starting at cfg.FirstSeed
// and stops at the first invariant violation, returning it with a
// replayable dump.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	for i := 0; i < cfg.Seeds; i++ {
		seed := cfg.FirstSeed + int64(i)
		if v, _, _ := runSeed(cfg, seed, false); v != nil {
			return Result{Protocol: cfg.Protocol, Seeds: i + 1, Violation: v}
		}
	}
	return Result{Protocol: cfg.Protocol, Seeds: cfg.Seeds}
}

// RunSeed executes one seed and returns its violation, if any.
func RunSeed(cfg Config, seed int64) *Violation {
	v, _, _ := runSeed(cfg.withDefaults(), seed, false)
	return v
}

// Replay executes one seed and returns the full trace dump regardless
// of outcome — the reproduction path for a seed Run reported.
func Replay(cfg Config, seed int64) (string, *Violation) {
	dump, _, v := ReplayDump(cfg, seed)
	return dump, v
}

// ReplayDump is Replay plus the flight-recorder dump: the text trace,
// the tracer.Dump JSON (spans and protocol events), and the violation,
// if any. Both dumps are byte-identical across replays of one seed.
func ReplayDump(cfg Config, seed int64) (string, []byte, *Violation) {
	v, dump, flight := runSeed(cfg.withDefaults(), seed, true)
	return dump, flight, v
}

// RunState is the live run handed to checkers: the scenario being
// injected, the cluster under test, and the harness's own bookkeeping.
type RunState struct {
	Config   Config
	Scenario *Scenario
	cluster  *cluster
	// probes is how many liveness probes went out (0 until PhaseSettled).
	probes int
	// preCrash freezes each restarted durable member's execution history
	// at the moment it crashed. Every execution is persisted before it
	// happens (persist-before-act), so the recovered member must come
	// back with at least this prefix — the crash-recovery checker's
	// ground truth.
	preCrash map[ids.ProcessID][]xpaxos.Execution
}

// history returns p's replicated history as the checkers should see it,
// with the test-only tamper hook applied.
func (r *RunState) history(p ids.ProcessID) []xpaxos.Execution {
	m := r.cluster.members[p]
	if m.history == nil {
		return nil
	}
	h := m.history()
	if r.Config.TamperHistory != nil {
		h = r.Config.TamperHistory(p, h)
	}
	return h
}

// submit hands a request to the first correct running member — the
// stand-in for a client that retries against a live replica.
func (r *RunState) submit(req *wire.Request) {
	for _, p := range r.cluster.cfg.All() {
		m := r.cluster.members[p]
		if r.Scenario.Faulty.Contains(p) || !m.running() || m.submit == nil {
			continue
		}
		m.submit(req)
		return
	}
}

// runSeed generates, executes, and checks one scenario.
func runSeed(cfg Config, seed int64, alwaysDump bool) (*Violation, string, []byte) {
	idsCfg := ids.MustConfig(cfg.N, cfg.F)
	sc := GenerateScenario(idsCfg, seed, cfg.Faults, cfg.Protocol.restartable(), cfg.FaultEnd)
	cl := newCluster(idsCfg, cfg, seed, sc.Filter)
	defer cl.net.Close()

	rs := &RunState{Config: cfg, Scenario: sc, cluster: cl,
		preCrash: make(map[ids.ProcessID][]xpaxos.Execution)}
	checkers := cfg.Checkers
	if checkers == nil {
		checkers = defaultCheckers(cfg.Protocol)
	}

	// Crash/restart churn from the scenario, on the virtual clock. A
	// crash that will restart freezes the member's history first: the
	// recovered process must extend it (crash-recovery checker).
	for _, plan := range sc.Crashes {
		plan := plan
		p := plan.Proc
		cl.net.At(plan.At, func() {
			if m := cl.members[p]; plan.RestartAt > 0 && m.history != nil && m.backend != nil {
				rs.preCrash[p] = m.history()
			}
			cl.crash(p, plan.Hard)
		})
		if plan.RestartAt > 0 {
			cl.net.At(plan.RestartAt, func() { cl.restart(p) })
		}
	}

	// Workload, spread across the fault window so requests commit while
	// links drop, frames mutate, and processes churn.
	if cfg.Protocol.smr() && cfg.Requests > 0 {
		gap := cfg.FaultEnd / time.Duration(cfg.Requests+1)
		for i := 1; i <= cfg.Requests; i++ {
			req := &wire.Request{
				Client: uint64(1 + (i-1)%3),
				Seq:    uint64(1 + (i-1)/3),
				Op:     []byte(fmt.Sprintf("set k%d v%d", i, i)),
			}
			cl.net.At(time.Duration(i)*gap, func() { rs.submit(req) })
		}
	}

	// Drive virtual time in slices, evaluating checkers at every
	// boundary; one slice is promoted to PhaseSettled once faults are
	// over, which also launches the liveness probes.
	var violation *Violation
	settled := false
	for t := cfg.Slice; violation == nil && t <= cfg.Horizon; t += cfg.Slice {
		cl.net.Run(t)
		phase := PhaseOnline
		if !settled && t >= cfg.Settle {
			settled = true
			phase = PhaseSettled
			if cfg.Protocol.checksLiveness() {
				for i := 1; i <= probeCount; i++ {
					rs.submit(&wire.Request{
						Client: probeClient,
						Seq:    uint64(i),
						Op:     []byte(fmt.Sprintf("set probe p%d", i)),
					})
				}
				rs.probes = probeCount
			}
		}
		violation = runCheckers(checkers, rs, phase, seed)
	}
	if violation == nil {
		violation = runCheckers(checkers, rs, PhaseFinal, seed)
	}

	// Observability loss accounting: how much of each bounded stream the
	// run evicted (non-zero drops mean the dumps below are tails).
	reg := cl.net.Metrics()
	reg.SetGauge("obs.bus.dropped", float64(cl.bus.Dropped()))
	reg.SetGauge("trace.ring.dropped", float64(cl.rec.Dropped()))
	reg.SetGauge("tracer.ring.dropped", float64(cl.spans.Dropped()))

	var dump string
	var flight []byte
	if violation != nil || alwaysDump {
		dump = rs.dump(violation)
		reason := fmt.Sprintf("chaos replay seed=%d", seed)
		if violation != nil {
			reason = fmt.Sprintf("chaos violation seed=%d checker=%s at=%s",
				seed, violation.Checker, violation.At)
		}
		flight = tracer.Capture(reason, cl.spans, cl.bus).JSON()
	}
	if violation != nil {
		violation.Dump = dump
		violation.Flight = flight
	}
	return violation, dump, flight
}

// runCheckers evaluates the suite and converts the first failure into a
// Violation.
func runCheckers(checkers []Checker, rs *RunState, phase Phase, seed int64) *Violation {
	for _, ch := range checkers {
		if err := ch.Check(rs, phase); err != nil {
			return &Violation{
				Seed:    seed,
				Checker: ch.Name(),
				At:      rs.cluster.net.Now(),
				Detail:  err.Error(),
			}
		}
	}
	return nil
}

// dump renders the replayable evidence for a run. Everything in it is a
// function of the seed — virtual timestamps, deterministic event
// strings — so two replays of the same seed produce identical bytes.
func (r *RunState) dump(v *Violation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: protocol=%s seed=%d n=%d f=%d\n",
		r.Config.Protocol, r.Scenario.Seed, r.Config.N, r.Config.F)
	b.WriteString("schedule:\n")
	for _, d := range r.Scenario.Desc {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	if v != nil {
		fmt.Fprintf(&b, "violation: checker=%s at=%s\n  %s\n", v.Checker, v.At, v.Detail)
	} else {
		b.WriteString("no violation\n")
	}
	evs := r.cluster.bus.Events()
	if len(evs) > dumpEvents {
		evs = evs[len(evs)-dumpEvents:]
	}
	fmt.Fprintf(&b, "events (last %d):\n", len(evs))
	for _, e := range evs {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	tes := r.cluster.rec.Events(trace.Filter{})
	if len(tes) > dumpTrace {
		tes = tes[len(tes)-dumpTrace:]
	}
	fmt.Fprintf(&b, "trace (last %d):\n", len(tes))
	for _, e := range tes {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	spans := r.cluster.spans.Spans()
	if len(spans) > dumpSpans {
		spans = spans[len(spans)-dumpSpans:]
	}
	fmt.Fprintf(&b, "spans (last %d):\n", len(spans))
	for _, s := range spans {
		fmt.Fprintf(&b, "  %s node=%s trace=%x id=%x parent=%x start=%s dur=%s slot=%d view=%d\n",
			s.Name, s.Node, s.Trace, s.ID, s.Parent, s.Start, s.Dur, s.Slot, s.View)
	}
	return b.String()
}
