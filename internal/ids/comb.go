package ids

// Binomial returns C(n, k), the number of k-element subsets of an
// n-element set. It panics on negative arguments and returns 0 when
// k > n. Used for the paper's bounds: XPaxos enumerates C(n, f)
// quorums (§V-B) and the lower bound of Theorem 4 is C(f+2, 2).
func Binomial(n, k int) int {
	if n < 0 || k < 0 {
		panic("ids: Binomial requires non-negative arguments")
	}
	if k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1
	for i := 0; i < k; i++ {
		res = res * (n - i) / (i + 1)
	}
	return res
}

// TheoremFourBound returns C(f+2, 2), the lower bound of Theorem 4 on
// the number of quorums any deterministic quorum-selection algorithm
// may have to propose, and the empirical per-epoch maximum suggested by
// the paper's simulations for Algorithm 1.
func TheoremFourBound(f int) int { return Binomial(f+2, 2) }

// TheoremThreeBound returns f×(f+1), the per-epoch upper bound on
// quorums issued by a correct process established in the proof of
// Theorem 3.
func TheoremThreeBound(f int) int { return f * (f + 1) }

// TheoremNineBound returns 3f+1, the per-epoch bound on quorums issued
// by Follower Selection (Theorem 9).
func TheoremNineBound(f int) int { return 3*f + 1 }

// CorollaryTenBound returns 6f+2, the bound on quorums issued by
// Follower Selection after the failure detector has become accurate
// (Corollary 10).
func CorollaryTenBound(f int) int { return 6*f + 2 }

// EnumerateQuorums returns all C(n, q)-many quorums of size q over
// {p_1, ..., p_n} in lexicographic order of their sorted member lists.
// This is the enumeration XPaxos iterates through when changing views
// (§V-B). The result grows combinatorially; callers cap n accordingly.
func EnumerateQuorums(n, q int) []Quorum {
	if q < 0 || q > n {
		return nil
	}
	var (
		out  []Quorum
		cur  = make([]ProcessID, 0, q)
		walk func(next int)
	)
	walk = func(next int) {
		if len(cur) == q {
			ms := make([]ProcessID, q)
			copy(ms, cur)
			out = append(out, Quorum{Members: ms})
			return
		}
		// Prune: not enough processes left to complete the quorum.
		need := q - len(cur)
		for v := next; v <= n-need+1; v++ {
			cur = append(cur, ProcessID(v))
			walk(v + 1)
			cur = cur[:len(cur)-1]
		}
	}
	walk(1)
	return out
}

// QuorumIndex returns the position of q within the lexicographic
// enumeration of all size-|q| quorums over n processes, or -1 if the
// quorum is not a valid subset of Π. It runs in O(|q|·n) time without
// materializing the enumeration.
func QuorumIndex(n int, q Quorum) int {
	k := len(q.Members)
	if k == 0 || k > n {
		return -1
	}
	idx := 0
	prev := 0
	for pos, p := range q.Members {
		v := int(p)
		if v <= prev || v > n {
			return -1
		}
		// Count combinations that start with a smaller element at
		// this position.
		for c := prev + 1; c < v; c++ {
			idx += Binomial(n-c, k-pos-1)
		}
		prev = v
	}
	return idx
}
