package ids

import (
	"testing"
	"testing/quick"
)

func TestNewConfig(t *testing.T) {
	tests := []struct {
		name    string
		n, f    int
		wantErr bool
		wantQ   int
	}{
		{name: "pbft minimal", n: 4, f: 1, wantQ: 3},
		{name: "paper fig4", n: 5, f: 2, wantQ: 3},
		{name: "xpaxos 2f+1", n: 5, f: 2, wantQ: 3},
		{name: "no processes", n: 0, f: 0, wantErr: true},
		{name: "negative f", n: 3, f: -1, wantErr: true},
		{name: "no majority", n: 4, f: 2, wantErr: true},
		{name: "f zero", n: 1, f: 0, wantQ: 1},
		{name: "large", n: 31, f: 10, wantQ: 21},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c, err := NewConfig(tt.n, tt.f)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewConfig(%d,%d) error = %v, wantErr %v", tt.n, tt.f, err, tt.wantErr)
			}
			if err != nil {
				return
			}
			if got := c.Q(); got != tt.wantQ {
				t.Errorf("Q() = %d, want %d", got, tt.wantQ)
			}
		})
	}
}

func TestConfigLeaderCentric(t *testing.T) {
	tests := []struct {
		n, f int
		want bool
	}{
		{4, 1, true},  // n = 3f+1
		{3, 1, false}, // n = 3f
		{7, 2, true},
		{6, 2, false},
		{5, 2, false},
		{1, 0, true},
	}
	for _, tt := range tests {
		c := Config{N: tt.n, F: tt.f}
		if got := c.LeaderCentric(); got != tt.want {
			t.Errorf("Config{%d,%d}.LeaderCentric() = %v, want %v", tt.n, tt.f, got, tt.want)
		}
	}
}

func TestConfigDefaultQuorum(t *testing.T) {
	c := MustConfig(7, 2)
	q := c.DefaultQuorum()
	if q.Len() != 5 {
		t.Fatalf("default quorum size = %d, want 5", q.Len())
	}
	for i := 1; i <= 5; i++ {
		if !q.Contains(ProcessID(i)) {
			t.Errorf("default quorum missing p%d", i)
		}
	}
	if q.Contains(6) || q.Contains(7) {
		t.Errorf("default quorum contains processes beyond q: %s", q)
	}
}

func TestProcSetBasics(t *testing.T) {
	s := NewProcSet(3, 1, 2)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	s.Add(3) // duplicate
	if s.Len() != 3 {
		t.Fatalf("duplicate add changed size: %d", s.Len())
	}
	s.Remove(2)
	if s.Contains(2) {
		t.Error("Remove(2) left 2 in set")
	}
	got := s.Sorted()
	want := []ProcessID{1, 3}
	if len(got) != len(want) {
		t.Fatalf("Sorted = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v, want %v", got, want)
		}
	}
	if s.Min() != 1 {
		t.Errorf("Min = %v, want p1", s.Min())
	}
	if NewProcSet().Min() != None {
		t.Errorf("empty Min should be None")
	}
	if s.String() != "{p1,p3}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestProcSetAlgebra(t *testing.T) {
	a := NewProcSet(1, 2, 3)
	b := NewProcSet(3, 4)
	if got := a.Union(b); got.Len() != 4 {
		t.Errorf("Union = %s", got)
	}
	if got := a.Intersect(b); got.Len() != 1 || !got.Contains(3) {
		t.Errorf("Intersect = %s", got)
	}
	if got := a.Minus(b); got.Len() != 2 || got.Contains(3) {
		t.Errorf("Minus = %s", got)
	}
	// Originals untouched.
	if a.Len() != 3 || b.Len() != 2 {
		t.Error("set algebra mutated operands")
	}
	c := a.Clone()
	c.Add(9)
	if a.Contains(9) {
		t.Error("Clone shares storage with original")
	}
	if !a.Equal(NewProcSet(3, 2, 1)) {
		t.Error("Equal failed for same members")
	}
	if a.Equal(b) {
		t.Error("Equal true for different sets")
	}
}

func TestQuorum(t *testing.T) {
	q := NewQuorum([]ProcessID{3, 1, 5})
	if q.String() != "{p1,p3,p5}" {
		t.Errorf("String = %q", q.String())
	}
	if q.EffectiveLeader() != 1 {
		t.Errorf("EffectiveLeader = %v, want p1", q.EffectiveLeader())
	}
	lq := NewLeaderQuorum(3, []ProcessID{3, 1, 5})
	if lq.EffectiveLeader() != 3 {
		t.Errorf("designated leader = %v, want p3", lq.EffectiveLeader())
	}
	if !q.Contains(5) || q.Contains(2) {
		t.Error("Contains wrong")
	}
	if !q.Equal(NewQuorum([]ProcessID{5, 3, 1})) {
		t.Error("Equal should ignore input order")
	}
	if q.Equal(lq) {
		t.Error("Equal must compare leaders")
	}
	if (Quorum{}).EffectiveLeader() != None {
		t.Error("empty quorum leader should be None")
	}
}

func TestQuorumLess(t *testing.T) {
	tests := []struct {
		a, b []ProcessID
		want bool
	}{
		{[]ProcessID{1, 2, 3}, []ProcessID{1, 2, 4}, true},
		{[]ProcessID{1, 2, 4}, []ProcessID{1, 3, 4}, true},
		{[]ProcessID{2, 3, 4}, []ProcessID{1, 2, 3}, false},
		{[]ProcessID{1, 2, 3}, []ProcessID{1, 2, 3}, false},
		{[]ProcessID{1, 2}, []ProcessID{1, 2, 3}, true},
	}
	for _, tt := range tests {
		a, b := NewQuorum(tt.a), NewQuorum(tt.b)
		if got := a.Less(b); got != tt.want {
			t.Errorf("%s.Less(%s) = %v, want %v", a, b, got, tt.want)
		}
	}
}

func TestBinomial(t *testing.T) {
	tests := []struct {
		n, k, want int
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1},
		{4, 2, 6}, {5, 2, 10}, {6, 3, 20},
		{10, 5, 252}, {3, 5, 0},
		{7, 2, 21}, // XPaxos enumeration size for n=7, f=2... C(7,5)=C(7,2)
	}
	for _, tt := range tests {
		if got := Binomial(tt.n, tt.k); got != tt.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestPaperBounds(t *testing.T) {
	// Spot-check the closed forms against the paper's statements.
	tests := []struct {
		f                       int
		thm4, thm3, thm9, cor10 int
	}{
		{1, 3, 2, 4, 8},
		{2, 6, 6, 7, 14},
		{3, 10, 12, 10, 20},
		{5, 21, 30, 16, 32},
	}
	for _, tt := range tests {
		if got := TheoremFourBound(tt.f); got != tt.thm4 {
			t.Errorf("TheoremFourBound(%d) = %d, want %d", tt.f, got, tt.thm4)
		}
		if got := TheoremThreeBound(tt.f); got != tt.thm3 {
			t.Errorf("TheoremThreeBound(%d) = %d, want %d", tt.f, got, tt.thm3)
		}
		if got := TheoremNineBound(tt.f); got != tt.thm9 {
			t.Errorf("TheoremNineBound(%d) = %d, want %d", tt.f, got, tt.thm9)
		}
		if got := CorollaryTenBound(tt.f); got != tt.cor10 {
			t.Errorf("CorollaryTenBound(%d) = %d, want %d", tt.f, got, tt.cor10)
		}
	}
}

func TestEnumerateQuorums(t *testing.T) {
	qs := EnumerateQuorums(4, 3)
	if len(qs) != 4 {
		t.Fatalf("len = %d, want 4", len(qs))
	}
	want := []string{"{p1,p2,p3}", "{p1,p2,p4}", "{p1,p3,p4}", "{p2,p3,p4}"}
	for i, q := range qs {
		if q.String() != want[i] {
			t.Errorf("quorum %d = %s, want %s", i, q, want[i])
		}
	}
	// Enumeration is sorted under Less.
	for i := 1; i < len(qs); i++ {
		if !qs[i-1].Less(qs[i]) {
			t.Errorf("enumeration not lexicographically sorted at %d", i)
		}
	}
	if got := EnumerateQuorums(3, 0); len(got) != 1 {
		t.Errorf("q=0 should yield the single empty quorum, got %d", len(got))
	}
	if got := EnumerateQuorums(3, 4); got != nil {
		t.Errorf("q>n should yield nil, got %v", got)
	}
}

func TestEnumerateQuorumsCount(t *testing.T) {
	for _, tt := range []struct{ n, q int }{{5, 3}, {6, 4}, {7, 5}, {8, 4}} {
		got := EnumerateQuorums(tt.n, tt.q)
		if want := Binomial(tt.n, tt.q); len(got) != want {
			t.Errorf("EnumerateQuorums(%d,%d) has %d quorums, want %d", tt.n, tt.q, len(got), want)
		}
	}
}

func TestQuorumIndex(t *testing.T) {
	n, q := 7, 5
	all := EnumerateQuorums(n, q)
	for i, qu := range all {
		if got := QuorumIndex(n, qu); got != i {
			t.Errorf("QuorumIndex(%s) = %d, want %d", qu, got, i)
		}
	}
	if got := QuorumIndex(4, NewQuorum([]ProcessID{1, 9})); got != -1 {
		t.Errorf("out-of-range quorum index = %d, want -1", got)
	}
	if got := QuorumIndex(4, Quorum{}); got != -1 {
		t.Errorf("empty quorum index = %d, want -1", got)
	}
}

func TestProcSetUnionCommutative(t *testing.T) {
	f := func(a, b []uint8) bool {
		sa, sb := NewProcSet(), NewProcSet()
		for _, x := range a {
			sa.Add(ProcessID(x%16 + 1))
		}
		for _, x := range b {
			sb.Add(ProcessID(x%16 + 1))
		}
		return sa.Union(sb).Equal(sb.Union(sa))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProcSetMinusDisjoint(t *testing.T) {
	f := func(a, b []uint8) bool {
		sa, sb := NewProcSet(), NewProcSet()
		for _, x := range a {
			sa.Add(ProcessID(x%16 + 1))
		}
		for _, x := range b {
			sb.Add(ProcessID(x%16 + 1))
		}
		d := sa.Minus(sb)
		return d.Intersect(sb).Empty() && d.Union(sa.Intersect(sb)).Equal(sa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
