// Package ids defines process identifiers, process sets and the quorum
// arithmetic used throughout the library.
//
// The paper assumes a fixed set Π = {p_1, ..., p_n} of processes ordered
// by unique identifiers. Identifiers are 1-based, matching the paper's
// notation: the "default quorum" is {p_1, ..., p_q} and the default
// leader is p_1.
package ids

import (
	"fmt"
	"sort"
	"strings"
)

// ProcessID identifies a process in Π. IDs are 1-based; 0 is reserved as
// the zero value meaning "no process".
type ProcessID int

// None is the zero ProcessID, used where no process applies.
const None ProcessID = 0

// String returns the paper-style name of the process, e.g. "p3".
func (p ProcessID) String() string {
	if p == None {
		return "p?"
	}
	return fmt.Sprintf("p%d", int(p))
}

// Valid reports whether p is a legal identifier in a system of n processes.
func (p ProcessID) Valid(n int) bool {
	return p >= 1 && int(p) <= n
}

// Config captures the replication parameters of a system: the total
// number of processes n, the failure threshold f, and the quorum size
// q = n − f. The paper assumes f + q = n and n − f > f (a majority of
// processes is correct).
type Config struct {
	N int // total number of processes in Π
	F int // maximum number of arbitrary (Byzantine) failures
}

// NewConfig validates and returns a Config. It enforces the paper's
// system-model assumptions: n ≥ 1, f ≥ 0 and n − f > f.
func NewConfig(n, f int) (Config, error) {
	c := Config{N: n, F: f}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// MustConfig is NewConfig that panics on invalid parameters. Intended
// for tests and examples with compile-time-known parameters.
func MustConfig(n, f int) Config {
	c, err := NewConfig(n, f)
	if err != nil {
		panic(err)
	}
	return c
}

// Validate checks the system-model assumptions.
func (c Config) Validate() error {
	switch {
	case c.N < 1:
		return fmt.Errorf("ids: need at least one process, got n=%d", c.N)
	case c.F < 0:
		return fmt.Errorf("ids: failure threshold must be non-negative, got f=%d", c.F)
	case c.N-c.F <= c.F:
		return fmt.Errorf("ids: need a correct majority (n-f > f), got n=%d f=%d", c.N, c.F)
	}
	return nil
}

// Q returns the quorum size q = n − f.
func (c Config) Q() int { return c.N - c.F }

// LeaderCentric reports whether the configuration satisfies the
// Follower Selection assumption |Π| > 3f (Section VIII).
func (c Config) LeaderCentric() bool { return c.N > 3*c.F }

// All returns Π as a sorted slice {p_1, ..., p_n}.
func (c Config) All() []ProcessID {
	out := make([]ProcessID, c.N)
	for i := range out {
		out[i] = ProcessID(i + 1)
	}
	return out
}

// DefaultQuorum returns the paper's initial quorum {p_1, ..., p_q}.
func (c Config) DefaultQuorum() ProcSet {
	s := NewProcSet()
	for i := 1; i <= c.Q(); i++ {
		s.Add(ProcessID(i))
	}
	return s
}

// String renders the configuration compactly, e.g. "n=7 f=2 q=5".
func (c Config) String() string {
	return fmt.Sprintf("n=%d f=%d q=%d", c.N, c.F, c.Q())
}

// ProcSet is a set of process identifiers. The zero value is not ready
// for use; construct with NewProcSet or FromSlice.
type ProcSet struct {
	m map[ProcessID]struct{}
}

// NewProcSet returns an empty set containing the given processes.
func NewProcSet(ps ...ProcessID) ProcSet {
	s := ProcSet{m: make(map[ProcessID]struct{}, len(ps))}
	for _, p := range ps {
		s.m[p] = struct{}{}
	}
	return s
}

// FromSlice builds a set from a slice of identifiers.
func FromSlice(ps []ProcessID) ProcSet {
	return NewProcSet(ps...)
}

// Add inserts p into the set.
func (s ProcSet) Add(p ProcessID) { s.m[p] = struct{}{} }

// Remove deletes p from the set.
func (s ProcSet) Remove(p ProcessID) { delete(s.m, p) }

// Contains reports whether p is in the set.
func (s ProcSet) Contains(p ProcessID) bool {
	_, ok := s.m[p]
	return ok
}

// Len returns the number of processes in the set.
func (s ProcSet) Len() int { return len(s.m) }

// Empty reports whether the set has no members.
func (s ProcSet) Empty() bool { return len(s.m) == 0 }

// Sorted returns the members in increasing identifier order.
func (s ProcSet) Sorted() []ProcessID {
	out := make([]ProcessID, 0, len(s.m))
	for p := range s.m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns an independent copy of the set.
func (s ProcSet) Clone() ProcSet {
	c := ProcSet{m: make(map[ProcessID]struct{}, len(s.m))}
	for p := range s.m {
		c.m[p] = struct{}{}
	}
	return c
}

// Equal reports whether two sets have exactly the same members.
func (s ProcSet) Equal(o ProcSet) bool {
	if len(s.m) != len(o.m) {
		return false
	}
	for p := range s.m {
		if !o.Contains(p) {
			return false
		}
	}
	return true
}

// Union returns a new set with the members of both sets.
func (s ProcSet) Union(o ProcSet) ProcSet {
	u := s.Clone()
	for p := range o.m {
		u.m[p] = struct{}{}
	}
	return u
}

// Intersect returns a new set with the members common to both sets.
func (s ProcSet) Intersect(o ProcSet) ProcSet {
	u := NewProcSet()
	for p := range s.m {
		if o.Contains(p) {
			u.m[p] = struct{}{}
		}
	}
	return u
}

// Minus returns a new set with the members of s that are not in o.
func (s ProcSet) Minus(o ProcSet) ProcSet {
	u := NewProcSet()
	for p := range s.m {
		if !o.Contains(p) {
			u.m[p] = struct{}{}
		}
	}
	return u
}

// Min returns the smallest identifier in the set, or None if empty.
func (s ProcSet) Min() ProcessID {
	min := None
	for p := range s.m {
		if min == None || p < min {
			min = p
		}
	}
	return min
}

// String renders the set in sorted paper notation, e.g. "{p1,p3,p4}".
func (s ProcSet) String() string {
	ps := s.Sorted()
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Quorum is an ordered, immutable-by-convention quorum as issued by the
// selection modules: a sorted slice of q distinct processes, plus an
// optional designated leader for Follower Selection.
type Quorum struct {
	// Members holds the quorum members in increasing identifier order.
	Members []ProcessID
	// Leader is the designated leader for Follower Selection quorums,
	// or None for plain Quorum Selection quorums (where by convention
	// the process with the lowest identifier acts as leader).
	Leader ProcessID
}

// NewQuorum builds a quorum from an unsorted member list.
func NewQuorum(members []ProcessID) Quorum {
	ms := make([]ProcessID, len(members))
	copy(ms, members)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	return Quorum{Members: ms}
}

// NewLeaderQuorum builds a Follower Selection quorum with a designated
// leader. The leader must be a member.
func NewLeaderQuorum(leader ProcessID, members []ProcessID) Quorum {
	q := NewQuorum(members)
	q.Leader = leader
	return q
}

// EffectiveLeader returns the designated leader if set, otherwise the
// member with the lowest identifier (the paper's convention for plain
// Quorum Selection, Section V-A step 1).
func (q Quorum) EffectiveLeader() ProcessID {
	if q.Leader != None {
		return q.Leader
	}
	if len(q.Members) == 0 {
		return None
	}
	return q.Members[0]
}

// Contains reports whether p is a quorum member.
func (q Quorum) Contains(p ProcessID) bool {
	for _, m := range q.Members {
		if m == p {
			return true
		}
	}
	return false
}

// Set returns the members as a ProcSet.
func (q Quorum) Set() ProcSet { return FromSlice(q.Members) }

// Equal reports whether two quorums have the same members and leader.
func (q Quorum) Equal(o Quorum) bool {
	if q.Leader != o.Leader || len(q.Members) != len(o.Members) {
		return false
	}
	for i := range q.Members {
		if q.Members[i] != o.Members[i] {
			return false
		}
	}
	return true
}

// String renders the quorum, including the leader when designated.
func (q Quorum) String() string {
	parts := make([]string, len(q.Members))
	for i, p := range q.Members {
		parts[i] = p.String()
	}
	body := "{" + strings.Join(parts, ",") + "}"
	if q.Leader != None {
		return fmt.Sprintf("⟨leader=%s, %s⟩", q.Leader, body)
	}
	return body
}

// Less orders quorums lexicographically by their sorted member lists,
// the enumeration order used by XPaxos's quorum iteration (§V-B) and by
// Algorithm 1's "first independent set in lexicographic order".
func (q Quorum) Less(o Quorum) bool {
	for i := 0; i < len(q.Members) && i < len(o.Members); i++ {
		if q.Members[i] != o.Members[i] {
			return q.Members[i] < o.Members[i]
		}
	}
	return len(q.Members) < len(o.Members)
}
