// Package load is the open-loop workload subsystem: arrival processes
// (Poisson, bursty, ramp), key-skew generators (Zipf, uniform), a
// tail-accurate latency recorder, and two generator engines — a
// wall-clock one driving real targets (TCP clusters, HTTP frontends)
// and a virtual-time one driving the deterministic simulator.
//
// Open loop means the request schedule is fixed in advance by the
// arrival process, independent of how fast the system answers: a slow
// system does not slow the clients down, it builds queueing delay —
// which is exactly the failure mode closed-loop drivers (submit, wait,
// repeat) structurally cannot observe. Latency is always measured from
// a request's *intended* send time, so a generator stalled by its
// in-flight bound still charges the wait to the system (no coordinated
// omission).
package load

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// Arrivals is an open-loop arrival process: a deterministic (per rng
// stream) sequence of inter-arrival gaps. Implementations carry their
// own phase state, so one value describes one run; use Parse again (or
// Clone semantics at the caller) for a fresh run.
type Arrivals interface {
	// Next returns the gap between the previous arrival and the next
	// one, advancing the process's internal clock.
	Next(rng *rand.Rand) time.Duration
	// Rate returns the nominal offered rate in req/s (the mean over a
	// long run), for reporting.
	Rate() float64
	// String returns the canonical spec the process was parsed from.
	String() string
}

// expGap draws an exponential inter-arrival gap at the given rate.
func expGap(rng *rand.Rand, rate float64) time.Duration {
	g := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
	if g < 0 { // ExpFloat64 can return huge values; Duration overflow guard
		g = math.MaxInt64
	}
	return g
}

// Poisson is a memoryless arrival process at a constant rate — the
// standard open-loop client population model.
type Poisson struct{ R float64 }

func (p *Poisson) Next(rng *rand.Rand) time.Duration { return expGap(rng, p.R) }
func (p *Poisson) Rate() float64                     { return p.R }
func (p *Poisson) String() string                    { return fmt.Sprintf("poisson:rate=%g", p.R) }

// Steady is a deterministic constant-gap process (no variance): useful
// for pinning capacity thresholds without Poisson burst noise.
type Steady struct{ R float64 }

func (s *Steady) Next(*rand.Rand) time.Duration {
	return time.Duration(float64(time.Second) / s.R)
}
func (s *Steady) Rate() float64  { return s.R }
func (s *Steady) String() string { return fmt.Sprintf("steady:rate=%g", s.R) }

// Bursty alternates Poisson arrivals between a base rate and a burst
// rate: every Period, the first BurstLen runs at Burst req/s and the
// remainder at Base req/s. It models flash-crowd traffic whose tail
// the mean rate hides.
type Bursty struct {
	Base, Burst      float64
	Period, BurstLen time.Duration

	t time.Duration // process-local clock
}

func (b *Bursty) Next(rng *rand.Rand) time.Duration {
	rate := b.Base
	if b.t%b.Period < b.BurstLen {
		rate = b.Burst
	}
	g := expGap(rng, rate)
	b.t += g
	return g
}

func (b *Bursty) Rate() float64 {
	frac := float64(b.BurstLen) / float64(b.Period)
	return b.Burst*frac + b.Base*(1-frac)
}

func (b *Bursty) String() string {
	return fmt.Sprintf("burst:base=%g,burst=%g,period=%s,len=%s", b.Base, b.Burst, b.Period, b.BurstLen)
}

// Ramp sweeps the Poisson rate linearly from From to To over Over,
// then holds at To — the offered-load sweep that exposes where the
// latency curve turns the corner within a single run.
type Ramp struct {
	From, To float64
	Over     time.Duration

	t time.Duration
}

func (r *Ramp) rateAt(t time.Duration) float64 {
	if t >= r.Over {
		return r.To
	}
	return r.From + (r.To-r.From)*float64(t)/float64(r.Over)
}

func (r *Ramp) Next(rng *rand.Rand) time.Duration {
	g := expGap(rng, r.rateAt(r.t))
	r.t += g
	return g
}

func (r *Ramp) Rate() float64 { return (r.From + r.To) / 2 }
func (r *Ramp) String() string {
	return fmt.Sprintf("ramp:from=%g,to=%g,over=%s", r.From, r.To, r.Over)
}

// ParseArrivals parses an arrival-process spec:
//
//	poisson:rate=50000
//	steady:rate=1000
//	burst:base=1000,burst=20000,period=5s,len=500ms
//	ramp:from=100,to=50000,over=30s
func ParseArrivals(spec string) (Arrivals, error) {
	kind, params, err := splitSpec(spec)
	if err != nil {
		return nil, err
	}
	switch kind {
	case "poisson", "steady":
		rate, err := needFloat(params, "rate")
		if err != nil {
			return nil, fmt.Errorf("arrivals %q: %w", spec, err)
		}
		if kind == "poisson" {
			return &Poisson{R: rate}, nil
		}
		return &Steady{R: rate}, nil
	case "burst":
		base, err1 := needFloat(params, "base")
		burst, err2 := needFloat(params, "burst")
		period, err3 := needDuration(params, "period")
		length, err4 := needDuration(params, "len")
		if err := firstErr(err1, err2, err3, err4); err != nil {
			return nil, fmt.Errorf("arrivals %q: %w", spec, err)
		}
		if length > period {
			return nil, fmt.Errorf("arrivals %q: len exceeds period", spec)
		}
		return &Bursty{Base: base, Burst: burst, Period: period, BurstLen: length}, nil
	case "ramp":
		from, err1 := needFloat(params, "from")
		to, err2 := needFloat(params, "to")
		over, err3 := needDuration(params, "over")
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, fmt.Errorf("arrivals %q: %w", spec, err)
		}
		return &Ramp{From: from, To: to, Over: over}, nil
	default:
		return nil, fmt.Errorf("arrivals %q: unknown process %q (want poisson, steady, burst, ramp)", spec, kind)
	}
}

// splitSpec parses "kind:k=v,k=v" into the kind and its parameter map.
func splitSpec(spec string) (string, map[string]string, error) {
	kind, rest, ok := strings.Cut(strings.TrimSpace(spec), ":")
	if !ok || kind == "" {
		return "", nil, fmt.Errorf("spec %q: want 'kind:k=v,...'", spec)
	}
	params := make(map[string]string)
	for _, kv := range strings.Split(rest, ",") {
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" || v == "" {
			return "", nil, fmt.Errorf("spec %q: bad parameter %q", spec, kv)
		}
		if _, dup := params[k]; dup {
			return "", nil, fmt.Errorf("spec %q: duplicate parameter %q", spec, k)
		}
		params[k] = v
	}
	return kind, params, nil
}

func needFloat(params map[string]string, key string) (float64, error) {
	s, ok := params[key]
	if !ok {
		return 0, fmt.Errorf("missing %s=", key)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return 0, fmt.Errorf("bad %s=%q (want a positive number)", key, s)
	}
	return v, nil
}

func needInt(params map[string]string, key string) (int, error) {
	s, ok := params[key]
	if !ok {
		return 0, fmt.Errorf("missing %s=", key)
	}
	v, err := strconv.Atoi(s)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad %s=%q (want a positive integer)", key, s)
	}
	return v, nil
}

func needDuration(params map[string]string, key string) (time.Duration, error) {
	s, ok := params[key]
	if !ok {
		return 0, fmt.Errorf("missing %s=", key)
	}
	v, err := time.ParseDuration(s)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad %s=%q (want a positive duration)", key, s)
	}
	return v, nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
