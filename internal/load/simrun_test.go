package load

import (
	"strings"
	"testing"
	"time"

	"quorumselect/internal/sim"
)

func simTopo(t testing.TB, spec string) *sim.BoundTopology {
	t.Helper()
	topo, err := sim.ParseTopology(spec)
	if err != nil {
		t.Fatalf("ParseTopology: %v", err)
	}
	b, err := topo.Bind(4)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	return b
}

const geo3Spec = `
name geo3
region us-east
region eu-west
region ap-south
local 500us jitter 200us
link us-east eu-west 40ms 42ms jitter 3ms
link us-east ap-south 90ms 92ms jitter 5ms
link eu-west ap-south 70ms 71ms jitter 4ms
`

// TestRunSimCompletes: a moderate open-loop run against a healthy LAN
// cluster completes (nearly) everything it offers, with sane latency.
func TestRunSimCompletes(t *testing.T) {
	s, err := RunSim(SimOptions{
		Arrivals: &Poisson{R: 400},
		Keys:     &UniformKeys{N: 100},
		Seed:     1,
		Duration: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Offered < 1500 {
		t.Fatalf("offered %d requests in 5s at 400/s", s.Offered)
	}
	if s.GoodputRatio < 0.99 {
		t.Fatalf("goodput ratio %.3f (completed %d / offered %d, unfinished %d)",
			s.GoodputRatio, s.Completed, s.Offered, s.Unfinished)
	}
	if s.LatencyMs.P50 <= 0 || s.LatencyMs.P99 > 500 {
		t.Fatalf("implausible latency: %+v", s.LatencyMs)
	}
	if s.LatencyMs.P999 < s.LatencyMs.P50 {
		t.Fatalf("p999 %.2f < p50 %.2f", s.LatencyMs.P999, s.LatencyMs.P50)
	}
	if s.Mode != "sim" || s.Arrivals != "poisson:rate=400" {
		t.Fatalf("summary labels: mode=%q arrivals=%q", s.Mode, s.Arrivals)
	}
	if len(s.Timeline) == 0 {
		t.Fatal("no timeline buckets")
	}
}

// TestRunSimDeterministic: same options, same seed → byte-identical
// accounting.
func TestRunSimDeterministic(t *testing.T) {
	run := func() *Summary {
		s, err := RunSim(SimOptions{
			Arrivals: &Poisson{R: 200},
			Keys:     &ZipfKeys{N: 1000, S: 1.2},
			Seed:     42,
			Duration: 3 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	if a.Offered != b.Offered || a.Completed != b.Completed || a.LatencyMs != b.LatencyMs {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

// TestRunSimTopologyOrdersLatency: the same workload is strictly
// slower on a WAN topology than on the default LAN model — the latency
// model actually reaches the commit path.
func TestRunSimTopologyOrdersLatency(t *testing.T) {
	lan, err := RunSim(SimOptions{
		Arrivals: &Poisson{R: 100},
		Keys:     &UniformKeys{N: 100},
		Seed:     7,
		Duration: 4 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	geo, err := RunSim(SimOptions{
		Arrivals: &Poisson{R: 100},
		Keys:     &UniformKeys{N: 100},
		Seed:     7,
		Duration: 4 * time.Second,
		Topology: simTopo(t, geo3Spec),
	})
	if err != nil {
		t.Fatal(err)
	}
	if geo.Topology != "geo3" {
		t.Fatalf("topology label %q", geo.Topology)
	}
	if geo.GoodputRatio < 0.95 {
		t.Fatalf("geo goodput ratio %.3f (completed %d / offered %d)",
			geo.GoodputRatio, geo.Completed, geo.Offered)
	}
	// A quorum round across 40–92ms links cannot beat one across
	// 2–12ms links.
	if geo.LatencyMs.P50 < 2*lan.LatencyMs.P50 {
		t.Fatalf("geo p50 %.2fms not clearly above lan p50 %.2fms",
			geo.LatencyMs.P50, lan.LatencyMs.P50)
	}
}

// TestRunSimCrashRecovery: crashing the leader mid-run shows up as a
// tail-latency spike in the fault report, and the cluster recovers —
// goodput stays high and the report measures a recovery time.
func TestRunSimCrashRecovery(t *testing.T) {
	faultAt := 6 * time.Second
	s, err := RunSim(SimOptions{
		Arrivals:  &Poisson{R: 300},
		Keys:      &UniformKeys{N: 100},
		Seed:      3,
		Duration:  16 * time.Second,
		Crashes:   []Crash{{Proc: 1, At: faultAt, RestartAt: faultAt + 4*time.Second, Hard: true}},
		FaultDesc: "crash-restart p1 (leader)",
		FaultAt:   faultAt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Fault == nil {
		t.Fatal("no fault report")
	}
	f := s.Fault
	if f.BaselineP99Ms <= 0 {
		t.Fatalf("no baseline measured: %+v", f)
	}
	if f.SpikeP99Ms < 2*f.BaselineP99Ms {
		t.Fatalf("crash did not spike the tail: baseline %.1fms spike %.1fms",
			f.BaselineP99Ms, f.SpikeP99Ms)
	}
	if !f.Recovered || f.RecoveryMs <= 0 {
		t.Fatalf("no recovery measured: %+v", f)
	}
	// The view change plus retries must eventually commit nearly
	// everything the window offered.
	if s.GoodputRatio < 0.9 {
		t.Fatalf("goodput ratio %.3f after recovery (completed %d / offered %d)",
			s.GoodputRatio, s.Completed, s.Offered)
	}
	if !strings.Contains(f.Desc, "crash") {
		t.Fatalf("desc %q", f.Desc)
	}
}

// TestRunSimBackpressure: a tiny in-flight bound with a tiny backlog
// sheds load instead of queueing unboundedly, and the shed count is
// visible in the summary.
func TestRunSimBackpressure(t *testing.T) {
	s, err := RunSim(SimOptions{
		Arrivals:    &Steady{R: 2000},
		Keys:        &FixedKey{Key: "hot"},
		Seed:        5,
		Duration:    2 * time.Second,
		MaxInFlight: 4,
		Backlog:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Shed == 0 {
		t.Fatalf("no shedding at 2000/s with 4 in flight: %+v", s)
	}
	if s.Sent+s.Shed != s.Offered {
		t.Fatalf("accounting leak: sent %d + shed %d != offered %d", s.Sent, s.Shed, s.Offered)
	}
}

// TestRunSimOptionValidation pins the required-field errors.
func TestRunSimOptionValidation(t *testing.T) {
	if _, err := RunSim(SimOptions{Keys: &FixedKey{Key: "k"}, Duration: time.Second}); err == nil {
		t.Error("accepted nil Arrivals")
	}
	if _, err := RunSim(SimOptions{Arrivals: &Poisson{R: 1}, Keys: &FixedKey{Key: "k"}}); err == nil {
		t.Error("accepted zero Duration")
	}
}
