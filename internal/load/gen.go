package load

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Target is anything the wall-clock generator can drive: the TCP
// cluster's HTTP frontend, an in-process host, a mock. Do must not
// return until the operation is durably executed (or has failed).
type Target interface {
	Do(ctx context.Context, key string, op []byte) error
}

// TargetFunc adapts a function to Target.
type TargetFunc func(ctx context.Context, key string, op []byte) error

// Do implements Target.
func (f TargetFunc) Do(ctx context.Context, key string, op []byte) error { return f(ctx, key, op) }

// Options configures a wall-clock Generator.
type Options struct {
	// Arrivals is the open-loop arrival process (required).
	Arrivals Arrivals
	// Keys is the key-skew generator (required).
	Keys Keys
	// Seed seeds the arrival and key streams.
	Seed int64
	// Duration is the arrival window (required > 0). In-flight requests
	// get Drain extra time to finish after the last arrival.
	Duration time.Duration
	// Drain bounds how long to wait for stragglers after the arrival
	// window closes (default 5s).
	Drain time.Duration
	// MaxInFlight bounds concurrently outstanding requests (default
	// 256). Arrivals beyond the bound queue — charged to latency via
	// their intended send time — up to Backlog, then shed.
	MaxInFlight int
	// Backlog bounds the queued-but-unsent requests (default
	// 64×MaxInFlight).
	Backlog int
	// Timeout bounds one request (default 10s).
	Timeout time.Duration
	// BucketWidth sets the timeline resolution (default 500ms).
	BucketWidth time.Duration
	// Fault, when non-nil, is copied into the summary and triggers the
	// recovery analysis. The generator does not inject the fault — the
	// caller does (chaos schedule, kill -9, …) — it only measures it.
	Fault *FaultReport
	// OnPhase, when set, observes generator lifecycle phases
	// ("arrivals", "drain", "done") as they begin.
	OnPhase func(phase string, at time.Duration)
}

func (o *Options) defaults() error {
	if o.Arrivals == nil || o.Keys == nil {
		return errors.New("load: Arrivals and Keys are required")
	}
	if o.Duration <= 0 {
		return errors.New("load: Duration must be positive")
	}
	if o.Drain <= 0 {
		o.Drain = 5 * time.Second
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 256
	}
	if o.Backlog <= 0 {
		o.Backlog = 64 * o.MaxInFlight
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	return nil
}

// Generator is the wall-clock open-loop engine: one scheduler
// goroutine emits arrivals on the process's schedule, MaxInFlight
// workers issue them against the Target. A Generator runs once.
type Generator struct {
	opts Options
	rec  *Recorder

	stopOnce sync.Once
	stopCh   chan struct{}

	ranMu sync.Mutex
	ran   bool
}

// NewGenerator validates opts and returns an unstarted generator.
func NewGenerator(opts Options) (*Generator, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	return &Generator{
		opts:   opts,
		rec:    NewRecorder(opts.BucketWidth),
		stopCh: make(chan struct{}),
	}, nil
}

// Stop aborts an in-progress Run: the arrival schedule halts and Run
// returns after in-flight requests drain. Safe to call from signal
// handlers, concurrently, and more than once.
func (g *Generator) Stop() {
	g.stopOnce.Do(func() { close(g.stopCh) })
}

// job is one scheduled request. intended is the offset from run start
// the arrival process scheduled it for — the latency origin.
type job struct {
	intended time.Duration
	key      string
	op       []byte
}

// Run drives target with the configured workload and returns the
// summary. It blocks until the arrival window closes (or Stop/ctx
// cancel) and in-flight requests drain. All spawned goroutines have
// exited by the time it returns.
func (g *Generator) Run(ctx context.Context, target Target) (*Summary, error) {
	g.ranMu.Lock()
	if g.ran {
		g.ranMu.Unlock()
		return nil, errors.New("load: Generator is single-use; Run called twice")
	}
	g.ran = true
	g.ranMu.Unlock()

	jobs := make(chan job, g.opts.Backlog)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < g.opts.MaxInFlight; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				g.rec.Sent(j.intended, time.Since(start))
				opCtx, opCancel := context.WithTimeout(runCtx, g.opts.Timeout)
				err := target.Do(opCtx, j.key, j.op)
				opCancel()
				latency := time.Since(start) - j.intended
				if err != nil {
					g.rec.Fail(j.intended)
				} else {
					g.rec.Complete(j.intended, latency)
				}
			}
		}()
	}

	if g.opts.OnPhase != nil {
		g.opts.OnPhase("arrivals", 0)
	}
	rng := rand.New(rand.NewSource(g.opts.Seed))
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	var seq uint64
	next := time.Duration(0)
	stopped := false
schedule:
	for {
		next += g.opts.Arrivals.Next(rng)
		if next >= g.opts.Duration {
			break
		}
		// Sleep until the intended instant; if the scheduler itself is
		// behind, send immediately (Sent records the lag).
		if wait := next - time.Since(start); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-g.stopCh:
				stopped = true
				break schedule
			case <-runCtx.Done():
				stopped = true
				break schedule
			}
		}
		g.rec.Offered()
		seq++
		key := g.opts.Keys.Next(rng)
		op := []byte(fmt.Sprintf("set %s v%d", key, seq))
		select {
		case jobs <- job{intended: next, key: key, op: op}:
		default:
			g.rec.Shed()
		}
	}
	close(jobs)
	elapsed := time.Since(start)
	if elapsed > g.opts.Duration && !stopped {
		elapsed = g.opts.Duration
	}

	if g.opts.OnPhase != nil {
		g.opts.OnPhase("drain", time.Since(start))
	}
	// Bound the drain: workers blocked in Do are released by runCtx.
	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(g.opts.Drain):
		cancel()
		<-drained
	case <-g.stopCh:
		cancel()
		<-drained
	}

	if g.opts.OnPhase != nil {
		g.opts.OnPhase("done", time.Since(start))
	}
	s := g.rec.Summarize(elapsed, g.opts.Fault)
	s.Mode = "wallclock"
	s.Arrivals = g.opts.Arrivals.String()
	s.Keys = g.opts.Keys.String()
	s.Seed = g.opts.Seed
	return s, nil
}
