package load

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/fd"
	"quorumselect/internal/ids"
	"quorumselect/internal/metrics"
	"quorumselect/internal/obs"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/storage"
	"quorumselect/internal/wire"
	"quorumselect/internal/xpaxos"
)

// Crash is one scheduled crash (and optional restart) in a sim-mode
// load run. It mirrors chaos.CrashPlan but lives here so the load
// package stays import-light: cmd/loadgen converts generated chaos
// schedules into this shape.
type Crash struct {
	Proc ids.ProcessID
	// At is when the process goes down; RestartAt (0 = never) is when
	// it comes back, recovering from its durable storage.
	At, RestartAt time.Duration
	// Hard models power loss: unsynced writes are lost.
	Hard bool
}

// SimOptions configures a virtual-time open-loop run against a
// simulated XPaxos cluster.
type SimOptions struct {
	// N is the cluster size (default 4).
	N int
	// BatchSize and Window tune the commit path (defaults 8, 16).
	BatchSize int
	Window    int
	// Arrivals and Keys define the workload (required).
	Arrivals Arrivals
	Keys     Keys
	// Seed drives the network, arrival, and key streams.
	Seed int64
	// Duration is the virtual-time arrival window (required > 0);
	// Drain bounds how much longer the run waits for stragglers
	// (default 10s).
	Duration time.Duration
	Drain    time.Duration
	// MaxInFlight bounds outstanding requests (default 256); arrivals
	// beyond it queue up to Backlog (default 64×MaxInFlight), then
	// shed.
	MaxInFlight int
	Backlog     int
	// RetryEvery re-submits an uncompleted request on this period
	// (default 1s): across a leader crash, the retry is what carries a
	// request into the new view — its full wait still counts, measured
	// from the intended send time.
	RetryEvery time.Duration
	// Topology, when set, supplies the latency model and any partition
	// windows. FD timeouts are scaled to its worst one-way delay.
	Topology *sim.BoundTopology
	// Filter is an extra fault filter (e.g. a chaos schedule), applied
	// after the topology's partition filter.
	Filter sim.Filter
	// Crashes are scheduled process crashes/restarts.
	Crashes []Crash
	// FaultDesc/FaultAt, when FaultDesc is non-empty, attach a
	// FaultReport with recovery analysis to the summary.
	FaultDesc string
	FaultAt   time.Duration
	// BucketWidth sets the timeline resolution (default 500ms).
	BucketWidth time.Duration
	// Metrics, when set, also collects the cluster's own registry.
	Metrics *metrics.Registry
	// Stop, when non-nil, aborts the run early once closed (checked
	// between simulator steps): the summary then covers the virtual
	// time actually simulated. cmd/loadgen wires SIGINT/SIGTERM here.
	Stop <-chan struct{}
}

func (o *SimOptions) defaults() error {
	if o.Arrivals == nil || o.Keys == nil {
		return errors.New("load: Arrivals and Keys are required")
	}
	if o.Duration <= 0 {
		return errors.New("load: Duration must be positive")
	}
	if o.N <= 0 {
		o.N = 4
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 8
	}
	if o.Window <= 0 {
		o.Window = 16
	}
	if o.Drain <= 0 {
		o.Drain = 10 * time.Second
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 256
	}
	if o.Backlog <= 0 {
		o.Backlog = 64 * o.MaxInFlight
	}
	if o.RetryEvery <= 0 {
		o.RetryEvery = time.Second
	}
	return nil
}

// simReq is one in-flight request in the virtual-time engine.
type simReq struct {
	id       uint64 // doubles as the wire client ID
	intended time.Duration
	op       []byte
}

// simEngine drives the open-loop schedule inside the simulator's
// event loop: one event chain for arrivals, per-request retry timers,
// completion via the replicas' OnExecute hooks.
type simEngine struct {
	opts   SimOptions
	fdOpts fd.Options
	net    *sim.Network
	rec    *Recorder
	rng    *rand.Rand // arrival/key stream, separate from the network's

	replicas map[ids.ProcessID]*xpaxos.Replica
	backends map[ids.ProcessID]*storage.MemBackend
	running  map[ids.ProcessID]bool

	pending  map[uint64]*simReq // sent, not yet executed
	queue    []*simReq          // offered, waiting for an in-flight slot
	inflight int
	nextID   uint64
	closed   bool // arrival window over
}

// RunSim executes one open-loop run in virtual time and returns its
// summary. Deterministic for a fixed SimOptions (including Seed).
func RunSim(opts SimOptions) (*Summary, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	cfg, err := ids.NewConfig(opts.N, maxFaulty(opts.N))
	if err != nil {
		return nil, fmt.Errorf("load: bad cluster size %d: %w", opts.N, err)
	}

	e := &simEngine{
		opts:     opts,
		fdOpts:   core.DefaultNodeOptions().FD,
		rec:      NewRecorder(opts.BucketWidth),
		rng:      rand.New(rand.NewSource(opts.Seed ^ 0x10ad)),
		replicas: make(map[ids.ProcessID]*xpaxos.Replica, opts.N),
		backends: make(map[ids.ProcessID]*storage.MemBackend, opts.N),
		running:  make(map[ids.ProcessID]bool, opts.N),
		pending:  make(map[uint64]*simReq),
	}

	latency := sim.UniformLatency(2*time.Millisecond, 12*time.Millisecond)
	var filter sim.Filter = opts.Filter
	topoName := ""
	if opts.Topology != nil {
		latency = opts.Topology.LatencyModel()
		topoName = opts.Topology.Name()
		// A WAN link slower than the LAN-tuned failure detector turns
		// every heartbeat round-trip into a false suspicion; scale the
		// timeouts to the worst one-way delay.
		if oneWay := opts.Topology.MaxOneWay(); 4*oneWay > e.fdOpts.BaseTimeout {
			e.fdOpts.BaseTimeout = 4 * oneWay
			if 10*e.fdOpts.BaseTimeout > e.fdOpts.MaxTimeout {
				e.fdOpts.MaxTimeout = 10 * e.fdOpts.BaseTimeout
			}
		}
		if lf := opts.Topology.LinkFilter(); lf != nil {
			filter = sim.ChainFilters(lf, filter)
		}
	}

	nodes := make(map[ids.ProcessID]runtime.Node, opts.N)
	for _, p := range cfg.All() {
		nodes[p] = e.newMember(p, nil)
	}
	e.net = sim.NewNetwork(cfg, nodes, sim.Options{
		Seed:    opts.Seed,
		Latency: latency,
		Filter:  filter,
		Metrics: opts.Metrics,
	})

	for _, c := range opts.Crashes {
		c := c
		e.net.At(c.At, func() { e.crash(c) })
		if c.RestartAt > c.At {
			e.net.At(c.RestartAt, func() { e.restart(c.Proc) })
		}
	}

	// Kick off the arrival chain and close the window at Duration.
	e.phase("steady")
	e.scheduleArrival(e.opts.Arrivals.Next(e.rng))
	e.net.At(opts.Duration, func() {
		e.closed = true
		e.phase("drain")
	})

	deadline := opts.Duration + opts.Drain
	stopped := false
	e.net.RunUntil(func() bool {
		if opts.Stop != nil && !stopped {
			select {
			case <-opts.Stop:
				stopped = true
			default:
			}
		}
		return stopped || (e.closed && len(e.pending) == 0 && len(e.queue) == 0)
	}, deadline)
	elapsed := opts.Duration
	if stopped && e.net.Now() < elapsed {
		elapsed = e.net.Now()
	}
	e.net.Close()

	var fault *FaultReport
	if opts.FaultDesc != "" {
		fault = &FaultReport{Desc: opts.FaultDesc, AtS: opts.FaultAt.Seconds()}
	}
	s := e.rec.Summarize(elapsed, fault)
	s.Mode = "sim"
	s.Topology = topoName
	s.Arrivals = opts.Arrivals.String()
	s.Keys = opts.Keys.String()
	s.Seed = opts.Seed
	return s, nil
}

// maxFaulty returns the largest f the system model accepts for n,
// preferring the Byzantine bound n > 3f when n allows it.
func maxFaulty(n int) int {
	f := (n - 1) / 3
	if f < 1 && n >= 3 {
		f = 1
	}
	return f
}

// newMember composes one durable XPaxos process. A nil backend
// allocates a fresh one; a non-nil backend is inherited from a crashed
// predecessor (restart-with-recovery).
func (e *simEngine) newMember(p ids.ProcessID, backend *storage.MemBackend) runtime.Node {
	if backend == nil {
		backend = storage.NewMemBackend()
	}
	nodeOpts := core.DefaultNodeOptions()
	nodeOpts.FD = e.fdOpts
	nodeOpts.Storage = backend
	node, rep := xpaxos.NewQSNode(xpaxos.Options{
		CheckpointInterval: 0, // many one-shot clients; keep the log simple
		BatchSize:          e.opts.BatchSize,
		Window:             e.opts.Window,
		OnExecute:          e.complete,
	}, nodeOpts)
	e.replicas[p] = rep
	e.backends[p] = backend
	e.running[p] = true
	return node
}

func (e *simEngine) scheduleArrival(at time.Duration) {
	if at >= e.opts.Duration {
		return
	}
	e.net.At(at, func() {
		e.arrive(at)
		e.scheduleArrival(at + e.opts.Arrivals.Next(e.rng))
	})
}

func (e *simEngine) arrive(intended time.Duration) {
	e.rec.Offered()
	e.nextID++
	key := e.opts.Keys.Next(e.rng)
	req := &simReq{
		id:       e.nextID,
		intended: intended,
		op:       []byte(fmt.Sprintf("set %s v%d", key, e.nextID)),
	}
	switch {
	case e.inflight < e.opts.MaxInFlight:
		e.send(req)
	case len(e.queue) < e.opts.Backlog:
		e.queue = append(e.queue, req)
	default:
		e.rec.Shed()
	}
}

// send issues req to the lowest-id running replica (which forwards to
// the leader if it is not the leader itself) and arms its retry timer.
func (e *simEngine) send(req *simReq) {
	e.inflight++
	e.pending[req.id] = req
	e.rec.Sent(req.intended, e.net.Now())
	e.submit(req)
	e.armRetry(req)
}

func (e *simEngine) submit(req *simReq) {
	// Like a real client with a leader hint: submit straight to the
	// current leader when one is running (no forwarding hop), else to
	// the lowest-id running replica, which forwards.
	var entry ids.ProcessID
	for _, p := range e.net.Config().All() {
		if !e.running[p] {
			continue
		}
		if entry == 0 {
			entry = p
		}
		if e.replicas[p].IsLeader() {
			entry = p
			break
		}
	}
	if entry == 0 {
		return // whole cluster down; the retry timer will try again
	}
	// Each request is its own wire-level client, so concurrent and
	// retried requests can never trip the replica's per-client
	// duplicate table against each other.
	e.replicas[entry].Submit(&wire.Request{Client: req.id, Seq: 1, Op: req.op})
}

func (e *simEngine) armRetry(req *simReq) {
	at := e.net.Now() + e.opts.RetryEvery
	if at >= e.opts.Duration+e.opts.Drain {
		return
	}
	e.net.At(at, func() {
		if _, still := e.pending[req.id]; !still {
			return
		}
		e.submit(req)
		e.armRetry(req)
	})
}

// complete is the OnExecute fan-in shared by every replica: the first
// one to execute a request completes it; later executions of the same
// request no-op.
func (e *simEngine) complete(exec xpaxos.Execution) {
	req, ok := e.pending[exec.Client]
	if !ok {
		return
	}
	delete(e.pending, exec.Client)
	e.inflight--
	e.rec.Complete(req.intended, e.net.Now()-req.intended)
	if len(e.queue) > 0 && e.inflight < e.opts.MaxInFlight {
		next := e.queue[0]
		e.queue = e.queue[1:]
		e.send(next)
	}
}

// crash takes the process down; hard crashes first lose unsynced
// writes, exactly like chaos's crash faults.
func (e *simEngine) crash(c Crash) {
	e.phase("fault")
	if c.Hard {
		if b := e.backends[c.Proc]; b != nil {
			b.Crash()
		}
	}
	e.running[c.Proc] = false
	e.net.StopProcess(c.Proc)
}

// restart resurrects the process as a fresh member over its old
// storage backend.
func (e *simEngine) restart(p ids.ProcessID) {
	e.phase("recover")
	node := e.newMember(p, e.backends[p])
	e.net.ReplaceProcess(p, node)
}

// phase publishes a LOAD_PHASE protocol event on the run's bus, so a
// flight recording of the run can line protocol events (suspicions,
// view changes) up against what the workload was doing at the time.
func (e *simEngine) phase(name string) {
	e.net.Events().Publish(obs.Event{At: e.net.Now(), Type: obs.TypeLoadPhase, Detail: name})
}
