package load

import (
	"math/rand"
	"testing"
	"time"
)

// meanGap draws n gaps and returns the empirical mean.
func meanGap(a Arrivals, n int, seed int64) time.Duration {
	rng := rand.New(rand.NewSource(seed))
	var total time.Duration
	for i := 0; i < n; i++ {
		total += a.Next(rng)
	}
	return total / time.Duration(n)
}

// TestArrivalRates: each process's empirical mean gap matches its
// nominal rate within sampling noise.
func TestArrivalRates(t *testing.T) {
	cases := []struct {
		spec string
		rate float64
	}{
		{"poisson:rate=1000", 1000},
		{"steady:rate=250", 250},
		{"burst:base=100,burst=1000,period=1s,len=500ms", 550},
	}
	for _, c := range cases {
		a, err := ParseArrivals(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if a.Rate() != c.rate {
			t.Errorf("%s: Rate() = %g, want %g", c.spec, a.Rate(), c.rate)
		}
		if a.String() != c.spec {
			t.Errorf("round-trip: %q -> %q", c.spec, a.String())
		}
		// Sample enough that Poisson noise is < 10%; ramp/burst means
		// only hold over their full cycle, so sample generously.
		got := meanGap(a, 50000, 9)
		want := time.Duration(float64(time.Second) / c.rate)
		lo, hi := want*85/100, want*115/100
		if got < lo || got > hi {
			t.Errorf("%s: mean gap %s outside [%s, %s]", c.spec, got, lo, hi)
		}
	}
}

// TestSteadyIsDeterministic: the steady process ignores the rng.
func TestSteadyIsDeterministic(t *testing.T) {
	s := &Steady{R: 100}
	if g := s.Next(nil); g != 10*time.Millisecond {
		t.Fatalf("gap %s", g)
	}
}

// TestBurstyPhases: inside the burst window the gaps are much tighter
// than in the base window.
func TestBurstyPhases(t *testing.T) {
	b := &Bursty{Base: 10, Burst: 10000, Period: time.Second, BurstLen: 500 * time.Millisecond}
	rng := rand.New(rand.NewSource(4))
	var burstGaps, baseGaps []time.Duration
	clock := time.Duration(0)
	for i := 0; i < 20000 && len(baseGaps) < 50; i++ {
		inBurst := clock%b.Period < b.BurstLen
		g := b.Next(rng)
		if inBurst {
			burstGaps = append(burstGaps, g)
		} else {
			baseGaps = append(baseGaps, g)
		}
		clock += g
	}
	if len(burstGaps) == 0 || len(baseGaps) == 0 {
		t.Fatalf("phases not both sampled: %d burst, %d base", len(burstGaps), len(baseGaps))
	}
	var burstMean, baseMean time.Duration
	for _, g := range burstGaps {
		burstMean += g
	}
	burstMean /= time.Duration(len(burstGaps))
	for _, g := range baseGaps {
		baseMean += g
	}
	baseMean /= time.Duration(len(baseGaps))
	if baseMean < 50*burstMean {
		t.Errorf("burst mean %s vs base mean %s: phases not distinct", burstMean, baseMean)
	}
}

// TestRampLabels pins the ramp's nominal rate and spec round-trip;
// the sweep itself is covered by TestRampSweeps (the long-run mean is
// dominated by the held To rate, so a bulk mean-gap check would not
// measure the ramp).
func TestRampLabels(t *testing.T) {
	a, err := ParseArrivals("ramp:from=100,to=300,over=10s")
	if err != nil {
		t.Fatal(err)
	}
	if a.Rate() != 200 {
		t.Errorf("Rate() = %g, want the 200 mid-ramp rate", a.Rate())
	}
	if a.String() != "ramp:from=100,to=300,over=10s" {
		t.Errorf("round-trip: %q", a.String())
	}
}

// TestRampSweeps: early gaps are longer than late gaps.
func TestRampSweeps(t *testing.T) {
	r := &Ramp{From: 10, To: 1000, Over: 10 * time.Second}
	rng := rand.New(rand.NewSource(5))
	early := meanOf(r, rng, 20)
	for r.t < r.Over { // fast-forward to the held phase
		r.Next(rng)
	}
	late := meanOf(r, rng, 200)
	if early < 10*late {
		t.Errorf("ramp not sweeping: early mean %s, late mean %s", early, late)
	}
}

func meanOf(a Arrivals, rng *rand.Rand, n int) time.Duration {
	var total time.Duration
	for i := 0; i < n; i++ {
		total += a.Next(rng)
	}
	return total / time.Duration(n)
}

// TestZipfSkew: the hottest key dominates a high-s draw, and the key
// space round-trips through the parser.
func TestZipfSkew(t *testing.T) {
	k, err := ParseKeys("zipf:n=1000,s=1.5")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	counts := map[string]int{}
	for i := 0; i < 20000; i++ {
		counts[k.Next(rng)]++
	}
	if counts["key-0"] < 20000/4 {
		t.Errorf("zipf s=1.5: hottest key only %d/20000 draws", counts["key-0"])
	}
	u, err := ParseKeys("uniform:n=10")
	if err != nil {
		t.Fatal(err)
	}
	uc := map[string]int{}
	for i := 0; i < 20000; i++ {
		uc[u.Next(rng)]++
	}
	for key, n := range uc {
		if n < 1500 || n > 2500 {
			t.Errorf("uniform n=10: %s drawn %d/20000", key, n)
		}
	}
}

// TestParseErrors pins the spec grammar's rejections.
func TestParseErrors(t *testing.T) {
	badArrivals := []string{
		"",
		"poisson",                               // no colon
		"warp:rate=1",                           // unknown kind
		"poisson:rate=0",                        // non-positive
		"poisson:rate=-5",                       //
		"poisson:rate=x",                        //
		"poisson:",                              // missing rate
		"poisson:rate=1,rate=2",                 // duplicate key
		"burst:base=1,burst=2",                  // missing period/len
		"burst:base=1,burst=2,period=1s,len=2s", // len > period
		"ramp:from=1,to=2",                      // missing over
	}
	for _, spec := range badArrivals {
		if _, err := ParseArrivals(spec); err == nil {
			t.Errorf("ParseArrivals accepted %q", spec)
		}
	}
	badKeys := []string{
		"zipf:n=1000,s=1", // s must exceed 1
		"zipf:n=1,s=2",    // n must be >= 2
		"uniform:n=0",
		"fixed:",
		"nope:n=1",
	}
	for _, spec := range badKeys {
		if _, err := ParseKeys(spec); err == nil {
			t.Errorf("ParseKeys accepted %q", spec)
		}
	}
}
