package load

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestHistAccuracy: percentiles land within the 1/2^subBits relative
// bucket error of the exact nearest-rank answer, across magnitudes.
func TestHistAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewHist()
	samples := make([]time.Duration, 0, 200000)
	for i := 0; i < 200000; i++ {
		// Log-uniform over 1µs..10s: exercises many octaves.
		exp := rng.Float64()*7 + 3 // 10^3 .. 10^10 ns
		v := time.Duration(pow10(exp))
		h.Add(v)
		samples = append(samples, v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{50, 90, 99, 99.9, 99.99} {
		rank := int(float64(len(samples))*p/100+0.9999) - 1
		if rank < 0 {
			rank = 0
		}
		exact := samples[rank]
		got := h.Percentile(p)
		rel := float64(got-exact) / float64(exact)
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.02 {
			t.Errorf("p%g = %s, exact %s (rel err %.3f)", p, got, exact, rel)
		}
	}
	if h.Max() != samples[len(samples)-1] || h.Min() != samples[0] {
		t.Errorf("min/max not exact: %s/%s vs %s/%s", h.Min(), h.Max(), samples[0], samples[len(samples)-1])
	}
	if h.Count() != 200000 {
		t.Errorf("count %d", h.Count())
	}
}

func pow10(e float64) float64 {
	v := 1.0
	for e >= 1 {
		v *= 10
		e--
	}
	if e > 0 {
		// linear interpolation is fine for test data generation
		v *= 1 + 9*e
	}
	return v
}

// TestHistBucketRoundTrip: every bucket index maps back into a value
// that maps to the same bucket (the midpoint really is inside).
func TestHistBucketRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 129, 1000, 1 << 20, 1<<40 + 12345, 1 << 62} {
		i := bucketOf(v)
		mid := bucketValue(i)
		if bucketOf(mid) != i {
			t.Errorf("value %d: bucket %d midpoint %d maps to bucket %d", v, i, mid, bucketOf(mid))
		}
	}
	// Bucket indexes are monotone in the value.
	prev := -1
	for v := uint64(0); v < 1<<20; v += 97 {
		i := bucketOf(v)
		if i < prev {
			t.Fatalf("bucketOf not monotone at %d", v)
		}
		prev = i
	}
}

// TestHistEdges pins the empty/singleton/extreme-p behavior.
func TestHistEdges(t *testing.T) {
	h := NewHist()
	if h.Percentile(99) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Error("empty histogram not all-zero")
	}
	h.Add(5 * time.Millisecond)
	for _, p := range []float64{0, 50, 99.99, 100} {
		if got := h.Percentile(p); got != 5*time.Millisecond {
			t.Errorf("single sample p%g = %s", p, got)
		}
	}
	h.Add(-time.Second) // clamps to 0
	if h.Min() != 0 {
		t.Errorf("negative sample min %s", h.Min())
	}
}

// TestHistMerge: merging equals recording everything in one histogram.
func TestHistMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b, all := NewHist(), NewHist(), NewHist()
	for i := 0; i < 5000; i++ {
		v := time.Duration(rng.Int63n(int64(time.Second)))
		all.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	a.Merge(nil)
	a.Merge(NewHist())
	if a.Count() != all.Count() || a.Max() != all.Max() || a.Min() != all.Min() {
		t.Fatal("merge lost samples or extremes")
	}
	for _, p := range []float64{50, 99, 99.9} {
		if a.Percentile(p) != all.Percentile(p) {
			t.Errorf("p%g: merged %s vs direct %s", p, a.Percentile(p), all.Percentile(p))
		}
	}
}
