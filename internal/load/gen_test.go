package load

import (
	"context"
	"errors"
	gort "runtime"
	"sync/atomic"
	"testing"
	"time"
)

func sleepTarget(d time.Duration) Target {
	return TargetFunc(func(ctx context.Context, key string, op []byte) error {
		select {
		case <-time.After(d):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
}

// TestGeneratorRun: a wall-clock run against a fast mock target
// completes what it offers and measures plausible latency.
func TestGeneratorRun(t *testing.T) {
	g, err := NewGenerator(Options{
		Arrivals: &Poisson{R: 2000},
		Keys:     &UniformKeys{N: 50},
		Seed:     1,
		Duration: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.Run(context.Background(), sleepTarget(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if s.Offered < 500 {
		t.Fatalf("offered %d at 2000/s over 500ms", s.Offered)
	}
	if s.GoodputRatio < 0.99 {
		t.Fatalf("goodput %.3f (completed %d, failed %d, unfinished %d)",
			s.GoodputRatio, s.Completed, s.Failed, s.Unfinished)
	}
	if s.LatencyMs.P50 < 0.5 || s.LatencyMs.P50 > 50 {
		t.Fatalf("p50 %.2fms against a 1ms target", s.LatencyMs.P50)
	}
	if s.Mode != "wallclock" {
		t.Fatalf("mode %q", s.Mode)
	}
}

// TestGeneratorChargesQueueing: with one worker and a slow target, the
// open-loop schedule keeps arriving and latency (from intended send
// time) must reflect the queue wait — the coordinated-omission check.
func TestGeneratorChargesQueueing(t *testing.T) {
	g, err := NewGenerator(Options{
		Arrivals:    &Steady{R: 100}, // 10ms spacing
		Keys:        &FixedKey{Key: "k"},
		Seed:        1,
		Duration:    300 * time.Millisecond,
		MaxInFlight: 1,
		Drain:       5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.Run(context.Background(), sleepTarget(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// Service takes 3× the arrival spacing, so by the last arrivals the
	// queue is ~20 deep: max latency must be far above the 30ms service
	// time. A closed-loop (coordinated-omission) measurement would
	// report ~30ms flat.
	if s.LatencyMs.Max < 200 {
		t.Fatalf("max latency %.1fms does not reflect queueing", s.LatencyMs.Max)
	}
	if s.LatencyMs.P50 <= 30 {
		t.Fatalf("median %.1fms should exceed the 30ms service time under overload", s.LatencyMs.P50)
	}
}

// TestGeneratorFailures: target errors are counted, not dropped.
func TestGeneratorFailures(t *testing.T) {
	var n int64
	flaky := TargetFunc(func(ctx context.Context, key string, op []byte) error {
		if atomic.AddInt64(&n, 1)%2 == 0 {
			return errors.New("boom")
		}
		return nil
	})
	g, err := NewGenerator(Options{
		Arrivals: &Steady{R: 500},
		Keys:     &FixedKey{Key: "k"},
		Duration: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.Run(context.Background(), flaky)
	if err != nil {
		t.Fatal(err)
	}
	if s.Failed == 0 || s.Completed == 0 {
		t.Fatalf("failed %d completed %d", s.Failed, s.Completed)
	}
	if s.Completed+s.Failed != s.Sent {
		t.Fatalf("accounting leak: %d + %d != %d", s.Completed, s.Failed, s.Sent)
	}
}

// TestGeneratorNoLeakAndDoubleStop mirrors the transport lifecycle
// tests: every goroutine the generator spawns exits by the time Run
// returns, Stop is idempotent (and callable concurrently, and after
// Run finished), and a second Run refuses.
func TestGeneratorNoLeakAndDoubleStop(t *testing.T) {
	baseline := gort.NumGoroutine()
	for i := 0; i < 3; i++ {
		g, err := NewGenerator(Options{
			Arrivals:    &Poisson{R: 1000},
			Keys:        &UniformKeys{N: 10},
			Seed:        int64(i),
			Duration:    10 * time.Second, // Stop cuts it short
			MaxInFlight: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			time.Sleep(50 * time.Millisecond)
			g.Stop()
			g.Stop() // double-Stop must not panic
		}()
		if _, err := g.Run(context.Background(), sleepTarget(time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		g.Stop() // Stop after Run returned must not panic
		if _, err := g.Run(context.Background(), sleepTarget(time.Millisecond)); err == nil {
			t.Fatal("second Run accepted")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if gort.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, gort.NumGoroutine())
}

// TestGeneratorContextCancel: canceling the run context aborts the
// schedule without deadlocking the drain.
func TestGeneratorContextCancel(t *testing.T) {
	g, err := NewGenerator(Options{
		Arrivals: &Poisson{R: 500},
		Keys:     &FixedKey{Key: "k"},
		Duration: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := g.Run(ctx, sleepTarget(time.Millisecond)); err != nil {
			t.Errorf("Run: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after context cancel")
	}
}

// TestGeneratorOptionValidation pins the constructor's rejections.
func TestGeneratorOptionValidation(t *testing.T) {
	if _, err := NewGenerator(Options{Keys: &FixedKey{Key: "k"}, Duration: time.Second}); err == nil {
		t.Error("accepted nil Arrivals")
	}
	if _, err := NewGenerator(Options{Arrivals: &Poisson{R: 1}, Keys: &FixedKey{Key: "k"}}); err == nil {
		t.Error("accepted zero Duration")
	}
}
