package load

import (
	"math"
	"math/bits"
	"time"
)

// Hist is an HDR-style log-bucketed latency histogram: fixed memory,
// every sample counted (no reservoir), with ≤ ~1.6% relative bucket
// error at any magnitude. The general-purpose metrics.Histogram keeps
// a 1024-sample reservoir, which makes its p999 a draw over ~1 sample
// above the rank — fine for protocol-phase timings, useless for the
// tails of a million-request run. This one exists so loadgen's
// p99/p999/p9999 are computed over exact counts.
//
// Values are nanoseconds. 0..127 ns are exact; beyond that each
// power-of-two octave splits into 64 sub-buckets, so the reported
// percentile is the true bucket's midpoint, within 1/128 of the value.
type Hist struct {
	counts []uint64 // indexed by bucketOf
	count  uint64
	sum    float64
	maxNs  uint64
	minNs  uint64
}

// subBits is the per-octave resolution: 2^subBits sub-buckets.
const subBits = 6

// histBuckets covers the full uint64 range: 64 possible octaves of 64
// sub-buckets plus the exact low range. ~34 KB per histogram.
const histBuckets = (64 - subBits) << subBits

func bucketOf(v uint64) int {
	if v < 1<<(subBits+1) {
		return int(v) // exact buckets 0..127
	}
	exp := bits.Len64(v) - (subBits + 1) // ≥ 1
	sub := v >> exp                      // in [2^subBits, 2^(subBits+1))
	return (exp << subBits) + int(sub)
}

// bucketValue returns the midpoint of bucket i, inverting bucketOf.
func bucketValue(i int) uint64 {
	if i < 1<<(subBits+1) {
		return uint64(i)
	}
	exp := (i >> subBits) - 1
	sub := uint64(i&(1<<subBits-1)) | 1<<subBits
	return sub<<exp + 1<<(exp-1)
}

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{counts: make([]uint64, histBuckets)} }

// Add records one latency sample (negative durations clamp to 0).
func (h *Hist) Add(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	if h.count == 0 || v < h.minNs {
		h.minNs = v
	}
	if v > h.maxNs {
		h.maxNs = v
	}
	h.count++
	h.sum += float64(v)
	h.counts[bucketOf(v)]++
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.count }

// Mean returns the mean latency.
func (h *Hist) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.count))
}

// Max returns the exact largest recorded sample.
func (h *Hist) Max() time.Duration { return time.Duration(h.maxNs) }

// Min returns the exact smallest recorded sample.
func (h *Hist) Min() time.Duration { return time.Duration(h.minNs) }

// Percentile returns the nearest-rank p-th percentile (0 ≤ p ≤ 100)
// over every recorded sample, to bucket precision; min and max are
// exact. 0 with no samples.
func (h *Hist) Percentile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.Min()
	}
	if p >= 100 {
		return h.Max()
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			v := bucketValue(i)
			// Clamp to the exact extremes: the top bucket's midpoint can
			// overshoot the true max (and symmetrically for min).
			if v > h.maxNs {
				v = h.maxNs
			}
			if v < h.minNs {
				v = h.minNs
			}
			return time.Duration(v)
		}
	}
	return h.Max()
}

// Merge folds other into h.
func (h *Hist) Merge(other *Hist) {
	if other == nil || other.count == 0 {
		return
	}
	if h.count == 0 || other.minNs < h.minNs {
		h.minNs = other.minNs
	}
	if other.maxNs > h.maxNs {
		h.maxNs = other.maxNs
	}
	h.count += other.count
	h.sum += other.sum
	for i, c := range other.counts {
		h.counts[i] += c
	}
}
