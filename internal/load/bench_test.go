package load

import (
	"context"
	"fmt"
	"testing"
	"time"

	"quorumselect/internal/sim"
)

// loadTopo loads a shipped topology spec, bound to n processes. The
// benchmarks deliberately go through the example files so the shipped
// grammar stays load-bearing.
func loadTopo(tb testing.TB, name string, n int) *sim.BoundTopology {
	tb.Helper()
	topo, err := sim.LoadTopology("../../examples/topologies/" + name + ".topo")
	if err != nil {
		tb.Fatalf("load topology %s: %v", name, err)
	}
	b, err := topo.Bind(n)
	if err != nil {
		tb.Fatalf("bind %s to %d: %v", name, n, err)
	}
	return b
}

// reportSummary emits the summary's headline numbers as custom bench
// metrics; cmd/benchjson lifts them into loadgen.openloop.* derived
// entries.
func reportSummary(b *testing.B, s *Summary) {
	b.ReportMetric(s.LatencyMs.P50, "p50_ms")
	b.ReportMetric(s.LatencyMs.P99, "p99_ms")
	b.ReportMetric(s.LatencyMs.P999, "p999_ms")
	b.ReportMetric(s.GoodputRatio, "goodput")
	b.ReportMetric(s.GoodputRPS, "goodput_rps")
}

// BenchmarkOpenLoopSim sweeps offered load across WAN topologies: the
// p99-vs-offered-load surface at two rates per topology. lan runs the
// simulator's default latency band; geo3/geo5 run the shipped WAN
// specs (geo5 with one process per region).
func BenchmarkOpenLoopSim(b *testing.B) {
	cases := []struct {
		topo string // "" = default LAN model
		n    int
		rate float64
	}{
		{"lan", 4, 300},
		{"lan", 4, 1200},
		{"geo3", 4, 100},
		{"geo3", 4, 400},
		{"geo5", 5, 100},
		{"geo5", 5, 400},
	}
	for _, c := range cases {
		c := c
		b.Run(fmt.Sprintf("topo=%s/rate=%d", c.topo, int(c.rate)), func(b *testing.B) {
			var s *Summary
			for i := 0; i < b.N; i++ {
				var err error
				s, err = RunSim(SimOptions{
					N:           c.n,
					Arrivals:    &Poisson{R: c.rate},
					Keys:        &ZipfKeys{N: 10000, S: 1.1},
					Seed:        11,
					Duration:    3 * time.Second,
					Drain:       15 * time.Second,
					MaxInFlight: 1024,
					Topology:    loadTopo(b, c.topo, c.n),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportSummary(b, s)
		})
	}
}

// BenchmarkOpenLoopRecovery measures the latency cost of a hard
// leader crash with restart under sustained open-loop load: the spike
// p99 and the measured recovery-to-baseline time come out as bench
// metrics.
func BenchmarkOpenLoopRecovery(b *testing.B) {
	faultAt := 4 * time.Second
	var s *Summary
	for i := 0; i < b.N; i++ {
		var err error
		s, err = RunSim(SimOptions{
			Arrivals:  &Poisson{R: 300},
			Keys:      &UniformKeys{N: 1000},
			Seed:      13,
			Duration:  12 * time.Second,
			Crashes:   []Crash{{Proc: 1, At: faultAt, RestartAt: faultAt + 3*time.Second, Hard: true}},
			FaultDesc: "hard crash-restart p1",
			FaultAt:   faultAt,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSummary(b, s)
	if s.Fault != nil {
		b.ReportMetric(s.Fault.SpikeP99Ms, "spike_p99_ms")
		b.ReportMetric(s.Fault.RecoveryMs, "recovery_ms")
		b.ReportMetric(s.Fault.BaselineP99Ms, "baseline_p99_ms")
	}
}

// BenchmarkOpenLoopGen measures the wall-clock generator engine itself
// against an instant target: how many requests per second the
// scheduler and worker pool can push while keeping full accounting.
func BenchmarkOpenLoopGen(b *testing.B) {
	instant := TargetFunc(func(context.Context, string, []byte) error { return nil })
	var s *Summary
	for i := 0; i < b.N; i++ {
		g, err := NewGenerator(Options{
			Arrivals:    &Poisson{R: 100000},
			Keys:        &ZipfKeys{N: 10000, S: 1.1},
			Seed:        17,
			Duration:    300 * time.Millisecond,
			MaxInFlight: 512,
		})
		if err != nil {
			b.Fatal(err)
		}
		if s, err = g.Run(context.Background(), instant); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s.GoodputRPS, "goodput_rps")
	b.ReportMetric(s.GoodputRatio, "goodput")
	b.ReportMetric(float64(s.LateSends)/float64(s.Sent+1), "late_ratio")
}
