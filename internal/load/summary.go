package load

import (
	"sort"
	"sync"
	"time"
)

// Summary is the machine-readable result of one load run — what
// cmd/loadgen prints as JSON and what benchmarks derive BENCH metrics
// from. All latencies are measured from each request's *intended* send
// time, so generator stalls and queueing show up as latency, never as
// silently thinner samples.
type Summary struct {
	Mode     string `json:"mode"`
	Topology string `json:"topology,omitempty"`
	Arrivals string `json:"arrivals"`
	Keys     string `json:"keys,omitempty"`
	Seed     int64  `json:"seed"`

	// DurationS is the measured run length in seconds (arrival window,
	// not including drain).
	DurationS float64 `json:"duration_s"`

	// Offered counts requests the arrival process scheduled; Sent the
	// ones actually issued; Shed the ones dropped at the backlog bound.
	// Completed+Failed+Unfinished = Sent.
	Offered    uint64 `json:"offered"`
	Sent       uint64 `json:"sent"`
	Shed       uint64 `json:"shed"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	Unfinished uint64 `json:"unfinished"`
	// LateSends counts requests whose actual send lagged the intended
	// instant by more than the tolerance — the open-loop generator
	// admitting it could not keep the schedule (the latency numbers
	// still charge that lag to the request).
	LateSends uint64 `json:"late_sends"`

	OfferedRPS   float64 `json:"offered_rps"`
	GoodputRPS   float64 `json:"goodput_rps"`
	GoodputRatio float64 `json:"goodput_ratio"`

	LatencyMs Latencies    `json:"latency_ms"`
	Timeline  []BucketStat `json:"timeline,omitempty"`
	Fault     *FaultReport `json:"fault,omitempty"`
}

// Latencies summarizes the full-run latency distribution in
// milliseconds.
type Latencies struct {
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	P9999 float64 `json:"p9999"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
}

// BucketStat is one timeline bucket, keyed by intended send time, for
// spotting when the tail moved (fault injection, recovery, ramp knees).
type BucketStat struct {
	StartS    float64 `json:"start_s"`
	Sent      uint64  `json:"sent"`
	Completed uint64  `json:"completed"`
	Failed    uint64  `json:"failed"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// FaultReport quantifies an injected fault's latency cost: the
// pre-fault baseline, the worst post-fault bucket, and how long the
// tail took to return to (1.5×) baseline.
type FaultReport struct {
	Desc          string  `json:"desc"`
	AtS           float64 `json:"at_s"`
	BaselineP99Ms float64 `json:"baseline_p99_ms"`
	SpikeP99Ms    float64 `json:"spike_p99_ms"`
	RecoveryMs    float64 `json:"recovery_ms"`
	Recovered     bool    `json:"recovered"`
}

// lateTolerance is how far the actual send may lag the intended
// instant before the request counts as a late send.
const lateTolerance = time.Millisecond

// DefaultBucketWidth is the timeline resolution when the caller does
// not choose one.
const DefaultBucketWidth = 500 * time.Millisecond

// Recorder accumulates per-request accounting for one run. All
// timestamps are offsets from the run start (wall or virtual). Safe
// for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	bucketW time.Duration
	hist    *Hist
	buckets []*bucket

	offered, sent, shed, completed, failed, late uint64
}

type bucket struct {
	sent, completed, failed uint64
	hist                    *Hist
}

// NewRecorder returns a Recorder with the given timeline bucket width
// (≤ 0 selects DefaultBucketWidth).
func NewRecorder(bucketWidth time.Duration) *Recorder {
	if bucketWidth <= 0 {
		bucketWidth = DefaultBucketWidth
	}
	return &Recorder{bucketW: bucketWidth, hist: NewHist()}
}

// bucketFor returns the timeline bucket covering the intended offset,
// growing the timeline as needed.
func (r *Recorder) bucketFor(intended time.Duration) *bucket {
	i := int(intended / r.bucketW)
	if i < 0 {
		i = 0
	}
	for len(r.buckets) <= i {
		r.buckets = append(r.buckets, &bucket{hist: NewHist()})
	}
	return r.buckets[i]
}

// Offered records one scheduled arrival.
func (r *Recorder) Offered() {
	r.mu.Lock()
	r.offered++
	r.mu.Unlock()
}

// Shed records an arrival dropped at the backlog bound (offered but
// never sent).
func (r *Recorder) Shed() {
	r.mu.Lock()
	r.shed++
	r.mu.Unlock()
}

// Sent records a request hitting the wire: intended is its scheduled
// send offset, actual when the generator really issued it.
func (r *Recorder) Sent(intended, actual time.Duration) {
	r.mu.Lock()
	r.sent++
	if actual-intended > lateTolerance {
		r.late++
	}
	r.bucketFor(intended).sent++
	r.mu.Unlock()
}

// Complete records a successful request: latency runs from the
// intended send instant to completion.
func (r *Recorder) Complete(intended, latency time.Duration) {
	r.mu.Lock()
	r.completed++
	r.hist.Add(latency)
	b := r.bucketFor(intended)
	b.completed++
	b.hist.Add(latency)
	r.mu.Unlock()
}

// Fail records a request that errored or timed out.
func (r *Recorder) Fail(intended time.Duration) {
	r.mu.Lock()
	r.failed++
	r.bucketFor(intended).failed++
	r.mu.Unlock()
}

// Completed returns the number of completions so far.
func (r *Recorder) Completed() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.completed
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Summarize freezes the recorder into a Summary. elapsed is the
// arrival window; fault, when non-nil, triggers the recovery analysis
// (Desc and AtS must be filled in by the caller).
func (r *Recorder) Summarize(elapsed time.Duration, fault *FaultReport) *Summary {
	r.mu.Lock()
	defer r.mu.Unlock()

	s := &Summary{
		DurationS:  elapsed.Seconds(),
		Offered:    r.offered,
		Sent:       r.sent,
		Shed:       r.shed,
		Completed:  r.completed,
		Failed:     r.failed,
		Unfinished: r.sent - r.completed - r.failed,
		LateSends:  r.late,
		LatencyMs: Latencies{
			P50:   ms(r.hist.Percentile(50)),
			P90:   ms(r.hist.Percentile(90)),
			P99:   ms(r.hist.Percentile(99)),
			P999:  ms(r.hist.Percentile(99.9)),
			P9999: ms(r.hist.Percentile(99.99)),
			Mean:  ms(r.hist.Mean()),
			Max:   ms(r.hist.Max()),
		},
	}
	if elapsed > 0 {
		s.OfferedRPS = float64(r.offered) / elapsed.Seconds()
		s.GoodputRPS = float64(r.completed) / elapsed.Seconds()
	}
	if r.offered > 0 {
		s.GoodputRatio = float64(r.completed) / float64(r.offered)
	}
	for i, b := range r.buckets {
		s.Timeline = append(s.Timeline, BucketStat{
			StartS:    (time.Duration(i) * r.bucketW).Seconds(),
			Sent:      b.sent,
			Completed: b.completed,
			Failed:    b.failed,
			P50Ms:     ms(b.hist.Percentile(50)),
			P99Ms:     ms(b.hist.Percentile(99)),
		})
	}
	if fault != nil {
		rep := *fault
		r.analyzeFault(&rep)
		s.Fault = &rep
	}
	return s
}

// analyzeFault fills in the recovery analysis: baseline p99 is the
// median over buckets that closed before the fault, the spike the
// worst bucket at/after it, and recovery the gap from the fault to the
// end of the first post-fault bucket whose p99 is back under 1.5×
// baseline (and stays sane: the bucket must have completions).
func (r *Recorder) analyzeFault(rep *FaultReport) {
	faultAt := time.Duration(rep.AtS * float64(time.Second))
	var pre []float64
	for i, b := range r.buckets {
		end := time.Duration(i+1) * r.bucketW
		if end <= faultAt && b.hist.Count() > 0 {
			pre = append(pre, ms(b.hist.Percentile(99)))
		}
	}
	if len(pre) == 0 {
		return
	}
	sort.Float64s(pre)
	rep.BaselineP99Ms = pre[len(pre)/2]

	threshold := 1.5 * rep.BaselineP99Ms
	for i, b := range r.buckets {
		start := time.Duration(i) * r.bucketW
		end := start + r.bucketW
		if end <= faultAt || b.hist.Count() == 0 {
			continue
		}
		p99 := ms(b.hist.Percentile(99))
		if p99 > rep.SpikeP99Ms {
			rep.SpikeP99Ms = p99
		}
		if !rep.Recovered && p99 <= threshold {
			rep.Recovered = true
			rep.RecoveryMs = ms(end - faultAt)
		} else if rep.Recovered && p99 > threshold {
			// Relapsed: the tail came back up, so keep looking for the
			// point it settles for good.
			rep.Recovered = false
		}
	}
	if !rep.Recovered {
		rep.RecoveryMs = 0
	}
}
