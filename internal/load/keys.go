package load

import (
	"fmt"
	"math/rand"
	"strconv"
)

// Keys generates the client keyspace skew: which key each request
// touches, and therefore (through the fleet's consistent-hash router)
// which shard absorbs it.
type Keys interface {
	// Next draws the next request's key.
	Next(rng *rand.Rand) string
	// Cardinality returns the keyspace size (0 = unbounded/fixed).
	Cardinality() int
	// String returns the canonical spec.
	String() string
}

// UniformKeys draws uniformly from "key-0" .. "key-(N-1)".
type UniformKeys struct{ N int }

func (u *UniformKeys) Next(rng *rand.Rand) string { return keyName(rng.Intn(u.N)) }
func (u *UniformKeys) Cardinality() int           { return u.N }
func (u *UniformKeys) String() string             { return fmt.Sprintf("uniform:n=%d", u.N) }

// ZipfKeys draws from a Zipf(s, v=1) distribution over N keys: key-0
// is the hottest, with the classic heavy-head/long-tail shape real
// caches and social workloads show. s must be > 1 (the math/rand
// generator's domain); larger s is more skewed.
type ZipfKeys struct {
	N int
	S float64

	zipf *rand.Zipf // lazily bound to the first rng seen
}

func (z *ZipfKeys) Next(rng *rand.Rand) string {
	if z.zipf == nil {
		z.zipf = rand.NewZipf(rng, z.S, 1, uint64(z.N-1))
	}
	return keyName(int(z.zipf.Uint64()))
}

func (z *ZipfKeys) Cardinality() int { return z.N }
func (z *ZipfKeys) String() string   { return fmt.Sprintf("zipf:n=%d,s=%g", z.N, z.S) }

// FixedKey always returns the same key — the worst case for a sharded
// fleet (all load on one group) and the best case for batching.
type FixedKey struct{ Key string }

func (f *FixedKey) Next(*rand.Rand) string { return f.Key }
func (f *FixedKey) Cardinality() int       { return 1 }
func (f *FixedKey) String() string         { return "fixed:key=" + f.Key }

func keyName(i int) string { return "key-" + strconv.Itoa(i) }

// ParseKeys parses a key-skew spec:
//
//	uniform:n=10000
//	zipf:n=10000,s=1.1
//	fixed:key=hot
func ParseKeys(spec string) (Keys, error) {
	kind, params, err := splitSpec(spec)
	if err != nil {
		return nil, err
	}
	switch kind {
	case "uniform":
		n, err := needInt(params, "n")
		if err != nil {
			return nil, fmt.Errorf("keys %q: %w", spec, err)
		}
		return &UniformKeys{N: n}, nil
	case "zipf":
		n, err1 := needInt(params, "n")
		s, err2 := needFloat(params, "s")
		if err := firstErr(err1, err2); err != nil {
			return nil, fmt.Errorf("keys %q: %w", spec, err)
		}
		if s <= 1 {
			return nil, fmt.Errorf("keys %q: zipf needs s > 1", spec)
		}
		if n < 2 {
			return nil, fmt.Errorf("keys %q: zipf needs n >= 2", spec)
		}
		return &ZipfKeys{N: n, S: s}, nil
	case "fixed":
		key, ok := params["key"]
		if !ok || key == "" {
			return nil, fmt.Errorf("keys %q: missing key=", spec)
		}
		return &FixedKey{Key: key}, nil
	default:
		return nil, fmt.Errorf("keys %q: unknown skew %q (want uniform, zipf, fixed)", spec, kind)
	}
}
