package transport_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"quorumselect/internal/crypto"
	"quorumselect/internal/fleet"
	"quorumselect/internal/ids"
	"quorumselect/internal/wire"
)

// TestFleetRoutingEndToEnd pins the frontend-to-kernel routing
// contract over real TCP: a keyed operation routed the way the HTTP
// frontend routes it (consistent hash of the second whitespace field)
// must commit end to end on every replica of the OWNING shard and on no
// other shard. Run under -race this also exercises the host event
// loops, the shard mux, and the router concurrently.
func TestFleetRoutingEndToEnd(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	auth := crypto.NewHMACRing(cfg, []byte("fleet-routing"))
	const shards = 3
	hosts, replicas, leaders, shutdown := newFleetTCPCluster(t, cfg, auth, shards, 8, 1, 0, 0)
	defer shutdown()

	// The same router every frontend in the cluster builds: placement is
	// a pure function of (key, shards), so this test computes the exact
	// placement a real HTTP frontend would.
	router := fleet.NewRouter(shards)
	const keys = 12
	perShard := make(map[int][]string, shards)
	counts := make([]uint64, shards)
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("route-key-%d", i)
		op := fmt.Sprintf("set %s v%d", key, i)
		s := router.RouteString(key)
		perShard[s] = append(perShard[s], op)
		counts[s]++
		seq := counts[s]
		lead, rep := leaders[s], replicas[s][leaders[s]]
		hosts[lead].Do(func() {
			rep.Submit(&wire.Request{Client: uint64(100 + s), Seq: seq, Op: []byte(op)})
		})
	}
	for s := 0; s < shards; s++ {
		if len(perShard[s]) == 0 {
			t.Fatalf("shard %d drew no keys — router degenerated", s)
		}
	}

	// Every replica of every shard must drain its shard's workload (not
	// just the leader: commit means full-group execution).
	for s := 0; s < shards; s++ {
		want := counts[s]
		for _, p := range cfg.All() {
			rep := replicas[s][p]
			ok := waitFor(t, 30*time.Second, func() bool {
				var exec uint64
				hosts[p].Do(func() { exec = rep.LastExecuted() })
				return exec >= want
			})
			if !ok {
				t.Fatalf("shard %d replica %s stalled: executed fewer than %d", s, p, want)
			}
		}
	}

	// Placement: each op executed exactly on its owning shard, on every
	// replica of that shard, and nowhere else.
	for s := 0; s < shards; s++ {
		owned := make(map[string]bool, len(perShard[s]))
		for _, op := range perShard[s] {
			owned[op] = true
		}
		for _, p := range cfg.All() {
			rep := replicas[s][p]
			var ops []string
			hosts[p].Do(func() {
				for _, e := range rep.Executions() {
					ops = append(ops, string(e.Op))
				}
			})
			if len(ops) != len(perShard[s]) {
				t.Fatalf("shard %d replica %s executed %d ops %v, want the %d routed ops",
					s, p, len(ops), ops, len(perShard[s]))
			}
			for _, op := range ops {
				if !owned[op] {
					t.Fatalf("shard %d replica %s executed %q, which the router placed elsewhere", s, p, op)
				}
				if !strings.HasPrefix(op, "set route-key-") {
					t.Fatalf("shard %d replica %s executed unexpected op %q", s, p, op)
				}
			}
		}
	}
}
