package transport_test

import (
	"fmt"
	"testing"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/crypto"
	"quorumselect/internal/fleet"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/transport"
	"quorumselect/internal/wire"
	"quorumselect/internal/xpaxos"
)

// newFleetTCPCluster builds a sharded fleet on real TCP hosts: every
// process runs one fleet.Fleet of `shards` XPaxos groups, leaders
// staggered across the leadable processes, all of a peer pair's
// traffic multiplexed over the host's single connection. With delay >
// 0 every peer link runs through a latencyProxy adding that one-way
// latency per hop. Returned replicas are indexed [shard][process];
// leaders[s] is shard s's initial leader.
func newFleetTCPCluster(tb testing.TB, cfg ids.Config, auth crypto.Authenticator,
	shards, window, batch int, delay, heartbeat time.Duration) (
	map[ids.ProcessID]*transport.Host, map[int]map[ids.ProcessID]*xpaxos.Replica,
	[]ids.ProcessID, func()) {
	tb.Helper()
	leadable := cfg.N - cfg.Q() + 1
	views := make([]uint64, shards)
	leaders := make([]ids.ProcessID, shards)
	replicas := make(map[int]map[ids.ProcessID]*xpaxos.Replica, shards)
	for s := 0; s < shards; s++ {
		p := ids.ProcessID(s%leadable + 1)
		v, ok := xpaxos.FirstViewLedBy(cfg, p)
		if !ok {
			tb.Fatalf("no view led by %s", p)
		}
		views[s], leaders[s] = v, p
		replicas[s] = make(map[ids.ProcessID]*xpaxos.Replica, cfg.N)
	}
	hosts := make(map[ids.ProcessID]*transport.Host, cfg.N)
	var proxies []*latencyProxy
	for _, p := range cfg.All() {
		p := p
		fl := fleet.New(fleet.Options{
			Shards: shards,
			NewShard: func(s int) runtime.Node {
				opts := core.DefaultNodeOptions()
				opts.HeartbeatPeriod = heartbeat
				// FD sized for the injected RTT, as in the window sweep: a
				// full window of slots queues behind the link, and suspicion
				// mid-benchmark would measure view change, not the fleet.
				opts.FD.BaseTimeout = 2 * time.Second
				opts.FD.MaxTimeout = 4 * time.Second
				node, replica := xpaxos.NewQSNode(xpaxos.Options{
					InitialView: views[s],
					BatchSize:   batch,
					Window:      window,
				}, opts)
				replicas[s][p] = replica
				return node
			},
		})
		host, err := transport.NewHost(transport.Config{Self: p, System: cfg, Auth: auth, Seed: int64(p)}, fl)
		if err != nil {
			tb.Fatalf("NewHost(%s): %v", p, err)
		}
		hosts[p] = host
	}
	for _, p := range cfg.All() {
		for _, q := range cfg.All() {
			if p == q {
				continue
			}
			addr := hosts[q].Addr()
			if delay > 0 {
				px := newLatencyProxy(tb, addr, delay)
				proxies = append(proxies, px)
				addr = px.Addr()
			}
			hosts[p].SetPeerAddr(q, addr)
		}
	}
	shutdown := func() {
		for _, h := range hosts {
			h.Close()
		}
		for _, px := range proxies {
			px.Close()
		}
	}
	return hosts, replicas, leaders, shutdown
}

// BenchmarkFleetThroughput measures aggregate committed req/s as the
// fleet widens over the same four processes — the tentpole's scaling
// claim. The regime is the latency-hiding one sharding targets on this
// box: cheap (HMAC) authenticators and an emulated 4 ms RTT, so a
// single group at window 16 is bounded by slots-in-flight × RTT, and
// each added shard contributes its own independent commit window (and
// a staggered leader), multiplying the aggregate in-flight depth. All
// shard traffic rides the host's one connection per peer pair.
func BenchmarkFleetThroughput(b *testing.B) {
	cfg := ids.MustConfig(4, 1)
	auth := crypto.NewHMACRing(cfg, []byte("fleet-bench"))
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			hosts, replicas, leaders, shutdown := newFleetTCPCluster(b, cfg, auth, shards, 16, 1, benchOneWayDelay, 0)
			defer shutdown()
			b.ResetTimer()
			counts := make([]uint64, shards)
			for i := 0; i < b.N; i++ {
				s := i % shards
				counts[s]++
				seq := counts[s]
				lead := leaders[s]
				rep := replicas[s][lead]
				hosts[lead].Do(func() {
					rep.Submit(&wire.Request{Client: uint64(100 + s), Seq: seq, Op: []byte("set k v")})
				})
			}
			deadline := time.Now().Add(120 * time.Second)
			for s := 0; s < shards; s++ {
				lead, rep, want := leaders[s], replicas[s][leaders[s]], counts[s]
				for {
					var exec uint64
					hosts[lead].Do(func() { exec = rep.LastExecuted() })
					if exec >= want {
						break
					}
					if time.Now().After(deadline) {
						b.Fatalf("shard %d stalled: executed %d of %d", s, exec, want)
					}
					time.Sleep(time.Millisecond)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

// TestFleetSharesOneConnectionPerPeer pins the transport-muxing
// acceptance criterion: a 4-shard fleet commits traffic on every shard
// while each host keeps exactly one outbound connection per peer —
// n-1 dialed, n-1 accepted — because every shard's frames ride the
// same wire inside ShardEnvelopes.
func TestFleetSharesOneConnectionPerPeer(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	auth := crypto.NewHMACRing(cfg, []byte("fleet-conns"))
	const shards, perShard = 4, 3
	// Heartbeats on: every process sends to every other (across all four
	// shards), so each host must end up with exactly one dialed and one
	// accepted connection per peer — not one per shard per peer.
	hosts, replicas, leaders, shutdown := newFleetTCPCluster(t, cfg, auth, shards, 8, 1, 0, 25*time.Millisecond)
	defer shutdown()

	for s := 0; s < shards; s++ {
		lead, rep := leaders[s], replicas[s][leaders[s]]
		for i := 1; i <= perShard; i++ {
			seq := uint64(i)
			hosts[lead].Do(func() {
				rep.Submit(&wire.Request{Client: uint64(100 + s), Seq: seq, Op: []byte("set k v")})
			})
		}
	}
	for s := 0; s < shards; s++ {
		lead, rep := leaders[s], replicas[s][leaders[s]]
		ok := waitFor(t, 30*time.Second, func() bool {
			var exec uint64
			hosts[lead].Do(func() { exec = rep.LastExecuted() })
			return exec >= perShard
		})
		if !ok {
			t.Fatalf("shard %d never committed its workload", s)
		}
	}
	want := int64(cfg.N - 1)
	for _, p := range cfg.All() {
		m := hosts[p].Metrics()
		if got := m.Counter("transport.conns.dialed"); got != want {
			t.Errorf("%s dialed %d connections for %d shards, want %d (one per peer)", p, got, shards, want)
		}
		if got := m.Counter("transport.conns.accepted"); got != want {
			t.Errorf("%s accepted %d connections for %d shards, want %d (one per peer)", p, got, shards, want)
		}
	}
}
