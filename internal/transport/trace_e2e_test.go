package transport_test

import (
	"sync"
	"testing"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/crypto"
	"quorumselect/internal/ids"
	"quorumselect/internal/obs/tracer"
	"quorumselect/internal/transport"
	"quorumselect/internal/wire"
	"quorumselect/internal/xpaxos"
)

// newTracedXPaxosCluster builds a 4-process XPaxos cluster over real
// TCP, every host recording into ONE shared tracer. Span IDs are
// node-prefixed, so the shared ring never collides; each host stamps
// times on its own monotonic clock, so only same-node durations are
// compared below.
func newTracedXPaxosCluster(t *testing.T) (map[ids.ProcessID]*transport.Host, map[ids.ProcessID]*xpaxos.Replica, *tracer.Tracer) {
	t.Helper()
	cfg := ids.MustConfig(4, 1)
	auth := crypto.NewHMACRing(cfg, []byte("cluster-secret"))
	tr := tracer.New(0)
	hosts := make(map[ids.ProcessID]*transport.Host, cfg.N)
	replicas := make(map[ids.ProcessID]*xpaxos.Replica, cfg.N)
	for _, p := range cfg.All() {
		opts := core.DefaultNodeOptions()
		opts.HeartbeatPeriod = 0
		node, replica := xpaxos.NewQSNode(xpaxos.Options{}, opts)
		host, err := transport.NewHost(transport.Config{
			Self: p, System: cfg, Auth: auth, Tracer: tr, Seed: int64(p),
		}, node)
		if err != nil {
			t.Fatalf("NewHost(%s): %v", p, err)
		}
		hosts[p] = host
		replicas[p] = replica
	}
	for _, p := range cfg.All() {
		for _, q := range cfg.All() {
			if p != q {
				hosts[p].SetPeerAddr(q, hosts[q].Addr())
			}
		}
	}
	t.Cleanup(func() {
		for _, h := range hosts {
			h.Close()
		}
	})
	return hosts, replicas, tr
}

// TestTraceSpanTreeOverTCP reconstructs the causal span tree of one
// committed request across real TCP hosts — the same tree shape the
// simulator test pins, but assembled from four independent monotonic
// clocks — and checks the leader's stage durations still account for
// (almost all of) the end-to-end commit latency on the leader's own
// clock. Concurrent readers hammer the shared tracer while the
// protocol records into it, which makes this the -race storm for the
// tracer's locking.
func TestTraceSpanTreeOverTCP(t *testing.T) {
	hosts, replicas, tr := newTracedXPaxosCluster(t)

	// Reader storm: /trace-endpoint-style snapshots while spans are
	// being recorded from four event loops. The readers poll rather
	// than busy-spin so they don't starve the cluster on small
	// GOMAXPROCS — what matters for -race is the overlap, not the rate.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(20 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					_ = tr.Spans()
					_ = tracer.Capture("storm", tr, nil).JSON()
					_ = tr.Dropped()
				}
			}
		}()
	}

	hosts[1].Do(func() {
		replicas[1].Submit(&wire.Request{Client: 3, Seq: 1, Op: []byte("set tcp traced")})
	})
	ok := waitFor(t, 30*time.Second, func() bool {
		for _, p := range []ids.ProcessID{1, 2, 3, 4} {
			var exec uint64
			hosts[p].Do(func() { exec = replicas[p].LastExecuted() })
			if exec < 1 {
				return false
			}
		}
		return true
	})
	close(stop)
	wg.Wait()
	if !ok {
		for _, p := range []ids.ProcessID{1, 2, 3, 4} {
			var exec uint64
			hosts[p].Do(func() { exec = replicas[p].LastExecuted() })
			t.Logf("%s: executed=%d", p, exec)
		}
		t.Fatal("request did not execute on all replicas over TCP")
	}

	spans := tr.Spans()
	byName := make(map[ids.ProcessID]map[string]tracer.Span)
	idx := make(map[uint64]tracer.Span, len(spans))
	for _, s := range spans {
		idx[s.ID] = s
		if byName[s.Node] == nil {
			byName[s.Node] = make(map[string]tracer.Span)
		}
		byName[s.Node][s.Name] = s
	}
	leader := byName[1]
	root, ok2 := leader["ingress"]
	if !ok2 {
		t.Fatal("leader recorded no ingress span")
	}
	if root.Parent != 0 || root.Trace != root.ID {
		t.Fatalf("leader ingress is not the trace root: %+v", root)
	}

	// One trace spans all four processes, and every parent pointer
	// resolves inside it.
	nodes := make(map[ids.ProcessID]bool)
	for _, s := range spans {
		if s.Trace != root.Trace {
			t.Errorf("span %s on %s belongs to stray trace %#x", s.Name, s.Node, s.Trace)
			continue
		}
		nodes[s.Node] = true
		if s.Parent != 0 {
			if _, in := idx[s.Parent]; !in {
				t.Errorf("span %s on %s: parent %#x not recorded", s.Name, s.Node, s.Parent)
			}
		}
	}
	if len(nodes) < 4 {
		t.Errorf("trace covers %d nodes, want all 4 (got %v)", len(nodes), nodes)
	}
	if leader["propose"].Parent != root.ID || leader["quorum"].Parent != leader["propose"].ID {
		t.Errorf("leader stage chain broken: propose.parent=%#x quorum.parent=%#x",
			leader["propose"].Parent, leader["quorum"].Parent)
	}
	for _, p := range []ids.ProcessID{2, 3} {
		if acc, in := byName[p]["accept"]; !in || acc.Parent != leader["propose"].ID {
			t.Errorf("%s accept span missing or mis-parented: %+v", p, acc)
		}
	}

	// Stage accounting on the leader's monotonic clock: the four stages
	// run back-to-back on the event loop, so their summed duration must
	// not exceed the end-to-end latency and must account for nearly all
	// of it (the slack is just inter-callback scheduling).
	var sum time.Duration
	for _, name := range []string{"ingress", "propose", "quorum", "execute"} {
		s, in := leader[name]
		if !in {
			t.Fatalf("leader recorded no %q span", name)
		}
		sum += s.Dur
	}
	e2e := leader["execute"].Start + leader["execute"].Dur - leader["ingress"].Start
	if sum > e2e {
		t.Errorf("stage durations sum %v exceeds end-to-end latency %v", sum, e2e)
	}
	if slack := e2e - sum; slack > 250*time.Millisecond {
		t.Errorf("stages account for too little of the commit path: sum=%v e2e=%v slack=%v", sum, e2e, slack)
	}
}
