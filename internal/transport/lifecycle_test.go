package transport_test

import (
	gort "runtime"
	"sync"
	"testing"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/crypto"
	"quorumselect/internal/host"
	"quorumselect/internal/ids"
	"quorumselect/internal/transport"
	"quorumselect/internal/wire"
	"quorumselect/internal/xpaxos"
)

// newXPaxosCluster launches n XPaxos-on-Quorum-Selection hosts with
// heartbeats and real signatures — the full production composition —
// on ephemeral localhost ports.
func newXPaxosCluster(t *testing.T, n, f int, batch int) (map[ids.ProcessID]*transport.Host, map[ids.ProcessID]*xpaxos.Replica) {
	t.Helper()
	cfg := ids.MustConfig(n, f)
	auth := crypto.NewHMACRing(cfg, []byte("lifecycle-secret"))
	hosts := make(map[ids.ProcessID]*transport.Host, n)
	replicas := make(map[ids.ProcessID]*xpaxos.Replica, n)
	for _, p := range cfg.All() {
		nodeOpts := core.DefaultNodeOptions()
		nodeOpts.HeartbeatPeriod = 25 * time.Millisecond
		node, replica := xpaxos.NewQSNode(xpaxos.Options{
			BatchSize:       batch,
			MaxBatchLatency: 2 * time.Millisecond,
		}, nodeOpts)
		h, err := transport.NewHost(transport.Config{
			Self:   p,
			System: cfg,
			Auth:   auth,
			Seed:   int64(p),
		}, node)
		if err != nil {
			t.Fatalf("NewHost(%s): %v", p, err)
		}
		hosts[p] = h
		replicas[p] = replica
	}
	for _, p := range cfg.All() {
		for _, q := range cfg.All() {
			if p != q {
				hosts[p].SetPeerAddr(q, hosts[q].Addr())
			}
		}
	}
	return hosts, replicas
}

// TestCloseReleasesGoroutines drives a loaded cluster, closes every
// host, and requires the goroutine count to return to its baseline: a
// leaked peer writer, read loop, or un-stopped heartbeat timer keeps
// goroutines alive and fails this.
func TestCloseReleasesGoroutines(t *testing.T) {
	baseline := gort.NumGoroutine()

	hosts, replicas := newXPaxosCluster(t, 4, 1, 1)
	// Generate real traffic so every peer connection and writer exists.
	for i := 1; i <= 20; i++ {
		seq := uint64(i)
		hosts[1].Do(func() {
			replicas[1].Submit(&wire.Request{Client: 9, Seq: seq, Op: []byte("set k v")})
		})
	}
	if !waitFor(t, 5*time.Second, func() bool {
		var done uint64
		hosts[1].Do(func() { done = replicas[1].LastExecuted() })
		return done >= 20
	}) {
		t.Fatal("cluster did not commit the warm-up load")
	}

	for _, h := range hosts {
		if err := h.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}
	// Second Close must be a no-op returning nil.
	for _, h := range hosts {
		if err := h.Close(); err != nil {
			t.Errorf("second Close: %v, want nil", err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		gort.GC() // collect dropped connections promptly
		if gort.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, gort.NumGoroutine())
}

// TestCloseDuringTrafficStorm closes hosts while submitters are mid-
// flight, under -race: Close must not deadlock, double-Close stays nil,
// and no submitter may panic against a closing host.
func TestCloseDuringTrafficStorm(t *testing.T) {
	hosts, replicas := newXPaxosCluster(t, 4, 1, 8)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 1; c <= 4; c++ {
		wg.Add(1)
		go func(client uint64) {
			defer wg.Done()
			seq := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				seq++
				s := seq
				hosts[1].Do(func() {
					replicas[1].Submit(&wire.Request{Client: client, Seq: s, Op: []byte("set k v")})
				})
			}
		}(uint64(c))
	}

	time.Sleep(100 * time.Millisecond)
	// Close hosts concurrently while the storm is still running.
	var closers sync.WaitGroup
	for _, h := range hosts {
		closers.Add(1)
		go func(h *transport.Host) {
			defer closers.Done()
			if err := h.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
			if err := h.Close(); err != nil {
				t.Errorf("second Close: %v, want nil", err)
			}
		}(h)
	}
	closers.Wait()
	close(stop)
	wg.Wait()
}

// TestStopDropsTraffic verifies the host lifecycle contract end to end
// on one TCP process: after Close, the node is stopped and further
// submissions are ignored rather than crashing into torn-down state.
func TestStopDropsTraffic(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	auth := crypto.NewHMACRing(cfg, []byte("stop-secret"))
	stopOpts := core.DefaultNodeOptions()
	stopOpts.HeartbeatPeriod = 25 * time.Millisecond
	node, _ := xpaxos.NewQSNode(xpaxos.Options{}, stopOpts)
	h, err := transport.NewHost(transport.Config{Self: 1, System: cfg, Auth: auth, Seed: 1}, node)
	if err != nil {
		t.Fatal(err)
	}
	if got := node.State(); got != host.StateRunning {
		t.Fatalf("state after NewHost = %s, want running", got)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if got := node.State(); got != host.StateStopped {
		t.Fatalf("state after Close = %s, want stopped", got)
	}
	// A stopped node drops traffic instead of processing it.
	node.Receive(2, &wire.Heartbeat{From: 2, Seq: 1})
}
