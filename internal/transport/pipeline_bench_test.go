package transport_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/crypto"
	"quorumselect/internal/ids"
	"quorumselect/internal/transport"
	"quorumselect/internal/wire"
	"quorumselect/internal/xpaxos"
)

// benchOneWayDelay is the per-hop latency the window sweep injects
// between peers. Pipelining is a latency-hiding optimization: on bare
// loopback there is nothing to hide (RTT ~0, and on a small box the
// commit path is crypto-CPU-bound either way), so the sweep emulates a
// LAN/datacenter link — real TCP stack, frames delayed in a userspace
// proxy — which is the regime the window targets.
const benchOneWayDelay = 2 * time.Millisecond

// latencyProxy forwards TCP connections to a backend, delaying every
// chunk by a fixed one-way latency in each direction. Bandwidth is not
// constrained: reads continue while earlier chunks wait to be
// delivered, so the added latency is constant rather than cumulative.
type latencyProxy struct {
	ln    net.Listener
	delay time.Duration

	mu    sync.Mutex
	conns []net.Conn
	done  bool
}

func newLatencyProxy(tb testing.TB, target string, delay time.Duration) *latencyProxy {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatalf("proxy listen: %v", err)
	}
	px := &latencyProxy{ln: ln, delay: delay}
	go px.accept(target)
	return px
}

func (px *latencyProxy) Addr() string { return px.ln.Addr().String() }

func (px *latencyProxy) accept(target string) {
	for {
		in, err := px.ln.Accept()
		if err != nil {
			return
		}
		out, err := net.Dial("tcp", target)
		if err != nil {
			in.Close()
			continue
		}
		if !px.track(in, out) {
			return
		}
		go px.pump(out, in)
		go px.pump(in, out)
	}
}

// track registers the connection pair for Close, or refuses it if the
// proxy is already shut down.
func (px *latencyProxy) track(in, out net.Conn) bool {
	px.mu.Lock()
	defer px.mu.Unlock()
	if px.done {
		in.Close()
		out.Close()
		return false
	}
	px.conns = append(px.conns, in, out)
	return true
}

// pump copies src to dst, holding each chunk for the configured delay.
func (px *latencyProxy) pump(dst, src net.Conn) {
	type chunk struct {
		data []byte
		due  time.Time
	}
	ch := make(chan chunk, 4096)
	go func() {
		defer close(ch)
		for {
			buf := make([]byte, 32*1024)
			n, err := src.Read(buf)
			if n > 0 {
				ch <- chunk{data: buf[:n], due: time.Now().Add(px.delay)}
			}
			if err != nil {
				return
			}
		}
	}()
	for c := range ch {
		if d := time.Until(c.due); d > 0 {
			time.Sleep(d)
		}
		if _, err := dst.Write(c.data); err != nil {
			break
		}
	}
	// Propagate EOF so the backend sees the close promptly; the reader
	// side exits on its own read error.
	if tc, ok := dst.(*net.TCPConn); ok {
		tc.CloseWrite()
	} else {
		dst.Close()
	}
}

func (px *latencyProxy) Close() {
	px.mu.Lock()
	px.done = true
	conns := px.conns
	px.conns = nil
	px.mu.Unlock()
	px.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

// newWindowedTCPCluster builds an XPaxos cluster on real TCP hosts with
// the given commit window and ingress batch size. With delay > 0 every
// peer link is routed through a latencyProxy adding that one-way
// latency per hop. onExec, if set, observes executions at the initial
// leader p1.
func newWindowedTCPCluster(tb testing.TB, cfg ids.Config, auth crypto.Authenticator,
	window, batch int, delay time.Duration, onExec func(xpaxos.Execution)) (
	map[ids.ProcessID]*transport.Host, map[ids.ProcessID]*xpaxos.Replica, func()) {
	tb.Helper()
	hosts := make(map[ids.ProcessID]*transport.Host, cfg.N)
	replicas := make(map[ids.ProcessID]*xpaxos.Replica, cfg.N)
	var proxies []*latencyProxy
	for _, p := range cfg.All() {
		opts := core.DefaultNodeOptions()
		opts.HeartbeatPeriod = 0
		// Size the failure detector for the injected RTT: a deep window
		// queues a full window of slots behind the link, so the tail
		// slot's commit legitimately takes window×(crypto+hop) — far past
		// the 40 ms LAN default. A production deployment tunes the FD the
		// same way; suspicion mid-benchmark would measure view change,
		// not the pipeline.
		opts.FD.BaseTimeout = 2 * time.Second
		opts.FD.MaxTimeout = 4 * time.Second
		xopts := xpaxos.Options{BatchSize: batch, Window: window}
		if p == 1 {
			xopts.OnExecute = onExec
		}
		node, replica := xpaxos.NewQSNode(xopts, opts)
		host, err := transport.NewHost(transport.Config{Self: p, System: cfg, Auth: auth, Seed: int64(p)}, node)
		if err != nil {
			tb.Fatalf("NewHost(%s): %v", p, err)
		}
		hosts[p] = host
		replicas[p] = replica
	}
	for _, p := range cfg.All() {
		for _, q := range cfg.All() {
			if p == q {
				continue
			}
			addr := hosts[q].Addr()
			if delay > 0 {
				px := newLatencyProxy(tb, addr, delay)
				proxies = append(proxies, px)
				addr = px.Addr()
			}
			hosts[p].SetPeerAddr(q, addr)
		}
	}
	shutdown := func() {
		for _, h := range hosts {
			h.Close()
		}
		for _, px := range proxies {
			px.Close()
		}
	}
	return hosts, replicas, shutdown
}

// BenchmarkXPaxosPipelinedThroughput sweeps the leader's commit window
// over the Ed25519 TCP path with an emulated 4 ms RTT (see
// benchOneWayDelay) and BatchSize 1, so slots == requests and the
// measured req/s isolates the window's latency hiding: at window 1 the
// leader runs in lockstep, one RTT per slot; at deeper windows slot
// round trips overlap until the path is crypto-bound.
func BenchmarkXPaxosPipelinedThroughput(b *testing.B) {
	cfg := ids.MustConfig(4, 1)
	ring, err := crypto.NewEd25519Ring(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("window=%d", w), func(b *testing.B) {
			hosts, replicas, shutdown := newWindowedTCPCluster(b, cfg, ring, w, 1, benchOneWayDelay, nil)
			defer shutdown()
			b.ResetTimer()
			for i := 1; i <= b.N; i++ {
				seq := uint64(i)
				hosts[1].Do(func() {
					replicas[1].Submit(&wire.Request{Client: 1, Seq: seq, Op: []byte("set k v")})
				})
			}
			deadline := time.Now().Add(120 * time.Second)
			for {
				var exec uint64
				hosts[1].Do(func() { exec = replicas[1].LastExecuted() })
				if exec >= uint64(b.N) {
					break
				}
				if time.Now().After(deadline) {
					b.Fatalf("pipeline stalled: executed %d of %d", exec, b.N)
				}
				time.Sleep(time.Millisecond)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

// TestWindowedLeaderConcurrentIngress is the -race storm for the
// windowed leader: many client goroutines hammer Submit through the
// host's event loop while the window gate opens and closes under them.
// Every request must execute exactly once, on the leader and on a
// follower.
func TestWindowedLeaderConcurrentIngress(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	auth := crypto.NewHMACRing(cfg, []byte("storm-secret"))
	executed := 0 // mutated and read only on p1's event loop
	hosts, replicas, shutdown := newWindowedTCPCluster(t, cfg, auth, 4, 4, 0,
		func(xpaxos.Execution) { executed++ })
	defer shutdown()

	const clients, perClient = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		client := uint64(g + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= perClient; i++ {
				seq := uint64(i)
				hosts[1].Do(func() {
					replicas[1].Submit(&wire.Request{
						Client: client,
						Seq:    seq,
						Op:     []byte(fmt.Sprintf("set c%d-%d v", client, seq)),
					})
				})
			}
		}()
	}
	wg.Wait()

	const want = clients * perClient
	ok := waitFor(t, 30*time.Second, func() bool {
		var done int
		hosts[1].Do(func() { done = executed })
		return done == want
	})
	if !ok {
		var done int
		hosts[1].Do(func() { done = executed })
		t.Fatalf("leader executed %d of %d requests", done, want)
	}
	// Followers converge to the same log height.
	var leaderExec uint64
	hosts[1].Do(func() { leaderExec = replicas[1].LastExecuted() })
	ok = waitFor(t, 10*time.Second, func() bool {
		var exec uint64
		hosts[2].Do(func() { exec = replicas[2].LastExecuted() })
		return exec >= leaderExec
	})
	if !ok {
		t.Fatal("follower did not reach the leader's executed height")
	}
}
