package transport_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quorumselect/internal/crypto"
	"quorumselect/internal/ids"
	"quorumselect/internal/load"
	"quorumselect/internal/transport"
	"quorumselect/internal/wire"
	"quorumselect/internal/xpaxos"
)

// tcpLoadTarget adapts a real TCP cluster's leader to the open-loop
// generator's Target: each request submits under its own client ID and
// blocks until the leader's OnExecute reports it, so the generator's
// latency samples cover the full submit→commit→execute path over real
// sockets.
type tcpLoadTarget struct {
	host *transport.Host
	rep  *xpaxos.Replica

	next uint64 // atomic client-ID counter

	mu      sync.Mutex
	waiters map[uint64]chan struct{}
}

func newTCPLoadTarget() *tcpLoadTarget {
	return &tcpLoadTarget{waiters: map[uint64]chan struct{}{}}
}

// onExec runs on the leader's event loop.
func (t *tcpLoadTarget) onExec(e xpaxos.Execution) {
	t.mu.Lock()
	ch := t.waiters[e.Client]
	delete(t.waiters, e.Client)
	t.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

func (t *tcpLoadTarget) Do(ctx context.Context, key string, op []byte) error {
	id := atomic.AddUint64(&t.next, 1)
	done := make(chan struct{})
	t.mu.Lock()
	t.waiters[id] = done
	t.mu.Unlock()
	t.host.Do(func() {
		t.rep.Submit(&wire.Request{Client: id, Seq: 1, Op: op})
	})
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		t.mu.Lock()
		delete(t.waiters, id)
		t.mu.Unlock()
		return ctx.Err()
	}
}

// TestOpenLoopOverTCP runs the wall-clock open-loop generator against
// a real 4-process TCP cluster: a short Poisson run must sustain its
// offered rate end to end (goodput ≥ 0.95) with full accounting
// (offered = sent + shed, sent = completed + failed) and latencies
// charged from intended send time.
func TestOpenLoopOverTCP(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	auth := crypto.NewHMACRing(cfg, []byte("loadgen-secret"))
	target := newTCPLoadTarget()
	hosts, replicas, shutdown := newWindowedTCPCluster(t, cfg, auth, 16, 8, 0, target.onExec)
	defer shutdown()
	target.host, target.rep = hosts[1], replicas[1]

	gen, err := load.NewGenerator(load.Options{
		Arrivals:    &load.Poisson{R: 300},
		Keys:        &load.ZipfKeys{N: 2000, S: 1.1},
		Seed:        23,
		Duration:    2 * time.Second,
		MaxInFlight: 64,
		Timeout:     10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := gen.Run(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	if s.Offered != s.Sent+s.Shed {
		t.Errorf("accounting: offered %d != sent %d + shed %d", s.Offered, s.Sent, s.Shed)
	}
	if s.Sent != s.Completed+s.Failed+s.Unfinished {
		t.Errorf("accounting: sent %d != completed %d + failed %d + unfinished %d",
			s.Sent, s.Completed, s.Failed, s.Unfinished)
	}
	if s.Completed == 0 {
		t.Fatal("no requests completed over TCP")
	}
	if s.GoodputRatio < 0.95 {
		t.Errorf("goodput ratio %.3f, want ≥ 0.95 (completed %d of %d offered)",
			s.GoodputRatio, s.Completed, s.Offered)
	}
	if s.LatencyMs.P50 <= 0 || s.LatencyMs.P99 < s.LatencyMs.P50 {
		t.Errorf("implausible latency: %+v", s.LatencyMs)
	}
	if s.LatencyMs.P99 > 5000 {
		t.Errorf("p99 %.1fms on loopback, want well under 5s", s.LatencyMs.P99)
	}
}
