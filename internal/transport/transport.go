// Package transport runs the same protocol nodes that the simulator
// drives (runtime.Node implementations) over real TCP connections.
//
// Each process is a Host: a listener plus on-demand dialed peer
// connections. Frames are length-prefixed canonical wire encodings,
// preceded on each connection by a 4-byte hello naming the sending
// process. All inbound messages and timer callbacks are serialized onto
// one event loop per Host, preserving the paper's single-threaded
// module semantics, so protocol code needs no locks here either.
//
// Link authentication is the hello claim plus per-message content
// signatures (ed25519/HMAC via the crypto package) on every Signed
// message; heartbeats are accepted on the hello claim alone. A
// production deployment would add TLS on the links; the paper's
// adversary model only requires unforgeable message signatures, which
// the content signatures provide.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"math/rand"

	"quorumselect/internal/crypto"
	"quorumselect/internal/ids"
	"quorumselect/internal/logging"
	"quorumselect/internal/metrics"
	"quorumselect/internal/obs"
	"quorumselect/internal/obs/tracer"
	"quorumselect/internal/runtime"
	"quorumselect/internal/wire"
)

// maxFrame bounds accepted frame sizes.
const maxFrame = 4 << 20

// dialRetryDelay paces reconnection attempts.
const dialRetryDelay = 100 * time.Millisecond

// Config describes one process of a TCP deployment.
type Config struct {
	// Self is this process's identity.
	Self ids.ProcessID
	// System holds the replication parameters (n, f).
	System ids.Config
	// ListenAddr is the local address to listen on (e.g.
	// "127.0.0.1:7001"). If empty, an ephemeral localhost port is
	// used; Addr reports it.
	ListenAddr string
	// Peers maps every other process to its address. Entries may be
	// filled in later with SetPeerAddr (before traffic to that peer).
	Peers map[ids.ProcessID]string
	// Auth signs and verifies messages (default crypto.NopRing).
	Auth crypto.Authenticator
	// Logger receives transport and protocol logs (default
	// logging.Nop).
	Logger logging.Logger
	// Metrics receives accounting (default: fresh registry).
	Metrics *metrics.Registry
	// Events receives typed protocol events (default: fresh bus with
	// obs.DefaultCapacity).
	Events *obs.Bus
	// Tracer records causal commit-path spans (nil: tracing disabled).
	// Spans are stamped against this host's monotonic clock (time since
	// host start), so durations are per-host; trace structure (IDs,
	// parents) is comparable across hosts.
	Tracer *tracer.Tracer
	// Seed drives the Env's randomness (default 1).
	Seed int64
	// VerifyWorkers sizes the off-loop signature-verification pool:
	// inbound signed messages verify on pool workers instead of the
	// event loop (arrival order preserved by the failure detector's
	// pending-verify FIFO), and quorum-certificate batches fan out
	// across them. 0 selects GOMAXPROCS workers; negative disables the
	// pool and verifies synchronously on the loop.
	VerifyWorkers int
}

// Host runs one runtime.Node over TCP.
type Host struct {
	cfg  Config
	node runtime.Node

	listener net.Listener
	events   chan func()
	done     chan struct{}
	wg       sync.WaitGroup
	start    time.Time

	mu      sync.Mutex
	addrs   map[ids.ProcessID]string
	writers map[ids.ProcessID]*peerWriter
	closed  bool

	// pool verifies signatures off the event loop (nil when disabled
	// via Config.VerifyWorkers < 0).
	pool *crypto.Pool

	env *hostEnv
}

// NewHost creates and starts a Host: it listens, starts the event loop,
// and calls node.Init on the loop.
func NewHost(cfg Config, node runtime.Node) (*Host, error) {
	if cfg.Auth == nil {
		cfg.Auth = crypto.NopRing{}
	}
	if cfg.Logger == nil {
		cfg.Logger = logging.Nop
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Events == nil {
		cfg.Events = obs.NewBus(0)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if !cfg.Self.Valid(cfg.System.N) {
		return nil, fmt.Errorf("transport: self %s outside Π with n=%d", cfg.Self, cfg.System.N)
	}
	addr := cfg.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	h := &Host{
		cfg:      cfg,
		node:     node,
		listener: ln,
		events:   make(chan func(), 1024),
		done:     make(chan struct{}),
		start:    time.Now(),
		addrs:    make(map[ids.ProcessID]string, len(cfg.Peers)),
		writers:  make(map[ids.ProcessID]*peerWriter),
	}
	for p, a := range cfg.Peers {
		h.addrs[p] = a
	}
	if cfg.VerifyWorkers >= 0 {
		h.pool = crypto.NewPool(cfg.Auth, cfg.VerifyWorkers)
	}
	h.env = &hostEnv{
		h:   h,
		rng: rand.New(rand.NewSource(cfg.Seed ^ int64(cfg.Self))),
		log: logging.Tagged(cfg.Logger, cfg.Self.String()),
	}

	h.wg.Add(2)
	go h.acceptLoop()
	go h.eventLoop()

	initDone := make(chan struct{})
	h.events <- func() {
		node.Init(h.env)
		close(initDone)
	}
	<-initDone
	return h, nil
}

// Addr returns the listener's address (useful with ephemeral ports).
func (h *Host) Addr() string { return h.listener.Addr().String() }

// Metrics returns the host's registry (for /metrics frontends).
func (h *Host) Metrics() *metrics.Registry { return h.cfg.Metrics }

// Events returns the host's protocol event bus (for /events frontends).
func (h *Host) Events() *obs.Bus { return h.cfg.Events }

// Tracer returns the host's span recorder (nil when tracing is
// disabled; for /trace frontends).
func (h *Host) Tracer() *tracer.Tracer { return h.cfg.Tracer }

// SetPeerAddr records or updates a peer's address.
func (h *Host) SetPeerAddr(p ids.ProcessID, addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.addrs[p] = addr
}

// Do runs fn on the host's event loop and waits for it — the way tests
// and frontends interact with the protocol node safely. If the host
// closes first, Do returns without fn having run: the loop may exit
// with the closure still queued, so waiting only on doneCh would hang
// callers racing a shutdown.
func (h *Host) Do(fn func()) {
	doneCh := make(chan struct{})
	select {
	case h.events <- func() { fn(); close(doneCh) }:
		select {
		case <-doneCh:
		case <-h.done:
		}
	case <-h.done:
	}
}

// Close tears the node down through the runtime.Stopper lifecycle (on
// the event loop, like every other node entry point), then shuts the
// transport down and waits for its goroutines. Closing an already
// closed host is a no-op returning nil.
func (h *Host) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	writers := make([]*peerWriter, 0, len(h.writers))
	for _, w := range h.writers {
		writers = append(writers, w)
	}
	h.mu.Unlock()

	// Stop the node before stopping the loop, so heartbeaters and
	// protocol timers cancel cleanly. If the loop's queue is saturated,
	// skip the stop rather than deadlock the shutdown: the loop exits
	// next and pending timers die with the process.
	stopDone := make(chan struct{})
	select {
	case h.events <- func() { runtime.StopNode(h.node); close(stopDone) }:
		<-stopDone
	default:
	}

	close(h.done)
	err := h.listener.Close()
	for _, w := range writers {
		w.close()
	}
	h.wg.Wait()
	// Stop the verification workers last: their pending completions
	// post to h.events guarded by h.done, so they drain without
	// blocking once the loop is gone.
	if h.pool != nil {
		h.pool.Close()
	}
	return err
}

func (h *Host) eventLoop() {
	defer h.wg.Done()
	for {
		select {
		case fn := <-h.events:
			fn()
		case <-h.done:
			return
		}
	}
}

func (h *Host) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.listener.Accept()
		if err != nil {
			select {
			case <-h.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		h.cfg.Metrics.Inc("transport.conns.accepted", 1)
		h.wg.Add(1)
		go h.readLoop(conn)
	}
}

// readLoop consumes one inbound connection: a 4-byte hello naming the
// sender, then length-prefixed frames.
func (h *Host) readLoop(conn net.Conn) {
	defer h.wg.Done()
	defer conn.Close()
	go func() { // unblock Read on shutdown
		<-h.done
		conn.Close()
	}()
	var hello [4]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return
	}
	from := ids.ProcessID(binary.BigEndian.Uint32(hello[:]))
	if !from.Valid(h.cfg.System.N) {
		h.env.log.Logf(logging.LevelDebug, "transport: hello from invalid process %d", from)
		return
	}
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrame {
			h.env.log.Logf(logging.LevelDebug, "transport: bad frame length %d from %s", n, from)
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		msg, err := wire.Decode(buf)
		if err != nil {
			h.cfg.Metrics.Inc("transport.decode.errors", 1)
			h.env.log.Logf(logging.LevelDebug, "transport: undecodable frame from %s: %v", from, err)
			continue
		}
		h.cfg.Metrics.Inc("transport.received", 1)
		kind := metrics.L{Key: "type", Value: msg.Kind().String()}
		h.cfg.Metrics.IncLabeled("transport.messages.total", 1, kind, metrics.L{Key: "dir", Value: "recv"})
		h.cfg.Metrics.IncLabeled("transport.bytes.total", int64(n), kind, metrics.L{Key: "dir", Value: "recv"})
		select {
		case h.events <- func() { h.node.Receive(from, msg) }:
		case <-h.done:
			return
		}
	}
}

// send queues a frame for a peer, creating the writer on demand.
func (h *Host) send(to ids.ProcessID, m wire.Message) {
	if to == h.cfg.Self {
		// Local delivery through the normal event path. The codec
		// round-trip uses a pooled buffer; decoded messages never
		// alias it.
		msg := m
		data := wire.EncodePooled(m)
		decoded, err := wire.Decode(data)
		if err == nil {
			msg = decoded
		}
		wire.Recycle(data)
		select {
		case h.events <- func() { h.node.Receive(h.cfg.Self, msg) }:
		case <-h.done:
		}
		return
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	w, ok := h.writers[to]
	if !ok {
		w = newPeerWriter(h, to)
		h.writers[to] = w
	}
	h.mu.Unlock()
	h.cfg.Metrics.Inc("transport.sent", 1)
	// The frame is drawn from the wire pool; the peer writer recycles
	// it after the bytes hit the socket.
	frame := wire.EncodePooled(m)
	kind := metrics.L{Key: "type", Value: m.Kind().String()}
	h.cfg.Metrics.IncLabeled("transport.messages.total", 1, kind, metrics.L{Key: "dir", Value: "sent"})
	h.cfg.Metrics.IncLabeled("transport.bytes.total", int64(len(frame)), kind, metrics.L{Key: "dir", Value: "sent"})
	w.enqueue(frame)
}

// peerAddr resolves a peer's current address.
func (h *Host) peerAddr(p ids.ProcessID) (string, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	a, ok := h.addrs[p]
	return a, ok
}

// peerWriter owns the outbound connection to one peer: a queue drained
// by a single goroutine that dials (and re-dials) as needed.
type peerWriter struct {
	h    *Host
	peer ids.ProcessID

	mu     sync.Mutex
	queue  [][]byte
	wake   chan struct{}
	closed bool
}

func newPeerWriter(h *Host, peer ids.ProcessID) *peerWriter {
	w := &peerWriter{h: h, peer: peer, wake: make(chan struct{}, 1)}
	h.wg.Add(1)
	go w.run()
	return w
}

func (w *peerWriter) enqueue(frame []byte) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.queue = append(w.queue, frame)
	w.h.cfg.Metrics.AddGauge("transport.sendq.depth", 1,
		metrics.L{Key: "node", Value: w.h.cfg.Self.String()})
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

func (w *peerWriter) close() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// run drains the queue with vectored writes: every pass takes whatever
// frames have accumulated and hands the kernel one writev-style buffer
// chain — [len₁, frame₁, len₂, frame₂, …] — via net.Buffers, so a
// window of pipelined PREPAREs costs one syscall instead of two per
// frame. On a connection error the whole batch is retried on a fresh
// connection; frames that already hit the old socket may arrive twice,
// the same at-least-once semantics the per-frame retry had (the
// protocols deduplicate).
func (w *peerWriter) run() {
	defer w.h.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		select {
		case <-w.wake:
		case <-w.h.done:
			return
		}
		for {
			frames, ok := w.popAll()
			if !ok {
				break
			}
			lens := make([]byte, 4*len(frames))
			for {
				if w.stopped() {
					return
				}
				if conn == nil {
					conn = w.dial()
					if conn == nil {
						select {
						case <-time.After(dialRetryDelay):
							continue
						case <-w.h.done:
							return
						}
					}
				}
				// WriteTo consumes its Buffers slice (partial writes
				// shift it), so the chain is rebuilt from the retained
				// frames on every attempt.
				bufs := make(net.Buffers, 0, 2*len(frames))
				for i, frame := range frames {
					l := lens[4*i : 4*i+4]
					binary.BigEndian.PutUint32(l, uint32(len(frame)))
					bufs = append(bufs, l, frame)
				}
				conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
				if _, err := bufs.WriteTo(conn); err != nil {
					conn.Close()
					conn = nil
					continue
				}
				// Batch delivered to the kernel; return the buffers to
				// the encode pool.
				for _, frame := range frames {
					wire.Recycle(frame)
				}
				w.h.cfg.Metrics.Inc("transport.writev.flushes", 1)
				w.h.cfg.Metrics.Observe("transport.writev.frames", float64(len(frames)))
				break
			}
		}
	}
}

// popAll takes the whole queued backlog in one swap.
func (w *peerWriter) popAll() ([][]byte, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.queue) == 0 {
		return nil, false
	}
	frames := w.queue
	w.queue = nil
	w.h.cfg.Metrics.AddGauge("transport.sendq.depth", -float64(len(frames)),
		metrics.L{Key: "node", Value: w.h.cfg.Self.String()})
	return frames, true
}

func (w *peerWriter) stopped() bool {
	select {
	case <-w.h.done:
		return true
	default:
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

// dial opens the connection and sends the hello; nil on failure.
func (w *peerWriter) dial() net.Conn {
	addr, ok := w.h.peerAddr(w.peer)
	if !ok {
		return nil
	}
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		w.h.cfg.Metrics.Inc("transport.dial.errors", 1)
		return nil
	}
	var hello [4]byte
	binary.BigEndian.PutUint32(hello[:], uint32(w.h.cfg.Self))
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil
	}
	// One counter tick per established outbound connection: the fleet's
	// mux test pins R×N shard traffic to exactly n-1 of these per host.
	w.h.cfg.Metrics.Inc("transport.conns.dialed", 1)
	return conn
}

// hostEnv implements runtime.Env over a Host.
type hostEnv struct {
	h   *Host
	rng *rand.Rand
	log logging.Logger
}

var _ runtime.Env = (*hostEnv)(nil)

func (e *hostEnv) ID() ids.ProcessID          { return e.h.cfg.Self }
func (e *hostEnv) Config() ids.Config         { return e.h.cfg.System }
func (e *hostEnv) Now() time.Duration         { return time.Since(e.h.start) }
func (e *hostEnv) Rand() *rand.Rand           { return e.rng }
func (e *hostEnv) Auth() crypto.Authenticator { return e.h.cfg.Auth }
func (e *hostEnv) Logger() logging.Logger     { return e.log }
func (e *hostEnv) Metrics() *metrics.Registry { return e.h.cfg.Metrics }
func (e *hostEnv) Events() *obs.Bus           { return e.h.cfg.Events }
func (e *hostEnv) Tracer() *tracer.Tracer     { return e.h.cfg.Tracer }

func (e *hostEnv) Send(to ids.ProcessID, m wire.Message) {
	if !to.Valid(e.h.cfg.System.N) {
		e.log.Logf(logging.LevelError, "transport: send to %s outside Π", to)
		return
	}
	e.h.send(to, m)
}

var (
	_ runtime.AsyncVerifier    = (*hostEnv)(nil)
	_ runtime.BatchVerifier    = (*hostEnv)(nil)
	_ runtime.RawAsyncVerifier = (*hostEnv)(nil)
)

// VerifyAsync implements runtime.AsyncVerifier: the signature check
// runs on a pool worker and its completion is posted back onto the
// event loop, so the loop spends none of its serial budget on ed25519
// arithmetic. Reports false (verify synchronously) when the pool is
// disabled.
func (e *hostEnv) VerifyAsync(m wire.Signed, done func(error)) bool {
	return e.VerifyRawAsync(m.Signer(), m.SigBytes(), m.Signature(), done)
}

// VerifyRawAsync implements runtime.RawAsyncVerifier: the same pool
// path as VerifyAsync for callers that rewrite the verified bytes
// (the fleet's per-shard signing domains).
func (e *hostEnv) VerifyRawAsync(signer ids.ProcessID, data, sig []byte, done func(error)) bool {
	if e.h.pool == nil {
		return false
	}
	e.h.cfg.Metrics.Inc("transport.verify.async", 1)
	e.h.pool.VerifyAsync(signer, data, sig, func(err error) {
		select {
		case e.h.events <- func() { done(err) }:
		case <-e.h.done:
		}
	})
	return true
}

// VerifyBatch implements runtime.BatchVerifier: one deduplicated,
// fanned-out pass over a certificate's signatures. Nil (serial
// fallback) when the pool is disabled.
func (e *hostEnv) VerifyBatch(items []crypto.BatchItem) []error {
	if e.h.pool == nil {
		return nil
	}
	e.h.cfg.Metrics.Inc("transport.verify.batched", int64(len(items)))
	return e.h.pool.VerifyBatch(items)
}

func (e *hostEnv) After(d time.Duration, fn func()) runtime.Timer {
	t := &hostTimer{}
	t.timer = time.AfterFunc(d, func() {
		select {
		case e.h.events <- func() {
			t.mu.Lock()
			if t.stopped {
				t.mu.Unlock()
				return
			}
			t.ran = true
			t.mu.Unlock()
			fn()
		}:
		case <-e.h.done:
		}
	})
	return t
}

// hostTimer adapts time.Timer to runtime.Timer with loop-side
// cancellation (Stop may race with an already-queued callback; the
// stopped flag keeps the callback from running in that case).
type hostTimer struct {
	mu      sync.Mutex
	timer   *time.Timer
	stopped bool
	ran     bool
}

// Stop implements runtime.Timer: it reports whether the callback was
// prevented from running.
func (t *hostTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped || t.ran {
		return false
	}
	t.stopped = true
	t.timer.Stop()
	return true
}
