package transport_test

import (
	"sync"
	"testing"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/crypto"
	"quorumselect/internal/ids"
	"quorumselect/internal/storage"
	"quorumselect/internal/transport"
	"quorumselect/internal/wire"
	"quorumselect/internal/xpaxos"
)

// newDurableXPaxosCluster is newXPaxosCluster with a private in-memory
// storage backend behind every host — the full production composition
// including the durability layer.
func newDurableXPaxosCluster(t *testing.T, n, f, batch int) (map[ids.ProcessID]*transport.Host, map[ids.ProcessID]*xpaxos.Replica, map[ids.ProcessID]*storage.MemBackend) {
	t.Helper()
	cfg := ids.MustConfig(n, f)
	auth := crypto.NewHMACRing(cfg, []byte("durable-secret"))
	hosts := make(map[ids.ProcessID]*transport.Host, n)
	replicas := make(map[ids.ProcessID]*xpaxos.Replica, n)
	backends := make(map[ids.ProcessID]*storage.MemBackend, n)
	for _, p := range cfg.All() {
		nodeOpts := core.DefaultNodeOptions()
		nodeOpts.HeartbeatPeriod = 25 * time.Millisecond
		backends[p] = storage.NewMemBackend()
		nodeOpts.Storage = backends[p]
		node, replica := xpaxos.NewQSNode(xpaxos.Options{
			BatchSize:          batch,
			MaxBatchLatency:    2 * time.Millisecond,
			CheckpointInterval: 16,
		}, nodeOpts)
		h, err := transport.NewHost(transport.Config{
			Self:   p,
			System: cfg,
			Auth:   auth,
			Seed:   int64(p),
		}, node)
		if err != nil {
			t.Fatalf("NewHost(%s): %v", p, err)
		}
		hosts[p] = h
		replicas[p] = replica
	}
	for _, p := range cfg.All() {
		for _, q := range cfg.All() {
			if p != q {
				hosts[p].SetPeerAddr(q, hosts[q].Addr())
			}
		}
	}
	return hosts, replicas, backends
}

// TestDurableCloseDuringTrafficStorm races Host.Close against
// submitters on a storage-backed cluster, under -race: every commit
// path now also appends and fsyncs WAL records, so this exercises the
// store's flush-on-stop against in-flight group commits. Close must not
// deadlock, double-Close stays nil, and no append may panic into a
// closed store.
func TestDurableCloseDuringTrafficStorm(t *testing.T) {
	hosts, replicas, _ := newDurableXPaxosCluster(t, 4, 1, 8)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 1; c <= 4; c++ {
		wg.Add(1)
		go func(client uint64) {
			defer wg.Done()
			seq := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				seq++
				s := seq
				hosts[1].Do(func() {
					replicas[1].Submit(&wire.Request{Client: client, Seq: s, Op: []byte("set k v")})
				})
			}
		}(uint64(c))
	}

	time.Sleep(100 * time.Millisecond)
	var closers sync.WaitGroup
	for _, h := range hosts {
		closers.Add(1)
		go func(h *transport.Host) {
			defer closers.Done()
			if err := h.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
			if err := h.Close(); err != nil {
				t.Errorf("second Close: %v, want nil", err)
			}
		}(h)
	}
	closers.Wait()
	close(stop)
	wg.Wait()
}

// TestDurableRestartOverTCP is the cmd/xpaxos -data-dir story on
// ephemeral ports: commit traffic, tear the whole cluster down, rebuild
// every host over the surviving backends, and demand each replica wakes
// up with its acknowledged history before any network message arrives.
func TestDurableRestartOverTCP(t *testing.T) {
	hosts, replicas, backends := newDurableXPaxosCluster(t, 4, 1, 1)

	const load = 15
	for i := 1; i <= load; i++ {
		seq := uint64(i)
		hosts[1].Do(func() {
			replicas[1].Submit(&wire.Request{Client: 7, Seq: seq, Op: []byte("set k v")})
		})
	}
	if !waitFor(t, 5*time.Second, func() bool {
		var done uint64
		hosts[1].Do(func() { done = replicas[1].LastExecuted() })
		return done >= load
	}) {
		t.Fatal("cluster did not commit the warm-up load")
	}

	before := make(map[ids.ProcessID][]xpaxos.Execution, len(hosts))
	for p, h := range hosts {
		p, r := p, replicas[p]
		h.Do(func() { before[p] = r.Executions() })
	}
	for p, h := range hosts {
		if err := h.Close(); err != nil {
			t.Fatalf("Close(%s): %v", p, err)
		}
	}

	cfg := ids.MustConfig(4, 1)
	auth := crypto.NewHMACRing(cfg, []byte("durable-secret"))
	for _, p := range cfg.All() {
		nodeOpts := core.DefaultNodeOptions()
		nodeOpts.HeartbeatPeriod = 25 * time.Millisecond
		nodeOpts.Storage = backends[p]
		node, replica := xpaxos.NewQSNode(xpaxos.Options{CheckpointInterval: 16}, nodeOpts)
		h, err := transport.NewHost(transport.Config{
			Self:   p,
			System: cfg,
			Auth:   auth,
			Seed:   int64(p) + 100,
		}, node)
		if err != nil {
			t.Fatalf("reopen NewHost(%s): %v", p, err)
		}
		defer h.Close()
		var after []xpaxos.Execution
		h.Do(func() { after = replica.Executions() })
		if len(after) < len(before[p]) {
			t.Fatalf("%s recovered %d executions, had acknowledged %d", p, len(after), len(before[p]))
		}
		for k := range before[p] {
			if before[p][k].String() != after[k].String() {
				t.Fatalf("%s diverged at execution %d: %s vs %s", p, k, before[p][k], after[k])
			}
		}
	}
}
