package transport_test

import (
	"net"
	"testing"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/crypto"
	"quorumselect/internal/follower"
	"quorumselect/internal/ids"
	"quorumselect/internal/transport"
	"quorumselect/internal/wire"
	"quorumselect/internal/xpaxos"
)

// newQSCluster launches n quorum-selection Hosts on ephemeral localhost
// ports and wires all addresses.
func newQSCluster(t *testing.T, n, f int, hb time.Duration) (map[ids.ProcessID]*transport.Host, map[ids.ProcessID]*core.Node) {
	t.Helper()
	cfg := ids.MustConfig(n, f)
	auth := crypto.NewHMACRing(cfg, []byte("cluster-secret"))
	hosts := make(map[ids.ProcessID]*transport.Host, n)
	nodes := make(map[ids.ProcessID]*core.Node, n)
	for _, p := range cfg.All() {
		opts := core.DefaultNodeOptions()
		opts.HeartbeatPeriod = hb
		node := core.NewNode(opts)
		host, err := transport.NewHost(transport.Config{
			Self:   p,
			System: cfg,
			Auth:   auth,
			Seed:   int64(p),
		}, node)
		if err != nil {
			t.Fatalf("NewHost(%s): %v", p, err)
		}
		hosts[p] = host
		nodes[p] = node
	}
	for _, p := range cfg.All() {
		for _, q := range cfg.All() {
			if p != q {
				hosts[p].SetPeerAddr(q, hosts[q].Addr())
			}
		}
	}
	t.Cleanup(func() {
		for _, h := range hosts {
			h.Close()
		}
	})
	return hosts, nodes
}

func waitFor(t *testing.T, timeout time.Duration, pred func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if pred() {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return pred()
}

func TestQuorumSelectionOverTCP(t *testing.T) {
	hosts, nodes := newQSCluster(t, 4, 1, 0)
	// Inject a suspicion at p1 (on its event loop) and wait for
	// agreement on {p1,p3,p4} everywhere.
	hosts[1].Do(func() {
		nodes[1].Selector.OnSuspected(ids.NewProcSet(2))
	})
	want := ids.NewQuorum([]ids.ProcessID{1, 3, 4})
	ok := waitFor(t, 5*time.Second, func() bool {
		for p, n := range nodes {
			agreed := false
			hosts[p].Do(func() { agreed = n.CurrentQuorum().Equal(want) })
			if !agreed {
				return false
			}
		}
		return true
	})
	if !ok {
		for p, n := range nodes {
			var q ids.Quorum
			hosts[p].Do(func() { q = n.CurrentQuorum() })
			t.Logf("%s: %s", p, q)
		}
		t.Fatal("quorum selection did not converge over TCP")
	}
}

func TestXPaxosOverTCP(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	auth := crypto.NewHMACRing(cfg, []byte("cluster-secret"))
	hosts := make(map[ids.ProcessID]*transport.Host, cfg.N)
	replicas := make(map[ids.ProcessID]*xpaxos.Replica, cfg.N)
	for _, p := range cfg.All() {
		opts := core.DefaultNodeOptions()
		opts.HeartbeatPeriod = 0
		node, replica := xpaxos.NewQSNode(xpaxos.Options{}, opts)
		host, err := transport.NewHost(transport.Config{Self: p, System: cfg, Auth: auth, Seed: int64(p)}, node)
		if err != nil {
			t.Fatalf("NewHost(%s): %v", p, err)
		}
		hosts[p] = host
		replicas[p] = replica
	}
	for _, p := range cfg.All() {
		for _, q := range cfg.All() {
			if p != q {
				hosts[p].SetPeerAddr(q, hosts[q].Addr())
			}
		}
	}
	defer func() {
		for _, h := range hosts {
			h.Close()
		}
	}()

	for i := 1; i <= 3; i++ {
		seq := uint64(i)
		hosts[1].Do(func() {
			replicas[1].Submit(&wire.Request{Client: 1, Seq: seq, Op: []byte("set k v")})
		})
	}
	ok := waitFor(t, 5*time.Second, func() bool {
		for _, p := range []ids.ProcessID{1, 2, 3} {
			var exec uint64
			hosts[p].Do(func() { exec = replicas[p].LastExecuted() })
			if exec < 3 {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("XPaxos over TCP did not execute the requests")
	}
}

func TestBadSignatureRejectedOverTCP(t *testing.T) {
	hosts, nodes := newQSCluster(t, 4, 1, 0)
	// A forged UPDATE (bad signature) must not corrupt the store.
	forged := &wire.Update{Owner: 3, Row: []uint64{9, 9, 9, 9}, Sig: []byte("forged")}
	hosts[2].Do(func() {
		// Send directly from p2's env path by injecting through the
		// node's Receive (simulating a hostile frame).
		nodes[2].Receive(3, forged)
	})
	time.Sleep(200 * time.Millisecond)
	var v uint64
	hosts[2].Do(func() { v = nodes[2].Store.Value(3, 1) })
	if v != 0 {
		t.Errorf("forged update merged: matrix[3][1] = %d", v)
	}
}

func TestFollowerSelectionOverTCP(t *testing.T) {
	// Algorithm 2 (FIFO-dependent: UPDATE before FOLLOWERS) must hold
	// on real TCP links, which are FIFO per connection.
	cfg := ids.MustConfig(7, 2)
	auth := crypto.NewHMACRing(cfg, []byte("cluster-secret"))
	hosts := make(map[ids.ProcessID]*transport.Host, cfg.N)
	nodes := make(map[ids.ProcessID]*follower.Node, cfg.N)
	for _, p := range cfg.All() {
		opts := follower.DefaultNodeOptions()
		opts.HeartbeatPeriod = 0
		node := follower.NewNode(opts)
		host, err := transport.NewHost(transport.Config{Self: p, System: cfg, Auth: auth, Seed: int64(p)}, node)
		if err != nil {
			t.Fatalf("NewHost(%s): %v", p, err)
		}
		hosts[p] = host
		nodes[p] = node
	}
	for _, p := range cfg.All() {
		for _, q := range cfg.All() {
			if p != q {
				hosts[p].SetPeerAddr(q, hosts[q].Addr())
			}
		}
	}
	t.Cleanup(func() {
		for _, h := range hosts {
			h.Close()
		}
	})

	// p3 suspects the default leader p1: the leader moves to p2 and p2
	// broadcasts a FOLLOWERS choice everyone installs.
	hosts[3].Do(func() { nodes[3].Selector.OnSuspected(ids.NewProcSet(1)) })
	ok := waitFor(t, 10*time.Second, func() bool {
		for p := range nodes {
			var leader ids.ProcessID
			var stable bool
			hosts[p].Do(func() {
				leader = nodes[p].Selector.Leader()
				stable = nodes[p].Selector.Stable()
			})
			if leader != 2 || !stable {
				return false
			}
		}
		return true
	})
	if !ok {
		for p, n := range nodes {
			var q ids.Quorum
			var leader ids.ProcessID
			hosts[p].Do(func() { q, leader = n.CurrentQuorum(), n.Selector.Leader() })
			t.Logf("%s: leader=%s quorum=%s", p, leader, q)
		}
		t.Fatal("follower selection did not converge over TCP")
	}
	// Agreement on the full quorum.
	var want ids.Quorum
	hosts[1].Do(func() { want = nodes[1].CurrentQuorum() })
	for p, n := range nodes {
		var got ids.Quorum
		hosts[p].Do(func() { got = n.CurrentQuorum() })
		if !got.Equal(want) {
			t.Errorf("%s: quorum %s, want %s", p, got, want)
		}
	}
}

func TestHostCloseIdempotent(t *testing.T) {
	hosts, _ := newQSCluster(t, 4, 1, 0)
	if err := hosts[1].Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := hosts[1].Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestHostSurvivesHostileFrames(t *testing.T) {
	// Raw TCP garbage — bad hellos, oversized length prefixes,
	// undecodable frames — must neither crash the host nor disturb the
	// protocol.
	hosts, nodes := newQSCluster(t, 4, 1, 0)
	addr := hosts[1].Addr()

	send := func(data []byte) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		conn.Write(data)
		conn.Close()
	}
	// Truncated hello.
	send([]byte{0x01})
	// Hello naming an invalid process.
	send([]byte{0xff, 0xff, 0xff, 0xff})
	// Valid hello (p2), then an oversized frame length.
	send([]byte{0, 0, 0, 2, 0xff, 0xff, 0xff, 0xff})
	// Valid hello, zero-length frame.
	send([]byte{0, 0, 0, 2, 0, 0, 0, 0})
	// Valid hello, frame that does not decode.
	send([]byte{0, 0, 0, 2, 0, 0, 0, 3, 0xEE, 0x01, 0x02})

	// The host keeps working: a genuine suspicion still converges.
	hosts[1].Do(func() { nodes[1].Selector.OnSuspected(ids.NewProcSet(2)) })
	want := ids.NewQuorum([]ids.ProcessID{1, 3, 4})
	ok := waitFor(t, 5*time.Second, func() bool {
		var agreed bool
		hosts[3].Do(func() { agreed = nodes[3].CurrentQuorum().Equal(want) })
		return agreed
	})
	if !ok {
		t.Fatal("host stopped working after hostile frames")
	}
}

func TestHeartbeatsOverTCP(t *testing.T) {
	hosts, nodes := newQSCluster(t, 4, 1, 50*time.Millisecond)
	// With everyone alive, no suspicions should accumulate.
	time.Sleep(500 * time.Millisecond)
	for p, n := range nodes {
		var sus ids.ProcSet
		hosts[p].Do(func() { sus = n.Detector.Suspected() })
		if !sus.Empty() {
			t.Errorf("%s suspects %s on a healthy TCP cluster", p, sus)
		}
	}
	// Kill p4: the rest must eventually suspect and exclude it.
	hosts[4].Close()
	want := ids.NewQuorum([]ids.ProcessID{1, 2, 3})
	ok := waitFor(t, 10*time.Second, func() bool {
		for _, p := range []ids.ProcessID{1, 2, 3} {
			var q ids.Quorum
			hosts[p].Do(func() { q = nodes[p].CurrentQuorum() })
			if !q.Equal(want) {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("crashed host was not excluded over TCP")
	}
}
