package core_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"quorumselect/internal/ids"
	"quorumselect/internal/metrics"
	"quorumselect/internal/obs"
	"quorumselect/internal/sim"
)

// TestObservabilityEndToEnd drives the full composition (failure
// detector → suspicion store → selector) through a crash and checks
// that the run is observable from the outside: typed events on the bus,
// detection latency in the histogram, and gauges tracking store state.
func TestObservabilityEndToEnd(t *testing.T) {
	opts := quietOpts()
	opts.HeartbeatPeriod = 25 * time.Millisecond
	// Crash p2: a default-quorum member, so the crash must force a
	// quorum change as well as suspicions.
	fx := newFixture(t, 4, 1, opts, sim.Options{}, ids.NewProcSet(2))
	fx.net.Run(2 * time.Second)

	bus := fx.net.Events()
	if bus.Total() == 0 {
		t.Fatal("no events published during the run")
	}
	if got := len(bus.OfType(obs.TypeExpect)); got == 0 {
		t.Error("no EXPECT events from heartbeat expectations")
	}
	suspected := bus.OfType(obs.TypeSuspected)
	if len(suspected) == 0 {
		t.Fatal("no SUSPECTED events after p2 crashed")
	}
	for _, e := range suspected {
		if e.Subject != 2 {
			t.Errorf("SUSPECTED subject = %s, want p2 (event %s)", e.Subject, e)
		}
		if e.Node == 2 {
			t.Errorf("crashed p2 emitted an event: %s", e)
		}
	}
	qc := bus.OfType(obs.TypeQuorumChange)
	if len(qc) == 0 {
		t.Fatal("no QUORUM_CHANGE events after the crash")
	}
	if qc[0].Detail == "" {
		t.Error("QUORUM_CHANGE carries no quorum membership detail")
	}

	reg := fx.net.Metrics()
	h, ok := reg.Hist("fd.detection.latency.seconds")
	if !ok || h.Count == 0 {
		t.Fatal("fd.detection.latency.seconds histogram empty")
	}
	if p50 := h.Percentile(50); p50 <= 0 || p50 > 2 {
		t.Errorf("detection latency p50 = %v s, want within (0, 2]", p50)
	}
	if v := reg.Gauge("suspicion.store.size", metrics.L{Key: "node", Value: "p1"}); v <= 0 {
		t.Errorf("suspicion.store.size{node=p1} = %v, want positive", v)
	}
	if v := reg.Gauge("fd.expectations.pending", metrics.L{Key: "node", Value: "p1"}); v < 0 {
		t.Errorf("fd.expectations.pending{node=p1} = %v, want non-negative", v)
	}
	if reg.Counter("core.quorum.recomputed") == 0 {
		t.Error("core.quorum.recomputed never incremented")
	}
	if h, ok := reg.Hist("core.quorum.update.seconds"); !ok || h.Count == 0 {
		t.Error("core.quorum.update.seconds histogram empty")
	}

	// Events are timeline-ordered and carry the virtual clock.
	events := bus.Events()
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("event seq gap: %d then %d", events[i-1].Seq, events[i].Seq)
		}
	}
}

// TestPerfCountersExposed checks the hot-path instrumentation added
// with the incremental suspect-graph cache: selector memoization
// hit/miss counters, the explicit-rebuild counter, and the graph.n
// gauge — and that all of them survive into the Prometheus exposition.
func TestPerfCountersExposed(t *testing.T) {
	fx := newFixture(t, 4, 1, quietOpts(), sim.Options{}, ids.NewProcSet())
	fx.net.Run(100 * time.Millisecond)
	n1 := fx.nodes[1]
	n1.Selector.OnSuspected(ids.NewProcSet(2))
	fx.net.Run(fx.net.Now() + time.Second)
	// Same graph version, same q: a second evaluation must hit the memo.
	n1.Selector.UpdateQuorum()

	reg := fx.net.Metrics()
	if reg.Counter("selector.iset.cache_misses") == 0 {
		t.Error("selector.iset.cache_misses never incremented")
	}
	if reg.Counter("selector.iset.cache_hits") == 0 {
		t.Error("selector.iset.cache_hits never incremented")
	}
	if reg.Counter("suspicion.graph.rebuilds") != 0 {
		t.Errorf("suspicion.graph.rebuilds = %d without any explicit rebuild",
			reg.Counter("suspicion.graph.rebuilds"))
	}
	n1.Store.RebuildSuspectGraphAt(1)
	if reg.Counter("suspicion.graph.rebuilds") != 1 {
		t.Errorf("suspicion.graph.rebuilds = %d, want 1", reg.Counter("suspicion.graph.rebuilds"))
	}
	if v := reg.Gauge("graph.n", metrics.L{Key: "node", Value: "p1"}); v != 4 {
		t.Errorf("graph.n{node=p1} = %v, want 4", v)
	}

	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatalf("prometheus exposition failed: %v", err)
	}
	body := buf.String()
	for _, name := range []string{
		"selector.iset.cache_hits",
		"selector.iset.cache_misses",
		"suspicion.graph.rebuilds",
		"graph.n",
	} {
		if !strings.Contains(body, metrics.SanitizeName(name)) {
			t.Errorf("/metrics exposition missing %s (as %s)", name, metrics.SanitizeName(name))
		}
	}
}

// TestObservabilityDeterministic asserts the event stream is
// reproducible: same seed, same nodes → byte-identical timelines.
func TestObservabilityDeterministic(t *testing.T) {
	run := func() string {
		fx := newFixture(t, 4, 1, quietOpts(), sim.Options{Seed: 7}, ids.NewProcSet())
		fx.nodes[1].Selector.OnSuspected(ids.NewProcSet(2))
		fx.net.Run(time.Second)
		out := ""
		for _, e := range fx.net.Events().Events() {
			out += e.String() + "\n"
		}
		return out
	}
	a, b := run(), run()
	if a == "" {
		t.Fatal("no events captured")
	}
	if a != b {
		t.Fatalf("event timelines differ between identical runs:\n%s\nvs\n%s", a, b)
	}
}
