package core

import (
	"time"

	"quorumselect/internal/fd"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/suspicion"
	"quorumselect/internal/wire"
)

// Application is the top module of Figure 1: it receives every
// delivered non-UPDATE message and every ⟨QUORUM⟩ event, and may issue
// expectations and detections through the Detector it is given in
// Attach.
type Application interface {
	// Attach hands the application its environment and failure
	// detector before any event is delivered.
	Attach(env runtime.Env, detector *fd.Detector)
	// Deliver receives an authenticated application message.
	Deliver(from ids.ProcessID, m wire.Message)
	// OnQuorum receives ⟨QUORUM, Q⟩ from the selection module.
	OnQuorum(q ids.Quorum)
}

// NodeOptions configures a composed quorum-selection process.
type NodeOptions struct {
	// FD configures the failure detector.
	FD fd.Options
	// Store configures the suspicion store.
	Store suspicion.Options
	// HeartbeatPeriod enables the §II heartbeat traffic when positive.
	HeartbeatPeriod time.Duration
	// App is the optional application module (e.g. an XPaxos replica).
	App Application
}

// DefaultNodeOptions returns the standard composition: adaptive failure
// detection, update forwarding, heartbeats every 25ms.
func DefaultNodeOptions() NodeOptions {
	return NodeOptions{
		FD:              fd.DefaultOptions(),
		Store:           suspicion.DefaultOptions(),
		HeartbeatPeriod: 25 * time.Millisecond,
	}
}

// Node is one complete process of the paper's architecture (Fig 1):
// network → failure detector → {suspicion store → selector, application}.
// It implements runtime.Node for both the simulator and the TCP
// transport.
type Node struct {
	opts NodeOptions

	env      runtime.Env
	Detector *fd.Detector
	Store    *suspicion.Store
	Selector *Selector
	HB       *fd.Heartbeater

	quorumLog []ids.Quorum
}

var _ runtime.Node = (*Node)(nil)

// NewNode creates an unstarted node; the simulator or transport calls
// Init. A failure-detector base timeout below 3× the heartbeat period
// is raised to it: an expectation that cannot outlive the gap between
// two heartbeats suspects every correct process on schedule.
func NewNode(opts NodeOptions) *Node {
	if opts.HeartbeatPeriod > 0 && opts.FD.BaseTimeout < 3*opts.HeartbeatPeriod {
		opts.FD.BaseTimeout = 3 * opts.HeartbeatPeriod
	}
	return &Node{opts: opts}
}

// Init implements runtime.Node.
func (n *Node) Init(env runtime.Env) {
	n.env = env
	n.Detector = fd.New(n.opts.FD)
	n.Store = suspicion.New(env.Config(), n.opts.Store)
	n.Selector = NewSelector(env, n.Store, func(q ids.Quorum) {
		n.quorumLog = append(n.quorumLog, q)
		if n.opts.App != nil {
			n.opts.App.OnQuorum(q)
		}
	})
	n.Store.Bind(env, n.Selector.UpdateQuorum)
	n.Detector.Bind(env, n.deliver, n.Selector.OnSuspected)
	if n.opts.App != nil {
		n.opts.App.Attach(env, n.Detector)
	}
	if n.opts.HeartbeatPeriod > 0 {
		n.HB = fd.NewHeartbeater(n.Detector, n.opts.HeartbeatPeriod)
		n.HB.Start(env)
	}
}

// Receive implements runtime.Node: all network traffic enters through
// the failure detector (Fig 1).
func (n *Node) Receive(from ids.ProcessID, m wire.Message) {
	n.Detector.Receive(from, m)
}

// deliver demultiplexes authenticated messages: UPDATEs go to the
// suspicion store, heartbeats are consumed by the failure detector's
// expectations, everything else goes to the application.
func (n *Node) deliver(from ids.ProcessID, m wire.Message) {
	switch msg := m.(type) {
	case *wire.Update:
		n.Store.HandleUpdate(msg)
	case *wire.Heartbeat:
		// Matching already happened inside the detector; heartbeats
		// carry no payload for the application.
	default:
		if n.opts.App != nil {
			n.opts.App.Deliver(from, m)
		}
	}
}

// Quorums returns every quorum issued so far, in order.
func (n *Node) Quorums() []ids.Quorum {
	out := make([]ids.Quorum, len(n.quorumLog))
	copy(out, n.quorumLog)
	return out
}

// CurrentQuorum returns the selector's current quorum.
func (n *Node) CurrentQuorum() ids.Quorum { return n.Selector.Current() }
