package core

import (
	"time"

	"quorumselect/internal/fd"
	"quorumselect/internal/host"
	"quorumselect/internal/ids"
	"quorumselect/internal/quorum"
	"quorumselect/internal/runtime"
	"quorumselect/internal/storage"
	"quorumselect/internal/suspicion"
)

// Application is the top module of Figure 1: it receives every
// delivered non-UPDATE message and every ⟨QUORUM⟩ event, and may issue
// expectations and detections through the Detector it is given in
// Attach. It is exactly the replica-host kernel's quorum-consuming
// application contract.
type Application = host.QuorumApp

// NodeOptions configures a composed quorum-selection process.
type NodeOptions struct {
	// FD configures the failure detector.
	FD fd.Options
	// Store configures the suspicion store.
	Store suspicion.Options
	// HeartbeatPeriod enables the §II heartbeat traffic when positive.
	HeartbeatPeriod time.Duration
	// App is the optional application module (e.g. an XPaxos replica).
	App Application
	// Storage, when set, makes the node durable (see host.Options.Storage):
	// the kernel recovers suspicion and application state at Init and
	// persists from then on.
	Storage storage.Backend
	// StorageOptions tune the WAL (see host.Options.StorageOptions).
	StorageOptions storage.Options
	// Quorum is the generalized quorum system the selector runs on; nil
	// means the paper's n−f threshold system from the configuration.
	// Callers must validate non-default specs with quorum.Check before
	// booting a node on them — an intersection-violating spec lets a
	// partitioned log commit on both sides.
	Quorum quorum.System
}

// DefaultNodeOptions returns the standard composition: adaptive failure
// detection, update forwarding, heartbeats every 25ms.
func DefaultNodeOptions() NodeOptions {
	return NodeOptions{
		FD:              fd.DefaultOptions(),
		Store:           suspicion.DefaultOptions(),
		HeartbeatPeriod: 25 * time.Millisecond,
	}
}

// Node is one complete process of the paper's architecture (Fig 1):
// network → failure detector → {suspicion store → selector, application}.
// It is a thin shell over the replica-host kernel (internal/host),
// composed in ModeQuorumSelection with the Algorithm 1 selector; the
// embedded kernel provides runtime.Node, the Detector/Store/HB modules,
// Quorums/CurrentQuorum accounting, and the Stop lifecycle for both the
// simulator and the TCP transport.
type Node struct {
	*host.Host
	// Selector is the Algorithm 1 selection module, exposed with its
	// concrete type for experiments that inspect Epoch/Leader/Stable.
	Selector *Selector
}

var (
	_ runtime.Node    = (*Node)(nil)
	_ runtime.Stopper = (*Node)(nil)
	_ host.Selection  = (*Selector)(nil)
)

// NewNode creates an unstarted node; the simulator or transport calls
// Init. The kernel floors a failure-detector base timeout below 3× the
// heartbeat period (see host.New).
func NewNode(opts NodeOptions) *Node {
	n := &Node{}
	n.Host = host.New(host.Options{
		Mode:            host.ModeQuorumSelection,
		FD:              opts.FD,
		Store:           opts.Store,
		HeartbeatPeriod: opts.HeartbeatPeriod,
		App:             opts.App,
		Storage:         opts.Storage,
		StorageOptions:  opts.StorageOptions,
		NewSelection: func(env runtime.Env, store *suspicion.Store, _ *fd.Detector, issue func(ids.Quorum)) host.Selection {
			n.Selector = NewSelectorSystem(env, store, opts.Quorum, issue)
			return n.Selector
		},
	})
	return n
}
