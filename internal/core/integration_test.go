package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"quorumselect/internal/adversary"
	"quorumselect/internal/core"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/wire"
)

// TestRandomizedFaultInjection drives full quorum-selection stacks
// through randomized fault scenarios (crash, burst omission, jitter,
// unbounded growing delay — each confined to at most f processes) and
// checks the paper's §IV-A properties at the end of every run:
//
//   - Agreement: all correct processes hold the same quorum.
//   - No suspicion: that quorum is an independent set of every correct
//     process's current suspect graph.
//   - Termination: after the convergence phase, a long trailing window
//     sees no further quorum changes, and the total number of changes
//     is far below the trivial bound.
func TestRandomizedFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized integration test")
	}
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runRandomScenario(t, seed)
		})
	}
}

func runRandomScenario(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	f := 1 + rng.Intn(2)       // 1..2
	n := 3*f + 1 + rng.Intn(3) // 3f+1 .. 3f+3
	cfg := ids.MustConfig(n, f)

	// Faulty set: random f distinct processes.
	faulty := ids.NewProcSet()
	for faulty.Len() < f {
		faulty.Add(ids.ProcessID(rng.Intn(n) + 1))
	}

	// Assign each faulty process a failure class.
	var filters []sim.Filter
	crashed := ids.NewProcSet()
	classes := make(map[ids.ProcessID]string, f)
	for _, p := range faulty.Sorted() {
		one := ids.NewProcSet(p)
		switch mode := rng.Intn(4); mode {
		case 0:
			crashed.Add(p)
			classes[p] = "crash"
		case 1:
			filters = append(filters, &adversary.BurstOmission{
				Faulty: one, On: 1500 * time.Millisecond, Off: 1500 * time.Millisecond,
			})
			classes[p] = "burst-omission"
		case 2:
			filters = append(filters, adversary.NewJitterDelay(one, 150*time.Millisecond, seed+int64(p)))
			classes[p] = "jitter"
		case 3:
			filters = append(filters, &adversary.SteppedDelay{
				Faulty: one, Step: 1500 * time.Millisecond, Every: 3 * time.Second,
			})
			classes[p] = "growing-delay"
		}
	}
	t.Logf("n=%d f=%d faulty=%v", n, f, classes)

	opts := core.DefaultNodeOptions()
	opts.HeartbeatPeriod = 25 * time.Millisecond
	nodes := make(map[ids.ProcessID]runtime.Node, n)
	correct := make(map[ids.ProcessID]*core.Node, n)
	for _, p := range cfg.All() {
		if crashed.Contains(p) {
			nodes[p] = silent{}
			continue
		}
		node := core.NewNode(opts)
		nodes[p] = node
		if !faulty.Contains(p) {
			correct[p] = node
		}
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{
		Seed:    seed,
		Latency: sim.UniformLatency(time.Millisecond, 8*time.Millisecond),
		Filter:  adversary.Chain(filters...),
	})

	// Convergence phase.
	net.Run(12 * time.Second)

	issued := make(map[ids.ProcessID]int, len(correct))
	for p, node := range correct {
		issued[p] = node.Selector.QuorumsIssued()
	}

	// Trailing window: Termination means no further changes.
	net.Run(net.Now() + 6*time.Second)
	for p, node := range correct {
		if node.Selector.QuorumsIssued() != issued[p] {
			t.Errorf("%s issued further quorums in the quiet window (%d -> %d)",
				p, issued[p], node.Selector.QuorumsIssued())
		}
		// A generous sanity bound on total churn.
		if node.Selector.QuorumsIssued() > n*n {
			t.Errorf("%s: %d quorum changes exceeds n²", p, node.Selector.QuorumsIssued())
		}
	}

	// Agreement across correct processes.
	var ref *core.Node
	for _, node := range correct {
		ref = node
		break
	}
	want := ref.CurrentQuorum()
	for p, node := range correct {
		if !node.CurrentQuorum().Equal(want) {
			t.Errorf("Agreement violated: %s has %s, want %s", p, node.CurrentQuorum(), want)
		}
	}

	// No suspicion: the quorum is independent in every correct
	// process's suspect graph.
	for p, node := range correct {
		g := node.Store.SuspectGraph()
		if !g.IsIndependentSet(want.Members) {
			t.Errorf("No-suspicion violated at %s: %s not independent in %s", p, want, g)
		}
	}

	// A permanently crashed process must have been excluded.
	for _, p := range crashed.Sorted() {
		if want.Contains(p) {
			t.Errorf("final quorum %s contains crashed %s", want, p)
		}
	}
}

// TestPartitionHealConvergence: during a partition the two sides
// suspect each other and select divergent quorums; once the partition
// heals, the eventually-consistent suspicion store reconciles and all
// correct processes re-agree (the paper's Agreement property is
// *eventual* — exactly this scenario).
func TestPartitionHealConvergence(t *testing.T) {
	// n=7, f=2: {p5, p7} are cut off — exactly f processes, so a valid
	// quorum still exists on the majority side (partitioning more than
	// f would violate the fault assumption and no quorum of n−f could
	// be selected at all).
	cfg := ids.MustConfig(7, 2)
	part := &adversary.Partition{Group: ids.NewProcSet(1, 2, 3, 4, 6), Heal: 3 * time.Second}
	opts := core.DefaultNodeOptions()
	opts.HeartbeatPeriod = 25 * time.Millisecond
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	coreNodes := make(map[ids.ProcessID]*core.Node, cfg.N)
	for _, p := range cfg.All() {
		node := core.NewNode(opts)
		coreNodes[p] = node
		nodes[p] = node
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{
		Latency: sim.ConstantLatency(2 * time.Millisecond),
		Filter:  part,
	})

	// During the partition the majority side {1,2,3,4,6} suspects the
	// minority {5,7} and selects a quorum without it.
	net.Run(2 * time.Second)
	qMaj := coreNodes[1].CurrentQuorum()
	for _, p := range []ids.ProcessID{5, 7} {
		if qMaj.Contains(p) {
			t.Errorf("majority-side quorum %s still contains partitioned %s", qMaj, p)
		}
	}

	// After healing, everyone reconciles: same quorum everywhere, no
	// current suspicions inside it.
	net.Run(10 * time.Second)
	want := coreNodes[1].CurrentQuorum()
	for p, n := range coreNodes {
		if !n.CurrentQuorum().Equal(want) {
			t.Errorf("after heal %s has %s, p1 has %s", p, n.CurrentQuorum(), want)
		}
		if !n.Store.SuspectGraph().IsIndependentSet(want.Members) {
			t.Errorf("after heal quorum %s not independent at %s", want, p)
		}
	}
	// And the system stays quiet (Termination).
	issued := coreNodes[2].Selector.QuorumsIssued()
	net.Run(net.Now() + 5*time.Second)
	if coreNodes[2].Selector.QuorumsIssued() != issued {
		t.Error("quorums kept changing after the partition healed")
	}
}

// TestEquivocatingUpdaterConverges runs a protocol-level Byzantine node
// that signs *different* suspicion rows to different peers (real
// message-level equivocation, not injected store writes). Per §VI-C,
// the max-merge store still converges — equivocation only makes the
// merged state grow faster — and the equivocator's claims get the
// quorum changed at most a bounded number of times.
func TestEquivocatingUpdaterConverges(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	opts := core.DefaultNodeOptions()
	opts.HeartbeatPeriod = 0
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	coreNodes := make(map[ids.ProcessID]*core.Node, cfg.N)
	for _, p := range cfg.All() {
		if p == 4 {
			nodes[p] = &equivocatingUpdater{}
			continue
		}
		node := core.NewNode(opts)
		coreNodes[p] = node
		nodes[p] = node
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{})
	net.Run(3 * time.Second)

	// All correct processes hold the pointwise max of the equivocated
	// rows and agree on one quorum.
	for p, n := range coreNodes {
		row := n.Store.Row(4)
		if row[0] != 2 || row[1] != 2 {
			t.Errorf("%s: row4 = %v, want pointwise max [2 2 0 0]", p, row)
		}
	}
	want := coreNodes[1].CurrentQuorum()
	for p, n := range coreNodes {
		if !n.CurrentQuorum().Equal(want) {
			t.Errorf("%s has %s, want %s", p, n.CurrentQuorum(), want)
		}
	}
}

// equivocatingUpdater is a Byzantine process that sends conflicting
// UPDATE rows to different peers (claiming it suspects p1 to some, p2
// to others, with different epoch stamps).
type equivocatingUpdater struct{ env runtime.Env }

func (e *equivocatingUpdater) Init(env runtime.Env) {
	e.env = env
	env.After(time.Millisecond, func() {
		env.Send(1, &wire.Update{Owner: 4, Row: []uint64{2, 0, 0, 0}, Sig: []byte{0}})
		env.Send(2, &wire.Update{Owner: 4, Row: []uint64{0, 2, 0, 0}, Sig: []byte{0}})
		env.Send(3, &wire.Update{Owner: 4, Row: []uint64{1, 1, 0, 0}, Sig: []byte{0}})
	})
}

func (e *equivocatingUpdater) Receive(ids.ProcessID, wire.Message) {}

// TestLemma2Randomized checks Lemma 2 across random runs: within one
// epoch, every quorum change at a correct process is preceded by a new
// suspect-graph edge connecting two members of its previous quorum.
// (Across an epoch advance the suspect graph is rebuilt from scratch,
// so the lemma — whose proof is about adding edges to a fixed G — does
// not constrain those changes.)
func TestLemma2Randomized(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n, f := 7, 2
		fx := newFixture(t, n, f, quietOpts(), sim.Options{Seed: seed}, ids.NewProcSet())
		observer := fx.nodes[7]

		prev := observer.CurrentQuorum()
		prevEpoch := observer.Selector.Epoch()
		sameEpochChanges := 0

		for step := 0; step < 12; step++ {
			a := ids.ProcessID(rng.Intn(n) + 1)
			b := ids.ProcessID(rng.Intn(n) + 1)
			if a == b {
				continue
			}
			fx.nodes[a].Selector.OnSuspected(ids.NewProcSet(b))
			fx.net.Run(fx.net.Now() + time.Second)
			cur := observer.CurrentQuorum()
			curEpoch := observer.Selector.Epoch()
			if !cur.Equal(prev) && curEpoch == prevEpoch {
				sameEpochChanges++
				g := observer.Store.SuspectGraph()
				found := false
				for _, e := range g.Edges() {
					if prev.Contains(e.U) && prev.Contains(e.V) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("seed %d: same-epoch quorum change %s -> %s with no edge inside the old quorum (G=%s)",
						seed, prev, cur, g)
				}
			}
			prev, prevEpoch = cur, curEpoch
		}
		if sameEpochChanges == 0 {
			t.Logf("seed %d: no same-epoch changes observed", seed)
		}
	}
}
