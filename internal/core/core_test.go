package core_test

import (
	"testing"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/wire"
)

// silent is a crashed process: it never sends and ignores everything.
type silent struct{}

func (silent) Init(runtime.Env)                    {}
func (silent) Receive(ids.ProcessID, wire.Message) {}

type fixture struct {
	net   *sim.Network
	nodes map[ids.ProcessID]*core.Node
}

// newFixture builds a network of composed core.Nodes; crashed processes
// are replaced by silent stubs.
func newFixture(t *testing.T, n, f int, opts core.NodeOptions, simOpts sim.Options, crashed ids.ProcSet) *fixture {
	t.Helper()
	cfg := ids.MustConfig(n, f)
	nodes := make(map[ids.ProcessID]runtime.Node, n)
	coreNodes := make(map[ids.ProcessID]*core.Node, n)
	for _, p := range cfg.All() {
		if crashed.Contains(p) {
			nodes[p] = silent{}
			continue
		}
		node := core.NewNode(opts)
		coreNodes[p] = node
		nodes[p] = node
	}
	return &fixture{net: sim.NewNetwork(cfg, nodes, simOpts), nodes: coreNodes}
}

func quietOpts() core.NodeOptions {
	opts := core.DefaultNodeOptions()
	opts.HeartbeatPeriod = 0 // suspicions injected manually
	return opts
}

func TestInitialQuorumIsDefault(t *testing.T) {
	fx := newFixture(t, 4, 1, quietOpts(), sim.Options{}, ids.NewProcSet())
	fx.net.Run(200 * time.Millisecond)
	for p, n := range fx.nodes {
		want := ids.NewQuorum([]ids.ProcessID{1, 2, 3})
		if !n.CurrentQuorum().Equal(want) {
			t.Errorf("%s: quorum = %s, want default %s", p, n.CurrentQuorum(), want)
		}
		if len(n.Quorums()) != 0 {
			t.Errorf("%s issued %d quorums without any suspicion", p, len(n.Quorums()))
		}
	}
}

func TestSingleSuspicionChangesQuorum(t *testing.T) {
	fx := newFixture(t, 4, 1, quietOpts(), sim.Options{}, ids.NewProcSet())
	// p1's failure detector suspects p2 (e.g. an omitted COMMIT).
	fx.nodes[1].Selector.OnSuspected(ids.NewProcSet(2))
	fx.net.Run(time.Second)
	want := ids.NewQuorum([]ids.ProcessID{1, 3, 4})
	for p, n := range fx.nodes {
		if !n.CurrentQuorum().Equal(want) {
			t.Errorf("%s: quorum = %s, want %s", p, n.CurrentQuorum(), want)
		}
	}
}

func TestAgreementAndNoSuspicion(t *testing.T) {
	// Several processes suspect several others concurrently; all
	// correct processes must converge to the same quorum, and that
	// quorum must be an independent set of the final suspect graph.
	fx := newFixture(t, 7, 2, quietOpts(), sim.Options{
		Seed:    3,
		Latency: sim.UniformLatency(time.Millisecond, 25*time.Millisecond),
	}, ids.NewProcSet())
	fx.nodes[1].Selector.OnSuspected(ids.NewProcSet(6))
	fx.nodes[3].Selector.OnSuspected(ids.NewProcSet(7))
	fx.nodes[5].Selector.OnSuspected(ids.NewProcSet(6, 7))
	fx.net.Run(3 * time.Second)

	first := fx.nodes[1].CurrentQuorum()
	for p, n := range fx.nodes {
		if !n.CurrentQuorum().Equal(first) {
			t.Errorf("Agreement violated: %s has %s, p1 has %s", p, n.CurrentQuorum(), first)
		}
		g := n.Store.SuspectGraph()
		if !g.IsIndependentSet(n.CurrentQuorum().Members) {
			t.Errorf("No-suspicion violated at %s: quorum %s not independent in %s",
				p, n.CurrentQuorum(), g)
		}
	}
	// The suspected processes p6, p7 must be excluded.
	if first.Contains(6) || first.Contains(7) {
		t.Errorf("final quorum %s contains suspected processes", first)
	}
}

func TestCrashedProcessExcluded(t *testing.T) {
	// With heartbeats on, a crashed p4 is suspected by everyone and
	// excluded; the quorum converges to {p1,p2,p3} and stays there
	// (Termination).
	opts := core.DefaultNodeOptions()
	opts.HeartbeatPeriod = 20 * time.Millisecond
	fx := newFixture(t, 4, 1, opts, sim.Options{Latency: sim.ConstantLatency(2 * time.Millisecond)},
		ids.NewProcSet(4))
	fx.net.Run(2 * time.Second)
	want := ids.NewQuorum([]ids.ProcessID{1, 2, 3})
	var issuedBefore []int
	for p, n := range fx.nodes {
		if !n.CurrentQuorum().Equal(want) {
			t.Errorf("%s: quorum = %s, want %s", p, n.CurrentQuorum(), want)
		}
		issuedBefore = append(issuedBefore, n.Selector.QuorumsIssued())
		_ = p
	}
	// Run much longer: no further quorum changes (Termination).
	fx.net.Run(fx.net.Now() + 3*time.Second)
	i := 0
	for p, n := range fx.nodes {
		if n.Selector.QuorumsIssued() != issuedBefore[i] {
			t.Errorf("%s kept changing quorums after convergence", p)
		}
		i++
	}
}

func TestEpochAdvanceOnInconsistentSuspicions(t *testing.T) {
	// Edges (1,2) and (3,4) on n=4, q=3 leave no independent set of
	// size 3: processes must advance the epoch. Suspicions are injected
	// once (and the injecting detectors then report empty sets), so
	// after the epoch advance the stale edges vanish and the default
	// quorum becomes available again.
	fx := newFixture(t, 4, 1, quietOpts(), sim.Options{}, ids.NewProcSet())
	fx.nodes[1].Selector.OnSuspected(ids.NewProcSet(2))
	fx.net.Run(300 * time.Millisecond)
	// Everyone now excludes p2.
	fx.nodes[1].Selector.OnSuspected(ids.NewProcSet()) // p1's suspicion canceled
	fx.nodes[3].Selector.OnSuspected(ids.NewProcSet(4))
	fx.net.Run(fx.net.Now() + time.Second)

	for p, n := range fx.nodes {
		if n.Selector.Epoch() < 2 {
			t.Errorf("%s: epoch = %d, want ≥ 2 after inconsistent suspicions", p, n.Selector.Epoch())
		}
	}
	// In the new epoch only p3's re-stamped suspicion of p4 survives:
	// the quorum must be {1,2,3} everywhere.
	want := ids.NewQuorum([]ids.ProcessID{1, 2, 3})
	for p, n := range fx.nodes {
		if !n.CurrentQuorum().Equal(want) {
			t.Errorf("%s: quorum = %s, want %s (epoch %d)", p, n.CurrentQuorum(), want, n.Selector.Epoch())
		}
	}
}

func TestLemma2NewQuorumOnlyAfterEdgeInsideQuorum(t *testing.T) {
	// Lemma 2: a process issues a new quorum only after an edge
	// appears between two members of its current quorum. Suspicions
	// against non-members must not change the quorum.
	fx := newFixture(t, 5, 2, quietOpts(), sim.Options{}, ids.NewProcSet())
	fx.nodes[1].Selector.OnSuspected(ids.NewProcSet(4))
	fx.net.Run(time.Second)
	q1 := fx.nodes[2].CurrentQuorum() // {1,2,3}: p4 was never in it
	if !q1.Equal(ids.NewQuorum([]ids.ProcessID{1, 2, 3})) {
		t.Fatalf("quorum = %s", q1)
	}
	issued := fx.nodes[2].Selector.QuorumsIssued()
	if issued != 0 {
		t.Errorf("suspicion outside the quorum issued a quorum change (%d)", issued)
	}
	// Now an edge inside the quorum: p2 suspects p3.
	fx.nodes[2].Selector.OnSuspected(ids.NewProcSet(3))
	fx.net.Run(fx.net.Now() + time.Second)
	if fx.nodes[2].Selector.QuorumsIssued() == issued {
		t.Error("edge inside the quorum did not trigger a change")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []string {
		fx := newFixture(t, 7, 2, quietOpts(), sim.Options{
			Seed:    11,
			Latency: sim.UniformLatency(time.Millisecond, 30*time.Millisecond),
		}, ids.NewProcSet())
		fx.nodes[2].Selector.OnSuspected(ids.NewProcSet(1, 5))
		fx.nodes[6].Selector.OnSuspected(ids.NewProcSet(2))
		fx.net.Run(2 * time.Second)
		var out []string
		for _, p := range fx.net.Config().All() {
			for _, q := range fx.nodes[p].Quorums() {
				out = append(out, p.String()+":"+q.String())
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("quorum logs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestSelectorBoundsAccounting(t *testing.T) {
	fx := newFixture(t, 4, 1, quietOpts(), sim.Options{}, ids.NewProcSet())
	fx.nodes[1].Selector.OnSuspected(ids.NewProcSet(2))
	fx.net.Run(time.Second)
	n := fx.nodes[3]
	if n.Selector.QuorumsIssued() != 1 {
		t.Errorf("QuorumsIssued = %d, want 1", n.Selector.QuorumsIssued())
	}
	if n.Selector.QuorumsIssuedInEpoch(1) != 1 {
		t.Errorf("QuorumsIssuedInEpoch(1) = %d, want 1", n.Selector.QuorumsIssuedInEpoch(1))
	}
	if n.Selector.QuorumsIssuedInEpoch(2) != 0 {
		t.Error("phantom quorums in epoch 2")
	}
}

func TestFZeroWithSuspicionKeepsQuorum(t *testing.T) {
	// f = 0 means q = n: any persistent suspicion precludes every
	// quorum (an assumption violation). The selector must not spin or
	// panic — it logs and keeps the last quorum.
	fx := newFixture(t, 3, 0, quietOpts(), sim.Options{}, ids.NewProcSet())
	fx.nodes[1].Selector.OnSuspected(ids.NewProcSet(2))
	fx.net.Run(time.Second)
	want := ids.NewQuorum([]ids.ProcessID{1, 2, 3})
	for p, n := range fx.nodes {
		if !n.CurrentQuorum().Equal(want) {
			t.Errorf("%s: quorum = %s, want the retained default %s", p, n.CurrentQuorum(), want)
		}
	}
}

func TestOwnSuspicionsPrecludeQuorum(t *testing.T) {
	// f=1, n=4, q=3: a process suspecting two others (more than f)
	// leaves... {others} minus suspects = 1 node; IS of size 3 exists?
	// Edges (1,2),(1,3): {2,3,4} is independent — still fine. Suspect
	// three others: edges (1,2),(1,3),(1,4): IS of size 3 without p1 is
	// {2,3,4} — still independent! A star never blocks an IS that
	// avoids its center (q ≤ n−1). So this scenario keeps working:
	// the quorum simply excludes the suspicious process p1.
	fx := newFixture(t, 4, 1, quietOpts(), sim.Options{}, ids.NewProcSet())
	fx.nodes[1].Selector.OnSuspected(ids.NewProcSet(2, 3, 4))
	fx.net.Run(time.Second)
	want := ids.NewQuorum([]ids.ProcessID{2, 3, 4})
	for p, n := range fx.nodes {
		if !n.CurrentQuorum().Equal(want) {
			t.Errorf("%s: quorum = %s, want %s", p, n.CurrentQuorum(), want)
		}
	}
}
