// Package core implements the paper's primary contribution: the Quorum
// Selection module of Algorithm 1 (§VI), and the process composition of
// Figure 1 (failure detector → suspicion store → selector →
// application).
//
// The selector outputs ⟨QUORUM, Q⟩ events with |Q| = n − f, satisfying
// (under the failure detector's properties):
//
//   - Termination: a correct process changes the quorum only finitely
//     often (Theorem 3: at most O(f²) quorums once suspicions between
//     correct processes cease).
//   - No suspicion: suspicions are edges of the suspect graph and the
//     quorum is an independent set, so no current suspicion connects
//     two quorum members.
//   - Agreement: suspicions propagate through the eventually-consistent
//     store and the quorum is the deterministic lexicographically-first
//     independent set, so correct processes converge.
//
// The quorum rule itself is pluggable (internal/quorum): the default is
// the paper's n−f threshold system, but the same state machine runs
// unchanged over weighted or FBAS-style slice systems — "first
// independent set of size q" generalizes to "lexicographically-first
// minimal quorum that is an independent set of the suspect graph".
//
// One deliberate deviation from the pseudocode's event plumbing: after
// advancing the epoch (Algorithm 1 lines 28–29) this implementation
// re-evaluates the quorum immediately instead of waiting for the
// self-addressed UPDATE broadcast to arrive. The paper's version
// re-enters updateQuorum only through that self-delivery, which never
// fires when the re-issued row is unchanged (e.g. `suspecting` is
// empty) — the eager loop closes that liveness gap and is otherwise
// observationally identical. The loop terminates: once the epoch
// exceeds every stamp in the matrix, the suspect graph contains at most
// the local process's own (re-stamped) suspicions, a star that always
// admits an independent set of size q ≤ n−1 for f ≥ 1 (and for f = 0 the
// graph is empty).
package core

import (
	"time"

	"quorumselect/internal/ids"
	"quorumselect/internal/logging"
	"quorumselect/internal/obs"
	"quorumselect/internal/quorum"
	"quorumselect/internal/runtime"
	"quorumselect/internal/suspicion"
)

// OnQuorum receives ⟨QUORUM, Q⟩ events.
type OnQuorum func(q ids.Quorum)

// Selector is Algorithm 1's quorum-selection state machine at one
// process.
type Selector struct {
	env      runtime.Env
	store    *suspicion.Store
	onQuorum OnQuorum
	log      logging.Logger
	sys      quorum.System

	qLast ids.Quorum

	// issuedTotal counts ⟨QUORUM⟩ events; issuedInEpoch maps epoch →
	// count, the quantity bounded by Theorem 3.
	issuedTotal   int
	issuedInEpoch map[uint64]int

	// Memoized selection result, keyed by the store's graph version:
	// onChange fires on every merged UPDATE, but the suspect graph (and
	// hence the selected quorum) only changes when an edge does. The
	// quorum system is fixed for the selector's lifetime, so the
	// version alone keys the memo.
	isetVersion uint64
	isetSet     []ids.ProcessID
	isetOK      bool
	isetValid   bool

	// updating guards against re-entry: AdvanceEpoch re-stamps the
	// current suspicions, which fires the store's onChange hook, which
	// is wired back to UpdateQuorum.
	updating bool
}

// NewSelector creates a selector over the given store running the
// paper's threshold system q = n − f. Bind the store's onChange to
// (*Selector).UpdateQuorum; wire the failure detector's suspicions to
// (*Selector).OnSuspected.
func NewSelector(env runtime.Env, store *suspicion.Store, onQuorum OnQuorum) *Selector {
	return NewSelectorSystem(env, store, nil, onQuorum)
}

// NewSelectorSystem creates a selector running a generalized quorum
// system. A nil system means the threshold system from the
// configuration. The system's size must match n; callers are expected
// to have validated the spec with quorum.Check before booting a node
// on it.
func NewSelectorSystem(env runtime.Env, store *suspicion.Store, sys quorum.System, onQuorum OnQuorum) *Selector {
	if sys == nil {
		sys = quorum.FromConfig(env.Config())
	}
	if sys.N() != env.Config().N {
		panic("core: quorum system size does not match configuration n")
	}
	dq, ok := quorum.Default(sys)
	if !ok {
		panic("core: quorum system admits no quorum at all")
	}
	s := &Selector{
		env:           env,
		store:         store,
		onQuorum:      onQuorum,
		log:           env.Logger(),
		sys:           sys,
		qLast:         ids.NewQuorum(dq),
		issuedInEpoch: make(map[uint64]int),
	}
	return s
}

// System returns the quorum system the selector runs on.
func (s *Selector) System() quorum.System { return s.sys }

// Current returns the last issued (or initial) quorum.
func (s *Selector) Current() ids.Quorum { return s.qLast }

// QuorumsIssued returns the total number of ⟨QUORUM⟩ events issued.
func (s *Selector) QuorumsIssued() int { return s.issuedTotal }

// QuorumsIssuedInEpoch returns how many quorums were issued while the
// local epoch was e — the quantity Theorem 3 bounds by f(f+1) and the
// paper's simulations bound by C(f+2, 2).
func (s *Selector) QuorumsIssuedInEpoch(e uint64) int { return s.issuedInEpoch[e] }

// Epoch returns the current epoch.
func (s *Selector) Epoch() uint64 { return s.store.Epoch() }

// OnSuspected is the ⟨SUSPECTED, S⟩ handler (Algorithm 1 lines 9–10):
// it records and broadcasts the new suspicion set.
func (s *Selector) OnSuspected(suspected ids.ProcSet) {
	s.store.UpdateSuspicions(suspected)
}

// UpdateQuorum is Algorithm 1's updateQuorum (lines 25–34): build the
// suspect graph, advance the epoch while no quorum of the system is an
// independent set, then issue the lexicographically-first one if it
// differs from the last quorum. Wire it to the store's onChange hook.
func (s *Selector) UpdateQuorum() {
	if s.updating {
		return
	}
	s.updating = true
	defer func() { s.updating = false }()

	// Recomputation cost is CPU time, so it is measured against the wall
	// clock: the simulator's virtual clock does not advance during a
	// synchronous call.
	wallStart := time.Now()
	s.env.Metrics().Inc("core.quorum.recomputed", 1)
	defer func() {
		s.env.Metrics().Observe("core.quorum.update.seconds", time.Since(wallStart).Seconds())
	}()

	// Epochs beyond startMax contain only the local process's own
	// re-stamped suspicions (every foreign stamp is ≤ startMax), so the
	// advance loop below visits at most startMax−epoch+1 epochs before
	// the graph stops shrinking.
	startMax := s.store.MaxEpochSeen()
	for {
		set, ok := s.firstQuorum()
		if !ok {
			if s.store.Epoch() > startMax {
				// Even the local process's own current suspicions
				// preclude a quorum (it suspects more than f others —
				// an assumption violation, e.g. f = 0 with any
				// suspicion). Keep the last quorum rather than spin.
				if sized, isSized := s.sys.(quorum.Sized); isSized {
					s.log.Logf(logging.LevelError,
						"core: own suspicions %s preclude any quorum of size %d; keeping %s",
						s.store.Suspecting(), sized.QuorumSize(), s.qLast)
				} else {
					s.log.Logf(logging.LevelError,
						"core: own suspicions %s preclude any quorum of %s; keeping %s",
						s.store.Suspecting(), s.sys, s.qLast)
				}
				return
			}
			// Suspicions in the current epoch are inconsistent with
			// any quorum: move on (lines 27–29).
			s.store.AdvanceEpoch()
			continue
		}
		issued := ids.NewQuorum(set)
		if !issued.Equal(s.qLast) {
			s.qLast = issued
			s.issuedTotal++
			s.issuedInEpoch[s.store.Epoch()]++
			s.env.Metrics().Inc("core.quorum.issued", 1)
			runtime.Emit(s.env, obs.Event{Type: obs.TypeQuorumChange,
				Epoch: s.store.Epoch(), Detail: issued.String()})
			s.log.Logf(logging.LevelDebug, "core: QUORUM %s (epoch %d)", issued, s.store.Epoch())
			if s.onQuorum != nil {
				s.onQuorum(issued)
			}
		}
		return
	}
}

// firstQuorum returns the lexicographically-first minimal quorum of the
// system that is an independent set of the current suspect graph,
// memoized per graph version so UPDATE storms that do not change the
// graph's edge set skip the exponential search entirely.
func (s *Selector) firstQuorum() ([]ids.ProcessID, bool) {
	g, ver := s.store.GraphSnapshot()
	if s.isetValid && s.isetVersion == ver {
		s.env.Metrics().Inc("selector.iset.cache_hits", 1)
		return s.isetSet, s.isetOK
	}
	s.env.Metrics().Inc("selector.iset.cache_misses", 1)
	set, ok := quorum.Select(s.sys, g)
	s.isetVersion, s.isetSet, s.isetOK, s.isetValid = ver, set, ok, true
	return set, ok
}
