// Package logging provides a minimal leveled, component-tagged logger
// built only on the standard library. Protocol code logs through a
// Logger interface so simulations can capture, silence, or timestamp
// output with virtual time.
package logging

import (
	"fmt"
	"io"
	"sync"
)

// Level is a log severity. Higher levels are more verbose.
type Level int

// Levels, ordered from quietest to most verbose.
const (
	LevelError Level = iota + 1
	LevelInfo
	LevelDebug
	LevelTrace
)

// String returns the conventional short name of the level.
func (l Level) String() string {
	switch l {
	case LevelError:
		return "ERROR"
	case LevelInfo:
		return "INFO"
	case LevelDebug:
		return "DEBUG"
	case LevelTrace:
		return "TRACE"
	default:
		return fmt.Sprintf("LEVEL(%d)", int(l))
	}
}

// Logger is the interface protocol code logs through.
type Logger interface {
	// Logf records a message at the given level. Arguments follow
	// fmt.Sprintf conventions.
	Logf(level Level, format string, args ...any)
}

// Nop is a Logger that discards everything.
var Nop Logger = nopLogger{}

type nopLogger struct{}

func (nopLogger) Logf(Level, string, ...any) {}

// WriterLogger writes formatted lines to an io.Writer, filtering by a
// maximum level. It is safe for concurrent use.
type WriterLogger struct {
	mu     sync.Mutex
	w      io.Writer
	max    Level
	prefix string
}

var _ Logger = (*WriterLogger)(nil)

// NewWriterLogger returns a logger writing lines at or below max to w.
func NewWriterLogger(w io.Writer, max Level) *WriterLogger {
	return &WriterLogger{w: w, max: max}
}

// Logf implements Logger.
func (l *WriterLogger) Logf(level Level, format string, args ...any) {
	if level > l.max {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, "%-5s %s", level, l.prefix)
	fmt.Fprintf(l.w, format, args...)
	fmt.Fprintln(l.w)
}

// Tagged returns a Logger that prefixes every line with tag, useful for
// per-process or per-module log streams.
func Tagged(base Logger, tag string) Logger {
	return taggedLogger{base: base, tag: tag}
}

type taggedLogger struct {
	base Logger
	tag  string
}

func (l taggedLogger) Logf(level Level, format string, args ...any) {
	l.base.Logf(level, "["+l.tag+"] "+format, args...)
}

// Capture is a Logger that stores lines in memory, used by tests that
// assert on protocol logging.
type Capture struct {
	mu    sync.Mutex
	max   Level
	Lines []string
}

var _ Logger = (*Capture)(nil)

// NewCapture returns a capturing logger accepting lines up to max.
func NewCapture(max Level) *Capture { return &Capture{max: max} }

// Logf implements Logger.
func (c *Capture) Logf(level Level, format string, args ...any) {
	if level > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Lines = append(c.Lines, fmt.Sprintf(format, args...))
}

// Snapshot returns a copy of the captured lines.
func (c *Capture) Snapshot() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.Lines))
	copy(out, c.Lines)
	return out
}
