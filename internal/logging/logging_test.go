package logging

import (
	"strings"
	"testing"
)

func TestWriterLoggerLevels(t *testing.T) {
	var buf strings.Builder
	l := NewWriterLogger(&buf, LevelInfo)
	l.Logf(LevelError, "boom %d", 1)
	l.Logf(LevelInfo, "hello")
	l.Logf(LevelDebug, "hidden")
	out := buf.String()
	if !strings.Contains(out, "boom 1") || !strings.Contains(out, "hello") {
		t.Errorf("missing expected lines: %q", out)
	}
	if strings.Contains(out, "hidden") {
		t.Errorf("debug line leaked through info level: %q", out)
	}
	if !strings.Contains(out, "ERROR") || !strings.Contains(out, "INFO") {
		t.Errorf("level names missing: %q", out)
	}
}

func TestTagged(t *testing.T) {
	c := NewCapture(LevelDebug)
	l := Tagged(c, "p3")
	l.Logf(LevelInfo, "msg %s", "x")
	lines := c.Snapshot()
	if len(lines) != 1 || !strings.Contains(lines[0], "[p3] msg x") {
		t.Errorf("lines = %v", lines)
	}
}

func TestCaptureFiltersAndCopies(t *testing.T) {
	c := NewCapture(LevelInfo)
	c.Logf(LevelTrace, "nope")
	c.Logf(LevelError, "yes")
	snap := c.Snapshot()
	if len(snap) != 1 || snap[0] != "yes" {
		t.Fatalf("snapshot = %v", snap)
	}
	snap[0] = "mutated"
	if c.Snapshot()[0] != "yes" {
		t.Error("Snapshot shares storage")
	}
}

func TestNopDiscards(t *testing.T) {
	// Must simply not panic.
	Nop.Logf(LevelError, "discarded %d", 42)
}

func TestLevelString(t *testing.T) {
	tests := map[Level]string{
		LevelError: "ERROR",
		LevelInfo:  "INFO",
		LevelDebug: "DEBUG",
		LevelTrace: "TRACE",
		Level(99):  "LEVEL(99)",
	}
	for lvl, want := range tests {
		if got := lvl.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", lvl, got, want)
		}
	}
}
