package wire

import (
	"fmt"

	"quorumselect/internal/ids"
)

// Compile-time interface checks.
var (
	_ Signed = (*TMProposal)(nil)
	_ Signed = (*TMPrevote)(nil)
	_ Signed = (*TMPrecommit)(nil)
)

// TMProposal is the Tendermint-style engine's PROPOSAL: the proposer of
// (height, round) proposes a client request for decision.
type TMProposal struct {
	Proposer ids.ProcessID
	Height   uint64
	Round    uint64
	Req      Request
	Sig      []byte
}

// Kind implements Message.
func (*TMProposal) Kind() Type { return TypeTMProposal }

func (m *TMProposal) encodeBody(b *Buffer) {
	m.encodeSigned(b)
	b.PutBytes(m.Sig)
}

func (m *TMProposal) encodeSigned(b *Buffer) {
	b.PutUint8(uint8(TypeTMProposal))
	b.PutProc(m.Proposer)
	b.PutUint64(m.Height)
	b.PutUint64(m.Round)
	m.Req.encodeBody(b)
}

func (m *TMProposal) decodeBody(r *Reader) error {
	if err := r.Tag(TypeTMProposal); err != nil {
		return err
	}
	var err error
	if m.Proposer, err = r.Proc(); err != nil {
		return err
	}
	if m.Height, err = r.Uint64(); err != nil {
		return err
	}
	if m.Round, err = r.Uint64(); err != nil {
		return err
	}
	if err = m.Req.decodeBody(r); err != nil {
		return err
	}
	m.Sig, err = r.Bytes()
	return err
}

// Signer implements Signed.
func (m *TMProposal) Signer() ids.ProcessID { return m.Proposer }

// SigBytes implements Signed.
func (m *TMProposal) SigBytes() []byte {
	var b Buffer
	m.encodeSigned(&b)
	return b.Bytes()
}

// Signature implements Signed.
func (m *TMProposal) Signature() []byte { return m.Sig }

// SetSignature implements Signed.
func (m *TMProposal) SetSignature(sig []byte) { m.Sig = sig }

// TMPrevote is a prevote on (height=Slot, round=View, proposal digest).
// It reuses the generic phase-vote shape.
type TMPrevote struct {
	phaseBody
}

// Kind implements Message.
func (*TMPrevote) Kind() Type { return TypeTMPrevote }

func (m *TMPrevote) encodeBody(b *Buffer) {
	m.encodeSigned(b, TypeTMPrevote)
	b.PutBytes(m.Sig)
}

func (m *TMPrevote) decodeBody(r *Reader) error { return m.decode(r, TypeTMPrevote) }

// Signer implements Signed.
func (m *TMPrevote) Signer() ids.ProcessID { return m.Replica }

// SigBytes implements Signed.
func (m *TMPrevote) SigBytes() []byte {
	var b Buffer
	m.encodeSigned(&b, TypeTMPrevote)
	return b.Bytes()
}

// Signature implements Signed.
func (m *TMPrevote) Signature() []byte { return m.Sig }

// SetSignature implements Signed.
func (m *TMPrevote) SetSignature(sig []byte) { m.Sig = sig }

// TMDecided is a self-certifying decision certificate: the decided
// proposal together with the precommit votes that justify it. It is not
// itself signed — the embedded signatures carry the authority — and is
// used for catch-up: a replica that joins the active set mid-stream (or
// lagged behind) verifies the certificate chain instead of replaying
// consensus.
type TMDecided struct {
	Height     uint64
	Round      uint64
	Proposal   TMProposal
	Precommits []TMPrecommit
}

// Kind implements Message.
func (*TMDecided) Kind() Type { return TypeTMDecided }

func (m *TMDecided) encodeBody(b *Buffer) {
	b.PutUint64(m.Height)
	b.PutUint64(m.Round)
	m.Proposal.encodeBody(b)
	b.PutUint32(uint32(len(m.Precommits)))
	for i := range m.Precommits {
		m.Precommits[i].encodeBody(b)
	}
}

func (m *TMDecided) decodeBody(r *Reader) error {
	var err error
	if m.Height, err = r.Uint64(); err != nil {
		return err
	}
	if m.Round, err = r.Uint64(); err != nil {
		return err
	}
	if err = m.Proposal.decodeBody(r); err != nil {
		return err
	}
	n, err := r.Uint32()
	if err != nil {
		return err
	}
	if n > maxSliceLen {
		return fmt.Errorf("wire: precommit count %d exceeds limit", n)
	}
	m.Precommits = make([]TMPrecommit, n)
	for i := range m.Precommits {
		if err = m.Precommits[i].decodeBody(r); err != nil {
			return err
		}
	}
	return nil
}

// TMPrecommit is a precommit vote; same shape as TMPrevote.
type TMPrecommit struct {
	phaseBody
}

// Kind implements Message.
func (*TMPrecommit) Kind() Type { return TypeTMPrecommit }

func (m *TMPrecommit) encodeBody(b *Buffer) {
	m.encodeSigned(b, TypeTMPrecommit)
	b.PutBytes(m.Sig)
}

func (m *TMPrecommit) decodeBody(r *Reader) error { return m.decode(r, TypeTMPrecommit) }

// Signer implements Signed.
func (m *TMPrecommit) Signer() ids.ProcessID { return m.Replica }

// SigBytes implements Signed.
func (m *TMPrecommit) SigBytes() []byte {
	var b Buffer
	m.encodeSigned(&b, TypeTMPrecommit)
	return b.Bytes()
}

// Signature implements Signed.
func (m *TMPrecommit) Signature() []byte { return m.Sig }

// SetSignature implements Signed.
func (m *TMPrecommit) SetSignature(sig []byte) { m.Sig = sig }
