package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestUvarintRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<40 | 7, 1<<63 - 1, ^uint64(0)}
	for _, v := range vals {
		var b Buffer
		b.PutUvarint(v)
		r := NewReader(b.Bytes())
		got, err := r.Uvarint()
		if err != nil {
			t.Fatalf("Uvarint(%d): %v", v, err)
		}
		if got != v {
			t.Errorf("Uvarint round trip: got %d, want %d", got, v)
		}
		if r.Remaining() != 0 {
			t.Errorf("Uvarint(%d): %d bytes unread", v, r.Remaining())
		}
	}
}

func TestUvarintRejectsNonMinimal(t *testing.T) {
	// 0x80 0x00 is a two-byte encoding of 0: legal LEB128, but not the
	// minimal form, so the canonical codec must reject it.
	cases := [][]byte{
		{0x80, 0x00},
		{0xff, 0x00},
		{0x80, 0x80, 0x00},
	}
	for _, enc := range cases {
		r := NewReader(enc)
		if _, err := r.Uvarint(); err == nil {
			t.Errorf("non-minimal uvarint % x accepted", enc)
		}
	}
}

func TestUvarintRejectsOverflowAndTruncation(t *testing.T) {
	// Eleven continuation bytes overflow uint64.
	over := bytes.Repeat([]byte{0x80}, 10)
	over = append(over, 0x02)
	if _, err := NewReader(over).Uvarint(); err == nil {
		t.Error("overflowing uvarint accepted")
	}
	if _, err := NewReader(nil).Uvarint(); err == nil {
		t.Error("empty uvarint accepted")
	}
	if _, err := NewReader([]byte{0x80}).Uvarint(); err == nil {
		t.Error("truncated uvarint accepted")
	}
}

func TestTraceContextOutsideSignature(t *testing.T) {
	// Restamping the context on a bare signed frame must not disturb
	// the signed bytes or the signature — tracing never forces
	// re-signing, and a context mutation can never invalidate a frame.
	for _, m := range sampleMessages() {
		c, ok := m.(TraceCarrier)
		if !ok {
			continue
		}
		s, signed := m.(Signed)
		var sigBefore, coveredBefore []byte
		if signed {
			coveredBefore = append([]byte(nil), s.SigBytes()...)
			sigBefore = append([]byte(nil), s.Signature()...)
		}
		before := Encode(m)
		c.SetTraceCtx(TraceContext{Trace: 0xfeed, Span: 0xbeef})
		after := Encode(m)
		if bytes.Equal(before, after) && c.TraceCtx() != (TraceContext{Trace: 0xfeed, Span: 0xbeef}) {
			t.Errorf("%s: SetTraceCtx did not change the frame", m.Kind())
		}
		if signed {
			if !bytes.Equal(coveredBefore, s.SigBytes()) {
				t.Errorf("%s: trace context leaks into SigBytes", m.Kind())
			}
			if !bytes.Equal(sigBefore, s.Signature()) {
				t.Errorf("%s: trace context altered the signature", m.Kind())
			}
		}
		got, err := Decode(after)
		if err != nil {
			t.Fatalf("%s: restamped frame does not decode: %v", m.Kind(), err)
		}
		if got.(TraceCarrier).TraceCtx() != (TraceContext{Trace: 0xfeed, Span: 0xbeef}) {
			t.Errorf("%s: context did not round trip", m.Kind())
		}
	}
}

func TestTraceContextZero(t *testing.T) {
	if !(TraceContext{}).Zero() {
		t.Error("zero value not Zero()")
	}
	if (TraceContext{Trace: 1}).Zero() || (TraceContext{Span: 1}).Zero() {
		t.Error("non-zero context reported Zero()")
	}
	// Untraced frames cost exactly two context bytes.
	var b Buffer
	b.PutTraceContext(TraceContext{})
	if len(b.Bytes()) != 2 {
		t.Errorf("zero context encodes to %d bytes, want 2", len(b.Bytes()))
	}
}

func TestPutUvarintMatchesBinary(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 1 << 21, ^uint64(0)} {
		var b Buffer
		b.PutUvarint(v)
		want := binary.AppendUvarint(nil, v)
		if !bytes.Equal(b.Bytes(), want) {
			t.Errorf("PutUvarint(%d) = % x, want % x", v, b.Bytes(), want)
		}
	}
}
