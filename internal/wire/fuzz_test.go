package wire

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the codec with arbitrary bytes: it must never
// panic, and anything it accepts must re-encode canonically.
//
//	go test -fuzz=FuzzDecode ./internal/wire
func FuzzDecode(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(Encode(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(msg)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted non-canonical encoding:\n in: %x\nout: %x", data, re)
		}
		// Signed messages must expose stable signing bytes.
		if s, ok := msg.(Signed); ok {
			a := s.SigBytes()
			b := s.SigBytes()
			if !bytes.Equal(a, b) {
				t.Fatal("SigBytes not deterministic")
			}
		}
	})
}

// FuzzKVSnapshot is in the xpaxos package (snapshot decoding); this one
// covers the reader primitives against arbitrary splits.
func FuzzReaderPrimitives(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		// Walk the buffer with a fixed schedule of reads; all must
		// either succeed in-bounds or fail cleanly.
		r.Uint8()
		r.Uint32()
		r.Uint64()
		r.Bool()
		r.Bytes()
		r.Procs()
		r.Uint64s()
		if r.Remaining() < 0 {
			t.Fatal("negative remaining")
		}
	})
}
