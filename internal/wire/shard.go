package wire

import "fmt"

// ShardEnvelope carries one shard's frame between fleet processes: the
// fleet demultiplexer (internal/fleet) wraps every outbound frame of
// shard group s in an envelope so all shards of a replica pair share
// one transport connection instead of R×N sockets.
//
// Like TraceContext, the shard number rides OUTSIDE any signature
// coverage: the envelope itself is unsigned and the inner frame's
// signature does not cover the wrapping. Routing therefore must never
// be trusted for safety — a Byzantine (or corrupted) sender can relabel
// a frame to any shard. Safety holds anyway because every shard signs
// and verifies under a shard-specific domain (crypto.DomainAuth): a
// frame misrouted to the wrong shard fails signature verification
// there and is dropped and counted, never executed. The only unsigned
// traffic, heartbeats, is benign to misroute: all shards of a process
// colocate, so process liveness is shared truth across shards.
type ShardEnvelope struct {
	// Shard is the target shard group.
	Shard uint32
	// Frame is the inner canonical frame (one Encode'd Message).
	Frame []byte
}

var _ Message = (*ShardEnvelope)(nil)

// Kind implements Message.
func (*ShardEnvelope) Kind() Type { return TypeShardEnvelope }

func (m *ShardEnvelope) encodeBody(b *Buffer) {
	b.PutUint32(m.Shard)
	b.PutBytes(m.Frame)
}

func (m *ShardEnvelope) decodeBody(r *Reader) error {
	var err error
	if m.Shard, err = r.Uint32(); err != nil {
		return err
	}
	if m.Frame, err = r.Bytes(); err != nil {
		return err
	}
	if len(m.Frame) == 0 {
		return fmt.Errorf("wire: empty shard-envelope frame")
	}
	return nil
}
