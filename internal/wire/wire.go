// Package wire defines every message exchanged by the protocols in this
// repository and a canonical binary codec for them.
//
// The codec is deliberately hand-rolled rather than gob- or
// JSON-based: signatures are computed over the canonical encoding, so
// encoding must be deterministic and stable across processes. All
// integers are encoded big-endian with fixed width; slices are
// length-prefixed with uint32.
//
// Message kinds:
//
//   - Heartbeat: the paper's §II assumption that every process sends
//     infinitely many messages; the failure detector issues standing
//     expectations for heartbeats to detect crash and repeated
//     omission failures.
//   - Update: the signed suspicion-row broadcast of Algorithm 1.
//   - Followers: the FOLLOWERS message of Algorithm 2.
//   - Request/Prepare/Commit/Reply/ViewChange/NewView: XPaxos (§V).
//   - Batch: a frame of client requests moved together by the replica
//     host's ingress (leader forwarding, mempool gossip).
//   - PrePrepare/PBFTPrepare/PBFTCommit: the PBFT-style broadcast-all
//     baseline used for the §I message-reduction claim.
//   - ChainForward/ChainAck: the BChain-style chain baseline.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"quorumselect/internal/ids"
)

// Type identifies a message kind on the wire.
type Type uint8

// Message kinds. Values are part of the wire format; do not reorder.
const (
	TypeHeartbeat Type = iota + 1
	TypeUpdate
	TypeFollowers
	TypeRequest
	TypePrepare
	TypeCommit
	TypeReply
	TypeViewChange
	TypeNewView
	TypePrePrepare
	TypePBFTPrepare
	TypePBFTCommit
	TypeChainForward
	TypeChainAck
	TypeTMProposal
	TypeTMPrevote
	TypeTMPrecommit
	TypeTMDecided
	TypeCommitCert
	TypeBatch
	TypeShardEnvelope
)

// String returns the protocol name of the message type.
func (t Type) String() string {
	switch t {
	case TypeHeartbeat:
		return "HEARTBEAT"
	case TypeUpdate:
		return "UPDATE"
	case TypeFollowers:
		return "FOLLOWERS"
	case TypeRequest:
		return "REQUEST"
	case TypePrepare:
		return "PREPARE"
	case TypeCommit:
		return "COMMIT"
	case TypeReply:
		return "REPLY"
	case TypeViewChange:
		return "VIEW-CHANGE"
	case TypeNewView:
		return "NEW-VIEW"
	case TypePrePrepare:
		return "PRE-PREPARE"
	case TypePBFTPrepare:
		return "PBFT-PREPARE"
	case TypePBFTCommit:
		return "PBFT-COMMIT"
	case TypeChainForward:
		return "CHAIN-FORWARD"
	case TypeChainAck:
		return "CHAIN-ACK"
	case TypeTMProposal:
		return "TM-PROPOSAL"
	case TypeTMPrevote:
		return "TM-PREVOTE"
	case TypeTMPrecommit:
		return "TM-PRECOMMIT"
	case TypeTMDecided:
		return "TM-DECIDED"
	case TypeCommitCert:
		return "COMMIT-CERT"
	case TypeBatch:
		return "BATCH"
	case TypeShardEnvelope:
		return "SHARD-ENVELOPE"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// Message is implemented by every wire message.
type Message interface {
	// Kind returns the message's wire type.
	Kind() Type
	// encodeBody appends the canonical encoding of all fields
	// (including any signature) to b.
	encodeBody(b *Buffer)
	// decodeBody parses the canonical encoding from b.
	decodeBody(b *Reader) error
}

// Signed is implemented by messages that carry a content signature
// (as opposed to link-level authentication).
type Signed interface {
	Message
	// Signer returns the process whose key must verify the signature.
	Signer() ids.ProcessID
	// SigBytes returns the canonical bytes covered by the signature.
	SigBytes() []byte
	// Signature returns the attached signature.
	Signature() []byte
	// SetSignature attaches a signature.
	SetSignature(sig []byte)
}

// ErrTruncated is returned when a decode runs out of bytes.
var ErrTruncated = errors.New("wire: truncated message")

// TraceContext is the compact causal-tracing context piggybacked on
// protocol frames: the trace the frame belongs to and the span on the
// sending process that caused it. The zero value means "untraced".
//
// Trace bytes ride outside every message's signature coverage
// (appended after the Sig field), so no protocol decision may ever
// depend on them: a mutated or stripped context degrades tracing, never
// correctness, and re-signing is not needed to restamp a context. The
// exception is unavoidable by construction: a Prepare embedded whole
// inside another signed message (Commit, view-change logs) contributes
// its context bytes to the *outer* signature like any other embedded
// field.
type TraceContext struct {
	Trace uint64 // trace identifier (the root span's ID); 0 = untraced
	Span  uint64 // parent span on the sending process
}

// Zero reports whether the context is the untraced zero value.
func (tc TraceContext) Zero() bool { return tc.Trace == 0 && tc.Span == 0 }

// TraceCarrier is implemented by messages that piggyback a
// TraceContext.
type TraceCarrier interface {
	Message
	// TraceCtx returns the piggybacked context.
	TraceCtx() TraceContext
	// SetTraceCtx replaces the piggybacked context. For bare signed
	// frames this never invalidates the signature (the context is
	// outside SigBytes).
	SetTraceCtx(tc TraceContext)
}

// ErrUnknownType is returned when a decode meets an unknown type tag.
var ErrUnknownType = errors.New("wire: unknown message type")

// maxSliceLen bounds decoded slice lengths to keep a malicious peer
// from forcing huge allocations.
const maxSliceLen = 1 << 20

// Encode renders m as canonical bytes: a one-byte type tag followed by
// the body encoding.
func Encode(m Message) []byte {
	return AppendEncode(nil, m)
}

// AppendEncode appends m's canonical encoding to dst and returns the
// extended slice — the allocation-free form of Encode for callers that
// manage their own buffers.
func AppendEncode(dst []byte, m Message) []byte {
	b := Buffer{buf: dst}
	b.PutUint8(uint8(m.Kind()))
	m.encodeBody(&b)
	return b.buf
}

// framePool recycles encode buffers across the hot send paths
// (simulator deliveries, transport frames). Buffers grow to fit and
// keep their capacity across cycles.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// EncodePooled is Encode drawing its buffer from a process-wide pool.
// The returned slice must be handed back with Recycle once no live
// reference to its bytes remains; decoded messages never alias the
// input (the Reader copies every byte field), so recycling right after
// Decode is safe.
func EncodePooled(m Message) []byte {
	bp := framePool.Get().(*[]byte)
	return AppendEncode((*bp)[:0], m)
}

// Recycle returns a buffer obtained from EncodePooled to the pool.
// Passing any other slice is also safe: it simply donates the backing
// array.
func Recycle(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:0]
	framePool.Put(&buf)
}

// Decode parses canonical bytes into a fresh message value.
func Decode(data []byte) (Message, error) {
	r := NewReader(data)
	tag, err := r.Uint8()
	if err != nil {
		return nil, err
	}
	m := newMessage(Type(tag))
	if m == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, tag)
	}
	if err := m.decodeBody(r); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after %s", r.Remaining(), m.Kind())
	}
	return m, nil
}

func newMessage(t Type) Message {
	switch t {
	case TypeHeartbeat:
		return &Heartbeat{}
	case TypeUpdate:
		return &Update{}
	case TypeFollowers:
		return &Followers{}
	case TypeRequest:
		return &Request{}
	case TypePrepare:
		return &Prepare{}
	case TypeCommit:
		return &Commit{}
	case TypeReply:
		return &Reply{}
	case TypeViewChange:
		return &ViewChange{}
	case TypeNewView:
		return &NewView{}
	case TypePrePrepare:
		return &PrePrepare{}
	case TypePBFTPrepare:
		return &PBFTPrepare{}
	case TypePBFTCommit:
		return &PBFTCommit{}
	case TypeChainForward:
		return &ChainForward{}
	case TypeChainAck:
		return &ChainAck{}
	case TypeTMProposal:
		return &TMProposal{}
	case TypeTMPrevote:
		return &TMPrevote{}
	case TypeTMPrecommit:
		return &TMPrecommit{}
	case TypeTMDecided:
		return &TMDecided{}
	case TypeCommitCert:
		return &CommitCert{}
	case TypeBatch:
		return &Batch{}
	case TypeShardEnvelope:
		return &ShardEnvelope{}
	default:
		return nil
	}
}

// Buffer is an append-only canonical encoder.
type Buffer struct {
	buf []byte
}

// Bytes returns the accumulated encoding.
func (b *Buffer) Bytes() []byte { return b.buf }

// PutUint8 appends a single byte.
func (b *Buffer) PutUint8(v uint8) { b.buf = append(b.buf, v) }

// PutUint32 appends a big-endian uint32.
func (b *Buffer) PutUint32(v uint32) {
	b.buf = binary.BigEndian.AppendUint32(b.buf, v)
}

// PutUint64 appends a big-endian uint64.
func (b *Buffer) PutUint64(v uint64) {
	b.buf = binary.BigEndian.AppendUint64(b.buf, v)
}

// PutBool appends a boolean as one byte.
func (b *Buffer) PutBool(v bool) {
	if v {
		b.PutUint8(1)
	} else {
		b.PutUint8(0)
	}
}

// PutProc appends a process identifier.
func (b *Buffer) PutProc(p ids.ProcessID) { b.PutUint32(uint32(p)) }

// PutBytes appends a length-prefixed byte slice.
func (b *Buffer) PutBytes(v []byte) {
	b.PutUint32(uint32(len(v)))
	b.buf = append(b.buf, v...)
}

// PutProcs appends a length-prefixed slice of process identifiers.
func (b *Buffer) PutProcs(ps []ids.ProcessID) {
	b.PutUint32(uint32(len(ps)))
	for _, p := range ps {
		b.PutProc(p)
	}
}

// PutUint64s appends a length-prefixed slice of uint64.
func (b *Buffer) PutUint64s(vs []uint64) {
	b.PutUint32(uint32(len(vs)))
	for _, v := range vs {
		b.PutUint64(v)
	}
}

// PutUvarint appends an unsigned varint (LEB128, as produced by
// encoding/binary). The encoding is minimal by construction, matching
// the Reader's canonicity requirement.
func (b *Buffer) PutUvarint(v uint64) {
	b.buf = binary.AppendUvarint(b.buf, v)
}

// PutTraceContext appends a trace context as two uvarints. The common
// untraced case costs two bytes.
func (b *Buffer) PutTraceContext(tc TraceContext) {
	b.PutUvarint(tc.Trace)
	b.PutUvarint(tc.Span)
}

// Reader decodes canonical bytes with bounds checking.
type Reader struct {
	buf []byte
	off int
}

// NewReader wraps data for decoding.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) take(n int) ([]byte, error) {
	if n < 0 || r.Remaining() < n {
		return nil, ErrTruncated
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out, nil
}

// Uint8 reads one byte.
func (r *Reader) Uint8() (uint8, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// Uint32 reads a big-endian uint32.
func (r *Reader) Uint32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

// Uint64 reads a big-endian uint64.
func (r *Reader) Uint64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

// Bool reads a boolean byte, rejecting values other than 0 and 1.
func (r *Reader) Bool() (bool, error) {
	v, err := r.Uint8()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("wire: invalid bool byte %d", v)
	}
}

// Tag reads the inner type tag of a signed body and rejects anything
// but want: accepting non-canonical encodings would let one message
// re-encode differently than it arrived.
func (r *Reader) Tag(want Type) error {
	v, err := r.Uint8()
	if err != nil {
		return err
	}
	if Type(v) != want {
		return fmt.Errorf("wire: inner tag %d, want %s", v, want)
	}
	return nil
}

// Proc reads a process identifier.
func (r *Reader) Proc() (ids.ProcessID, error) {
	v, err := r.Uint32()
	return ids.ProcessID(v), err
}

// Bytes reads a length-prefixed byte slice (copied out of the buffer).
func (r *Reader) Bytes() ([]byte, error) {
	n, err := r.Uint32()
	if err != nil {
		return nil, err
	}
	if n > maxSliceLen {
		return nil, fmt.Errorf("wire: slice length %d exceeds limit", n)
	}
	raw, err := r.take(int(n))
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, raw)
	return out, nil
}

// Procs reads a length-prefixed slice of process identifiers.
func (r *Reader) Procs() ([]ids.ProcessID, error) {
	n, err := r.Uint32()
	if err != nil {
		return nil, err
	}
	if n > maxSliceLen {
		return nil, fmt.Errorf("wire: slice length %d exceeds limit", n)
	}
	out := make([]ids.ProcessID, n)
	for i := range out {
		if out[i], err = r.Proc(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Uvarint reads an unsigned varint, rejecting non-minimal encodings
// (a final continuation group of zero, e.g. 0x80 0x00 for 0) and
// 64-bit overflow: accepting either would let one value arrive in more
// than one byte form, breaking the codec's canonicity invariant.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n == 0 {
		return 0, ErrTruncated
	}
	if n < 0 {
		return 0, fmt.Errorf("wire: uvarint overflows 64 bits")
	}
	if n > 1 && r.buf[r.off+n-1] == 0 {
		return 0, fmt.Errorf("wire: non-minimal uvarint encoding")
	}
	r.off += n
	return v, nil
}

// TraceContext reads a trace context (two uvarints).
func (r *Reader) TraceContext() (TraceContext, error) {
	var tc TraceContext
	var err error
	if tc.Trace, err = r.Uvarint(); err != nil {
		return tc, err
	}
	tc.Span, err = r.Uvarint()
	return tc, err
}

// Uint64s reads a length-prefixed slice of uint64.
func (r *Reader) Uint64s() ([]uint64, error) {
	n, err := r.Uint32()
	if err != nil {
		return nil, err
	}
	if n > maxSliceLen {
		return nil, fmt.Errorf("wire: slice length %d exceeds limit", n)
	}
	out := make([]uint64, n)
	for i := range out {
		if out[i], err = r.Uint64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
