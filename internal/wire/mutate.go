package wire

import "math/rand"

// MutateFrame deterministically corrupts one canonical frame, modeling
// a Byzantine sender (commission failure, §II of the paper): bit flips
// in fixed-width fields, truncation, trailing garbage, and signature
// corruption. It may edit frame in place or return a fresh slice; the
// caller must use only the returned slice.
//
// The returned bytes always differ from the input. Combined with the
// codec's canonicity invariant (accepted bytes re-encode identically),
// that means every mutant that still decodes is a *different* message —
// there are no silent-equal mutants — and any mutant whose signed
// content or signature changed fails verification under unbroken
// crypto. FuzzWireMutation pins both properties.
func MutateFrame(rng *rand.Rand, frame []byte) []byte {
	if len(frame) == 0 {
		return append(frame, byte(1+rng.Intn(255)))
	}
	switch rng.Intn(5) {
	case 0:
		// Single bit flip anywhere, type tag included: the classic
		// corrupted-field commission fault. XOR can never be identity.
		frame[rng.Intn(len(frame))] ^= 1 << uint(rng.Intn(8))
		return frame
	case 1:
		// Whole-byte corruption of one field byte.
		frame[rng.Intn(len(frame))] ^= byte(1 + rng.Intn(255))
		return frame
	case 2:
		// Truncation: a sender that stops mid-frame. Strictly shorter,
		// so it can only decode as garbage (the codec rejects both
		// short reads and trailing bytes).
		return frame[:rng.Intn(len(frame))]
	case 3:
		// Trailing garbage: strictly longer, rejected by the codec's
		// no-trailing-bytes rule.
		for i, n := 0, 1+rng.Intn(4); i < n; i++ {
			frame = append(frame, byte(rng.Intn(256)))
		}
		return frame
	default:
		// Signature corruption: re-encode the message with a flipped
		// signature — a forgery attempt that must die at Verify.
		m, err := Decode(frame)
		if err != nil {
			// Not a valid frame to begin with; degrade to a bit flip.
			frame[rng.Intn(len(frame))] ^= 1 << uint(rng.Intn(8))
			return frame
		}
		s, ok := m.(Signed)
		if !ok || len(s.Signature()) == 0 {
			frame[rng.Intn(len(frame))] ^= 1 << uint(rng.Intn(8))
			return frame
		}
		sig := append([]byte(nil), s.Signature()...)
		sig[rng.Intn(len(sig))] ^= byte(1 + rng.Intn(255))
		s.SetSignature(sig)
		return AppendEncode(frame[:0], m)
	}
}
