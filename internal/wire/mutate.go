package wire

import "math/rand"

// MutateFrame deterministically corrupts one canonical frame, modeling
// a Byzantine sender (commission failure, §II of the paper): bit flips
// in fixed-width fields, truncation, trailing garbage, and signature
// corruption. It may edit frame in place or return a fresh slice; the
// caller must use only the returned slice.
//
// The returned bytes always differ from the input. Combined with the
// codec's canonicity invariant (accepted bytes re-encode identically),
// that means every mutant that still decodes is a *different* message —
// there are no silent-equal mutants — and any mutant whose signed
// content or signature changed fails verification under unbroken
// crypto. FuzzWireMutation pins both properties.
func MutateFrame(rng *rand.Rand, frame []byte) []byte {
	if len(frame) == 0 {
		return append(frame, byte(1+rng.Intn(255)))
	}
	switch rng.Intn(7) {
	case 0:
		// Single bit flip anywhere, type tag included: the classic
		// corrupted-field commission fault. XOR can never be identity.
		frame[rng.Intn(len(frame))] ^= 1 << uint(rng.Intn(8))
		return frame
	case 1:
		// Whole-byte corruption of one field byte.
		frame[rng.Intn(len(frame))] ^= byte(1 + rng.Intn(255))
		return frame
	case 2:
		// Truncation: a sender that stops mid-frame. Strictly shorter,
		// so it can only decode as garbage (the codec rejects both
		// short reads and trailing bytes).
		return frame[:rng.Intn(len(frame))]
	case 3:
		// Trailing garbage: strictly longer, rejected by the codec's
		// no-trailing-bytes rule.
		for i, n := 0, 1+rng.Intn(4); i < n; i++ {
			frame = append(frame, byte(rng.Intn(256)))
		}
		return frame
	case 4:
		// Trace-context scramble: rewrite the piggybacked context of a
		// carrier frame. On a bare signed frame the context is outside
		// SigBytes, so the mutant still verifies — the receiver must
		// treat it as at worst a wrong trace, never a protocol input.
		m, err := Decode(frame)
		if err != nil {
			frame[rng.Intn(len(frame))] ^= 1 << uint(rng.Intn(8))
			return frame
		}
		c, ok := m.(TraceCarrier)
		if !ok {
			frame[rng.Intn(len(frame))] ^= 1 << uint(rng.Intn(8))
			return frame
		}
		tc := c.TraceCtx()
		// XOR with a non-zero delta so the context — and with it the
		// re-encoded frame — always differs from the original.
		tc.Trace ^= 1 + uint64(rng.Int63())
		tc.Span ^= uint64(rng.Int63())
		c.SetTraceCtx(tc)
		return AppendEncode(frame[:0], m)
	case 5:
		// Shard-ID scramble: relabel a fleet envelope's shard field —
		// cross-shard misrouting. The inner frame is untouched, so the
		// mutant still decodes as a well-formed envelope; the receiving
		// fleet must reject it (out-of-range shards die at the
		// demultiplexer, in-range ones at the wrong shard's
		// domain-separated signature check), never execute it.
		m, err := Decode(frame)
		if err != nil {
			frame[rng.Intn(len(frame))] ^= 1 << uint(rng.Intn(8))
			return frame
		}
		env, ok := m.(*ShardEnvelope)
		if !ok {
			frame[rng.Intn(len(frame))] ^= 1 << uint(rng.Intn(8))
			return frame
		}
		// XOR with a non-zero delta so the shard — and with it the
		// re-encoded frame — always differs from the original. Small
		// deltas keep most mutants inside a realistic fleet's shard
		// range (misrouting), the rest are out-of-range garbage.
		env.Shard ^= uint32(1 + rng.Intn(1<<16))
		return AppendEncode(frame[:0], m)
	default:
		// Signature corruption: re-encode the message with a flipped
		// signature — a forgery attempt that must die at Verify.
		m, err := Decode(frame)
		if err != nil {
			// Not a valid frame to begin with; degrade to a bit flip.
			frame[rng.Intn(len(frame))] ^= 1 << uint(rng.Intn(8))
			return frame
		}
		s, ok := m.(Signed)
		if !ok || len(s.Signature()) == 0 {
			frame[rng.Intn(len(frame))] ^= 1 << uint(rng.Intn(8))
			return frame
		}
		sig := append([]byte(nil), s.Signature()...)
		sig[rng.Intn(len(sig))] ^= byte(1 + rng.Intn(255))
		s.SetSignature(sig)
		return AppendEncode(frame[:0], m)
	}
}
