package wire

import (
	"quorumselect/internal/ids"
)

// PrePrepare is the PBFT-style baseline's PRE-PREPARE: the primary
// assigns a slot to a request and broadcasts it to all n replicas.
type PrePrepare struct {
	Leader ids.ProcessID
	View   uint64
	Slot   uint64
	Req    Request
	Sig    []byte
}

// Kind implements Message.
func (*PrePrepare) Kind() Type { return TypePrePrepare }

func (m *PrePrepare) encodeBody(b *Buffer) {
	m.encodeSigned(b)
	b.PutBytes(m.Sig)
}

func (m *PrePrepare) encodeSigned(b *Buffer) {
	b.PutUint8(uint8(TypePrePrepare))
	b.PutProc(m.Leader)
	b.PutUint64(m.View)
	b.PutUint64(m.Slot)
	m.Req.encodeBody(b)
}

func (m *PrePrepare) decodeBody(r *Reader) error {
	if err := r.Tag(TypePrePrepare); err != nil {
		return err
	}
	var err error
	if m.Leader, err = r.Proc(); err != nil {
		return err
	}
	if m.View, err = r.Uint64(); err != nil {
		return err
	}
	if m.Slot, err = r.Uint64(); err != nil {
		return err
	}
	if err = m.Req.decodeBody(r); err != nil {
		return err
	}
	m.Sig, err = r.Bytes()
	return err
}

// Signer implements Signed.
func (m *PrePrepare) Signer() ids.ProcessID { return m.Leader }

// SigBytes implements Signed.
func (m *PrePrepare) SigBytes() []byte {
	var b Buffer
	m.encodeSigned(&b)
	return b.Bytes()
}

// Signature implements Signed.
func (m *PrePrepare) Signature() []byte { return m.Sig }

// SetSignature implements Signed.
func (m *PrePrepare) SetSignature(sig []byte) { m.Sig = sig }

// phaseBody is the shared shape of the PBFT baseline's PREPARE and
// COMMIT phase messages: a vote on a (view, slot, digest) triple.
type phaseBody struct {
	Replica ids.ProcessID
	View    uint64
	Slot    uint64
	Digest  []byte
	Sig     []byte
}

func (m *phaseBody) encodeSigned(b *Buffer, t Type) {
	b.PutUint8(uint8(t))
	b.PutProc(m.Replica)
	b.PutUint64(m.View)
	b.PutUint64(m.Slot)
	b.PutBytes(m.Digest)
}

func (m *phaseBody) decode(r *Reader, t Type) error {
	if err := r.Tag(t); err != nil {
		return err
	}
	var err error
	if m.Replica, err = r.Proc(); err != nil {
		return err
	}
	if m.View, err = r.Uint64(); err != nil {
		return err
	}
	if m.Slot, err = r.Uint64(); err != nil {
		return err
	}
	if m.Digest, err = r.Bytes(); err != nil {
		return err
	}
	m.Sig, err = r.Bytes()
	return err
}

// PBFTPrepare is the baseline's PREPARE vote.
type PBFTPrepare struct {
	phaseBody
}

// Kind implements Message.
func (*PBFTPrepare) Kind() Type { return TypePBFTPrepare }

func (m *PBFTPrepare) encodeBody(b *Buffer) {
	m.encodeSigned(b, TypePBFTPrepare)
	b.PutBytes(m.Sig)
}

func (m *PBFTPrepare) decodeBody(r *Reader) error { return m.decode(r, TypePBFTPrepare) }

// Signer implements Signed.
func (m *PBFTPrepare) Signer() ids.ProcessID { return m.Replica }

// SigBytes implements Signed.
func (m *PBFTPrepare) SigBytes() []byte {
	var b Buffer
	m.encodeSigned(&b, TypePBFTPrepare)
	return b.Bytes()
}

// Signature implements Signed.
func (m *PBFTPrepare) Signature() []byte { return m.Sig }

// SetSignature implements Signed.
func (m *PBFTPrepare) SetSignature(sig []byte) { m.Sig = sig }

// PBFTCommit is the baseline's COMMIT vote.
type PBFTCommit struct {
	phaseBody
}

// Kind implements Message.
func (*PBFTCommit) Kind() Type { return TypePBFTCommit }

func (m *PBFTCommit) encodeBody(b *Buffer) {
	m.encodeSigned(b, TypePBFTCommit)
	b.PutBytes(m.Sig)
}

func (m *PBFTCommit) decodeBody(r *Reader) error { return m.decode(r, TypePBFTCommit) }

// Signer implements Signed.
func (m *PBFTCommit) Signer() ids.ProcessID { return m.Replica }

// SigBytes implements Signed.
func (m *PBFTCommit) SigBytes() []byte {
	var b Buffer
	m.encodeSigned(&b, TypePBFTCommit)
	return b.Bytes()
}

// Signature implements Signed.
func (m *PBFTCommit) Signature() []byte { return m.Sig }

// SetSignature implements Signed.
func (m *PBFTCommit) SetSignature(sig []byte) { m.Sig = sig }

// ChainForward is the BChain-style baseline's forwarding message: the
// request travels along a chain of active replicas; Hops records the
// signatures-so-far path (here simplified to the visited replicas).
type ChainForward struct {
	Replica ids.ProcessID
	Slot    uint64
	Req     Request
	Hops    []ids.ProcessID
	Sig     []byte
}

// Kind implements Message.
func (*ChainForward) Kind() Type { return TypeChainForward }

func (m *ChainForward) encodeBody(b *Buffer) {
	m.encodeSigned(b)
	b.PutBytes(m.Sig)
}

func (m *ChainForward) encodeSigned(b *Buffer) {
	b.PutUint8(uint8(TypeChainForward))
	b.PutProc(m.Replica)
	b.PutUint64(m.Slot)
	m.Req.encodeBody(b)
	b.PutProcs(m.Hops)
}

func (m *ChainForward) decodeBody(r *Reader) error {
	if err := r.Tag(TypeChainForward); err != nil {
		return err
	}
	var err error
	if m.Replica, err = r.Proc(); err != nil {
		return err
	}
	if m.Slot, err = r.Uint64(); err != nil {
		return err
	}
	if err = m.Req.decodeBody(r); err != nil {
		return err
	}
	if m.Hops, err = r.Procs(); err != nil {
		return err
	}
	m.Sig, err = r.Bytes()
	return err
}

// Signer implements Signed.
func (m *ChainForward) Signer() ids.ProcessID { return m.Replica }

// SigBytes implements Signed.
func (m *ChainForward) SigBytes() []byte {
	var b Buffer
	m.encodeSigned(&b)
	return b.Bytes()
}

// Signature implements Signed.
func (m *ChainForward) Signature() []byte { return m.Sig }

// SetSignature implements Signed.
func (m *ChainForward) SetSignature(sig []byte) { m.Sig = sig }

// ChainAck travels back up the chain confirming execution.
type ChainAck struct {
	Replica ids.ProcessID
	Slot    uint64
	Sig     []byte
}

// Kind implements Message.
func (*ChainAck) Kind() Type { return TypeChainAck }

func (m *ChainAck) encodeBody(b *Buffer) {
	m.encodeSigned(b)
	b.PutBytes(m.Sig)
}

func (m *ChainAck) encodeSigned(b *Buffer) {
	b.PutUint8(uint8(TypeChainAck))
	b.PutProc(m.Replica)
	b.PutUint64(m.Slot)
}

func (m *ChainAck) decodeBody(r *Reader) error {
	if err := r.Tag(TypeChainAck); err != nil {
		return err
	}
	var err error
	if m.Replica, err = r.Proc(); err != nil {
		return err
	}
	if m.Slot, err = r.Uint64(); err != nil {
		return err
	}
	m.Sig, err = r.Bytes()
	return err
}

// Signer implements Signed.
func (m *ChainAck) Signer() ids.ProcessID { return m.Replica }

// SigBytes implements Signed.
func (m *ChainAck) SigBytes() []byte {
	var b Buffer
	m.encodeSigned(&b)
	return b.Bytes()
}

// Signature implements Signed.
func (m *ChainAck) Signature() []byte { return m.Sig }

// SetSignature implements Signed.
func (m *ChainAck) SetSignature(sig []byte) { m.Sig = sig }
