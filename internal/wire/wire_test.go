package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"quorumselect/internal/ids"
)

// sampleMessages returns one populated instance of every message kind.
func sampleMessages() []Message {
	req := Request{Client: 7, Seq: 42, Op: []byte("set x=1")}
	prep := Prepare{Leader: 1, View: 3, Slot: 9, Req: req, Sig: []byte{1, 2, 3}}
	return []Message{
		&Heartbeat{From: 2, Seq: 100},
		&Batch{Reqs: []Request{
			{Client: 7, Seq: 43, Op: []byte("set y=2")},
			{Client: 8, Seq: 1, Op: []byte("get y")},
		}},
		&Batch{Reqs: []Request{{Client: 7, Seq: 45, Op: []byte("set w=4")}},
			TC: TraceContext{Trace: 1<<40 | 7, Span: 1<<40 | 9}},
		&Update{Owner: 3, Row: []uint64{0, 2, 0, 1, 5}, Sig: []byte{9, 8}},
		&Followers{
			Leader:    2,
			Epoch:     4,
			Followers: []ids.ProcessID{3, 4, 5},
			Line:      []Edge{{U: 1, V: 6}, {U: 6, V: 7}},
			Sig:       []byte{0xaa},
		},
		&req,
		&prep,
		&Prepare{Leader: 1, View: 3, Slot: 10, Req: req, Sig: []byte{1, 2, 3},
			Rest: []Request{
				{Client: 7, Seq: 44, Op: []byte("set z=3")},
				{Client: 9, Seq: 2, Op: []byte("del z")},
			}},
		&Prepare{Leader: 1, View: 3, Slot: 11, Req: req, Sig: []byte{1, 2, 3},
			TC: TraceContext{Trace: 2 << 40, Span: 2<<40 | 3}},
		&Commit{Replica: 4, View: 3, Slot: 9, HasPrep: true, Prep: prep, Sig: []byte{5}},
		&Commit{Replica: 4, View: 3, Slot: 9, HasPrep: false, Sig: []byte{5}},
		&Commit{Replica: 4, View: 3, Slot: 9, HasPrep: true, Prep: prep, Sig: []byte{5},
			TC: TraceContext{Trace: 4<<40 | 1, Span: 4<<40 | 2}},
		&Reply{Replica: 2, Client: 7, Seq: 42, Result: []byte("ok"), Sig: []byte{1}},
		&ViewChange{
			Replica:        5,
			NewViewNum:     8,
			CheckpointSlot: 4,
			CheckpointDig:  []byte{0xcd},
			Snapshot:       []byte("snapshot-bytes"),
			Log:            []LogSlot{{Slot: 9, Prep: prep}},
			Sig:            []byte{2},
		},
		&ViewChange{
			Replica:        6,
			NewViewNum:     9,
			CheckpointSlot: 4,
			CheckpointDig:  []byte{0xcd},
			Snapshot:       []byte("snapshot-bytes"),
			// The logged prepare keeps its own context; the outer frame
			// carries the view-change span's.
			Log: []LogSlot{{Slot: 9, Prep: Prepare{Leader: 1, View: 3, Slot: 9, Req: req,
				Sig: []byte{1, 2, 3}, TC: TraceContext{Trace: 1 << 40, Span: 1<<40 | 4}}}},
			Sig: []byte{2},
			TC:  TraceContext{Trace: 6 << 40, Span: 6<<40 | 1},
		},
		&NewView{Leader: 1, ViewNum: 8, CheckpointSlot: 4, Snapshot: []byte("snap"),
			Log: []LogSlot{{Slot: 9, Prep: prep}}, Sig: []byte{3}},
		&NewView{Leader: 1, ViewNum: 9, CheckpointSlot: 4, Snapshot: []byte("snap"),
			Log: []LogSlot{{Slot: 9, Prep: prep}}, Sig: []byte{3},
			TC: TraceContext{Trace: 1<<40 | 8, Span: 1<<40 | 8}},
		&PrePrepare{Leader: 1, View: 0, Slot: 1, Req: req, Sig: []byte{4}},
		&PBFTPrepare{phaseBody{Replica: 2, View: 0, Slot: 1, Digest: []byte{0xd}, Sig: []byte{6}}},
		&PBFTCommit{phaseBody{Replica: 3, View: 0, Slot: 1, Digest: []byte{0xd}, Sig: []byte{7}}},
		&ChainForward{Replica: 1, Slot: 2, Req: req, Hops: []ids.ProcessID{1, 2}, Sig: []byte{8}},
		&ChainAck{Replica: 5, Slot: 2, Sig: []byte{9}},
		&ShardEnvelope{Shard: 0, Frame: Encode(&Heartbeat{From: 2, Seq: 100})},
		&ShardEnvelope{Shard: 3, Frame: Encode(&prep)},
		&TMProposal{Proposer: 2, Height: 5, Round: 1, Req: req, Sig: []byte{10}},
		&TMPrevote{phaseBody{Replica: 3, View: 1, Slot: 5, Digest: []byte{0xe}, Sig: []byte{11}}},
		&TMPrecommit{phaseBody{Replica: 4, View: 1, Slot: 5, Digest: []byte{0xe}, Sig: []byte{12}}},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		t.Run(m.Kind().String(), func(t *testing.T) {
			data := Encode(m)
			got, err := Decode(data)
			if err != nil {
				t.Fatalf("Decode(%s): %v", m.Kind(), err)
			}
			if !reflect.DeepEqual(m, got) {
				t.Errorf("round trip mismatch:\n in: %#v\nout: %#v", m, got)
			}
		})
	}
}

func TestEncodeDeterministic(t *testing.T) {
	for _, m := range sampleMessages() {
		a, b := Encode(m), Encode(m)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: non-deterministic encoding", m.Kind())
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	for _, m := range sampleMessages() {
		data := Encode(m)
		for cut := 0; cut < len(data); cut++ {
			if _, err := Decode(data[:cut]); err == nil {
				t.Errorf("%s: truncation at %d/%d decoded without error",
					m.Kind(), cut, len(data))
			}
		}
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	data := Encode(&Heartbeat{From: 1, Seq: 2})
	data = append(data, 0xff)
	if _, err := Decode(data); err == nil {
		t.Error("trailing bytes decoded without error")
	}
}

func TestDecodeUnknownType(t *testing.T) {
	if _, err := Decode([]byte{0xEE, 0, 0}); err == nil {
		t.Error("unknown type decoded without error")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty input decoded without error")
	}
}

func TestDecodeRejectsHugeSlices(t *testing.T) {
	// Hand-craft an Update claiming a row of 2^30 entries.
	var b Buffer
	b.PutUint8(uint8(TypeUpdate))
	b.PutUint8(uint8(TypeUpdate))
	b.PutProc(1)
	b.PutUint32(1 << 30) // row length
	if _, err := Decode(b.Bytes()); err == nil {
		t.Error("oversized slice length decoded without error")
	}
}

func TestInvalidBool(t *testing.T) {
	r := NewReader([]byte{2})
	if _, err := r.Bool(); err == nil {
		t.Error("Bool accepted byte 2")
	}
}

func TestSigBytesExcludeSignature(t *testing.T) {
	// Changing only the signature must not change SigBytes; changing a
	// covered field must.
	u := &Update{Owner: 3, Row: []uint64{1, 2}, Sig: []byte{1}}
	base := u.SigBytes()
	u.Sig = []byte{9, 9, 9}
	if !bytes.Equal(base, u.SigBytes()) {
		t.Error("Update.SigBytes covers the signature")
	}
	u.Row[0] = 7
	if bytes.Equal(base, u.SigBytes()) {
		t.Error("Update.SigBytes does not cover Row")
	}

	for _, m := range sampleMessages() {
		s, ok := m.(Signed)
		if !ok {
			continue
		}
		before := s.SigBytes()
		s.SetSignature([]byte("different signature"))
		if !bytes.Equal(before, s.SigBytes()) {
			t.Errorf("%s: SigBytes covers the signature field", m.Kind())
		}
	}
}

func TestSigBytesDomainSeparated(t *testing.T) {
	// A PBFT PREPARE and COMMIT vote with identical fields must not be
	// mutually replayable: their signed bytes must differ.
	pp := &PBFTPrepare{phaseBody{Replica: 2, View: 1, Slot: 5, Digest: []byte{1}}}
	pc := &PBFTCommit{phaseBody{Replica: 2, View: 1, Slot: 5, Digest: []byte{1}}}
	if bytes.Equal(pp.SigBytes(), pc.SigBytes()) {
		t.Error("PBFT prepare and commit votes share signed bytes (replayable)")
	}
	// Same for XPaxos PREPARE vs baseline PRE-PREPARE.
	req := Request{Client: 1, Seq: 1, Op: []byte("x")}
	xp := &Prepare{Leader: 1, View: 1, Slot: 1, Req: req}
	bp := &PrePrepare{Leader: 1, View: 1, Slot: 1, Req: req}
	if bytes.Equal(xp.SigBytes(), bp.SigBytes()) {
		t.Error("XPaxos PREPARE and baseline PRE-PREPARE share signed bytes")
	}
}

func TestUpdateClone(t *testing.T) {
	u := &Update{Owner: 1, Row: []uint64{1, 2, 3}, Sig: []byte{4}}
	c := u.Clone()
	c.Row[0] = 99
	c.Sig[0] = 99
	if u.Row[0] != 1 || u.Sig[0] != 4 {
		t.Error("Clone shares storage with original")
	}
}

func TestRequestEqual(t *testing.T) {
	a := &Request{Client: 1, Seq: 2, Op: []byte("op")}
	tests := []struct {
		b    *Request
		want bool
	}{
		{&Request{Client: 1, Seq: 2, Op: []byte("op")}, true},
		{&Request{Client: 2, Seq: 2, Op: []byte("op")}, false},
		{&Request{Client: 1, Seq: 3, Op: []byte("op")}, false},
		{&Request{Client: 1, Seq: 2, Op: []byte("other")}, false},
	}
	for _, tt := range tests {
		if got := a.Equal(tt.b); got != tt.want {
			t.Errorf("Equal(%v) = %v, want %v", tt.b, got, tt.want)
		}
	}
}

func TestUpdateRoundTripQuick(t *testing.T) {
	f := func(owner uint8, row []uint64, sig []byte) bool {
		in := &Update{Owner: ids.ProcessID(owner%32 + 1), Row: row, Sig: sig}
		out, err := Decode(Encode(in))
		if err != nil {
			return false
		}
		got, ok := out.(*Update)
		if !ok || got.Owner != in.Owner || len(got.Row) != len(in.Row) {
			return false
		}
		for i := range in.Row {
			if got.Row[i] != in.Row[i] {
				return false
			}
		}
		return bytes.Equal(got.Sig, in.Sig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	// The decoder faces hostile peers: arbitrary bytes must produce an
	// error or a valid message, never a panic or runaway allocation.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(200)
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		// Bias the first byte toward valid type tags so the body
		// decoders actually run.
		if n > 0 && trial%2 == 0 {
			data[0] = byte(rng.Intn(int(TypeTMPrecommit)) + 1)
		}
		msg, err := Decode(data)
		if err == nil {
			// A parsed message must re-encode to the same bytes.
			if !bytes.Equal(Encode(msg), data) {
				t.Fatalf("re-encode mismatch for %v", data)
			}
		}
	}
}

func TestMutatedEncodingsNeverPanic(t *testing.T) {
	// Single-byte mutations of valid encodings exercise every decoder
	// branch boundary.
	rng := rand.New(rand.NewSource(2))
	for _, m := range sampleMessages() {
		base := Encode(m)
		for trial := 0; trial < 200; trial++ {
			data := append([]byte(nil), base...)
			data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
			if msg, err := Decode(data); err == nil {
				if !bytes.Equal(Encode(msg), data) {
					t.Fatalf("%s: re-encode mismatch after mutation", m.Kind())
				}
			}
		}
	}
}

func TestTypeString(t *testing.T) {
	if TypeUpdate.String() != "UPDATE" || TypeFollowers.String() != "FOLLOWERS" {
		t.Error("Type.String wrong for core types")
	}
	if Type(200).String() != "TYPE(200)" {
		t.Errorf("unknown type string = %q", Type(200).String())
	}
}
