package wire

import (
	"bytes"
	"math/rand"
	"testing"

	"quorumselect/internal/crypto"
	"quorumselect/internal/ids"
)

// FuzzWireMutation pins the chaos-mutation contract: every mutant
// differs from its input, and a mutant that still decodes is a
// different message (canonical re-encode ≠ original). For properly
// signed originals, a decodable mutant whose signed content or
// signature changed must fail verification — no silent-equal mutants,
// no accidental forgeries.
//
//	go test -fuzz=FuzzWireMutation ./internal/wire
func FuzzWireMutation(f *testing.F) {
	for i, m := range sampleMessages() {
		f.Add(Encode(m), int64(i))
	}
	f.Add([]byte{}, int64(0))
	cfg := ids.MustConfig(16, 5)
	ring := crypto.NewHMACRing(cfg, []byte("fuzz-mutation-master"))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		orig, err := Decode(data)
		if err != nil {
			return // mutation only ever sees frames off the sim wire
		}
		// Give signed originals a real signature so the verification
		// arm of the invariant is exercised, not vacuous.
		if s, ok := orig.(Signed); ok {
			if sig, err := ring.Sign(s.Signer(), s.SigBytes()); err == nil {
				s.SetSignature(sig)
			}
			data = Encode(orig)
		}

		rng := rand.New(rand.NewSource(seed))
		mutated := MutateFrame(rng, append([]byte(nil), data...))
		if bytes.Equal(mutated, data) {
			t.Fatalf("silent-equal mutant of %x", data)
		}

		m2, err := Decode(mutated)
		if err != nil {
			return // dropped as line garbage — a legal outcome
		}
		re := Encode(m2)
		if !bytes.Equal(re, mutated) {
			t.Fatalf("mutant accepted non-canonically:\n in: %x\nout: %x", mutated, re)
		}
		if bytes.Equal(re, data) {
			t.Fatalf("mutant decoded back to the original message: %x", data)
		}
		s2, ok := m2.(Signed)
		if !ok {
			return
		}
		if err := ring.Verify(s2.Signer(), s2.SigBytes(), s2.Signature()); err == nil {
			// A verifying mutant is only legal if neither the signed
			// content nor the signature changed (the mutation landed in
			// a field outside the signature's coverage).
			so := orig.(Signed)
			if !bytes.Equal(s2.SigBytes(), so.SigBytes()) || !bytes.Equal(s2.Signature(), so.Signature()) {
				t.Fatalf("mutant with altered signed content still verifies: %#v", m2)
			}
		}
	})
}

// TestMutateFrameAlwaysDiffers sweeps every sample message across many
// seeds: the mutant must differ byte-wise from the input every time.
func TestMutateFrameAlwaysDiffers(t *testing.T) {
	for _, m := range sampleMessages() {
		data := Encode(m)
		for seed := int64(0); seed < 200; seed++ {
			rng := rand.New(rand.NewSource(seed))
			mutated := MutateFrame(rng, append([]byte(nil), data...))
			if bytes.Equal(mutated, data) {
				t.Fatalf("%s seed %d: silent-equal mutant", m.Kind(), seed)
			}
		}
	}
}

// TestMutateFrameDeterministic: identical seed and frame produce an
// identical mutant — required for replayable chaos runs.
func TestMutateFrameDeterministic(t *testing.T) {
	for _, m := range sampleMessages() {
		data := Encode(m)
		for seed := int64(0); seed < 20; seed++ {
			a := MutateFrame(rand.New(rand.NewSource(seed)), append([]byte(nil), data...))
			b := MutateFrame(rand.New(rand.NewSource(seed)), append([]byte(nil), data...))
			if !bytes.Equal(a, b) {
				t.Fatalf("%s seed %d: nondeterministic mutation", m.Kind(), seed)
			}
		}
	}
}

// TestMutateFrameShardScramble pins the cross-shard misrouting arm:
// across seeds, some mutants of a ShardEnvelope must be relabeled
// envelopes — same inner frame, different shard — and every such
// mutant must still decode canonically (the demultiplexer, not the
// codec, is responsible for rejecting it).
func TestMutateFrameShardScramble(t *testing.T) {
	inner := Encode(&Request{Client: 7, Seq: 42, Op: []byte("set x=1")})
	data := Encode(&ShardEnvelope{Shard: 1, Frame: inner})
	relabeled := 0
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		mutated := MutateFrame(rng, append([]byte(nil), data...))
		m, err := Decode(mutated)
		if err != nil {
			continue
		}
		env, ok := m.(*ShardEnvelope)
		if !ok || !bytes.Equal(env.Frame, inner) {
			continue
		}
		if env.Shard == 1 {
			t.Fatalf("seed %d: unchanged shard on a mutated envelope", seed)
		}
		relabeled++
	}
	if relabeled == 0 {
		t.Fatal("no seed exercised the shard-scramble mutation")
	}
}
