package wire

import (
	"fmt"

	"quorumselect/internal/ids"
)

// Compile-time interface checks.
var (
	_ Message = (*Heartbeat)(nil)
	_ Signed  = (*Update)(nil)
	_ Signed  = (*Followers)(nil)
	_ Message = (*Request)(nil)
	_ Message = (*Batch)(nil)
	_ Signed  = (*Prepare)(nil)
	_ Signed  = (*Commit)(nil)
	_ Signed  = (*Reply)(nil)
	_ Signed  = (*ViewChange)(nil)
	_ Signed  = (*NewView)(nil)
	_ Signed  = (*PrePrepare)(nil)
	_ Signed  = (*PBFTPrepare)(nil)
	_ Signed  = (*PBFTCommit)(nil)
	_ Signed  = (*ChainForward)(nil)
	_ Signed  = (*ChainAck)(nil)

	_ TraceCarrier = (*Batch)(nil)
	_ TraceCarrier = (*Prepare)(nil)
	_ TraceCarrier = (*Commit)(nil)
	_ TraceCarrier = (*ViewChange)(nil)
	_ TraceCarrier = (*NewView)(nil)
)

// Heartbeat is the periodic liveness message every process sends (§II:
// "every process is expected to send infinitely many messages").
// Heartbeats are link-authenticated only; they carry no signature.
type Heartbeat struct {
	From ids.ProcessID // sending process
	Seq  uint64        // monotonically increasing per sender
}

// Kind implements Message.
func (*Heartbeat) Kind() Type { return TypeHeartbeat }

func (m *Heartbeat) encodeBody(b *Buffer) {
	b.PutProc(m.From)
	b.PutUint64(m.Seq)
}

func (m *Heartbeat) decodeBody(r *Reader) error {
	var err error
	if m.From, err = r.Proc(); err != nil {
		return err
	}
	m.Seq, err = r.Uint64()
	return err
}

// Update is Algorithm 1's ⟨UPDATE, suspected[i]⟩_σi message: the signed
// suspicion row of its Owner. Row[k] is the epoch in which Owner last
// suspected process p_{k+1} (0 = never). Updates are forwarded verbatim
// by other processes, so the transport-level sender may differ from
// Owner; verification always uses Owner's key.
type Update struct {
	Owner ids.ProcessID
	Row   []uint64
	Sig   []byte
}

// Kind implements Message.
func (*Update) Kind() Type { return TypeUpdate }

func (m *Update) encodeBody(b *Buffer) {
	m.encodeSigned(b)
	b.PutBytes(m.Sig)
}

func (m *Update) encodeSigned(b *Buffer) {
	b.PutUint8(uint8(TypeUpdate))
	b.PutProc(m.Owner)
	b.PutUint64s(m.Row)
}

func (m *Update) decodeBody(r *Reader) error {
	if err := r.Tag(TypeUpdate); err != nil {
		return err
	}
	var err error
	if m.Owner, err = r.Proc(); err != nil {
		return err
	}
	if m.Row, err = r.Uint64s(); err != nil {
		return err
	}
	m.Sig, err = r.Bytes()
	return err
}

// Signer implements Signed.
func (m *Update) Signer() ids.ProcessID { return m.Owner }

// SigBytes implements Signed.
func (m *Update) SigBytes() []byte {
	var b Buffer
	m.encodeSigned(&b)
	return b.Bytes()
}

// Signature implements Signed.
func (m *Update) Signature() []byte { return m.Sig }

// SetSignature implements Signed.
func (m *Update) SetSignature(sig []byte) { m.Sig = sig }

// Clone returns a deep copy, so stores can retain rows without aliasing
// buffers owned by the transport.
func (m *Update) Clone() *Update {
	cp := &Update{Owner: m.Owner}
	cp.Row = append([]uint64(nil), m.Row...)
	cp.Sig = append([]byte(nil), m.Sig...)
	return cp
}

// Edge is an undirected suspect-graph edge carried inside FOLLOWERS
// messages (the line subgraph L of Algorithm 2).
type Edge struct {
	U, V ids.ProcessID
}

// String renders the edge in paper notation.
func (e Edge) String() string { return fmt.Sprintf("(%s,%s)", e.U, e.V) }

// Followers is Algorithm 2's ⟨FOLLOWERS, Fw, L, epoch⟩_σj message: the
// leader's signed choice of q−1 followers, justified by the line
// subgraph L it computed.
type Followers struct {
	Leader    ids.ProcessID
	Epoch     uint64
	Followers []ids.ProcessID
	Line      []Edge
	Sig       []byte
}

// Kind implements Message.
func (*Followers) Kind() Type { return TypeFollowers }

func (m *Followers) encodeBody(b *Buffer) {
	m.encodeSigned(b)
	b.PutBytes(m.Sig)
}

func (m *Followers) encodeSigned(b *Buffer) {
	b.PutUint8(uint8(TypeFollowers))
	b.PutProc(m.Leader)
	b.PutUint64(m.Epoch)
	b.PutProcs(m.Followers)
	b.PutUint32(uint32(len(m.Line)))
	for _, e := range m.Line {
		b.PutProc(e.U)
		b.PutProc(e.V)
	}
}

func (m *Followers) decodeBody(r *Reader) error {
	if err := r.Tag(TypeFollowers); err != nil {
		return err
	}
	var err error
	if m.Leader, err = r.Proc(); err != nil {
		return err
	}
	if m.Epoch, err = r.Uint64(); err != nil {
		return err
	}
	if m.Followers, err = r.Procs(); err != nil {
		return err
	}
	n, err := r.Uint32()
	if err != nil {
		return err
	}
	if n > maxSliceLen {
		return fmt.Errorf("wire: line subgraph length %d exceeds limit", n)
	}
	m.Line = make([]Edge, n)
	for i := range m.Line {
		if m.Line[i].U, err = r.Proc(); err != nil {
			return err
		}
		if m.Line[i].V, err = r.Proc(); err != nil {
			return err
		}
	}
	m.Sig, err = r.Bytes()
	return err
}

// Signer implements Signed.
func (m *Followers) Signer() ids.ProcessID { return m.Leader }

// SigBytes implements Signed.
func (m *Followers) SigBytes() []byte {
	var b Buffer
	m.encodeSigned(&b)
	return b.Bytes()
}

// Signature implements Signed.
func (m *Followers) Signature() []byte { return m.Sig }

// SetSignature implements Signed.
func (m *Followers) SetSignature(sig []byte) { m.Sig = sig }

// Request is a client operation submitted to the replicated state
// machine. Clients are identified outside Π, so Client is a plain
// uint64 rather than a ProcessID.
type Request struct {
	Client uint64
	Seq    uint64
	Op     []byte
}

// Kind implements Message.
func (*Request) Kind() Type { return TypeRequest }

func (m *Request) encodeBody(b *Buffer) {
	b.PutUint64(m.Client)
	b.PutUint64(m.Seq)
	b.PutBytes(m.Op)
}

func (m *Request) decodeBody(r *Reader) error {
	var err error
	if m.Client, err = r.Uint64(); err != nil {
		return err
	}
	if m.Seq, err = r.Uint64(); err != nil {
		return err
	}
	m.Op, err = r.Bytes()
	return err
}

// Equal reports whether two requests are identical.
func (m *Request) Equal(o *Request) bool {
	return m.Client == o.Client && m.Seq == o.Seq && string(m.Op) == string(o.Op)
}

// Batch is a frame of client requests moved together: the replica
// host's ingress flushes one Batch instead of one frame per request
// (non-leader → leader forwarding in XPaxos, mempool gossip in the
// consensus engine). Requests are link-authenticated like individual
// Request frames; receivers deduplicate per request.
type Batch struct {
	Reqs []Request
	// TC is the sending host's ingress-span context, so a forwarded
	// batch stays part of the trace its buffering started.
	TC TraceContext
}

// Kind implements Message.
func (*Batch) Kind() Type { return TypeBatch }

func (m *Batch) encodeBody(b *Buffer) {
	b.PutUint32(uint32(len(m.Reqs)))
	for i := range m.Reqs {
		m.Reqs[i].encodeBody(b)
	}
	b.PutTraceContext(m.TC)
}

func (m *Batch) decodeBody(r *Reader) error {
	n, err := r.Uint32()
	if err != nil {
		return err
	}
	if n > maxSliceLen {
		return fmt.Errorf("wire: batch length %d exceeds limit", n)
	}
	if n > 0 {
		m.Reqs = make([]Request, n)
		for i := range m.Reqs {
			if err := m.Reqs[i].decodeBody(r); err != nil {
				return err
			}
		}
	}
	m.TC, err = r.TraceContext()
	return err
}

// TraceCtx implements TraceCarrier.
func (m *Batch) TraceCtx() TraceContext { return m.TC }

// SetTraceCtx implements TraceCarrier.
func (m *Batch) SetTraceCtx(tc TraceContext) { m.TC = tc }

// Prepare is XPaxos's PREPARE: the leader proposes a slot's worth of
// client requests in a view (§V-A step 1). Req is the first request of
// the slot; Rest carries the remainder of the batch (empty at batch
// size 1, reproducing the paper's one-request-per-slot normal case).
// All requests of the slot commit atomically and execute in order.
type Prepare struct {
	Leader ids.ProcessID
	View   uint64
	Slot   uint64
	Req    Request
	Rest   []Request
	Sig    []byte
	// TC is the leader's propose-span context; followers parent their
	// accept spans on it. Outside SigBytes (see TraceContext), though a
	// Prepare embedded in a Commit or view-change log is covered whole
	// by the outer signature.
	TC TraceContext
}

// Kind implements Message.
func (*Prepare) Kind() Type { return TypePrepare }

func (m *Prepare) encodeBody(b *Buffer) {
	m.encodeSigned(b)
	b.PutBytes(m.Sig)
	b.PutTraceContext(m.TC)
}

func (m *Prepare) encodeSigned(b *Buffer) {
	b.PutUint8(uint8(TypePrepare))
	b.PutProc(m.Leader)
	b.PutUint64(m.View)
	b.PutUint64(m.Slot)
	m.Req.encodeBody(b)
	b.PutUint32(uint32(len(m.Rest)))
	for i := range m.Rest {
		m.Rest[i].encodeBody(b)
	}
}

func (m *Prepare) decodeBody(r *Reader) error {
	if err := r.Tag(TypePrepare); err != nil {
		return err
	}
	var err error
	if m.Leader, err = r.Proc(); err != nil {
		return err
	}
	if m.View, err = r.Uint64(); err != nil {
		return err
	}
	if m.Slot, err = r.Uint64(); err != nil {
		return err
	}
	if err = m.Req.decodeBody(r); err != nil {
		return err
	}
	n, err := r.Uint32()
	if err != nil {
		return err
	}
	if n > maxSliceLen {
		return fmt.Errorf("wire: prepare batch length %d exceeds limit", n)
	}
	if n > 0 {
		m.Rest = make([]Request, n)
		for i := range m.Rest {
			if err := m.Rest[i].decodeBody(r); err != nil {
				return err
			}
		}
	}
	if m.Sig, err = r.Bytes(); err != nil {
		return err
	}
	m.TC, err = r.TraceContext()
	return err
}

// TraceCtx implements TraceCarrier.
func (m *Prepare) TraceCtx() TraceContext { return m.TC }

// SetTraceCtx implements TraceCarrier.
func (m *Prepare) SetTraceCtx(tc TraceContext) { m.TC = tc }

// Requests returns the slot's full batch in proposal order (Req
// followed by Rest).
func (m *Prepare) Requests() []*Request {
	out := make([]*Request, 0, 1+len(m.Rest))
	out = append(out, &m.Req)
	for i := range m.Rest {
		out = append(out, &m.Rest[i])
	}
	return out
}

// Signer implements Signed.
func (m *Prepare) Signer() ids.ProcessID { return m.Leader }

// SigBytes implements Signed.
func (m *Prepare) SigBytes() []byte {
	var b Buffer
	m.encodeSigned(&b)
	return b.Bytes()
}

// Signature implements Signed.
func (m *Prepare) Signature() []byte { return m.Sig }

// SetSignature implements Signed.
func (m *Prepare) SetSignature(sig []byte) { m.Sig = sig }

// Commit is XPaxos's COMMIT. Per the paper's second protocol change in
// §V-A, a COMMIT includes the full PREPARE message from the leader
// (not just a hash), so receivers can detect malformed COMMITs and
// leader equivocation. HasPrep distinguishes a COMMIT carrying a
// PREPARE from a maliciously empty one.
type Commit struct {
	Replica ids.ProcessID
	View    uint64
	Slot    uint64
	HasPrep bool
	Prep    Prepare
	Sig     []byte
	// TC is the sending replica's accept-span context, letting the
	// collector attribute commit arrivals to the remote accept.
	TC TraceContext
}

// Kind implements Message.
func (*Commit) Kind() Type { return TypeCommit }

func (m *Commit) encodeBody(b *Buffer) {
	m.encodeSigned(b)
	b.PutBytes(m.Sig)
	b.PutTraceContext(m.TC)
}

func (m *Commit) encodeSigned(b *Buffer) {
	b.PutUint8(uint8(TypeCommit))
	b.PutProc(m.Replica)
	b.PutUint64(m.View)
	b.PutUint64(m.Slot)
	b.PutBool(m.HasPrep)
	if m.HasPrep {
		m.Prep.encodeBody(b)
	}
}

func (m *Commit) decodeBody(r *Reader) error {
	if err := r.Tag(TypeCommit); err != nil {
		return err
	}
	var err error
	if m.Replica, err = r.Proc(); err != nil {
		return err
	}
	if m.View, err = r.Uint64(); err != nil {
		return err
	}
	if m.Slot, err = r.Uint64(); err != nil {
		return err
	}
	if m.HasPrep, err = r.Bool(); err != nil {
		return err
	}
	if m.HasPrep {
		if err = m.Prep.decodeBody(r); err != nil {
			return err
		}
	}
	if m.Sig, err = r.Bytes(); err != nil {
		return err
	}
	m.TC, err = r.TraceContext()
	return err
}

// TraceCtx implements TraceCarrier.
func (m *Commit) TraceCtx() TraceContext { return m.TC }

// SetTraceCtx implements TraceCarrier.
func (m *Commit) SetTraceCtx(tc TraceContext) { m.TC = tc }

// Signer implements Signed.
func (m *Commit) Signer() ids.ProcessID { return m.Replica }

// SigBytes implements Signed.
func (m *Commit) SigBytes() []byte {
	var b Buffer
	m.encodeSigned(&b)
	return b.Bytes()
}

// Signature implements Signed.
func (m *Commit) Signature() []byte { return m.Sig }

// SetSignature implements Signed.
func (m *Commit) SetSignature(sig []byte) { m.Sig = sig }

// Reply is a replica's response to a client request — the client-bound
// leg of Fig 2. Clients live outside Π, so in-process harnesses observe
// executions through the OnExecute hook instead, and the TCP
// deployment's HTTP frontend completes requests from local execution
// (lazy replication keeps every replica current); Reply is the message
// a remote binary client protocol would use.
type Reply struct {
	Replica ids.ProcessID
	Client  uint64
	Seq     uint64
	Result  []byte
	Sig     []byte
}

// Kind implements Message.
func (*Reply) Kind() Type { return TypeReply }

func (m *Reply) encodeBody(b *Buffer) {
	m.encodeSigned(b)
	b.PutBytes(m.Sig)
}

func (m *Reply) encodeSigned(b *Buffer) {
	b.PutUint8(uint8(TypeReply))
	b.PutProc(m.Replica)
	b.PutUint64(m.Client)
	b.PutUint64(m.Seq)
	b.PutBytes(m.Result)
}

func (m *Reply) decodeBody(r *Reader) error {
	if err := r.Tag(TypeReply); err != nil {
		return err
	}
	var err error
	if m.Replica, err = r.Proc(); err != nil {
		return err
	}
	if m.Client, err = r.Uint64(); err != nil {
		return err
	}
	if m.Seq, err = r.Uint64(); err != nil {
		return err
	}
	if m.Result, err = r.Bytes(); err != nil {
		return err
	}
	m.Sig, err = r.Bytes()
	return err
}

// Signer implements Signed.
func (m *Reply) Signer() ids.ProcessID { return m.Replica }

// SigBytes implements Signed.
func (m *Reply) SigBytes() []byte {
	var b Buffer
	m.encodeSigned(&b)
	return b.Bytes()
}

// Signature implements Signed.
func (m *Reply) Signature() []byte { return m.Sig }

// SetSignature implements Signed.
func (m *Reply) SetSignature(sig []byte) { m.Sig = sig }

// CommitCert is XPaxos's lazy-replication certificate: the full set of
// COMMIT messages that committed a slot. Each COMMIT embeds the
// PREPARE, so the certificate is self-certifying — a passive replica
// verifies the n−f signatures instead of trusting the sender. Not
// itself signed.
type CommitCert struct {
	Slot    uint64
	Commits []Commit
}

// Kind implements Message.
func (*CommitCert) Kind() Type { return TypeCommitCert }

func (m *CommitCert) encodeBody(b *Buffer) {
	b.PutUint64(m.Slot)
	b.PutUint32(uint32(len(m.Commits)))
	for i := range m.Commits {
		m.Commits[i].encodeBody(b)
	}
}

func (m *CommitCert) decodeBody(r *Reader) error {
	var err error
	if m.Slot, err = r.Uint64(); err != nil {
		return err
	}
	n, err := r.Uint32()
	if err != nil {
		return err
	}
	if n > maxSliceLen {
		return fmt.Errorf("wire: commit count %d exceeds limit", n)
	}
	m.Commits = make([]Commit, n)
	for i := range m.Commits {
		if err = m.Commits[i].decodeBody(r); err != nil {
			return err
		}
	}
	return nil
}

// LogSlot is a prepared slot carried in view-change messages: the
// highest-view PREPARE a replica accepted for a slot.
type LogSlot struct {
	Slot uint64
	Prep Prepare
}

// ViewChange announces that a replica moves to (at least) view NewViewNum
// and reports its accepted log so the incoming leader can preserve
// committed requests. With checkpointing enabled it also reports the
// replica's latest stable checkpoint: the slot, the state-machine
// snapshot digest, and the snapshot itself (so the incoming leader can
// serve it to lagging members).
type ViewChange struct {
	Replica        ids.ProcessID
	NewViewNum     uint64
	CheckpointSlot uint64
	CheckpointDig  []byte
	Snapshot       []byte
	Log            []LogSlot
	Sig            []byte
	// TC is the sender's view-change-span context, so view-change
	// traffic joins the causal timeline like the normal case does.
	TC TraceContext
}

// Kind implements Message.
func (*ViewChange) Kind() Type { return TypeViewChange }

func (m *ViewChange) encodeBody(b *Buffer) {
	m.encodeSigned(b)
	b.PutBytes(m.Sig)
	b.PutTraceContext(m.TC)
}

func (m *ViewChange) encodeSigned(b *Buffer) {
	b.PutUint8(uint8(TypeViewChange))
	b.PutProc(m.Replica)
	b.PutUint64(m.NewViewNum)
	b.PutUint64(m.CheckpointSlot)
	b.PutBytes(m.CheckpointDig)
	b.PutBytes(m.Snapshot)
	b.PutUint32(uint32(len(m.Log)))
	for i := range m.Log {
		b.PutUint64(m.Log[i].Slot)
		m.Log[i].Prep.encodeBody(b)
	}
}

func (m *ViewChange) decodeBody(r *Reader) error {
	if err := r.Tag(TypeViewChange); err != nil {
		return err
	}
	var err error
	if m.Replica, err = r.Proc(); err != nil {
		return err
	}
	if m.NewViewNum, err = r.Uint64(); err != nil {
		return err
	}
	if m.CheckpointSlot, err = r.Uint64(); err != nil {
		return err
	}
	if m.CheckpointDig, err = r.Bytes(); err != nil {
		return err
	}
	if m.Snapshot, err = r.Bytes(); err != nil {
		return err
	}
	n, err := r.Uint32()
	if err != nil {
		return err
	}
	if n > maxSliceLen {
		return fmt.Errorf("wire: view-change log length %d exceeds limit", n)
	}
	m.Log = make([]LogSlot, n)
	for i := range m.Log {
		if m.Log[i].Slot, err = r.Uint64(); err != nil {
			return err
		}
		if err = m.Log[i].Prep.decodeBody(r); err != nil {
			return err
		}
	}
	if m.Sig, err = r.Bytes(); err != nil {
		return err
	}
	m.TC, err = r.TraceContext()
	return err
}

// TraceCtx implements TraceCarrier.
func (m *ViewChange) TraceCtx() TraceContext { return m.TC }

// SetTraceCtx implements TraceCarrier.
func (m *ViewChange) SetTraceCtx(tc TraceContext) { m.TC = tc }

// Signer implements Signed.
func (m *ViewChange) Signer() ids.ProcessID { return m.Replica }

// SigBytes implements Signed.
func (m *ViewChange) SigBytes() []byte {
	var b Buffer
	m.encodeSigned(&b)
	return b.Bytes()
}

// Signature implements Signed.
func (m *ViewChange) Signature() []byte { return m.Sig }

// SetSignature implements Signed.
func (m *ViewChange) SetSignature(sig []byte) { m.Sig = sig }

// NewView installs a view: the new leader's consolidated log, assembled
// from the VIEW-CHANGE messages of the new active quorum, plus the
// stable checkpoint (slot + snapshot) lagging members catch up from.
type NewView struct {
	Leader         ids.ProcessID
	ViewNum        uint64
	CheckpointSlot uint64
	Snapshot       []byte
	Log            []LogSlot
	Sig            []byte
	// TC is the incoming leader's view-change-span context; receivers
	// anchor the installation on it.
	TC TraceContext
}

// Kind implements Message.
func (*NewView) Kind() Type { return TypeNewView }

func (m *NewView) encodeBody(b *Buffer) {
	m.encodeSigned(b)
	b.PutBytes(m.Sig)
	b.PutTraceContext(m.TC)
}

func (m *NewView) encodeSigned(b *Buffer) {
	b.PutUint8(uint8(TypeNewView))
	b.PutProc(m.Leader)
	b.PutUint64(m.ViewNum)
	b.PutUint64(m.CheckpointSlot)
	b.PutBytes(m.Snapshot)
	b.PutUint32(uint32(len(m.Log)))
	for i := range m.Log {
		b.PutUint64(m.Log[i].Slot)
		m.Log[i].Prep.encodeBody(b)
	}
}

func (m *NewView) decodeBody(r *Reader) error {
	if err := r.Tag(TypeNewView); err != nil {
		return err
	}
	var err error
	if m.Leader, err = r.Proc(); err != nil {
		return err
	}
	if m.ViewNum, err = r.Uint64(); err != nil {
		return err
	}
	if m.CheckpointSlot, err = r.Uint64(); err != nil {
		return err
	}
	if m.Snapshot, err = r.Bytes(); err != nil {
		return err
	}
	n, err := r.Uint32()
	if err != nil {
		return err
	}
	if n > maxSliceLen {
		return fmt.Errorf("wire: new-view log length %d exceeds limit", n)
	}
	m.Log = make([]LogSlot, n)
	for i := range m.Log {
		if m.Log[i].Slot, err = r.Uint64(); err != nil {
			return err
		}
		if err = m.Log[i].Prep.decodeBody(r); err != nil {
			return err
		}
	}
	if m.Sig, err = r.Bytes(); err != nil {
		return err
	}
	m.TC, err = r.TraceContext()
	return err
}

// TraceCtx implements TraceCarrier.
func (m *NewView) TraceCtx() TraceContext { return m.TC }

// SetTraceCtx implements TraceCarrier.
func (m *NewView) SetTraceCtx(tc TraceContext) { m.TC = tc }

// Signer implements Signed.
func (m *NewView) Signer() ids.ProcessID { return m.Leader }

// SigBytes implements Signed.
func (m *NewView) SigBytes() []byte {
	var b Buffer
	m.encodeSigned(&b)
	return b.Bytes()
}

// Signature implements Signed.
func (m *NewView) Signature() []byte { return m.Sig }

// SetSignature implements Signed.
func (m *NewView) SetSignature(sig []byte) { m.Sig = sig }
