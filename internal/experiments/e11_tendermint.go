package experiments

import (
	"fmt"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/tendermint"
	"quorumselect/internal/wire"
)

// E11Tendermint exercises the paper's §X future-work direction —
// integrating Quorum Selection into a different BFT algorithm — on the
// Tendermint-style proposer-rotation engine: fault-free throughput
// shape, recovery from a crashed proposer (round rotation + selection),
// and recovery from a crashed voter (selection only), with message
// accounting.
func E11Tendermint(requests int) Table {
	t := Table{
		ID:    "E11",
		Title: "Quorum Selection in a Tendermint-style engine (§X future work)",
		Columns: []string{
			"scenario", "decided", "target", "msgs/decision", "faulty excluded", "agreement",
		},
		Notes: []string{
			"extension beyond the paper: proposer rotation + expectations + selection composed",
		},
	}
	for _, sc := range []struct {
		name    string
		crashed ids.ProcessID
	}{
		{name: "fault-free"},
		{name: "crashed proposer", crashed: 2}, // proposer of height 1 round 0
		{name: "crashed voter", crashed: 3},
	} {
		decided, msgsPer, excluded, agreement := runE11(sc.crashed, requests)
		excludedStr := "n/a"
		if sc.crashed != 0 {
			excludedStr = fmt.Sprintf("%v", excluded)
		}
		t.AddRow(sc.name, decided, requests, fmt.Sprintf("%.0f", msgsPer), excludedStr, agreement)
	}
	return t
}

func runE11(crashed ids.ProcessID, requests int) (decided uint64, msgsPerDecision float64, excluded, agreement bool) {
	cfg := ids.MustConfig(4, 1)
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	replicas := make(map[ids.ProcessID]*tendermint.Replica, cfg.N)
	for _, p := range cfg.All() {
		if p == crashed {
			nodes[p] = silentNode{}
			continue
		}
		nodeOpts := core.DefaultNodeOptions()
		nodeOpts.HeartbeatPeriod = 20 * time.Millisecond
		node, r := tendermint.NewQSNode(tendermint.Options{}, nodeOpts)
		replicas[p] = r
		nodes[p] = node
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{Latency: sim.ConstantLatency(2 * time.Millisecond)})
	var entry *tendermint.Replica
	for _, p := range cfg.All() {
		if r, ok := replicas[p]; ok {
			entry = r
			break
		}
	}
	for i := 1; i <= requests; i++ {
		entry.Submit(&wire.Request{Client: 1, Seq: uint64(i), Op: []byte("op")})
	}
	net.RunUntil(func() bool {
		for _, r := range replicas {
			if r.Participating() && r.LastDecided() < uint64(requests) {
				return false
			}
		}
		return true
	}, 2*time.Minute)

	decided = entry.LastDecided()
	m := net.Metrics()
	consensusMsgs := m.Counter("msg.sent.TM-PROPOSAL") +
		m.Counter("msg.sent.TM-PREVOTE") + m.Counter("msg.sent.TM-PRECOMMIT")
	if decided > 0 {
		msgsPerDecision = float64(consensusMsgs) / float64(decided)
	}
	excluded = true
	agreement = true
	var ref []string
	for _, r := range replicas {
		if crashed != 0 && r.Active().Contains(crashed) {
			excluded = false
		}
		var log []string
		for _, d := range r.Decisions() {
			log = append(log, fmt.Sprintf("%d:%d/%d", d.Slot, d.Client, d.Seq))
		}
		if ref == nil {
			ref = log
		} else {
			limit := len(ref)
			if len(log) < limit {
				limit = len(log)
			}
			for i := 0; i < limit; i++ {
				if ref[i] != log[i] {
					agreement = false
				}
			}
		}
	}
	return decided, msgsPerDecision, excluded, agreement
}
