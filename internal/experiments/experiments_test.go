package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func TestE1BoundsHold(t *testing.T) {
	tbl := E1QuorumChanges(2, 2)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("E1 bound violated in row %v", row)
		}
	}
}

func TestE2TracksLowerBound(t *testing.T) {
	tbl := E2LowerBound(2)
	for _, row := range tbl.Rows {
		// achieved/bound ratio is the last column; it must be positive
		// and at most 1.00 (Algorithm 1 cannot be forced past C(f+2,2)
		// per epoch-1 play).
		ratio := row[len(row)-1]
		if !(strings.HasPrefix(ratio, "0.") || ratio == "1.00") {
			t.Errorf("E2 ratio out of range: %v", row)
		}
	}
}

func TestE3BoundsHold(t *testing.T) {
	tbl := E3FollowerBound(2)
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("E3 bound violated in row %v", row)
		}
	}
}

func TestE4SavesMessages(t *testing.T) {
	tbl := E4MessageReduction(1, 5)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		drop := row[len(row)-1]
		if strings.HasPrefix(drop, "-") || drop == "0.00" {
			t.Errorf("E4 shows no saving: %v", row)
		}
	}
}

func TestE5BaselineWorseThanQS(t *testing.T) {
	tbl := E5ViewChanges(2)
	for _, row := range tbl.Rows {
		baseline, qs := row[2], row[3]
		if baseline < qs { // string compare is fine for small ints of equal width... avoid:
			_ = baseline
		}
	}
	// Compare numerically on the f=2 row.
	row := tbl.Rows[len(tbl.Rows)-1]
	var baseline, qs int
	mustAtoi(t, row[2], &baseline)
	mustAtoi(t, row[3], &qs)
	if baseline <= qs {
		t.Errorf("enumeration baseline (%d) should need more view changes than QS (%d)", baseline, qs)
	}
}

func mustAtoi(t *testing.T, s string, out *int) {
	t.Helper()
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("not a number: %q", s)
		}
		n = n*10 + int(c-'0')
	}
	*out = n
}

func TestE6TwoRoundsNoFalseSuspicions(t *testing.T) {
	tbl := E6NormalCase(2)
	for _, row := range tbl.Rows {
		if row[3] != "2.0" {
			t.Errorf("normal-case rounds = %v, want 2.0 (Fig 2)", row[3])
		}
		if row[5] != "0" {
			t.Errorf("false suspicions = %v, want 0", row[5])
		}
		// The delayed-PREPARE case takes longer than the normal case.
		if row[4] <= row[3] {
			t.Errorf("delayed case (%v) not slower than normal (%v)", row[4], row[3])
		}
	}
}

func TestE7Classifications(t *testing.T) {
	tbl := E7DetectionMatrix()
	want := map[string]string{
		"crash (silence)":    "permanent (in practice)",
		"commission (proof)": "permanent",
		"repeated omission":  "eventual",
		"bounded timing":     "absorbed (accuracy)",
		"increasing timing":  "eventual",
	}
	for _, row := range tbl.Rows {
		if got := row[4]; got != want[row[0]] {
			t.Errorf("%s classified %q, want %q (row %v)", row[0], got, want[row[0]], row)
		}
		// Detection latency comes from the fd.detection.latency.seconds
		// histogram; every scenario with a timeout suspicion must report
		// a positive median.
		if row[0] != "commission (proof)" {
			var ms float64
			if _, err := fmt.Sscanf(row[len(row)-1], "%f", &ms); err != nil || ms <= 0 {
				t.Errorf("%s: detect p50 = %q, want positive latency", row[0], row[len(row)-1])
			}
		}
	}
}

func TestE8Figure4(t *testing.T) {
	tbl := E8SuspectGraph()
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][3] != "epoch advance" {
		t.Errorf("epoch 2 should force an epoch advance, got %v", tbl.Rows[0])
	}
	if tbl.Rows[1][3] != "{p1,p3,p4}" {
		t.Errorf("epoch 3 quorum = %v, want {p1,p3,p4}", tbl.Rows[1][3])
	}
}

func TestE9Examples(t *testing.T) {
	tbl := E9LineSubgraphs()
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Example 1: leader p4, p2 not a possible follower; unchanged by
	// the extra edge.
	if tbl.Rows[0][3] != "p4" || !strings.Contains(tbl.Rows[0][4], "p2") {
		t.Errorf("Example 1 row wrong: %v", tbl.Rows[0])
	}
	if tbl.Rows[1][3] != "p4" || tbl.Rows[1][2] != tbl.Rows[0][2] {
		t.Errorf("Example 1 + edge changed the maximal line subgraph: %v", tbl.Rows[1])
	}
	// Example 2: the added edge increases the leader.
	if tbl.Rows[2][3] != "p3" || tbl.Rows[3][3] != "p6" {
		t.Errorf("Example 2 leaders = %v / %v, want p3 / p6", tbl.Rows[2][3], tbl.Rows[3][3])
	}
}

func TestE10Ablations(t *testing.T) {
	tbl := E10Ablations()
	byKey := map[string]string{}
	for _, row := range tbl.Rows {
		byKey[row[0]+"/"+row[1]] = row[3]
	}
	if byKey["update forwarding/forward=true"] != "true" {
		t.Error("forwarding on: should converge across the cut link")
	}
	if byKey["update forwarding/forward=false"] != "false" {
		t.Error("forwarding off: should fail to converge across the cut link")
	}
	var adaptive, fixed int
	mustAtoi(t, byKey["adaptive FD timeout/adaptive=true"], &adaptive)
	mustAtoi(t, byKey["adaptive FD timeout/adaptive=false"], &fixed)
	if adaptive >= fixed {
		t.Errorf("adaptive timeout (%d false suspicions) not better than fixed (%d)", adaptive, fixed)
	}
}

func TestE11TendermintIntegration(t *testing.T) {
	tbl := E11Tendermint(4)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[1] != row[2] {
			t.Errorf("%s: decided %v of %v", row[0], row[1], row[2])
		}
		if row[5] != "true" {
			t.Errorf("%s: decision logs diverged", row[0])
		}
		if row[0] != "fault-free" && row[4] != "true" {
			t.Errorf("%s: faulty process not excluded", row[0])
		}
	}
}

func TestE12Scalability(t *testing.T) {
	// n=64 exceeds the former 64-bit adjacency limit; the multi-word
	// graph makes the consortium sizes of §VI-C first-class.
	tbl := E12Scalability([]int{4, 7, 64})
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		var changes int
		mustAtoi(t, row[6], &changes)
		if changes == 0 || changes > 6 {
			t.Errorf("n=%s: quorum changes = %d, want small positive", row[0], changes)
		}
		var updates int
		mustAtoi(t, row[4], &updates)
		if updates == 0 {
			t.Errorf("n=%s: no UPDATE traffic recorded", row[0])
		}
	}
}

func TestE13GapWidens(t *testing.T) {
	tbl := E13FollowerScalability(3)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var prevQS, prevFS int
	for i, row := range tbl.Rows {
		var qs, fs int
		mustAtoi(t, row[2], &qs)
		mustAtoi(t, row[4], &fs)
		if i > 0 {
			if qs-prevQS <= fs-prevFS {
				t.Errorf("f=%s: QS churn growth (%d) not above FS growth (%d)",
					row[0], qs-prevQS, fs-prevFS)
			}
		}
		prevQS, prevFS = qs, fs
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{ID: "T", Title: "demo", Columns: []string{"a", "bb"}}
	tbl.AddRow(1, "x")
	tbl.Notes = append(tbl.Notes, "a note")
	out := tbl.Render()
	for _, want := range []string{"T — demo", "a", "bb", "1", "x", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tbl := Table{ID: "T", Title: "demo", Columns: []string{"a", "b"}}
	tbl.AddRow("plain", `with,comma "and quote"`)
	got := tbl.RenderCSV()
	want := "a,b\nplain,\"with,comma \"\"and quote\"\"\"\n"
	if got != want {
		t.Errorf("RenderCSV = %q, want %q", got, want)
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	tbl := Table{ID: "T", Title: "demo", Columns: []string{"a", "b"}, Notes: []string{"n1"}}
	tbl.AddRow(1, 2)
	got := tbl.RenderMarkdown()
	for _, want := range []string{"### T — demo", "| a | b |", "| --- | --- |", "| 1 | 2 |", "*n1*"} {
		if !strings.Contains(got, want) {
			t.Errorf("RenderMarkdown missing %q:\n%s", want, got)
		}
	}
}
