package experiments

import (
	"fmt"

	"quorumselect/internal/adversary"
	"quorumselect/internal/core"
	"quorumselect/internal/follower"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
)

func newCoreNet(n, f int, seed int64) (*sim.Network, map[ids.ProcessID]*core.Node) {
	cfg := ids.MustConfig(n, f)
	opts := core.DefaultNodeOptions()
	opts.HeartbeatPeriod = 0 // the churn adversary injects suspicions directly
	nodes := make(map[ids.ProcessID]runtime.Node, n)
	coreNodes := make(map[ids.ProcessID]*core.Node, n)
	for _, p := range cfg.All() {
		node := core.NewNode(opts)
		coreNodes[p] = node
		nodes[p] = node
	}
	return sim.NewNetwork(cfg, nodes, sim.Options{Seed: seed}), coreNodes
}

func newFollowerNet(n, f int, seed int64) (*sim.Network, map[ids.ProcessID]*follower.Node) {
	cfg := ids.MustConfig(n, f)
	opts := follower.DefaultNodeOptions()
	opts.HeartbeatPeriod = 0
	nodes := make(map[ids.ProcessID]runtime.Node, n)
	fNodes := make(map[ids.ProcessID]*follower.Node, n)
	for _, p := range cfg.All() {
		node := follower.NewNode(opts)
		fNodes[p] = node
		nodes[p] = node
	}
	return sim.NewNetwork(cfg, nodes, sim.Options{Seed: seed}), fNodes
}

// churnPickers are the adversary heuristics E1/E2 maximize over.
var churnPickers = map[string]adversary.PairPicker{
	"lex":    adversary.PickLex,
	"revlex": adversary.PickReverseLex,
	"random": adversary.PickRandom,
}

// E1QuorumChanges reproduces §VII-A: the maximum number of quorums a
// worst-case adversary forces Algorithm 1 to issue within one epoch,
// against the proof bound f(f+1) of Theorem 3 and the C(f+2,2) the
// paper's own simulations report. "proposed" counts the initial default
// quorum, matching Theorem 4's accounting.
func E1QuorumChanges(maxF, seedsPerPicker int) Table {
	t := Table{
		ID:    "E1",
		Title: "Quorum Selection: adversarial quorum changes per epoch (Thm 3 / §VII-A)",
		Columns: []string{
			"f", "n", "max-issued/epoch", "proposed(+initial)",
			"bound f(f+1)", "sim-bound C(f+2,2)", "within-bounds",
		},
		Notes: []string{
			"max over adversary heuristics (lex, revlex, random) and seeds",
			"paper: 'simulations suggest Algorithm 1 allows at most C(f+2,2) quorums in one epoch'",
		},
	}
	for f := 1; f <= maxF; f++ {
		n := 3*f + 1
		best := 0
		for name, picker := range churnPickers {
			seeds := 1
			if name == "random" {
				seeds = seedsPerPicker
			}
			for s := 0; s < seeds; s++ {
				net, nodes := newCoreNet(n, f, int64(s))
				res := adversary.RunQuorumChurn(net, nodes, adversary.ChurnOptions{
					F: f, Picker: picker, Seed: int64(s),
				})
				if res.MaxPerEpoch > best {
					best = res.MaxPerEpoch
				}
			}
		}
		withinBounds := best <= ids.TheoremThreeBound(f) && best+1 <= ids.TheoremFourBound(f)
		t.AddRow(f, n, best, best+1,
			ids.TheoremThreeBound(f), ids.TheoremFourBound(f), withinBounds)
	}
	return t
}

// E2LowerBound reproduces §VII-B / Theorem 4: the adversary's achieved
// number of proposed quorums versus the C(f+2,2) lower bound any
// deterministic algorithm must admit. The achieved value should track
// the bound closely (the bound is tight for Algorithm 1 up to the pairs
// the shrinking quorum makes unusable).
func E2LowerBound(maxF int) Table {
	t := Table{
		ID:    "E2",
		Title: "Lower bound (Thm 4): adversary-forced quorum proposals vs C(f+2,2)",
		Columns: []string{
			"f", "n", "injections", "proposed(+initial)", "C(f+2,2)", "achieved/bound",
		},
		Notes: []string{
			"adversary per the Thm 4 proof: all suspicions inside F⁺², victim pair reserved",
		},
	}
	for f := 1; f <= maxF; f++ {
		n := 3*f + 1
		bestProposed, bestInj := 0, 0
		for s := int64(0); s < 6; s++ {
			net, nodes := newCoreNet(n, f, s)
			res := adversary.RunQuorumChurn(net, nodes, adversary.ChurnOptions{
				F: f, Picker: adversary.PickRandom, Seed: s,
			})
			if res.QuorumsIssued+1 > bestProposed {
				bestProposed = res.QuorumsIssued + 1
				bestInj = res.Injections
			}
		}
		bound := ids.TheoremFourBound(f)
		t.AddRow(f, n, bestInj, bestProposed, bound,
			fmt.Sprintf("%.2f", float64(bestProposed)/float64(bound)))
	}
	return t
}

// E3FollowerBound reproduces §IX: the leader-targeting adversary's
// churn against Follower Selection versus the 3f+1 per-epoch bound
// (Theorem 9) and the 6f+2 total bound (Corollary 10), alongside the
// Θ(f²) churn Quorum Selection admits at the same f — the paper's
// motivation for Follower Selection.
func E3FollowerBound(maxF int) Table {
	t := Table{
		ID:    "E3",
		Title: "Follower Selection: O(f) churn (Thm 9, Cor 10) vs Quorum Selection's Θ(f²)",
		Columns: []string{
			"f", "n", "FS-issued", "FS-max/epoch", "bound 3f+1", "bound 6f+2",
			"QS-issued", "within-bounds",
		},
	}
	for f := 1; f <= maxF; f++ {
		n := 3*f + 1
		netF, nodesF := newFollowerNet(n, f, 1)
		resF := adversary.RunFollowerChurn(netF, nodesF, adversary.FollowerChurnOptions{F: f})
		netQ, nodesQ := newCoreNet(n, f, 1)
		resQ := adversary.RunQuorumChurn(netQ, nodesQ, adversary.ChurnOptions{F: f})
		within := resF.MaxPerEpoch <= ids.TheoremNineBound(f) &&
			resF.QuorumsIssued <= ids.CorollaryTenBound(f)
		t.AddRow(f, n, resF.QuorumsIssued, resF.MaxPerEpoch,
			ids.TheoremNineBound(f), ids.CorollaryTenBound(f),
			resQ.QuorumsIssued, within)
	}
	return t
}
