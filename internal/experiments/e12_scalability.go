package experiments

import (
	"fmt"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
)

// E12Scalability measures how Quorum Selection scales with the system
// size, the regime the paper positions it for ("consortium or
// permissioned blockchains", §VI-C): virtual time until all correct
// processes agree on a quorum excluding a crashed member, the UPDATE
// traffic that convergence costs (the forwarded eventually-consistent
// broadcasts, Θ(n²) per suspicion event), and the independent-set
// computation's share of it.
func E12Scalability(sizes []int) Table {
	t := Table{
		ID:    "E12",
		Title: "Scalability of Quorum Selection with n (§VI-C consortium regime)",
		Columns: []string{
			"n", "f", "q", "converge(ms)", "UPDATE msgs", "msgs/n²", "quorum changes",
		},
		Notes: []string{
			"one crashed default-quorum member; virtual time from crash detection window start to agreement",
			"UPDATE traffic grows Θ(n²) per suspicion event (broadcast + forward-on-change)",
		},
	}
	for _, n := range sizes {
		f := (n - 1) / 3
		if f < 1 {
			continue
		}
		converge, updates, changes := runE12(n, f)
		t.AddRow(n, f, n-f,
			fmt.Sprintf("%.0f", converge.Seconds()*1000),
			updates,
			fmt.Sprintf("%.1f", float64(updates)/float64(n*n)),
			changes)
	}
	return t
}

func runE12(n, f int) (converge time.Duration, updates int64, changes int) {
	cfg := ids.MustConfig(n, f)
	opts := core.DefaultNodeOptions()
	opts.HeartbeatPeriod = 25 * time.Millisecond
	crashed := ids.ProcessID(2) // a default-quorum member
	nodes := make(map[ids.ProcessID]runtime.Node, n)
	coreNodes := make(map[ids.ProcessID]*core.Node, n)
	for _, p := range cfg.All() {
		if p == crashed {
			nodes[p] = silentNode{}
			continue
		}
		node := core.NewNode(opts)
		coreNodes[p] = node
		nodes[p] = node
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{Latency: sim.ConstantLatency(2 * time.Millisecond)})
	agreedWithout := func() bool {
		var first ids.Quorum
		initialized := false
		for _, node := range coreNodes {
			q := node.CurrentQuorum()
			if q.Contains(crashed) {
				return false
			}
			if !initialized {
				first, initialized = q, true
			} else if !q.Equal(first) {
				return false
			}
		}
		return true
	}
	net.RunUntil(agreedWithout, 2*time.Minute)
	converge = net.Now()
	updates = net.Metrics().Counter("msg.sent.UPDATE")
	for _, node := range coreNodes {
		if node.Selector.QuorumsIssued() > changes {
			changes = node.Selector.QuorumsIssued()
		}
	}
	return converge, updates, changes
}
