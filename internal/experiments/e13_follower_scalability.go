package experiments

import (
	"fmt"

	"quorumselect/internal/adversary"
	"quorumselect/internal/ids"
)

// E13FollowerScalability sweeps the leader-targeting adversary across
// system sizes to show the crossover the paper motivates Follower
// Selection with: Quorum Selection's worst-case churn grows
// quadratically (≈C(f+2,2)) while Follower Selection's grows linearly
// (within 3f+1 / 6f+2), so the gap widens with f.
func E13FollowerScalability(maxF int) Table {
	t := Table{
		ID:    "E13",
		Title: "Churn growth with f: Quorum Selection (Θ(f²)) vs Follower Selection (O(f))",
		Columns: []string{
			"f", "n", "QS-proposed", "C(f+2,2)", "FS-issued", "3f+1", "ratio QS/FS",
		},
		Notes: []string{
			"both under their respective worst-case adversaries (§VII-B and §IX)",
		},
	}
	for f := 1; f <= maxF; f++ {
		n := 3*f + 1
		netQ, nodesQ := newCoreNet(n, f, 1)
		resQ := adversary.RunQuorumChurn(netQ, nodesQ, adversary.ChurnOptions{F: f})
		netF, nodesF := newFollowerNet(n, f, 1)
		resF := adversary.RunFollowerChurn(netF, nodesF, adversary.FollowerChurnOptions{F: f})
		qs := resQ.QuorumsIssued + 1
		fs := resF.QuorumsIssued
		ratio := "∞"
		if fs > 0 {
			ratio = fmt.Sprintf("%.1f", float64(qs)/float64(fs))
		}
		t.AddRow(f, n, qs, ids.TheoremFourBound(f), fs, ids.TheoremNineBound(f), ratio)
	}
	return t
}
