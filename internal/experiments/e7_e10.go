package experiments

import (
	"fmt"
	"time"

	"quorumselect/internal/adversary"
	"quorumselect/internal/core"
	"quorumselect/internal/fd"
	"quorumselect/internal/graph"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/suspicion"
	"quorumselect/internal/wire"
)

// E7DetectionMatrix reproduces the failure classification of §II: each
// failure class is injected against a heartbeating cluster and the
// failure detector's behavior at a correct observer (p1, watching the
// faulty p4) is classified:
//
//	permanent — suspected and never cleared (crash, commission)
//	eventual  — suspected and cleared repeatedly (repeated omission,
//	            increasing timing)
//	absorbed  — finitely many false suspicions, then silence (bounded
//	            timing against the adaptive timeout)
func E7DetectionMatrix() Table {
	t := Table{
		ID:      "E7",
		Title:   "Failure classification and detection (§II)",
		Columns: []string{"failure class", "raised", "canceled", "app-detected", "classification", "paper", "detect p50 (ms)"},
	}

	type scenario struct {
		name    string
		paper   string
		filter  sim.Filter
		crash   bool
		detect  bool // application reports DETECTED (commission proof)
		runtime time.Duration
	}
	faulty := ids.NewProcSet(4)
	scenarios := []scenario{
		{
			name: "crash (silence)", paper: "permanent (in practice)",
			crash: true, runtime: 2 * time.Second,
		},
		{
			name: "commission (proof)", paper: "permanent",
			detect: true, runtime: 2 * time.Second,
		},
		{
			// Omission bursts of 1.5s (beyond any timeout the adaptive
			// detector reaches) followed by 1.5s of normal sending.
			name: "repeated omission", paper: "eventual",
			filter:  &adversary.BurstOmission{Faulty: faulty, On: 1500 * time.Millisecond, Off: 1500 * time.Millisecond},
			runtime: 15 * time.Second,
		},
		{
			// Bounded jitter up to 120ms: a few false suspicions until
			// the adaptive timeout outgrows the jitter.
			name: "bounded timing", paper: "absorbed (accuracy)",
			filter:  adversary.NewJitterDelay(faulty, 120*time.Millisecond, 1),
			runtime: 8 * time.Second,
		},
		{
			// Delay grows by 1.5s every 2.5s — increasing without
			// bound, so each step outruns even the capped timeout.
			name: "increasing timing", paper: "eventual",
			filter:  &adversary.SteppedDelay{Faulty: faulty, Step: 1500 * time.Millisecond, Every: 2500 * time.Millisecond},
			runtime: 18 * time.Second,
		},
	}

	for _, sc := range scenarios {
		raised, canceled, detected, detectP50 := runE7(sc.filter, sc.crash, sc.detect, sc.runtime)
		class := classify(raised, canceled, detected)
		t.AddRow(sc.name, raised, canceled, detected, class, sc.paper, detectP50)
	}
	t.Notes = append(t.Notes,
		"detect p50 = median fd.detection.latency.seconds (expectation issue -> suspicion) across all observers; '-' when no timeout suspicion occurred")
	return t
}

func classify(raised, canceled int, detected bool) string {
	switch {
	case detected:
		return "permanent"
	case raised >= 1 && canceled == 0:
		return "permanent (in practice)"
	case raised >= 3 && canceled >= 3:
		return "eventual"
	case raised >= 1:
		return "absorbed (accuracy)"
	default:
		return "undetected"
	}
}

// e7Node is a heartbeating observer process.
type e7Node struct {
	hbPeriod time.Duration
	adaptive bool
	d        *fd.Detector
	hb       *fd.Heartbeater
}

func (n *e7Node) Init(env runtime.Env) {
	opts := fd.DefaultOptions()
	opts.Adaptive = n.adaptive
	n.d = fd.New(opts)
	n.d.Bind(env, func(ids.ProcessID, wire.Message) {}, nil)
	n.hb = fd.NewHeartbeater(n.d, n.hbPeriod)
	n.hb.Start(env)
}

func (n *e7Node) Receive(from ids.ProcessID, m wire.Message) { n.d.Receive(from, m) }

// detectionP50 reads the median detection latency from the run's
// fd.detection.latency.seconds histogram, formatted in milliseconds
// ("-" when no timeout suspicion was recorded).
func detectionP50(net *sim.Network) string {
	h, ok := net.Metrics().Hist("fd.detection.latency.seconds")
	if !ok || h.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", h.Percentile(50)*1000)
}

func runE7(filter sim.Filter, crash, detect bool, dur time.Duration) (raised, canceled int, detected bool, detectP50 string) {
	cfg := ids.MustConfig(4, 1)
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	observers := make(map[ids.ProcessID]*e7Node, cfg.N)
	for _, p := range cfg.All() {
		if p == 4 && crash {
			nodes[p] = silentNode{}
			continue
		}
		node := &e7Node{hbPeriod: 25 * time.Millisecond, adaptive: true}
		observers[p] = node
		nodes[p] = node
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{
		Latency: sim.ConstantLatency(2 * time.Millisecond),
		Filter:  filter,
	})
	if detect {
		// The application found a proof of misbehavior shortly into
		// the run.
		net.Env(1).After(100*time.Millisecond, func() { observers[1].d.Detected(4) })
	}
	net.Run(dur)
	o := observers[1]
	return o.d.SuspicionsRaised(4), o.d.SuspicionsCanceled(4), o.d.IsDetected(4), detectionP50(net)
}

// E8SuspectGraph replays Figure 4 exactly: the 5-process suspect graph
// whose epoch-2 suspicions admit no quorum and whose epoch-3 graph
// yields {p1,p3,p4} as the lexicographically-first independent set.
func E8SuspectGraph() Table {
	t := Table{
		ID:      "E8",
		Title:   "Figure 4: suspect graph, epochs and independent sets",
		Columns: []string{"epoch", "edges", "independent set of size 3", "chosen quorum"},
	}
	cfg := ids.MustConfig(5, 2)
	store := buildFig4Store(cfg)
	for _, epoch := range []uint64{2, 3} {
		g := store.SuspectGraphAt(epoch)
		edges := fmt.Sprintf("%v", g.Edges())
		set, ok := g.FirstIndependentSet(cfg.Q())
		if !ok {
			t.AddRow(epoch, edges, "none", "epoch advance")
			continue
		}
		t.AddRow(epoch, edges, "exists", ids.NewQuorum(set).String())
	}
	t.Notes = append(t.Notes,
		"paper: 'in epoch 2, no independent set of size 3 can be found; at epoch 3 the edge (p3,p4) is removed'")
	return t
}

// buildFig4Store loads the Figure 4 suspicions into a store: (1,2),
// (1,5), (2,5) at epoch 3 and (3,4) at epoch 2.
func buildFig4Store(cfg ids.Config) *suspicion.Store {
	// A bare store is enough for a static replay; the network exists
	// only to provide an Env.
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	for _, p := range cfg.All() {
		nodes[p] = silentNode{}
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{})
	store := suspicion.New(cfg, suspicion.Options{Forward: false})
	store.Bind(net.Env(1), nil)
	store.HandleUpdate(&wire.Update{Owner: 1, Row: []uint64{0, 3, 0, 0, 3}, Sig: []byte{0}})
	store.HandleUpdate(&wire.Update{Owner: 2, Row: []uint64{0, 0, 0, 0, 3}, Sig: []byte{0}})
	store.HandleUpdate(&wire.Update{Owner: 3, Row: []uint64{0, 0, 0, 2, 0}, Sig: []byte{0}})
	return store
}

// E9LineSubgraphs replays Examples 1 and 2 of §VIII: maximal line
// subgraphs, designated leaders and possible followers.
func E9LineSubgraphs() Table {
	t := Table{
		ID:      "E9",
		Title:   "Examples 1–2 (§VIII): maximal line subgraphs and possible followers",
		Columns: []string{"case", "graph edges", "maximal line subgraph", "leader", "not possible followers"},
	}
	// Example 1: G on 7 nodes; p2 is not a possible follower; adding
	// (p2,p5) changes nothing.
	g1 := graph.New(7)
	g1.AddEdge(1, 2)
	g1.AddEdge(2, 3)
	l1 := graph.MaximalLineSubgraph(g1)
	t.AddRow("Example 1", fmt.Sprintf("%v", g1.Edges()), fmt.Sprintf("%v", l1.Edges()),
		l1.Leader(), notPossible(l1))
	g1b := g1.Clone()
	g1b.AddEdge(2, 5)
	l1b := graph.MaximalLineSubgraph(g1b)
	t.AddRow("Example 1 + (p2,p5)", fmt.Sprintf("%v", g1b.Edges()), fmt.Sprintf("%v", l1b.Edges()),
		l1b.Leader(), notPossible(l1b))
	// Example 2: adding (p3,p5) changes leader and subgraph.
	g2 := graph.New(7)
	g2.AddEdge(1, 2)
	g2.AddEdge(4, 5)
	l2 := graph.MaximalLineSubgraph(g2)
	t.AddRow("Example 2 before", fmt.Sprintf("%v", g2.Edges()), fmt.Sprintf("%v", l2.Edges()),
		l2.Leader(), notPossible(l2))
	g2.AddEdge(3, 5)
	l2b := graph.MaximalLineSubgraph(g2)
	t.AddRow("Example 2 + (p3,p5)", fmt.Sprintf("%v", g2.Edges()), fmt.Sprintf("%v", l2b.Edges()),
		l2b.Leader(), notPossible(l2b))
	return t
}

func notPossible(l *graph.LineSubgraph) string {
	var out []string
	for i := 1; i <= l.N(); i++ {
		p := ids.ProcessID(i)
		if !l.IsPossibleFollower(p) {
			out = append(out, p.String())
		}
	}
	if len(out) == 0 {
		return "(none)"
	}
	return fmt.Sprintf("%v", out)
}

// E10Ablations measures the design choices §VI-C argues for: (a) update
// forwarding versus none under a cut link (agreement), and (b) adaptive
// versus fixed failure-detector timeouts under bounded extra delay
// (false-suspicion rate, the eventual-strong-accuracy mechanism).
func E10Ablations() Table {
	t := Table{
		ID:      "E10",
		Title:   "Ablations (§VI-C design choices)",
		Columns: []string{"ablation", "variant", "metric", "value"},
	}

	// (a) forwarding: cut p1→p3; does p3 still learn p1's suspicion?
	for _, forward := range []bool{true, false} {
		converged := runE10Forwarding(forward)
		t.AddRow("update forwarding", fmt.Sprintf("forward=%v", forward),
			"p3 converged despite cut link", converged)
	}

	// (b) adaptive timeout under jittered (≤120ms) delay from p4.
	for _, adaptive := range []bool{true, false} {
		raised, detectP50 := runE10Adaptive(adaptive)
		t.AddRow("adaptive FD timeout", fmt.Sprintf("adaptive=%v", adaptive),
			"false suspicions of slow-but-correct p4", raised)
		// Separate first column so the (ablation, variant) key stays
		// unique per metric for consumers indexing rows pairwise.
		t.AddRow("FD detection latency", fmt.Sprintf("adaptive=%v", adaptive),
			"p50 suspicion latency (ms)", detectP50)
	}
	return t
}

func runE10Forwarding(forward bool) bool {
	cut := sim.FilterFunc(func(from, to ids.ProcessID, _ wire.Message, _ time.Duration) sim.Verdict {
		return sim.Verdict{Drop: from == 1 && to == 3}
	})
	cfg := ids.MustConfig(4, 1)
	opts := core.DefaultNodeOptions()
	opts.HeartbeatPeriod = 0
	opts.Store = suspicion.Options{Forward: forward}
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	coreNodes := make(map[ids.ProcessID]*core.Node, cfg.N)
	for _, p := range cfg.All() {
		node := core.NewNode(opts)
		coreNodes[p] = node
		nodes[p] = node
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{Filter: cut})
	coreNodes[1].Selector.OnSuspected(ids.NewProcSet(2))
	net.Run(2 * time.Second)
	return coreNodes[3].Store.Value(1, 2) == 1
}

func runE10Adaptive(adaptive bool) (int, string) {
	faulty := ids.NewProcSet(4)
	slow := adversary.NewJitterDelay(faulty, 120*time.Millisecond, 2)
	cfg := ids.MustConfig(4, 1)
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	observers := make(map[ids.ProcessID]*e7Node, cfg.N)
	for _, p := range cfg.All() {
		node := &e7Node{hbPeriod: 25 * time.Millisecond, adaptive: adaptive}
		observers[p] = node
		nodes[p] = node
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{
		Latency: sim.ConstantLatency(2 * time.Millisecond),
		Filter:  slow,
	})
	net.Run(6 * time.Second)
	return observers[1].d.SuspicionsRaised(4), detectionP50(net)
}
