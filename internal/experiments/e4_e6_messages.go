package experiments

import (
	"fmt"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/fd"
	"quorumselect/internal/ids"
	"quorumselect/internal/pbftlite"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/wire"
	"quorumselect/internal/xpaxos"
)

// countPBFT runs the PBFT-style normal case and returns the total
// inter-replica protocol messages for the given number of requests.
func countPBFT(n, f, requests int, active bool) int64 {
	cfg := ids.MustConfig(n, f)
	nodes := make(map[ids.ProcessID]runtime.Node, n)
	var entry *pbftlite.Replica
	replicas := make([]*pbftlite.Replica, 0, n)
	for _, p := range cfg.All() {
		if active {
			opts := core.DefaultNodeOptions()
			opts.HeartbeatPeriod = 0
			node, r := pbftlite.NewQSNode(pbftlite.Options{}, opts)
			if entry == nil {
				entry = r
			}
			replicas = append(replicas, r)
			nodes[p] = node
		} else {
			sn := pbftlite.NewStandaloneNode(pbftlite.Options{}, fd.DefaultOptions(), 0)
			if entry == nil {
				entry = sn.Replica
			}
			replicas = append(replicas, sn.Replica)
			nodes[p] = sn
		}
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{})
	for i := 1; i <= requests; i++ {
		entry.Submit(&wire.Request{Client: 1, Seq: uint64(i), Op: []byte("op")})
	}
	net.RunUntil(func() bool {
		for _, r := range replicas {
			if r.Participating() && r.LastExecuted() < uint64(requests) {
				return false
			}
		}
		return true
	}, 30*time.Second)
	m := net.Metrics()
	return m.Counter("msg.sent.PRE-PREPARE") +
		m.Counter("msg.sent.PBFT-PREPARE") +
		m.Counter("msg.sent.PBFT-COMMIT")
}

// countXPaxos runs the XPaxos normal case over the default quorum and
// returns total inter-replica protocol messages. With fullN, the
// replication degree is configured so the active quorum is all of Π —
// the "no selection, everyone participates" reference point for the
// n = 2f+1 regime.
func countXPaxos(n, f, requests int) int64 {
	cfg := ids.MustConfig(n, f)
	nodes := make(map[ids.ProcessID]runtime.Node, n)
	var entry *xpaxos.Replica
	replicas := make([]*xpaxos.Replica, 0, n)
	for _, p := range cfg.All() {
		opts := core.DefaultNodeOptions()
		opts.HeartbeatPeriod = 0
		node, r := xpaxos.NewQSNode(xpaxos.Options{}, opts)
		if entry == nil {
			entry = r
		}
		replicas = append(replicas, r)
		nodes[p] = node
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{})
	for i := 1; i <= requests; i++ {
		entry.Submit(&wire.Request{Client: 1, Seq: uint64(i), Op: []byte("op")})
	}
	net.RunUntil(func() bool {
		for _, r := range replicas {
			if r.InQuorum() && r.LastExecuted() < uint64(requests) {
				return false
			}
		}
		return true
	}, 30*time.Second)
	m := net.Metrics()
	return m.Counter("msg.sent.PREPARE") + m.Counter("msg.sent.COMMIT")
}

// E4MessageReduction reproduces the §I claim: selecting an active
// quorum of n−f processes drops ≈1/3 of the inter-replica messages in
// n = 3f+1 systems and ≈1/2 in n = 2f+1 systems. The per-link fanout
// ratio (n−q)/n is exactly f/n; the measured message reduction is
// larger because the all-to-all phases shrink quadratically.
func E4MessageReduction(maxF, requests int) Table {
	t := Table{
		ID:    "E4",
		Title: "Message reduction from active quorums (§I, Distler et al.)",
		Columns: []string{
			"regime", "f", "n", "q", "msgs/req all", "msgs/req quorum",
			"fanout-drop f/n", "measured-drop",
		},
		Notes: []string{
			"paper: 'these systems can drop approximately 1/3 or 1/2 of the inter-replica messages'",
			"fanout-drop is the per-destination saving; measured-drop includes the quadratic phases",
		},
	}
	for f := 1; f <= maxF; f++ {
		// n = 3f+1 regime (PBFT/Tendermint/BFT-SMaRt shape).
		n := 3*f + 1
		all := countPBFT(n, f, requests, false)
		quorum := countPBFT(n, f, requests, true)
		t.AddRow("3f+1", f, n, n-f,
			all/int64(requests), quorum/int64(requests),
			fmt.Sprintf("%.2f", float64(f)/float64(n)),
			fmt.Sprintf("%.2f", 1-float64(quorum)/float64(all)))

		// n = 2f+1 regime (trusted-component systems / XPaxos): the
		// active quorum has q = f+1; the reference "everyone
		// participates" run uses the same protocol with all n active,
		// modeled as a configuration with failure threshold 0.
		n2 := 2*f + 1
		all2 := countXPaxos(n2, 0, requests) // q = n: everyone active
		quorum2 := countXPaxos(n2, f, requests)
		t.AddRow("2f+1", f, n2, f+1,
			all2/int64(requests), quorum2/int64(requests),
			fmt.Sprintf("%.2f", float64(f)/float64(n2)),
			fmt.Sprintf("%.2f", 1-float64(quorum2)/float64(all2)))
	}
	return t
}

// E5ViewChanges reproduces §V-B / §I: the number of quorum changes a
// set of f crashed processes (occupying the low identifiers, worst case
// for the lexicographic enumeration) forces before the system settles
// on a working quorum — original XPaxos enumeration versus Quorum
// Selection, against C(n,f) and the O(f²) of Theorem 3.
func E5ViewChanges(maxF int) Table {
	t := Table{
		ID:    "E5",
		Title: "View changes to reach a working quorum: XPaxos enumeration vs Quorum Selection (§V-B)",
		Columns: []string{
			"f", "n", "baseline-viewchanges", "QS-viewchanges",
			"enumeration C(n,f)", "QS bound O(f²)",
		},
		Notes: []string{
			"f crashed processes on the low identifiers; baseline iterates quorums in order",
		},
	}
	for f := 1; f <= maxF; f++ {
		n := 3*f + 1
		baseline := runE5(n, f, false)
		qs := runE5(n, f, true)
		t.AddRow(f, n, baseline, qs, ids.Binomial(n, f), ids.TheoremThreeBound(f))
	}
	return t
}

type silentNode struct{}

func (silentNode) Init(runtime.Env)                    {}
func (silentNode) Receive(ids.ProcessID, wire.Message) {}

// runE5 crashes processes p1..pf and returns the maximum number of view
// changes any correct replica performed before the active quorum is
// fault-free and stable.
func runE5(n, f int, useQS bool) int {
	cfg := ids.MustConfig(n, f)
	crashed := ids.NewProcSet()
	for i := 1; i <= f; i++ {
		crashed.Add(ids.ProcessID(i))
	}
	nodes := make(map[ids.ProcessID]runtime.Node, n)
	replicas := make(map[ids.ProcessID]*xpaxos.Replica, n)
	for _, p := range cfg.All() {
		if crashed.Contains(p) {
			nodes[p] = silentNode{}
			continue
		}
		if useQS {
			opts := core.DefaultNodeOptions()
			opts.HeartbeatPeriod = 15 * time.Millisecond
			node, r := xpaxos.NewQSNode(xpaxos.Options{}, opts)
			replicas[p] = r
			nodes[p] = node
		} else {
			sOpts := xpaxos.DefaultStandaloneOptions()
			sOpts.HeartbeatPeriod = 15 * time.Millisecond
			sn := xpaxos.NewStandaloneNode(sOpts)
			replicas[p] = sn.Replica
			nodes[p] = sn
		}
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{Latency: sim.ConstantLatency(2 * time.Millisecond)})
	net.RunUntil(func() bool {
		for _, r := range replicas {
			q := r.ActiveQuorum()
			for _, c := range crashed.Sorted() {
				if q.Contains(c) {
					return false
				}
			}
		}
		return true
	}, 2*time.Minute)
	max := 0
	for _, r := range replicas {
		if r.ViewChanges() > max {
			max = r.ViewChanges()
		}
	}
	return max
}

// E6NormalCase reproduces Figs 2–3: commit latency of the XPaxos normal
// case in communication rounds (one round = one link latency), with and
// without the delayed-PREPARE scenario, plus the count of false
// suspicions between correct processes (which must be zero — the §V-A
// accuracy argument).
func E6NormalCase(maxF int) Table {
	t := Table{
		ID:    "E6",
		Title: "XPaxos normal case (Figs 2–3): rounds to commit, no false suspicions",
		Columns: []string{
			"f", "n", "q", "rounds(normal)", "rounds(delayed PREPARE)", "false-suspicions",
		},
		Notes: []string{
			"Fig 2 predicts 2 rounds (PREPARE, COMMIT); the delayed scenario adds the detour of Fig 3",
		},
	}
	const lat = 10 * time.Millisecond
	for f := 1; f <= maxF; f++ {
		n := 3*f + 1
		normal, falseSusNormal := runE6(n, f, lat, false)
		delayed, falseSusDelayed := runE6(n, f, lat, true)
		t.AddRow(f, n, n-f,
			fmt.Sprintf("%.1f", normal), fmt.Sprintf("%.1f", delayed),
			falseSusNormal+falseSusDelayed)
	}
	return t
}

// runE6 returns the commit latency (in rounds of lat) of one request at
// the leader and the number of suspicions raised anywhere.
func runE6(n, f int, lat time.Duration, delayPrepare bool) (rounds float64, falseSuspicions int64) {
	cfg := ids.MustConfig(n, f)
	var filter sim.Filter
	if delayPrepare {
		filter = sim.FilterFunc(func(from, to ids.ProcessID, m wire.Message, _ time.Duration) sim.Verdict {
			// Delay the PREPARE to the highest quorum member past the
			// COMMIT exchange of everyone else.
			if m.Kind() == wire.TypePrepare && to == ids.ProcessID(n-f) {
				return sim.Verdict{Delay: 3 * lat}
			}
			return sim.Verdict{}
		})
	}
	nodes := make(map[ids.ProcessID]runtime.Node, n)
	replicas := make(map[ids.ProcessID]*xpaxos.Replica, n)
	for _, p := range cfg.All() {
		opts := core.DefaultNodeOptions()
		opts.HeartbeatPeriod = 0
		node, r := xpaxos.NewQSNode(xpaxos.Options{}, opts)
		replicas[p] = r
		nodes[p] = node
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{Latency: sim.ConstantLatency(lat), Filter: filter})
	start := net.Now()
	replicas[1].Submit(&wire.Request{Client: 1, Seq: 1, Op: []byte("op")})
	net.RunUntil(func() bool { return replicas[1].LastExecuted() >= 1 }, time.Minute)
	elapsed := net.Now() - start
	return float64(elapsed) / float64(lat), net.Metrics().Counter("fd.suspicion.raised")
}
