// Package experiments regenerates every quantitative claim, bound,
// figure and example of the paper as a printable table. DESIGN.md §3
// maps each experiment (E1–E10) to its paper anchor; EXPERIMENTS.md
// records paper-expected vs. measured values.
//
// All experiments are deterministic given their seeds and run entirely
// on the discrete-event simulator.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's result in printable form.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting every cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = pad(cell, w)
		}
		fmt.Fprintf(&b, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

func pad(s string, w int) string {
	if d := w - len([]rune(s)); d > 0 {
		return s + strings.Repeat(" ", d)
	}
	return s
}

// RenderCSV returns the table as RFC-4180-ish CSV (header row first;
// cells containing commas or quotes are quoted).
func (t *Table) RenderCSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, cell := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(cell, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(cell)
		}
	}
	b.WriteByte('\n')
}

// RenderMarkdown returns the table as GitHub-flavored markdown, with
// the title as a heading and notes as a trailing list.
func (t *Table) RenderMarkdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}
