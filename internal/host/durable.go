// Durable state threading: the kernel owns the storage.Store, tags WAL
// records by module (suspicion matrix vs application), composes the
// two-section snapshot, and drives recovery at Init in dependency
// order — suspicion state first, then the application, then one quorum
// re-evaluation over the restored suspect graph.
package host

import (
	"errors"
	"fmt"
	"time"

	"quorumselect/internal/logging"
	"quorumselect/internal/obs/tracer"
	"quorumselect/internal/runtime"
	"quorumselect/internal/storage"
	"quorumselect/internal/wire"
)

// WAL record tags: the first byte of every host-level record names the
// module that owns the payload.
const (
	tagSuspicion byte = 1
	tagApp       byte = 2
)

// Suspicion record kinds (second byte under tagSuspicion).
const (
	susKindCell  byte = 1
	susKindEpoch byte = 2
)

// AppLog is the slice of the durable store the kernel hands a
// DurableApp: appends are tagged as application records, Sync is the
// persist-before-act barrier, and Snapshot atomically replaces the WAL
// with a snapshot composed of the kernel's suspicion section plus the
// application payload.
type AppLog interface {
	// Append writes one application record to the WAL (durable after
	// the next group commit).
	Append(rec []byte) error
	// Sync forces the group commit: every prior Append is durable when
	// it returns without error.
	Sync() error
	// Snapshot installs app as the application section of a new
	// snapshot covering the whole log so far.
	Snapshot(app []byte) error
}

// DurableApp is the optional durability extension of App: an
// application that persists records through the AppLog implements it to
// be handed its recovered state before the host starts delivering
// traffic. Recover runs after Attach and may be called with a nil
// snapshot and no records (fresh start).
type DurableApp interface {
	App
	Recover(log AppLog, snapshot []byte, records [][]byte) error
}

// appLog implements AppLog over the host's store.
type appLog struct{ h *Host }

func (l appLog) Append(rec []byte) error { return l.h.appendTagged(tagApp, rec) }

func (l appLog) Sync() error {
	if l.h.storage == nil {
		return storage.ErrClosed
	}
	return l.h.storageErr("sync", l.h.storage.Sync())
}

func (l appLog) Snapshot(app []byte) error {
	if l.h.storage == nil {
		return storage.ErrClosed
	}
	var b wire.Buffer
	b.PutBytes(l.h.encodeSuspicionState())
	b.PutBytes(app)
	return l.h.storageErr("snapshot", l.h.storage.WriteSnapshot(b.Bytes()))
}

func (h *Host) appendTagged(tag byte, payload []byte) error {
	if h.storage == nil {
		return storage.ErrClosed
	}
	rec := make([]byte, 0, 1+len(payload))
	rec = append(rec, tag)
	rec = append(rec, payload...)
	return h.storageErr("append", h.storage.Append(rec))
}

// storageErr is the kernel's durability failure policy. ErrCrashed (a
// MemBackend after an injected power cut — the process is already dead
// by fiat) and ErrClosed (Stop raced the event loop) are shutdown
// artifacts: counted and returned for the caller to tolerate. Anything
// else is a real backend refusing to persist (ENOSPC, EIO, an oversized
// record): Store errors are sticky, so from this point every
// persist-before-act barrier would silently pass while nothing reaches
// disk — the replica would keep sending COMMITs and view-change votes
// with zero durability behind them, breaking the fork-safety argument
// of DESIGN.md §10. A durable replica that cannot persist must
// fail-stop, so the kernel panics.
func (h *Host) storageErr(op string, err error) error {
	if err == nil {
		return nil
	}
	h.env.Metrics().Inc("host.storage.errors", 1)
	if errors.Is(err, storage.ErrCrashed) || errors.Is(err, storage.ErrClosed) {
		return err
	}
	// Last act before the fail-stop: dump the flight recorder so the
	// causal timeline leading into the persist failure survives the
	// process.
	tracer.WriteCrash(fmt.Sprintf("durable %s failed: %v", op, err),
		h.env.Tracer(), h.env.Events())
	panic(fmt.Sprintf("host: durable %s failed: %v — halting: continuing without durability would break persist-before-act (DESIGN.md §10)", op, err))
}

// openStorage opens (and thereby recovers) the durable store, restores
// the suspicion matrix, replays application records into the
// DurableApp, installs the suspicion persister, and re-evaluates the
// quorum over the restored suspect graph. A host configured for
// durability must not run without it, so open failures panic.
func (h *Host) openStorage(env runtime.Env) {
	o := h.opts.StorageOptions
	if o.Metrics == nil {
		o.Metrics = env.Metrics()
	}
	if o.After == nil {
		o.After = func(d time.Duration, fn func()) storage.Timer {
			return env.After(d, fn)
		}
	}
	st, err := storage.Open(h.opts.Storage, o)
	if err != nil {
		panic(fmt.Sprintf("host: open storage: %v", err))
	}
	h.storage = st
	snapshot, records := st.Recovered()

	var appSnap []byte
	restored := false
	if snapshot != nil {
		r := wire.NewReader(snapshot)
		susSnap, err1 := r.Bytes()
		app, err2 := r.Bytes()
		if err1 != nil || err2 != nil {
			panic(fmt.Sprintf("host: corrupt snapshot framing (walIndex %d)", st.SnapshotIndex()))
		}
		appSnap = app
		if h.restoreSuspicionState(susSnap) {
			restored = true
		}
	}
	appRecs := records[:0]
	for _, rec := range records {
		switch {
		case len(rec) == 0:
			// Unreachable: the store rejects empty records.
		case rec[0] == tagSuspicion:
			if h.restoreSuspicionRecord(rec[1:]) {
				restored = true
			}
		case rec[0] == tagApp:
			appRecs = append(appRecs, rec[1:])
		default:
			env.Metrics().Inc("host.storage.unknown_records", 1)
		}
	}
	if da, ok := h.opts.App.(DurableApp); ok {
		if err := da.Recover(appLog{h}, appSnap, appRecs); err != nil {
			panic(fmt.Sprintf("host: application recovery: %v", err))
		}
	}
	if h.Store != nil {
		h.Store.SetPersister(storePersister{h})
	}
	if restored && h.Selection != nil {
		// The restored matrix may imply a different quorum than the
		// initial one; re-evaluate before any traffic is delivered.
		h.Selection.UpdateQuorum()
	}
	env.Metrics().Inc("host.storage.recoveries", 1)
}

// closeStorage flushes and closes the WAL at Stop. Close errors are
// observable but not fatal: on a crashed in-memory backend (chaos
// hard-crash) the final flush is expected to fail.
func (h *Host) closeStorage() {
	if h.storage == nil {
		return
	}
	if err := h.storage.Close(); err != nil {
		h.env.Metrics().Inc("host.storage.close_errors", 1)
		h.env.Logger().Logf(logging.LevelDebug, "host: storage close: %v", err)
	}
	h.storage = nil
}

// InitFresh implements runtime.FreshStarter: wipe the durable state,
// then Init. This is the pre-durability restart semantics (a node that
// comes back with amnesia), kept as an explicit option for experiments
// and regression tests.
func (h *Host) InitFresh(env runtime.Env) {
	if h.opts.Storage != nil {
		if err := storage.Wipe(h.opts.Storage); err != nil {
			panic(fmt.Sprintf("host: wipe storage: %v", err))
		}
	}
	h.Init(env)
}

// storePersister routes suspicion-store writes into tagged WAL
// records. Cell and epoch records are appended without a forced sync:
// losing a suffix of monotone CRDT writes is safe (the matrix re-merges
// from peers), so suspicion durability rides the group-commit batch and
// the max-latency flush timer.
type storePersister struct{ h *Host }

func (p storePersister) PersistCell(l, k int, epoch uint64) {
	var b wire.Buffer
	b.PutUint8(susKindCell)
	b.PutUint32(uint32(l))
	b.PutUint32(uint32(k))
	b.PutUint64(epoch)
	_ = p.h.appendTagged(tagSuspicion, b.Bytes())
}

func (p storePersister) PersistEpoch(epoch uint64) {
	var b wire.Buffer
	b.PutUint8(susKindEpoch)
	b.PutUint64(epoch)
	_ = p.h.appendTagged(tagSuspicion, b.Bytes())
}

// encodeSuspicionState serializes the suspicion matrix and epoch as the
// kernel section of a snapshot: epoch, n, then every non-zero cell.
func (h *Host) encodeSuspicionState() []byte {
	if h.Store == nil {
		return nil
	}
	matrix := h.Store.Snapshot()
	var b wire.Buffer
	b.PutUint64(h.Store.Epoch())
	b.PutUint32(uint32(len(matrix)))
	count := 0
	for _, row := range matrix {
		for _, v := range row {
			if v != 0 {
				count++
			}
		}
	}
	b.PutUint32(uint32(count))
	for l, row := range matrix {
		for k, v := range row {
			if v != 0 {
				b.PutUint32(uint32(l))
				b.PutUint32(uint32(k))
				b.PutUint64(v)
			}
		}
	}
	return b.Bytes()
}

// restoreSuspicionState re-applies an encoded matrix section; it
// reports whether anything was restored. A section from a different
// cluster size is skipped (counted, not fatal).
func (h *Host) restoreSuspicionState(data []byte) bool {
	if h.Store == nil || len(data) == 0 {
		return false
	}
	r := wire.NewReader(data)
	epoch, err1 := r.Uint64()
	n, err2 := r.Uint32()
	count, err3 := r.Uint32()
	if err1 != nil || err2 != nil || err3 != nil {
		h.env.Metrics().Inc("host.storage.bad_suspicion_state", 1)
		return false
	}
	if int(n) != h.env.Config().N {
		h.env.Metrics().Inc("host.storage.bad_suspicion_state", 1)
		return false
	}
	restored := false
	for i := uint32(0); i < count; i++ {
		l, e1 := r.Uint32()
		k, e2 := r.Uint32()
		v, e3 := r.Uint64()
		if e1 != nil || e2 != nil || e3 != nil {
			h.env.Metrics().Inc("host.storage.bad_suspicion_state", 1)
			return restored
		}
		h.Store.RestoreCell(int(l), int(k), v)
		restored = true
	}
	if epoch > 1 {
		h.Store.RestoreEpoch(epoch)
		restored = true
	}
	return restored
}

// restoreSuspicionRecord replays one tagged suspicion WAL record.
func (h *Host) restoreSuspicionRecord(payload []byte) bool {
	if h.Store == nil {
		return false
	}
	r := wire.NewReader(payload)
	kind, err := r.Uint8()
	if err != nil {
		return false
	}
	switch kind {
	case susKindCell:
		l, e1 := r.Uint32()
		k, e2 := r.Uint32()
		v, e3 := r.Uint64()
		if e1 != nil || e2 != nil || e3 != nil {
			return false
		}
		h.Store.RestoreCell(int(l), int(k), v)
		return true
	case susKindEpoch:
		e, err := r.Uint64()
		if err != nil {
			return false
		}
		h.Store.RestoreEpoch(e)
		return true
	default:
		h.env.Metrics().Inc("host.storage.unknown_records", 1)
		return false
	}
}
