// Package host is the protocol-agnostic replica-host kernel: the one
// place the paper's Figure 1 architecture (network → failure detector →
// {suspicion store → selector, application}) is wired together. Every
// composed process in this repository — the quorum-selection node
// (internal/core), the follower-selection node (internal/follower), and
// the standalone baselines in internal/{xpaxos,pbftlite,bchain} — is a
// thin shell over host.New; the kernel owns the failure-detector bind,
// heartbeat traffic, UPDATE routing, quorum fan-out, and the node
// lifecycle (Stop tears down heartbeaters, expectation timers, and the
// application without leaking goroutines or timers).
//
// Two modes cover every composition in the repository:
//
//   - ModeQuorumSelection runs the full stack: suspicions flow through
//     the eventually-consistent suspicion store into an Algorithm-1/2
//     selection module (supplied as a factory, so the kernel does not
//     depend on any particular selector), and issued quorums fan out to
//     the application.
//   - ModeFDOnly runs network → failure detector → application, the
//     wiring of the enumeration/broadcast/chain baselines: suspicions
//     go straight to the configured OnSuspect hook, and no store or
//     selector exists.
package host

import (
	"time"

	"quorumselect/internal/fd"
	"quorumselect/internal/ids"
	"quorumselect/internal/obs"
	"quorumselect/internal/quorum"
	"quorumselect/internal/runtime"
	"quorumselect/internal/storage"
	"quorumselect/internal/suspicion"
	"quorumselect/internal/wire"
)

// Mode selects which modules the kernel composes.
type Mode int

const (
	// ModeQuorumSelection composes the full Figure 1 stack: failure
	// detector, suspicion store, and a selection module built by
	// Options.NewSelection.
	ModeQuorumSelection Mode = iota + 1
	// ModeFDOnly composes network → failure detector → application,
	// with suspicions routed to Options.OnSuspect.
	ModeFDOnly
)

// State is the host lifecycle state.
type State int

const (
	// StateNew is a constructed, un-Init'ed host.
	StateNew State = iota
	// StateRunning is a host between Init and Stop.
	StateRunning
	// StateStopped is a torn-down host: timers canceled, heartbeats
	// silenced, application detached. A stopped host drops traffic.
	StateStopped
)

// String returns the lifecycle state name.
func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunning:
		return "running"
	case StateStopped:
		return "stopped"
	default:
		return "invalid"
	}
}

// App is the application module of Figure 1: it receives every
// delivered non-UPDATE protocol message and may issue expectations and
// detections through the Detector it is given in Attach.
type App interface {
	// Attach hands the application its environment and failure
	// detector before any event is delivered.
	Attach(env runtime.Env, detector *fd.Detector)
	// Deliver receives an authenticated application message.
	Deliver(from ids.ProcessID, m wire.Message)
}

// QuorumApp is an App that also consumes the selection module's
// ⟨QUORUM, Q⟩ events. Applications composed in ModeQuorumSelection
// normally implement it; the kernel type-asserts at Init.
type QuorumApp interface {
	App
	// OnQuorum receives ⟨QUORUM, Q⟩ from the selection module.
	OnQuorum(q ids.Quorum)
}

// Stoppable is the optional teardown extension of App and Selection: a
// module holding timers (round timeouts, ingress flush timers)
// implements it so Host.Stop can cancel them.
type Stoppable interface {
	Stop()
}

// Selection is a quorum-selection state machine (Algorithm 1 or 2)
// composed behind the suspicion store in ModeQuorumSelection.
type Selection interface {
	// OnSuspected receives the failure detector's ⟨SUSPECTED, S⟩.
	OnSuspected(suspected ids.ProcSet)
	// UpdateQuorum re-evaluates the quorum; wired to the store's
	// onChange hook.
	UpdateQuorum()
	// Current returns the last issued (or initial) quorum.
	Current() ids.Quorum
}

// MessageHandler is an optional Selection extension for modules that
// consume their own protocol messages (Algorithm 2's FOLLOWERS). A
// handled message does not reach the application.
type MessageHandler interface {
	HandleMessage(from ids.ProcessID, m wire.Message) bool
}

// SelectionFactory builds the selection module at Init. issue must be
// called for every ⟨QUORUM, Q⟩ event the module emits; the kernel logs
// the quorum and fans it out to the application.
type SelectionFactory func(env runtime.Env, store *suspicion.Store, detector *fd.Detector, issue func(ids.Quorum)) Selection

// Options configures a composed replica host.
type Options struct {
	// Mode selects the composition (required).
	Mode Mode
	// FD configures the failure detector.
	FD fd.Options
	// Store configures the suspicion store (ModeQuorumSelection only).
	Store suspicion.Options
	// HeartbeatPeriod enables the §II heartbeat traffic when positive.
	HeartbeatPeriod time.Duration
	// App is the optional application module.
	App App
	// NewSelection builds the selection module (required in
	// ModeQuorumSelection, ignored in ModeFDOnly).
	NewSelection SelectionFactory
	// OnSuspect receives the detector's ⟨SUSPECTED, S⟩ in ModeFDOnly
	// (may be nil when suspicions are masked, as in classic PBFT). In
	// ModeQuorumSelection suspicions route to the selection module and
	// this field is ignored.
	OnSuspect fd.OnSuspect
	// Storage, when set, makes the host durable: at Init the kernel
	// opens (and recovers) a storage.Store over this backend, restores
	// the suspicion matrix, hands a DurableApp its recovered records,
	// and persists suspicion writes from then on; Stop flushes and
	// closes the WAL. Nil keeps the host fully in-memory.
	Storage storage.Backend
	// StorageOptions tune the WAL (segment size, group-commit batch,
	// flush latency). The kernel fills Metrics and After from the
	// environment when unset.
	StorageOptions storage.Options
}

// Host is one composed replica process. It implements runtime.Node for
// the simulator and the TCP transport, and runtime.Stopper for
// lifecycle teardown.
type Host struct {
	opts Options

	env       runtime.Env
	state     State
	Detector  *fd.Detector
	Store     *suspicion.Store // nil in ModeFDOnly
	Selection Selection        // nil in ModeFDOnly
	HB        *fd.Heartbeater  // nil when heartbeats are disabled

	selHandler MessageHandler // Selection's message hook, if any
	quorumApp  QuorumApp      // App's quorum hook, if any
	quorumLog  []ids.Quorum
	storage    *storage.Store // nil when Options.Storage is unset
}

var (
	_ runtime.Node         = (*Host)(nil)
	_ runtime.Stopper      = (*Host)(nil)
	_ runtime.FreshStarter = (*Host)(nil)
)

// New creates an unstarted host; the simulator or transport calls Init.
// A failure-detector base timeout below 3× the heartbeat period is
// raised to it: an expectation that cannot outlive the gap between two
// heartbeats suspects every correct process on schedule.
func New(opts Options) *Host {
	switch opts.Mode {
	case ModeQuorumSelection:
		if opts.NewSelection == nil {
			panic("host: ModeQuorumSelection requires a selection factory")
		}
	case ModeFDOnly:
	default:
		panic("host: Options.Mode is required")
	}
	if opts.HeartbeatPeriod > 0 && opts.FD.BaseTimeout < 3*opts.HeartbeatPeriod {
		opts.FD.BaseTimeout = 3 * opts.HeartbeatPeriod
	}
	h := &Host{opts: opts}
	if qa, ok := opts.App.(QuorumApp); ok {
		h.quorumApp = qa
	}
	return h
}

// Init implements runtime.Node: it wires the composition for the
// configured mode and starts the heartbeat traffic.
func (h *Host) Init(env runtime.Env) {
	h.env = env
	h.Detector = fd.New(h.opts.FD)
	switch h.opts.Mode {
	case ModeQuorumSelection:
		h.Store = suspicion.New(env.Config(), h.opts.Store)
		h.Selection = h.opts.NewSelection(env, h.Store, h.Detector, h.issueQuorum)
		if mh, ok := h.Selection.(MessageHandler); ok {
			h.selHandler = mh
		}
		h.Store.Bind(env, h.Selection.UpdateQuorum)
		h.Detector.Bind(env, h.deliver, h.Selection.OnSuspected)
	case ModeFDOnly:
		h.Detector.Bind(env, h.deliver, h.opts.OnSuspect)
	}
	if h.opts.App != nil {
		h.opts.App.Attach(env, h.Detector)
	}
	if h.opts.Storage != nil {
		h.openStorage(env)
	}
	if h.opts.HeartbeatPeriod > 0 {
		h.HB = fd.NewHeartbeater(h.Detector, h.opts.HeartbeatPeriod)
		h.HB.Start(env)
	}
	h.setState(StateRunning)
}

// Receive implements runtime.Node: all network traffic enters through
// the failure detector (Fig 1). A stopped host drops traffic.
func (h *Host) Receive(from ids.ProcessID, m wire.Message) {
	if h.state != StateRunning {
		return
	}
	h.Detector.Receive(from, m)
}

// Stop implements runtime.Stopper: silence the heartbeater, cancel
// every outstanding failure-detector timer, and detach the application
// and selection modules (canceling their timers if they are
// Stoppable). Stop is idempotent and must run on the node's event
// loop, like every other node entry point.
func (h *Host) Stop() {
	if h.state != StateRunning {
		return
	}
	if h.HB != nil {
		h.HB.Stop()
	}
	h.Detector.Close()
	if s, ok := h.Selection.(Stoppable); ok {
		s.Stop()
	}
	if s, ok := h.opts.App.(Stoppable); ok {
		s.Stop()
	}
	h.closeStorage()
	h.setState(StateStopped)
}

// State returns the host's lifecycle state.
func (h *Host) State() State { return h.state }

// Env returns the environment the host was initialized with (nil
// before Init).
func (h *Host) Env() runtime.Env { return h.env }

// App returns the composed application module (nil when none).
func (h *Host) App() App { return h.opts.App }

// Quorums returns every quorum issued so far, in order
// (ModeQuorumSelection; empty otherwise).
func (h *Host) Quorums() []ids.Quorum {
	out := make([]ids.Quorum, len(h.quorumLog))
	copy(out, h.quorumLog)
	return out
}

// CurrentQuorum returns the selection module's current quorum
// (ModeQuorumSelection only).
func (h *Host) CurrentQuorum() ids.Quorum { return h.Selection.Current() }

// QuorumSystem returns the generalized quorum system the selection
// module runs on, or nil when the kernel has no selection module (or
// one predating the quorum abstraction). Status endpoints use it to
// report the active spec.
func (h *Host) QuorumSystem() quorum.System {
	if h.Selection == nil {
		return nil
	}
	if s, ok := h.Selection.(interface{ System() quorum.System }); ok {
		return s.System()
	}
	return nil
}

// issueQuorum records a ⟨QUORUM, Q⟩ event and fans it out to the
// application.
func (h *Host) issueQuorum(q ids.Quorum) {
	h.quorumLog = append(h.quorumLog, q)
	if h.quorumApp != nil {
		h.quorumApp.OnQuorum(q)
	}
}

// deliver demultiplexes authenticated messages: UPDATEs go to the
// suspicion store, selection-module messages (FOLLOWERS) to the
// selection module, everything else to the application. Heartbeats
// never arrive here — the detector consumes them (see fd.Detector.Bind).
func (h *Host) deliver(from ids.ProcessID, m wire.Message) {
	if msg, ok := m.(*wire.Update); ok {
		if h.Store != nil {
			h.Store.HandleUpdate(msg)
		}
		return
	}
	if h.selHandler != nil && h.selHandler.HandleMessage(from, m) {
		return
	}
	if h.opts.App != nil {
		h.opts.App.Deliver(from, m)
	}
}

// setState transitions the lifecycle state, emitting the obs event and
// counter that make shutdowns visible in /metrics and /events.
func (h *Host) setState(s State) {
	h.state = s
	runtime.Emit(h.env, obs.Event{Type: obs.TypeLifecycle, Detail: s.String()})
	h.env.Metrics().Inc("host.lifecycle."+s.String(), 1)
}
