package host

import (
	"errors"
	"time"

	"quorumselect/internal/obs/tracer"
	"quorumselect/internal/runtime"
	"quorumselect/internal/wire"
)

// ErrStopped is returned by Submit once the ingress has been stopped:
// the request was not buffered and will never flush. Callers that
// outlive the host lifecycle (client frontends, retry loops) use it to
// redirect instead of silently losing the request.
var ErrStopped = errors.New("host: ingress stopped")

// DefaultMaxBatchLatency bounds how long a submitted request may sit in
// the ingress buffer before a flush is forced, independent of batch
// fill. At batch size 1 latency is irrelevant (every request flushes
// synchronously); beyond that, this keeps tail latency bounded under
// light load.
const DefaultMaxBatchLatency = 5 * time.Millisecond

// IngressOptions configures a client-request mempool.
type IngressOptions struct {
	// BatchSize is the number of requests that triggers a synchronous
	// flush; values < 1 are treated as 1 (unbatched, seed-equivalent
	// behavior: every Submit flushes immediately).
	BatchSize int
	// MaxLatency caps how long a buffered request waits for the batch
	// to fill before a timer-driven flush; <= 0 selects
	// DefaultMaxBatchLatency. Ignored at BatchSize 1.
	MaxLatency time.Duration
}

// Ingress is the shared client-request mempool of the replica-host
// kernel: protocols push deduplicated requests in and receive them back
// in arrival order as batches, either when BatchSize requests have
// accumulated or when the oldest buffered request has waited
// MaxLatency. Dedup and client-table bookkeeping stay in the protocol
// (they are protocol state); Ingress owns only buffering and flush
// policy, so XPaxos proposal batching and the tendermint mempool run
// the same code.
//
// Like all protocol state it is single-threaded: Submit, Flush, and
// Stop run on the node's event loop.
type Ingress struct {
	env     runtime.Env
	opts    IngressOptions
	flush   func([]*wire.Request, wire.TraceContext)
	buf     []*wire.Request
	span    tracer.Active
	adopted wire.TraceContext
	timer   runtime.Timer
	stopped bool
	// gate, when set, defers flushes while it reports false: the buffer
	// keeps absorbing submissions (it may grow past BatchSize — that is
	// the point, the mempool is the backpressure reservoir) until the
	// owner reopens the gate and calls Flush. Nil means always open.
	gate func() bool
	// flushing guards against reentrant Flush: a flush callback that
	// frees window capacity may call Flush again synchronously.
	flushing bool
}

// NewIngress creates a mempool delivering batches to flush. The flush
// callback runs on the node's event loop and owns the slice it is
// given; the trace context identifies the ingress span covering the
// batch's buffering time (zero when tracing is disabled).
func NewIngress(env runtime.Env, opts IngressOptions, flush func([]*wire.Request, wire.TraceContext)) *Ingress {
	if opts.BatchSize < 1 {
		opts.BatchSize = 1
	}
	if opts.MaxLatency <= 0 {
		opts.MaxLatency = DefaultMaxBatchLatency
	}
	if flush == nil {
		panic("host: ingress flush callback is required")
	}
	return &Ingress{env: env, opts: opts, flush: flush}
}

// BatchSize returns the configured flush threshold.
func (in *Ingress) BatchSize() int { return in.opts.BatchSize }

// SetGate installs the flush gate (see the field comment); protocols
// use it for commit-window backpressure: a leader whose in-flight
// window is full closes the gate, and submissions pool in the mempool
// instead of turning into unbounded protocol state. Call Flush after
// the gate reopens — the ingress does not poll it.
func (in *Ingress) SetGate(gate func() bool) { in.gate = gate }

func (in *Ingress) gateOpen() bool { return in.gate == nil || in.gate() }

// Pending returns how many requests are buffered awaiting a flush.
func (in *Ingress) Pending() int { return len(in.buf) }

// noteDepth publishes the buffer depth as the host.ingress.pending
// node gauge. Under an open-loop workload this is the backpressure
// reservoir's fill level: it sits near zero while the commit window
// keeps up and climbs when the gate closes, so an overloaded or
// fault-stalled leader is visible without tracing.
func (in *Ingress) noteDepth() {
	runtime.SetNodeGauge(in.env, "host.ingress.pending", float64(len(in.buf)))
}

// Submit buffers one request. When the buffer reaches BatchSize the
// batch flushes synchronously (so at BatchSize 1 Submit degenerates to
// a direct call into flush, matching the unbatched proposal path);
// otherwise a max-latency flush timer is armed for the first request of
// the batch. After Stop it buffers nothing and returns ErrStopped.
// Adopt joins the next ingress span to an upstream trace — a leader
// receiving a forwarded batch adopts the forwarder's context so the
// whole commit path hangs off one tree. Only the first adoption before
// a span opens takes effect (a merged batch keeps the first trace);
// a zero context is ignored.
func (in *Ingress) Adopt(tc wire.TraceContext) {
	if tc.Zero() || in.span.Traced() || !in.adopted.Zero() {
		return
	}
	in.adopted = tc
}

func (in *Ingress) Submit(req *wire.Request) error {
	if in.stopped {
		return ErrStopped
	}
	if len(in.buf) == 0 {
		in.span = runtime.TraceStart(in.env, "ingress", in.adopted)
		in.adopted = wire.TraceContext{}
	}
	in.buf = append(in.buf, req)
	if len(in.buf) >= in.opts.BatchSize && in.gateOpen() {
		in.Flush()
		return nil
	}
	in.noteDepth()
	if in.timer == nil {
		in.timer = in.env.After(in.opts.MaxLatency, func() {
			in.timer = nil
			in.Flush()
		})
	}
	return nil
}

// Flush delivers the buffered requests, if any, canceling a pending
// max-latency timer. Protocols call it directly when they gain the
// ability to propose (on becoming leader, or when commit-window
// capacity frees up) to drain requests buffered while they could not.
//
// Delivery is chunked at BatchSize and stops as soon as the gate
// closes, so a gated leader proposes exactly as much as its window
// admits: each chunk may consume capacity and shut the gate for the
// next. Ungated, the buffer never exceeds BatchSize (Submit flushes at
// the threshold), so the loop degenerates to the single whole-buffer
// delivery of the ungated design.
func (in *Ingress) Flush() {
	if in.flushing {
		return
	}
	if in.timer != nil {
		in.timer.Stop()
		in.timer = nil
	}
	if in.stopped || len(in.buf) == 0 {
		return
	}
	in.flushing = true
	first := true
	for len(in.buf) > 0 && in.gateOpen() {
		n := in.opts.BatchSize
		if n > len(in.buf) {
			n = len(in.buf)
		}
		batch := in.buf[:n:n]
		in.buf = in.buf[n:]
		if len(in.buf) == 0 {
			in.buf = nil
		}
		// Only the first chunk carries the ingress span: it covers the
		// buffering time of the oldest requests, and ending it once
		// keeps one span per buffered burst rather than one per chunk.
		var tc wire.TraceContext
		if first {
			first = false
			span := in.span
			in.span = tracer.Active{}
			runtime.TraceEnd(in.env, span)
			tc = span.Context()
		}
		in.env.Metrics().Observe("host.ingress.batch_size", float64(n))
		in.flush(batch, tc)
		if in.stopped {
			in.flushing = false
			return
		}
	}
	in.flushing = false
	in.noteDepth()
	if len(in.buf) > 0 {
		// Gated residue: its original span (if any) ended with the first
		// chunk, so open a fresh one covering the continued wait, and
		// re-arm the latency timer so the residue retries even if the
		// owner never calls Flush again.
		if first {
			// Nothing was delivered (gate closed at entry): the original
			// span and trace adoption still stand.
		} else if !in.span.Traced() {
			in.span = runtime.TraceStart(in.env, "ingress", wire.TraceContext{})
		}
		if in.timer == nil {
			in.timer = in.env.After(in.opts.MaxLatency, func() {
				in.timer = nil
				in.Flush()
			})
		}
	}
}

// Stop implements Stoppable: it cancels the flush timer and drops
// buffered requests (an ingress being stopped has no one left to
// propose them). Idempotent.
func (in *Ingress) Stop() {
	if in.stopped {
		return
	}
	in.stopped = true
	if in.timer != nil {
		in.timer.Stop()
		in.timer = nil
	}
	in.buf = nil
	in.noteDepth()
	in.span = tracer.Active{} // dropped, never recorded
}
