package host

import (
	"errors"
	"time"

	"quorumselect/internal/obs/tracer"
	"quorumselect/internal/runtime"
	"quorumselect/internal/wire"
)

// ErrStopped is returned by Submit once the ingress has been stopped:
// the request was not buffered and will never flush. Callers that
// outlive the host lifecycle (client frontends, retry loops) use it to
// redirect instead of silently losing the request.
var ErrStopped = errors.New("host: ingress stopped")

// DefaultMaxBatchLatency bounds how long a submitted request may sit in
// the ingress buffer before a flush is forced, independent of batch
// fill. At batch size 1 latency is irrelevant (every request flushes
// synchronously); beyond that, this keeps tail latency bounded under
// light load.
const DefaultMaxBatchLatency = 5 * time.Millisecond

// IngressOptions configures a client-request mempool.
type IngressOptions struct {
	// BatchSize is the number of requests that triggers a synchronous
	// flush; values < 1 are treated as 1 (unbatched, seed-equivalent
	// behavior: every Submit flushes immediately).
	BatchSize int
	// MaxLatency caps how long a buffered request waits for the batch
	// to fill before a timer-driven flush; <= 0 selects
	// DefaultMaxBatchLatency. Ignored at BatchSize 1.
	MaxLatency time.Duration
}

// Ingress is the shared client-request mempool of the replica-host
// kernel: protocols push deduplicated requests in and receive them back
// in arrival order as batches, either when BatchSize requests have
// accumulated or when the oldest buffered request has waited
// MaxLatency. Dedup and client-table bookkeeping stay in the protocol
// (they are protocol state); Ingress owns only buffering and flush
// policy, so XPaxos proposal batching and the tendermint mempool run
// the same code.
//
// Like all protocol state it is single-threaded: Submit, Flush, and
// Stop run on the node's event loop.
type Ingress struct {
	env     runtime.Env
	opts    IngressOptions
	flush   func([]*wire.Request, wire.TraceContext)
	buf     []*wire.Request
	span    tracer.Active
	adopted wire.TraceContext
	timer   runtime.Timer
	stopped bool
}

// NewIngress creates a mempool delivering batches to flush. The flush
// callback runs on the node's event loop and owns the slice it is
// given; the trace context identifies the ingress span covering the
// batch's buffering time (zero when tracing is disabled).
func NewIngress(env runtime.Env, opts IngressOptions, flush func([]*wire.Request, wire.TraceContext)) *Ingress {
	if opts.BatchSize < 1 {
		opts.BatchSize = 1
	}
	if opts.MaxLatency <= 0 {
		opts.MaxLatency = DefaultMaxBatchLatency
	}
	if flush == nil {
		panic("host: ingress flush callback is required")
	}
	return &Ingress{env: env, opts: opts, flush: flush}
}

// BatchSize returns the configured flush threshold.
func (in *Ingress) BatchSize() int { return in.opts.BatchSize }

// Pending returns how many requests are buffered awaiting a flush.
func (in *Ingress) Pending() int { return len(in.buf) }

// Submit buffers one request. When the buffer reaches BatchSize the
// batch flushes synchronously (so at BatchSize 1 Submit degenerates to
// a direct call into flush, matching the unbatched proposal path);
// otherwise a max-latency flush timer is armed for the first request of
// the batch. After Stop it buffers nothing and returns ErrStopped.
// Adopt joins the next ingress span to an upstream trace — a leader
// receiving a forwarded batch adopts the forwarder's context so the
// whole commit path hangs off one tree. Only the first adoption before
// a span opens takes effect (a merged batch keeps the first trace);
// a zero context is ignored.
func (in *Ingress) Adopt(tc wire.TraceContext) {
	if tc.Zero() || in.span.Traced() || !in.adopted.Zero() {
		return
	}
	in.adopted = tc
}

func (in *Ingress) Submit(req *wire.Request) error {
	if in.stopped {
		return ErrStopped
	}
	if len(in.buf) == 0 {
		in.span = runtime.TraceStart(in.env, "ingress", in.adopted)
		in.adopted = wire.TraceContext{}
	}
	in.buf = append(in.buf, req)
	if len(in.buf) >= in.opts.BatchSize {
		in.Flush()
		return nil
	}
	if in.timer == nil {
		in.timer = in.env.After(in.opts.MaxLatency, func() {
			in.timer = nil
			in.Flush()
		})
	}
	return nil
}

// Flush delivers the buffered batch, if any, canceling a pending
// max-latency timer. Protocols call it directly when they gain the
// ability to propose (e.g. on becoming leader) to drain requests
// buffered while they could not.
func (in *Ingress) Flush() {
	if in.timer != nil {
		in.timer.Stop()
		in.timer = nil
	}
	if in.stopped || len(in.buf) == 0 {
		return
	}
	batch := in.buf
	in.buf = nil
	span := in.span
	in.span = tracer.Active{}
	runtime.TraceEnd(in.env, span)
	in.env.Metrics().Observe("host.ingress.batch_size", float64(len(batch)))
	in.flush(batch, span.Context())
}

// Stop implements Stoppable: it cancels the flush timer and drops
// buffered requests (an ingress being stopped has no one left to
// propose them). Idempotent.
func (in *Ingress) Stop() {
	if in.stopped {
		return
	}
	in.stopped = true
	if in.timer != nil {
		in.timer.Stop()
		in.timer = nil
	}
	in.buf = nil
	in.span = tracer.Active{} // dropped, never recorded
}
