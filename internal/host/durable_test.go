package host_test

import (
	"errors"
	"strings"
	"testing"

	"quorumselect/internal/fd"
	"quorumselect/internal/host"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/storage"
	"quorumselect/internal/wire"
)

// walApp is a minimal DurableApp that just keeps the log it is handed.
type walApp struct{ wal host.AppLog }

func (a *walApp) Attach(runtime.Env, *fd.Detector)    {}
func (a *walApp) Deliver(ids.ProcessID, wire.Message) {}
func (a *walApp) Recover(log host.AppLog, _ []byte, _ [][]byte) error {
	a.wal = log
	return nil
}

// brokenDiskBackend wraps a MemBackend; once err is set, every file
// fsync fails with it — the permanent ENOSPC/EIO class a real DirBackend
// can produce, as opposed to the injected-crash errors the kernel
// tolerates.
type brokenDiskBackend struct {
	*storage.MemBackend
	err error
}

func (b *brokenDiskBackend) Create(name string) (storage.File, error) {
	f, err := b.MemBackend.Create(name)
	if err != nil {
		return nil, err
	}
	return &brokenDiskFile{File: f, b: b}, nil
}

type brokenDiskFile struct {
	storage.File
	b *brokenDiskBackend
}

func (f *brokenDiskFile) Sync() error {
	if f.b.err != nil {
		return f.b.err
	}
	return f.File.Sync()
}

// newDurableHostEnv composes one FD-only durable host (process 1) in a
// 4-process simulated network.
func newDurableHostEnv(t *testing.T, b storage.Backend) (*sim.Network, *walApp) {
	t.Helper()
	cfg := ids.MustConfig(4, 1)
	app := &walApp{}
	h := host.New(host.Options{Mode: host.ModeFDOnly, App: app, Storage: b})
	nodes := map[ids.ProcessID]runtime.Node{1: h, 2: silent{}, 3: silent{}, 4: silent{}}
	net := sim.NewNetwork(cfg, nodes, sim.Options{})
	if app.wal == nil {
		t.Fatal("DurableApp was not handed its log at Init")
	}
	return net, app
}

// TestRealPersistFailurePanics: a persist barrier that fails on a real
// backend (sticky fsync error: ENOSPC, EIO) must fail-stop the replica,
// not count a metric and keep acknowledging protocol actions with zero
// durability behind them.
func TestRealPersistFailurePanics(t *testing.T) {
	disk := &brokenDiskBackend{MemBackend: storage.NewMemBackend()}
	net, app := newDurableHostEnv(t, disk)
	defer net.Close()

	if err := app.wal.Append([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	if err := app.wal.Sync(); err != nil {
		t.Fatal(err)
	}

	disk.err = errors.New("fsync wal: no space left on device")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Sync on a failed real backend must panic (fail-stop), not report success")
		}
		if !strings.Contains(r.(string), "halting") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	_ = app.wal.Append([]byte("doomed"))
	_ = app.wal.Sync()
}

// TestInjectedCrashErrorsTolerated: the two shutdown artifacts —
// ErrCrashed from a simulated power cut and ErrClosed once the host
// stopped — are returned to the caller, never escalated to a panic.
func TestInjectedCrashErrorsTolerated(t *testing.T) {
	backend := storage.NewMemBackend()
	net, app := newDurableHostEnv(t, backend)
	defer net.Close()

	if err := app.wal.Append([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	if err := app.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	backend.Crash()
	if err := app.wal.Append([]byte("post-crash")); !errors.Is(err, storage.ErrCrashed) {
		t.Fatalf("Append after injected crash = %v, want ErrCrashed", err)
	}

	net.StopProcess(1)
	if err := app.wal.Append([]byte("post-stop")); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("Append after Stop = %v, want ErrClosed", err)
	}
	if err := app.wal.Sync(); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("Sync after Stop = %v, want ErrClosed", err)
	}
}
