package host_test

import (
	"testing"
	"time"

	"quorumselect/internal/fd"
	"quorumselect/internal/host"
	"quorumselect/internal/ids"
	"quorumselect/internal/obs"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/wire"
)

// envNode is a minimal runtime.Node that just captures its Env, giving
// ingress tests a real simulated environment (timers included).
type envNode struct{ env runtime.Env }

func (n *envNode) Init(env runtime.Env)                { n.env = env }
func (n *envNode) Receive(ids.ProcessID, wire.Message) {}

// silent fills the remaining processes of a simulated config.
type silent struct{}

func (silent) Init(runtime.Env)                    {}
func (silent) Receive(ids.ProcessID, wire.Message) {}

func newEnv(t *testing.T) (*sim.Network, runtime.Env) {
	t.Helper()
	cfg := ids.MustConfig(4, 1)
	n := &envNode{}
	nodes := map[ids.ProcessID]runtime.Node{1: n, 2: silent{}, 3: silent{}, 4: silent{}}
	net := sim.NewNetwork(cfg, nodes, sim.Options{})
	return net, n.env
}

func mkReq(seq uint64) *wire.Request {
	return &wire.Request{Client: 1, Seq: seq, Op: []byte("op")}
}

func TestIngressBatchSizeFlushesSynchronously(t *testing.T) {
	net, env := newEnv(t)
	var got [][]*wire.Request
	in := host.NewIngress(env, host.IngressOptions{BatchSize: 3, MaxLatency: time.Second},
		func(reqs []*wire.Request, _ wire.TraceContext) { got = append(got, reqs) })

	in.Submit(mkReq(1))
	in.Submit(mkReq(2))
	if len(got) != 0 || in.Pending() != 2 {
		t.Fatalf("premature flush: %d batches, %d pending", len(got), in.Pending())
	}
	in.Submit(mkReq(3))
	if len(got) != 1 {
		t.Fatalf("batch-size flush did not fire: %d batches", len(got))
	}
	if len(got[0]) != 3 || got[0][0].Seq != 1 || got[0][2].Seq != 3 {
		t.Fatalf("batch lost arrival order: %v", got[0])
	}
	// The max-latency timer was canceled by the synchronous flush: no
	// second (empty) flush fires later.
	net.Run(5 * time.Second)
	if len(got) != 1 {
		t.Fatalf("stale latency timer flushed again: %d batches", len(got))
	}
}

func TestIngressBatchSizeOneIsUnbatched(t *testing.T) {
	_, env := newEnv(t)
	var got [][]*wire.Request
	in := host.NewIngress(env, host.IngressOptions{}, // BatchSize < 1 → 1
		func(reqs []*wire.Request, _ wire.TraceContext) { got = append(got, reqs) })
	for seq := uint64(1); seq <= 3; seq++ {
		in.Submit(mkReq(seq))
	}
	if len(got) != 3 {
		t.Fatalf("BatchSize 1 must flush every Submit: %d batches", len(got))
	}
	for i, batch := range got {
		if len(batch) != 1 || batch[0].Seq != uint64(i+1) {
			t.Fatalf("batch %d = %v, want single request seq %d", i, batch, i+1)
		}
	}
}

func TestIngressMaxLatencyFlush(t *testing.T) {
	net, env := newEnv(t)
	var got [][]*wire.Request
	in := host.NewIngress(env, host.IngressOptions{BatchSize: 8, MaxLatency: 10 * time.Millisecond},
		func(reqs []*wire.Request, _ wire.TraceContext) { got = append(got, reqs) })

	in.Submit(mkReq(1))
	in.Submit(mkReq(2))
	if len(got) != 0 {
		t.Fatal("partial batch flushed before the latency deadline")
	}
	net.Run(50 * time.Millisecond)
	if len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("latency flush: got %v, want one batch of 2", got)
	}
	if in.Pending() != 0 {
		t.Fatalf("%d requests left pending after flush", in.Pending())
	}

	// The registry records the batch size distribution.
	hist, ok := net.Metrics().Hist("host.ingress.batch_size")
	if !ok {
		t.Fatal("host.ingress.batch_size histogram missing from registry")
	}
	if hist.Count != 1 || hist.Sum != 2 {
		t.Errorf("batch_size histogram count=%d sum=%v, want one sample of 2", hist.Count, hist.Sum)
	}
}

func TestIngressStopCancelsTimerAndDropsBuffer(t *testing.T) {
	net, env := newEnv(t)
	flushed := 0
	in := host.NewIngress(env, host.IngressOptions{BatchSize: 8, MaxLatency: 10 * time.Millisecond},
		func([]*wire.Request, wire.TraceContext) { flushed++ })

	in.Submit(mkReq(1))
	in.Stop()
	in.Stop() // idempotent
	net.Run(time.Second)
	if flushed != 0 {
		t.Fatalf("stopped ingress flushed %d times", flushed)
	}
	in.Submit(mkReq(2))
	if flushed != 0 || in.Pending() != 0 {
		t.Fatal("Submit after Stop must be ignored")
	}
}

// recorder is an App that records deliveries and teardown.
type recorder struct {
	env       runtime.Env
	delivered []wire.Message
	stopped   int
}

func (r *recorder) Attach(env runtime.Env, _ *fd.Detector)  { r.env = env }
func (r *recorder) Deliver(_ ids.ProcessID, m wire.Message) { r.delivered = append(r.delivered, m) }
func (r *recorder) Stop()                                   { r.stopped++ }

func TestHostLifecycle(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	app := &recorder{}
	h := host.New(host.Options{
		Mode:            host.ModeFDOnly,
		HeartbeatPeriod: 20 * time.Millisecond,
		App:             app,
	})
	if got := h.State(); got != host.StateNew {
		t.Fatalf("state before Init = %s, want new", got)
	}
	nodes := map[ids.ProcessID]runtime.Node{1: h, 2: silent{}, 3: silent{}, 4: silent{}}
	net := sim.NewNetwork(cfg, nodes, sim.Options{})
	if got := h.State(); got != host.StateRunning {
		t.Fatalf("state after Init = %s, want running", got)
	}

	// Heartbeats flow while running.
	net.Run(200 * time.Millisecond)
	if net.Steps() == 0 {
		t.Fatal("running host generated no traffic despite heartbeats")
	}

	// Application messages reach the app; heartbeats do not.
	h.Receive(2, &wire.Request{Client: 1, Seq: 1, Op: []byte("x")})
	h.Receive(2, &wire.Heartbeat{From: 2, Seq: 1})
	if len(app.delivered) != 1 {
		t.Fatalf("delivered %d messages, want 1 (heartbeat must be consumed)", len(app.delivered))
	}

	if !net.StopProcess(1) {
		t.Fatal("StopProcess reported no Stopper")
	}
	if got := h.State(); got != host.StateStopped {
		t.Fatalf("state after Stop = %s, want stopped", got)
	}
	if app.stopped != 1 {
		t.Fatalf("app Stop ran %d times, want 1", app.stopped)
	}
	h.Stop() // idempotent
	if app.stopped != 1 {
		t.Fatal("double Stop reached the application twice")
	}

	// A stopped host drops traffic.
	h.Receive(2, &wire.Request{Client: 1, Seq: 2, Op: []byte("y")})
	if len(app.delivered) != 1 {
		t.Fatal("stopped host delivered traffic")
	}

	// The heartbeater's timers are canceled: the network drains instead
	// of ticking forever.
	net.RunQuiescent(10 * time.Second)
	if net.Pending() != 0 {
		t.Fatalf("%d events still pending after Stop: leaked timers", net.Pending())
	}

	// Lifecycle transitions are observable on the bus.
	var details []string
	for _, e := range net.Events().OfType(obs.TypeLifecycle) {
		details = append(details, e.Detail)
	}
	want := []string{"running", "stopped"}
	if len(details) != len(want) {
		t.Fatalf("lifecycle events %v, want %v", details, want)
	}
	for i := range want {
		if details[i] != want[i] {
			t.Fatalf("lifecycle events %v, want %v", details, want)
		}
	}
}

func TestNewPanicsWithoutMode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a zero Mode")
		}
	}()
	host.New(host.Options{})
}
