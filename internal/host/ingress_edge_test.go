package host_test

import (
	"errors"
	"testing"
	"time"

	"quorumselect/internal/host"
	"quorumselect/internal/metrics"
	"quorumselect/internal/wire"
)

// TestIngressEdgeCases pins down the ingress corner behaviors the happy
// paths never exercise: the flush timer racing Stop, empty-batch
// suppression, and the post-Stop Submit contract.
func TestIngressEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{
			// A max-latency timer armed before Stop must not fire a batch
			// after it: Stop wins the race however late the timer lands.
			name: "flush timer racing stop",
			run: func(t *testing.T) {
				net, env := newEnv(t)
				var flushes int
				in := host.NewIngress(env, host.IngressOptions{BatchSize: 8, MaxLatency: 10 * time.Millisecond},
					func([]*wire.Request, wire.TraceContext) { flushes++ })
				if err := in.Submit(mkReq(1)); err != nil {
					t.Fatalf("Submit: %v", err)
				}
				// Stop lands between timer arm and timer fire.
				net.At(5*time.Millisecond, func() { in.Stop() })
				net.Run(50 * time.Millisecond)
				if flushes != 0 {
					t.Fatalf("flush fired %d times after Stop", flushes)
				}
				if in.Pending() != 0 {
					t.Fatalf("stopped ingress still buffers %d requests", in.Pending())
				}
			},
		},
		{
			// Even if the timer callback itself runs after Stop (Stop from
			// inside the timer's own flush), nothing is delivered.
			name: "stop from inside flush",
			run: func(t *testing.T) {
				net, env := newEnv(t)
				var in *host.Ingress
				var flushes int
				in = host.NewIngress(env, host.IngressOptions{BatchSize: 2, MaxLatency: time.Second},
					func([]*wire.Request, wire.TraceContext) {
						flushes++
						in.Stop()
						in.Flush() // re-entrant flush after stop: must be a no-op
					})
				in.Submit(mkReq(1))
				in.Submit(mkReq(2))
				net.Run(10 * time.Millisecond)
				if flushes != 1 {
					t.Fatalf("flush ran %d times, want exactly 1", flushes)
				}
			},
		},
		{
			// Flush with nothing buffered must not call the callback: a
			// zero-length batch would make protocols propose empty slots.
			name: "zero-length batch suppressed",
			run: func(t *testing.T) {
				net, env := newEnv(t)
				var flushes int
				in := host.NewIngress(env, host.IngressOptions{BatchSize: 4, MaxLatency: 5 * time.Millisecond},
					func(reqs []*wire.Request, _ wire.TraceContext) {
						if len(reqs) == 0 {
							t.Fatal("flushed a zero-length batch")
						}
						flushes++
					})
				in.Flush() // nothing buffered at all
				in.Submit(mkReq(1))
				in.Flush() // drains the single request
				in.Flush() // drained: nothing again
				// The max-latency timer from Submit may still fire; it must
				// find the buffer empty and stay silent.
				net.Run(50 * time.Millisecond)
				if flushes != 1 {
					t.Fatalf("flush delivered %d batches, want 1", flushes)
				}
			},
		},
		{
			// Submit after Stop returns ErrStopped and buffers nothing —
			// the clean-error contract callers rely on to redirect clients.
			name: "submit after stop returns ErrStopped",
			run: func(t *testing.T) {
				net, env := newEnv(t)
				var flushes int
				in := host.NewIngress(env, host.IngressOptions{BatchSize: 1},
					func([]*wire.Request, wire.TraceContext) { flushes++ })
				if err := in.Submit(mkReq(1)); err != nil {
					t.Fatalf("Submit before Stop: %v", err)
				}
				in.Stop()
				in.Stop() // idempotent
				if err := in.Submit(mkReq(2)); !errors.Is(err, host.ErrStopped) {
					t.Fatalf("Submit after Stop = %v, want ErrStopped", err)
				}
				if in.Pending() != 0 {
					t.Fatalf("post-stop submit buffered a request (pending=%d)", in.Pending())
				}
				net.Run(20 * time.Millisecond)
				if flushes != 1 {
					t.Fatalf("flush ran %d times, want only the pre-stop one", flushes)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.run)
	}
}

// TestIngressPendingGauge pins the host.ingress.pending node gauge:
// it tracks the buffer depth through submits, gated pooling, and the
// drain, so an operator can see the backpressure reservoir fill when
// the commit window closes under open-loop load.
func TestIngressPendingGauge(t *testing.T) {
	net, env := newEnv(t)
	gauge := func() float64 {
		return net.Metrics().Gauge("host.ingress.pending", metrics.L{Key: "node", Value: env.ID().String()})
	}
	open := false
	in := host.NewIngress(env, host.IngressOptions{BatchSize: 2, MaxLatency: time.Second},
		func([]*wire.Request, wire.TraceContext) {})
	in.SetGate(func() bool { return open })

	// Gate closed: submissions pool past BatchSize and the gauge climbs.
	for i := 1; i <= 5; i++ {
		in.Submit(mkReq(uint64(i)))
	}
	if g := gauge(); g != 5 {
		t.Fatalf("gated gauge = %v, want 5 (pending=%d)", g, in.Pending())
	}
	// Gate opens: Flush drains everything and the gauge returns to zero.
	open = true
	in.Flush()
	if in.Pending() != 0 {
		t.Fatalf("flush left %d pending", in.Pending())
	}
	if g := gauge(); g != 0 {
		t.Fatalf("drained gauge = %v, want 0", g)
	}
	// Stop drops a refilled buffer and zeroes the gauge with it.
	open = false
	in.Submit(mkReq(6))
	if g := gauge(); g != 1 {
		t.Fatalf("refilled gauge = %v, want 1", g)
	}
	in.Stop()
	if g := gauge(); g != 0 {
		t.Fatalf("post-stop gauge = %v, want 0", g)
	}
}
