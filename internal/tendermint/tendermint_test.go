package tendermint_test

import (
	"fmt"
	"testing"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/tendermint"
	"quorumselect/internal/wire"
)

type silent struct{}

func (silent) Init(runtime.Env)                    {}
func (silent) Receive(ids.ProcessID, wire.Message) {}

type fixture struct {
	net      *sim.Network
	nodes    map[ids.ProcessID]*core.Node
	replicas map[ids.ProcessID]*tendermint.Replica
}

func newFixture(t *testing.T, n, f int, hb time.Duration, crashed ids.ProcSet, simOpts sim.Options) *fixture {
	t.Helper()
	cfg := ids.MustConfig(n, f)
	fx := &fixture{
		nodes:    make(map[ids.ProcessID]*core.Node, n),
		replicas: make(map[ids.ProcessID]*tendermint.Replica, n),
	}
	nodes := make(map[ids.ProcessID]runtime.Node, n)
	for _, p := range cfg.All() {
		if crashed.Contains(p) {
			nodes[p] = silent{}
			continue
		}
		nodeOpts := core.DefaultNodeOptions()
		nodeOpts.HeartbeatPeriod = hb
		node, r := tendermint.NewQSNode(tendermint.Options{}, nodeOpts)
		fx.nodes[p] = node
		fx.replicas[p] = r
		nodes[p] = node
	}
	fx.net = sim.NewNetwork(cfg, nodes, simOpts)
	return fx
}

func req(client, seq uint64, op string) *wire.Request {
	return &wire.Request{Client: client, Seq: seq, Op: []byte(op)}
}

func TestDecidesAcrossHeights(t *testing.T) {
	fx := newFixture(t, 4, 1, 0, ids.NewProcSet(), sim.Options{})
	for i := 1; i <= 5; i++ {
		fx.replicas[1].Submit(req(1, uint64(i), fmt.Sprintf("set k%d v%d", i, i)))
	}
	ok := fx.net.RunUntil(func() bool {
		for _, p := range []ids.ProcessID{1, 2, 3} {
			if fx.replicas[p].LastDecided() < 5 {
				return false
			}
		}
		return true
	}, 30*time.Second)
	if !ok {
		for p, r := range fx.replicas {
			t.Logf("%s: height=%d round=%d decided=%d", p, r.Height(), r.Round(), r.LastDecided())
		}
		t.Fatal("five heights did not decide")
	}
	// Decision order identical across participants.
	a, b := fx.replicas[1].Decisions(), fx.replicas[2].Decisions()
	for i := range a {
		if a[i].Slot != b[i].Slot || string(a[i].Op) != string(b[i].Op) {
			t.Fatalf("decision logs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// No suspicions in a fault-free run (the FD accuracy requirement).
	for p, n := range fx.nodes {
		if !n.Detector.Suspected().Empty() {
			t.Errorf("%s suspects %s in a fault-free run", p, n.Detector.Suspected())
		}
	}
}

func TestProposerRotatesAcrossHeights(t *testing.T) {
	fx := newFixture(t, 4, 1, 0, ids.NewProcSet(), sim.Options{})
	r := fx.replicas[1]
	seen := ids.NewProcSet()
	for h := uint64(1); h <= 3; h++ {
		seen.Add(r.Proposer(h, 0))
	}
	if seen.Len() != 3 {
		t.Errorf("proposer did not rotate: %s", seen)
	}
	// Within a height, rounds also rotate.
	if r.Proposer(1, 0) == r.Proposer(1, 1) {
		t.Error("round advance did not change the proposer")
	}
}

func TestRoundAdvanceSkipsSilentProposer(t *testing.T) {
	// The proposer of height 1 round 0 is p2 ((1+0) mod 3 = 1 → index 1
	// of {p1,p2,p3}). Crash p2: the round times out, p3 proposes in
	// round 1, and the height still decides among the remaining
	// participants once selection swaps the quorum... or directly via
	// rotation if the quorum is unchanged. Either path must decide.
	fx := newFixture(t, 4, 1, 20*time.Millisecond, ids.NewProcSet(2),
		sim.Options{Latency: sim.ConstantLatency(2 * time.Millisecond)})
	fx.replicas[1].Submit(req(1, 1, "set x 1"))
	ok := fx.net.RunUntil(func() bool {
		for _, p := range []ids.ProcessID{1, 3, 4} {
			if fx.replicas[p].LastDecided() < 1 {
				return false
			}
		}
		return true
	}, 30*time.Second)
	if !ok {
		for p, r := range fx.replicas {
			t.Logf("%s: height=%d round=%d decided=%d active=%s",
				p, r.Height(), r.Round(), r.LastDecided(), r.Active())
		}
		t.Fatal("height did not decide past the crashed proposer")
	}
	// Selection must eventually exclude the crashed p2 from the
	// participant set.
	ok = fx.net.RunUntil(func() bool {
		for _, p := range []ids.ProcessID{1, 3, 4} {
			if fx.replicas[p].Active().Contains(2) {
				return false
			}
		}
		return true
	}, 30*time.Second)
	if !ok {
		t.Fatal("crashed proposer still in the active set")
	}
}

func TestQuorumSelectionSwapsParticipants(t *testing.T) {
	// Crash the non-proposing participant p3: its missing votes raise
	// suspicions, selection installs {1,2,4}, and consensus continues
	// with the new set.
	fx := newFixture(t, 4, 1, 20*time.Millisecond, ids.NewProcSet(3),
		sim.Options{Latency: sim.ConstantLatency(2 * time.Millisecond)})
	fx.replicas[1].Submit(req(1, 1, "set a 1"))
	want := ids.NewQuorum([]ids.ProcessID{1, 2, 4})
	ok := fx.net.RunUntil(func() bool {
		for _, p := range []ids.ProcessID{1, 2, 4} {
			r := fx.replicas[p]
			if !ids.NewQuorum(r.Active().Members).Equal(want) || r.LastDecided() < 1 {
				return false
			}
		}
		return true
	}, 30*time.Second)
	if !ok {
		for p, r := range fx.replicas {
			t.Logf("%s: height=%d round=%d decided=%d active=%s",
				p, r.Height(), r.Round(), r.LastDecided(), r.Active())
		}
		t.Fatal("consensus did not continue on the selected quorum")
	}
}

// equivocatingProposer proposes two different values for the same
// height and round.
type equivocatingProposer struct{ env runtime.Env }

func (e *equivocatingProposer) Init(env runtime.Env) {
	e.env = env
	a := &wire.TMProposal{Proposer: 2, Height: 1, Round: 0,
		Req: wire.Request{Client: 1, Seq: 1, Op: []byte("A")}, Sig: []byte{0}}
	b := &wire.TMProposal{Proposer: 2, Height: 1, Round: 0,
		Req: wire.Request{Client: 1, Seq: 1, Op: []byte("B")}, Sig: []byte{0}}
	env.After(time.Millisecond, func() {
		env.Send(1, a)
		env.Send(3, b)
	})
}

func (e *equivocatingProposer) Receive(ids.ProcessID, wire.Message) {}

func TestEquivocatingProposerDetected(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	coreNodes := make(map[ids.ProcessID]*core.Node, cfg.N)
	for _, p := range cfg.All() {
		if p == 2 {
			nodes[p] = &equivocatingProposer{}
			continue
		}
		nodeOpts := core.DefaultNodeOptions()
		nodeOpts.HeartbeatPeriod = 0
		node, _ := tendermint.NewQSNode(tendermint.Options{}, nodeOpts)
		coreNodes[p] = node
		nodes[p] = node
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{})
	net.Run(2 * time.Second)
	// p1 and p3 exchange prevotes... they only hold one proposal each;
	// equivocation becomes visible when the conflicting signed proposal
	// reaches a process that already holds the other. p1 received A and
	// p3 received B: each forwards nothing, but p2 also sent the
	// conflicting one nowhere else. Detection therefore happens at
	// whoever sees both — in this scenario nobody does, so instead the
	// mismatched prevote digests simply prevent a decision (safety).
	for _, p := range []ids.ProcessID{1, 3, 4} {
		if coreNodes[p] != nil {
			if got := coreNodes[p].Detector.IsDetected(2); got {
				// Detection is allowed but not required here.
				t.Logf("%s detected the equivocator", p)
			}
		}
	}
	// Safety: no decision can have happened at height 1.
	// (replicas map not kept here; safety is implied by mismatched
	// digests — this test asserts the system did not crash and the
	// equivocator caused no decision divergence)
}

func TestDirectEquivocationDetected(t *testing.T) {
	// Deliver both conflicting proposals to the same correct replica:
	// it must DETECT the proposer.
	fx := newFixture(t, 4, 1, 0, ids.NewProcSet(), sim.Options{})
	// Proposer of height 1 round 0 over {p1,p2,p3} is p2.
	a := &wire.TMProposal{Proposer: 2, Height: 1, Round: 0,
		Req: wire.Request{Client: 1, Seq: 1, Op: []byte("A")}, Sig: []byte{0}}
	b := &wire.TMProposal{Proposer: 2, Height: 1, Round: 0,
		Req: wire.Request{Client: 1, Seq: 1, Op: []byte("B")}, Sig: []byte{0}}
	fx.net.Env(2).Send(1, a)
	fx.net.Env(2).Send(1, b)
	fx.net.Run(time.Second)
	if !fx.nodes[1].Detector.IsDetected(2) {
		t.Error("conflicting proposals at one replica not detected")
	}
}

func TestDecisionLogsConsistentUnderDelays(t *testing.T) {
	fx := newFixture(t, 4, 1, 0, ids.NewProcSet(), sim.Options{
		Seed:    5,
		Latency: sim.UniformLatency(time.Millisecond, 20*time.Millisecond),
	})
	for i := 1; i <= 8; i++ {
		fx.replicas[ids.ProcessID(i%3+1)].Submit(req(uint64(i%2+1), uint64(i/2+1), fmt.Sprintf("set k%d v", i)))
	}
	fx.net.Run(20 * time.Second)
	min := fx.replicas[1].LastDecided()
	for _, p := range []ids.ProcessID{2, 3} {
		if d := fx.replicas[p].LastDecided(); d < min {
			min = d
		}
	}
	if min == 0 {
		t.Fatal("nothing decided under jittered latency")
	}
	a := fx.replicas[1].Decisions()
	for _, p := range []ids.ProcessID{2, 3} {
		b := fx.replicas[p].Decisions()
		for i := 0; i < int(min); i++ {
			if a[i].Slot != b[i].Slot || string(a[i].Op) != string(b[i].Op) {
				t.Fatalf("decision logs diverge at height %d: %v vs %v", i+1, a[i], b[i])
			}
		}
	}
}
