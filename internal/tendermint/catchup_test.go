package tendermint_test

import (
	"fmt"
	"testing"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/crypto"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/tendermint"
	"quorumselect/internal/wire"
)

type crashable struct {
	inner   runtime.Node
	crashed bool
}

func (c *crashable) Init(env runtime.Env) { c.inner.Init(env) }
func (c *crashable) Receive(from ids.ProcessID, m wire.Message) {
	if !c.crashed {
		c.inner.Receive(from, m)
	}
}

func TestNewMemberCatchesUpViaCertificates(t *testing.T) {
	// Heights 1..5 decide among {1,2,3} while p4 is passive. p3 then
	// crashes; selection brings p4 in, which must verify the decision
	// certificates it receives and catch up to height 6.
	cfg := ids.MustConfig(4, 1)
	auth := crypto.NewHMACRing(cfg, []byte("tm-test"))
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	replicas := make(map[ids.ProcessID]*tendermint.Replica, cfg.N)
	wrappers := make(map[ids.ProcessID]*crashable, cfg.N)
	for _, p := range cfg.All() {
		nodeOpts := core.DefaultNodeOptions()
		nodeOpts.HeartbeatPeriod = 20 * time.Millisecond
		node, r := tendermint.NewQSNode(tendermint.Options{}, nodeOpts)
		replicas[p] = r
		wrappers[p] = &crashable{inner: node}
		nodes[p] = wrappers[p]
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{
		Latency: sim.ConstantLatency(2 * time.Millisecond),
		Auth:    auth,
	})
	for i := 1; i <= 5; i++ {
		replicas[1].Submit(req(1, uint64(i), fmt.Sprintf("set h%d v", i)))
	}
	if !net.RunUntil(func() bool { return replicas[1].LastDecided() >= 5 }, 30*time.Second) {
		t.Fatal("setup: heights 1..5 did not decide")
	}
	if replicas[4].LastDecided() != 5 {
		// The passive replica may already have caught up through the
		// proposer's lazy certificate replication — that is fine too.
		t.Logf("passive p4 at %d decisions before the crash", replicas[4].LastDecided())
	}
	wrappers[3].crashed = true
	replicas[1].Submit(req(1, 6, "set h6 v"))
	ok := net.RunUntil(func() bool {
		for _, p := range []ids.ProcessID{1, 2, 4} {
			if replicas[p].LastDecided() < 6 {
				return false
			}
		}
		return true
	}, 60*time.Second)
	if !ok {
		for p, r := range replicas {
			t.Logf("%s: h=%d dec=%d active=%s", p, r.Height(), r.LastDecided(), r.Active())
		}
		t.Fatal("new member did not catch up via certificates")
	}
	// Decision logs agree in full.
	a, b := replicas[1].Decisions(), replicas[4].Decisions()
	if len(b) < 6 {
		t.Fatalf("p4 decisions = %d", len(b))
	}
	for i := 0; i < 6; i++ {
		if a[i].Slot != b[i].Slot || string(a[i].Op) != string(b[i].Op) {
			t.Fatalf("decision logs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPassiveReplicaFollowsViaLazyReplication(t *testing.T) {
	// Even without any fault, the deciding proposer ships certificates
	// to the passive replica, which verifies and applies them.
	cfg := ids.MustConfig(4, 1)
	auth := crypto.NewHMACRing(cfg, []byte("tm-test"))
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	replicas := make(map[ids.ProcessID]*tendermint.Replica, cfg.N)
	for _, p := range cfg.All() {
		nodeOpts := core.DefaultNodeOptions()
		nodeOpts.HeartbeatPeriod = 0
		node, r := tendermint.NewQSNode(tendermint.Options{}, nodeOpts)
		replicas[p] = r
		nodes[p] = node
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{Auth: auth})
	for i := 1; i <= 4; i++ {
		replicas[1].Submit(req(1, uint64(i), "op"))
	}
	ok := net.RunUntil(func() bool { return replicas[4].LastDecided() >= 4 }, 30*time.Second)
	if !ok {
		t.Fatalf("passive replica decided only %d heights", replicas[4].LastDecided())
	}
}

func TestForgedCertificatesRejected(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	auth := crypto.NewHMACRing(cfg, []byte("tm-test"))
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	replicas := make(map[ids.ProcessID]*tendermint.Replica, cfg.N)
	for _, p := range cfg.All() {
		nodeOpts := core.DefaultNodeOptions()
		nodeOpts.HeartbeatPeriod = 0
		node, r := tendermint.NewQSNode(tendermint.Options{}, nodeOpts)
		replicas[p] = r
		nodes[p] = node
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{Auth: auth})

	sign := func(m wire.Signed, as ids.ProcessID) {
		sig, err := auth.Sign(as, m.SigBytes())
		if err != nil {
			t.Fatal(err)
		}
		m.SetSignature(sig)
	}
	prop := &wire.TMProposal{Proposer: 2, Height: 1, Round: 0,
		Req: wire.Request{Client: 9, Seq: 1, Op: []byte("evil op")}}
	sign(prop, 2)
	digest := crypto.Digest(prop.SigBytes())
	vote := func(p ids.ProcessID, dig []byte) wire.TMPrecommit {
		v := wire.TMPrecommit{}
		v.Replica = p
		v.Slot = 1
		v.View = 0
		v.Digest = dig
		sign(&v, p)
		return v
	}

	tests := []struct {
		name string
		cert *wire.TMDecided
	}{
		{
			name: "too few precommits",
			cert: &wire.TMDecided{Height: 1, Round: 0, Proposal: *prop,
				Precommits: []wire.TMPrecommit{vote(2, digest), vote(4, digest)}},
		},
		{
			name: "duplicate signers",
			cert: &wire.TMDecided{Height: 1, Round: 0, Proposal: *prop,
				Precommits: []wire.TMPrecommit{vote(2, digest), vote(2, digest), vote(2, digest)}},
		},
		{
			name: "wrong digests",
			cert: &wire.TMDecided{Height: 1, Round: 0, Proposal: *prop,
				Precommits: []wire.TMPrecommit{
					vote(1, []byte("x")), vote(2, []byte("x")), vote(4, []byte("x"))}},
		},
		{
			name: "unsigned precommits",
			cert: func() *wire.TMDecided {
				a, b, c := wire.TMPrecommit{}, wire.TMPrecommit{}, wire.TMPrecommit{}
				for i, v := range []*wire.TMPrecommit{&a, &b, &c} {
					v.Replica = ids.ProcessID(i + 1)
					v.Slot = 1
					v.View = 0
					v.Digest = digest
					v.Sig = []byte("forged")
				}
				return &wire.TMDecided{Height: 1, Round: 0, Proposal: *prop,
					Precommits: []wire.TMPrecommit{a, b, c}}
			}(),
		},
		{
			name: "mislabeled height",
			cert: &wire.TMDecided{Height: 2, Round: 0, Proposal: *prop,
				Precommits: []wire.TMPrecommit{vote(1, digest), vote(2, digest), vote(4, digest)}},
		},
	}
	for _, tt := range tests {
		net.Env(2).Send(4, tt.cert)
	}
	net.Run(time.Second)
	if got := replicas[4].LastDecided(); got != 0 {
		t.Fatalf("a forged certificate was applied: decided = %d", got)
	}

	// Control: a genuine certificate with q matching precommits applies.
	genuine := &wire.TMDecided{Height: 1, Round: 0, Proposal: *prop,
		Precommits: []wire.TMPrecommit{vote(1, digest), vote(2, digest), vote(3, digest)}}
	net.Env(2).Send(4, genuine)
	net.Run(net.Now() + time.Second)
	if got := replicas[4].LastDecided(); got != 1 {
		t.Fatalf("genuine certificate rejected: decided = %d", got)
	}
}
