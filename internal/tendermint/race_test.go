package tendermint_test

import (
	"testing"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/tendermint"
	"quorumselect/internal/wire"
)

// newSlowFDFixture builds a consensus network whose failure detector is
// deliberately slower than the round timer, so the round-rotation
// machinery can be observed without selection interfering.
func newSlowFDFixture(t *testing.T, n, f int, simOpts sim.Options) *fixture {
	t.Helper()
	cfg := ids.MustConfig(n, f)
	fx := &fixture{
		nodes:    make(map[ids.ProcessID]*core.Node, n),
		replicas: make(map[ids.ProcessID]*tendermint.Replica, n),
	}
	nodes := make(map[ids.ProcessID]runtime.Node, n)
	for _, p := range cfg.All() {
		nodeOpts := core.DefaultNodeOptions()
		nodeOpts.HeartbeatPeriod = 0
		nodeOpts.FD.BaseTimeout = 5 * time.Second // >> RoundTimeout
		node, r := tendermint.NewQSNode(tendermint.Options{}, nodeOpts)
		fx.nodes[p] = node
		fx.replicas[p] = r
		nodes[p] = node
	}
	fx.net = sim.NewNetwork(cfg, nodes, simOpts)
	return fx
}

// TestRoundTimeoutRace exercises the any-round decision machinery: p1's
// inbound precommits are delayed past the round timeout, so p1 moves to
// round 1 while the others decide in round 0. When the delayed round-0
// precommits finally arrive, p1 must decide from the round-0
// certificate anyway — without this, the system deadlocks (p1 waits in
// round 1 for votes the decided replicas will never send).
func TestRoundTimeoutRace(t *testing.T) {
	delay := sim.FilterFunc(func(from, to ids.ProcessID, m wire.Message, _ time.Duration) sim.Verdict {
		if to == 1 && m.Kind() == wire.TypeTMPrecommit {
			return sim.Verdict{Delay: 400 * time.Millisecond} // > RoundTimeout (250ms)
		}
		return sim.Verdict{}
	})
	fx := newSlowFDFixture(t, 4, 1, sim.Options{
		Latency: sim.ConstantLatency(2 * time.Millisecond),
		Filter:  delay,
	})
	fx.replicas[1].Submit(req(1, 1, "set race value"))

	// The others decide promptly in round 0 — they have p1's precommit
	// (outbound from p1 is not delayed).
	ok := fx.net.RunUntil(func() bool {
		return fx.replicas[2].LastDecided() >= 1 && fx.replicas[3].LastDecided() >= 1
	}, 10*time.Second)
	if !ok {
		t.Fatal("undelayed replicas did not decide in round 0")
	}
	if fx.replicas[1].LastDecided() != 0 {
		t.Fatal("setup failed: p1 decided before its precommits arrived")
	}

	// p1 times out into a later round, then the late round-0 votes land
	// and it decides the same value.
	ok = fx.net.RunUntil(func() bool { return fx.replicas[1].LastDecided() >= 1 }, 10*time.Second)
	if !ok {
		t.Fatalf("p1 stuck at height %d round %d — any-round certificate not applied",
			fx.replicas[1].Height(), fx.replicas[1].Round())
	}
	a, b := fx.replicas[1].Decisions()[0], fx.replicas[2].Decisions()[0]
	if string(a.Op) != string(b.Op) || a.Slot != b.Slot {
		t.Fatalf("decisions diverge: %v vs %v", a, b)
	}
	if fx.net.Metrics().Counter("tendermint.round.timeout") == 0 {
		t.Error("scenario did not actually exercise a round timeout")
	}
}

// TestLockedProposerReproposesLockedValue: a replica that precommitted
// in a timed-out round must re-propose the locked value when it becomes
// proposer in a later round, not a fresh mempool entry.
func TestLockedProposerReproposesLockedValue(t *testing.T) {
	// Delay all precommits between everyone: every replica locks in
	// round 0 (full prevotes arrive), nobody completes precommits, all
	// time out into round 1 whose proposer must re-propose the same
	// value; when the delayed round-0 precommits arrive, the height
	// decides that value.
	delay := sim.FilterFunc(func(from, to ids.ProcessID, m wire.Message, _ time.Duration) sim.Verdict {
		if m.Kind() == wire.TypeTMPrecommit {
			return sim.Verdict{Delay: 400 * time.Millisecond}
		}
		return sim.Verdict{}
	})
	fx := newSlowFDFixture(t, 4, 1, sim.Options{
		Latency: sim.ConstantLatency(2 * time.Millisecond),
		Filter:  delay,
	})
	// Two pending requests: if locking were broken, round 1 might
	// propose the second one.
	fx.replicas[1].Submit(req(1, 1, "first"))
	fx.replicas[1].Submit(req(1, 2, "second"))
	ok := fx.net.RunUntil(func() bool {
		for _, p := range []ids.ProcessID{1, 2, 3} {
			if fx.replicas[p].LastDecided() < 2 {
				return false
			}
		}
		return true
	}, 30*time.Second)
	if !ok {
		for p, r := range fx.replicas {
			t.Logf("%s: h=%d r=%d dec=%d", p, r.Height(), r.Round(), r.LastDecided())
		}
		t.Fatal("heights did not decide under delayed precommits")
	}
	// Height 1 decided "first" everywhere (no value swap mid-height).
	for _, p := range []ids.ProcessID{1, 2, 3} {
		d := fx.replicas[p].Decisions()
		if string(d[0].Op) != "first" || string(d[1].Op) != "second" {
			t.Fatalf("%s decided out of order: %q then %q", p, d[0].Op, d[1].Op)
		}
	}
}
