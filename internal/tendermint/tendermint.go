// Package tendermint is a round-based, proposer-rotating BFT consensus
// engine in the style of Tendermint (Buchman, Kwon, Milosevic — the
// paper's reference [2]), integrated with the paper's failure-detection
// and quorum-selection modules. It realizes the paper's future-work
// direction "how best to integrate Quorum Selection in different BFT
// algorithms" for the proposer-rotation family.
//
// Integration points with the paper's architecture:
//
//   - Only the selected active quorum of n−f processes exchanges
//     consensus messages; ⟨QUORUM, Q⟩ events swap the participant set,
//     re-gossip the mempool, and hand newcomers the decision
//     certificates they missed.
//   - Once there is something to decide, every participant issues
//     ⟨EXPECT⟩ for the proposer's PROPOSAL and for the other
//     participants' votes; a silent or slow proposer is suspected
//     (feeding selection) *and* skipped by round rotation — the two
//     recovery mechanisms the architecture composes. Rounds with an
//     empty mempool stay unarmed: expecting a message the protocol does
//     not require would falsely suspect a correct process, violating
//     the failure detector's accuracy requirement (§IV-B).
//   - Conflicting signed proposals for the same (height, round) are a
//     provable commission failure: ⟨DETECTED, proposer⟩.
//
// Safety machinery:
//
//   - Value locking: after precommitting a value at a height, a correct
//     replica prevotes only that value in later rounds, so certificates
//     from different rounds of one height can never conflict.
//   - Decisions are justified by certificates — the proposal plus
//     precommits from the full active quorum — and a certificate from
//     any round decides, so a replica that timed out past the deciding
//     round still converges when the votes arrive.
//   - TM-DECIDED catch-up: decision certificates are self-certifying
//     (n−f precommit signatures include at least one correct process,
//     which by the locking rule can only have precommitted the height's
//     single lockable value), so lagging or newly selected replicas
//     verify and apply them directly.
//
// Simplifications vs. full Tendermint, recorded in DESIGN.md: one value
// per height, all-of-q vote thresholds (the XFT-flavored regime quorum
// selection targets: omissions change the quorum instead of being
// masked by extra voters), and no proof-of-lock relay in proposals.
package tendermint

import (
	"bytes"
	"fmt"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/crypto"
	"quorumselect/internal/fd"
	"quorumselect/internal/host"
	"quorumselect/internal/ids"
	"quorumselect/internal/logging"
	"quorumselect/internal/runtime"
	"quorumselect/internal/wire"
	"quorumselect/internal/xpaxos"
)

// Scope tags this module's expectations in the failure detector.
const Scope = "tendermint"

// maxPending bounds the future-message buffer.
const maxPending = 4096

// Options configures a Replica.
type Options struct {
	// SM is the replicated state machine (default KVMachine).
	SM xpaxos.StateMachine
	// OnDecide observes decisions in height order.
	OnDecide func(xpaxos.Execution)
	// RoundTimeout bounds how long an armed round may run before the
	// replica moves to the next proposer (default 250ms).
	RoundTimeout time.Duration
	// BatchSize is the ingress gossip batch size: locally submitted
	// requests accumulate in the shared host.Ingress mempool and gossip
	// to the other participants as one BATCH frame. Values < 1 mean 1
	// (every request gossips immediately).
	BatchSize int
	// MaxBatchLatency caps how long a submitted request waits for its
	// gossip batch to fill; <= 0 selects host.DefaultMaxBatchLatency.
	MaxBatchLatency time.Duration
}

// step is the position inside a round.
type step int

const (
	stepPropose step = iota + 1
	stepPrecommit
	stepDecided
)

// roundState is the vote bookkeeping of one (height, round).
type roundState struct {
	proposal     *wire.TMProposal
	digest       []byte
	prevotes     map[ids.ProcessID]bool
	precommits   map[ids.ProcessID]*wire.TMPrecommit
	step         step
	prevoted     bool
	precommitted bool
}

// Replica is one consensus participant. It implements core.Application.
type Replica struct {
	opts     Options
	env      runtime.Env
	detector *fd.Detector
	cfg      ids.Config
	log      logging.Logger

	active ids.Quorum
	height uint64
	round  uint64
	rounds map[uint64]*roundState // round → state (current height only)
	timer  runtime.Timer
	armed  bool

	// lockedReq is the value-locking rule: once this replica
	// precommits a request at the current height, it prevotes (and
	// proposes) only that request until the height decides.
	lockedReq *wire.Request

	mempool     []*wire.Request
	seen        map[string]bool // mempool dedupe key client/seq
	clientTable map[uint64]uint64
	// ingress is the shared client-request mempool frontend: locally
	// submitted requests buffer there and flush as gossip batches.
	ingress *host.Ingress

	// pendingMsgs buffers proposals and votes for future rounds or the
	// next height: participants cross height/round boundaries at
	// slightly different instants and consensus messages are never
	// retransmitted.
	pendingMsgs []wire.Message

	// certs holds this replica's decision certificates by height;
	// futureCerts holds verified certificates for heights ahead of the
	// local execution cursor.
	certs       map[uint64]*wire.TMDecided
	futureCerts map[uint64]*wire.TMDecided

	decisions []xpaxos.Execution
}

var _ core.Application = (*Replica)(nil)

// NewReplica creates a consensus replica.
func NewReplica(opts Options) *Replica {
	if opts.SM == nil {
		opts.SM = xpaxos.NewKVMachine()
	}
	if opts.RoundTimeout <= 0 {
		opts.RoundTimeout = 250 * time.Millisecond
	}
	return &Replica{
		opts:        opts,
		rounds:      make(map[uint64]*roundState),
		seen:        make(map[string]bool),
		clientTable: make(map[uint64]uint64),
		certs:       make(map[uint64]*wire.TMDecided),
		futureCerts: make(map[uint64]*wire.TMDecided),
	}
}

// Attach implements core.Application.
func (r *Replica) Attach(env runtime.Env, detector *fd.Detector) {
	r.env = env
	r.detector = detector
	r.cfg = env.Config()
	r.log = env.Logger()
	r.active = ids.NewQuorum(r.cfg.DefaultQuorum().Sorted())
	r.height = 1
	r.ingress = host.NewIngress(env, host.IngressOptions{
		BatchSize:  r.opts.BatchSize,
		MaxLatency: r.opts.MaxBatchLatency,
	}, r.flushGossip)
	r.enterRound(0)
}

// Stop implements host.Stoppable: cancel the round timer and the
// ingress flush timer so a stopped replica holds no live timers.
func (r *Replica) Stop() {
	if r.ingress != nil {
		r.ingress.Stop()
	}
	if r.timer != nil {
		r.timer.Stop()
		r.timer = nil
	}
}

// Height returns the current consensus height.
func (r *Replica) Height() uint64 { return r.height }

// Round returns the current round within the height.
func (r *Replica) Round() uint64 { return r.round }

// Active returns the current participant set.
func (r *Replica) Active() ids.Quorum { return r.active }

// Decisions returns all decided executions in order.
func (r *Replica) Decisions() []xpaxos.Execution {
	out := make([]xpaxos.Execution, len(r.decisions))
	copy(out, r.decisions)
	return out
}

// Executions is Decisions under the name the other replicas use
// (xpaxos, pbftlite), so protocol-generic harnesses — the chaos
// history-agreement checkers in particular — can inspect every
// protocol's replicated history through one method.
func (r *Replica) Executions() []xpaxos.Execution { return r.Decisions() }

// LastDecided returns the number of decided heights.
func (r *Replica) LastDecided() uint64 { return uint64(len(r.decisions)) }

// Proposer returns the proposer of (height, round): rotation over the
// active quorum, offset by both height and round so every member leads
// in turn and a stuck proposer is skipped within the height.
func (r *Replica) Proposer(height, round uint64) ids.ProcessID {
	members := r.active.Members
	return members[int((height+round)%uint64(len(members)))]
}

// Participating reports whether this replica is in the active quorum.
func (r *Replica) Participating() bool { return r.active.Contains(r.env.ID()) }

// OnQuorum implements core.Application: adopt the newly selected
// participant set, re-gossip the pending requests, hand out the
// decision certificates newcomers need to catch up, and restart the
// current height's round machinery.
func (r *Replica) OnQuorum(q ids.Quorum) {
	r.active = ids.NewQuorum(q.Members)
	r.detector.CancelScope(Scope)
	r.rounds = make(map[uint64]*roundState)
	if len(r.mempool) > 0 {
		// Re-gossip the pending requests as one BATCH frame per member,
		// so newly selected participants can propose them.
		batch := &wire.Batch{Reqs: make([]wire.Request, len(r.mempool))}
		for i, req := range r.mempool {
			batch.Reqs[i] = *req
		}
		for _, p := range r.active.Members {
			if p != r.env.ID() {
				r.env.Send(p, batch)
			}
		}
	}
	for h := uint64(1); h < r.height; h++ {
		cert, ok := r.certs[h]
		if !ok {
			continue
		}
		for _, p := range r.active.Members {
			if p != r.env.ID() {
				r.env.Send(p, cert)
			}
		}
	}
	r.enterRound(0)
}

// Submit adds a client request to the shared ingress mempool; flushed
// batches land in the local mempool and gossip to the other
// participants so every proposer can propose them.
func (r *Replica) Submit(req *wire.Request) {
	if r.clientTable[req.Client] >= req.Seq {
		return
	}
	if err := r.ingress.Submit(req); err != nil {
		r.env.Metrics().Inc("tendermint.submit.rejected", 1)
	}
}

// flushGossip receives ingress batches: the requests enter the local
// mempool and gossip to the other participants as one BATCH frame
// carrying the ingress span's trace context.
func (r *Replica) flushGossip(reqs []*wire.Request, tc wire.TraceContext) {
	batch := &wire.Batch{TC: tc}
	for _, req := range reqs {
		if r.addToMempool(req) {
			batch.Reqs = append(batch.Reqs, *req)
		}
	}
	if len(batch.Reqs) == 0 {
		return
	}
	for _, p := range r.active.Members {
		if p != r.env.ID() {
			r.env.Send(p, batch)
		}
	}
	r.armRound()
}

func (r *Replica) addToMempool(req *wire.Request) bool {
	key := fmt.Sprintf("%d/%d", req.Client, req.Seq)
	if r.seen[key] || r.clientTable[req.Client] >= req.Seq {
		return false
	}
	r.seen[key] = true
	r.mempool = append(r.mempool, req)
	return true
}

// Deliver implements core.Application.
func (r *Replica) Deliver(from ids.ProcessID, m wire.Message) {
	switch msg := m.(type) {
	case *wire.Request:
		if r.addToMempool(msg) {
			r.armRound()
		}
	case *wire.Batch:
		added := false
		for i := range msg.Reqs {
			req := msg.Reqs[i]
			if r.addToMempool(&req) {
				added = true
			}
		}
		if added {
			r.armRound()
		}
	case *wire.TMProposal:
		r.onProposal(msg)
	case *wire.TMPrevote:
		r.onPrevote(msg)
	case *wire.TMPrecommit:
		r.onPrecommit(msg)
	case *wire.TMDecided:
		r.onDecided(msg)
	default:
		r.log.Logf(logging.LevelDebug, "tendermint: ignoring %s from %s", m.Kind(), from)
	}
}

// enterRound starts (height, round); the round machinery arms lazily.
func (r *Replica) enterRound(round uint64) {
	r.round = round
	r.state(round)
	r.armed = false
	if r.timer != nil {
		r.timer.Stop()
		r.timer = nil
	}
	if !r.Participating() {
		return
	}
	r.armRound()
	r.replayPending()
}

// armRound activates the current round once there is something to
// decide: starts the round timer, proposes (as proposer) or expects the
// proposal (as follower).
func (r *Replica) armRound() {
	if !r.Participating() || r.armed {
		return
	}
	state := r.state(r.round)
	if state.proposal == nil && len(r.mempool) == 0 && r.lockedReq == nil {
		return // idle: nothing is expected from anyone
	}
	r.armed = true
	height, round := r.height, r.round
	if r.timer != nil {
		r.timer.Stop()
	}
	r.timer = r.env.After(r.opts.RoundTimeout, func() { r.onRoundTimeout(height, round) })

	proposer := r.Proposer(height, round)
	if proposer == r.env.ID() {
		r.maybePropose()
		return
	}
	if state.proposal == nil {
		r.detector.Expect(Scope, proposer, fmt.Sprintf("TM-PROPOSAL(h=%d,r=%d)", height, round),
			func(m wire.Message) bool {
				p, ok := m.(*wire.TMProposal)
				return ok && p.Proposer == proposer && p.Height == height && p.Round == round
			})
	}
}

// onRoundTimeout moves to the next round (and proposer) if the height
// has not decided.
func (r *Replica) onRoundTimeout(height, round uint64) {
	if r.height != height || r.round != round {
		return // stale timer
	}
	if st := r.rounds[round]; st != nil && st.step == stepDecided {
		return
	}
	r.env.Metrics().Inc("tendermint.round.timeout", 1)
	r.log.Logf(logging.LevelDebug, "tendermint: height %d round %d timed out", height, round)
	r.enterRound(round + 1)
}

// maybePropose proposes at the current round if this replica is the
// proposer and has not proposed yet: the locked value if any, else the
// oldest pending request.
func (r *Replica) maybePropose() {
	if !r.Participating() || r.Proposer(r.height, r.round) != r.env.ID() {
		return
	}
	state := r.state(r.round)
	if state.proposal != nil {
		return
	}
	var req *wire.Request
	switch {
	case r.lockedReq != nil:
		req = r.lockedReq
	case len(r.mempool) > 0:
		req = r.mempool[0]
	default:
		return
	}
	prop := &wire.TMProposal{
		Proposer: r.env.ID(),
		Height:   r.height,
		Round:    r.round,
		Req:      *req,
	}
	runtime.Sign(r.env, prop)
	r.env.Metrics().Inc("tendermint.proposal.sent", 1)
	for _, p := range r.active.Members {
		if p != r.env.ID() {
			r.env.Send(p, prop)
		}
	}
	r.onProposal(prop)
}

// buffer stores a message for a future round or height; far-future
// traffic is dropped (it will be recovered via TM-DECIDED catch-up).
func (r *Replica) buffer(height, round uint64, m wire.Message) bool {
	future := height > r.height || (height == r.height && round > r.round)
	if !future || height > r.height+1 || len(r.pendingMsgs) >= maxPending {
		return false
	}
	r.pendingMsgs = append(r.pendingMsgs, m)
	return true
}

// replayPending re-dispatches buffered messages; still-future ones are
// re-buffered by their handlers.
func (r *Replica) replayPending() {
	pending := r.pendingMsgs
	r.pendingMsgs = nil
	for _, m := range pending {
		r.Deliver(ids.None, m)
	}
}

func (r *Replica) onProposal(p *wire.TMProposal) {
	if r.buffer(p.Height, p.Round, p) {
		return
	}
	if p.Height != r.height || p.Round > r.round || !r.Participating() {
		return
	}
	if p.Proposer != r.Proposer(p.Height, p.Round) {
		// Signed proposal from a non-proposer: commission failure.
		r.detector.Detected(p.Proposer)
		return
	}
	state := r.state(p.Round)
	if state.proposal != nil {
		if !bytes.Equal(state.proposal.SigBytes(), p.SigBytes()) {
			// Two different signed proposals for one (height, round):
			// equivocation, provable to anyone holding both.
			r.env.Metrics().Inc("tendermint.detected.equivocation", 1)
			r.detector.Detected(p.Proposer)
		}
		return
	}
	state.proposal = p
	state.digest = crypto.Digest(p.SigBytes())
	r.addToMempool(&p.Req) // late proposals keep the request available
	r.armRound()
	// Expect prevotes from the other participants, then prevote.
	for _, k := range r.active.Members {
		if k == r.env.ID() || state.prevotes[k] {
			continue
		}
		r.expectVote(k, wire.TypeTMPrevote, p.Height, p.Round)
	}
	r.sendPrevote(state, p.Round)
	r.advance(state, p.Round)
}

func (r *Replica) expectVote(k ids.ProcessID, t wire.Type, height, round uint64) {
	r.detector.Expect(Scope, k, fmt.Sprintf("%s(h=%d,r=%d)", t, height, round),
		func(m wire.Message) bool {
			switch v := m.(type) {
			case *wire.TMPrevote:
				return t == wire.TypeTMPrevote && v.Replica == k && v.Slot == height && v.View == round
			case *wire.TMPrecommit:
				return t == wire.TypeTMPrecommit && v.Replica == k && v.Slot == height && v.View == round
			default:
				return false
			}
		})
}

// sendPrevote votes for the round's proposal — unless this replica is
// locked on a different value (the locking rule).
func (r *Replica) sendPrevote(state *roundState, round uint64) {
	if state.prevoted || state.proposal == nil {
		return
	}
	if r.lockedReq != nil && !state.proposal.Req.Equal(r.lockedReq) {
		return // locked on a different value: abstain
	}
	state.prevoted = true
	state.prevotes[r.env.ID()] = true
	vote := &wire.TMPrevote{}
	vote.Replica = r.env.ID()
	vote.Slot = r.height
	vote.View = round
	vote.Digest = state.digest
	runtime.Sign(r.env, vote)
	r.env.Metrics().Inc("tendermint.prevote.sent", 1)
	for _, p := range r.active.Members {
		if p != r.env.ID() {
			r.env.Send(p, vote)
		}
	}
}

func (r *Replica) onPrevote(v *wire.TMPrevote) {
	if r.buffer(v.Slot, v.View, v) {
		return
	}
	if v.Slot != r.height || v.View > r.round || !r.Participating() || !r.active.Contains(v.Replica) {
		return
	}
	state := r.state(v.View)
	if state.digest != nil && !bytes.Equal(v.Digest, state.digest) {
		return // vote for a different proposal; ignored (not provable alone)
	}
	state.prevotes[v.Replica] = true
	r.advance(state, v.View)
}

func (r *Replica) onPrecommit(v *wire.TMPrecommit) {
	if r.buffer(v.Slot, v.View, v) {
		return
	}
	if v.Slot != r.height || v.View > r.round || !r.Participating() || !r.active.Contains(v.Replica) {
		return
	}
	state := r.state(v.View)
	if state.digest != nil && !bytes.Equal(v.Digest, state.digest) {
		return
	}
	state.precommits[v.Replica] = v
	r.advance(state, v.View)
}

// advance moves a round through prevote → precommit → decide once the
// full active quorum has voted at each step. A certificate from any
// round of the current height decides.
func (r *Replica) advance(state *roundState, round uint64) {
	if state.proposal == nil {
		return
	}
	q := len(r.active.Members)
	if state.step < stepPrecommit && state.prevoted && len(state.prevotes) >= q {
		state.step = stepPrecommit
		// Lock the value (Tendermint's safety rule): from now on this
		// replica prevotes only this request at this height.
		req := state.proposal.Req
		r.lockedReq = &req
		for _, k := range r.active.Members {
			if k == r.env.ID() {
				continue
			}
			if _, ok := state.precommits[k]; ok {
				continue
			}
			r.expectVote(k, wire.TypeTMPrecommit, r.height, round)
		}
		state.precommitted = true
		vote := &wire.TMPrecommit{}
		vote.Replica = r.env.ID()
		vote.Slot = r.height
		vote.View = round
		vote.Digest = state.digest
		runtime.Sign(r.env, vote)
		state.precommits[r.env.ID()] = vote
		r.env.Metrics().Inc("tendermint.precommit.sent", 1)
		for _, p := range r.active.Members {
			if p != r.env.ID() {
				r.env.Send(p, vote)
			}
		}
	}
	if state.step == stepPrecommit && state.precommitted && len(state.precommits) >= q {
		state.step = stepDecided
		cert := &wire.TMDecided{
			Height:   r.height,
			Round:    round,
			Proposal: *state.proposal,
		}
		for _, p := range r.active.Members {
			cert.Precommits = append(cert.Precommits, *state.precommits[p])
		}
		r.applyDecision(cert)
	}
}

// onDecided verifies and applies a catch-up certificate.
func (r *Replica) onDecided(cert *wire.TMDecided) {
	if cert.Height < r.height {
		return // already applied
	}
	if err := r.verifyCert(cert); err != nil {
		r.log.Logf(logging.LevelDebug, "tendermint: rejecting certificate for height %d: %v",
			cert.Height, err)
		return
	}
	if cert.Height > r.height {
		if len(r.futureCerts) < maxPending {
			r.futureCerts[cert.Height] = cert
		}
		return
	}
	r.env.Metrics().Inc("tendermint.catchup.applied", 1)
	r.applyDecision(cert)
}

// verifyCert checks a certificate's self-contained justification: a
// validly signed proposal and n−f distinct, validly signed precommits
// matching its digest. n−f signers include at least one correct
// process; by the locking rule a correct precommit pins the height's
// only decidable value, so the certificate's value is the decided one.
func (r *Replica) verifyCert(cert *wire.TMDecided) error {
	if cert.Proposal.Height != cert.Height || cert.Proposal.Round != cert.Round {
		return fmt.Errorf("proposal labeled (%d,%d), certificate (%d,%d)",
			cert.Proposal.Height, cert.Proposal.Round, cert.Height, cert.Round)
	}
	if err := runtime.Verify(r.env, &cert.Proposal); err != nil {
		return fmt.Errorf("proposal signature: %w", err)
	}
	digest := crypto.Digest(cert.Proposal.SigBytes())
	signers := ids.NewProcSet()
	for i := range cert.Precommits {
		v := &cert.Precommits[i]
		if v.Slot != cert.Height || v.View != cert.Round || !bytes.Equal(v.Digest, digest) {
			continue
		}
		if !v.Replica.Valid(r.cfg.N) || signers.Contains(v.Replica) {
			continue
		}
		if runtime.Verify(r.env, v) != nil {
			continue
		}
		signers.Add(v.Replica)
	}
	if signers.Len() < r.cfg.Q() {
		return fmt.Errorf("only %d valid precommits, need %d", signers.Len(), r.cfg.Q())
	}
	return nil
}

// applyDecision executes the decided request, records the certificate,
// notifies passive replicas, and moves to the next height.
func (r *Replica) applyDecision(cert *wire.TMDecided) {
	if r.timer != nil {
		r.timer.Stop()
		r.timer = nil
	}
	r.detector.CancelScope(Scope)
	req := cert.Proposal.Req
	result := r.opts.SM.Apply(req.Op)
	if req.Seq > r.clientTable[req.Client] {
		r.clientTable[req.Client] = req.Seq
	}
	exec := xpaxos.Execution{
		Slot:   r.height,
		Client: req.Client,
		Seq:    req.Seq,
		Op:     append([]byte(nil), req.Op...),
		Result: result,
	}
	r.decisions = append(r.decisions, exec)
	r.certs[r.height] = cert
	r.env.Metrics().Inc("tendermint.decided", 1)
	if r.opts.OnDecide != nil {
		r.opts.OnDecide(exec)
	}
	// Lazy replication: the deciding round's proposer ships the
	// certificate to the passive replicas (one message per passive
	// process per height; they verify it themselves).
	if r.Participating() && r.Proposer(cert.Height, cert.Round) == r.env.ID() {
		for _, p := range r.cfg.All() {
			if !r.active.Contains(p) {
				r.env.Send(p, cert)
			}
		}
	}
	// Drop the decided request from the mempool.
	kept := r.mempool[:0]
	for _, pending := range r.mempool {
		if !pending.Equal(&req) {
			kept = append(kept, pending)
		}
	}
	r.mempool = kept

	r.height++
	r.round = 0
	r.rounds = make(map[uint64]*roundState)
	r.lockedReq = nil
	// A buffered certificate may already cover the next height.
	if next, ok := r.futureCerts[r.height]; ok {
		delete(r.futureCerts, r.height)
		r.applyDecision(next)
		return
	}
	r.enterRound(0)
}

func (r *Replica) state(round uint64) *roundState {
	st, ok := r.rounds[round]
	if !ok {
		st = &roundState{
			prevotes:   make(map[ids.ProcessID]bool),
			precommits: make(map[ids.ProcessID]*wire.TMPrecommit),
			step:       stepPropose,
		}
		r.rounds[round] = st
	}
	return st
}

// NewQSNode composes a consensus replica with the full quorum-selection
// stack of Fig 1.
func NewQSNode(opts Options, nodeOpts core.NodeOptions) (*core.Node, *Replica) {
	r := NewReplica(opts)
	nodeOpts.App = r
	return core.NewNode(nodeOpts), r
}
