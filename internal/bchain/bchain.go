// Package bchain is a BChain-style chain-replication baseline (Duan et
// al., OPODIS'14), the second system the paper cites as already doing
// Quorum Selection. Requests travel down a chain of active replicas and
// acknowledgments travel back up, so the normal case costs 2(q−1)
// messages per request instead of the quadratic all-to-all exchange.
//
// BChain's original quorum-change mechanism — the aspect the paper
// criticizes — replaces a suspected chain member with a new, external
// process that is assumed correct. This package reproduces that
// behavior: on suspicion, the suspected replica is swapped for the
// lowest-identifier spare (a process outside the active chain), with no
// attempt to decide whether the suspicion was justified.
package bchain

import (
	"fmt"
	"time"

	"quorumselect/internal/fd"
	"quorumselect/internal/host"
	"quorumselect/internal/ids"
	"quorumselect/internal/logging"
	"quorumselect/internal/runtime"
	"quorumselect/internal/wire"
	"quorumselect/internal/xpaxos"
)

// Scope tags this module's expectations in the failure detector.
const Scope = "bchain"

// Options configures a Replica.
type Options struct {
	// SM is the replicated state machine (default KVMachine).
	SM xpaxos.StateMachine
	// OnExecute observes executions in slot order.
	OnExecute func(xpaxos.Execution)
}

// Replica is one chain replica.
type Replica struct {
	opts     Options
	env      runtime.Env
	detector *fd.Detector
	cfg      ids.Config
	log      logging.Logger

	chain    []ids.ProcessID // active chain, head first
	nextSlot uint64
	reqs     map[uint64]*wire.Request
	acked    map[uint64]bool
	lastExec uint64

	executions []xpaxos.Execution
	reconfigs  int
}

// NewReplica creates a chain replica.
func NewReplica(opts Options) *Replica {
	if opts.SM == nil {
		opts.SM = xpaxos.NewKVMachine()
	}
	return &Replica{
		opts:  opts,
		reqs:  make(map[uint64]*wire.Request),
		acked: make(map[uint64]bool),
	}
}

// Attach wires the replica to its environment and failure detector.
func (r *Replica) Attach(env runtime.Env, detector *fd.Detector) {
	r.env = env
	r.detector = detector
	r.cfg = env.Config()
	r.log = env.Logger()
	r.nextSlot = 1
	r.chain = r.cfg.DefaultQuorum().Sorted()
}

// Chain returns the current chain order.
func (r *Replica) Chain() []ids.ProcessID {
	out := make([]ids.ProcessID, len(r.chain))
	copy(out, r.chain)
	return out
}

// Head returns the chain head (the leader).
func (r *Replica) Head() ids.ProcessID { return r.chain[0] }

// Reconfigurations returns how many chain replacements happened.
func (r *Replica) Reconfigurations() int { return r.reconfigs }

// LastExecuted returns the highest executed slot.
func (r *Replica) LastExecuted() uint64 { return r.lastExec }

// Executions returns the executions observed so far, in order.
func (r *Replica) Executions() []xpaxos.Execution {
	out := make([]xpaxos.Execution, len(r.executions))
	copy(out, r.executions)
	return out
}

func (r *Replica) position() int {
	for i, p := range r.chain {
		if p == r.env.ID() {
			return i
		}
	}
	return -1
}

// Submit injects a client request; non-heads forward to the head.
func (r *Replica) Submit(req *wire.Request) {
	if r.Head() != r.env.ID() {
		r.env.Send(r.Head(), req)
		return
	}
	slot := r.nextSlot
	r.nextSlot++
	r.reqs[slot] = req
	fwd := &wire.ChainForward{
		Replica: r.env.ID(),
		Slot:    slot,
		Req:     *req,
		Hops:    []ids.ProcessID{r.env.ID()},
	}
	runtime.Sign(r.env, fwd)
	r.forward(fwd)
}

// forward sends the request to the next chain member and expects the
// acknowledgment to come back from it.
func (r *Replica) forward(fwd *wire.ChainForward) {
	pos := r.position()
	if pos < 0 || pos+1 >= len(r.chain) {
		return
	}
	next := r.chain[pos+1]
	r.env.Metrics().Inc("bchain.forward.sent", 1)
	r.env.Send(next, fwd)
	slot := fwd.Slot
	r.detector.Expect(Scope, next, fmt.Sprintf("CHAIN-ACK(s=%d)", slot),
		func(m wire.Message) bool {
			a, ok := m.(*wire.ChainAck)
			return ok && a.Replica == next && a.Slot == slot
		})
}

// Deliver demultiplexes chain messages.
func (r *Replica) Deliver(from ids.ProcessID, m wire.Message) {
	switch msg := m.(type) {
	case *wire.Request:
		if r.Head() == r.env.ID() {
			r.Submit(msg)
		}
	case *wire.ChainForward:
		r.onForward(msg)
	case *wire.ChainAck:
		r.onAck(msg)
	default:
		r.log.Logf(logging.LevelDebug, "bchain: ignoring %s from %s", m.Kind(), from)
	}
}

func (r *Replica) onForward(fwd *wire.ChainForward) {
	pos := r.position()
	if pos <= 0 {
		return // head re-delivery or not in chain
	}
	req := fwd.Req
	r.reqs[fwd.Slot] = &req
	if pos == len(r.chain)-1 {
		// Tail: commit point; ack travels back up.
		r.ackSlot(fwd.Slot)
		return
	}
	next := &wire.ChainForward{
		Replica: r.env.ID(),
		Slot:    fwd.Slot,
		Req:     fwd.Req,
		Hops:    append(append([]ids.ProcessID(nil), fwd.Hops...), r.env.ID()),
	}
	runtime.Sign(r.env, next)
	r.forward(next)
}

func (r *Replica) onAck(a *wire.ChainAck) {
	pos := r.position()
	if pos < 0 || pos+1 >= len(r.chain) {
		return
	}
	if a.Replica != r.chain[pos+1] {
		return // acks only count from the direct successor
	}
	r.ackSlot(a.Slot)
}

// ackSlot marks the slot acknowledged, executes in order, and passes
// the ack upstream.
func (r *Replica) ackSlot(slot uint64) {
	if r.acked[slot] {
		return
	}
	r.acked[slot] = true
	r.execute()
	pos := r.position()
	if pos <= 0 {
		return // head: request complete
	}
	ack := &wire.ChainAck{Replica: r.env.ID(), Slot: slot}
	runtime.Sign(r.env, ack)
	r.env.Metrics().Inc("bchain.ack.sent", 1)
	r.env.Send(r.chain[pos-1], ack)
}

func (r *Replica) execute() {
	for {
		if !r.acked[r.lastExec+1] {
			return
		}
		req, ok := r.reqs[r.lastExec+1]
		if !ok {
			return
		}
		r.lastExec++
		result := r.opts.SM.Apply(req.Op)
		exec := xpaxos.Execution{
			Slot:   r.lastExec,
			Client: req.Client,
			Seq:    req.Seq,
			Op:     append([]byte(nil), req.Op...),
			Result: result,
		}
		r.executions = append(r.executions, exec)
		r.env.Metrics().Inc("bchain.executed", 1)
		if r.opts.OnExecute != nil {
			r.opts.OnExecute(exec)
		}
	}
}

// OnSuspected implements BChain-style reconfiguration: replace each
// suspected chain member with the lowest-identifier spare, assumed
// correct — the mechanism the paper argues is unsatisfactory, since it
// consumes a fresh process per (possibly false) suspicion.
func (r *Replica) OnSuspected(s ids.ProcSet) {
	for _, suspect := range s.Sorted() {
		pos := -1
		for i, p := range r.chain {
			if p == suspect {
				pos = i
				break
			}
		}
		if pos < 0 {
			continue
		}
		spare := r.spare()
		if spare == ids.None {
			r.log.Logf(logging.LevelInfo, "bchain: no spare left to replace %s", suspect)
			return
		}
		r.chain[pos] = spare
		r.reconfigs++
		r.env.Metrics().Inc("bchain.reconfig", 1)
		r.detector.CancelScope(Scope)
		r.log.Logf(logging.LevelDebug, "bchain: replaced %s with %s, chain now %v",
			suspect, spare, r.chain)
	}
}

// spare returns the lowest-identifier process outside the chain.
func (r *Replica) spare() ids.ProcessID {
	inChain := ids.FromSlice(r.chain)
	for _, p := range r.cfg.All() {
		if !inChain.Contains(p) {
			return p
		}
	}
	return ids.None
}

// Node runs a chain replica behind a failure detector: the replica-host
// kernel in ModeFDOnly, with suspicions feeding the chain-repair logic.
type Node struct {
	*host.Host
	Replica *Replica
}

var (
	_ runtime.Node    = (*Node)(nil)
	_ runtime.Stopper = (*Node)(nil)
)

// NewNode creates an unstarted chain node. hbPeriod > 0 enables
// heartbeats with that period.
func NewNode(opts Options, fdOpts fd.Options, hbPeriod time.Duration) *Node {
	r := NewReplica(opts)
	return &Node{
		Host: host.New(host.Options{
			Mode:            host.ModeFDOnly,
			FD:              fdOpts,
			HeartbeatPeriod: hbPeriod,
			App:             r,
			OnSuspect:       r.OnSuspected,
		}),
		Replica: r,
	}
}
