package bchain

import (
	"sort"

	"quorumselect/internal/core"
	"quorumselect/internal/fd"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/wire"
)

// This file implements the paper's §X future-work case: "other special
// cases of Quorum Selection, e.g. when processes are communicating
// along a chain". Instead of BChain's replace-with-an-assumed-correct
// spare, the chain is the quorum issued by Algorithm 1 (members in
// identifier order), so chain changes inherit Quorum Selection's
// properties: they are driven by recorded suspicions, converge at all
// correct processes (Agreement), and a worst-case adversary forces at
// most O(f²) of them (Theorem 3) — no unbounded supply of fresh spares
// is assumed.

// SelectedReplica is a chain replica whose chain follows the quorum
// selection module instead of spare replacement. It implements
// core.Application.
type SelectedReplica struct {
	*Replica
}

var _ core.Application = (*SelectedReplica)(nil)

// NewSelectedReplica wraps a chain replica for composition with the
// quorum-selection stack.
func NewSelectedReplica(opts Options) *SelectedReplica {
	return &SelectedReplica{Replica: NewReplica(opts)}
}

// Attach implements core.Application.
func (r *SelectedReplica) Attach(env runtime.Env, detector *fd.Detector) {
	r.Replica.Attach(env, detector)
}

// Deliver implements core.Application.
func (r *SelectedReplica) Deliver(from ids.ProcessID, m wire.Message) {
	r.Replica.Deliver(from, m)
}

// OnQuorum implements core.Application: install the selected quorum as
// the new chain, members in identifier order (the deterministic order
// every correct process derives from the same quorum).
func (r *SelectedReplica) OnQuorum(q ids.Quorum) {
	newChain := ids.NewQuorum(q.Members).Members
	if sameChain(r.chain, newChain) {
		return
	}
	r.chain = append(r.chain[:0:0], newChain...)
	r.reconfigs++
	r.env.Metrics().Inc("bchain.reconfig", 1)
	r.detector.CancelScope(Scope)
	// The head replays the whole log down the new chain: in-flight
	// slots so they commit, already-acknowledged slots so a member
	// that was outside the old chain can execute the full prefix
	// (receivers deduplicate; re-acks are idempotent). A production
	// system would checkpoint instead of replaying from slot 1 — the
	// xpaxos package shows that machinery; this baseline keeps
	// BChain's trust model, where the chain order vouches for history.
	if r.Head() == r.env.ID() {
		slots := make([]uint64, 0, len(r.reqs))
		for slot := range r.reqs {
			slots = append(slots, slot)
		}
		sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
		for _, slot := range slots {
			fwd := &wire.ChainForward{
				Replica: r.env.ID(),
				Slot:    slot,
				Req:     *r.reqs[slot],
				Hops:    []ids.ProcessID{r.env.ID()},
			}
			runtime.Sign(r.env, fwd)
			r.forward(fwd)
		}
	}
}

func sameChain(a, b []ids.ProcessID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NewSelectionNode composes a chain replica with the full
// quorum-selection stack of Fig 1: suspicions raised by the chain's
// ack expectations (or heartbeats) flow into Algorithm 1, and the
// issued quorums become the chain.
func NewSelectionNode(opts Options, nodeOpts core.NodeOptions) (*core.Node, *SelectedReplica) {
	r := NewSelectedReplica(opts)
	nodeOpts.App = r
	return core.NewNode(nodeOpts), r
}
