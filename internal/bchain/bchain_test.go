package bchain_test

import (
	"testing"
	"time"

	"quorumselect/internal/bchain"
	"quorumselect/internal/core"
	"quorumselect/internal/fd"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/wire"
)

type silent struct{}

func (silent) Init(runtime.Env)                    {}
func (silent) Receive(ids.ProcessID, wire.Message) {}

func newChainNet(t *testing.T, n, f int, hb time.Duration, crashed ids.ProcSet) (*sim.Network, map[ids.ProcessID]*bchain.Replica) {
	t.Helper()
	cfg := ids.MustConfig(n, f)
	nodes := make(map[ids.ProcessID]runtime.Node, n)
	replicas := make(map[ids.ProcessID]*bchain.Replica, n)
	for _, p := range cfg.All() {
		if crashed.Contains(p) {
			nodes[p] = silent{}
			continue
		}
		node := bchain.NewNode(bchain.Options{}, fd.DefaultOptions(), hb)
		replicas[p] = node.Replica
		nodes[p] = node
	}
	return sim.NewNetwork(cfg, nodes, sim.Options{Latency: sim.ConstantLatency(2 * time.Millisecond)}), replicas
}

func req(client, seq uint64, op string) *wire.Request {
	return &wire.Request{Client: client, Seq: seq, Op: []byte(op)}
}

func TestChainCommits(t *testing.T) {
	net, replicas := newChainNet(t, 4, 1, 0, ids.NewProcSet())
	for i := 1; i <= 4; i++ {
		replicas[1].Submit(req(1, uint64(i), "op"))
	}
	net.Run(2 * time.Second)
	for _, p := range []ids.ProcessID{1, 2, 3} {
		if replicas[p].LastExecuted() != 4 {
			t.Errorf("%s executed %d slots, want 4", p, replicas[p].LastExecuted())
		}
	}
	// Linear message complexity: 2(q−1) chain messages per request.
	m := net.Metrics()
	q := int64(3)
	perReq := m.Counter("bchain.forward.sent") + m.Counter("bchain.ack.sent")
	if want := 4 * 2 * (q - 1); perReq != want {
		t.Errorf("chain messages = %d, want %d", perReq, want)
	}
}

func TestChainForwarding(t *testing.T) {
	net, replicas := newChainNet(t, 4, 1, 0, ids.NewProcSet())
	replicas[3].Submit(req(2, 1, "forwarded")) // tail submits, forwards to head
	net.Run(time.Second)
	for _, p := range []ids.ProcessID{1, 2, 3} {
		if replicas[p].LastExecuted() != 1 {
			t.Errorf("%s did not execute the forwarded request", p)
		}
	}
}

func TestChainReconfigurationOnCrash(t *testing.T) {
	// The middle chain member p2 is crashed. The forward stalls, the
	// head's ack expectation fires, and BChain-style reconfiguration
	// swaps p2 for the spare p4.
	net, replicas := newChainNet(t, 4, 1, 20*time.Millisecond, ids.NewProcSet(2))
	ok := net.RunUntil(func() bool {
		for _, p := range []ids.ProcessID{1, 3} {
			chain := ids.FromSlice(replicas[p].Chain())
			if chain.Contains(2) || !chain.Contains(4) {
				return false
			}
		}
		return true
	}, 10*time.Second)
	if !ok {
		for p, r := range replicas {
			t.Logf("%s: chain=%v reconfigs=%d", p, r.Chain(), r.Reconfigurations())
		}
		t.Fatal("crashed chain member was not replaced")
	}
	for _, p := range []ids.ProcessID{1, 3} {
		if replicas[p].Reconfigurations() == 0 {
			t.Errorf("%s performed no reconfiguration", p)
		}
	}
}

func TestChainSelectionFollowsQuorum(t *testing.T) {
	// The §X future-work composition: the chain is the selected
	// quorum. Crash the middle chain member p2: ack expectations
	// suspect it, Quorum Selection excludes it, and the chain becomes
	// {p1,p3,p4} at every correct process — with a committed request
	// surviving the reconfiguration.
	cfg := ids.MustConfig(4, 1)
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	replicas := make(map[ids.ProcessID]*bchain.SelectedReplica, cfg.N)
	for _, p := range cfg.All() {
		if p == 2 {
			nodes[p] = silent{}
			continue
		}
		nodeOpts := fdNodeOpts()
		node, r := bchain.NewSelectionNode(bchain.Options{}, nodeOpts)
		replicas[p] = r
		nodes[p] = node
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{Latency: sim.ConstantLatency(2 * time.Millisecond)})
	replicas[1].Submit(req(1, 1, "op"))
	wantChain := []ids.ProcessID{1, 3, 4}
	ok := net.RunUntil(func() bool {
		for _, p := range []ids.ProcessID{1, 3, 4} {
			got := replicas[p].Chain()
			if len(got) != len(wantChain) {
				return false
			}
			for i := range wantChain {
				if got[i] != wantChain[i] {
					return false
				}
			}
		}
		return true
	}, 20*time.Second)
	if !ok {
		for p, r := range replicas {
			t.Logf("%s: chain=%v", p, r.Chain())
		}
		t.Fatal("chain did not follow the selected quorum")
	}
	// The in-flight request is re-forwarded along the new chain and
	// executes everywhere.
	ok = net.RunUntil(func() bool {
		for _, p := range []ids.ProcessID{1, 3, 4} {
			if replicas[p].LastExecuted() < 1 {
				return false
			}
		}
		return true
	}, 20*time.Second)
	if !ok {
		t.Fatal("request did not commit on the reconfigured chain")
	}
}

func TestChainSelectionNewcomerCatchesUp(t *testing.T) {
	// Slots 1..3 commit on chain {1,2,3} while p4 is outside it. p2
	// then crashes; selection installs {1,3,4} and the head's full log
	// replay must bring p4 up to date so it executes from slot 1.
	cfg := ids.MustConfig(4, 1)
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	replicas := make(map[ids.ProcessID]*bchain.SelectedReplica, cfg.N)
	wrappers := make(map[ids.ProcessID]*crashableNode, cfg.N)
	for _, p := range cfg.All() {
		node, r := bchain.NewSelectionNode(bchain.Options{}, fdNodeOpts())
		replicas[p] = r
		wrappers[p] = &crashableNode{inner: node}
		nodes[p] = wrappers[p]
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{Latency: sim.ConstantLatency(2 * time.Millisecond)})
	for i := 1; i <= 3; i++ {
		replicas[1].Submit(req(1, uint64(i), "op"))
	}
	if !net.RunUntil(func() bool { return replicas[1].LastExecuted() >= 3 }, 10*time.Second) {
		t.Fatal("setup: chain did not commit slots 1..3")
	}
	if replicas[4].LastExecuted() != 0 {
		t.Fatalf("setup: outsider p4 executed %d", replicas[4].LastExecuted())
	}
	wrappers[2].crashed = true
	replicas[1].Submit(req(1, 4, "op"))
	ok := net.RunUntil(func() bool {
		for _, p := range []ids.ProcessID{1, 3, 4} {
			if replicas[p].LastExecuted() < 4 {
				return false
			}
		}
		return true
	}, 30*time.Second)
	if !ok {
		for p, r := range replicas {
			t.Logf("%s: chain=%v executed=%d", p, r.Chain(), r.LastExecuted())
		}
		t.Fatal("chain newcomer did not catch up after reconfiguration")
	}
}

// crashableNode allows killing a live node mid-run.
type crashableNode struct {
	inner   runtime.Node
	crashed bool
}

func (c *crashableNode) Init(env runtime.Env) { c.inner.Init(env) }
func (c *crashableNode) Receive(from ids.ProcessID, m wire.Message) {
	if !c.crashed {
		c.inner.Receive(from, m)
	}
}

// fdNodeOpts builds node options with heartbeats for crash detection.
func fdNodeOpts() core.NodeOptions {
	opts := core.DefaultNodeOptions()
	opts.HeartbeatPeriod = 20 * time.Millisecond
	return opts
}

func TestChainSpareExhaustion(t *testing.T) {
	// n = q (f = 0): there is no spare; reconfiguration must not panic
	// and the chain stays as is.
	cfg := ids.MustConfig(3, 0)
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	replicas := make(map[ids.ProcessID]*bchain.Replica, cfg.N)
	for _, p := range cfg.All() {
		node := bchain.NewNode(bchain.Options{}, fd.DefaultOptions(), 0)
		replicas[p] = node.Replica
		nodes[p] = node
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{})
	replicas[1].OnSuspected(ids.NewProcSet(2))
	net.Run(time.Second)
	if replicas[1].Reconfigurations() != 0 {
		t.Error("reconfigured without a spare")
	}
	if got := ids.FromSlice(replicas[1].Chain()); !got.Contains(2) {
		t.Error("chain changed without a spare")
	}
}
