package pbftlite

import (
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/fd"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/wire"
)

// NewQSNode composes an ActiveQuorum replica with the quorum-selection
// stack: the selection module picks which n−f replicas exchange
// normal-case traffic.
func NewQSNode(opts Options, nodeOpts core.NodeOptions) (*core.Node, *Replica) {
	opts.Regime = ActiveQuorum
	r := NewReplica(opts)
	nodeOpts.App = r
	return core.NewNode(nodeOpts), r
}

// StandaloneNode runs a BroadcastAll replica with just a failure
// detector (suspicions are recorded but masked, as in classic PBFT).
type StandaloneNode struct {
	fdOpts   fd.Options
	hbPeriod time.Duration

	env      runtime.Env
	Detector *fd.Detector
	Replica  *Replica
	HB       *fd.Heartbeater
}

var _ runtime.Node = (*StandaloneNode)(nil)

// NewStandaloneNode creates an unstarted broadcast-all node.
func NewStandaloneNode(opts Options, fdOpts fd.Options, hbPeriod time.Duration) *StandaloneNode {
	opts.Regime = BroadcastAll
	return &StandaloneNode{fdOpts: fdOpts, hbPeriod: hbPeriod, Replica: NewReplica(opts)}
}

// Init implements runtime.Node.
func (n *StandaloneNode) Init(env runtime.Env) {
	n.env = env
	n.Detector = fd.New(n.fdOpts)
	n.Detector.Bind(env,
		func(from ids.ProcessID, m wire.Message) {
			if fd.IsHeartbeat(m) {
				return
			}
			n.Replica.Deliver(from, m)
		},
		nil, // suspicions are masked, not acted on (classic PBFT)
	)
	n.Replica.Attach(env, n.Detector)
	if n.hbPeriod > 0 {
		n.HB = fd.NewHeartbeater(n.Detector, n.hbPeriod)
		n.HB.Start(env)
	}
}

// Receive implements runtime.Node.
func (n *StandaloneNode) Receive(from ids.ProcessID, m wire.Message) {
	n.Detector.Receive(from, m)
}
