package pbftlite

import (
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/fd"
	"quorumselect/internal/host"
	"quorumselect/internal/runtime"
)

// NewQSNode composes an ActiveQuorum replica with the quorum-selection
// stack: the selection module picks which n−f replicas exchange
// normal-case traffic.
func NewQSNode(opts Options, nodeOpts core.NodeOptions) (*core.Node, *Replica) {
	opts.Regime = ActiveQuorum
	r := NewReplica(opts)
	nodeOpts.App = r
	return core.NewNode(nodeOpts), r
}

// StandaloneNode runs a BroadcastAll replica with just a failure
// detector (suspicions are recorded but masked, as in classic PBFT).
// It is the replica-host kernel in ModeFDOnly with a nil OnSuspect.
type StandaloneNode struct {
	*host.Host
	Replica *Replica
}

var (
	_ runtime.Node    = (*StandaloneNode)(nil)
	_ runtime.Stopper = (*StandaloneNode)(nil)
)

// NewStandaloneNode creates an unstarted broadcast-all node.
func NewStandaloneNode(opts Options, fdOpts fd.Options, hbPeriod time.Duration) *StandaloneNode {
	opts.Regime = BroadcastAll
	r := NewReplica(opts)
	return &StandaloneNode{
		Host: host.New(host.Options{
			Mode:            host.ModeFDOnly,
			FD:              fdOpts,
			HeartbeatPeriod: hbPeriod,
			App:             r,
			// OnSuspect stays nil: suspicions are masked, not acted on
			// (classic PBFT).
		}),
		Replica: r,
	}
}
