// Package pbftlite is a PBFT-style broadcast-all normal case used as
// the baseline for the paper's introductory claim: systems like PBFT,
// Tendermint and BFT-SMaRt run n = 3f+1 replicas, broadcast messages to
// all of them, but need replies from only n−f — so selecting an active
// quorum of n−f well-functioning processes drops roughly 1/3 of the
// inter-replica messages (or 1/2 for n = 2f+1 systems); experiment E4
// measures exactly this.
//
// The protocol is the classic three-phase normal case:
//
//	PRE-PREPARE (leader → replicas), PREPARE (all-to-all),
//	COMMIT (all-to-all), with 2f+1-of-n vote thresholds.
//
// Two participation regimes:
//
//   - BroadcastAll: every replica in Π participates (the baseline).
//   - ActiveQuorum: only the members of a selected quorum of n−f
//     processes exchange messages; the vote threshold is reached with
//     every active member voting (the quorum-selection deployment à la
//     Distler et al.).
//
// View changes are out of scope here — this baseline exists for
// message accounting under fault-free operation, where the paper's
// claimed savings apply; fault handling is the job of the quorum
// selection stack.
package pbftlite

import (
	"fmt"

	"quorumselect/internal/crypto"
	"quorumselect/internal/fd"
	"quorumselect/internal/host"
	"quorumselect/internal/ids"
	"quorumselect/internal/logging"
	"quorumselect/internal/obs/tracer"
	"quorumselect/internal/runtime"
	"quorumselect/internal/wire"
	"quorumselect/internal/xpaxos"
)

// Scope tags this module's expectations in the failure detector.
const Scope = "pbftlite"

// Regime selects who participates in the normal case.
type Regime int

// Participation regimes.
const (
	// BroadcastAll is the classic PBFT pattern over all n replicas.
	BroadcastAll Regime = iota + 1
	// ActiveQuorum restricts traffic to a selected quorum of n−f.
	ActiveQuorum
)

// Options configures a Replica.
type Options struct {
	// Regime selects BroadcastAll (default) or ActiveQuorum.
	Regime Regime
	// SM is the replicated state machine (default KVMachine).
	SM xpaxos.StateMachine
	// OnExecute observes executions in slot order.
	OnExecute func(xpaxos.Execution)
}

type slotState struct {
	prePrepare  *wire.PrePrepare
	prepares    map[ids.ProcessID]bool
	commits     map[ids.ProcessID]bool
	prepared    bool
	committed   bool
	prepareSent bool
	commitSent  bool
	// trace spans the local three-phase round, pre-prepare acceptance
	// to commit. PBFT frames carry no trace context (the baseline is
	// message-accounting only), so the span is node-local.
	trace tracer.Active
}

// Replica is one PBFT-style replica. It implements core.Application so
// the ActiveQuorum regime can be composed with quorum selection.
type Replica struct {
	opts     Options
	env      runtime.Env
	detector *fd.Detector
	cfg      ids.Config
	log      logging.Logger

	view     uint64
	active   ids.Quorum // participation set (Π under BroadcastAll)
	nextSlot uint64
	// maxSeen is the highest slot this replica ever saw proposed, across
	// quorum changes: a leader elected after a participation change must
	// not reassign a slot the previous quorum may have committed.
	maxSeen  uint64
	slots    map[uint64]*slotState
	lastExec uint64

	committedReq map[uint64]*wire.Request
	executions   []xpaxos.Execution

	wal        host.AppLog // non-nil when the host is durable
	recovering bool        // true while replaying recovered records
}

// NewReplica creates a PBFT-style replica.
func NewReplica(opts Options) *Replica {
	if opts.Regime == 0 {
		opts.Regime = BroadcastAll
	}
	if opts.SM == nil {
		opts.SM = xpaxos.NewKVMachine()
	}
	return &Replica{
		opts:         opts,
		slots:        make(map[uint64]*slotState),
		committedReq: make(map[uint64]*wire.Request),
	}
}

// Attach implements core.Application.
func (r *Replica) Attach(env runtime.Env, detector *fd.Detector) {
	r.env = env
	r.detector = detector
	r.cfg = env.Config()
	r.log = env.Logger()
	r.nextSlot = 1
	switch r.opts.Regime {
	case BroadcastAll:
		r.active = ids.NewQuorum(r.cfg.All())
	case ActiveQuorum:
		r.active = ids.NewQuorum(r.cfg.DefaultQuorum().Sorted())
	}
}

// Leader returns the current primary: the lowest id in the
// participation set.
func (r *Replica) Leader() ids.ProcessID { return r.active.Members[0] }

// IsLeader reports whether this replica is the primary.
func (r *Replica) IsLeader() bool { return r.Leader() == r.env.ID() }

// Participating reports whether this replica exchanges normal-case
// messages.
func (r *Replica) Participating() bool { return r.active.Contains(r.env.ID()) }

// Active returns the current participation set.
func (r *Replica) Active() ids.Quorum { return r.active }

// LastExecuted returns the highest executed slot.
func (r *Replica) LastExecuted() uint64 { return r.lastExec }

// Executions returns the executions observed so far, in order.
func (r *Replica) Executions() []xpaxos.Execution {
	out := make([]xpaxos.Execution, len(r.executions))
	copy(out, r.executions)
	return out
}

// threshold returns the number of matching votes (sender included)
// required per phase: 2f+1 under BroadcastAll; under ActiveQuorum every
// active member must vote (the omission of any active member is a
// detectable failure handled by selection, not masked by extra
// replicas).
func (r *Replica) threshold() int {
	if r.opts.Regime == BroadcastAll {
		return 2*r.cfg.F + 1
	}
	return r.active.Set().Len()
}

// OnQuorum implements core.Application: under ActiveQuorum, adopt the
// selected participation set.
func (r *Replica) OnQuorum(q ids.Quorum) {
	if r.opts.Regime != ActiveQuorum {
		return
	}
	r.active = ids.NewQuorum(q.Members)
	r.detector.CancelScope(Scope)
	// Per-slot vote state is view-local; reset uncommitted rounds.
	for s, st := range r.slots {
		if !st.committed {
			delete(r.slots, s)
		}
	}
	r.view++
	// If this replica now leads, it must propose above every slot it has
	// seen: a slot that reached commit anywhere was prepared by all of
	// the old active members, so reusing its number would fork history.
	if r.nextSlot <= r.maxSeen {
		r.nextSlot = r.maxSeen + 1
	}
}

// Submit injects a client request (forwarded to the primary if
// needed).
func (r *Replica) Submit(req *wire.Request) {
	if !r.IsLeader() {
		r.env.Send(r.Leader(), req)
		return
	}
	slot := r.nextSlot
	r.nextSlot++
	pp := &wire.PrePrepare{Leader: r.env.ID(), View: r.view, Slot: slot, Req: *req}
	runtime.Sign(r.env, pp)
	r.env.Metrics().Inc("pbftlite.preprepare.sent", 1)
	for _, p := range r.active.Members {
		if p != r.env.ID() {
			r.env.Send(p, pp)
		}
	}
	r.onPrePrepare(pp)
}

// Deliver implements core.Application.
func (r *Replica) Deliver(from ids.ProcessID, m wire.Message) {
	switch msg := m.(type) {
	case *wire.Request:
		if r.IsLeader() {
			r.Submit(msg)
		}
	case *wire.PrePrepare:
		r.onPrePrepare(msg)
	case *wire.PBFTPrepare:
		r.onPrepare(msg)
	case *wire.PBFTCommit:
		r.onCommit(msg)
	default:
		r.log.Logf(logging.LevelDebug, "pbftlite: ignoring %s from %s", m.Kind(), from)
	}
}

func (r *Replica) onPrePrepare(pp *wire.PrePrepare) {
	if pp.View != r.view || !r.Participating() || pp.Leader != r.Leader() {
		return
	}
	st := r.slot(pp.Slot)
	if st.prePrepare != nil {
		return
	}
	st.prePrepare = pp
	if !r.recovering {
		st.trace = runtime.TraceStart(r.env, "pbft.commit", wire.TraceContext{})
		st.trace.SetSlot(pp.Slot)
		st.trace.SetView(pp.View)
	}
	digest := crypto.Digest(pp.SigBytes())
	// Expect PREPARE votes from the other participants, then vote.
	for _, k := range r.active.Members {
		if k == r.env.ID() || st.prepares[k] {
			continue
		}
		r.expectPhase(k, wire.TypePBFTPrepare, pp.View, pp.Slot)
	}
	r.sendPrepare(st, pp.View, pp.Slot, digest)
	r.advance(pp.Slot, st)
}

func (r *Replica) expectPhase(k ids.ProcessID, t wire.Type, view, slot uint64) {
	r.detector.Expect(Scope, k, fmt.Sprintf("%s(v=%d,s=%d)", t, view, slot),
		func(m wire.Message) bool {
			switch v := m.(type) {
			case *wire.PBFTPrepare:
				return t == wire.TypePBFTPrepare && v.Replica == k && v.View == view && v.Slot == slot
			case *wire.PBFTCommit:
				return t == wire.TypePBFTCommit && v.Replica == k && v.View == view && v.Slot == slot
			default:
				return false
			}
		})
}

func (r *Replica) sendPrepare(st *slotState, view, slot uint64, digest []byte) {
	if st.prepareSent {
		return
	}
	st.prepareSent = true
	st.prepares[r.env.ID()] = true
	vote := &wire.PBFTPrepare{}
	vote.Replica = r.env.ID()
	vote.View = view
	vote.Slot = slot
	vote.Digest = digest
	runtime.Sign(r.env, vote)
	r.env.Metrics().Inc("pbftlite.prepare.sent", 1)
	for _, p := range r.active.Members {
		if p != r.env.ID() {
			r.env.Send(p, vote)
		}
	}
}

func (r *Replica) onPrepare(v *wire.PBFTPrepare) {
	if v.View != r.view || !r.Participating() || !r.active.Contains(v.Replica) {
		return
	}
	st := r.slot(v.Slot)
	st.prepares[v.Replica] = true
	r.advance(v.Slot, st)
}

func (r *Replica) onCommit(v *wire.PBFTCommit) {
	if v.View != r.view || !r.Participating() || !r.active.Contains(v.Replica) {
		return
	}
	st := r.slot(v.Slot)
	st.commits[v.Replica] = true
	r.advance(v.Slot, st)
}

// advance moves a slot through prepared → committed → executed.
func (r *Replica) advance(slot uint64, st *slotState) {
	if st.prePrepare == nil {
		return
	}
	digest := crypto.Digest(st.prePrepare.SigBytes())
	if !st.prepared && st.prepareSent && len(st.prepares) >= r.threshold() {
		st.prepared = true
		// Expect COMMIT votes, then vote commit.
		for _, k := range r.active.Members {
			if k == r.env.ID() || st.commits[k] {
				continue
			}
			r.expectPhase(k, wire.TypePBFTCommit, st.prePrepare.View, slot)
		}
		st.commitSent = true
		st.commits[r.env.ID()] = true
		vote := &wire.PBFTCommit{}
		vote.Replica = r.env.ID()
		vote.View = st.prePrepare.View
		vote.Slot = slot
		vote.Digest = digest
		runtime.Sign(r.env, vote)
		r.env.Metrics().Inc("pbftlite.commit.sent", 1)
		for _, p := range r.active.Members {
			if p != r.env.ID() {
				r.env.Send(p, vote)
			}
		}
	}
	if st.prepared && !st.committed && st.commitSent && len(st.commits) >= r.threshold() {
		st.committed = true
		runtime.TraceEnd(r.env, st.trace)
		st.trace = tracer.Active{}
		req := st.prePrepare.Req
		r.committedReq[slot] = &req
		// Persist before acting: the commit must survive a crash before
		// it becomes visible through execution.
		r.persistCommitted(slot, &req)
		r.env.Metrics().Inc("pbftlite.committed", 1)
		r.execute()
	}
}

func (r *Replica) execute() {
	for {
		req, ok := r.committedReq[r.lastExec+1]
		if !ok {
			return
		}
		r.lastExec++
		result := r.opts.SM.Apply(req.Op)
		exec := xpaxos.Execution{
			Slot:   r.lastExec,
			Client: req.Client,
			Seq:    req.Seq,
			Op:     append([]byte(nil), req.Op...),
			Result: result,
		}
		r.executions = append(r.executions, exec)
		r.env.Metrics().Inc("pbftlite.executed", 1)
		if r.opts.OnExecute != nil && !r.recovering {
			r.opts.OnExecute(exec)
		}
	}
}

func (r *Replica) slot(s uint64) *slotState {
	if s > r.maxSeen {
		r.maxSeen = s
	}
	st, ok := r.slots[s]
	if !ok {
		st = &slotState{
			prepares: make(map[ids.ProcessID]bool),
			commits:  make(map[ids.ProcessID]bool),
		}
		r.slots[s] = st
	}
	return st
}
