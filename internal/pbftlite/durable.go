// Durable replica state (host.DurableApp) for the PBFT-style baseline.
// The baseline has no view changes and no checkpointing, so its durable
// footprint is minimal: one WAL record per committed slot — the slot
// number plus the deciding request — synced before execution, so a
// restarted replica re-executes exactly the history it acknowledged.
// The view is not persisted: it only advances on quorum adoption
// (ActiveQuorum), which the recovered suspicion matrix re-derives, and
// the baseline makes no cross-crash promises about in-flight views.
package pbftlite

import (
	"fmt"

	"quorumselect/internal/host"
	"quorumselect/internal/logging"
	"quorumselect/internal/wire"
)

var _ host.DurableApp = (*Replica)(nil)

// persistCommitted logs a slot's deciding request and forces the group
// commit: the persist-before-act barrier ahead of execution. An error
// reaching this code is always a tolerated shutdown artifact — the host
// kernel fail-stops (panics) on any real persist failure before
// returning it (host.Host.storageErr), so what comes back here is
// storage.ErrCrashed after an injected crash or storage.ErrClosed when
// Stop raced; counted, not acted on.
func (r *Replica) persistCommitted(slot uint64, req *wire.Request) {
	if r.wal == nil || r.recovering {
		return
	}
	var b wire.Buffer
	b.PutUint64(slot)
	b.PutBytes(wire.Encode(req))
	if err := r.wal.Append(b.Bytes()); err != nil {
		r.env.Metrics().Inc("pbftlite.wal.errors", 1)
		return
	}
	if err := r.wal.Sync(); err != nil {
		r.env.Metrics().Inc("pbftlite.wal.errors", 1)
	}
}

// Recover implements host.DurableApp: replay the committed-slot records
// into committedReq and re-execute deterministically. Replay is
// invisible to clients (OnExecute is suppressed while recovering).
func (r *Replica) Recover(log host.AppLog, snapshot []byte, records [][]byte) error {
	r.wal = log
	if len(snapshot) > 0 {
		return fmt.Errorf("pbftlite: unexpected %d-byte snapshot (baseline writes none)", len(snapshot))
	}
	if len(records) == 0 {
		return nil
	}
	r.recovering = true
	defer func() { r.recovering = false }()
	for i, rec := range records {
		rd := wire.NewReader(rec)
		slot, err1 := rd.Uint64()
		data, err2 := rd.Bytes()
		if err1 != nil || err2 != nil {
			return fmt.Errorf("pbftlite: record %d corrupt", i)
		}
		m, err := wire.Decode(data)
		if err != nil {
			return fmt.Errorf("pbftlite: record %d: %w", i, err)
		}
		req, ok := m.(*wire.Request)
		if !ok {
			return fmt.Errorf("pbftlite: %T in committed record %d", m, i)
		}
		r.committedReq[slot] = req
		if slot >= r.nextSlot {
			r.nextSlot = slot + 1
		}
		if slot > r.maxSeen {
			r.maxSeen = slot
		}
	}
	r.execute()
	r.env.Metrics().Inc("pbftlite.recoveries", 1)
	r.log.Logf(logging.LevelDebug, "pbftlite: recovered lastExec=%d nextSlot=%d (%d records)",
		r.lastExec, r.nextSlot, len(records))
	return nil
}
