package pbftlite_test

import (
	"testing"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/fd"
	"quorumselect/internal/ids"
	"quorumselect/internal/pbftlite"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/wire"
)

type silent struct{}

func (silent) Init(runtime.Env)                    {}
func (silent) Receive(ids.ProcessID, wire.Message) {}

func quietFD() fd.Options {
	o := fd.DefaultOptions()
	o.BaseTimeout = 200 * time.Millisecond
	return o
}

func newBroadcastNet(t *testing.T, n, f int, crashed ids.ProcSet) (*sim.Network, map[ids.ProcessID]*pbftlite.Replica, *sim.Network) {
	t.Helper()
	cfg := ids.MustConfig(n, f)
	nodes := make(map[ids.ProcessID]runtime.Node, n)
	replicas := make(map[ids.ProcessID]*pbftlite.Replica, n)
	for _, p := range cfg.All() {
		if crashed.Contains(p) {
			nodes[p] = silent{}
			continue
		}
		sn := pbftlite.NewStandaloneNode(pbftlite.Options{}, quietFD(), 0)
		replicas[p] = sn.Replica
		nodes[p] = sn
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{})
	return net, replicas, net
}

func req(client, seq uint64, op string) *wire.Request {
	return &wire.Request{Client: client, Seq: seq, Op: []byte(op)}
}

func TestBroadcastAllCommits(t *testing.T) {
	net, replicas, _ := newBroadcastNet(t, 4, 1, ids.NewProcSet())
	for i := 1; i <= 3; i++ {
		replicas[1].Submit(req(1, uint64(i), "op"))
	}
	net.Run(2 * time.Second)
	for p, r := range replicas {
		if r.LastExecuted() != 3 {
			t.Errorf("%s executed %d, want 3", p, r.LastExecuted())
		}
	}
}

func TestBroadcastAllMasksFaults(t *testing.T) {
	// One crashed replica (f=1): PBFT must still commit with 2f+1
	// votes — the "constant masking" the paper's intro describes.
	net, replicas, _ := newBroadcastNet(t, 4, 1, ids.NewProcSet(4))
	replicas[1].Submit(req(1, 1, "op"))
	net.Run(2 * time.Second)
	for _, p := range []ids.ProcessID{1, 2, 3} {
		if replicas[p].LastExecuted() != 1 {
			t.Errorf("%s did not execute despite 2f+1 correct replicas", p)
		}
	}
}

func TestMessageCountsPerRegime(t *testing.T) {
	// The §I accounting: BroadcastAll sends (n−1) + 2n(n−1) messages
	// per request; ActiveQuorum sends (q−1) + 2q(q−1). For n = 3f+1 and
	// q = n−f the active-quorum regime saves a bit over 40% of the
	// normal-case messages (the paper's ≈1/3 refers to dropping f of
	// the 3f+1 replicas; the quadratic phases push the measured saving
	// higher).
	const requests = 10
	count := func(active bool) int64 {
		cfg := ids.MustConfig(7, 2)
		nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
		var first *pbftlite.Replica
		for _, p := range cfg.All() {
			if active {
				opts := core.DefaultNodeOptions()
				opts.HeartbeatPeriod = 0
				node, r := pbftlite.NewQSNode(pbftlite.Options{}, opts)
				if p == 1 {
					first = r
				}
				nodes[p] = node
			} else {
				sn := pbftlite.NewStandaloneNode(pbftlite.Options{}, quietFD(), 0)
				if p == 1 {
					first = sn.Replica
				}
				nodes[p] = sn
			}
		}
		net := sim.NewNetwork(cfg, nodes, sim.Options{})
		for i := 1; i <= requests; i++ {
			first.Submit(req(1, uint64(i), "op"))
		}
		net.Run(5 * time.Second)
		m := net.Metrics()
		return m.Counter("msg.sent.PRE-PREPARE") +
			m.Counter("msg.sent.PBFT-PREPARE") +
			m.Counter("msg.sent.PBFT-COMMIT")
	}
	broadcast := count(false)
	activeQ := count(true)
	n, q := int64(7), int64(5)
	wantBroadcast := requests * ((n - 1) + 2*n*(n-1))
	wantActive := requests * ((q - 1) + 2*q*(q-1))
	if broadcast != wantBroadcast {
		t.Errorf("broadcast-all messages = %d, want %d", broadcast, wantBroadcast)
	}
	if activeQ != wantActive {
		t.Errorf("active-quorum messages = %d, want %d", activeQ, wantActive)
	}
	if activeQ >= broadcast {
		t.Errorf("active quorum (%d) did not save messages vs broadcast (%d)", activeQ, broadcast)
	}
}

func TestActiveQuorumFollowsSelection(t *testing.T) {
	// Crash p3; quorum selection moves the active set to {1,2,4} and
	// the request commits there with every active member voting.
	cfg := ids.MustConfig(4, 1)
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	replicas := make(map[ids.ProcessID]*pbftlite.Replica, cfg.N)
	for _, p := range cfg.All() {
		if p == 3 {
			nodes[p] = silent{}
			continue
		}
		opts := core.DefaultNodeOptions()
		opts.HeartbeatPeriod = 15 * time.Millisecond
		node, r := pbftlite.NewQSNode(pbftlite.Options{}, opts)
		replicas[p] = r
		nodes[p] = node
	}
	net := sim.NewNetwork(cfg, nodes, sim.Options{Latency: sim.ConstantLatency(2 * time.Millisecond)})
	ok := net.RunUntil(func() bool {
		want := ids.NewQuorum([]ids.ProcessID{1, 2, 4})
		for _, p := range []ids.ProcessID{1, 2, 4} {
			if !ids.NewQuorum(replicas[p].Active().Members).Equal(want) {
				return false
			}
		}
		return true
	}, 10*time.Second)
	if !ok {
		for p, r := range replicas {
			t.Logf("%s: active=%s", p, r.Active())
		}
		t.Fatal("selection did not move the active set past the crashed replica")
	}
	replicas[1].Submit(req(1, 1, "op"))
	ok = net.RunUntil(func() bool {
		for _, p := range []ids.ProcessID{1, 2, 4} {
			if replicas[p].LastExecuted() < 1 {
				return false
			}
		}
		return true
	}, 10*time.Second)
	if !ok {
		t.Fatal("request did not commit in the selected quorum")
	}
}
