package suspicion_test

import (
	"math/rand"
	"sync"
	"testing"

	"quorumselect/internal/ids"
	"quorumselect/internal/sim"
	"quorumselect/internal/suspicion"
	"quorumselect/internal/wire"
)

// scanMaxEpoch recomputes MaxEpochSeen the slow way, from a snapshot.
func scanMaxEpoch(m [][]uint64) uint64 {
	var max uint64
	for _, row := range m {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	return max
}

// TestIncrementalGraphMatchesRebuild is the core invariant of the
// incremental cache: after ANY sequence of matrix writes and epoch
// advances, the cached suspect graph equals a from-scratch rebuild at
// the current epoch. It also checks the running MaxEpochSeen against a
// full scan, and that the graph version ticks exactly when the edge set
// changes.
func TestIncrementalGraphMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(0xC0FFEE))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(9)
		f := (n - 1) / 3
		net, nodes := newStoreNet(t, n, f, suspicion.Options{Forward: false}, sim.Options{})
		_ = net
		st := nodes[1].store
		prev := st.SuspectGraph().Clone()
		prevVer := st.GraphVersion()
		for op := 0; op < 80; op++ {
			switch rng.Intn(10) {
			case 0:
				st.IncrementEpoch()
			case 1:
				st.ObserveEpoch(st.Epoch() + uint64(rng.Intn(3)))
			case 2:
				set := ids.NewProcSet()
				for p := 1; p <= n; p++ {
					if rng.Intn(4) == 0 {
						set.Add(ids.ProcessID(p))
					}
				}
				st.UpdateSuspicions(set)
			default:
				row := make([]uint64, n)
				for k := range row {
					if rng.Intn(3) == 0 {
						row[k] = uint64(rng.Intn(6))
					}
				}
				st.HandleUpdate(&wire.Update{
					Owner: ids.ProcessID(rng.Intn(n) + 1),
					Row:   row,
					Sig:   []byte{0},
				})
			}
			cur := st.SuspectGraph()
			rebuilt := st.RebuildSuspectGraphAt(st.Epoch())
			if !cur.Equal(rebuilt) {
				t.Fatalf("trial %d op %d: cached graph diverged from rebuild at epoch %d\ncached:\n%s\nrebuilt:\n%s",
					trial, op, st.Epoch(), cur, rebuilt)
			}
			if got, want := st.MaxEpochSeen(), scanMaxEpoch(st.Snapshot()); got != want {
				t.Fatalf("trial %d op %d: MaxEpochSeen = %d, scan says %d", trial, op, got, want)
			}
			ver := st.GraphVersion()
			if edgesChanged, verChanged := !cur.Equal(prev), ver != prevVer; edgesChanged != verChanged {
				t.Fatalf("trial %d op %d: edge set changed=%v but version changed=%v (ver %d→%d)",
					trial, op, edgesChanged, verChanged, prevVer, ver)
			}
			prev = cur.Clone()
			prevVer = ver
		}
	}
}

// TestSuspectGraphSnapshotImmutable: graphs handed out by SuspectGraph
// are snapshots — later store mutations must not alter them (the
// copy-on-write contract that makes concurrent readers safe).
func TestSuspectGraphSnapshotImmutable(t *testing.T) {
	net, nodes := newStoreNet(t, 6, 1, suspicion.Options{Forward: false}, sim.Options{})
	_ = net
	st := nodes[1].store
	st.HandleUpdate(&wire.Update{Owner: 1, Row: []uint64{0, 1, 0, 0, 0, 0}, Sig: []byte{0}})
	snap := st.SuspectGraph()
	frozen := snap.Clone()

	st.HandleUpdate(&wire.Update{Owner: 3, Row: []uint64{0, 0, 0, 2, 0, 0}, Sig: []byte{0}})
	st.IncrementEpoch() // prunes the epoch-1 edge {1,2}
	if !snap.Equal(frozen) {
		t.Fatalf("handed-out snapshot mutated by later store operations:\nnow:\n%s\nwas:\n%s", snap, frozen)
	}
	cur := st.SuspectGraph()
	if cur.HasEdge(1, 2) || !cur.HasEdge(3, 4) {
		t.Fatalf("current graph wrong after epoch advance:\n%s", cur)
	}
}

// TestConcurrentGraphReadersUnderUpdateStorm hammers SuspectGraph (and
// searches on the returned snapshots) from several goroutines while the
// store absorbs an UPDATE storm and epoch advances. Run under -race
// this proves the copy-on-write handoff: readers never observe a graph
// being mutated.
func TestConcurrentGraphReadersUnderUpdateStorm(t *testing.T) {
	const n = 16
	net, nodes := newStoreNet(t, n, (n-1)/3, suspicion.Options{Forward: false}, sim.Options{})
	_ = net
	st := nodes[1].store

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := st.SuspectGraph()
				q := rng.Intn(5) + 1
				if set, ok := g.FirstIndependentSet(q); ok && !g.IsIndependentSet(set) {
					t.Errorf("reader got inconsistent snapshot: %v not independent in\n%s", set, g)
					return
				}
				_ = g.EdgeCount()
				_ = st.GraphVersion()
				_ = st.MaxEpochSeen()
				_ = st.Epoch()
			}
		}(int64(r))
	}

	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		switch {
		case i%97 == 96:
			st.IncrementEpoch()
		case i%53 == 52:
			st.ObserveEpoch(st.Epoch() + 1)
		default:
			row := make([]uint64, n)
			row[rng.Intn(n)] = st.Epoch() + uint64(rng.Intn(2))
			st.HandleUpdate(&wire.Update{
				Owner: ids.ProcessID(rng.Intn(n) + 1),
				Row:   row,
				Sig:   []byte{0},
			})
		}
	}
	close(stop)
	wg.Wait()

	if cur, rebuilt := st.SuspectGraph(), st.RebuildSuspectGraphAt(st.Epoch()); !cur.Equal(rebuilt) {
		t.Fatalf("after storm: cached graph diverged from rebuild\ncached:\n%s\nrebuilt:\n%s", cur, rebuilt)
	}
}

// TestSuspectGraphAtOldEpochRebuilds: arbitrary-epoch queries bypass the
// cache and still agree with the incremental result at the current
// epoch.
func TestSuspectGraphAtOldEpochRebuilds(t *testing.T) {
	net, nodes := newStoreNet(t, 5, 1, suspicion.Options{Forward: false}, sim.Options{})
	_ = net
	st := nodes[1].store
	st.HandleUpdate(&wire.Update{Owner: 1, Row: []uint64{0, 2, 0, 0, 1}, Sig: []byte{0}})
	st.ObserveEpoch(2)

	if g := st.SuspectGraphAt(1); !g.HasEdge(1, 5) || !g.HasEdge(1, 2) {
		t.Fatalf("epoch-1 rebuild missing edges:\n%s", g)
	}
	cur := st.SuspectGraphAt(2)
	if cur.HasEdge(1, 5) || !cur.HasEdge(1, 2) {
		t.Fatalf("epoch-2 graph wrong:\n%s", cur)
	}
	if !cur.Equal(st.SuspectGraph()) {
		t.Fatal("SuspectGraphAt(current) disagrees with SuspectGraph")
	}
}
