package suspicion_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"quorumselect/internal/fd"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/suspicion"
	"quorumselect/internal/wire"
)

// storeNode wires a failure detector and a suspicion store together the
// way the architecture diagram (Fig 1) prescribes: network → fd →
// store.
type storeNode struct {
	env     runtime.Env
	opts    suspicion.Options
	d       *fd.Detector
	store   *suspicion.Store
	changes int
}

func (n *storeNode) Init(env runtime.Env) {
	n.env = env
	n.store = suspicion.New(env.Config(), n.opts)
	n.store.Bind(env, func() { n.changes++ })
	n.d = fd.New(fd.DefaultOptions())
	n.d.Bind(env, func(from ids.ProcessID, m wire.Message) {
		if up, ok := m.(*wire.Update); ok {
			n.store.HandleUpdate(up)
		}
	}, nil)
}

func (n *storeNode) Receive(from ids.ProcessID, m wire.Message) { n.d.Receive(from, m) }

func newStoreNet(t *testing.T, nProcs, f int, opts suspicion.Options, simOpts sim.Options) (*sim.Network, map[ids.ProcessID]*storeNode) {
	t.Helper()
	cfg := ids.MustConfig(nProcs, f)
	nodes := make(map[ids.ProcessID]runtime.Node, nProcs)
	stores := make(map[ids.ProcessID]*storeNode, nProcs)
	for _, p := range cfg.All() {
		sn := &storeNode{opts: opts}
		stores[p] = sn
		nodes[p] = sn
	}
	return sim.NewNetwork(cfg, nodes, simOpts), stores
}

func TestSuspicionPropagation(t *testing.T) {
	net, nodes := newStoreNet(t, 4, 1, suspicion.DefaultOptions(), sim.Options{})
	nodes[1].store.UpdateSuspicions(ids.NewProcSet(3))
	net.Run(time.Second)
	for p, n := range nodes {
		if got := n.store.Value(1, 3); got != 1 {
			t.Errorf("%s: matrix[1][3] = %d, want 1", p, got)
		}
		if got := n.store.Value(3, 1); got != 0 {
			t.Errorf("%s: matrix[3][1] = %d, want 0 (direction matters)", p, got)
		}
	}
}

func TestConvergenceToSameState(t *testing.T) {
	net, nodes := newStoreNet(t, 5, 2, suspicion.DefaultOptions(), sim.Options{
		Seed:    9,
		Latency: sim.UniformLatency(time.Millisecond, 40*time.Millisecond),
	})
	nodes[1].store.UpdateSuspicions(ids.NewProcSet(2, 3))
	nodes[4].store.UpdateSuspicions(ids.NewProcSet(1))
	nodes[5].store.UpdateSuspicions(ids.NewProcSet(4))
	net.Run(2 * time.Second)
	want := nodes[1].store.Snapshot()
	for p, n := range nodes {
		if got := n.store.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s diverged:\n got %v\nwant %v", p, got, want)
		}
	}
}

func TestForwardingDeliversThroughIndirectPaths(t *testing.T) {
	// The adversary cuts the direct link p1→p3. With forwarding
	// (Algorithm 1 line 23) p3 still learns p1's suspicions via p2/p4.
	cut := sim.FilterFunc(func(from, to ids.ProcessID, m wire.Message, _ time.Duration) sim.Verdict {
		return sim.Verdict{Drop: from == 1 && to == 3}
	})
	net, nodes := newStoreNet(t, 4, 1, suspicion.DefaultOptions(), sim.Options{Filter: cut})
	nodes[1].store.UpdateSuspicions(ids.NewProcSet(2))
	net.Run(time.Second)
	if got := nodes[3].store.Value(1, 2); got != 1 {
		t.Errorf("p3 did not learn p1's suspicion via forwarding: matrix[1][2] = %d", got)
	}
}

func TestNoForwardingAblation(t *testing.T) {
	// Same cut, forwarding off (E10a): p3 must NOT learn the suspicion.
	cut := sim.FilterFunc(func(from, to ids.ProcessID, m wire.Message, _ time.Duration) sim.Verdict {
		return sim.Verdict{Drop: from == 1 && to == 3}
	})
	net, nodes := newStoreNet(t, 4, 1, suspicion.Options{Forward: false}, sim.Options{Filter: cut})
	nodes[1].store.UpdateSuspicions(ids.NewProcSet(2))
	net.Run(time.Second)
	if got := nodes[3].store.Value(1, 2); got != 0 {
		t.Errorf("without forwarding p3 should not converge, matrix[1][2] = %d", got)
	}
}

func TestEquivocationConverges(t *testing.T) {
	// A faulty p4 sends different rows to different processes. Max-merge
	// plus forwarding still drives all correct processes to the same
	// (pointwise max) state — the paper's §VI-C observation.
	net, nodes := newStoreNet(t, 4, 1, suspicion.DefaultOptions(), sim.Options{})
	rowA := []uint64{5, 0, 0, 0}
	rowB := []uint64{0, 7, 0, 0}
	net.Env(4).Send(1, &wire.Update{Owner: 4, Row: rowA, Sig: []byte{0}})
	net.Env(4).Send(2, &wire.Update{Owner: 4, Row: rowB, Sig: []byte{0}})
	net.Run(time.Second)
	for p, n := range nodes {
		if n.store.Value(4, 1) != 5 || n.store.Value(4, 2) != 7 {
			t.Errorf("%s: row4 = %v, want pointwise max [5 7 0 0]", p, n.store.Row(4))
		}
	}
}

func TestMergeOrderIndependence(t *testing.T) {
	// Apply the same set of updates in random orders on isolated
	// processes (forwarding off so only the injected updates matter):
	// the final matrices must agree — the CRDT law the paper's
	// "eventual consistent shared data structure" claim rests on.
	updates := []*wire.Update{
		{Owner: 1, Row: []uint64{0, 3, 0, 1}, Sig: []byte{0}},
		{Owner: 1, Row: []uint64{0, 1, 2, 0}, Sig: []byte{0}},
		{Owner: 2, Row: []uint64{4, 0, 0, 0}, Sig: []byte{0}},
		{Owner: 3, Row: []uint64{0, 0, 0, 9}, Sig: []byte{0}},
		{Owner: 2, Row: []uint64{1, 0, 5, 0}, Sig: []byte{0}},
	}
	rng := rand.New(rand.NewSource(1))
	var want [][]uint64
	for trial := 0; trial < 30; trial++ {
		net, nodes := newStoreNet(t, 4, 1, suspicion.Options{Forward: false}, sim.Options{})
		_ = net
		perm := rng.Perm(len(updates))
		for _, idx := range perm {
			nodes[1].store.HandleUpdate(updates[idx].Clone())
		}
		got := nodes[1].store.Snapshot()
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("order %v produced different state:\n got %v\nwant %v", perm, got, want)
		}
	}
}

func TestCRDTLawsQuick(t *testing.T) {
	// quick.Check over random update batches: applying any two update
	// streams in either interleaving yields the same matrix
	// (commutativity of the max-merge join), and re-applying a whole
	// stream changes nothing (idempotence).
	cfg := ids.MustConfig(4, 1)
	makeUpdates := func(raw []uint16) []*wire.Update {
		var ups []*wire.Update
		for i := 0; i+4 < len(raw); i += 5 {
			owner := ids.ProcessID(int(raw[i])%cfg.N + 1)
			row := make([]uint64, cfg.N)
			for j := 0; j < 4; j++ {
				row[j] = uint64(raw[i+1+j]) % 8
			}
			ups = append(ups, &wire.Update{Owner: owner, Row: row, Sig: []byte{0}})
		}
		return ups
	}
	fresh := func() *suspicion.Store {
		nodes := map[ids.ProcessID]runtime.Node{}
		for _, p := range cfg.All() {
			nodes[p] = nopNode{}
		}
		net := sim.NewNetwork(cfg, nodes, sim.Options{})
		st := suspicion.New(cfg, suspicion.Options{Forward: false})
		st.Bind(net.Env(1), nil)
		return st
	}
	law := func(rawA, rawB []uint16) bool {
		a, b := makeUpdates(rawA), makeUpdates(rawB)
		s1, s2 := fresh(), fresh()
		for _, u := range a {
			s1.HandleUpdate(u.Clone())
		}
		for _, u := range b {
			s1.HandleUpdate(u.Clone())
		}
		for _, u := range b {
			s2.HandleUpdate(u.Clone())
		}
		for _, u := range a {
			s2.HandleUpdate(u.Clone())
		}
		if !reflect.DeepEqual(s1.Snapshot(), s2.Snapshot()) {
			return false
		}
		// Idempotence: replaying everything changes nothing.
		before := s1.Snapshot()
		for _, u := range append(a, b...) {
			s1.HandleUpdate(u.Clone())
		}
		return reflect.DeepEqual(before, s1.Snapshot())
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

type nopNode struct{}

func (nopNode) Init(runtime.Env)                    {}
func (nopNode) Receive(ids.ProcessID, wire.Message) {}

func TestMergeIdempotent(t *testing.T) {
	net, nodes := newStoreNet(t, 4, 1, suspicion.Options{Forward: false}, sim.Options{})
	_ = net
	up := &wire.Update{Owner: 2, Row: []uint64{1, 0, 2, 0}, Sig: []byte{0}}
	if !nodes[1].store.HandleUpdate(up.Clone()) {
		t.Fatal("first merge reported no change")
	}
	if nodes[1].store.HandleUpdate(up.Clone()) {
		t.Error("second identical merge reported change (not idempotent)")
	}
	if nodes[1].changes != 1 {
		t.Errorf("onChange fired %d times, want 1", nodes[1].changes)
	}
}

func TestMalformedUpdateIgnored(t *testing.T) {
	net, nodes := newStoreNet(t, 4, 1, suspicion.DefaultOptions(), sim.Options{})
	_ = net
	// Wrong row length.
	if nodes[1].store.HandleUpdate(&wire.Update{Owner: 2, Row: []uint64{1, 2}, Sig: []byte{0}}) {
		t.Error("short row accepted")
	}
	// Owner outside Π.
	if nodes[1].store.HandleUpdate(&wire.Update{Owner: 9, Row: make([]uint64, 4), Sig: []byte{0}}) {
		t.Error("foreign owner accepted")
	}
}

func TestSuspectGraphFigure4(t *testing.T) {
	// Reconstruct Figure 4 from suspicion entries: edges (1,2),(1,5),
	// (2,5) stamped epoch 3 and (3,4) stamped epoch 2.
	net, nodes := newStoreNet(t, 5, 2, suspicion.Options{Forward: false}, sim.Options{})
	_ = net
	st := nodes[1].store
	st.HandleUpdate(&wire.Update{Owner: 1, Row: []uint64{0, 3, 0, 0, 3}, Sig: []byte{0}})
	st.HandleUpdate(&wire.Update{Owner: 2, Row: []uint64{0, 0, 0, 0, 3}, Sig: []byte{0}})
	st.HandleUpdate(&wire.Update{Owner: 3, Row: []uint64{0, 0, 0, 2, 0}, Sig: []byte{0}})

	g2 := st.SuspectGraphAt(2)
	if g2.HasIndependentSet(3) {
		t.Error("epoch-2 graph should have no independent set of size 3")
	}
	g3 := st.SuspectGraphAt(3)
	if g3.HasEdge(3, 4) {
		t.Error("edge (3,4) should drop out at epoch 3")
	}
	set, ok := g3.FirstIndependentSet(3)
	if !ok {
		t.Fatal("epoch-3 graph should have an independent set")
	}
	want := []ids.ProcessID{1, 3, 4}
	for i := range want {
		if set[i] != want[i] {
			t.Fatalf("first IS = %v, want %v", set, want)
		}
	}
}

func TestAdvanceEpochRestampsSuspicions(t *testing.T) {
	net, nodes := newStoreNet(t, 4, 1, suspicion.DefaultOptions(), sim.Options{})
	n1 := nodes[1]
	n1.store.UpdateSuspicions(ids.NewProcSet(2))
	net.Run(time.Second)
	if n1.store.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", n1.store.Epoch())
	}
	n1.store.AdvanceEpoch()
	net.Run(net.Now() + time.Second)
	if n1.store.Epoch() != 2 {
		t.Fatalf("epoch = %d after advance", n1.store.Epoch())
	}
	// The current suspicion of p2 must be re-stamped with epoch 2 and
	// propagated.
	for p, n := range nodes {
		if got := n.store.Value(1, 2); got != 2 {
			t.Errorf("%s: matrix[1][2] = %d, want 2 after re-stamp", p, got)
		}
	}
	// The suspect graph at the new epoch still has the edge.
	if !n1.store.SuspectGraph().HasEdge(1, 2) {
		t.Error("current suspicion lost its edge after epoch advance")
	}
}

func TestObserveEpoch(t *testing.T) {
	net, nodes := newStoreNet(t, 4, 1, suspicion.DefaultOptions(), sim.Options{})
	_ = net
	st := nodes[1].store
	st.ObserveEpoch(5)
	if st.Epoch() != 5 {
		t.Errorf("epoch = %d, want 5", st.Epoch())
	}
	st.ObserveEpoch(3) // never backwards
	if st.Epoch() != 5 {
		t.Errorf("epoch moved backwards to %d", st.Epoch())
	}
}

func TestMaxEpochSeen(t *testing.T) {
	net, nodes := newStoreNet(t, 4, 1, suspicion.Options{Forward: false}, sim.Options{})
	_ = net
	st := nodes[1].store
	if st.MaxEpochSeen() != 0 {
		t.Error("fresh store MaxEpochSeen != 0")
	}
	st.HandleUpdate(&wire.Update{Owner: 2, Row: []uint64{0, 0, 6, 0}, Sig: []byte{0}})
	if st.MaxEpochSeen() != 6 {
		t.Errorf("MaxEpochSeen = %d, want 6", st.MaxEpochSeen())
	}
}
