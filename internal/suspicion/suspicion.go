// Package suspicion implements the eventually-consistent suspicion
// data structure of Algorithm 1 (§VI-A): an n×n matrix where entry
// [l][k] records the last epoch in which process l suspected process k.
//
// Rows are owned: only process l's signature can update row l. Updates
// are broadcast, merged by pointwise maximum, and forwarded on change,
// so the matrix is a join-semilattice CRDT — correct processes converge
// to the same state regardless of delivery order, even when faulty
// processes equivocate (send different updates to different processes):
// as the paper observes, equivocation only makes the merged state grow
// faster.
//
// Paper typo adopted (see DESIGN.md): Algorithm 1 line 14 reads
// suspected[j][i] ← epoch, but every other use makes the row index the
// suspecting process, so the local stamp is suspected[i][j] ← epoch.
package suspicion

import (
	"fmt"

	"quorumselect/internal/graph"
	"quorumselect/internal/ids"
	"quorumselect/internal/logging"
	"quorumselect/internal/obs"
	"quorumselect/internal/runtime"
	"quorumselect/internal/wire"
)

// Options configures a Store.
type Options struct {
	// Forward controls gossip forwarding of changed updates (Algorithm
	// 1 line 23). Disabling it is the E10(a) ablation: correct
	// processes then only converge if the original sender reaches
	// everyone directly.
	Forward bool
}

// DefaultOptions returns the paper's configuration (forwarding on).
func DefaultOptions() Options { return Options{Forward: true} }

// Store is one process's replica of the suspicion matrix, together
// with the epoch counter and current local suspicions of Algorithm 1.
type Store struct {
	env  runtime.Env
	opts Options
	cfg  ids.Config

	epoch      uint64
	suspecting ids.ProcSet
	matrix     [][]uint64
	nonzero    int // count of non-zero matrix cells (cells are monotone)

	onChange func()
	log      logging.Logger
}

// New returns a Store for the given configuration with epoch 1 and an
// all-zero matrix, matching Algorithm 1's initial state.
func New(cfg ids.Config, opts Options) *Store {
	m := make([][]uint64, cfg.N)
	for i := range m {
		m[i] = make([]uint64, cfg.N)
	}
	return &Store{
		opts:       opts,
		cfg:        cfg,
		epoch:      1,
		suspecting: ids.NewProcSet(),
		matrix:     m,
	}
}

// Bind attaches the store to its environment. onChange fires after any
// merge that changed the matrix — the selector's updateQuorum hook
// (Algorithm 1 line 24).
func (s *Store) Bind(env runtime.Env, onChange func()) {
	s.env = env
	s.onChange = onChange
	s.log = env.Logger()
}

// Epoch returns the current epoch.
func (s *Store) Epoch() uint64 { return s.epoch }

// Suspecting returns the processes this process currently suspects (a
// copy of the variable `suspecting` of Algorithm 1).
func (s *Store) Suspecting() ids.ProcSet { return s.suspecting.Clone() }

// Value returns matrix[l][k]: the last epoch in which l suspected k.
func (s *Store) Value(l, k ids.ProcessID) uint64 {
	return s.matrix[s.idx(l)][s.idx(k)]
}

// Row returns a copy of l's suspicion row.
func (s *Store) Row(l ids.ProcessID) []uint64 {
	return append([]uint64(nil), s.matrix[s.idx(l)]...)
}

func (s *Store) idx(p ids.ProcessID) int {
	if !p.Valid(s.cfg.N) {
		panic(fmt.Sprintf("suspicion: %s outside Π with n=%d", p, s.cfg.N))
	}
	return int(p) - 1
}

// UpdateSuspicions is Algorithm 1's updateSuspicions(S): record S as
// the current suspicions, stamp them with the current epoch in the own
// row, and broadcast the signed row to all processes including self.
//
// Deviation from the pseudocode's event plumbing: Algorithm 1 relies on
// the self-addressed UPDATE to re-enter updateQuorum, but the UPDATE
// handler only reacts to rows *greater* than the stored ones — and the
// local row was already stamped before broadcasting, so the self-copy
// merges as a no-op and the issuing process itself would never
// re-evaluate. We therefore fire onChange directly here whenever the
// stamping changed the matrix. (The self-broadcast is kept: it is
// harmless and preserves the paper's message pattern.)
func (s *Store) UpdateSuspicions(suspected ids.ProcSet) {
	s.suspecting = suspected.Clone()
	self := s.idx(s.env.ID())
	changed := false
	for _, p := range suspected.Sorted() {
		if s.matrix[self][s.idx(p)] != s.epoch {
			if s.matrix[self][s.idx(p)] == 0 {
				s.nonzero++
			}
			s.matrix[self][s.idx(p)] = s.epoch
			changed = true
		}
	}
	if changed {
		s.updateSizeGauge()
	}
	up := &wire.Update{
		Owner: s.env.ID(),
		Row:   append([]uint64(nil), s.matrix[self]...),
	}
	runtime.Sign(s.env, up)
	s.env.Metrics().Inc("suspicion.update.broadcast", 1)
	runtime.Broadcast(s.env, up, true)
	if changed && s.onChange != nil {
		s.onChange()
	}
}

// AdvanceEpoch increments the epoch (Algorithm 1 line 28) and re-issues
// the current suspicions in the new epoch (line 29).
func (s *Store) AdvanceEpoch() {
	s.IncrementEpoch()
	s.UpdateSuspicions(s.suspecting)
}

// IncrementEpoch bumps the epoch without re-issuing suspicions.
// Algorithm 2 (Follower Selection) needs the two steps separated: it
// cancels expectations and installs the default quorum between them
// (lines 10–15).
func (s *Store) IncrementEpoch() {
	s.epoch++
	s.env.Metrics().Inc("suspicion.epoch.advanced", 1)
	runtime.SetNodeGauge(s.env, "suspicion.epoch", float64(s.epoch))
	runtime.Emit(s.env, obs.Event{Type: obs.TypeEpochAdvance, Epoch: s.epoch})
	s.log.Logf(logging.LevelDebug, "suspicion: advancing to epoch %d", s.epoch)
}

// ObserveEpoch fast-forwards the local epoch when merged suspicions
// show that another process already reached a later epoch. Without it
// the store is still correct (the local process catches up by
// advancing through intermediate epochs); with it convergence needs
// fewer rounds. It never moves the epoch backwards.
func (s *Store) ObserveEpoch(e uint64) {
	if e > s.epoch {
		s.epoch = e
		runtime.SetNodeGauge(s.env, "suspicion.epoch", float64(s.epoch))
	}
}

// HandleUpdate merges a (signature-verified) UPDATE message into the
// matrix (Algorithm 1 lines 16-24). It returns true if the local state
// changed; in that case the message was forwarded to all other
// processes and the onChange hook fired.
func (s *Store) HandleUpdate(m *wire.Update) bool {
	if !m.Owner.Valid(s.cfg.N) || len(m.Row) != s.cfg.N {
		s.env.Metrics().Inc("suspicion.update.malformed", 1)
		s.log.Logf(logging.LevelDebug, "suspicion: malformed update from %s (len=%d)", m.Owner, len(m.Row))
		return false
	}
	row := s.matrix[s.idx(m.Owner)]
	changedCells := 0
	for k := range row {
		if m.Row[k] > row[k] {
			if row[k] == 0 {
				s.nonzero++
			}
			row[k] = m.Row[k]
			changedCells++
		}
	}
	if changedCells == 0 {
		return false
	}
	s.env.Metrics().Inc("suspicion.update.merged", 1)
	s.env.Metrics().Observe("suspicion.merge.changed.cells", float64(changedCells))
	s.updateSizeGauge()
	if s.opts.Forward {
		s.env.Metrics().Inc("suspicion.update.forwarded", 1)
		runtime.Broadcast(s.env, m, false)
	}
	if s.onChange != nil {
		s.onChange()
	}
	return true
}

// updateSizeGauge publishes the count of non-zero matrix cells — the
// store's "size" (how much suspicion history this replica has absorbed).
func (s *Store) updateSizeGauge() {
	runtime.SetNodeGauge(s.env, "suspicion.store.size", float64(s.nonzero))
}

// SuspectGraph builds the suspect graph G of §VI-B for the current
// epoch e: nodes are Π, and {l, k} is an edge iff l suspected k in
// epoch e or later, or vice versa.
func (s *Store) SuspectGraph() *graph.Graph {
	return s.SuspectGraphAt(s.epoch)
}

// SuspectGraphAt builds the suspect graph for an explicit epoch.
func (s *Store) SuspectGraphAt(epoch uint64) *graph.Graph {
	g := graph.New(s.cfg.N)
	for l := 0; l < s.cfg.N; l++ {
		for k := l + 1; k < s.cfg.N; k++ {
			if s.matrix[l][k] >= epoch || s.matrix[k][l] >= epoch {
				g.AddEdge(ids.ProcessID(l+1), ids.ProcessID(k+1))
			}
		}
	}
	return g
}

// MaxEpochSeen returns the largest epoch stamp anywhere in the matrix;
// used by selectors to detect that the system has moved on.
func (s *Store) MaxEpochSeen() uint64 {
	var max uint64
	for _, row := range s.matrix {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	return max
}

// Snapshot returns a deep copy of the matrix for assertions.
func (s *Store) Snapshot() [][]uint64 {
	out := make([][]uint64, len(s.matrix))
	for i, row := range s.matrix {
		out[i] = append([]uint64(nil), row...)
	}
	return out
}
