// Package suspicion implements the eventually-consistent suspicion
// data structure of Algorithm 1 (§VI-A): an n×n matrix where entry
// [l][k] records the last epoch in which process l suspected process k.
//
// Rows are owned: only process l's signature can update row l. Updates
// are broadcast, merged by pointwise maximum, and forwarded on change,
// so the matrix is a join-semilattice CRDT — correct processes converge
// to the same state regardless of delivery order, even when faulty
// processes equivocate (send different updates to different processes):
// as the paper observes, equivocation only makes the merged state grow
// faster.
//
// The suspect graph of §VI-B is maintained incrementally: every matrix
// write updates a version-stamped cached graph edge-by-edge, and epoch
// advances prune stale edges in O(edges), so selectors obtain the graph
// in O(changed edges) instead of the former O(n²) rebuild. The cache is
// copy-on-write: SuspectGraph hands out the cached instance as an
// immutable snapshot, and the next mutation clones it first, so readers
// on other goroutines (metrics frontends, tests) are race-free.
//
// Paper typo adopted (see DESIGN.md): Algorithm 1 line 14 reads
// suspected[j][i] ← epoch, but every other use makes the row index the
// suspecting process, so the local stamp is suspected[i][j] ← epoch.
package suspicion

import (
	"fmt"
	"sync"

	"quorumselect/internal/graph"
	"quorumselect/internal/ids"
	"quorumselect/internal/logging"
	"quorumselect/internal/obs"
	"quorumselect/internal/runtime"
	"quorumselect/internal/wire"
)

// Options configures a Store.
type Options struct {
	// Forward controls gossip forwarding of changed updates (Algorithm
	// 1 line 23). Disabling it is the E10(a) ablation: correct
	// processes then only converge if the original sender reaches
	// everyone directly.
	Forward bool
}

// DefaultOptions returns the paper's configuration (forwarding on).
func DefaultOptions() Options { return Options{Forward: true} }

// Store is one process's replica of the suspicion matrix, together
// with the epoch counter and current local suspicions of Algorithm 1.
type Store struct {
	env  runtime.Env
	opts Options
	cfg  ids.Config

	// mu guards the matrix, epoch, and the cached suspect graph. The
	// protocol itself is single-threaded; the lock exists so that
	// SuspectGraph readers on other goroutines (metrics frontends,
	// race tests) see a consistent cache. It is never held across
	// broadcasts or the onChange hook, which may re-enter the Store.
	mu         sync.RWMutex
	epoch      uint64
	suspecting ids.ProcSet
	matrix     [][]uint64
	nonzero    int    // count of non-zero matrix cells (cells are monotone)
	maxEpoch   uint64 // running max over all matrix cells

	// Incremental suspect-graph cache for the current epoch.
	cache       *graph.Graph
	cacheShared bool   // handed out by SuspectGraph; clone before mutating
	version     uint64 // bumped whenever the cached graph's edge set changes

	onChange  func()
	persister Persister
	log       logging.Logger
}

// Persister receives every monotone matrix write and epoch advance so
// a durable log can record them before the store acts on the change
// (broadcast, forward, onChange). The replica host implements it over
// internal/storage; cell indices are 0-based matrix coordinates. The
// hooks are invoked outside the store's lock but on the owning event
// loop, in the order the writes happened.
type Persister interface {
	PersistCell(l, k int, epoch uint64)
	PersistEpoch(epoch uint64)
}

// persistedCell is one matrix write queued for the persister.
type persistedCell struct {
	l, k  int
	epoch uint64
}

// New returns a Store for the given configuration with epoch 1 and an
// all-zero matrix, matching Algorithm 1's initial state.
func New(cfg ids.Config, opts Options) *Store {
	m := make([][]uint64, cfg.N)
	for i := range m {
		m[i] = make([]uint64, cfg.N)
	}
	return &Store{
		opts:       opts,
		cfg:        cfg,
		epoch:      1,
		suspecting: ids.NewProcSet(),
		matrix:     m,
		cache:      graph.New(cfg.N),
		version:    1,
	}
}

// Bind attaches the store to its environment. onChange fires after any
// merge that changed the matrix — the selector's updateQuorum hook
// (Algorithm 1 line 24).
func (s *Store) Bind(env runtime.Env, onChange func()) {
	s.env = env
	s.onChange = onChange
	s.log = env.Logger()
	runtime.SetNodeGauge(env, "graph.n", float64(s.cfg.N))
}

// SetPersister installs the durable-log hook. Call it after restoring
// state (RestoreCell/RestoreEpoch) so recovery replay is not
// re-persisted.
func (s *Store) SetPersister(p Persister) { s.persister = p }

// RestoreCell re-applies a persisted matrix write during recovery:
// matrix[l][k] is raised to epoch with no broadcast, no forwarding, no
// onChange, and no re-persist. Out-of-range indices are ignored (a
// durable log from a different configuration must not panic the host).
func (s *Store) RestoreCell(l, k int, epoch uint64) {
	if l < 0 || l >= s.cfg.N || k < 0 || k >= s.cfg.N {
		return
	}
	s.mu.Lock()
	s.stampCell(l, k, epoch)
	s.mu.Unlock()
}

// RestoreEpoch fast-forwards the epoch during recovery, silently.
func (s *Store) RestoreEpoch(e uint64) {
	s.mu.Lock()
	s.advanceEpochLocked(e)
	s.mu.Unlock()
}

func (s *Store) persistCells(cells []persistedCell) {
	if s.persister == nil {
		return
	}
	for _, c := range cells {
		s.persister.PersistCell(c.l, c.k, c.epoch)
	}
}

// Epoch returns the current epoch.
func (s *Store) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// Suspecting returns the processes this process currently suspects (a
// copy of the variable `suspecting` of Algorithm 1).
func (s *Store) Suspecting() ids.ProcSet { return s.suspecting.Clone() }

// Value returns matrix[l][k]: the last epoch in which l suspected k.
func (s *Store) Value(l, k ids.ProcessID) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.matrix[s.idx(l)][s.idx(k)]
}

// Row returns a copy of l's suspicion row.
func (s *Store) Row(l ids.ProcessID) []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]uint64(nil), s.matrix[s.idx(l)]...)
}

func (s *Store) idx(p ids.ProcessID) int {
	if !p.Valid(s.cfg.N) {
		panic(fmt.Sprintf("suspicion: %s outside Π with n=%d", p, s.cfg.N))
	}
	return int(p) - 1
}

// mutableCache returns the cache ready for mutation, cloning it first
// if the current instance has been handed out to readers. Callers must
// hold mu.
func (s *Store) mutableCache() *graph.Graph {
	if s.cacheShared {
		s.cache = s.cache.Clone()
		s.cacheShared = false
		if s.env != nil {
			s.env.Metrics().Inc("suspicion.graph.cow_clones", 1)
		}
	}
	return s.cache
}

// stampCell raises matrix[l][k] to e (cells are monotone; lower values
// are ignored), maintaining the nonzero count, the running max epoch,
// and the cached suspect graph. It reports whether the cell changed.
// Callers must hold mu.
func (s *Store) stampCell(l, k int, e uint64) bool {
	if e <= s.matrix[l][k] {
		return false
	}
	if s.matrix[l][k] == 0 {
		s.nonzero++
	}
	s.matrix[l][k] = e
	if e > s.maxEpoch {
		s.maxEpoch = e
	}
	// {l, k} is a suspect-graph edge iff either direction is stamped in
	// the current epoch or later. Cells only grow, so a write can only
	// add the edge, never remove it.
	if l != k && e >= s.epoch {
		u, v := ids.ProcessID(l+1), ids.ProcessID(k+1)
		if !s.cache.HasEdge(u, v) {
			s.mutableCache().AddEdge(u, v)
			s.version++
		}
	}
	return true
}

// advanceEpochLocked moves the epoch to e and prunes cached edges no
// longer justified at the new epoch in O(edges). Callers must hold mu.
func (s *Store) advanceEpochLocked(e uint64) {
	if e <= s.epoch {
		return
	}
	s.epoch = e
	// Edges can only disappear when the epoch moves forward: an edge
	// {u, v} survives iff one direction is stamped ≥ the new epoch.
	removed := s.mutableCache().PruneEdges(func(u, v ids.ProcessID) bool {
		ui, vi := int(u)-1, int(v)-1
		return s.matrix[ui][vi] >= e || s.matrix[vi][ui] >= e
	})
	if removed > 0 {
		s.version++
	}
}

// UpdateSuspicions is Algorithm 1's updateSuspicions(S): record S as
// the current suspicions, stamp them with the current epoch in the own
// row, and broadcast the signed row to all processes including self.
//
// Deviation from the pseudocode's event plumbing: Algorithm 1 relies on
// the self-addressed UPDATE to re-enter updateQuorum, but the UPDATE
// handler only reacts to rows *greater* than the stored ones — and the
// local row was already stamped before broadcasting, so the self-copy
// merges as a no-op and the issuing process itself would never
// re-evaluate. We therefore fire onChange directly here whenever the
// stamping changed the matrix. (The self-broadcast is kept: it is
// harmless and preserves the paper's message pattern.)
func (s *Store) UpdateSuspicions(suspected ids.ProcSet) {
	s.suspecting = suspected.Clone()
	self := s.idx(s.env.ID())
	s.mu.Lock()
	var cells []persistedCell
	for _, p := range suspected.Sorted() {
		if k := s.idx(p); s.stampCell(self, k, s.epoch) {
			cells = append(cells, persistedCell{self, k, s.epoch})
		}
	}
	row := append([]uint64(nil), s.matrix[self]...)
	s.mu.Unlock()
	changed := len(cells) > 0
	// Persist before broadcasting: a stamped suspicion that reached
	// the network must survive a local restart.
	s.persistCells(cells)
	if changed {
		s.updateSizeGauge()
	}
	up := &wire.Update{
		Owner: s.env.ID(),
		Row:   row,
	}
	runtime.Sign(s.env, up)
	s.env.Metrics().Inc("suspicion.update.broadcast", 1)
	runtime.Broadcast(s.env, up, true)
	if changed && s.onChange != nil {
		s.onChange()
	}
}

// AdvanceEpoch increments the epoch (Algorithm 1 line 28) and re-issues
// the current suspicions in the new epoch (line 29).
func (s *Store) AdvanceEpoch() {
	s.IncrementEpoch()
	s.UpdateSuspicions(s.suspecting)
}

// IncrementEpoch bumps the epoch without re-issuing suspicions.
// Algorithm 2 (Follower Selection) needs the two steps separated: it
// cancels expectations and installs the default quorum between them
// (lines 10–15).
func (s *Store) IncrementEpoch() {
	s.mu.Lock()
	next := s.epoch + 1
	s.advanceEpochLocked(next)
	s.mu.Unlock()
	if s.persister != nil {
		s.persister.PersistEpoch(next)
	}
	s.env.Metrics().Inc("suspicion.epoch.advanced", 1)
	runtime.SetNodeGauge(s.env, "suspicion.epoch", float64(next))
	runtime.Emit(s.env, obs.Event{Type: obs.TypeEpochAdvance, Epoch: next})
	s.log.Logf(logging.LevelDebug, "suspicion: advancing to epoch %d", next)
}

// ObserveEpoch fast-forwards the local epoch when merged suspicions
// show that another process already reached a later epoch. Without it
// the store is still correct (the local process catches up by
// advancing through intermediate epochs); with it convergence needs
// fewer rounds. It never moves the epoch backwards.
func (s *Store) ObserveEpoch(e uint64) {
	s.mu.Lock()
	moved := e > s.epoch
	s.advanceEpochLocked(e)
	s.mu.Unlock()
	if moved {
		if s.persister != nil {
			s.persister.PersistEpoch(e)
		}
		runtime.SetNodeGauge(s.env, "suspicion.epoch", float64(e))
	}
}

// HandleUpdate merges a (signature-verified) UPDATE message into the
// matrix (Algorithm 1 lines 16-24). It returns true if the local state
// changed; in that case the message was forwarded to all other
// processes and the onChange hook fired.
func (s *Store) HandleUpdate(m *wire.Update) bool {
	if !m.Owner.Valid(s.cfg.N) || len(m.Row) != s.cfg.N {
		s.env.Metrics().Inc("suspicion.update.malformed", 1)
		s.log.Logf(logging.LevelDebug, "suspicion: malformed update from %s (len=%d)", m.Owner, len(m.Row))
		return false
	}
	owner := s.idx(m.Owner)
	s.mu.Lock()
	var cells []persistedCell
	for k, v := range m.Row {
		if s.stampCell(owner, k, v) {
			cells = append(cells, persistedCell{owner, k, v})
		}
	}
	s.mu.Unlock()
	if len(cells) == 0 {
		return false
	}
	changedCells := len(cells)
	// Persist before forwarding or re-evaluating the quorum.
	s.persistCells(cells)
	s.env.Metrics().Inc("suspicion.update.merged", 1)
	s.env.Metrics().Observe("suspicion.merge.changed.cells", float64(changedCells))
	s.updateSizeGauge()
	if s.opts.Forward {
		s.env.Metrics().Inc("suspicion.update.forwarded", 1)
		runtime.Broadcast(s.env, m, false)
	}
	if s.onChange != nil {
		s.onChange()
	}
	return true
}

// updateSizeGauge publishes the count of non-zero matrix cells — the
// store's "size" (how much suspicion history this replica has absorbed).
func (s *Store) updateSizeGauge() {
	s.mu.RLock()
	nonzero := s.nonzero
	s.mu.RUnlock()
	runtime.SetNodeGauge(s.env, "suspicion.store.size", float64(nonzero))
}

// SuspectGraph returns the suspect graph G of §VI-B for the current
// epoch e: nodes are Π, and {l, k} is an edge iff l suspected k in
// epoch e or later, or vice versa.
//
// The returned graph is the incrementally-maintained cache, handed out
// as an immutable snapshot: callers must not mutate it. Obtaining it is
// O(1); the store pays O(changed edges) at mutation time instead.
func (s *Store) SuspectGraph() *graph.Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cacheShared = true
	return s.cache
}

// GraphSnapshot returns the current suspect graph together with its
// version counter, under one lock acquisition. Selectors memoizing
// graph-derived results (the generalized quorum selection in core and
// follower) need the pair to be mutually consistent: reading them with
// two calls could pair an old graph with a new version and pin a stale
// memo.
func (s *Store) GraphSnapshot() (*graph.Graph, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cacheShared = true
	return s.cache, s.version
}

// GraphVersion returns a counter that changes whenever the edge set of
// SuspectGraph changes, letting selectors memoize derived results
// (e.g. the lexicographically-first independent set) per version.
func (s *Store) GraphVersion() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// SuspectGraphAt builds the suspect graph for an explicit epoch. For
// the current epoch it returns the cached graph; other epochs pay a
// full O(n²) rebuild (counted by suspicion.graph.rebuilds).
func (s *Store) SuspectGraphAt(epoch uint64) *graph.Graph {
	s.mu.Lock()
	if epoch == s.epoch {
		defer s.mu.Unlock()
		s.cacheShared = true
		return s.cache
	}
	s.mu.Unlock()
	return s.RebuildSuspectGraphAt(epoch)
}

// RebuildSuspectGraphAt constructs the suspect graph for an epoch from
// the full matrix, bypassing the incremental cache — the pre-cache code
// path, kept for arbitrary-epoch queries, differential tests, and as
// the rebuild baseline in benchmarks.
func (s *Store) RebuildSuspectGraphAt(epoch uint64) *graph.Graph {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.env != nil {
		s.env.Metrics().Inc("suspicion.graph.rebuilds", 1)
	}
	g := graph.New(s.cfg.N)
	for l := 0; l < s.cfg.N; l++ {
		for k := l + 1; k < s.cfg.N; k++ {
			if s.matrix[l][k] >= epoch || s.matrix[k][l] >= epoch {
				g.AddEdge(ids.ProcessID(l+1), ids.ProcessID(k+1))
			}
		}
	}
	return g
}

// MaxEpochSeen returns the largest epoch stamp anywhere in the matrix;
// used by selectors to detect that the system has moved on. It is a
// running maximum maintained on every matrix write, not a scan.
func (s *Store) MaxEpochSeen() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.maxEpoch
}

// Snapshot returns a deep copy of the matrix for assertions.
func (s *Store) Snapshot() [][]uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([][]uint64, len(s.matrix))
	for i, row := range s.matrix {
		out[i] = append([]uint64(nil), row...)
	}
	return out
}
