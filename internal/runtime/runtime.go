// Package runtime defines the execution environment protocol code runs
// against. The same protocol implementations (failure detector,
// suspicion store, selectors, XPaxos) run unchanged on the
// deterministic discrete-event simulator (internal/sim) and on the real
// TCP transport (internal/transport); both provide an Env.
//
// Per the paper's system model, events between the modules of one
// process are processed in the order they were produced: every process
// is driven by a single logical thread, so protocol code never needs
// locks.
package runtime

import (
	"math/rand"
	"time"

	"quorumselect/internal/crypto"
	"quorumselect/internal/ids"
	"quorumselect/internal/logging"
	"quorumselect/internal/metrics"
	"quorumselect/internal/obs"
	"quorumselect/internal/obs/tracer"
	"quorumselect/internal/wire"
)

// Timer is a cancelable pending callback.
type Timer interface {
	// Stop cancels the timer; it reports whether the callback was
	// prevented from running (false if it already ran or was stopped).
	Stop() bool
}

// Env is the execution environment of one process: identity, transport,
// virtual or real time, deterministic randomness, signing and logging.
type Env interface {
	// ID returns the identity of this process in Π.
	ID() ids.ProcessID
	// Config returns the system parameters (n, f, q).
	Config() ids.Config
	// Send transmits m to process to. Sending to the local process is
	// allowed and delivers through the normal receive path, preserving
	// the paper's "broadcast to all including self" (Algorithm 1).
	Send(to ids.ProcessID, m wire.Message)
	// Now returns the current time (virtual in simulations).
	Now() time.Duration
	// After schedules fn to run on this process's event loop after d.
	After(d time.Duration, fn func()) Timer
	// Rand returns this process's deterministic randomness source.
	Rand() *rand.Rand
	// Auth returns the authenticator used to sign and verify messages.
	Auth() crypto.Authenticator
	// Logger returns the process's logger.
	Logger() logging.Logger
	// Metrics returns the shared experiment registry.
	Metrics() *metrics.Registry
	// Events returns the protocol event bus (never nil; shared across
	// processes in simulations, per-host on TCP).
	Events() *obs.Bus
	// Tracer returns the causal span recorder, or nil when tracing is
	// disabled — a nil *tracer.Tracer is inert, so protocol code calls
	// the Trace helpers unconditionally.
	Tracer() *tracer.Tracer
}

// Node is a protocol instance: the simulator or transport calls Init
// once, then Receive for every arriving message, all on one logical
// thread.
type Node interface {
	// Init is called once before any message is delivered.
	Init(env Env)
	// Receive handles a message from the (link-authenticated) sender.
	Receive(from ids.ProcessID, m wire.Message)
}

// Stopper is the optional lifecycle extension of Node: a node that
// implements it can be torn down — periodic senders stopped,
// outstanding timers canceled, the application detached — so the
// simulator or transport can shut a process down (or restart it)
// without leaking goroutines or timers. Stop must be called on the
// node's event loop (like Init and Receive) and must be idempotent.
type Stopper interface {
	Stop()
}

// FreshStarter is the optional restart-fresh extension of Node: a node
// backed by durable storage implements it so a restart can explicitly
// discard that state (wipe, then Init) instead of recovering it. Plain
// Init on such a node recovers; InitFresh is amnesia on purpose.
type FreshStarter interface {
	Node
	InitFresh(env Env)
}

// StopNode tears n down if it implements Stopper; it reports whether it
// did.
func StopNode(n Node) bool {
	s, ok := n.(Stopper)
	if ok {
		s.Stop()
	}
	return ok
}

// Broadcast sends m to every process in Π, including the sender itself
// when includeSelf is set (Algorithm 1 broadcasts updates "to all
// including self").
func Broadcast(env Env, m wire.Message, includeSelf bool) {
	for _, p := range env.Config().All() {
		if p == env.ID() && !includeSelf {
			continue
		}
		env.Send(p, m)
	}
}

// Sign attaches env's signature to a signed message, panicking on
// signing failure (a process that cannot sign with its own key is
// misconfigured beyond recovery).
func Sign(env Env, m wire.Signed) {
	sig, err := env.Auth().Sign(env.ID(), m.SigBytes())
	if err != nil {
		panic("runtime: cannot sign with own key: " + err.Error())
	}
	m.SetSignature(sig)
}

// Verify checks a signed message against its claimed signer.
func Verify(env Env, m wire.Signed) error {
	return env.Auth().Verify(m.Signer(), m.SigBytes(), m.Signature())
}

// AsyncVerifier is the optional off-loop verification extension of Env.
// An environment that implements it may verify signatures away from the
// event loop and deliver the result back ONTO the loop: done(err) must
// run as a loop event (a virtual-time event in the simulator, an events
// queue closure on the TCP host), never concurrently with protocol
// code.
type AsyncVerifier interface {
	// VerifyAsync starts verification of m and reports whether it was
	// accepted: false means asynchronous verification is disabled (or
	// shut down) and done was NOT called — the caller verifies
	// synchronously instead.
	VerifyAsync(m wire.Signed, done func(error)) bool
}

// VerifyAsync verifies m through env's AsyncVerifier when it has one,
// falling back to an inline synchronous Verify otherwise. It reports
// whether verification went asynchronous: if false, done already ran
// before VerifyAsync returned.
func VerifyAsync(env Env, m wire.Signed, done func(error)) bool {
	if av, ok := env.(AsyncVerifier); ok && av.VerifyAsync(m, done) {
		return true
	}
	done(Verify(env, m))
	return false
}

// RawAsyncVerifier is the raw-bytes form of AsyncVerifier: the
// environment verifies an explicit (signer, data, sig) triple off the
// loop, with the same delivery contract (done(err) runs as a loop
// event). Wrapping environments that rewrite the signed bytes before
// verification — the fleet's per-shard domain separation — need it:
// they cannot hand the wrapped bytes to VerifyAsync, whose input is
// the message itself.
type RawAsyncVerifier interface {
	// VerifyRawAsync starts verification and reports whether it was
	// accepted; false means done was NOT called and the caller must
	// verify synchronously.
	VerifyRawAsync(signer ids.ProcessID, data, sig []byte, done func(error)) bool
}

// BatchVerifier is the optional batched-verification extension of Env:
// all items of one pass are checked together (deduplicated and fanned
// out across CPUs on the TCP host), blocking until the whole batch is
// decided. Unlike AsyncVerifier this stays on the calling thread, so
// protocol code may use the results immediately.
type BatchVerifier interface {
	// VerifyBatch returns one error per item, aligned with items, or
	// nil when batched verification is disabled.
	VerifyBatch(items []crypto.BatchItem) []error
}

// VerifyBatch checks a batch of signatures through env's BatchVerifier
// when it has one, serially otherwise. The result is always aligned
// with items.
func VerifyBatch(env Env, items []crypto.BatchItem) []error {
	if bv, ok := env.(BatchVerifier); ok {
		if errs := bv.VerifyBatch(items); errs != nil {
			return errs
		}
	}
	return crypto.VerifySerial(env.Auth(), items)
}

// BatchItemOf builds the batch-verification item for a signed message.
func BatchItemOf(m wire.Signed) crypto.BatchItem {
	return crypto.BatchItem{Signer: m.Signer(), Data: m.SigBytes(), Sig: m.Signature()}
}

// Emit publishes a protocol event stamped with env's identity and
// clock.
func Emit(env Env, e obs.Event) {
	e.Node = env.ID()
	e.At = env.Now()
	env.Events().Publish(e)
}

// Span measures one protocol phase against env's clock (virtual in
// simulations, real on TCP), turning phase durations into histograms.
type Span struct {
	env   Env
	name  string
	start time.Duration
}

// StartSpan opens a phase timer; End records the elapsed duration, in
// seconds, into the named histogram.
func StartSpan(env Env, name string) Span {
	return Span{env: env, name: name, start: env.Now()}
}

// End closes the span, observes the duration into the histogram named
// at StartSpan, and returns it. A zero Span is a no-op.
func (s Span) End() time.Duration {
	if s.env == nil {
		return 0
	}
	d := s.env.Now() - s.start
	s.env.Metrics().Observe(s.name, d.Seconds())
	return d
}

// TraceStart opens a causal span on env's tracer, stamped with env's
// clock. A zero parent starts a new trace; a context taken off an
// incoming frame joins the sender's trace. With tracing disabled the
// returned Active is inert.
func TraceStart(env Env, name string, parent wire.TraceContext) tracer.Active {
	return env.Tracer().Start(env.ID(), name, parent, env.Now())
}

// TraceEnd records a span opened with TraceStart at env's current
// clock.
func TraceEnd(env Env, a tracer.Active) { a.End(env.Now()) }

// TraceInstant records a zero-duration span (a point event such as a
// message arrival) parented on the given context.
func TraceInstant(env Env, name string, parent wire.TraceContext) {
	env.Tracer().Instant(env.ID(), name, parent, env.Now())
}

// SetNodeGauge sets the named gauge labeled with env's process
// identity, so per-process gauges from different processes sharing one
// registry (the simulator) stay distinguishable.
func SetNodeGauge(env Env, name string, v float64) {
	env.Metrics().SetGauge(name, v, metrics.L{Key: "node", Value: env.ID().String()})
}
