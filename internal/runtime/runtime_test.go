package runtime_test

import (
	"testing"
	"time"

	"quorumselect/internal/crypto"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/wire"
)

// collector records deliveries.
type collector struct {
	env  runtime.Env
	from []ids.ProcessID
}

func (c *collector) Init(env runtime.Env) { c.env = env }
func (c *collector) Receive(from ids.ProcessID, m wire.Message) {
	c.from = append(c.from, from)
}

func newNet(t *testing.T, auth crypto.Authenticator) (*sim.Network, map[ids.ProcessID]*collector) {
	t.Helper()
	cfg := ids.MustConfig(4, 1)
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	cs := make(map[ids.ProcessID]*collector, cfg.N)
	for _, p := range cfg.All() {
		c := &collector{}
		cs[p] = c
		nodes[p] = c
	}
	return sim.NewNetwork(cfg, nodes, sim.Options{Auth: auth}), cs
}

func TestBroadcastExcludeSelf(t *testing.T) {
	net, cs := newNet(t, nil)
	runtime.Broadcast(net.Env(2), &wire.Heartbeat{From: 2, Seq: 1}, false)
	net.Run(time.Second)
	if len(cs[2].from) != 0 {
		t.Error("excludeSelf broadcast delivered to sender")
	}
	for _, p := range []ids.ProcessID{1, 3, 4} {
		if len(cs[p].from) != 1 || cs[p].from[0] != 2 {
			t.Errorf("%s: deliveries = %v", p, cs[p].from)
		}
	}
}

func TestBroadcastIncludeSelf(t *testing.T) {
	net, cs := newNet(t, nil)
	runtime.Broadcast(net.Env(2), &wire.Heartbeat{From: 2, Seq: 1}, true)
	net.Run(time.Second)
	for _, p := range net.Config().All() {
		if len(cs[p].from) != 1 {
			t.Errorf("%s: deliveries = %v", p, cs[p].from)
		}
	}
}

func TestSignVerifyHelpers(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	auth := crypto.NewHMACRing(cfg, []byte("k"))
	net, _ := newNet(t, auth)
	env := net.Env(3)

	m := &wire.Update{Owner: 3, Row: make([]uint64, 4)}
	runtime.Sign(env, m)
	if err := runtime.Verify(env, m); err != nil {
		t.Errorf("Verify after Sign: %v", err)
	}
	m.Row[0] = 9 // tamper
	if err := runtime.Verify(env, m); err == nil {
		t.Error("Verify accepted tampered message")
	}
}

func TestSignPanicsWithoutKey(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	full, err := crypto.NewEd25519Ring(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// p3's env but a keyring view holding only p1's private key.
	net, _ := newNet(t, full.View(1))
	env := net.Env(3)
	defer func() {
		if recover() == nil {
			t.Error("Sign without own key did not panic")
		}
	}()
	runtime.Sign(env, &wire.Update{Owner: 3, Row: make([]uint64, 4)})
}
