package fd

import (
	"time"

	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/wire"
)

// HeartbeatScope tags the heartbeat module's expectations in the
// detector.
const HeartbeatScope = "heartbeat"

// Heartbeater realizes the paper's §II assumption that "every process
// is expected to send infinitely many messages": it periodically sends
// HEARTBEAT messages to all other processes and keeps a standing
// expectation for a heartbeat from every other process.
//
// A process that crashes stays suspected (its standing expectation
// never matches again); a process that omits some heartbeats is
// suspected and un-suspected repeatedly — the paper's eventual
// detection of repeated omission failures. A process whose delays grow
// without bound keeps outrunning the adaptive timeout — eventual
// detection of increasing timing failures.
type Heartbeater struct {
	env      runtime.Env
	detector *Detector
	period   time.Duration
	seq      uint64
	stopped  bool

	// tickTimer and armTimer are the pending periodic timers, kept so
	// Stop can cancel them instead of leaving them to fire into a
	// stopped node.
	tickTimer runtime.Timer
	armTimer  runtime.Timer
}

// NewHeartbeater creates a heartbeater sending every period. Start must
// be called after the detector is bound.
func NewHeartbeater(detector *Detector, period time.Duration) *Heartbeater {
	if period <= 0 {
		panic("fd: heartbeat period must be positive")
	}
	return &Heartbeater{detector: detector, period: period}
}

// Start begins sending heartbeats and issues the initial standing
// expectations for every other process. The first expectations are
// armed one period late: on real transports peers start at slightly
// different times and connections have to be dialed first, and a
// suspicion burst at startup would churn quorums for no reason.
func (h *Heartbeater) Start(env runtime.Env) {
	h.env = env
	h.stopped = false
	h.armTimer = env.After(h.period, func() {
		h.armTimer = nil
		if h.stopped {
			return
		}
		for _, p := range env.Config().All() {
			if p != env.ID() {
				h.expectFrom(p)
			}
		}
	})
	h.tick()
}

// Stop ends heartbeat sending and cancels the pending tick and
// expectation-arming timers, so a stopped node holds no live timers.
// The expectations of other processes then see this process as silent —
// also used to inject crash failures in tests. Stop is idempotent.
func (h *Heartbeater) Stop() {
	h.stopped = true
	if h.tickTimer != nil {
		h.tickTimer.Stop()
		h.tickTimer = nil
	}
	if h.armTimer != nil {
		h.armTimer.Stop()
		h.armTimer = nil
	}
}

func (h *Heartbeater) tick() {
	if h.stopped {
		return
	}
	h.seq++
	hb := &wire.Heartbeat{From: h.env.ID(), Seq: h.seq}
	runtime.Broadcast(h.env, hb, false)
	h.tickTimer = h.env.After(h.period, h.tick)
}

// expectFrom issues a standing heartbeat expectation for p: whenever it
// is matched, the next one is issued, so the expectation never runs
// out. The predicate accepts any heartbeat from p — which heartbeat
// arrives is irrelevant, only that p keeps sending.
func (h *Heartbeater) expectFrom(p ids.ProcessID) {
	if h.stopped {
		return
	}
	matched := false
	h.detector.Expect(HeartbeatScope, p, "heartbeat", func(m wire.Message) bool {
		if _, ok := m.(*wire.Heartbeat); !ok {
			return false
		}
		if matched {
			return false // consume exactly one heartbeat per expectation
		}
		matched = true
		// Re-arm on the process's event loop after this delivery
		// completes.
		h.env.After(0, func() { h.expectFrom(p) })
		return true
	})
}

// IsHeartbeat reports whether m is a heartbeat. The detector filters
// heartbeats out of the deliver path itself (see Detector.Bind), so
// composition layers no longer need this; it remains exported for
// tests and adversary filters that classify traffic.
func IsHeartbeat(m wire.Message) bool {
	_, ok := m.(*wire.Heartbeat)
	return ok
}
