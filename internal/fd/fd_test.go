package fd_test

import (
	"testing"
	"time"

	"quorumselect/internal/crypto"
	"quorumselect/internal/fd"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/wire"
)

// fdNode wires a Detector (and optionally a Heartbeater) into a
// simulated process and records deliveries and suspicion snapshots.
type fdNode struct {
	env       runtime.Env
	d         *fd.Detector
	hb        *fd.Heartbeater
	opts      fd.Options
	hbPeriod  time.Duration
	delivered []wire.Message
	snapshots []ids.ProcSet
}

func (n *fdNode) Init(env runtime.Env) {
	n.env = env
	n.d = fd.New(n.opts)
	n.d.Bind(env,
		func(from ids.ProcessID, m wire.Message) { n.delivered = append(n.delivered, m) },
		func(s ids.ProcSet) { n.snapshots = append(n.snapshots, s.Clone()) },
	)
	if n.hbPeriod > 0 {
		n.hb = fd.NewHeartbeater(n.d, n.hbPeriod)
		n.hb.Start(env)
	}
}

func (n *fdNode) Receive(from ids.ProcessID, m wire.Message) { n.d.Receive(from, m) }

// silentNode ignores everything (a crashed or mute process).
type silentNode struct{}

func (silentNode) Init(runtime.Env)                    {}
func (silentNode) Receive(ids.ProcessID, wire.Message) {}

func newFDNet(t *testing.T, n, f int, opts Options) (*sim.Network, map[ids.ProcessID]*fdNode) {
	t.Helper()
	cfg := ids.MustConfig(n, f)
	nodes := make(map[ids.ProcessID]runtime.Node, n)
	fdNodes := make(map[ids.ProcessID]*fdNode, n)
	for _, p := range cfg.All() {
		if opts.silent.Contains(p) {
			nodes[p] = silentNode{}
			continue
		}
		node := &fdNode{opts: opts.fd, hbPeriod: opts.hbPeriod}
		fdNodes[p] = node
		nodes[p] = node
	}
	return sim.NewNetwork(cfg, nodes, opts.sim), fdNodes
}

type Options struct {
	fd       fd.Options
	hbPeriod time.Duration
	silent   ids.ProcSet
	sim      sim.Options
}

func defaultOpts() Options {
	return Options{fd: fd.DefaultOptions(), silent: ids.NewProcSet()}
}

func TestExpectationMatched(t *testing.T) {
	net, nodes := newFDNet(t, 4, 1, defaultOpts())
	n1 := nodes[1]
	n1.d.Expect("test", 2, "heartbeat", fd.IsHeartbeat)
	net.Env(2).Send(1, &wire.Heartbeat{From: 2, Seq: 1})
	net.Run(time.Second)
	if !n1.d.Suspected().Empty() {
		t.Errorf("suspicions after matched expectation: %s", n1.d.Suspected())
	}
	// The detector consumes heartbeats after matching: they carry no
	// payload for the layers above.
	if len(n1.delivered) != 0 {
		t.Errorf("delivered %d messages, want 0", len(n1.delivered))
	}
	if n1.d.PendingExpectations() != 0 {
		t.Error("matched expectation still pending")
	}
}

func TestExpectationCompleteness(t *testing.T) {
	// No message arrives: the sender must be suspected.
	net, nodes := newFDNet(t, 4, 1, defaultOpts())
	n1 := nodes[1]
	n1.d.Expect("test", 2, "commit", fd.IsHeartbeat)
	net.Run(time.Second)
	if !n1.d.IsSuspected(2) {
		t.Error("unmatched expectation did not lead to suspicion")
	}
	if n1.d.SuspicionsRaised(2) != 1 {
		t.Errorf("raised = %d, want 1", n1.d.SuspicionsRaised(2))
	}
	// The ⟨SUSPECTED, S⟩ event fired with p2 in S.
	if len(n1.snapshots) == 0 || !n1.snapshots[len(n1.snapshots)-1].Contains(2) {
		t.Errorf("SUSPECTED snapshots = %v", n1.snapshots)
	}
}

func TestLateMessageCancelsSuspicion(t *testing.T) {
	net, nodes := newFDNet(t, 4, 1, defaultOpts())
	n1 := nodes[1]
	n1.d.Expect("test", 2, "heartbeat", fd.IsHeartbeat)
	// Let the expectation expire, then deliver late.
	net.Run(fd.DefaultBaseTimeout * 2)
	if !n1.d.IsSuspected(2) {
		t.Fatal("expectation did not expire")
	}
	net.Env(2).Send(1, &wire.Heartbeat{From: 2, Seq: 1})
	net.Run(net.Now() + time.Second)
	if n1.d.IsSuspected(2) {
		t.Error("late matching message did not cancel suspicion")
	}
	if n1.d.SuspicionsCanceled(2) != 1 {
		t.Errorf("canceled = %d, want 1", n1.d.SuspicionsCanceled(2))
	}
}

func TestAdaptiveTimeoutGrows(t *testing.T) {
	// After a false suspicion the timeout doubles: a second message
	// delayed by the same amount must no longer trigger a suspicion.
	opts := defaultOpts()
	opts.sim.Latency = sim.ConstantLatency(time.Millisecond)
	net, nodes := newFDNet(t, 4, 1, opts)
	n1 := nodes[1]
	delay := fd.DefaultBaseTimeout + 10*time.Millisecond // past base, within 2× base

	n1.d.Expect("test", 2, "m1", fd.IsHeartbeat)
	net.Env(1).After(delay, func() { net.Env(2).Send(1, &wire.Heartbeat{From: 2, Seq: 1}) })
	net.Run(time.Second)
	if n1.d.SuspicionsRaised(2) != 1 {
		t.Fatalf("first delayed message: raised = %d, want 1", n1.d.SuspicionsRaised(2))
	}

	n1.d.Expect("test", 2, "m2", fd.IsHeartbeat)
	net.Env(1).After(delay, func() { net.Env(2).Send(1, &wire.Heartbeat{From: 2, Seq: 2}) })
	net.Run(net.Now() + time.Second)
	if n1.d.SuspicionsRaised(2) != 1 {
		t.Errorf("second delayed message raised a suspicion despite doubled timeout (raised=%d)",
			n1.d.SuspicionsRaised(2))
	}
}

func TestFixedTimeoutAblation(t *testing.T) {
	// With Adaptive off, the same delay keeps producing false
	// suspicions (the E10 ablation).
	opts := defaultOpts()
	opts.fd.Adaptive = false
	opts.sim.Latency = sim.ConstantLatency(time.Millisecond)
	net, nodes := newFDNet(t, 4, 1, opts)
	n1 := nodes[1]
	delay := fd.DefaultBaseTimeout + 10*time.Millisecond

	for round := 1; round <= 3; round++ {
		seq := uint64(round)
		n1.d.Expect("test", 2, "m", fd.IsHeartbeat)
		net.Env(1).After(delay, func() { net.Env(2).Send(1, &wire.Heartbeat{From: 2, Seq: seq}) })
		net.Run(net.Now() + time.Second)
	}
	if got := n1.d.SuspicionsRaised(2); got != 3 {
		t.Errorf("fixed timeout: raised = %d, want 3 (one per round)", got)
	}
}

func TestDetectedIsPermanent(t *testing.T) {
	net, nodes := newFDNet(t, 4, 1, defaultOpts())
	n1 := nodes[1]
	n1.d.Detected(3)
	if !n1.d.IsSuspected(3) || !n1.d.IsDetected(3) {
		t.Fatal("Detected did not suspect")
	}
	// Neither messages nor Cancel clear a detection.
	net.Env(3).Send(1, &wire.Heartbeat{From: 3, Seq: 1})
	net.Run(time.Second)
	n1.d.Cancel()
	if !n1.d.IsSuspected(3) {
		t.Error("detection was cleared")
	}
	// Detected is idempotent.
	n1.d.Detected(3)
	if n1.d.SuspicionsRaised(3) != 1 {
		t.Errorf("duplicate Detected incremented raised: %d", n1.d.SuspicionsRaised(3))
	}
}

func TestCancelClearsExpectationsAndSuspicions(t *testing.T) {
	net, nodes := newFDNet(t, 4, 1, defaultOpts())
	n1 := nodes[1]
	n1.d.Expect("a", 2, "x", fd.IsHeartbeat)
	n1.d.Expect("b", 3, "y", fd.IsHeartbeat)
	net.Run(time.Second)
	if !n1.d.IsSuspected(2) || !n1.d.IsSuspected(3) {
		t.Fatal("expectations did not expire")
	}
	n1.d.Cancel()
	if !n1.d.Suspected().Empty() {
		t.Errorf("Cancel left suspicions: %s", n1.d.Suspected())
	}
	if n1.d.PendingExpectations() != 0 {
		t.Error("Cancel left expectations")
	}
}

func TestCancelScope(t *testing.T) {
	net, nodes := newFDNet(t, 4, 1, defaultOpts())
	n1 := nodes[1]
	n1.d.Expect("selector", 2, "followers", fd.IsHeartbeat)
	n1.d.Expect("app", 3, "commit", fd.IsHeartbeat)
	net.Run(time.Second)
	n1.d.CancelScope("selector")
	if n1.d.IsSuspected(2) {
		t.Error("selector-scope suspicion survived CancelScope")
	}
	if !n1.d.IsSuspected(3) {
		t.Error("app-scope suspicion was cleared by foreign CancelScope")
	}
}

func TestBadSignatureDropped(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	opts := defaultOpts()
	opts.sim.Auth = crypto.NewHMACRing(cfg, []byte("secret"))
	net, nodes := newFDNet(t, 4, 1, opts)
	n1 := nodes[1]
	// An Update with a garbage signature must be dropped silently.
	net.Env(2).Send(1, &wire.Update{Owner: 2, Row: make([]uint64, 4), Sig: []byte("forged")})
	// A correctly signed one must be delivered.
	good := &wire.Update{Owner: 2, Row: make([]uint64, 4)}
	sig, err := opts.sim.Auth.Sign(2, good.SigBytes())
	if err != nil {
		t.Fatal(err)
	}
	good.Sig = sig
	net.Env(2).Send(1, good)
	net.Run(time.Second)
	if len(n1.delivered) != 1 {
		t.Fatalf("delivered %d messages, want only the correctly signed one", len(n1.delivered))
	}
	if net.Metrics().Counter("fd.dropped.badsig") != 1 {
		t.Error("bad signature not accounted")
	}
}

func TestHeartbeatAccuracy(t *testing.T) {
	// All correct: nobody is ever suspected (eventual strong accuracy,
	// trivially from the start under good conditions).
	opts := defaultOpts()
	opts.hbPeriod = 10 * time.Millisecond
	opts.sim.Latency = sim.ConstantLatency(2 * time.Millisecond)
	net, nodes := newFDNet(t, 4, 1, opts)
	net.Run(2 * time.Second)
	for p, n := range nodes {
		for _, q := range net.Config().All() {
			if n.d.SuspicionsRaised(q) != 0 {
				t.Errorf("%s suspected %s despite all-correct run", p, q)
			}
		}
	}
}

func TestHeartbeatCrashDetection(t *testing.T) {
	// p4 is silent from the start: every correct process must suspect
	// it and never cancel (permanent-in-practice detection of crash).
	opts := defaultOpts()
	opts.hbPeriod = 10 * time.Millisecond
	opts.silent = ids.NewProcSet(4)
	opts.sim.Latency = sim.ConstantLatency(2 * time.Millisecond)
	net, nodes := newFDNet(t, 4, 1, opts)
	net.Run(time.Second)
	for p, n := range nodes {
		if !n.d.IsSuspected(4) {
			t.Errorf("%s does not suspect the crashed p4", p)
		}
		if n.d.SuspicionsCanceled(4) != 0 {
			t.Errorf("%s canceled a suspicion against the crashed p4", p)
		}
	}
}

func TestHeartbeatRepeatedOmissionEventualDetection(t *testing.T) {
	// The adversary drops every second heartbeat from p2 to p1: p1 must
	// raise and cancel suspicions against p2 repeatedly (the paper's
	// eventual detection of repeated omission failures).
	var count int
	filter := sim.FilterFunc(func(from, to ids.ProcessID, m wire.Message, _ time.Duration) sim.Verdict {
		if from == 2 && to == 1 && fd.IsHeartbeat(m) {
			count++
			return sim.Verdict{Drop: count%2 == 1}
		}
		return sim.Verdict{}
	})
	opts := defaultOpts()
	opts.hbPeriod = 30 * time.Millisecond
	opts.fd.Adaptive = false // keep the timeout tight so each omission is seen
	opts.sim.Filter = filter
	opts.sim.Latency = sim.ConstantLatency(2 * time.Millisecond)
	net, nodes := newFDNet(t, 4, 1, opts)
	net.Run(3 * time.Second)
	n1 := nodes[1]
	if n1.d.SuspicionsRaised(2) < 3 {
		t.Errorf("raised = %d, want repeated suspicions", n1.d.SuspicionsRaised(2))
	}
	if n1.d.SuspicionsCanceled(2) < 3 {
		t.Errorf("canceled = %d, want repeated cancellations", n1.d.SuspicionsCanceled(2))
	}
}

func TestForwardedSignedMessageSatisfiesExpectation(t *testing.T) {
	// A signed message is attributed to its SIGNER, not the link-level
	// sender: a copy forwarded by a third party must satisfy an
	// expectation against the originator (the propagation Lemmas 1 and
	// 6 rely on).
	cfg := ids.MustConfig(4, 1)
	auth := crypto.NewHMACRing(cfg, []byte("secret"))
	opts := defaultOpts()
	opts.sim.Auth = auth
	net, nodes := newFDNet(t, 4, 1, opts)
	n1 := nodes[1]
	n1.d.Expect("test", 3, "update from p3", func(m wire.Message) bool {
		u, ok := m.(*wire.Update)
		return ok && u.Owner == 3
	})
	// p3 signs; p2 forwards it to p1 (p3 never talks to p1 directly).
	up := &wire.Update{Owner: 3, Row: make([]uint64, 4)}
	sig, err := auth.Sign(3, up.SigBytes())
	if err != nil {
		t.Fatal(err)
	}
	up.Sig = sig
	net.Env(2).Send(1, up)
	net.Run(time.Second)
	if n1.d.IsSuspected(3) {
		t.Error("forwarded signed message did not satisfy the expectation against the signer")
	}
	if n1.d.PendingExpectations() != 0 {
		t.Error("expectation still pending after forwarded delivery")
	}
	// And the delivery is attributed to the signer too.
	if len(n1.delivered) != 1 {
		t.Fatalf("delivered = %d", len(n1.delivered))
	}
}

func TestExpectationAgainstForwarderNotSatisfied(t *testing.T) {
	// Conversely, a message signed by p3 but forwarded by p2 must NOT
	// satisfy an expectation against p2 — the forwarder did not
	// originate it.
	cfg := ids.MustConfig(4, 1)
	auth := crypto.NewHMACRing(cfg, []byte("secret"))
	opts := defaultOpts()
	opts.sim.Auth = auth
	net, nodes := newFDNet(t, 4, 1, opts)
	n1 := nodes[1]
	n1.d.Expect("test", 2, "update signed by p2", func(m wire.Message) bool {
		_, ok := m.(*wire.Update)
		return ok
	})
	up := &wire.Update{Owner: 3, Row: make([]uint64, 4)}
	sig, err := auth.Sign(3, up.SigBytes())
	if err != nil {
		t.Fatal(err)
	}
	up.Sig = sig
	net.Env(2).Send(1, up) // link sender p2, signer p3
	net.Run(time.Second)
	if !n1.d.IsSuspected(2) {
		t.Error("expectation against the forwarder was satisfied by a foreign-signed message")
	}
}

func TestDeliverWithoutExpectation(t *testing.T) {
	// Non-heartbeat messages with no matching expectation are still
	// delivered; heartbeats are consumed by the detector.
	net, nodes := newFDNet(t, 4, 1, defaultOpts())
	net.Env(2).Send(1, &wire.Request{Client: 7, Seq: 1, Op: []byte("x")})
	net.Env(2).Send(1, &wire.Heartbeat{From: 2, Seq: 5})
	net.Run(time.Second)
	if len(nodes[1].delivered) != 1 {
		t.Errorf("delivered %d messages, want 1 (the request, not the heartbeat)", len(nodes[1].delivered))
	}
	if _, ok := nodes[1].delivered[0].(*wire.Request); !ok {
		t.Errorf("delivered %T, want *wire.Request", nodes[1].delivered[0])
	}
}
