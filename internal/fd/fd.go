// Package fd implements the paper's failure-detection module (§IV-B):
// a Byzantine-environment failure detector driven by expectations the
// application issues.
//
// Interface mapping (paper event → API):
//
//	⟨RECEIVE, m, i⟩    → Detector.Receive (called by the network layer)
//	⟨DELIVER, m, i⟩    → the Deliver callback (to application/selector)
//	⟨EXPECT, P, i⟩     → Detector.Expect (predicate + sender)
//	⟨SUSPECTED, S⟩     → the OnSuspect callback (whole current set S)
//	⟨DETECTED, i⟩      → Detector.Detected (permanent, from application)
//	⟨CANCEL⟩           → Detector.Cancel / Detector.CancelScope
//
// Properties (and how they are achieved):
//
//   - Expectation completeness: every uncanceled expectation either
//     matches a delivered message or its timer fires and the sender is
//     suspected (at least once).
//   - Detection completeness: Detected(i) suspects i forever.
//   - Eventual strong accuracy: a suspicion raised by a timeout is
//     canceled when a matching message later arrives, and the timeout
//     for that sender doubles — the standard eventual-synchrony
//     construction, so false suspicions eventually cease (ablated in
//     experiment E10).
//
// Scopes: the paper's ⟨CANCEL⟩ cancels "previously issued
// expectations". Because several modules of one process (application,
// follower selection) issue expectations independently, expectations
// carry a scope tag and each module cancels only its own scope;
// Cancel() clears every scope.
package fd

import (
	"fmt"
	"time"

	"quorumselect/internal/ids"
	"quorumselect/internal/logging"
	"quorumselect/internal/obs"
	"quorumselect/internal/obs/tracer"
	"quorumselect/internal/runtime"
	"quorumselect/internal/wire"
)

// Predicate is the paper's P: it decides whether a delivered message
// satisfies an expectation.
type Predicate func(m wire.Message) bool

// Deliver receives authenticated messages (the ⟨DELIVER, m, i⟩ event).
type Deliver func(from ids.ProcessID, m wire.Message)

// OnSuspect receives the full current suspicion set whenever it changes
// (the ⟨SUSPECTED, S⟩ event).
type OnSuspect func(suspected ids.ProcSet)

// Options tunes a Detector.
type Options struct {
	// BaseTimeout is the initial per-sender expectation timeout. The
	// zero value selects DefaultBaseTimeout.
	BaseTimeout time.Duration
	// MaxTimeout caps adaptive growth. Zero selects DefaultMaxTimeout.
	MaxTimeout time.Duration
	// Adaptive doubles a sender's timeout whenever a suspicion against
	// it proves false. Disabling it (for the E10 ablation) keeps
	// timeouts fixed and sacrifices eventual strong accuracy under
	// late synchrony.
	Adaptive bool
}

// Default timeouts; chosen ≈ 4× and 100× the simulator's default link
// latency.
const (
	DefaultBaseTimeout = 40 * time.Millisecond
	DefaultMaxTimeout  = 1 * time.Second
)

// DefaultOptions returns the standard adaptive configuration.
func DefaultOptions() Options {
	return Options{BaseTimeout: DefaultBaseTimeout, MaxTimeout: DefaultMaxTimeout, Adaptive: true}
}

type expectation struct {
	scope    string
	from     ids.ProcessID
	desc     string
	pred     Predicate
	timer    runtime.Timer
	issuedAt time.Duration // env.Now() at Expect, for detection latency
	overdue  bool          // timer fired; suspicion raised and still matchable
}

// Detector is the failure-detector module of one process.
type Detector struct {
	env       runtime.Env
	opts      Options
	deliver   Deliver
	onSuspect OnSuspect

	expects  []*expectation
	detected map[ids.ProcessID]bool
	timeout  map[ids.ProcessID]time.Duration

	// raised/canceled counters, used to distinguish the paper's
	// "eventual" from "permanent" detection in experiments.
	raised   map[ids.ProcessID]int
	canceled map[ids.ProcessID]int

	// firstSuspectedAt feeds the suspected→detected span: the clock at
	// the first still-standing suspicion of each process.
	firstSuspectedAt map[ids.ProcessID]time.Duration

	// verifyq is the arrival-order FIFO of messages awaiting (or past)
	// signature verification when the environment verifies
	// asynchronously; with synchronous verification entries complete
	// inline and the queue never holds more than the message being
	// received.
	verifyq []*pendingVerify

	// closed marks the detector torn down: timers are stopped and new
	// expectations are refused.
	closed bool

	log logging.Logger
}

// pendingVerify is one arrival waiting in the verification FIFO.
type pendingVerify struct {
	from ids.ProcessID
	m    wire.Message
	done bool
	err  error
	span tracer.Active // verify.wait stage; zero when untraced or synchronous
}

// New returns an unbound Detector; call Bind before use.
func New(opts Options) *Detector {
	if opts.BaseTimeout <= 0 {
		opts.BaseTimeout = DefaultBaseTimeout
	}
	if opts.MaxTimeout <= 0 {
		opts.MaxTimeout = DefaultMaxTimeout
	}
	if opts.MaxTimeout < opts.BaseTimeout {
		opts.MaxTimeout = opts.BaseTimeout
	}
	return &Detector{
		opts:             opts,
		detected:         make(map[ids.ProcessID]bool),
		timeout:          make(map[ids.ProcessID]time.Duration),
		raised:           make(map[ids.ProcessID]int),
		canceled:         make(map[ids.ProcessID]int),
		firstSuspectedAt: make(map[ids.ProcessID]time.Duration),
	}
}

// Bind attaches the detector to its process environment and callbacks.
// deliver must not be nil; onSuspect may be nil when a caller polls
// Suspected instead.
//
// Heartbeats are consumed here: they match expectations like any other
// message but are never handed to deliver — they carry no payload for
// the layers above, and filtering them once inside the detector means
// no composition layer repeats the check.
func (d *Detector) Bind(env runtime.Env, deliver Deliver, onSuspect OnSuspect) {
	if deliver == nil {
		panic("fd: Bind requires a deliver callback")
	}
	d.env = env
	d.deliver = deliver
	d.onSuspect = onSuspect
	d.log = env.Logger()
}

// Receive is the network entry point (⟨RECEIVE, m, i⟩). It
// authenticates content-signed messages, matches expectations, and
// delivers. Messages whose signature does not verify are dropped: they
// cannot be attributed (the link sender may be an innocent forwarder),
// so they produce neither delivery nor detection.
//
// For content-signed messages the attributed sender is the signer, not
// the link-level sender: protocols forward signed messages on behalf of
// their originator (UPDATE in Algorithm 1 line 23, FOLLOWERS in
// Algorithm 2 line 36), and a forwarded copy must still satisfy an
// expectation against the originator — that indirect propagation is
// what Lemmas 1 and 6 count on.
//
// When the environment verifies asynchronously (runtime.AsyncVerifier)
// the signature check leaves the event loop, but dispatch order does
// not change: every arrival joins a FIFO of pending verifications and
// messages are matched/delivered strictly in arrival order as the
// heads of that queue complete. Unsigned messages (heartbeats) queue
// behind pending signed ones from the same stream, so an environment's
// per-link FIFO guarantee survives off-loop verification unchanged.
func (d *Detector) Receive(from ids.ProcessID, m wire.Message) {
	signed, ok := m.(wire.Signed)
	if !ok {
		if len(d.verifyq) == 0 {
			d.dispatch(from, m)
			return
		}
		d.verifyq = append(d.verifyq, &pendingVerify{from: from, m: m, done: true})
		return
	}
	pv := &pendingVerify{from: from, m: m}
	d.verifyq = append(d.verifyq, pv)
	runtime.VerifyAsync(d.env, signed, func(err error) {
		pv.err = err
		pv.done = true
		d.drainVerified()
	})
	if !pv.done {
		// Genuinely asynchronous: the message now waits in the queue.
		// The wait becomes a commit-path stage when the frame carries a
		// trace context to hang it on.
		if tc, ok := m.(wire.TraceCarrier); ok && !tc.TraceCtx().Zero() {
			pv.span = runtime.TraceStart(d.env, "verify.wait", tc.TraceCtx())
		}
	}
}

// drainVerified dispatches completed verifications from the head of
// the arrival FIFO. It stops at the first still-pending entry, so
// out-of-order completions never reorder delivery.
func (d *Detector) drainVerified() {
	for len(d.verifyq) > 0 && d.verifyq[0].done {
		pv := d.verifyq[0]
		d.verifyq[0] = nil
		d.verifyq = d.verifyq[1:]
		if len(d.verifyq) == 0 {
			d.verifyq = nil
		}
		runtime.TraceEnd(d.env, pv.span)
		from := pv.from
		if signed, ok := pv.m.(wire.Signed); ok {
			if pv.err != nil {
				d.env.Metrics().Inc("fd.dropped.badsig", 1)
				d.log.Logf(logging.LevelDebug, "fd: dropping %s from %s: %v", pv.m.Kind(), from, pv.err)
				continue
			}
			from = signed.Signer()
		}
		d.dispatch(from, pv.m)
	}
}

// dispatch is the authenticated tail of Receive: expectation matching,
// heartbeat consumption, delivery.
func (d *Detector) dispatch(from ids.ProcessID, m wire.Message) {
	d.match(from, m)
	if IsHeartbeat(m) {
		return // consumed by the expectations; nothing above wants it
	}
	d.deliver(from, m)
}

// match consumes every outstanding expectation the message satisfies
// and cancels suspicions that are no longer justified.
func (d *Detector) match(from ids.ProcessID, m wire.Message) {
	matchedOverdue := false
	kept := d.expects[:0]
	for _, e := range d.expects {
		if e.from == from && e.pred(m) {
			if e.timer != nil {
				e.timer.Stop()
			}
			if e.overdue {
				matchedOverdue = true
			}
			d.env.Metrics().Inc("fd.expectation.matched", 1)
			continue
		}
		kept = append(kept, e)
	}
	d.expects = kept
	if matchedOverdue {
		// The suspicion against from proved false: back off its
		// timeout (eventual strong accuracy) and re-publish if it is
		// no longer suspected.
		if d.opts.Adaptive {
			t := d.timeoutFor(from) * 2
			if t > d.opts.MaxTimeout {
				t = d.opts.MaxTimeout
			}
			d.timeout[from] = t
		}
		if !d.suspectedNow(from) {
			d.canceled[from]++
			d.env.Metrics().Inc("fd.suspicion.canceled", 1)
			delete(d.firstSuspectedAt, from)
			runtime.Emit(d.env, obs.Event{Type: obs.TypeSuspicionCleared, Subject: from})
			d.publish()
		}
	}
	d.updatePendingGauge()
}

// Expect registers the paper's ⟨EXPECT, P, i⟩: a message matching pred
// is expected from process from. scope tags the issuing module for
// CancelScope; desc is used in logs only. If no matching message is
// delivered within the sender's current timeout, from is suspected.
// After Close, Expect is a no-op: a stopping node arms no new timers.
func (d *Detector) Expect(scope string, from ids.ProcessID, desc string, pred Predicate) {
	if pred == nil {
		panic("fd: Expect requires a predicate")
	}
	if d.closed {
		return
	}
	e := &expectation{scope: scope, from: from, desc: desc, pred: pred, issuedAt: d.env.Now()}
	e.timer = d.env.After(d.timeoutFor(from), func() { d.expire(e) })
	d.expects = append(d.expects, e)
	d.env.Metrics().Inc("fd.expectation.issued", 1)
	runtime.Emit(d.env, obs.Event{Type: obs.TypeExpect, Subject: from, Detail: scope + ":" + desc})
	d.updatePendingGauge()
}

// expire fires when an expectation's timer lapses unmatched.
func (d *Detector) expire(e *expectation) {
	// The expectation may have been removed (matched or canceled)
	// after the timer fired but before this callback ran.
	found := false
	for _, cur := range d.expects {
		if cur == e {
			found = true
			break
		}
	}
	if !found || e.overdue {
		return
	}
	alreadySuspected := d.suspectedNow(e.from)
	e.overdue = true
	d.env.Metrics().Inc("fd.expectation.expired", 1)
	if !alreadySuspected {
		d.raised[e.from]++
		d.env.Metrics().Inc("fd.suspicion.raised", 1)
		// Detection latency: expectation issue → suspicion raised.
		d.env.Metrics().Observe("fd.detection.latency.seconds",
			(d.env.Now() - e.issuedAt).Seconds())
		if _, ok := d.firstSuspectedAt[e.from]; !ok {
			d.firstSuspectedAt[e.from] = d.env.Now()
		}
		runtime.Emit(d.env, obs.Event{Type: obs.TypeSuspected, Subject: e.from, Detail: e.desc})
		d.log.Logf(logging.LevelDebug, "fd: suspecting %s (no %s within %v)",
			e.from, e.desc, d.timeoutFor(e.from))
		d.publish()
	}
}

// Detected is the paper's ⟨DETECTED, i⟩: the application found a proof
// of misbehavior; i is suspected forever.
func (d *Detector) Detected(i ids.ProcessID) {
	if d.detected[i] {
		return
	}
	d.detected[i] = true
	d.raised[i]++
	d.env.Metrics().Inc("fd.detected", 1)
	// Suspected → detected span, when a timeout suspicion preceded the
	// proof of misbehavior.
	if at, ok := d.firstSuspectedAt[i]; ok {
		d.env.Metrics().Observe("fd.suspected.to.detected.seconds",
			(d.env.Now() - at).Seconds())
		delete(d.firstSuspectedAt, i)
	}
	runtime.Emit(d.env, obs.Event{Type: obs.TypeDetected, Subject: i})
	d.log.Logf(logging.LevelInfo, "fd: application detected %s as faulty", i)
	d.publish()
}

// Cancel clears every outstanding expectation in every scope and the
// suspicions they caused (the paper's ⟨CANCEL⟩, issued e.g. during view
// changes when pending PREPAREs will legitimately never arrive).
// Detected processes remain suspected forever.
func (d *Detector) Cancel() { d.cancelWhere(func(*expectation) bool { return true }) }

// CancelScope clears the expectations (and their suspicions) issued
// under one scope tag, leaving other modules' expectations standing.
func (d *Detector) CancelScope(scope string) {
	d.cancelWhere(func(e *expectation) bool { return e.scope == scope })
}

func (d *Detector) cancelWhere(drop func(*expectation) bool) {
	before := d.Suspected()
	dropped := 0
	kept := d.expects[:0]
	for _, e := range d.expects {
		if drop(e) {
			if e.timer != nil {
				e.timer.Stop()
			}
			d.env.Metrics().Inc("fd.expectation.canceled", 1)
			dropped++
			continue
		}
		kept = append(kept, e)
	}
	d.expects = kept
	if dropped > 0 {
		runtime.Emit(d.env, obs.Event{Type: obs.TypeCancel,
			Detail: fmt.Sprintf("canceled=%d", dropped)})
	}
	if !d.Suspected().Equal(before) {
		for _, p := range before.Sorted() {
			if !d.suspectedNow(p) {
				d.canceled[p]++
				delete(d.firstSuspectedAt, p)
				runtime.Emit(d.env, obs.Event{Type: obs.TypeSuspicionCleared, Subject: p})
			}
		}
		d.publish()
	}
	d.updatePendingGauge()
}

// Close tears the detector down as part of node shutdown: every
// outstanding expectation timer is stopped and the expectations are
// dropped without publishing — this is lifecycle teardown, not the
// protocol's ⟨CANCEL⟩, so no events are emitted and no suspicion set is
// re-broadcast. Subsequent Expect calls are no-ops; Close is
// idempotent.
func (d *Detector) Close() {
	if d.closed {
		return
	}
	d.closed = true
	for _, e := range d.expects {
		if e.timer != nil {
			e.timer.Stop()
		}
	}
	d.expects = nil
	// Verifications still in flight complete against an empty queue:
	// their drain finds nothing to dispatch.
	d.verifyq = nil
}

// Closed reports whether the detector has been torn down.
func (d *Detector) Closed() bool { return d.closed }

// Suspected returns the current suspicion set S: every process with an
// overdue expectation plus every detected process.
func (d *Detector) Suspected() ids.ProcSet {
	s := ids.NewProcSet()
	for p := range d.detected {
		s.Add(p)
	}
	for _, e := range d.expects {
		if e.overdue {
			s.Add(e.from)
		}
	}
	return s
}

// IsSuspected reports whether i is currently suspected.
func (d *Detector) IsSuspected(i ids.ProcessID) bool { return d.suspectedNow(i) }

// IsDetected reports whether i has been permanently detected.
func (d *Detector) IsDetected(i ids.ProcessID) bool { return d.detected[i] }

// SuspicionsRaised returns how many times i has been newly suspected —
// the experiment harness uses it to distinguish the paper's eventual
// detection (raised and canceled repeatedly) from permanent detection.
func (d *Detector) SuspicionsRaised(i ids.ProcessID) int { return d.raised[i] }

// SuspicionsCanceled returns how many suspicions against i were
// canceled again.
func (d *Detector) SuspicionsCanceled(i ids.ProcessID) int { return d.canceled[i] }

// PendingExpectations returns the number of outstanding (not yet
// matched or canceled) expectations, overdue ones included.
func (d *Detector) PendingExpectations() int { return len(d.expects) }

func (d *Detector) suspectedNow(i ids.ProcessID) bool {
	if d.detected[i] {
		return true
	}
	for _, e := range d.expects {
		if e.overdue && e.from == i {
			return true
		}
	}
	return false
}

// updatePendingGauge tracks the outstanding-expectation count per node.
func (d *Detector) updatePendingGauge() {
	runtime.SetNodeGauge(d.env, "fd.expectations.pending", float64(len(d.expects)))
}

func (d *Detector) timeoutFor(i ids.ProcessID) time.Duration {
	if t, ok := d.timeout[i]; ok {
		return t
	}
	return d.opts.BaseTimeout
}

func (d *Detector) publish() {
	if d.onSuspect == nil {
		return
	}
	s := d.Suspected()
	d.log.Logf(logging.LevelTrace, "fd: SUSPECTED %s", s)
	d.onSuspect(s)
}

// String summarizes the detector state for debugging.
func (d *Detector) String() string {
	return fmt.Sprintf("fd{suspected=%s pending=%d}", d.Suspected(), len(d.expects))
}
