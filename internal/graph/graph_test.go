package graph

import (
	"math/rand"
	"testing"

	"quorumselect/internal/ids"
)

func mustEdges(t *testing.T, g *Graph, edges ...[2]int) {
	t.Helper()
	for _, e := range edges {
		g.AddEdge(ids.ProcessID(e[0]), ids.ProcessID(e[1]))
	}
}

func TestGraphBasics(t *testing.T) {
	g := New(5)
	mustEdges(t, g, [2]int{1, 2}, [2]int{2, 3})
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Error("edge (1,2) missing or not symmetric")
	}
	if g.HasEdge(1, 3) {
		t.Error("phantom edge (1,3)")
	}
	if g.Degree(2) != 2 || g.Degree(4) != 0 {
		t.Errorf("degrees wrong: deg(2)=%d deg(4)=%d", g.Degree(2), g.Degree(4))
	}
	if g.EdgeCount() != 2 {
		t.Errorf("EdgeCount = %d, want 2", g.EdgeCount())
	}
	g.AddEdge(1, 2) // duplicate
	if g.EdgeCount() != 2 {
		t.Error("duplicate AddEdge changed edge count")
	}
	g.AddEdge(3, 3) // self-loop ignored
	if g.Degree(3) != 1 {
		t.Error("self-loop affected degree")
	}
	g.RemoveEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Error("RemoveEdge failed")
	}
	ns := g.Neighbors(2)
	if len(ns) != 1 || ns[0] != 3 {
		t.Errorf("Neighbors(2) = %v", ns)
	}
}

func TestGraphCloneEqual(t *testing.T) {
	g := New(4)
	mustEdges(t, g, [2]int{1, 4})
	c := g.Clone()
	if !g.Equal(c) {
		t.Error("clone not equal")
	}
	c.AddEdge(2, 3)
	if g.Equal(c) {
		t.Error("clone shares storage")
	}
	if g.HasEdge(2, 3) {
		t.Error("clone mutation leaked")
	}
}

func TestIsIndependentSetAndVertexCover(t *testing.T) {
	g := New(5)
	mustEdges(t, g, [2]int{1, 2}, [2]int{1, 5}, [2]int{2, 5}, [2]int{3, 4})
	tests := []struct {
		set   []ids.ProcessID
		indep bool
	}{
		{[]ids.ProcessID{1, 3}, true},
		{[]ids.ProcessID{1, 2}, false},
		{[]ids.ProcessID{3, 4}, false},
		{[]ids.ProcessID{2, 3}, true},
		{[]ids.ProcessID{}, true},
	}
	for _, tt := range tests {
		if got := g.IsIndependentSet(tt.set); got != tt.indep {
			t.Errorf("IsIndependentSet(%v) = %v, want %v", tt.set, got, tt.indep)
		}
	}
	// Complement duality: set independent ⟺ complement is a vertex cover.
	all := ids.MustConfig(5, 2).All()
	for _, tt := range tests {
		comp := ids.FromSlice(all).Minus(ids.FromSlice(tt.set)).Sorted()
		if got := g.IsVertexCover(comp); got != tt.indep {
			t.Errorf("IsVertexCover(complement of %v) = %v, want %v", tt.set, got, tt.indep)
		}
	}
}

// TestFigure4 reproduces the paper's Figure 4: in epoch 2 no
// independent set of size 3 exists; moving to epoch 3 removes the edge
// (p3,p4) and both {p1,p3,p4} and {p3,p4,p5} become independent sets,
// with {p1,p3,p4} chosen as lexicographically first.
func TestFigure4(t *testing.T) {
	epoch2 := New(5)
	mustEdges(t, epoch2, [2]int{1, 2}, [2]int{1, 5}, [2]int{2, 5}, [2]int{3, 4})
	if epoch2.HasIndependentSet(3) {
		t.Fatal("epoch-2 graph should have no independent set of size 3")
	}

	epoch3 := epoch2.Clone()
	epoch3.RemoveEdge(3, 4) // the suspicion labeled epoch 2 expires
	if !epoch3.IsIndependentSet([]ids.ProcessID{1, 3, 4}) {
		t.Error("{p1,p3,p4} should be independent in epoch 3")
	}
	if !epoch3.IsIndependentSet([]ids.ProcessID{3, 4, 5}) {
		t.Error("{p3,p4,p5} should be independent in epoch 3")
	}
	got, ok := epoch3.FirstIndependentSet(3)
	if !ok {
		t.Fatal("epoch-3 graph should have an independent set of size 3")
	}
	want := []ids.ProcessID{1, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FirstIndependentSet = %v, want %v", got, want)
		}
	}
}

func TestFirstIndependentSetEdgeCases(t *testing.T) {
	g := New(3)
	if set, ok := g.FirstIndependentSet(0); !ok || len(set) != 0 {
		t.Error("q=0 should return the empty set")
	}
	if _, ok := g.FirstIndependentSet(4); ok {
		t.Error("q>n should fail")
	}
	if _, ok := g.FirstIndependentSet(-1); ok {
		t.Error("q<0 should fail")
	}
	// Empty graph: first IS is {p1,...,pq}.
	set, ok := g.FirstIndependentSet(3)
	if !ok || set[0] != 1 || set[1] != 2 || set[2] != 3 {
		t.Errorf("empty graph IS = %v", set)
	}
	// Complete graph: only singletons.
	k := New(3)
	mustEdges(t, k, [2]int{1, 2}, [2]int{1, 3}, [2]int{2, 3})
	if k.HasIndependentSet(2) {
		t.Error("K3 has no independent set of size 2")
	}
	if s, ok := k.FirstIndependentSet(1); !ok || s[0] != 1 {
		t.Errorf("K3 first singleton = %v", s)
	}
}

// bruteFirstIS computes the lexicographically-first independent set of
// size q by scanning the full enumeration.
func bruteFirstIS(g *Graph, q int) ([]ids.ProcessID, bool) {
	for _, quorum := range ids.EnumerateQuorums(g.N(), q) {
		if g.IsIndependentSet(quorum.Members) {
			return quorum.Members, true
		}
	}
	return nil, false
}

func randomGraph(rng *rand.Rand, n, edges int) *Graph {
	g := New(n)
	for i := 0; i < edges; i++ {
		u := ids.ProcessID(rng.Intn(n) + 1)
		v := ids.ProcessID(rng.Intn(n) + 1)
		g.AddEdge(u, v)
	}
	return g
}

func TestFirstIndependentSetMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(8) // 3..10
		g := randomGraph(rng, n, rng.Intn(2*n))
		for q := 1; q <= n; q++ {
			want, wantOK := bruteFirstIS(g, q)
			got, gotOK := g.FirstIndependentSet(q)
			if gotOK != wantOK {
				t.Fatalf("n=%d q=%d %s: ok=%v, brute=%v", n, q, g, gotOK, wantOK)
			}
			if !gotOK {
				continue
			}
			if !g.IsIndependentSet(got) {
				t.Fatalf("returned set %v not independent in %s", got, g)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d q=%d %s: got %v, want %v", n, q, g, got, want)
				}
			}
		}
	}
}

func TestAllIndependentSets(t *testing.T) {
	g := New(4)
	mustEdges(t, g, [2]int{1, 2})
	all := g.AllIndependentSets(2)
	// Pairs excluding (1,2): (1,3),(1,4),(2,3),(2,4),(3,4) = 5.
	if len(all) != 5 {
		t.Fatalf("AllIndependentSets(2) returned %d sets, want 5", len(all))
	}
	// Lexicographic order and first element agreement.
	first, _ := g.FirstIndependentSet(2)
	for i := range first {
		if all[0][i] != first[i] {
			t.Error("AllIndependentSets[0] differs from FirstIndependentSet")
		}
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New(5)
	mustEdges(t, g, [2]int{5, 1}, [2]int{3, 2})
	es := g.Edges()
	if len(es) != 2 {
		t.Fatalf("Edges len = %d", len(es))
	}
	if es[0] != (Edge{U: 1, V: 5}) || es[1] != (Edge{U: 2, V: 3}) {
		t.Errorf("Edges = %v", es)
	}
}

func TestSortEdges(t *testing.T) {
	es := []Edge{{U: 4, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}}
	SortEdges(es)
	want := []Edge{{U: 1, V: 3}, {U: 2, V: 3}, {U: 2, V: 4}}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("SortEdges = %v, want %v", es, want)
		}
	}
}

func TestGraphPanicsOutsidePi(t *testing.T) {
	g := New(3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for node outside Π")
		}
	}()
	g.AddEdge(1, 4)
}

func TestNewPanicsOnBadN(t *testing.T) {
	for _, n := range []int{0, -1, MaxNodes + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}
