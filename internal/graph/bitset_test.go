package graph

import (
	"testing"
)

func newBitsetN(n int) bitset { return make(bitset, wordsFor(n)) }

func TestBitsetBasics(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 127, 128, 129, 1024} {
		b := newBitsetN(n)
		if b.onesCount() != 0 {
			t.Fatalf("n=%d: fresh bitset not empty", n)
		}
		for _, i := range []int{0, n / 2, n - 1} {
			b.set(i)
			if !b.test(i) {
				t.Fatalf("n=%d: bit %d not set", n, i)
			}
		}
		want := map[int]bool{0: true, n / 2: true, n - 1: true}
		if b.onesCount() != len(want) {
			t.Fatalf("n=%d: onesCount %d want %d", n, b.onesCount(), len(want))
		}
		for i := 0; i < n; i++ {
			if b.test(i) != want[i] {
				t.Fatalf("n=%d: test(%d) = %v", n, i, b.test(i))
			}
		}
		b.clear(n / 2)
		if n > 2 && b.test(n/2) {
			t.Fatalf("n=%d: clear failed", n)
		}
	}
}

func TestBitsetNextSetAndClear(t *testing.T) {
	n := 200
	b := newBitsetN(n)
	for _, i := range []int{3, 63, 64, 100, 199} {
		b.set(i)
	}
	wantSets := []int{3, 63, 64, 100, 199}
	var got []int
	for i := b.nextSetBit(0, n); i < n; i = b.nextSetBit(i+1, n) {
		got = append(got, i)
	}
	if len(got) != len(wantSets) {
		t.Fatalf("nextSetBit walked %v, want %v", got, wantSets)
	}
	for i := range got {
		if got[i] != wantSets[i] {
			t.Fatalf("nextSetBit walked %v, want %v", got, wantSets)
		}
	}
	// nextClearBit over a fully-set prefix.
	full := newBitsetN(n)
	for i := 0; i < 130; i++ {
		full.set(i)
	}
	if got := full.nextClearBit(0, n); got != 130 {
		t.Fatalf("nextClearBit(0) = %d, want 130", got)
	}
	if got := full.nextClearBit(130, n); got != 130 {
		t.Fatalf("nextClearBit(130) = %d, want 130", got)
	}
	allSet := newBitsetN(n)
	for i := 0; i < n; i++ {
		allSet.set(i)
	}
	if got := allSet.nextClearBit(0, n); got != n {
		t.Fatalf("nextClearBit on full set = %d, want %d", got, n)
	}
	if got := b.nextSetBit(n, n); got != n {
		t.Fatalf("nextSetBit(from=n) = %d, want %d", got, n)
	}
}

// FuzzBitsetKernels cross-checks every bitset kernel against a naive
// boolean-slice model. The byte input encodes (n, a, b) with bits drawn
// from the data; the seed corpus covers word boundaries.
func FuzzBitsetKernels(f *testing.F) {
	f.Add([]byte{1})
	f.Add([]byte{63, 0xff, 0x0f})
	f.Add([]byte{64, 0xaa, 0x55, 0xff})
	f.Add([]byte{65, 0x00, 0xff, 0x13, 0x37})
	f.Add([]byte{127, 0x80, 0x01, 0xfe, 0x7f, 0x99})
	f.Add([]byte{128, 0xde, 0xad, 0xbe, 0xef, 0xca, 0xfe})
	f.Add([]byte{129, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80})
	f.Add([]byte{255, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0])
		if n == 0 {
			n = 1
		}
		rest := data[1:]
		a, b := newBitsetN(n), newBitsetN(n)
		am, bm := make([]bool, n), make([]bool, n)
		// Deterministically scatter the remaining bytes into both sets.
		for i, by := range rest {
			for j := 0; j < 8; j++ {
				idx := (i*8 + j) % n
				if by&(1<<uint(j)) != 0 {
					if i%2 == 0 {
						a.set(idx)
						am[idx] = true
					} else {
						b.set(idx)
						bm[idx] = true
					}
				}
			}
		}
		check := func(name string, got bitset, model []bool) {
			t.Helper()
			count := 0
			for i := 0; i < n; i++ {
				if got.test(i) != model[i] {
					t.Fatalf("%s: bit %d = %v, model %v (n=%d)", name, i, got.test(i), model[i], n)
				}
				if model[i] {
					count++
				}
			}
			if got.onesCount() != count {
				t.Fatalf("%s: onesCount %d, model %d", name, got.onesCount(), count)
			}
		}
		check("a", a, am)
		check("b", b, bm)

		// or / and / andNot against the model.
		or := newBitsetN(n)
		or.copyFrom(a)
		or.orWith(b)
		and := newBitsetN(n)
		and.copyFrom(a)
		and.andWith(b)
		andNot := newBitsetN(n)
		andNot.copyFrom(a)
		andNot.andNotWith(b)
		orM, andM, andNotM := make([]bool, n), make([]bool, n), make([]bool, n)
		intersectsM, anyAndNotM := false, false
		for i := 0; i < n; i++ {
			orM[i] = am[i] || bm[i]
			andM[i] = am[i] && bm[i]
			andNotM[i] = am[i] && !bm[i]
			intersectsM = intersectsM || andM[i]
			anyAndNotM = anyAndNotM || andNotM[i]
		}
		check("or", or, orM)
		check("and", and, andM)
		check("andNot", andNot, andNotM)
		if a.intersects(b) != intersectsM {
			t.Fatalf("intersects = %v, model %v", a.intersects(b), intersectsM)
		}
		if a.anyAndNot(b) != anyAndNotM {
			t.Fatalf("anyAndNot = %v, model %v", a.anyAndNot(b), anyAndNotM)
		}
		if a.equal(b) != boolsEqual(am, bm) {
			t.Fatalf("equal = %v, model %v", a.equal(b), boolsEqual(am, bm))
		}

		// Iterator kernels: walk both directions from every offset.
		for from := 0; from <= n; from++ {
			wantSet, wantClear := n, n
			for i := from; i < n; i++ {
				if am[i] && wantSet == n {
					wantSet = i
				}
				if !am[i] && wantClear == n {
					wantClear = i
				}
			}
			if got := a.nextSetBit(from, n); got != wantSet {
				t.Fatalf("nextSetBit(%d) = %d, model %d", from, got, wantSet)
			}
			if got := a.nextClearBit(from, n); got != wantClear {
				t.Fatalf("nextClearBit(%d) = %d, model %d", from, got, wantClear)
			}
		}
	})
}

func boolsEqual(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
