package graph

import (
	"errors"
	"fmt"
	"strings"

	"quorumselect/internal/ids"
)

// LineSubgraph is an acyclic subgraph of maximum degree 2 over the
// nodes {p_1, ..., p_n} — a disjoint union of simple paths
// (Definition 1). It designates a leader: the minimum node of degree 0.
//
// Note the paper's convention: a line subgraph "contains" a node only
// if the node has non-zero degree; the node set is always all of Π.
type LineSubgraph struct {
	n     int
	edges []Edge
	deg   []int
	comp  []int // union-find parent for cycle detection
}

// NewLineSubgraph returns the empty line subgraph on n nodes (every
// node has degree 0, so the designated leader is p_1).
func NewLineSubgraph(n int) *LineSubgraph {
	if n <= 0 || n > MaxNodes {
		panic(fmt.Sprintf("graph: node count %d outside (0,%d]", n, MaxNodes))
	}
	l := &LineSubgraph{
		n:    n,
		deg:  make([]int, n),
		comp: make([]int, n),
	}
	for i := range l.comp {
		l.comp[i] = i
	}
	return l
}

// ErrNotLine is returned when an edge addition would violate the line
// subgraph invariants (degree > 2 or a cycle).
var ErrNotLine = errors.New("graph: edge violates line subgraph invariants")

func (l *LineSubgraph) find(x int) int {
	for l.comp[x] != x {
		l.comp[x] = l.comp[l.comp[x]]
		x = l.comp[x]
	}
	return x
}

// AddEdge inserts {u, v}, returning ErrNotLine if the result would not
// be a line subgraph (self-loop, duplicate edge forming a cycle,
// degree exceeding 2, or closing a path into a cycle).
func (l *LineSubgraph) AddEdge(u, v ids.ProcessID) error {
	if u == v {
		return fmt.Errorf("%w: self-loop on %s", ErrNotLine, u)
	}
	if !u.Valid(l.n) || !v.Valid(l.n) {
		return fmt.Errorf("%w: edge (%s,%s) outside Π with n=%d", ErrNotLine, u, v, l.n)
	}
	ui, vi := int(u)-1, int(v)-1
	if l.deg[ui] >= 2 || l.deg[vi] >= 2 {
		return fmt.Errorf("%w: degree bound at edge (%s,%s)", ErrNotLine, u, v)
	}
	ru, rv := l.find(ui), l.find(vi)
	if ru == rv {
		return fmt.Errorf("%w: cycle closed by edge (%s,%s)", ErrNotLine, u, v)
	}
	l.comp[ru] = rv
	l.deg[ui]++
	l.deg[vi]++
	l.edges = append(l.edges, Edge{U: u, V: v}.Normalize())
	return nil
}

// N returns the number of nodes.
func (l *LineSubgraph) N() int { return l.n }

// Degree returns δ_L(p).
func (l *LineSubgraph) Degree(p ids.ProcessID) int {
	if !p.Valid(l.n) {
		panic(fmt.Sprintf("graph: process %s outside Π with n=%d", p, l.n))
	}
	return l.deg[int(p)-1]
}

// ContainsNode reports whether p has non-zero degree (the paper's
// notion of a line subgraph "containing" a node, §IX).
func (l *LineSubgraph) ContainsNode(p ids.ProcessID) bool { return l.Degree(p) > 0 }

// NodeCount returns the number of nodes with non-zero degree.
func (l *LineSubgraph) NodeCount() int {
	count := 0
	for _, d := range l.deg {
		if d > 0 {
			count++
		}
	}
	return count
}

// Edges returns the edges in canonical sorted order.
func (l *LineSubgraph) Edges() []Edge {
	out := make([]Edge, len(l.edges))
	copy(out, l.edges)
	SortEdges(out)
	return out
}

// Leader returns l_L = min{i ∈ Π : δ_L(i) = 0}, or ids.None if every
// node is covered (no leader is designated).
func (l *LineSubgraph) Leader() ids.ProcessID {
	for i, d := range l.deg {
		if d == 0 {
			return ids.ProcessID(i + 1)
		}
	}
	return ids.None
}

// PossibleFollowers returns, sorted, every node that is a possible
// follower per Definition 2: a node is a possible follower unless it is
// connected (in L) to two nodes of degree 1. The designated leader is
// itself a possible follower by this definition; callers exclude it
// per Definition 3 a).
func (l *LineSubgraph) PossibleFollowers() []ids.ProcessID {
	degOneNeighbors := make([]int, l.n)
	for _, e := range l.edges {
		ui, vi := int(e.U)-1, int(e.V)-1
		if l.deg[vi] == 1 {
			degOneNeighbors[ui]++
		}
		if l.deg[ui] == 1 {
			degOneNeighbors[vi]++
		}
	}
	var out []ids.ProcessID
	for i := 0; i < l.n; i++ {
		if degOneNeighbors[i] < 2 {
			out = append(out, ids.ProcessID(i+1))
		}
	}
	return out
}

// IsPossibleFollower reports whether p is a possible follower.
func (l *LineSubgraph) IsPossibleFollower(p ids.ProcessID) bool {
	if !p.Valid(l.n) {
		return false
	}
	count := 0
	for _, e := range l.edges {
		var other ids.ProcessID
		switch p {
		case e.U:
			other = e.V
		case e.V:
			other = e.U
		default:
			continue
		}
		if l.deg[int(other)-1] == 1 {
			count++
		}
	}
	return count < 2
}

// SubgraphOf reports whether every edge of l is an edge of g
// (Definition 3 b).
func (l *LineSubgraph) SubgraphOf(g *Graph) bool {
	if g.N() < l.n {
		return false
	}
	for _, e := range l.edges {
		if !g.HasEdge(e.U, e.V) {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (l *LineSubgraph) Clone() *LineSubgraph {
	cp := NewLineSubgraph(l.n)
	cp.edges = append(cp.edges[:0], l.edges...)
	copy(cp.deg, l.deg)
	copy(cp.comp, l.comp)
	return cp
}

// String renders the line subgraph with its designated leader.
func (l *LineSubgraph) String() string {
	es := l.Edges()
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return fmt.Sprintf("L(leader=%s){%s}", l.Leader(), strings.Join(parts, " "))
}

// LineSubgraphFromEdges builds a line subgraph on n nodes from an edge
// list, returning ErrNotLine if the edges do not form one. Used to
// validate the L' carried inside FOLLOWERS messages (Definition 3 b).
func LineSubgraphFromEdges(n int, edges []Edge) (*LineSubgraph, error) {
	l := NewLineSubgraph(n)
	for _, e := range edges {
		if err := l.AddEdge(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// MaximalLineSubgraph computes a maximal line subgraph of g per
// Definition 1: a line subgraph whose designated leader is maximal over
// all line subgraphs of g. The witness subgraph is not unique (the
// paper: "two correct processes may compute different maximal line
// subgraphs"), but the leader is, which is all Agreement needs.
//
// The search tries leaders m = n, n−1, ..., 1: leader m requires a
// linear forest in G − p_m covering every node smaller than m. Because
// the builder only ever attaches edges to a currently-uncovered node,
// partial solutions are always acyclic and the backtracking is
// complete. m = 1 (the empty subgraph) always succeeds.
func MaximalLineSubgraph(g *Graph) *LineSubgraph {
	n := g.N()
	for m := n; m >= 2; m-- {
		if l, ok := coverLinearForest(g, m); ok {
			return l
		}
	}
	return NewLineSubgraph(n)
}

// coverLinearForest searches for a line subgraph of g in which every
// node smaller than m has degree ≥ 1 and node m has degree 0.
func coverLinearForest(g *Graph, m int) (*LineSubgraph, bool) {
	n := g.N()
	l := NewLineSubgraph(n)
	var walk func() bool
	walk = func() bool {
		// Find the smallest uncovered node below m.
		u := 0
		for u = 1; u < m; u++ {
			if l.deg[u-1] == 0 {
				break
			}
		}
		if u == m {
			return true // every node < m covered
		}
		up := ids.ProcessID(u)
		row := g.row(u - 1)
		for vi := row.nextSetBit(0, n); vi < n; vi = row.nextSetBit(vi+1, n) {
			v := ids.ProcessID(vi + 1)
			if vi+1 == m {
				continue // node m must keep degree 0
			}
			if l.deg[vi] >= 2 {
				continue
			}
			// u is uncovered (degree 0), so this edge cannot close a
			// cycle; AddEdge still validates as defense in depth.
			if err := l.AddEdge(up, v); err != nil {
				continue
			}
			if walk() {
				return true
			}
			l.removeLastEdge()
		}
		return false
	}
	if walk() {
		return l, true
	}
	return nil, false
}

// removeLastEdge undoes the most recent AddEdge. Only used by the
// backtracking search; union-find components are rebuilt since union
// operations are not invertible.
func (l *LineSubgraph) removeLastEdge() {
	last := l.edges[len(l.edges)-1]
	l.edges = l.edges[:len(l.edges)-1]
	l.deg[int(last.U)-1]--
	l.deg[int(last.V)-1]--
	for i := range l.comp {
		l.comp[i] = i
	}
	for _, e := range l.edges {
		ru, rv := l.find(int(e.U)-1), l.find(int(e.V)-1)
		if ru != rv {
			l.comp[ru] = rv
		}
	}
}
