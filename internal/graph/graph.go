// Package graph implements the suspect-graph machinery of the paper:
// simple undirected graphs over Π, lexicographically-first independent
// sets of a given size (Algorithm 1, §VI-B), vertex-cover duality
// (Theorem 4, Lemma 8), line subgraphs, maximal line subgraphs and
// possible followers (Definitions 1–2, §VIII).
//
// All subset-search subroutines are exact. The independent-set decision
// problem is NP-hard, but as the paper notes ("for small graphs, e.g.
// including only tenth of nodes, it is easy to compute"), exhaustive
// branch-and-bound is entirely adequate for consortium-scale n, and it
// is the only way to guarantee the deterministic lexicographic choice
// the algorithms rely on for agreement.
//
// Adjacency rows are multi-word bitsets (see bitset.go), so graphs
// scale to MaxNodes = 1024 processes while the branch-and-bound inner
// loops stay word-parallel and allocation-free.
package graph

import (
	"fmt"
	"sort"
	"strings"

	"quorumselect/internal/ids"
)

// MaxNodes bounds graph sizes; adjacency rows are multi-word bitsets,
// so the bound is a sanity limit rather than a representation limit.
const MaxNodes = 1024

// Edge is an undirected edge between two processes. By convention the
// stored form has U < V; Normalize enforces it.
type Edge struct {
	U, V ids.ProcessID
}

// Normalize returns the edge with endpoints ordered U < V.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// String renders the edge in paper notation, e.g. "(p3,p4)".
func (e Edge) String() string { return fmt.Sprintf("(%s,%s)", e.U, e.V) }

// Graph is a simple undirected graph on the processes {p_1, ..., p_n}.
// The zero value is unusable; construct with New.
type Graph struct {
	n     int
	words int
	adj   []bitset // adj[i] is the neighbor bitset of p_{i+1}
	back  []uint64 // flat backing array for all rows (one allocation)
}

// New returns an empty graph on n nodes. It panics if n is outside
// (0, MaxNodes]; the paper's systems are consortium-scale.
func New(n int) *Graph {
	if n <= 0 || n > MaxNodes {
		panic(fmt.Sprintf("graph: node count %d outside (0,%d]", n, MaxNodes))
	}
	words := wordsFor(n)
	back := make([]uint64, n*words)
	adj := make([]bitset, n)
	for i := range adj {
		adj[i] = back[i*words : (i+1)*words]
	}
	return &Graph{n: n, words: words, adj: adj, back: back}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

func (g *Graph) check(p ids.ProcessID) int {
	if !p.Valid(g.n) {
		panic(fmt.Sprintf("graph: process %s outside Π with n=%d", p, g.n))
	}
	return int(p) - 1
}

// row exposes the raw adjacency bitset of node index i to package
// siblings (line.go); callers must not mutate it.
func (g *Graph) row(i int) bitset { return g.adj[i] }

// AddEdge inserts the undirected edge {u, v}. Self-loops are ignored
// (a process suspecting itself carries no information for selection).
func (g *Graph) AddEdge(u, v ids.ProcessID) {
	if u == v {
		return
	}
	ui, vi := g.check(u), g.check(v)
	g.adj[ui].set(vi)
	g.adj[vi].set(ui)
}

// RemoveEdge deletes the undirected edge {u, v} if present.
func (g *Graph) RemoveEdge(u, v ids.ProcessID) {
	if u == v {
		return
	}
	ui, vi := g.check(u), g.check(v)
	g.adj[ui].clear(vi)
	g.adj[vi].clear(ui)
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v ids.ProcessID) bool {
	if u == v {
		return false
	}
	ui, vi := g.check(u), g.check(v)
	return g.adj[ui].test(vi)
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u ids.ProcessID) int {
	return g.adj[g.check(u)].onesCount()
}

// Neighbors returns the sorted neighbors of u.
func (g *Graph) Neighbors(u ids.ProcessID) []ids.ProcessID {
	row := g.adj[g.check(u)]
	var out []ids.ProcessID
	for i := row.nextSetBit(0, g.n); i < g.n; i = row.nextSetBit(i+1, g.n) {
		out = append(out, ids.ProcessID(i+1))
	}
	return out
}

// Edges returns all edges sorted by (U, V) with U < V.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for i := 0; i < g.n; i++ {
		row := g.adj[i]
		for j := row.nextSetBit(i+1, g.n); j < g.n; j = row.nextSetBit(j+1, g.n) {
			out = append(out, Edge{U: ids.ProcessID(i + 1), V: ids.ProcessID(j + 1)})
		}
	}
	return out
}

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, row := range g.adj {
		total += row.onesCount()
	}
	return total / 2
}

// Clone returns an independent copy of the graph.
func (g *Graph) Clone() *Graph {
	cp := New(g.n)
	copy(cp.back, g.back)
	return cp
}

// Equal reports whether two graphs have identical node and edge sets.
func (g *Graph) Equal(o *Graph) bool {
	if g.n != o.n {
		return false
	}
	for i := range g.back {
		if g.back[i] != o.back[i] {
			return false
		}
	}
	return true
}

// String renders the graph as its sorted edge list.
func (g *Graph) String() string {
	es := g.Edges()
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return fmt.Sprintf("G(n=%d){%s}", g.n, strings.Join(parts, " "))
}

// IsIndependentSet reports whether no two members of set are adjacent.
func (g *Graph) IsIndependentSet(set []ids.ProcessID) bool {
	scratch := getScratch(g.words)
	defer putScratch(scratch)
	mask := bitset(*scratch)
	for _, p := range set {
		mask.set(g.check(p))
	}
	for _, p := range set {
		if g.adj[g.check(p)].intersects(mask) {
			return false
		}
	}
	return true
}

// IsVertexCover reports whether every edge has at least one endpoint in
// set (the dual view used in Theorem 4 and Lemma 8).
func (g *Graph) IsVertexCover(set []ids.ProcessID) bool {
	scratch := getScratch(g.words)
	defer putScratch(scratch)
	mask := bitset(*scratch)
	for _, p := range set {
		mask.set(g.check(p))
	}
	for i := 0; i < g.n; i++ {
		if mask.test(i) {
			continue
		}
		// Node i is outside the cover: all its edges must be covered
		// by the other endpoint.
		if g.adj[i].anyAndNot(mask) {
			return false
		}
	}
	return true
}

// firstISet runs the lexicographic branch-and-bound for an independent
// set of size q, writing the chosen node indices into chosen (length q)
// and reporting success. Scratch conflict sets are pooled, so the
// search itself performs no allocations.
func (g *Graph) firstISet(q int, chosen []int) bool {
	scratch := getScratch((q + 1) * g.words)
	defer putScratch(scratch)
	buf := *scratch
	depth := 0
	// conflict(d) is the set of nodes excluded at depth d: everything
	// chosen so far plus all its neighbors.
	conflict := func(d int) bitset { return buf[d*g.words : (d+1)*g.words] }
	var walk func(next int) bool
	walk = func(next int) bool {
		if depth == q {
			return true
		}
		c := conflict(depth)
		// Prune: not enough candidates left.
		for v := c.nextClearBit(next, g.n); v <= g.n-(q-depth); v = c.nextClearBit(v+1, g.n) {
			chosen[depth] = v
			nc := conflict(depth + 1)
			nc.copyFrom(c)
			nc.orWith(g.adj[v])
			nc.set(v)
			depth++
			if walk(v + 1) {
				return true
			}
			depth--
		}
		return false
	}
	return walk(0)
}

// FirstIndependentSet returns the lexicographically-first independent
// set of size q (as a sorted member list), or ok=false if none exists.
// This is the deterministic choice rule of Algorithm 1 line 31 that
// makes correct processes converge on the same quorum.
func (g *Graph) FirstIndependentSet(q int) (set []ids.ProcessID, ok bool) {
	if q < 0 || q > g.n {
		return nil, false
	}
	if q == 0 {
		return []ids.ProcessID{}, true
	}
	chosen := make([]int, q)
	if !g.firstISet(q, chosen) {
		return nil, false
	}
	out := make([]ids.ProcessID, q)
	for i, v := range chosen {
		out[i] = ids.ProcessID(v + 1)
	}
	return out, true
}

// HasIndependentSet reports whether an independent set of size q exists
// (Algorithm 1 line 27).
func (g *Graph) HasIndependentSet(q int) bool {
	if q < 0 || q > g.n {
		return false
	}
	if q == 0 {
		return true
	}
	chosen := make([]int, q)
	return g.firstISet(q, chosen)
}

// AllIndependentSets returns every independent set of exactly size q in
// lexicographic order. Exponential; intended for tests and the
// adversary's bookkeeping on small instances.
func (g *Graph) AllIndependentSets(q int) [][]ids.ProcessID {
	var out [][]ids.ProcessID
	if q < 0 || q > g.n {
		return out
	}
	if q == 0 {
		return [][]ids.ProcessID{{}}
	}
	scratch := getScratch((q + 1) * g.words)
	defer putScratch(scratch)
	buf := *scratch
	chosen := make([]int, q)
	depth := 0
	conflict := func(d int) bitset { return buf[d*g.words : (d+1)*g.words] }
	var walk func(next int)
	walk = func(next int) {
		if depth == q {
			set := make([]ids.ProcessID, q)
			for i, v := range chosen {
				set[i] = ids.ProcessID(v + 1)
			}
			out = append(out, set)
			return
		}
		c := conflict(depth)
		for v := c.nextClearBit(next, g.n); v <= g.n-(q-depth); v = c.nextClearBit(v+1, g.n) {
			chosen[depth] = v
			nc := conflict(depth + 1)
			nc.copyFrom(c)
			nc.orWith(g.adj[v])
			nc.set(v)
			depth++
			walk(v + 1)
			depth--
		}
	}
	walk(0)
	return out
}

// FirstWeightedIndependentSet returns the lexicographically-first
// inclusion-minimal independent set whose weights (weights[i] belongs
// to p_{i+1}) sum to at least target, or ok=false if none exists. It
// generalizes FirstIndependentSet to weighted quorum systems: unit
// weights with target q reproduce its answer exactly on graphs that
// admit one.
//
// Minimality is enforced at the leaves: a lexicographic walk can reach
// the target carrying redundant light members (weights {1,5} with
// target 5 reaches 6 via {p1,p2}, but the minimal set is {p2}), so a
// leaf where some chosen member is not load-bearing is rejected and the
// search continues — the minimal set inside it is found on a later
// branch. Zero-weight nodes are never chosen.
func (g *Graph) FirstWeightedIndependentSet(weights []int, target int) (set []ids.ProcessID, ok bool) {
	if len(weights) != g.n {
		panic(fmt.Sprintf("graph: %d weights for n=%d nodes", len(weights), g.n))
	}
	if target <= 0 {
		return []ids.ProcessID{}, true
	}
	// Suffix sums prune branches that cannot reach the target even
	// taking every remaining node.
	suffix := make([]int, g.n+1)
	for i := g.n - 1; i >= 0; i-- {
		w := weights[i]
		if w < 0 {
			w = 0
		}
		suffix[i] = suffix[i+1] + w
	}
	scratch := getScratch((g.n + 1) * g.words)
	defer putScratch(scratch)
	buf := *scratch
	chosen := make([]int, 0, g.n)
	conflict := func(d int) bitset { return buf[d*g.words : (d+1)*g.words] }
	var walk func(next, sum int) bool
	walk = func(next, sum int) bool {
		if sum >= target {
			for _, v := range chosen {
				if sum-weights[v] >= target {
					return false // redundant member: not minimal
				}
			}
			return true
		}
		c := conflict(len(chosen))
		for v := c.nextClearBit(next, g.n); v < g.n; v = c.nextClearBit(v+1, g.n) {
			if weights[v] <= 0 {
				continue
			}
			if sum+suffix[v] < target {
				return false // even taking everything from v on falls short
			}
			nc := conflict(len(chosen) + 1)
			nc.copyFrom(c)
			nc.orWith(g.adj[v])
			nc.set(v)
			chosen = append(chosen, v)
			if walk(v+1, sum+weights[v]) {
				return true
			}
			chosen = chosen[:len(chosen)-1]
		}
		return false
	}
	if !walk(0, 0) {
		return nil, false
	}
	out := make([]ids.ProcessID, len(chosen))
	for i, v := range chosen {
		out[i] = ids.ProcessID(v + 1)
	}
	return out, true
}

// PruneEdges removes every edge {u, v} (u < v) for which keep returns
// false and reports how many edges were removed. It visits each edge
// once and allocates nothing — the suspicion store uses it to advance
// its cached suspect graph to a new epoch in O(edges).
func (g *Graph) PruneEdges(keep func(u, v ids.ProcessID) bool) int {
	removed := 0
	for i := 0; i < g.n; i++ {
		row := g.adj[i]
		for j := row.nextSetBit(i+1, g.n); j < g.n; j = row.nextSetBit(j+1, g.n) {
			if !keep(ids.ProcessID(i+1), ids.ProcessID(j+1)) {
				row.clear(j)
				g.adj[j].clear(i)
				removed++
			}
		}
	}
	return removed
}

// SortEdges orders edges by (U, V) after normalization, the canonical
// deterministic order used when serializing line subgraphs.
func SortEdges(es []Edge) {
	for i := range es {
		es[i] = es[i].Normalize()
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
}
