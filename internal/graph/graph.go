// Package graph implements the suspect-graph machinery of the paper:
// simple undirected graphs over Π, lexicographically-first independent
// sets of a given size (Algorithm 1, §VI-B), vertex-cover duality
// (Theorem 4, Lemma 8), line subgraphs, maximal line subgraphs and
// possible followers (Definitions 1–2, §VIII).
//
// All subset-search subroutines are exact. The independent-set decision
// problem is NP-hard, but as the paper notes ("for small graphs, e.g.
// including only tenth of nodes, it is easy to compute"), exhaustive
// branch-and-bound is entirely adequate for consortium-scale n, and it
// is the only way to guarantee the deterministic lexicographic choice
// the algorithms rely on for agreement.
package graph

import (
	"fmt"
	"sort"
	"strings"

	"quorumselect/internal/ids"
)

// MaxNodes bounds graph sizes; adjacency rows are 64-bit sets.
const MaxNodes = 64

// Edge is an undirected edge between two processes. By convention the
// stored form has U < V; Normalize enforces it.
type Edge struct {
	U, V ids.ProcessID
}

// Normalize returns the edge with endpoints ordered U < V.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// String renders the edge in paper notation, e.g. "(p3,p4)".
func (e Edge) String() string { return fmt.Sprintf("(%s,%s)", e.U, e.V) }

// Graph is a simple undirected graph on the processes {p_1, ..., p_n}.
// The zero value is unusable; construct with New.
type Graph struct {
	n   int
	adj []uint64 // adj[i] is the neighbor bitset of p_{i+1}
}

// New returns an empty graph on n nodes. It panics if n is outside
// (0, MaxNodes]; the paper's systems are consortium-scale.
func New(n int) *Graph {
	if n <= 0 || n > MaxNodes {
		panic(fmt.Sprintf("graph: node count %d outside (0,%d]", n, MaxNodes))
	}
	return &Graph{n: n, adj: make([]uint64, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

func (g *Graph) check(p ids.ProcessID) int {
	if !p.Valid(g.n) {
		panic(fmt.Sprintf("graph: process %s outside Π with n=%d", p, g.n))
	}
	return int(p) - 1
}

// AddEdge inserts the undirected edge {u, v}. Self-loops are ignored
// (a process suspecting itself carries no information for selection).
func (g *Graph) AddEdge(u, v ids.ProcessID) {
	if u == v {
		return
	}
	ui, vi := g.check(u), g.check(v)
	g.adj[ui] |= 1 << uint(vi)
	g.adj[vi] |= 1 << uint(ui)
}

// RemoveEdge deletes the undirected edge {u, v} if present.
func (g *Graph) RemoveEdge(u, v ids.ProcessID) {
	if u == v {
		return
	}
	ui, vi := g.check(u), g.check(v)
	g.adj[ui] &^= 1 << uint(vi)
	g.adj[vi] &^= 1 << uint(ui)
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v ids.ProcessID) bool {
	if u == v {
		return false
	}
	ui, vi := g.check(u), g.check(v)
	return g.adj[ui]&(1<<uint(vi)) != 0
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u ids.ProcessID) int {
	return popcount(g.adj[g.check(u)])
}

// Neighbors returns the sorted neighbors of u.
func (g *Graph) Neighbors(u ids.ProcessID) []ids.ProcessID {
	row := g.adj[g.check(u)]
	var out []ids.ProcessID
	for i := 0; i < g.n; i++ {
		if row&(1<<uint(i)) != 0 {
			out = append(out, ids.ProcessID(i+1))
		}
	}
	return out
}

// Edges returns all edges sorted by (U, V) with U < V.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for i := 0; i < g.n; i++ {
		for j := i + 1; j < g.n; j++ {
			if g.adj[i]&(1<<uint(j)) != 0 {
				out = append(out, Edge{U: ids.ProcessID(i + 1), V: ids.ProcessID(j + 1)})
			}
		}
	}
	return out
}

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, row := range g.adj {
		total += popcount(row)
	}
	return total / 2
}

// Clone returns an independent copy of the graph.
func (g *Graph) Clone() *Graph {
	cp := New(g.n)
	copy(cp.adj, g.adj)
	return cp
}

// Equal reports whether two graphs have identical node and edge sets.
func (g *Graph) Equal(o *Graph) bool {
	if g.n != o.n {
		return false
	}
	for i := range g.adj {
		if g.adj[i] != o.adj[i] {
			return false
		}
	}
	return true
}

// String renders the graph as its sorted edge list.
func (g *Graph) String() string {
	es := g.Edges()
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return fmt.Sprintf("G(n=%d){%s}", g.n, strings.Join(parts, " "))
}

// IsIndependentSet reports whether no two members of set are adjacent.
func (g *Graph) IsIndependentSet(set []ids.ProcessID) bool {
	var mask uint64
	for _, p := range set {
		mask |= 1 << uint(g.check(p))
	}
	for _, p := range set {
		if g.adj[g.check(p)]&mask != 0 {
			return false
		}
	}
	return true
}

// IsVertexCover reports whether every edge has at least one endpoint in
// set (the dual view used in Theorem 4 and Lemma 8).
func (g *Graph) IsVertexCover(set []ids.ProcessID) bool {
	var mask uint64
	for _, p := range set {
		mask |= 1 << uint(g.check(p))
	}
	for i := 0; i < g.n; i++ {
		if mask&(1<<uint(i)) != 0 {
			continue
		}
		// Node i is outside the cover: all its edges must be covered
		// by the other endpoint.
		if g.adj[i]&^mask != 0 {
			return false
		}
	}
	return true
}

// FirstIndependentSet returns the lexicographically-first independent
// set of size q (as a sorted member list), or ok=false if none exists.
// This is the deterministic choice rule of Algorithm 1 line 31 that
// makes correct processes converge on the same quorum.
func (g *Graph) FirstIndependentSet(q int) (set []ids.ProcessID, ok bool) {
	if q < 0 || q > g.n {
		return nil, false
	}
	if q == 0 {
		return []ids.ProcessID{}, true
	}
	chosen := make([]int, 0, q)
	var conflict uint64 // nodes adjacent to a chosen node
	var walk func(next int) bool
	walk = func(next int) bool {
		if len(chosen) == q {
			return true
		}
		// Prune: not enough candidates left.
		for v := next; v <= g.n-(q-len(chosen)); v++ {
			bit := uint64(1) << uint(v)
			if conflict&bit != 0 {
				continue
			}
			savedConflict := conflict
			chosen = append(chosen, v)
			conflict |= g.adj[v] | bit
			if walk(v + 1) {
				return true
			}
			chosen = chosen[:len(chosen)-1]
			conflict = savedConflict
		}
		return false
	}
	if !walk(0) {
		return nil, false
	}
	out := make([]ids.ProcessID, q)
	for i, v := range chosen {
		out[i] = ids.ProcessID(v + 1)
	}
	return out, true
}

// HasIndependentSet reports whether an independent set of size q exists
// (Algorithm 1 line 27).
func (g *Graph) HasIndependentSet(q int) bool {
	_, ok := g.FirstIndependentSet(q)
	return ok
}

// AllIndependentSets returns every independent set of exactly size q in
// lexicographic order. Exponential; intended for tests and the
// adversary's bookkeeping on small instances.
func (g *Graph) AllIndependentSets(q int) [][]ids.ProcessID {
	var out [][]ids.ProcessID
	chosen := make([]int, 0, q)
	var conflict uint64
	var walk func(next int)
	walk = func(next int) {
		if len(chosen) == q {
			set := make([]ids.ProcessID, q)
			for i, v := range chosen {
				set[i] = ids.ProcessID(v + 1)
			}
			out = append(out, set)
			return
		}
		for v := next; v <= g.n-(q-len(chosen)); v++ {
			bit := uint64(1) << uint(v)
			if conflict&bit != 0 {
				continue
			}
			savedConflict := conflict
			chosen = append(chosen, v)
			conflict |= g.adj[v] | bit
			walk(v + 1)
			chosen = chosen[:len(chosen)-1]
			conflict = savedConflict
		}
	}
	if q >= 0 && q <= g.n {
		walk(0)
	}
	return out
}

func popcount(x uint64) int {
	count := 0
	for x != 0 {
		x &= x - 1
		count++
	}
	return count
}

// SortEdges orders edges by (U, V) after normalization, the canonical
// deterministic order used when serializing line subgraphs.
func SortEdges(es []Edge) {
	for i := range es {
		es[i] = es[i].Normalize()
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
}
