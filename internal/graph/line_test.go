package graph

import (
	"errors"
	"math/rand"
	"testing"

	"quorumselect/internal/ids"
)

func TestLineSubgraphInvariants(t *testing.T) {
	l := NewLineSubgraph(5)
	if l.Leader() != 1 {
		t.Errorf("empty line subgraph leader = %v, want p1", l.Leader())
	}
	if err := l.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := l.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if l.Leader() != 4 {
		t.Errorf("leader = %v, want p4", l.Leader())
	}
	// Degree bound: p2 already has degree 2.
	if err := l.AddEdge(2, 4); !errors.Is(err, ErrNotLine) {
		t.Errorf("degree-3 edge accepted: %v", err)
	}
	// Cycle: close the triangle 1-2-3.
	if err := l.AddEdge(1, 3); !errors.Is(err, ErrNotLine) {
		t.Errorf("cycle edge accepted: %v", err)
	}
	// Self-loop.
	if err := l.AddEdge(4, 4); !errors.Is(err, ErrNotLine) {
		t.Errorf("self-loop accepted: %v", err)
	}
	// Out of range.
	if err := l.AddEdge(4, 6); !errors.Is(err, ErrNotLine) {
		t.Errorf("out-of-range edge accepted: %v", err)
	}
	if l.NodeCount() != 3 {
		t.Errorf("NodeCount = %d, want 3", l.NodeCount())
	}
	if !l.ContainsNode(2) || l.ContainsNode(4) {
		t.Error("ContainsNode wrong")
	}
}

func TestLineSubgraphLongerCycle(t *testing.T) {
	l := NewLineSubgraph(6)
	for _, e := range [][2]ids.ProcessID{{1, 2}, {2, 3}, {3, 4}, {4, 5}} {
		if err := l.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AddEdge(5, 1); !errors.Is(err, ErrNotLine) {
		t.Error("5-cycle accepted")
	}
	// Extending the path at its endpoint p5 is legal (degree 1 → 2)...
	if err := l.AddEdge(6, 5); err != nil {
		t.Errorf("path extension rejected: %v", err)
	}
	// ...but now p5 has degree 2 and a further edge must be rejected.
	if err := l.AddEdge(5, 3); !errors.Is(err, ErrNotLine) {
		t.Error("degree-3 on p5 accepted")
	}
}

func TestPossibleFollowers(t *testing.T) {
	// Path p1-p2-p3: p2 is connected to two degree-1 nodes → excluded.
	l := NewLineSubgraph(5)
	for _, e := range [][2]ids.ProcessID{{1, 2}, {2, 3}} {
		if err := l.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	pf := l.PossibleFollowers()
	want := []ids.ProcessID{1, 3, 4, 5}
	if len(pf) != len(want) {
		t.Fatalf("PossibleFollowers = %v, want %v", pf, want)
	}
	for i := range want {
		if pf[i] != want[i] {
			t.Fatalf("PossibleFollowers = %v, want %v", pf, want)
		}
	}
	if l.IsPossibleFollower(2) {
		t.Error("p2 should not be a possible follower")
	}
	if !l.IsPossibleFollower(1) || !l.IsPossibleFollower(4) {
		t.Error("endpoints and isolated nodes are possible followers")
	}

	// Path of length 3 (p1-p2-p3-p4): p2's neighbors are p1 (deg 1) and
	// p3 (deg 2) → only one degree-1 neighbor → p2 is possible.
	l2 := NewLineSubgraph(5)
	for _, e := range [][2]ids.ProcessID{{1, 2}, {2, 3}, {3, 4}} {
		if err := l2.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if !l2.IsPossibleFollower(2) || !l2.IsPossibleFollower(3) {
		t.Error("interior nodes of a P4 are possible followers")
	}
}

func TestSubgraphOf(t *testing.T) {
	g := New(4)
	mustEdges(t, g, [2]int{1, 2}, [2]int{3, 4})
	l, err := LineSubgraphFromEdges(4, []Edge{{U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !l.SubgraphOf(g) {
		t.Error("valid subgraph rejected")
	}
	l2, err := LineSubgraphFromEdges(4, []Edge{{U: 1, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if l2.SubgraphOf(g) {
		t.Error("edge (1,3) not in G but SubgraphOf accepted")
	}
}

func TestLineSubgraphFromEdgesRejectsInvalid(t *testing.T) {
	if _, err := LineSubgraphFromEdges(4, []Edge{{U: 1, V: 2}, {U: 2, V: 3}, {U: 1, V: 3}}); err == nil {
		t.Error("triangle accepted as line subgraph")
	}
	if _, err := LineSubgraphFromEdges(4, []Edge{{U: 1, V: 2}, {U: 1, V: 3}, {U: 1, V: 4}}); err == nil {
		t.Error("star accepted as line subgraph")
	}
}

// bruteMaxLeader enumerates all subsets of g's edges (feasible for
// small graphs) and returns the maximum designated leader over all
// valid line subgraphs.
func bruteMaxLeader(g *Graph) ids.ProcessID {
	edges := g.Edges()
	best := ids.ProcessID(1) // empty subgraph designates p1
	for mask := 0; mask < 1<<len(edges); mask++ {
		l := NewLineSubgraph(g.N())
		valid := true
		for i, e := range edges {
			if mask&(1<<i) == 0 {
				continue
			}
			if err := l.AddEdge(e.U, e.V); err != nil {
				valid = false
				break
			}
		}
		if !valid {
			continue
		}
		leader := l.Leader()
		if leader == ids.None {
			continue // no node of degree 0: designates no leader
		}
		if leader > best {
			best = leader
		}
	}
	return best
}

func TestMaximalLineSubgraphMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(6) // 3..8
		g := randomGraph(rng, n, rng.Intn(12))
		l := MaximalLineSubgraph(g)
		if !l.SubgraphOf(g) {
			t.Fatalf("%s: maximal line subgraph %s not a subgraph", g, l)
		}
		got := l.Leader()
		if got == ids.None {
			t.Fatalf("%s: maximal line subgraph designates no leader", g)
		}
		if want := bruteMaxLeader(g); got != want {
			t.Fatalf("%s: leader = %v, brute force = %v (L=%s)", g, got, want, l)
		}
	}
}

func TestMaximalLineSubgraphEmptyGraph(t *testing.T) {
	g := New(5)
	l := MaximalLineSubgraph(g)
	if l.Leader() != 1 {
		t.Errorf("empty graph leader = %v, want p1", l.Leader())
	}
	if len(l.Edges()) != 0 {
		t.Error("empty graph produced edges")
	}
}

// TestExampleOne mirrors the paper's Example 1: a 7-node graph whose
// maximal line subgraph makes p2 not a possible follower, and where a
// new edge (p2,p5) does not change the maximal line subgraph.
func TestExampleOne(t *testing.T) {
	g := New(7)
	mustEdges(t, g, [2]int{1, 2}, [2]int{2, 3})
	l := MaximalLineSubgraph(g)
	if l.Leader() != 4 {
		t.Fatalf("leader = %v, want p4", l.Leader())
	}
	if l.IsPossibleFollower(2) {
		t.Error("p2 should not be a possible follower")
	}
	g2 := g.Clone()
	g2.AddEdge(2, 5)
	l2 := MaximalLineSubgraph(g2)
	if l2.Leader() != l.Leader() {
		t.Errorf("adding (p2,p5) changed the leader: %v -> %v", l.Leader(), l2.Leader())
	}
	es1, es2 := l.Edges(), l2.Edges()
	if len(es1) != len(es2) {
		t.Fatalf("adding (p2,p5) changed the maximal line subgraph: %v -> %v", es1, es2)
	}
	for i := range es1 {
		if es1[i] != es2[i] {
			t.Fatalf("adding (p2,p5) changed the maximal line subgraph: %v -> %v", es1, es2)
		}
	}
}

// TestExampleTwo mirrors the paper's Example 2: adding an edge (p3,p5)
// changes the leader and the maximal line subgraph. Note that adding
// edges can only increase the maximal leader (the monotonicity that
// Lemma 5 builds on).
func TestExampleTwo(t *testing.T) {
	g := New(7)
	mustEdges(t, g, [2]int{1, 2}, [2]int{4, 5})
	before := MaximalLineSubgraph(g)
	// {1,2} can be covered by (1,2); p3 has no edge, so the leader is p3.
	if before.Leader() != 3 {
		t.Fatalf("leader before = %v, want p3", before.Leader())
	}
	g.AddEdge(3, 5)
	after := MaximalLineSubgraph(g)
	// Now {1,...,5} is coverable: (1,2) plus the path 3-5-4 (p5 takes
	// degree 2). p6 is isolated, so the leader jumps to p6.
	if after.Leader() != 6 {
		t.Errorf("leader after = %v, want p6", after.Leader())
	}
	if want := bruteMaxLeader(g); after.Leader() != want {
		t.Errorf("leader after = %v, brute force = %v", after.Leader(), want)
	}
	if after.Leader() <= before.Leader() {
		t.Error("adding (p3,p5) should increase the leader")
	}
}

// TestLeaderMonotoneUnderEdgeAddition checks the monotonicity Lemma 5
// relies on: adding suspicion edges never decreases the maximal leader.
func TestLeaderMonotoneUnderEdgeAddition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(5)
		g := New(n)
		prev := MaximalLineSubgraph(g).Leader()
		for step := 0; step < 8; step++ {
			g.AddEdge(ids.ProcessID(rng.Intn(n)+1), ids.ProcessID(rng.Intn(n)+1))
			cur := MaximalLineSubgraph(g).Leader()
			if cur < prev {
				t.Fatalf("leader decreased %v -> %v on %s", prev, cur, g)
			}
			prev = cur
		}
	}
}

// TestLemma8 verifies Lemma 8 on exhaustive small instances: if G
// contains a line subgraph containing 3f nodes then G has at most one
// independent set of size q (containing leader and possible followers),
// and a line subgraph with 3f+1 nodes forbids any independent set of
// size q. Here n = 3f+1 and q = n − f.
func TestLemma8(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 400; trial++ {
		f := 1 + rng.Intn(2) // f ∈ {1,2} → n ∈ {4,7}
		n := 3*f + 1
		q := n - f
		g := randomGraph(rng, n, rng.Intn(3*f+2))
		l := MaximalLineSubgraph(g)
		switch {
		case l.NodeCount() >= 3*f+1:
			if g.HasIndependentSet(q) {
				t.Fatalf("f=%d %s: line subgraph with %d nodes but IS of size %d exists (L=%s)",
					f, g, l.NodeCount(), q, l)
			}
		case l.NodeCount() == 3*f:
			sets := g.AllIndependentSets(q)
			if len(sets) > 1 {
				t.Fatalf("f=%d %s: line subgraph with 3f nodes but %d independent sets (L=%s)",
					f, g, len(sets), l)
			}
			if len(sets) == 1 {
				set := ids.FromSlice(sets[0])
				if !set.Contains(l.Leader()) {
					t.Fatalf("f=%d %s: unique IS %v missing leader %v", f, g, sets[0], l.Leader())
				}
				for _, p := range sets[0] {
					if p != l.Leader() && !l.IsPossibleFollower(p) {
						t.Fatalf("f=%d %s: IS member %v not a possible follower of %s", f, g, p, l)
					}
				}
			}
		}
	}
}

func TestLineSubgraphClone(t *testing.T) {
	l := NewLineSubgraph(5)
	if err := l.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	c := l.Clone()
	if err := c.AddEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	if l.ContainsNode(3) {
		t.Error("clone mutation leaked into original")
	}
	if l.Leader() != 3 {
		t.Errorf("original leader = %v, want p3", l.Leader())
	}
	if c.Leader() != 5 {
		t.Errorf("clone leader = %v, want p5", c.Leader())
	}
}

func TestLeaderNoneWhenAllCovered(t *testing.T) {
	l := NewLineSubgraph(4)
	for _, e := range [][2]ids.ProcessID{{1, 2}, {3, 4}} {
		if err := l.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Leader(); got != ids.None {
		t.Errorf("fully covered subgraph leader = %v, want None", got)
	}
}

// bruteIsPossibleFollower re-implements Definition 2 from scratch: a
// node is a possible follower unless it is connected (in L) to two
// nodes of degree 1.
func bruteIsPossibleFollower(l *LineSubgraph, p ids.ProcessID) bool {
	degOneNeighbors := 0
	for _, e := range l.Edges() {
		var other ids.ProcessID
		switch p {
		case e.U:
			other = e.V
		case e.V:
			other = e.U
		default:
			continue
		}
		if l.Degree(other) == 1 {
			degOneNeighbors++
		}
	}
	return degOneNeighbors < 2
}

func TestPossibleFollowersMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(8)
		l := NewLineSubgraph(n)
		for i := 0; i < 2*n; i++ {
			u := ids.ProcessID(rng.Intn(n) + 1)
			v := ids.ProcessID(rng.Intn(n) + 1)
			if u != v {
				_ = l.AddEdge(u, v) // rejections are fine
			}
		}
		got := ids.FromSlice(l.PossibleFollowers())
		for i := 1; i <= n; i++ {
			p := ids.ProcessID(i)
			want := bruteIsPossibleFollower(l, p)
			if got.Contains(p) != want {
				t.Fatalf("%s: PossibleFollowers disagrees with Definition 2 for %s (want %v)", l, p, want)
			}
			if l.IsPossibleFollower(p) != want {
				t.Fatalf("%s: IsPossibleFollower disagrees with Definition 2 for %s", l, p)
			}
		}
	}
}

func TestMaximalLineSubgraphDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(6)
		g := randomGraph(rng, n, rng.Intn(2*n))
		a := MaximalLineSubgraph(g)
		b := MaximalLineSubgraph(g.Clone())
		ea, eb := a.Edges(), b.Edges()
		if len(ea) != len(eb) {
			t.Fatalf("nondeterministic maximal line subgraph on %s", g)
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("nondeterministic maximal line subgraph on %s", g)
			}
		}
	}
}
