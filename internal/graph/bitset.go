package graph

import (
	"math/bits"
	"sync"
)

// bitset is a little-endian multi-word bit vector: bit i lives in word
// i/64 at position i%64. All kernels assume operands of equal length;
// they are the inner loops of every graph algorithm in this package and
// must stay branch-light and allocation-free.
type bitset []uint64

// wordsFor returns the number of 64-bit words needed for n bits.
func wordsFor(n int) int { return (n + 63) >> 6 }

func (b bitset) test(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

func (b bitset) set(i int) { b[i>>6] |= 1 << uint(i&63) }

func (b bitset) clear(i int) { b[i>>6] &^= 1 << uint(i&63) }

// zero clears every bit.
func (b bitset) zero() {
	for i := range b {
		b[i] = 0
	}
}

// copyFrom overwrites b with o.
func (b bitset) copyFrom(o bitset) { copy(b, o) }

// orWith sets b |= o.
func (b bitset) orWith(o bitset) {
	for i, w := range o {
		b[i] |= w
	}
}

// andWith sets b &= o.
func (b bitset) andWith(o bitset) {
	for i, w := range o {
		b[i] &= w
	}
}

// andNotWith sets b &^= o.
func (b bitset) andNotWith(o bitset) {
	for i, w := range o {
		b[i] &^= w
	}
}

// intersects reports whether b & o has any bit set.
func (b bitset) intersects(o bitset) bool {
	for i, w := range o {
		if b[i]&w != 0 {
			return true
		}
	}
	return false
}

// anyAndNot reports whether b &^ o has any bit set.
func (b bitset) anyAndNot(o bitset) bool {
	for i, w := range o {
		if b[i]&^w != 0 {
			return true
		}
	}
	return false
}

// onesCount returns the number of set bits.
func (b bitset) onesCount() int {
	total := 0
	for _, w := range b {
		total += bits.OnesCount64(w)
	}
	return total
}

// equal reports whether b and o hold identical bits.
func (b bitset) equal(o bitset) bool {
	for i, w := range o {
		if b[i] != w {
			return false
		}
	}
	return true
}

// nextSetBit returns the index of the first set bit ≥ from, or n if
// none exists below n.
func (b bitset) nextSetBit(from, n int) int {
	if from >= n {
		return n
	}
	w := from >> 6
	word := b[w] >> uint(from&63)
	if word != 0 {
		i := from + bits.TrailingZeros64(word)
		if i < n {
			return i
		}
		return n
	}
	for w++; w < len(b); w++ {
		if b[w] != 0 {
			i := w<<6 + bits.TrailingZeros64(b[w])
			if i < n {
				return i
			}
			return n
		}
	}
	return n
}

// nextClearBit returns the index of the first clear bit ≥ from, or n if
// none exists below n.
func (b bitset) nextClearBit(from, n int) int {
	if from >= n {
		return n
	}
	w := from >> 6
	word := ^b[w] >> uint(from&63)
	if word != 0 {
		i := from + bits.TrailingZeros64(word)
		if i < n {
			return i
		}
		return n
	}
	for w++; w < len(b); w++ {
		if ^b[w] != 0 {
			i := w<<6 + bits.TrailingZeros64(^b[w])
			if i < n {
				return i
			}
			return n
		}
	}
	return n
}

// scratchPool recycles the word buffers the subset searches use for
// their per-depth conflict sets, keeping the exhaustive inner loops
// allocation-free across calls.
var scratchPool = sync.Pool{
	New: func() any {
		s := make([]uint64, 0, 256)
		return &s
	},
}

// getScratch returns a zeroed word buffer of at least size words.
func getScratch(size int) *[]uint64 {
	p := scratchPool.Get().(*[]uint64)
	if cap(*p) < size {
		*p = make([]uint64, size)
	}
	*p = (*p)[:size]
	for i := range *p {
		(*p)[i] = 0
	}
	return p
}

func putScratch(p *[]uint64) { scratchPool.Put(p) }
