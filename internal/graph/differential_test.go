package graph

// Differential tests: the multi-word bitset Graph must be bit-for-bit
// semantically identical to the pre-PR-2 single-uint64 implementation
// on every instance the old representation could express (n ≤ 64). The
// reference below is a faithful copy of that implementation.

import (
	"reflect"
	"testing"

	"quorumselect/internal/ids"
)

// refGraph is the old single-word adjacency representation.
type refGraph struct {
	n   int
	adj []uint64
}

func newRef(n int) *refGraph {
	if n <= 0 || n > 64 {
		panic("refGraph: n outside (0,64]")
	}
	return &refGraph{n: n, adj: make([]uint64, n)}
}

func (g *refGraph) addEdge(u, v ids.ProcessID) {
	if u == v {
		return
	}
	ui, vi := int(u)-1, int(v)-1
	g.adj[ui] |= 1 << uint(vi)
	g.adj[vi] |= 1 << uint(ui)
}

func (g *refGraph) neighbors(u ids.ProcessID) []ids.ProcessID {
	row := g.adj[int(u)-1]
	var out []ids.ProcessID
	for i := 0; i < g.n; i++ {
		if row&(1<<uint(i)) != 0 {
			out = append(out, ids.ProcessID(i+1))
		}
	}
	return out
}

func (g *refGraph) isIndependentSet(set []ids.ProcessID) bool {
	var mask uint64
	for _, p := range set {
		mask |= 1 << uint(int(p)-1)
	}
	for _, p := range set {
		if g.adj[int(p)-1]&mask != 0 {
			return false
		}
	}
	return true
}

func (g *refGraph) isVertexCover(set []ids.ProcessID) bool {
	var mask uint64
	for _, p := range set {
		mask |= 1 << uint(int(p)-1)
	}
	for i := 0; i < g.n; i++ {
		if mask&(1<<uint(i)) != 0 {
			continue
		}
		if g.adj[i]&^mask != 0 {
			return false
		}
	}
	return true
}

func (g *refGraph) firstIndependentSet(q int) ([]ids.ProcessID, bool) {
	if q < 0 || q > g.n {
		return nil, false
	}
	if q == 0 {
		return []ids.ProcessID{}, true
	}
	chosen := make([]int, 0, q)
	var conflict uint64
	var walk func(next int) bool
	walk = func(next int) bool {
		if len(chosen) == q {
			return true
		}
		for v := next; v <= g.n-(q-len(chosen)); v++ {
			bit := uint64(1) << uint(v)
			if conflict&bit != 0 {
				continue
			}
			savedConflict := conflict
			chosen = append(chosen, v)
			conflict |= g.adj[v] | bit
			if walk(v + 1) {
				return true
			}
			chosen = chosen[:len(chosen)-1]
			conflict = savedConflict
		}
		return false
	}
	if !walk(0) {
		return nil, false
	}
	out := make([]ids.ProcessID, q)
	for i, v := range chosen {
		out[i] = ids.ProcessID(v + 1)
	}
	return out, true
}

func (g *refGraph) allIndependentSets(q int) [][]ids.ProcessID {
	var out [][]ids.ProcessID
	chosen := make([]int, 0, q)
	var conflict uint64
	var walk func(next int)
	walk = func(next int) {
		if len(chosen) == q {
			set := make([]ids.ProcessID, q)
			for i, v := range chosen {
				set[i] = ids.ProcessID(v + 1)
			}
			out = append(out, set)
			return
		}
		for v := next; v <= g.n-(q-len(chosen)); v++ {
			bit := uint64(1) << uint(v)
			if conflict&bit != 0 {
				continue
			}
			savedConflict := conflict
			chosen = append(chosen, v)
			conflict |= g.adj[v] | bit
			walk(v + 1)
			chosen = chosen[:len(chosen)-1]
			conflict = savedConflict
		}
	}
	if q >= 0 && q <= g.n {
		walk(0)
	}
	return out
}

// refMaximalLineSubgraph is the old MaximalLineSubgraph driven by the
// reference adjacency (the search itself is representation-agnostic and
// reuses LineSubgraph).
func refMaximalLineSubgraph(g *refGraph) *LineSubgraph {
	for m := g.n; m >= 2; m-- {
		if l, ok := refCoverLinearForest(g, m); ok {
			return l
		}
	}
	return NewLineSubgraph(g.n)
}

func refCoverLinearForest(g *refGraph, m int) (*LineSubgraph, bool) {
	l := NewLineSubgraph(g.n)
	var walk func() bool
	walk = func() bool {
		u := 0
		for u = 1; u < m; u++ {
			if l.deg[u-1] == 0 {
				break
			}
		}
		if u == m {
			return true
		}
		up := ids.ProcessID(u)
		for _, v := range g.neighbors(up) {
			if int(v) == m {
				continue
			}
			if l.deg[int(v)-1] >= 2 {
				continue
			}
			if err := l.AddEdge(up, v); err != nil {
				continue
			}
			if walk() {
				return true
			}
			l.removeLastEdge()
		}
		return false
	}
	if walk() {
		return l, true
	}
	return nil, false
}

// diffRng is the xorshift generator the benchmarks use; deterministic
// across runs.
type diffRng uint64

func (r *diffRng) next(mod int) int {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = diffRng(x)
	return int(x % uint64(mod))
}

// buildPair constructs the same random graph in both representations.
func buildPair(r *diffRng, n, edges int) (*Graph, *refGraph) {
	g, ref := New(n), newRef(n)
	for i := 0; i < edges; i++ {
		u := ids.ProcessID(r.next(n) + 1)
		v := ids.ProcessID(r.next(n) + 1)
		g.AddEdge(u, v)
		ref.addEdge(u, v)
	}
	return g, ref
}

func TestDifferentialFirstIndependentSet(t *testing.T) {
	// Exhaustive q-sweep on small instances, where even infeasibility
	// proofs are cheap: every n ≤ 16, arbitrary density, all q.
	r := diffRng(0x9e3779b97f4a7c15)
	for trial := 0; trial < 300; trial++ {
		n := r.next(16) + 1
		edges := r.next(3*n + 1)
		g, ref := buildPair(&r, n, edges)
		for q := -1; q <= n+1; q++ {
			got, gotOK := g.FirstIndependentSet(q)
			want, wantOK := ref.firstIndependentSet(q)
			if gotOK != wantOK || !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d n=%d e=%d q=%d: bitset (%v,%v) != ref (%v,%v)\n%s",
					trial, n, edges, q, got, gotOK, want, wantOK, g)
			}
			if gotOK != g.HasIndependentSet(q) {
				t.Fatalf("trial %d: HasIndependentSet(%d) disagrees with FirstIndependentSet", trial, q)
			}
		}
	}
	// Sparse regime on the full n ≤ 64 range — the paper's workload
	// (few suspicions relative to n), where the exact search is fast.
	// Dense near-infeasible q on large n is exponential for the exact
	// algorithm in BOTH implementations, so it is not exercised here.
	for trial := 0; trial < 300; trial++ {
		n := r.next(64) + 1
		edges := r.next(n/2 + 1)
		g, ref := buildPair(&r, n, edges)
		// q ≤ n-edges is always feasible (drop one endpoint per edge),
		// so the lex-first search stays cheap; q ∈ {n, n+1} is cheap too
		// (immediate conflict / out of range).
		for _, q := range []int{0, 1, n / 4, (n - edges) / 2, n - edges, n, n + 1} {
			got, gotOK := g.FirstIndependentSet(q)
			want, wantOK := ref.firstIndependentSet(q)
			if gotOK != wantOK || !reflect.DeepEqual(got, want) {
				t.Fatalf("sparse trial %d n=%d e=%d q=%d: bitset (%v,%v) != ref (%v,%v)\n%s",
					trial, n, edges, q, got, gotOK, want, wantOK, g)
			}
		}
	}
}

func TestDifferentialVertexCoverAndIndependence(t *testing.T) {
	r := diffRng(0x2545f4914f6cdd1d)
	for trial := 0; trial < 400; trial++ {
		n := r.next(64) + 1
		g, ref := buildPair(&r, n, r.next(3*n+1))
		// Random candidate subsets.
		for k := 0; k < 8; k++ {
			var set []ids.ProcessID
			for p := 1; p <= n; p++ {
				if r.next(2) == 0 {
					set = append(set, ids.ProcessID(p))
				}
			}
			if got, want := g.IsVertexCover(set), ref.isVertexCover(set); got != want {
				t.Fatalf("trial %d n=%d set=%v: IsVertexCover bitset %v != ref %v\n%s",
					trial, n, set, got, want, g)
			}
			if got, want := g.IsIndependentSet(set), ref.isIndependentSet(set); got != want {
				t.Fatalf("trial %d n=%d set=%v: IsIndependentSet bitset %v != ref %v\n%s",
					trial, n, set, got, want, g)
			}
		}
	}
}

func TestDifferentialMaximalLineSubgraph(t *testing.T) {
	r := diffRng(0xda942042e4dd58b5)
	for trial := 0; trial < 150; trial++ {
		n := r.next(24) + 1 // exponential search; keep instances small
		g, ref := buildPair(&r, n, r.next(2*n+1))
		got := MaximalLineSubgraph(g)
		want := refMaximalLineSubgraph(ref)
		if got.Leader() != want.Leader() {
			t.Fatalf("trial %d n=%d: leader bitset %s != ref %s\n%s",
				trial, n, got.Leader(), want.Leader(), g)
		}
		if !reflect.DeepEqual(got.Edges(), want.Edges()) {
			t.Fatalf("trial %d n=%d: witness bitset %v != ref %v (same neighbor order ⇒ identical witness)",
				trial, n, got.Edges(), want.Edges())
		}
	}
}

func TestDifferentialAllIndependentSets(t *testing.T) {
	r := diffRng(0x853c49e6748fea9b)
	for trial := 0; trial < 200; trial++ {
		n := r.next(12) + 1 // exponential enumeration; small instances
		g, ref := buildPair(&r, n, r.next(2*n+1))
		for q := 0; q <= n; q++ {
			got := g.AllIndependentSets(q)
			want := ref.allIndependentSets(q)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d n=%d q=%d: bitset %v != ref %v\n%s", trial, n, q, got, want, g)
			}
		}
	}
}

func TestDifferentialStructure(t *testing.T) {
	r := diffRng(0xc0ffee1234567891)
	for trial := 0; trial < 200; trial++ {
		n := r.next(64) + 1
		g, ref := buildPair(&r, n, r.next(3*n+1))
		for p := 1; p <= n; p++ {
			pid := ids.ProcessID(p)
			if !reflect.DeepEqual(g.Neighbors(pid), ref.neighbors(pid)) {
				t.Fatalf("trial %d n=%d: Neighbors(%s) differ", trial, n, pid)
			}
			if g.Degree(pid) != len(ref.neighbors(pid)) {
				t.Fatalf("trial %d n=%d: Degree(%s) differs", trial, n, pid)
			}
		}
		for u := 1; u <= n; u++ {
			for v := 1; v <= n; v++ {
				want := u != v && ref.adj[u-1]&(1<<uint(v-1)) != 0
				if g.HasEdge(ids.ProcessID(u), ids.ProcessID(v)) != want {
					t.Fatalf("trial %d: HasEdge(%d,%d) != ref", trial, u, v)
				}
			}
		}
	}
}

// TestLargeGraphBeyond64 locks in the new headroom: graphs beyond the
// old single-word ceiling must work end to end.
func TestLargeGraphBeyond64(t *testing.T) {
	if MaxNodes < 1024 {
		t.Fatalf("MaxNodes = %d, want ≥ 1024", MaxNodes)
	}
	for _, n := range []int{65, 128, 256, 1024} {
		g := New(n)
		// Ring graph: independence number is n/2.
		for i := 1; i <= n; i++ {
			j := i%n + 1
			g.AddEdge(ids.ProcessID(i), ids.ProcessID(j))
		}
		if g.EdgeCount() != n {
			t.Fatalf("n=%d: ring edge count %d", n, g.EdgeCount())
		}
		set, ok := g.FirstIndependentSet(n / 2)
		if !ok {
			t.Fatalf("n=%d: ring must admit an independent set of size %d", n, n/2)
		}
		if !g.IsIndependentSet(set) {
			t.Fatalf("n=%d: returned set is not independent", n)
		}
		// Lexicographically-first on an even ring is the odd nodes.
		if set[0] != 1 || set[1] != 3 {
			t.Fatalf("n=%d: set not lexicographically first: %v", n, set[:2])
		}
		// Negative case on an instance where infeasibility is cheap to
		// prove (a clique admits no independent pair).
		k := New(n)
		for u := 1; u <= n; u++ {
			for v := u + 1; v <= n; v++ {
				k.AddEdge(ids.ProcessID(u), ids.ProcessID(v))
			}
		}
		if k.HasIndependentSet(2) {
			t.Fatalf("n=%d: clique admitted an independent pair", n)
		}
	}
}
