package sim

import (
	"fmt"
	"testing"
	"time"

	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/wire"
)

// echoNode records received heartbeats and can send on demand.
type echoNode struct {
	env      runtime.Env
	received []string
}

func (e *echoNode) Init(env runtime.Env) { e.env = env }

func (e *echoNode) Receive(from ids.ProcessID, m wire.Message) {
	hb, ok := m.(*wire.Heartbeat)
	if !ok {
		return
	}
	e.received = append(e.received, fmt.Sprintf("%s/%d@%v", from, hb.Seq, e.env.Now()))
}

func newEchoNet(t *testing.T, n, f int, opts Options) (*Network, map[ids.ProcessID]*echoNode) {
	t.Helper()
	cfg := ids.MustConfig(n, f)
	nodes := make(map[ids.ProcessID]runtime.Node, n)
	echoes := make(map[ids.ProcessID]*echoNode, n)
	for _, p := range cfg.All() {
		e := &echoNode{}
		echoes[p] = e
		nodes[p] = e
	}
	return NewNetwork(cfg, nodes, opts), echoes
}

func TestDeliveryAndLatency(t *testing.T) {
	net, echoes := newEchoNet(t, 4, 1, Options{Latency: ConstantLatency(5 * time.Millisecond)})
	net.Env(1).Send(2, &wire.Heartbeat{From: 1, Seq: 1})
	net.Run(time.Second)
	got := echoes[2].received
	if len(got) != 1 {
		t.Fatalf("p2 received %v, want one heartbeat", got)
	}
	if got[0] != "p1/1@5ms" {
		t.Errorf("delivery = %q, want p1/1@5ms", got[0])
	}
}

func TestSelfSendDelivers(t *testing.T) {
	net, echoes := newEchoNet(t, 4, 1, Options{})
	net.Env(3).Send(3, &wire.Heartbeat{From: 3, Seq: 9})
	net.Run(time.Second)
	if len(echoes[3].received) != 1 {
		t.Fatal("self-send not delivered")
	}
}

func TestBroadcastIncludeSelf(t *testing.T) {
	net, echoes := newEchoNet(t, 4, 1, Options{})
	runtime.Broadcast(net.Env(1), &wire.Heartbeat{From: 1, Seq: 1}, true)
	net.Run(time.Second)
	for p, e := range echoes {
		if len(e.received) != 1 {
			t.Errorf("%s received %d messages, want 1", p, len(e.received))
		}
	}
}

func TestFIFOPerLink(t *testing.T) {
	// With random latencies, FIFO must still hold per link.
	net, echoes := newEchoNet(t, 4, 1, Options{
		Seed:    3,
		Latency: UniformLatency(1*time.Millisecond, 50*time.Millisecond),
	})
	for i := 1; i <= 20; i++ {
		net.Env(1).Send(2, &wire.Heartbeat{From: 1, Seq: uint64(i)})
	}
	net.Run(time.Second)
	got := echoes[2].received
	if len(got) != 20 {
		t.Fatalf("received %d, want 20", len(got))
	}
	for i, s := range got {
		var wantPrefix = fmt.Sprintf("p1/%d@", i+1)
		if len(s) < len(wantPrefix) || s[:len(wantPrefix)] != wantPrefix {
			t.Fatalf("FIFO violated at %d: %v", i, got)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		net, echoes := newEchoNet(t, 5, 2, Options{
			Seed:    42,
			Latency: UniformLatency(time.Millisecond, 30*time.Millisecond),
		})
		for i := 1; i <= 10; i++ {
			for _, p := range net.Config().All() {
				net.Env(p).Send(ids.ProcessID(i%5+1), &wire.Heartbeat{From: p, Seq: uint64(i)})
			}
		}
		net.Run(time.Second)
		var all []string
		for _, p := range net.Config().All() {
			all = append(all, echoes[p].received...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestAdversaryDrop(t *testing.T) {
	drop := FilterFunc(func(from, to ids.ProcessID, m wire.Message, _ time.Duration) Verdict {
		return Verdict{Drop: from == 1 && to == 2}
	})
	net, echoes := newEchoNet(t, 4, 1, Options{Filter: drop})
	net.Env(1).Send(2, &wire.Heartbeat{From: 1, Seq: 1})
	net.Env(1).Send(3, &wire.Heartbeat{From: 1, Seq: 1})
	net.Run(time.Second)
	if len(echoes[2].received) != 0 {
		t.Error("dropped message delivered")
	}
	if len(echoes[3].received) != 1 {
		t.Error("unrelated link affected by drop")
	}
	if net.Metrics().Counter("msg.dropped.total") != 1 {
		t.Error("drop not accounted")
	}
}

func TestAdversaryDelay(t *testing.T) {
	delay := FilterFunc(func(from, to ids.ProcessID, m wire.Message, _ time.Duration) Verdict {
		if from == 1 {
			return Verdict{Delay: 100 * time.Millisecond}
		}
		return Verdict{}
	})
	net, echoes := newEchoNet(t, 4, 1, Options{
		Latency: ConstantLatency(time.Millisecond),
		Filter:  delay,
	})
	net.Env(1).Send(2, &wire.Heartbeat{From: 1, Seq: 1})
	net.Env(3).Send(2, &wire.Heartbeat{From: 3, Seq: 1})
	net.Run(time.Second)
	got := echoes[2].received
	if len(got) != 2 {
		t.Fatalf("received %v", got)
	}
	// p3's message (1ms) must arrive before p1's delayed one (101ms).
	if got[0] != "p3/1@1ms" || got[1] != "p1/1@101ms" {
		t.Errorf("deliveries = %v", got)
	}
}

func TestTimers(t *testing.T) {
	net, _ := newEchoNet(t, 4, 1, Options{})
	var fired []time.Duration
	env := net.Env(1)
	env.After(30*time.Millisecond, func() { fired = append(fired, env.Now()) })
	env.After(10*time.Millisecond, func() { fired = append(fired, env.Now()) })
	stopped := env.After(20*time.Millisecond, func() { t.Error("stopped timer fired") })
	if !stopped.Stop() {
		t.Error("Stop returned false for pending timer")
	}
	if stopped.Stop() {
		t.Error("second Stop returned true")
	}
	net.Run(time.Second)
	if len(fired) != 2 || fired[0] != 10*time.Millisecond || fired[1] != 30*time.Millisecond {
		t.Errorf("fired = %v", fired)
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	net, _ := newEchoNet(t, 4, 1, Options{})
	timer := net.Env(1).After(time.Millisecond, func() {})
	net.Run(time.Second)
	if timer.Stop() {
		t.Error("Stop after firing returned true")
	}
}

func TestRunUntil(t *testing.T) {
	net, echoes := newEchoNet(t, 4, 1, Options{Latency: ConstantLatency(time.Millisecond)})
	for i := 1; i <= 5; i++ {
		net.Env(1).Send(2, &wire.Heartbeat{From: 1, Seq: uint64(i)})
	}
	ok := net.RunUntil(func() bool { return len(echoes[2].received) >= 3 }, time.Second)
	if !ok {
		t.Fatal("RunUntil did not reach predicate")
	}
	if len(echoes[2].received) != 3 {
		t.Errorf("RunUntil overran: %d deliveries", len(echoes[2].received))
	}
	// Predicate that can never hold: must stop at maxTime.
	if net.RunUntil(func() bool { return false }, 2*time.Second) {
		t.Error("impossible predicate reported true")
	}
}

func TestClockAdvancesOnEmptyRun(t *testing.T) {
	net, _ := newEchoNet(t, 4, 1, Options{})
	net.Run(500 * time.Millisecond)
	if net.Now() != 500*time.Millisecond {
		t.Errorf("Now = %v, want 500ms", net.Now())
	}
}

func TestMessageAccounting(t *testing.T) {
	net, _ := newEchoNet(t, 4, 1, Options{})
	runtime.Broadcast(net.Env(1), &wire.Heartbeat{From: 1, Seq: 1}, false)
	net.Run(time.Second)
	m := net.Metrics()
	if got := m.Counter("msg.sent.HEARTBEAT"); got != 3 {
		t.Errorf("sent.HEARTBEAT = %d, want 3", got)
	}
	if got := m.Counter("msg.sent.remote"); got != 3 {
		t.Errorf("sent.remote = %d, want 3", got)
	}
	if got := m.Counter("msg.delivered.total"); got != 3 {
		t.Errorf("delivered = %d, want 3", got)
	}
}

func TestSetFilterMidRun(t *testing.T) {
	net, echoes := newEchoNet(t, 4, 1, Options{Latency: ConstantLatency(time.Millisecond)})
	net.Env(1).Send(2, &wire.Heartbeat{From: 1, Seq: 1})
	net.Run(10 * time.Millisecond)
	// Install a drop filter mid-run.
	net.SetFilter(FilterFunc(func(from, to ids.ProcessID, _ wire.Message, _ time.Duration) Verdict {
		return Verdict{Drop: from == 1 && to == 2}
	}))
	net.Env(1).Send(2, &wire.Heartbeat{From: 1, Seq: 2})
	net.Run(net.Now() + 10*time.Millisecond)
	// Remove it again.
	net.SetFilter(nil)
	net.Env(1).Send(2, &wire.Heartbeat{From: 1, Seq: 3})
	net.Run(net.Now() + 10*time.Millisecond)

	got := echoes[2].received
	if len(got) != 2 {
		t.Fatalf("received %v, want seq 1 and 3 only", got)
	}
	if got[0][:5] != "p1/1@" || got[1][:5] != "p1/3@" {
		t.Errorf("received %v", got)
	}
}

func TestCodecInFlight(t *testing.T) {
	// Messages must round-trip through the codec: mutations after Send
	// must not be visible to the receiver.
	net, echoes := newEchoNet(t, 4, 1, Options{})
	hb := &wire.Heartbeat{From: 1, Seq: 1}
	net.Env(1).Send(2, hb)
	hb.Seq = 999
	net.Run(time.Second)
	if got := echoes[2].received[0]; got != "p1/1@10ms" {
		t.Errorf("mutation after send leaked: %v", got)
	}
}
