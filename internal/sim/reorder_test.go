package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"quorumselect/internal/ids"
	"quorumselect/internal/wire"
)

// burst sends seqs 1..count from p1 to p2 and returns p2's delivery log.
func burst(t *testing.T, opts Options, count int) []string {
	t.Helper()
	net, echoes := newEchoNet(t, 4, 1, opts)
	for i := 1; i <= count; i++ {
		net.Env(1).Send(2, &wire.Heartbeat{From: 1, Seq: uint64(i)})
	}
	net.Run(time.Second)
	return echoes[2].received
}

// jitter is wide enough that send order and latency order disagree for
// a same-instant burst unless the FIFO clamp intervenes.
func jitter() LatencyModel {
	return UniformLatency(1*time.Millisecond, 50*time.Millisecond)
}

func inOrder(log []string) bool {
	for i, s := range log {
		if !strings.HasPrefix(s, fmt.Sprintf("p1/%d@", i+1)) {
			return false
		}
	}
	return true
}

// TestReorderDefaultUnchanged pins the default channel model: without
// the opt-in flag, per-link FIFO holds under jittery latency, and the
// delivery trace is byte-identical to the same run with an explicit
// AllowReorder: false — the flag's zero value changes nothing.
func TestReorderDefaultUnchanged(t *testing.T) {
	const count = 30
	def := burst(t, Options{Seed: 7, Latency: jitter()}, count)
	explicit := burst(t, Options{Seed: 7, Latency: jitter(), AllowReorder: false}, count)
	if len(def) != count {
		t.Fatalf("received %d, want %d", len(def), count)
	}
	if !inOrder(def) {
		t.Fatalf("default mode violated per-link FIFO: %v", def)
	}
	for i := range def {
		if def[i] != explicit[i] {
			t.Fatalf("explicit AllowReorder:false diverged at %d: %q vs %q", i, def[i], explicit[i])
		}
	}
}

// TestReorderOptIn proves the flag actually opens the reordering space:
// the same seeded workload that is in-order by clamping arrives
// latency-ordered, with at least one inversion.
func TestReorderOptIn(t *testing.T) {
	got := burst(t, Options{Seed: 7, Latency: jitter(), AllowReorder: true}, 30)
	if len(got) != 30 {
		t.Fatalf("received %d, want 30", len(got))
	}
	if inOrder(got) {
		t.Fatalf("AllowReorder run stayed in send order; flag is not reaching the clamp: %v", got)
	}
}

// TestReorderDeterministic: reordering mode is still fully seeded.
func TestReorderDeterministic(t *testing.T) {
	a := burst(t, Options{Seed: 11, Latency: jitter(), AllowReorder: true}, 25)
	b := burst(t, Options{Seed: 11, Latency: jitter(), AllowReorder: true}, 25)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reorder runs diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestDuplicateVerdict: a Duplicate verdict delivers exactly two copies,
// each with its own latency draw.
func TestDuplicateVerdict(t *testing.T) {
	opts := Options{
		Seed:    3,
		Latency: jitter(),
		Filter: FilterFunc(func(from, to ids.ProcessID, m wire.Message, now time.Duration) Verdict {
			return Verdict{Duplicate: true}
		}),
	}
	net, echoes := newEchoNet(t, 4, 1, opts)
	net.Env(1).Send(2, &wire.Heartbeat{From: 1, Seq: 5})
	net.Run(time.Second)
	got := echoes[2].received
	if len(got) != 2 {
		t.Fatalf("received %v, want two copies", got)
	}
	for _, s := range got {
		if !strings.HasPrefix(s, "p1/5@") {
			t.Fatalf("unexpected delivery %q", s)
		}
	}
	if net.Metrics().Counter("msg.duplicated.total") != 1 {
		t.Errorf("msg.duplicated.total = %d, want 1", net.Metrics().Counter("msg.duplicated.total"))
	}
}

// TestMutateVerdict covers both mutation outcomes: a frame rewritten to
// a different valid message is delivered as that message, and a frame
// corrupted beyond decoding is dropped (counted, not panicking).
func TestMutateVerdict(t *testing.T) {
	corrupt := false
	opts := Options{
		Seed: 3,
		Filter: FilterFunc(func(from, to ids.ProcessID, m wire.Message, now time.Duration) Verdict {
			if corrupt {
				return Verdict{Mutate: func(frame []byte) []byte {
					return frame[:1] // truncated: undecodable
				}}
			}
			return Verdict{Mutate: func(frame []byte) []byte {
				hb := m.(*wire.Heartbeat)
				return wire.AppendEncode(frame[:0], &wire.Heartbeat{From: hb.From, Seq: hb.Seq + 100})
			}}
		}),
	}
	net, echoes := newEchoNet(t, 4, 1, opts)
	net.Env(1).Send(2, &wire.Heartbeat{From: 1, Seq: 1})
	net.Run(time.Second)
	if got := echoes[2].received; len(got) != 1 || !strings.HasPrefix(got[0], "p1/101@") {
		t.Fatalf("mutated delivery = %v, want one p1/101 heartbeat", got)
	}

	corrupt = true
	net.Env(1).Send(2, &wire.Heartbeat{From: 1, Seq: 2})
	net.Run(2 * time.Second)
	if got := echoes[2].received; len(got) != 1 {
		t.Fatalf("undecodable mutant was delivered: %v", got)
	}
	if net.Metrics().Counter("msg.mutated.undecodable") != 1 {
		t.Errorf("msg.mutated.undecodable = %d, want 1", net.Metrics().Counter("msg.mutated.undecodable"))
	}
	if net.Metrics().Counter("msg.mutated.total") != 2 {
		t.Errorf("msg.mutated.total = %d, want 2", net.Metrics().Counter("msg.mutated.total"))
	}
}
