package sim

import (
	"bytes"
	"testing"
	"time"

	"quorumselect/internal/core"
	"quorumselect/internal/fd"
	"quorumselect/internal/host"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/storage"
	"quorumselect/internal/wire"
	"quorumselect/internal/xpaxos"
)

// durApp is a minimal host.DurableApp recording what the kernel hands
// it at recovery.
type durApp struct {
	wal       host.AppLog
	recovered [][]byte
}

func (a *durApp) Attach(runtime.Env, *fd.Detector)    {}
func (a *durApp) Deliver(ids.ProcessID, wire.Message) {}

func (a *durApp) Recover(log host.AppLog, _ []byte, records [][]byte) error {
	a.wal = log
	a.recovered = records
	return nil
}

// newDurableFDCluster builds n FD-only hosts, each with its own
// in-memory backend and recording app.
func newDurableFDCluster(t *testing.T, n int) (*Network, []*durApp, []*storage.MemBackend) {
	t.Helper()
	cfg := ids.MustConfig(n, 1)
	apps := make([]*durApp, n+1)
	backends := make([]*storage.MemBackend, n+1)
	nodes := make(map[ids.ProcessID]runtime.Node, n)
	for _, p := range cfg.All() {
		apps[p] = &durApp{}
		backends[p] = storage.NewMemBackend()
		nodes[p] = host.New(host.Options{
			Mode:            host.ModeFDOnly,
			HeartbeatPeriod: 25 * time.Millisecond,
			App:             apps[p],
			Storage:         backends[p],
		})
	}
	return NewNetwork(cfg, nodes, Options{Seed: 7}), apps, backends
}

// TestRestartProcessRecoversDurableState: RestartProcess re-Inits a
// durable node, and the kernel replays the WAL records the application
// persisted before the stop.
func TestRestartProcessRecoversDurableState(t *testing.T) {
	net, apps, _ := newDurableFDCluster(t, 4)
	defer net.Close()

	if apps[1].wal == nil {
		t.Fatal("DurableApp was not handed its log at Init")
	}
	if len(apps[1].recovered) != 0 {
		t.Fatalf("fresh node recovered %d records, want 0", len(apps[1].recovered))
	}
	if err := apps[1].wal.Append([]byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := apps[1].wal.Append([]byte("beta")); err != nil {
		t.Fatal(err)
	}
	if err := apps[1].wal.Sync(); err != nil {
		t.Fatal(err)
	}

	net.StopProcess(1)
	net.RestartProcess(1)
	got := apps[1].recovered
	if len(got) != 2 || !bytes.Equal(got[0], []byte("alpha")) || !bytes.Equal(got[1], []byte("beta")) {
		t.Fatalf("recovered %q, want [alpha beta]", got)
	}
}

// TestRestartProcessFreshWipesDurableState: the explicit amnesia
// restart wipes the backend before Init, so nothing is recovered — the
// pre-durability restart semantics, kept as a regression guarantee.
func TestRestartProcessFreshWipesDurableState(t *testing.T) {
	net, apps, backends := newDurableFDCluster(t, 4)
	defer net.Close()

	if err := apps[2].wal.Append([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := apps[2].wal.Sync(); err != nil {
		t.Fatal(err)
	}
	net.StopProcess(2)
	net.RestartProcessFresh(2)
	if len(apps[2].recovered) != 0 {
		t.Fatalf("fresh restart recovered %q, want nothing", apps[2].recovered)
	}
	// The backend holds only the new incarnation's segment — nothing
	// the next recovery could resurrect the record from.
	net.StopProcess(2)
	net.RestartProcess(2)
	if len(apps[2].recovered) != 0 {
		t.Fatalf("wipe left %q behind", apps[2].recovered)
	}
	_ = backends
}

// TestRestartProcessFreshMemoryNode: a node without durable state (no
// FreshStarter or no storage) falls back to a plain re-Init.
func TestRestartProcessFreshMemoryNode(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	echoes := make(map[ids.ProcessID]*echoNode, cfg.N)
	for _, p := range cfg.All() {
		e := &echoNode{}
		echoes[p] = e
		nodes[p] = e
	}
	net := NewNetwork(cfg, nodes, Options{Seed: 1})
	net.RestartProcessFresh(3) // must not panic, just re-Init
	if echoes[3].env == nil {
		t.Fatal("fresh restart did not re-Init the memory node")
	}
}

// TestReplaceProcessRecoversXPaxos is the end-to-end recovery story on
// the simulator: an XPaxos replica commits traffic, is stopped, and a
// brand-new node constructed over the same backend — the only surviving
// state — comes back with the identical execution history, a usable
// suspicion matrix, and keeps executing new traffic.
func TestReplaceProcessRecoversXPaxos(t *testing.T) {
	cfg := ids.MustConfig(4, 1)
	backends := make(map[ids.ProcessID]*storage.MemBackend, cfg.N)
	replicas := make(map[ids.ProcessID]*xpaxos.Replica, cfg.N)
	nodes := make(map[ids.ProcessID]runtime.Node, cfg.N)
	newNode := func(p ids.ProcessID) (runtime.Node, *xpaxos.Replica) {
		opts := core.DefaultNodeOptions()
		opts.Storage = backends[p]
		return xpaxos.NewQSNode(xpaxos.Options{CheckpointInterval: 8}, opts)
	}
	for _, p := range cfg.All() {
		backends[p] = storage.NewMemBackend()
		nodes[p], replicas[p] = newNode(p)
	}
	net := NewNetwork(cfg, nodes, Options{Seed: 11})
	defer net.Close()

	const rounds = 10
	for i := 1; i <= rounds; i++ {
		seq := uint64(i)
		net.At(time.Duration(i)*40*time.Millisecond, func() {
			replicas[1].Submit(&wire.Request{Client: 1, Seq: seq, Op: []byte("set k v")})
		})
	}
	if !net.RunUntil(func() bool { return replicas[2].LastExecuted() >= rounds }, 10*time.Second) {
		t.Fatalf("p2 executed %d of %d before timeout", replicas[2].LastExecuted(), rounds)
	}
	before := replicas[2].Executions()
	view := replicas[2].View()

	// Power-loss crash: drop unsynced writes, stop, and resurrect a
	// brand-new process whose only inheritance is the backend.
	backends[2].Crash()
	net.StopProcess(2)
	node2, rep2 := newNode(2)
	replicas[2] = rep2
	net.ReplaceProcess(2, node2)

	after := rep2.Executions()
	if len(after) < len(before) {
		t.Fatalf("recovered %d executions, want at least %d", len(after), len(before))
	}
	for i := range before {
		if before[i].Slot != after[i].Slot || !bytes.Equal(before[i].Result, after[i].Result) {
			t.Fatalf("execution %d diverged after recovery: %+v vs %+v", i, before[i], after[i])
		}
	}
	if rep2.View() < view {
		t.Fatalf("recovered view %d, had acknowledged view %d", rep2.View(), view)
	}

	// The resurrected replica must keep up with new traffic.
	for i := 1; i <= rounds; i++ {
		seq := uint64(i)
		net.At(net.Now()+time.Duration(i)*40*time.Millisecond, func() {
			replicas[1].Submit(&wire.Request{Client: 2, Seq: seq, Op: []byte("set k2 v2")})
		})
	}
	if !net.RunUntil(func() bool { return rep2.LastExecuted() >= 2*rounds }, net.Now()+15*time.Second) {
		t.Fatalf("recovered replica stalled at %d of %d", rep2.LastExecuted(), 2*rounds)
	}
}
