package sim

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"quorumselect/internal/ids"
	"quorumselect/internal/wire"
)

// Topology models a geo-distributed deployment for the simulator:
// named regions, an asymmetric per-region-pair one-way latency matrix
// with bounded jitter, and optional partial partitions (region pairs
// whose links go dark for a window). It compiles into the simulator's
// two existing seams — a LatencyModel for link delays and a Filter for
// link failures — so protocols, chaos schedules and the load generator
// all run under it unchanged.
//
// A topology is written in a small line-oriented spec (one directive
// per line, '#' comments):
//
//	# three regions, four processes
//	region us-east 1 2        # explicit members
//	region eu-west 3
//	region ap-south           # members omitted: round-robin the rest
//	local 500us jitter 100us  # intra-region one-way latency
//	link us-east eu-west 40ms 42ms jitter 2ms   # a→b, b→a, ± jitter
//	link us-east ap-south 90ms jitter 5ms       # symmetric when b→a omitted
//	link eu-west ap-south 70ms
//	partition us-east ap-south 10s 15s          # links dark in [10s,15s)
//
// Every region pair must have a link line (there is no default WAN
// latency — forgetting a pair is a spec bug, not a 0-RTT link).
// Latencies are one-way; RTT between two processes is the sum of the
// two directed latencies. Jitter is uniform in [0, j], drawn from the
// simulator's seeded rng, so runs stay deterministic per seed.
type Topology struct {
	// Name is the topology's identifier (from a "name" directive or
	// the file base name); purely informational.
	Name string
	// Regions in declaration order.
	Regions []string
	// Local is the intra-region link (defaults to 500µs, no jitter).
	Local Link
	// Members maps explicitly placed processes to their region.
	Members map[ids.ProcessID]string
	// Links holds the directed inter-region latency matrix.
	Links map[[2]string]Link
	// Partitions lists the partial partitions.
	Partitions []RegionPartition
}

// Link is one directed region-pair latency: base one-way delay plus
// uniform jitter in [0, Jitter].
type Link struct {
	Base   time.Duration
	Jitter time.Duration
}

// delay draws one link traversal.
func (l Link) delay(rng *rand.Rand) time.Duration {
	if l.Jitter <= 0 {
		return l.Base
	}
	return l.Base + time.Duration(rng.Int63n(int64(l.Jitter)+1))
}

// RegionPartition severs every link between two regions (both
// directions) while [From, Until) is open — a partial partition: the
// rest of the graph stays connected.
type RegionPartition struct {
	A, B        string
	From, Until time.Duration
}

// ParseTopology parses the spec grammar above.
func ParseTopology(src string) (*Topology, error) {
	t := &Topology{
		Local:   Link{Base: 500 * time.Microsecond},
		Members: make(map[ids.ProcessID]string),
		Links:   make(map[[2]string]Link),
	}
	seen := make(map[string]bool)
	for lineno, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("topology line %d: %s", lineno+1, fmt.Sprintf(format, args...))
		}
		switch f[0] {
		case "name":
			if len(f) != 2 {
				return nil, fail("want 'name <id>'")
			}
			t.Name = f[1]
		case "region":
			if len(f) < 2 {
				return nil, fail("want 'region <name> [procs...]'")
			}
			name := f[1]
			if seen[name] {
				return nil, fail("duplicate region %q", name)
			}
			seen[name] = true
			t.Regions = append(t.Regions, name)
			for _, ps := range f[2:] {
				var p int
				if _, err := fmt.Sscanf(ps, "%d", &p); err != nil || p < 1 {
					return nil, fail("bad process id %q", ps)
				}
				pid := ids.ProcessID(p)
				if prev, ok := t.Members[pid]; ok {
					return nil, fail("process %s in both %q and %q", pid, prev, name)
				}
				t.Members[pid] = name
			}
		case "local":
			link, err := parseLink(f[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			t.Local = link
		case "link":
			if len(f) < 4 {
				return nil, fail("want 'link <a> <b> <a→b> [<b→a>] [jitter <j>]'")
			}
			a, b := f[1], f[2]
			if !seen[a] || !seen[b] {
				return nil, fail("link names unknown region (%q, %q); declare regions first", a, b)
			}
			if a == b {
				return nil, fail("intra-region latency is the 'local' directive, not a self-link")
			}
			fwd, back, err := parseLinkPair(f[3:])
			if err != nil {
				return nil, fail("%v", err)
			}
			if _, dup := t.Links[[2]string{a, b}]; dup {
				return nil, fail("duplicate link %s %s", a, b)
			}
			t.Links[[2]string{a, b}] = fwd
			t.Links[[2]string{b, a}] = back
		case "partition":
			if len(f) != 5 {
				return nil, fail("want 'partition <a> <b> <from> <until>'")
			}
			a, b := f[1], f[2]
			if !seen[a] || !seen[b] {
				return nil, fail("partition names unknown region (%q, %q)", a, b)
			}
			from, err1 := time.ParseDuration(f[3])
			until, err2 := time.ParseDuration(f[4])
			if err1 != nil || err2 != nil || until <= from || from < 0 {
				return nil, fail("bad partition window [%s,%s)", f[3], f[4])
			}
			t.Partitions = append(t.Partitions, RegionPartition{A: a, B: b, From: from, Until: until})
		default:
			return nil, fail("unknown directive %q", f[0])
		}
	}
	if len(t.Regions) == 0 {
		return nil, fmt.Errorf("topology: no regions declared")
	}
	// Every cross-region pair needs a latency: no silent 0-RTT links.
	for i, a := range t.Regions {
		for _, b := range t.Regions[i+1:] {
			if _, ok := t.Links[[2]string{a, b}]; !ok {
				return nil, fmt.Errorf("topology: no link between regions %q and %q", a, b)
			}
		}
	}
	return t, nil
}

// parseLink parses "<base> [jitter <j>]".
func parseLink(f []string) (Link, error) {
	if len(f) == 0 {
		return Link{}, fmt.Errorf("missing latency")
	}
	base, err := time.ParseDuration(f[0])
	if err != nil || base < 0 {
		return Link{}, fmt.Errorf("bad latency %q", f[0])
	}
	l := Link{Base: base}
	rest := f[1:]
	if len(rest) == 0 {
		return l, nil
	}
	if len(rest) != 2 || rest[0] != "jitter" {
		return Link{}, fmt.Errorf("trailing %q (want 'jitter <dur>')", strings.Join(rest, " "))
	}
	j, err := time.ParseDuration(rest[1])
	if err != nil || j < 0 {
		return Link{}, fmt.Errorf("bad jitter %q", rest[1])
	}
	l.Jitter = j
	return l, nil
}

// parseLinkPair parses "<a→b> [<b→a>] [jitter <j>]"; a single latency
// is symmetric and jitter applies to both directions.
func parseLinkPair(f []string) (fwd, back Link, err error) {
	if len(f) == 0 {
		return Link{}, Link{}, fmt.Errorf("missing latency")
	}
	fb, err := time.ParseDuration(f[0])
	if err != nil || fb < 0 {
		return Link{}, Link{}, fmt.Errorf("bad latency %q", f[0])
	}
	bb := fb
	rest := f[1:]
	if len(rest) > 0 && rest[0] != "jitter" {
		bb, err = time.ParseDuration(rest[0])
		if err != nil || bb < 0 {
			return Link{}, Link{}, fmt.Errorf("bad reverse latency %q", rest[0])
		}
		rest = rest[1:]
	}
	var jitter time.Duration
	if len(rest) > 0 {
		if len(rest) != 2 || rest[0] != "jitter" {
			return Link{}, Link{}, fmt.Errorf("trailing %q (want 'jitter <dur>')", strings.Join(rest, " "))
		}
		jitter, err = time.ParseDuration(rest[1])
		if err != nil || jitter < 0 {
			return Link{}, Link{}, fmt.Errorf("bad jitter %q", rest[1])
		}
	}
	return Link{Base: fb, Jitter: jitter}, Link{Base: bb, Jitter: jitter}, nil
}

// LoadTopology reads and parses a topology spec file; an unnamed spec
// takes the file's base name (minus extension) as its name.
func LoadTopology(path string) (*Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := ParseTopology(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if t.Name == "" {
		base := path
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		t.Name = strings.TrimSuffix(base, ".topo")
	}
	return t, nil
}

// Bind resolves the topology against a cluster of n processes:
// explicitly placed members keep their region, every other process
// goes to the currently least-populated region (declaration order
// breaking ties), so the fill balances around whatever the spec
// pinned. It fails if a spec pins a process outside 1..n.
func (t *Topology) Bind(n int) (*BoundTopology, error) {
	b := &BoundTopology{topo: t, region: make(map[ids.ProcessID]string, n)}
	pop := make(map[string]int, len(t.Regions))
	for p, r := range t.Members {
		if !p.Valid(n) {
			return nil, fmt.Errorf("topology %s: process %s pinned to region %q, cluster has n=%d", t.Name, p, r, n)
		}
		b.region[p] = r
		pop[r]++
	}
	for i := 1; i <= n; i++ {
		p := ids.ProcessID(i)
		if _, ok := b.region[p]; ok {
			continue
		}
		best := t.Regions[0]
		for _, r := range t.Regions[1:] {
			if pop[r] < pop[best] {
				best = r
			}
		}
		b.region[p] = best
		pop[best]++
	}
	return b, nil
}

// BoundTopology is a Topology resolved for a concrete cluster size:
// every process has a region, so link latencies and partitions are
// answerable per process pair.
type BoundTopology struct {
	topo   *Topology
	region map[ids.ProcessID]string
}

// Name returns the topology's name.
func (b *BoundTopology) Name() string { return b.topo.Name }

// RegionOf returns the region of process p ("" if p is unknown, which
// means the bind n was smaller than the caller's cluster).
func (b *BoundTopology) RegionOf(p ids.ProcessID) string { return b.region[p] }

// link returns the directed link spec for one process pair.
func (b *BoundTopology) link(from, to ids.ProcessID) Link {
	ra, rb := b.region[from], b.region[to]
	if ra == rb {
		return b.topo.Local
	}
	return b.topo.Links[[2]string{ra, rb}]
}

// LatencyModel compiles the bound topology into the simulator's
// latency seam: intra-region sends take the local link, cross-region
// sends the directed region-pair link, each plus seeded uniform jitter.
func (b *BoundTopology) LatencyModel() LatencyModel {
	return func(from, to ids.ProcessID, rng *rand.Rand) time.Duration {
		return b.link(from, to).delay(rng)
	}
}

// LinkFilter compiles the topology's partial partitions into the
// simulator's adversary seam, dropping every message between a
// partitioned region pair while its window is open. It returns nil
// when the topology declares no partitions, so callers can chain it
// only when needed.
func (b *BoundTopology) LinkFilter() Filter {
	if len(b.topo.Partitions) == 0 {
		return nil
	}
	parts := b.topo.Partitions
	return FilterFunc(func(from, to ids.ProcessID, _ wire.Message, now time.Duration) Verdict {
		ra, rb := b.region[from], b.region[to]
		if ra == rb {
			return Verdict{}
		}
		for _, pt := range parts {
			if now < pt.From || now >= pt.Until {
				continue
			}
			if (ra == pt.A && rb == pt.B) || (ra == pt.B && rb == pt.A) {
				return Verdict{Drop: true}
			}
		}
		return Verdict{}
	})
}

// MaxOneWay returns the largest base one-way latency plus jitter in
// the topology — what failure-detector timeouts must be sized against.
func (b *BoundTopology) MaxOneWay() time.Duration {
	max := b.topo.Local.Base + b.topo.Local.Jitter
	for _, l := range b.topo.Links {
		if d := l.Base + l.Jitter; d > max {
			max = d
		}
	}
	return max
}

// String renders the binding: regions with their members and the
// latency matrix, deterministically ordered.
func (b *BoundTopology) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "topology %s:", b.topo.Name)
	for _, r := range b.topo.Regions {
		var members []int
		for p, reg := range b.region {
			if reg == r {
				members = append(members, int(p))
			}
		}
		sort.Ints(members)
		fmt.Fprintf(&sb, " %s=%v", r, members)
	}
	return sb.String()
}
