package sim

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"quorumselect/internal/ids"
	"quorumselect/internal/wire"
)

const geoSpec = `
name test3
region us-east 1 2
region eu-west 3
region ap-south
local 500us jitter 100us
link us-east eu-west 40ms 42ms jitter 2ms
link us-east ap-south 90ms jitter 5ms
link eu-west ap-south 70ms
partition us-east ap-south 10s 15s
`

func mustTopo(t *testing.T, spec string, n int) *BoundTopology {
	t.Helper()
	topo, err := ParseTopology(spec)
	if err != nil {
		t.Fatalf("ParseTopology: %v", err)
	}
	b, err := topo.Bind(n)
	if err != nil {
		t.Fatalf("Bind(%d): %v", n, err)
	}
	return b
}

func TestTopologyParseAndBind(t *testing.T) {
	b := mustTopo(t, geoSpec, 4)
	want := map[ids.ProcessID]string{1: "us-east", 2: "us-east", 3: "eu-west", 4: "ap-south"}
	for p, r := range want {
		if got := b.RegionOf(p); got != r {
			t.Errorf("RegionOf(%s) = %q, want %q", p, got, r)
		}
	}
	if b.Name() != "test3" {
		t.Errorf("Name = %q", b.Name())
	}
	if got := b.MaxOneWay(); got != 95*time.Millisecond {
		t.Errorf("MaxOneWay = %s, want 95ms", got)
	}
}

// TestTopologyRoundRobinBind: processes not pinned by the spec spread
// round-robin across the regions in declaration order.
func TestTopologyRoundRobinBind(t *testing.T) {
	spec := `
region a
region b
local 1ms
link a b 10ms
`
	b := mustTopo(t, spec, 5)
	counts := map[string]int{}
	for i := 1; i <= 5; i++ {
		counts[b.RegionOf(ids.ProcessID(i))]++
	}
	if counts["a"] != 3 || counts["b"] != 2 {
		t.Errorf("round-robin split = %v, want a:3 b:2", counts)
	}
}

// TestTopologyLatencyModel pins the directed matrix: intra-region
// sends take the local link, cross-region sends the (asymmetric)
// region-pair link, and jitter stays within its declared bound.
func TestTopologyLatencyModel(t *testing.T) {
	b := mustTopo(t, geoSpec, 4)
	model := b.LatencyModel()
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		from, to ids.ProcessID
		min, max time.Duration
	}{
		{1, 2, 500 * time.Microsecond, 600 * time.Microsecond}, // local + jitter
		{1, 3, 40 * time.Millisecond, 42 * time.Millisecond},   // us-east → eu-west
		{3, 1, 42 * time.Millisecond, 44 * time.Millisecond},   // asymmetric reverse
		{1, 4, 90 * time.Millisecond, 95 * time.Millisecond},
		{3, 4, 70 * time.Millisecond, 70 * time.Millisecond}, // no jitter declared
	}
	for _, c := range cases {
		for i := 0; i < 200; i++ {
			d := model(c.from, c.to, rng)
			if d < c.min || d > c.max {
				t.Fatalf("latency %s→%s = %s outside [%s,%s]", c.from, c.to, d, c.min, c.max)
			}
		}
	}
}

// TestTopologyLatencyDeterministic: the model is a pure function of
// the rng stream, so two seeded draws agree draw for draw.
func TestTopologyLatencyDeterministic(t *testing.T) {
	b := mustTopo(t, geoSpec, 4)
	m1, m2 := b.LatencyModel(), b.LatencyModel()
	r1, r2 := rand.New(rand.NewSource(42)), rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		if d1, d2 := m1(1, 4, r1), m2(1, 4, r2); d1 != d2 {
			t.Fatalf("draw %d: %s vs %s", i, d1, d2)
		}
	}
}

// TestTopologyLinkFilter: a partial partition drops cross-pair
// messages only inside its window, never intra-region or third-party
// traffic.
func TestTopologyLinkFilter(t *testing.T) {
	b := mustTopo(t, geoSpec, 4)
	f := b.LinkFilter()
	if f == nil {
		t.Fatal("LinkFilter = nil with a declared partition")
	}
	msg := &wire.Heartbeat{From: 1}
	during, before := 12*time.Second, 9*time.Second
	if !f.Filter(1, 4, msg, during).Drop {
		t.Error("us-east→ap-south not dropped during partition")
	}
	if !f.Filter(4, 1, msg, during).Drop {
		t.Error("partition is bidirectional; reverse not dropped")
	}
	if f.Filter(1, 4, msg, before).Drop {
		t.Error("dropped before window opened")
	}
	if f.Filter(1, 4, msg, 15*time.Second).Drop {
		t.Error("window is half-open; dropped at close instant")
	}
	if f.Filter(1, 3, msg, during).Drop || f.Filter(1, 2, msg, during).Drop {
		t.Error("third-party or intra-region traffic dropped")
	}

	noParts := mustTopo(t, strings.Replace(geoSpec, "partition us-east ap-south 10s 15s", "", 1), 4)
	if noParts.LinkFilter() != nil {
		t.Error("LinkFilter != nil without partitions")
	}
}

func TestTopologyParseErrors(t *testing.T) {
	bad := []string{
		"",                                     // no regions
		"region a\nregion b\nlocal 1ms",        // missing a↔b link
		"region a\nregion a\nlink a a 1ms",     // duplicate region
		"region a 1\nregion b 1\nlink a b 1ms", // process in two regions
		"region a\nregion b\nlink a b 1ms\nlink a b 2ms",        // duplicate link
		"region a\nregion b\nlink a c 1ms",                      // unknown region
		"region a\nregion b\nlink a b -1ms",                     // negative latency
		"region a\nregion b\nlink a b 1ms\npartition a b 5s 2s", // inverted window
		"garbage directive",
	}
	for _, spec := range bad {
		if _, err := ParseTopology(spec); err == nil {
			t.Errorf("ParseTopology accepted bad spec %q", spec)
		}
	}
	// Pinning a process outside 1..n fails at bind, not parse.
	topo, err := ParseTopology("region a 9\nregion b\nlink a b 1ms")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := topo.Bind(4); err == nil {
		t.Error("Bind accepted process 9 in an n=4 cluster")
	}
}
