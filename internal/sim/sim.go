// Package sim is a deterministic discrete-event simulator for the
// protocols in this repository. It models the paper's system: processes
// connected by reliable, asynchronous, per-link-FIFO channels, with an
// adversary hook controlling drops and delays on links from faulty
// processes.
//
// Determinism: all randomness flows from one seed; events at equal
// virtual times fire in scheduling order. Two runs with the same seed
// and the same node implementations produce identical traces.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"quorumselect/internal/crypto"
	"quorumselect/internal/ids"
	"quorumselect/internal/logging"
	"quorumselect/internal/metrics"
	"quorumselect/internal/obs"
	"quorumselect/internal/obs/tracer"
	"quorumselect/internal/runtime"
	"quorumselect/internal/wire"
)

// DefaultLatency is the base one-way link latency when no latency model
// is configured.
const DefaultLatency = 10 * time.Millisecond

// LatencyModel computes the one-way latency for a message on a link.
// It must be deterministic given the rng state.
type LatencyModel func(from, to ids.ProcessID, rng *rand.Rand) time.Duration

// ConstantLatency returns a model with a fixed latency on all links.
func ConstantLatency(d time.Duration) LatencyModel {
	return func(ids.ProcessID, ids.ProcessID, *rand.Rand) time.Duration { return d }
}

// UniformLatency returns a model drawing latencies uniformly from
// [min, max] on every link.
func UniformLatency(min, max time.Duration) LatencyModel {
	if max < min {
		min, max = max, min
	}
	return func(_, _ ids.ProcessID, rng *rand.Rand) time.Duration {
		if max == min {
			return min
		}
		return min + time.Duration(rng.Int63n(int64(max-min)+1))
	}
}

// Verdict is the adversary's decision about one message on one link.
type Verdict struct {
	// Drop suppresses delivery entirely (an omission on this link).
	Drop bool
	// Delay adds to the link latency (a timing failure on this link).
	Delay time.Duration
	// Duplicate delivers a second, independently delayed copy of the
	// message — a faulty link replaying a frame.
	Duplicate bool
	// Mutate, when non-nil, transforms the encoded frame before
	// delivery — a Byzantine sender (or corrupting link) emitting
	// garbage instead of the protocol message. A mutated frame that no
	// longer decodes is discarded like any other line garbage and
	// counted in msg.mutated.undecodable; a frame that decodes but
	// fails signature verification is dropped by the receiving failure
	// detector. The function must be deterministic for reproducible
	// runs and must not retain the slice it is given.
	Mutate func(frame []byte) []byte
}

// Filter is the adversary's network hook, consulted for every message.
// The zero Verdict means normal delivery.
type Filter interface {
	Filter(from, to ids.ProcessID, m wire.Message, now time.Duration) Verdict
}

// FilterFunc adapts a function to the Filter interface.
type FilterFunc func(from, to ids.ProcessID, m wire.Message, now time.Duration) Verdict

// Filter implements Filter.
func (f FilterFunc) Filter(from, to ids.ProcessID, m wire.Message, now time.Duration) Verdict {
	return f(from, to, m, now)
}

// ChainFilters composes two filters; either may be nil. A drop from
// the first short-circuits; otherwise delays add, duplication unions,
// and the first non-nil mutation wins. Harnesses use it to stack a
// topology's partition windows in front of a generated fault schedule.
func ChainFilters(a, b Filter) Filter {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return FilterFunc(func(from, to ids.ProcessID, m wire.Message, at time.Duration) Verdict {
		v := a.Filter(from, to, m, at)
		if v.Drop {
			return v
		}
		w := b.Filter(from, to, m, at)
		w.Delay += v.Delay
		w.Duplicate = w.Duplicate || v.Duplicate
		if w.Mutate == nil {
			w.Mutate = v.Mutate
		}
		return w
	})
}

// Options configures a Network.
type Options struct {
	// Seed drives all randomness in the run. The zero seed is valid
	// and distinct from seed 1.
	Seed int64
	// Latency is the link latency model; nil means DefaultLatency.
	Latency LatencyModel
	// Filter is the adversary hook; nil means no interference.
	Filter Filter
	// Auth is the authenticator handed to every process; nil means
	// crypto.NopRing (protocol-level adversary modeling).
	Auth crypto.Authenticator
	// Logger receives all process logs; nil means logging.Nop.
	Logger logging.Logger
	// Metrics receives message accounting; nil allocates a fresh
	// registry.
	Metrics *metrics.Registry
	// Events receives typed protocol events from every simulated
	// process (the Event.Node field distinguishes them); nil allocates
	// a fresh bus with obs.DefaultCapacity.
	Events *obs.Bus
	// Tracer receives causal spans from every simulated process,
	// stamped with the shared virtual clock (the Span.Node field
	// distinguishes them); nil disables tracing.
	Tracer *tracer.Tracer
	// AllowReorder disables the per-link FIFO clamp: messages on one
	// link arrive in latency order rather than send order. The default
	// (false) preserves the paper's reliable-FIFO channel model; chaos
	// scenarios opt in to explore schedules the model excludes.
	AllowReorder bool
	// AsyncVerify models off-loop signature verification in virtual
	// time: every runtime.VerifyAsync completion is delivered as its
	// own zero-delay event instead of running inline, exercising the
	// same completion-reordering machinery the TCP transport's worker
	// pool does — deterministically, so seeded runs stay byte-identical
	// across replays. The signature check itself still happens eagerly
	// (virtual time has no CPU cost to move off the loop). Default off:
	// inline verification, the seed behavior.
	AsyncVerify bool
}

// Network is the simulated system: the event queue, the clock, and one
// Env per process.
type Network struct {
	cfg     ids.Config
	opts    Options
	now     time.Duration
	seq     uint64
	queue   eventQueue
	envs    map[ids.ProcessID]*procEnv
	nodes   map[ids.ProcessID]runtime.Node
	lastArr map[linkKey]time.Duration
	rng     *rand.Rand
	metrics *metrics.Registry
	events  *obs.Bus
	log     logging.Logger
	steps   uint64
	// free recycles fired message-delivery events. Only delivery
	// events are pooled: timer events double as runtime.Timer handles
	// that protocol code may hold (and Stop) long after they fire, so
	// reusing those would let a stale handle cancel an unrelated event.
	free []*event
}

type linkKey struct {
	from, to ids.ProcessID
}

// NewNetwork builds a simulated network for cfg with the given nodes.
// Every process in Π must have a node implementation.
func NewNetwork(cfg ids.Config, nodes map[ids.ProcessID]runtime.Node, opts Options) *Network {
	if opts.Latency == nil {
		opts.Latency = ConstantLatency(DefaultLatency)
	}
	if opts.Auth == nil {
		opts.Auth = crypto.NopRing{}
	}
	if opts.Logger == nil {
		opts.Logger = logging.Nop
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	if opts.Events == nil {
		opts.Events = obs.NewBus(0)
	}
	n := &Network{
		cfg:     cfg,
		opts:    opts,
		envs:    make(map[ids.ProcessID]*procEnv, cfg.N),
		nodes:   make(map[ids.ProcessID]runtime.Node, cfg.N),
		lastArr: make(map[linkKey]time.Duration),
		rng:     rand.New(rand.NewSource(opts.Seed)),
		metrics: opts.Metrics,
		events:  opts.Events,
		log:     opts.Logger,
	}
	for _, p := range cfg.All() {
		node, ok := nodes[p]
		if !ok {
			panic(fmt.Sprintf("sim: no node implementation for %s", p))
		}
		n.nodes[p] = node
		n.envs[p] = &procEnv{
			net: n,
			id:  p,
			rng: rand.New(rand.NewSource(opts.Seed ^ int64(p)*0x5851f42d4c957f2d)),
			log: logging.Tagged(opts.Logger, p.String()),
		}
	}
	for _, p := range cfg.All() {
		n.nodes[p].Init(n.envs[p])
	}
	return n
}

// Config returns the system parameters.
func (n *Network) Config() ids.Config { return n.cfg }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// Metrics returns the run's registry.
func (n *Network) Metrics() *metrics.Registry { return n.metrics }

// Events returns the run's protocol event bus.
func (n *Network) Events() *obs.Bus { return n.events }

// Tracer returns the run's span recorder (nil when tracing is
// disabled).
func (n *Network) Tracer() *tracer.Tracer { return n.opts.Tracer }

// Env returns the environment of process p, letting tests and
// experiments inject events as if they were local modules.
func (n *Network) Env(p ids.ProcessID) runtime.Env { return n.envs[p] }

// SetFilter replaces the adversary hook mid-run (nil removes it),
// enabling dynamic scenarios — partitions that open and heal, faults
// that start late — without pre-baking a schedule into the filter.
// Messages already in flight keep their original verdicts.
func (n *Network) SetFilter(f Filter) { n.opts.Filter = f }

// Steps returns the number of events processed so far.
func (n *Network) Steps() uint64 { return n.steps }

// Pending returns the number of queued events.
func (n *Network) Pending() int { return n.queue.Len() }

// Step processes the next event; it reports false if the queue is
// empty.
func (n *Network) Step() bool {
	for n.queue.Len() > 0 {
		ev := heap.Pop(&n.queue).(*event)
		if ev.canceled {
			continue
		}
		if ev.at < n.now {
			panic("sim: time went backwards")
		}
		n.now = ev.at
		n.steps++
		ev.fired = true
		if ev.fire != nil {
			ev.fire()
		} else {
			n.deliver(ev.from, ev.to, ev.data)
		}
		if ev.poolable {
			*ev = event{}
			n.free = append(n.free, ev)
		}
		return true
	}
	return false
}

// deliver decodes and hands a message to its destination node, then
// recycles the frame buffer (decoded messages never alias it).
func (n *Network) deliver(from, to ids.ProcessID, data []byte) {
	decoded, err := wire.Decode(data)
	if err != nil {
		panic(fmt.Sprintf("sim: message failed decode in flight: %v", err))
	}
	wire.Recycle(data)
	n.metrics.Inc("msg.delivered.total", 1)
	n.nodes[to].Receive(from, decoded)
}

// Run processes events until the queue is empty or the virtual clock
// passes until. It returns the number of events processed.
func (n *Network) Run(until time.Duration) int {
	processed := 0
	for n.queue.Len() > 0 {
		next := n.queue.peek()
		if next.at > until {
			break
		}
		if n.Step() {
			processed++
		}
	}
	// Advance the clock even if nothing was left to do, so repeated
	// Run calls move time forward deterministically.
	if n.now < until {
		n.now = until
	}
	return processed
}

// RunUntil processes events until pred holds (checked after every
// event), the queue drains, or the virtual clock passes maxTime. It
// reports whether pred held.
func (n *Network) RunUntil(pred func() bool, maxTime time.Duration) bool {
	if pred() {
		return true
	}
	for n.queue.Len() > 0 && n.now <= maxTime {
		if next := n.queue.peek(); next.at > maxTime {
			break
		}
		n.Step()
		if pred() {
			return true
		}
	}
	return pred()
}

// RunQuiescent processes events until no events remain or maxTime
// passes. Protocols with periodic timers (heartbeats) never quiesce;
// use Run instead.
func (n *Network) RunQuiescent(maxTime time.Duration) int {
	return n.Run(maxTime)
}

// StopProcess tears down one node through the runtime.Stopper lifecycle
// (heartbeats silenced, timers canceled); it reports whether the node
// supported it. The stopped process appears crashed to the others — the
// clean-shutdown flavor of the crash injection tests do by silencing
// heartbeaters directly.
func (n *Network) StopProcess(p ids.ProcessID) bool {
	return runtime.StopNode(n.nodes[p])
}

// RestartProcess re-runs a node's Init against its environment,
// modeling crash-recovery churn. A node composed with durable storage
// (host.Options.Storage) recovers its persisted state inside Init, so
// restarting a replicated-state-machine node is meaningful exactly when
// it is durable; a node without storage restarts from scratch, which
// only stateless-by-design compositions (e.g. the core quorum-selection
// host) tolerate.
func (n *Network) RestartProcess(p ids.ProcessID) {
	node, ok := n.nodes[p]
	if !ok {
		panic(fmt.Sprintf("sim: restart of unknown process %s", p))
	}
	node.Init(n.envs[p])
}

// RestartProcessFresh restarts a node with amnesia: if the node
// implements runtime.FreshStarter its durable state is wiped before
// Init (the pre-durability restart semantics, kept for experiments and
// regression tests); otherwise it behaves like RestartProcess.
func (n *Network) RestartProcessFresh(p ids.ProcessID) {
	node, ok := n.nodes[p]
	if !ok {
		panic(fmt.Sprintf("sim: fresh restart of unknown process %s", p))
	}
	if fs, ok := node.(runtime.FreshStarter); ok {
		fs.InitFresh(n.envs[p])
		return
	}
	node.Init(n.envs[p])
}

// ReplaceProcess swaps in a freshly constructed node for p and Inits it
// against p's environment. Unlike RestartProcess — which re-runs Init
// on the same object, whose Go heap trivially survives — replacement
// models a real crash-restart: the new node's only link to the past is
// whatever durable storage backend it was constructed with.
func (n *Network) ReplaceProcess(p ids.ProcessID, node runtime.Node) {
	if _, ok := n.nodes[p]; !ok {
		panic(fmt.Sprintf("sim: replace of unknown process %s", p))
	}
	n.nodes[p] = node
	node.Init(n.envs[p])
}

// At schedules fn on the network's own clock (clamped to now),
// letting scenario drivers inject faults — partitions opening,
// processes crashing — at absolute virtual times instead of threading
// them through a process's Env. The returned Timer cancels it.
func (n *Network) At(at time.Duration, fn func()) runtime.Timer {
	if at < n.now {
		at = n.now
	}
	return n.schedule(at, fn)
}

// Close stops every node (see StopProcess) and discards the remaining
// event queue. The network must not be stepped afterwards; Close is
// idempotent.
func (n *Network) Close() {
	for _, p := range n.cfg.All() {
		runtime.StopNode(n.nodes[p])
	}
	n.queue = nil
	n.free = nil
}

func (n *Network) schedule(at time.Duration, fn func()) *event {
	ev := &event{at: at, seq: n.seq, fire: fn}
	n.seq++
	heap.Push(&n.queue, ev)
	return ev
}

// scheduleDelivery queues a message-delivery event, reusing a fired
// event struct when one is free. No handle escapes, so the event is
// poolable.
func (n *Network) scheduleDelivery(at time.Duration, from, to ids.ProcessID, data []byte) {
	var ev *event
	if len(n.free) > 0 {
		ev = n.free[len(n.free)-1]
		n.free = n.free[:len(n.free)-1]
	} else {
		ev = &event{}
	}
	*ev = event{at: at, seq: n.seq, from: from, to: to, data: data, poolable: true}
	n.seq++
	heap.Push(&n.queue, ev)
}

// send models one message transmission with adversary filtering, link
// latency and per-link FIFO.
func (n *Network) send(from, to ids.ProcessID, m wire.Message) {
	n.metrics.Inc("msg.sent."+m.Kind().String(), 1)
	n.metrics.Inc("msg.sent.total", 1)
	if from != to {
		n.metrics.Inc("msg.sent.remote", 1)
	}
	var verdict Verdict
	if n.opts.Filter != nil {
		verdict = n.opts.Filter.Filter(from, to, m, n.now)
	}
	if verdict.Drop {
		n.metrics.Inc("msg.dropped.total", 1)
		return
	}
	// Round-trip through the codec: what arrives is what was encoded,
	// never a shared pointer — and undecodable garbage can't be sent.
	// The frame buffer is pooled; deliver recycles it after decoding.
	data := wire.EncodePooled(m)
	if verdict.Mutate != nil {
		// Mutate may edit in place or return a fresh slice; either way
		// only the returned frame is ever recycled, so the pool can
		// never see the same backing array twice.
		mutated := verdict.Mutate(data)
		n.metrics.Inc("msg.mutated.total", 1)
		// A mutated frame that no longer decodes would be discarded by
		// any real receiver's framing layer; model that here so deliver
		// keeps its no-garbage-in-flight invariant.
		if _, err := wire.Decode(mutated); err != nil {
			n.metrics.Inc("msg.mutated.undecodable", 1)
			wire.Recycle(mutated)
			return
		}
		data = mutated
	}
	n.scheduleDelivery(n.arrival(from, to, verdict.Delay), from, to, data)
	if verdict.Duplicate {
		n.metrics.Inc("msg.duplicated.total", 1)
		dup := append([]byte(nil), data...)
		n.scheduleDelivery(n.arrival(from, to, verdict.Delay), from, to, dup)
	}
}

// arrival computes the delivery time of one transmission on a link:
// latency model plus adversary delay, clamped to per-link FIFO unless
// reordering was opted into.
func (n *Network) arrival(from, to ids.ProcessID, delay time.Duration) time.Duration {
	lat := n.opts.Latency(from, to, n.rng) + delay
	if lat < 0 {
		lat = 0
	}
	at := n.now + lat
	if n.opts.AllowReorder {
		return at
	}
	key := linkKey{from: from, to: to}
	// Reliable FIFO links: arrival times on one link never reorder.
	if last, ok := n.lastArr[key]; ok && at < last {
		at = last
	}
	n.lastArr[key] = at
	return at
}

// procEnv implements runtime.Env for one simulated process.
type procEnv struct {
	net *Network
	id  ids.ProcessID
	rng *rand.Rand
	log logging.Logger
}

var _ runtime.Env = (*procEnv)(nil)

func (e *procEnv) ID() ids.ProcessID          { return e.id }
func (e *procEnv) Config() ids.Config         { return e.net.cfg }
func (e *procEnv) Now() time.Duration         { return e.net.now }
func (e *procEnv) Rand() *rand.Rand           { return e.rng }
func (e *procEnv) Auth() crypto.Authenticator { return e.net.opts.Auth }
func (e *procEnv) Logger() logging.Logger     { return e.log }
func (e *procEnv) Metrics() *metrics.Registry { return e.net.metrics }
func (e *procEnv) Events() *obs.Bus           { return e.net.events }
func (e *procEnv) Tracer() *tracer.Tracer     { return e.net.opts.Tracer }

func (e *procEnv) Send(to ids.ProcessID, m wire.Message) {
	if !to.Valid(e.net.cfg.N) {
		panic(fmt.Sprintf("sim: %s sending to %s outside Π", e.id, to))
	}
	e.net.send(e.id, to, m)
}

func (e *procEnv) After(d time.Duration, fn func()) runtime.Timer {
	if d < 0 {
		d = 0
	}
	ev := e.net.schedule(e.net.now+d, fn)
	return ev
}

var _ runtime.AsyncVerifier = (*procEnv)(nil)

// VerifyAsync implements runtime.AsyncVerifier when Options.AsyncVerify
// is set: the check runs eagerly (it is deterministic and free in
// virtual time) but its completion is delivered as a zero-delay event,
// so protocol code observes the same "verified later, possibly after
// other arrivals" schedule the TCP worker pool produces — with event
// ordering still a pure function of the seed.
func (e *procEnv) VerifyAsync(m wire.Signed, done func(error)) bool {
	return e.VerifyRawAsync(m.Signer(), m.SigBytes(), m.Signature(), done)
}

var _ runtime.RawAsyncVerifier = (*procEnv)(nil)

// VerifyRawAsync implements runtime.RawAsyncVerifier under the same
// virtual-time model as VerifyAsync, for callers that rewrite the
// verified bytes (the fleet's per-shard signing domains).
func (e *procEnv) VerifyRawAsync(signer ids.ProcessID, data, sig []byte, done func(error)) bool {
	if !e.net.opts.AsyncVerify {
		return false
	}
	err := e.net.opts.Auth.Verify(signer, data, sig)
	e.After(0, func() { done(err) })
	return true
}

// event is a scheduled occurrence; it doubles as the runtime.Timer
// handle returned by After. Timer events carry a fire callback;
// message-delivery events carry the (from, to, data) payload instead
// and are pooled after firing.
type event struct {
	at       time.Duration
	seq      uint64
	index    int
	canceled bool
	fired    bool
	poolable bool
	fire     func()
	from, to ids.ProcessID
	data     []byte
}

// Stop implements runtime.Timer.
func (ev *event) Stop() bool {
	if ev.canceled || ev.fired {
		return false
	}
	ev.canceled = true
	return true
}

// eventQueue is a min-heap on (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
func (q eventQueue) peek() *event { return q[0] }
