// Package metrics provides the lightweight counters and histograms the
// experiment harness uses to account messages, quorum changes, epochs
// and detection latencies. Registries are plain in-memory structures;
// the simulator is single-threaded per run, but Registry is still safe
// for concurrent use so the TCP deployment can share it.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry holds named counters and histograms.
type Registry struct {
	mu    sync.Mutex
	count map[string]int64
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		count: make(map[string]int64),
		hists: make(map[string]*Histogram),
	}
}

// Inc adds delta to the named counter.
func (r *Registry) Inc(name string, delta int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count[name] += delta
}

// Counter returns the current value of the named counter (0 if unset).
func (r *Registry) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count[name]
}

// Observe records a sample in the named histogram.
func (r *Registry) Observe(name string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	h.add(v)
}

// Hist returns a snapshot of the named histogram. The second return is
// false if no samples were recorded.
func (r *Registry) Hist(name string) (Histogram, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		return Histogram{}, false
	}
	return h.snapshot(), true
}

// Counters returns a sorted copy of all counters, for printing.
func (r *Registry) Counters() []NamedCount {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]NamedCount, 0, len(r.count))
	for k, v := range r.count {
		out = append(out, NamedCount{Name: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reset clears all counters and histograms.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count = make(map[string]int64)
	r.hists = make(map[string]*Histogram)
}

// String renders the registry as one line per counter, sorted by name.
func (r *Registry) String() string {
	var b strings.Builder
	for _, c := range r.Counters() {
		fmt.Fprintf(&b, "%s=%d\n", c.Name, c.Value)
	}
	return b.String()
}

// NamedCount pairs a counter name with its value.
type NamedCount struct {
	Name  string
	Value int64
}

// Histogram accumulates scalar samples and exposes summary statistics.
type Histogram struct {
	Count   int64
	Sum     float64
	MinSeen float64
	MaxSeen float64
	samples []float64
}

func (h *Histogram) add(v float64) {
	if h.Count == 0 || v < h.MinSeen {
		h.MinSeen = v
	}
	if h.Count == 0 || v > h.MaxSeen {
		h.MaxSeen = v
	}
	h.Count++
	h.Sum += v
	h.samples = append(h.samples, v)
}

func (h *Histogram) snapshot() Histogram {
	cp := *h
	cp.samples = make([]float64, len(h.samples))
	copy(cp.samples, h.samples)
	return cp
}

// Mean returns the arithmetic mean of the samples, or 0 with no samples.
func (h Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank on the sorted samples; 0 with no samples.
func (h Histogram) Percentile(p float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	s := make([]float64, len(h.samples))
	copy(s, h.samples)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(p/100*float64(len(s))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}
