// Package metrics provides the lightweight counters, gauges and
// histograms the experiment harness and the live deployment use to
// account messages, quorum changes, epochs and per-phase latencies.
// Registries are plain in-memory structures, safe for concurrent use so
// the TCP deployment can share one across goroutines; the simulator is
// single-threaded per run and shares one registry across all simulated
// processes.
//
// Beyond plain named counters, the registry supports:
//
//   - gauges (Set/Add semantics, optionally labeled),
//   - labeled counters (e.g. messages_total{type="commit",dir="sent"}),
//   - bounded-memory histograms: count/sum/min/max are always exact;
//     percentiles are exact up to ReservoirSize samples and computed
//     over a deterministic uniform reservoir beyond it,
//   - a Snapshot() of everything, and a Prometheus-text-format
//     exposition via WriteTo (see prometheus.go).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// L is one metric label (a key/value pair).
type L struct {
	Key, Value string
}

// canonLabels renders labels in canonical Prometheus form: sorted by
// key, values escaped, wrapped in braces. Empty input yields "".
func canonLabels(labels []L) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := make([]L, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(SanitizeName(l.Key))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escaping rules
// for label values: backslash, double-quote and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Registry holds named counters, gauges and histograms.
type Registry struct {
	mu      sync.Mutex
	count   map[string]int64
	labeled map[string]map[string]int64 // name → canonical labels → value
	gauges  map[string]map[string]float64
	hists   map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		count:   make(map[string]int64),
		labeled: make(map[string]map[string]int64),
		gauges:  make(map[string]map[string]float64),
		hists:   make(map[string]*Histogram),
	}
}

// Inc adds delta to the named counter.
func (r *Registry) Inc(name string, delta int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count[name] += delta
}

// Counter returns the current value of the named counter (0 if unset).
func (r *Registry) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count[name]
}

// IncLabeled adds delta to the series of the named counter identified
// by the given labels (order-insensitive).
func (r *Registry) IncLabeled(name string, delta int64, labels ...L) {
	key := canonLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	series, ok := r.labeled[name]
	if !ok {
		series = make(map[string]int64)
		r.labeled[name] = series
	}
	series[key] += delta
}

// LabeledCounter returns the value of one series of a labeled counter
// (0 if unset).
func (r *Registry) LabeledCounter(name string, labels ...L) int64 {
	key := canonLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.labeled[name][key]
}

// LabeledSum returns the sum over all series of a labeled counter.
func (r *Registry) LabeledSum(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, v := range r.labeled[name] {
		total += v
	}
	return total
}

// SetGauge sets the named gauge series to v.
func (r *Registry) SetGauge(name string, v float64, labels ...L) {
	key := canonLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	series, ok := r.gauges[name]
	if !ok {
		series = make(map[string]float64)
		r.gauges[name] = series
	}
	series[key] = v
}

// AddGauge adds delta to the named gauge series.
func (r *Registry) AddGauge(name string, delta float64, labels ...L) {
	key := canonLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	series, ok := r.gauges[name]
	if !ok {
		series = make(map[string]float64)
		r.gauges[name] = series
	}
	series[key] += delta
}

// Gauge returns the value of the named gauge series (0 if unset).
func (r *Registry) Gauge(name string, labels ...L) float64 {
	key := canonLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name][key]
}

// Observe records a sample in the named histogram.
func (r *Registry) Observe(name string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	h.add(v)
}

// Hist returns a snapshot of the named histogram. The second return is
// false if no samples were recorded.
func (r *Registry) Hist(name string) (Histogram, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		return Histogram{}, false
	}
	return h.snapshot(), true
}

// Counters returns a sorted copy of all plain counters, for printing.
func (r *Registry) Counters() []NamedCount {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]NamedCount, 0, len(r.count))
	for k, v := range r.count {
		out = append(out, NamedCount{Name: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reset clears all counters, gauges and histograms.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count = make(map[string]int64)
	r.labeled = make(map[string]map[string]int64)
	r.gauges = make(map[string]map[string]float64)
	r.hists = make(map[string]*Histogram)
}

// String renders the registry as one line per counter, sorted by name.
func (r *Registry) String() string {
	var b strings.Builder
	for _, c := range r.Counters() {
		fmt.Fprintf(&b, "%s=%d\n", c.Name, c.Value)
	}
	return b.String()
}

// NamedCount pairs a counter name with its value.
type NamedCount struct {
	Name  string
	Value int64
}

// ReservoirSize bounds the per-histogram sample memory. Percentiles are
// exact while the sample count is at or below it and approximate (over
// a uniform reservoir) beyond it.
const ReservoirSize = 1024

// Histogram accumulates scalar samples and exposes summary statistics.
// Count, Sum, MinSeen and MaxSeen are exact regardless of sample count;
// Percentile is exact up to ReservoirSize samples and computed over a
// deterministic uniform reservoir (Vitter's Algorithm R with a fixed
// PRNG seed) above it, so memory stays bounded on arbitrarily long
// runs and two identical runs report identical percentiles.
type Histogram struct {
	Count   int64
	Sum     float64
	MinSeen float64
	MaxSeen float64
	samples []float64
	rng     uint64
}

func newHistogram() *Histogram {
	return &Histogram{rng: 0x9e3779b97f4a7c15}
}

// nextRand is a xorshift64* step — deterministic, seeded at histogram
// creation, independent of the global rand state.
func (h *Histogram) nextRand() uint64 {
	x := h.rng
	if x == 0 {
		x = 0x9e3779b97f4a7c15
	}
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	h.rng = x
	return x * 0x2545f4914f6cdd1d
}

func (h *Histogram) add(v float64) {
	if h.Count == 0 || v < h.MinSeen {
		h.MinSeen = v
	}
	if h.Count == 0 || v > h.MaxSeen {
		h.MaxSeen = v
	}
	h.Count++
	h.Sum += v
	if len(h.samples) < ReservoirSize {
		h.samples = append(h.samples, v)
		return
	}
	// Algorithm R: the i-th sample (1-based) replaces a random reservoir
	// slot with probability ReservoirSize/i, keeping the reservoir a
	// uniform sample of everything seen.
	j := h.nextRand() % uint64(h.Count)
	if j < uint64(ReservoirSize) {
		h.samples[j] = v
	}
}

func (h *Histogram) snapshot() Histogram {
	cp := *h
	cp.samples = make([]float64, len(h.samples))
	copy(cp.samples, h.samples)
	return cp
}

// Mean returns the arithmetic mean of the samples, or 0 with no samples.
func (h Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Exact reports whether Percentile is computed over every observed
// sample (true while Count ≤ ReservoirSize) rather than a reservoir.
func (h Histogram) Exact() bool { return h.Count <= ReservoirSize }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using the
// nearest-rank definition: the sample at rank ⌈p/100·N⌉ of the sorted
// samples (p = 0 selects the minimum). 0 with no samples. The result
// is exact while Exact() holds and reservoir-approximate beyond.
func (h Histogram) Percentile(p float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	s := make([]float64, len(h.samples))
	copy(s, h.samples)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}
