package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounters(t *testing.T) {
	r := NewRegistry()
	r.Inc("a", 1)
	r.Inc("a", 2)
	r.Inc("b", 5)
	if got := r.Counter("a"); got != 3 {
		t.Errorf("a = %d", got)
	}
	if got := r.Counter("missing"); got != 0 {
		t.Errorf("missing = %d", got)
	}
	counters := r.Counters()
	if len(counters) != 2 || counters[0].Name != "a" || counters[1].Name != "b" {
		t.Errorf("Counters = %v", counters)
	}
	if s := r.String(); !strings.Contains(s, "a=3") || !strings.Contains(s, "b=5") {
		t.Errorf("String = %q", s)
	}
	r.Reset()
	if r.Counter("a") != 0 {
		t.Error("Reset did not clear")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	for _, v := range []float64{5, 1, 3, 2, 4} {
		r.Observe("lat", v)
	}
	h, ok := r.Hist("lat")
	if !ok {
		t.Fatal("histogram missing")
	}
	if h.Count != 5 || h.MinSeen != 1 || h.MaxSeen != 5 {
		t.Errorf("stats: %+v", h)
	}
	if got := h.Mean(); got != 3 {
		t.Errorf("Mean = %v", got)
	}
	if got := h.Percentile(50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := h.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := h.Percentile(100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if _, ok := r.Hist("missing"); ok {
		t.Error("phantom histogram")
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Error("empty histogram stats should be 0")
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Inc("x", 1)
				r.Observe("h", float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("x"); got != 8000 {
		t.Errorf("x = %d, want 8000", got)
	}
	h, _ := r.Hist("h")
	if h.Count != 8000 {
		t.Errorf("h.Count = %d", h.Count)
	}
}
