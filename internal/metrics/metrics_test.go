package metrics

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestCounters(t *testing.T) {
	r := NewRegistry()
	r.Inc("a", 1)
	r.Inc("a", 2)
	r.Inc("b", 5)
	if got := r.Counter("a"); got != 3 {
		t.Errorf("a = %d", got)
	}
	if got := r.Counter("missing"); got != 0 {
		t.Errorf("missing = %d", got)
	}
	counters := r.Counters()
	if len(counters) != 2 || counters[0].Name != "a" || counters[1].Name != "b" {
		t.Errorf("Counters = %v", counters)
	}
	if s := r.String(); !strings.Contains(s, "a=3") || !strings.Contains(s, "b=5") {
		t.Errorf("String = %q", s)
	}
	r.Reset()
	if r.Counter("a") != 0 {
		t.Error("Reset did not clear")
	}
}

func TestLabeledCounters(t *testing.T) {
	r := NewRegistry()
	r.IncLabeled("messages_total", 1, L{"type", "commit"}, L{"dir", "sent"})
	r.IncLabeled("messages_total", 2, L{"dir", "sent"}, L{"type", "commit"}) // order-insensitive
	r.IncLabeled("messages_total", 5, L{"type", "prepare"}, L{"dir", "sent"})
	if got := r.LabeledCounter("messages_total", L{"type", "commit"}, L{"dir", "sent"}); got != 3 {
		t.Errorf("commit series = %d, want 3", got)
	}
	if got := r.LabeledCounter("messages_total", L{"type", "prepare"}, L{"dir", "sent"}); got != 5 {
		t.Errorf("prepare series = %d, want 5", got)
	}
	if got := r.LabeledSum("messages_total"); got != 8 {
		t.Errorf("sum = %d, want 8", got)
	}
	if got := r.LabeledCounter("messages_total", L{"type", "missing"}); got != 0 {
		t.Errorf("missing series = %d", got)
	}
}

func TestGauges(t *testing.T) {
	r := NewRegistry()
	r.SetGauge("depth", 4)
	r.AddGauge("depth", -1)
	if got := r.Gauge("depth"); got != 3 {
		t.Errorf("depth = %v, want 3", got)
	}
	r.SetGauge("view", 7, L{"node", "p1"})
	r.SetGauge("view", 9, L{"node", "p2"})
	if got := r.Gauge("view", L{"node", "p2"}); got != 9 {
		t.Errorf("view{p2} = %v, want 9", got)
	}
	if got := r.Gauge("view"); got != 0 {
		t.Errorf("unlabeled view = %v, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	for _, v := range []float64{5, 1, 3, 2, 4} {
		r.Observe("lat", v)
	}
	h, ok := r.Hist("lat")
	if !ok {
		t.Fatal("histogram missing")
	}
	if h.Count != 5 || h.MinSeen != 1 || h.MaxSeen != 5 {
		t.Errorf("stats: %+v", h)
	}
	if got := h.Mean(); got != 3 {
		t.Errorf("Mean = %v", got)
	}
	if got := h.Percentile(50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := h.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := h.Percentile(100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if _, ok := r.Hist("missing"); ok {
		t.Error("phantom histogram")
	}
}

// TestPercentileNearestRank pins the documented nearest-rank definition
// (rank ⌈p/100·N⌉) across the edge ranks.
func TestPercentileNearestRank(t *testing.T) {
	observe := func(vals ...float64) Histogram {
		r := NewRegistry()
		for _, v := range vals {
			r.Observe("h", v)
		}
		h, _ := r.Hist("h")
		return h
	}
	tests := []struct {
		name    string
		samples []float64
		p       float64
		want    float64
	}{
		{"p50 of four", []float64{1, 2, 3, 4}, 50, 2},
		{"p25 of four", []float64{1, 2, 3, 4}, 25, 1},
		{"p35 of four", []float64{1, 2, 3, 4}, 35, 2},
		{"p75 of four", []float64{1, 2, 3, 4}, 75, 3},
		{"p100 of four", []float64{1, 2, 3, 4}, 100, 4},
		{"p0 of four", []float64{1, 2, 3, 4}, 0, 1},
		{"p50 of five", []float64{5, 1, 3, 2, 4}, 50, 3},
		{"single sample p0", []float64{42}, 0, 42},
		{"single sample p50", []float64{42}, 50, 42},
		{"single sample p100", []float64{42}, 100, 42},
		{"p1 of four", []float64{1, 2, 3, 4}, 1, 1},
		{"p99 of four", []float64{1, 2, 3, 4}, 99, 4},
	}
	for _, tc := range tests {
		h := observe(tc.samples...)
		if got := h.Percentile(tc.p); got != tc.want {
			t.Errorf("%s: Percentile(%v) = %v, want %v", tc.name, tc.p, got, tc.want)
		}
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Error("empty histogram stats should be 0")
	}
}

// TestHistogramBoundedMemory observes over a million samples and checks
// that retained sample memory stays capped at ReservoirSize while the
// exact aggregates and the approximate percentiles remain sane.
func TestHistogramBoundedMemory(t *testing.T) {
	r := NewRegistry()
	const n = 1_200_000
	for i := 0; i < n; i++ {
		r.Observe("big", float64(i%1000))
	}
	h, _ := r.Hist("big")
	if h.Count != n {
		t.Fatalf("Count = %d, want %d", h.Count, n)
	}
	if len(h.samples) != ReservoirSize {
		t.Fatalf("retained samples = %d, want %d", len(h.samples), ReservoirSize)
	}
	if h.Exact() {
		t.Error("Exact() should be false beyond the reservoir size")
	}
	if h.MinSeen != 0 || h.MaxSeen != 999 {
		t.Errorf("min/max = %v/%v", h.MinSeen, h.MaxSeen)
	}
	// The underlying distribution is uniform on [0, 999]; the reservoir
	// median must land in a generous band around 500.
	if p50 := h.Percentile(50); p50 < 350 || p50 > 650 {
		t.Errorf("reservoir p50 = %v, want ≈ 500", p50)
	}
	// Determinism: an identical second run reports identical percentiles.
	r2 := NewRegistry()
	for i := 0; i < n; i++ {
		r2.Observe("big", float64(i%1000))
	}
	h2, _ := r2.Hist("big")
	for _, p := range []float64{1, 25, 50, 75, 99} {
		if h.Percentile(p) != h2.Percentile(p) {
			t.Fatalf("p%v differs between identical runs: %v vs %v", p, h.Percentile(p), h2.Percentile(p))
		}
	}
}

func TestHistogramExactBelowCap(t *testing.T) {
	r := NewRegistry()
	for i := ReservoirSize; i >= 1; i-- {
		r.Observe("h", float64(i))
	}
	h, _ := r.Hist("h")
	if !h.Exact() {
		t.Fatal("Exact() should hold at the cap")
	}
	if got := h.Percentile(50); got != ReservoirSize/2 {
		t.Errorf("p50 = %v, want %d", got, ReservoirSize/2)
	}
}

// TestPrometheusGolden compares the text exposition against the golden
// file: families sorted by name, series sorted by labels, label values
// escaped, histograms exposed as summaries.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Inc("msg.sent.total", 12)
	r.Inc("fd.detected", 1)
	r.IncLabeled("transport.messages.total", 7, L{"type", "commit"}, L{"dir", "sent"})
	r.IncLabeled("transport.messages.total", 3, L{"type", "prepare"}, L{"dir", "sent"})
	r.IncLabeled("weird.labels", 1, L{"path", `C:\tmp`}, L{"quote", `say "hi"`})
	r.SetGauge("xpaxos.view", 4, L{"node", "p1"})
	r.SetGauge("suspicion.store.size", 9, L{"node", "p1"})
	for i := 1; i <= 100; i++ {
		r.Observe("xpaxos.commit.latency.seconds", float64(i)/1000)
	}

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	goldenPath := filepath.Join("testdata", "exposition.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestSanitizeName(t *testing.T) {
	tests := map[string]string{
		"msg.sent.total":  "msg_sent_total",
		"already_legal:x": "already_legal:x",
		"1starts-digit":   "_1starts_digit",
		"sp ace":          "sp_ace",
	}
	for in, want := range tests {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRegistryConcurrency hammers every registry surface from multiple
// goroutines; run under -race it doubles as the data-race check.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Inc("x", 1)
				r.Observe("h", float64(i))
				r.IncLabeled("labeled", 1, L{"g", "a"})
				r.SetGauge("gauge", float64(i), L{"g", "a"})
				r.AddGauge("adds", 1)
				if i%100 == 0 {
					var buf bytes.Buffer
					if _, err := r.WriteTo(&buf); err != nil {
						t.Errorf("WriteTo: %v", err)
					}
					_ = r.Snapshot()
					_, _ = r.Hist("h")
					_ = r.Counters()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("x"); got != 8000 {
		t.Errorf("x = %d, want 8000", got)
	}
	if got := r.LabeledCounter("labeled", L{"g", "a"}); got != 8000 {
		t.Errorf("labeled = %d, want 8000", got)
	}
	if got := r.Gauge("adds"); got != 8000 {
		t.Errorf("adds = %v, want 8000", got)
	}
	h, _ := r.Hist("h")
	if h.Count != 8000 {
		t.Errorf("h.Count = %d", h.Count)
	}
}

// TestPercentileExtremeRanks pins the tail ranks the open-loop load
// report leans on (p99.9 / p99.99) at small sample counts, where the
// nearest-rank definition either collapses to the maximum outright or
// resolves exactly one sample below it. Samples are 1..n so rank r is
// the value r.
func TestPercentileExtremeRanks(t *testing.T) {
	fill := func(n int) Histogram {
		r := NewRegistry()
		for i := 1; i <= n; i++ {
			r.Observe("h", float64(i))
		}
		h, _ := r.Hist("h")
		return h
	}
	tests := []struct {
		n    int
		p    float64
		want float64
	}{
		{1, 99.9, 1},
		{10, 99.9, 10},   // ceil(9.99) = 10: p999 is the max below 1000 samples
		{100, 99.9, 100}, // ceil(99.9) = 100: still the max
		{100, 99.99, 100},
		{999, 99.9, 999}, // ceil(998.001) = 999: still the max
		// float64(99.9)/100 is a hair above 0.999, so at exactly n=1000
		// the rank ceils to 1000 and p999 is STILL the max — the tail
		// only resolves below the max from n=1001 on.
		{1000, 99.9, 1000},
		{1001, 99.9, 1000},                       // first count where p999 resolves below the max
		{1000, 99.99, 1000},                      // p9999 collapses to the max far beyond that
		{ReservoirSize, 99.9, ReservoirSize - 1}, // full reservoir: one below max
		{ReservoirSize, 99.99, ReservoirSize},    // tail finer than 1/1024 is the max
	}
	for _, tc := range tests {
		h := fill(tc.n)
		if got := h.Percentile(tc.p); got != tc.want {
			t.Errorf("n=%d: Percentile(%v) = %v, want %v", tc.n, tc.p, got, tc.want)
		}
	}
}

// TestPercentileTailBeyondReservoir checks the documented tail limit
// once sampling kicks in: over a 1024-slot uniform reservoir the
// finest resolvable tail rank is ~1/ReservoirSize, so p99.9 must land
// within the top band of the true distribution and p99.99 degenerates
// to the reservoir's own maximum (at or below the exact MaxSeen).
// Finer tails need a counting histogram — internal/load.Hist records
// every completion in log-spaced buckets for exactly this reason.
func TestPercentileTailBeyondReservoir(t *testing.T) {
	r := NewRegistry()
	const n = 200_000
	for i := 0; i < n; i++ {
		r.Observe("h", float64(i))
	}
	h, _ := r.Hist("h")
	if h.Exact() {
		t.Fatal("test needs the reservoir-sampled regime")
	}
	p999 := h.Percentile(99.9)
	// The 1023rd order statistic of 1024 uniform draws concentrates at
	// ~0.998 of the range; 0.99 is > 5 standard deviations of slack.
	if p999 < 0.99*h.MaxSeen {
		t.Errorf("p99.9 = %v, want ≥ %v", p999, 0.99*h.MaxSeen)
	}
	p9999 := h.Percentile(99.99)
	if p9999 < p999 || p9999 > h.MaxSeen {
		t.Errorf("p99.99 = %v, want within [p99.9=%v, MaxSeen=%v]", p9999, p999, h.MaxSeen)
	}
}
