package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Series is one exposed time series: a canonical label string (possibly
// empty) and its value.
type Series struct {
	Labels string // canonical form, e.g. `{dir="sent",type="commit"}`
	Value  float64
}

// Family is all series of one metric name.
type Family struct {
	Name   string // original (dotted) registry name
	Type   string // "counter" | "gauge" | "summary"
	Series []Series
	Hist   *Histogram // set for summaries
}

// Snapshot is a consistent copy of everything in the registry, sorted
// by metric name and, within a family, by label string.
type Snapshot struct {
	Families []Family
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()

	fams := make(map[string]*Family)
	get := func(name, typ string) *Family {
		f, ok := fams[name]
		if !ok {
			f = &Family{Name: name, Type: typ}
			fams[name] = f
		}
		return f
	}
	for name, v := range r.count {
		f := get(name, "counter")
		f.Series = append(f.Series, Series{Value: float64(v)})
	}
	for name, series := range r.labeled {
		f := get(name, "counter")
		for labels, v := range series {
			f.Series = append(f.Series, Series{Labels: labels, Value: float64(v)})
		}
	}
	for name, series := range r.gauges {
		f := get(name, "gauge")
		for labels, v := range series {
			f.Series = append(f.Series, Series{Labels: labels, Value: v})
		}
	}
	for name, h := range r.hists {
		f := get(name, "summary")
		snap := h.snapshot()
		f.Hist = &snap
	}

	out := Snapshot{Families: make([]Family, 0, len(fams))}
	for _, f := range fams {
		sort.Slice(f.Series, func(i, j int) bool { return f.Series[i].Labels < f.Series[j].Labels })
		out.Families = append(out.Families, *f)
	}
	sort.Slice(out.Families, func(i, j int) bool { return out.Families[i].Name < out.Families[j].Name })
	return out
}

// SanitizeName maps a registry name to a legal Prometheus metric or
// label name: every character outside [a-zA-Z0-9_:] becomes '_', and a
// leading digit is prefixed with '_'.
func SanitizeName(name string) string {
	var b strings.Builder
	for i, r := range name {
		legal := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if legal {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// summaryQuantiles are the quantiles exposed for each histogram.
var summaryQuantiles = []float64{50, 90, 99}

var _ io.WriterTo = (*Registry)(nil)

// WriteTo writes the registry in the Prometheus text exposition format
// (version 0.0.4): families sorted by name, series sorted by label
// string, label values escaped. Histograms are exposed as summaries
// with p50/p90/p99 quantiles plus _sum and _count. It implements
// io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	return r.Snapshot().WriteTo(w)
}

// WriteTo writes the snapshot in the Prometheus text exposition format.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	var written int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		written += int64(n)
		return err
	}
	for _, f := range s.Families {
		name := SanitizeName(f.Name)
		if err := emit("# TYPE %s %s\n", name, f.Type); err != nil {
			return written, err
		}
		if f.Type == "summary" {
			h := f.Hist
			for _, q := range summaryQuantiles {
				if err := emit("%s{quantile=%q} %s\n", name,
					strconv.FormatFloat(q/100, 'g', -1, 64), formatValue(h.Percentile(q))); err != nil {
					return written, err
				}
			}
			if err := emit("%s_sum %s\n", name, formatValue(h.Sum)); err != nil {
				return written, err
			}
			if err := emit("%s_count %d\n", name, h.Count); err != nil {
				return written, err
			}
			continue
		}
		for _, series := range f.Series {
			if err := emit("%s%s %s\n", name, series.Labels, formatValue(series.Value)); err != nil {
				return written, err
			}
		}
	}
	return written, nil
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
