package follower_test

import (
	"testing"
	"time"

	"quorumselect/internal/follower"
	"quorumselect/internal/graph"
	"quorumselect/internal/ids"
	"quorumselect/internal/runtime"
	"quorumselect/internal/sim"
	"quorumselect/internal/wire"
)

type silent struct{}

func (silent) Init(runtime.Env)                    {}
func (silent) Receive(ids.ProcessID, wire.Message) {}

type fixture struct {
	net   *sim.Network
	nodes map[ids.ProcessID]*follower.Node
}

func newFixture(t *testing.T, n, f int, opts follower.NodeOptions, simOpts sim.Options, crashed ids.ProcSet) *fixture {
	t.Helper()
	cfg := ids.MustConfig(n, f)
	nodes := make(map[ids.ProcessID]runtime.Node, n)
	fNodes := make(map[ids.ProcessID]*follower.Node, n)
	for _, p := range cfg.All() {
		if crashed.Contains(p) {
			nodes[p] = silent{}
			continue
		}
		node := follower.NewNode(opts)
		fNodes[p] = node
		nodes[p] = node
	}
	return &fixture{net: sim.NewNetwork(cfg, nodes, simOpts), nodes: fNodes}
}

func quietOpts() follower.NodeOptions {
	opts := follower.DefaultNodeOptions()
	opts.HeartbeatPeriod = 0
	return opts
}

func TestRequiresLeaderCentricConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("n = 3f did not panic")
		}
	}()
	// n=6, f=2 violates n > 3f.
	fx := newFixture(t, 6, 2, quietOpts(), sim.Options{}, ids.NewProcSet())
	_ = fx
}

func TestInitialState(t *testing.T) {
	fx := newFixture(t, 7, 2, quietOpts(), sim.Options{}, ids.NewProcSet())
	fx.net.Run(100 * time.Millisecond)
	for p, n := range fx.nodes {
		if n.Selector.Leader() != 1 {
			t.Errorf("%s: leader = %v, want p1", p, n.Selector.Leader())
		}
		want := ids.NewLeaderQuorum(1, []ids.ProcessID{1, 2, 3, 4, 5})
		if !n.CurrentQuorum().Equal(want) {
			t.Errorf("%s: quorum = %s, want %s", p, n.CurrentQuorum(), want)
		}
		if len(n.Quorums()) != 0 {
			t.Errorf("%s issued quorums without suspicions", p)
		}
	}
}

func TestFollowerSuspicionDoesNotChangeLeader(t *testing.T) {
	// A suspicion between two followers (p3 suspects p4) must neither
	// change the leader nor trigger a new quorum — the relaxation that
	// buys the O(f) bound.
	fx := newFixture(t, 7, 2, quietOpts(), sim.Options{}, ids.NewProcSet())
	fx.nodes[3].Selector.OnSuspected(ids.NewProcSet(4))
	fx.net.Run(time.Second)
	for p, n := range fx.nodes {
		if n.Selector.Leader() != 1 {
			t.Errorf("%s: leader changed to %v on follower-follower suspicion", p, n.Selector.Leader())
		}
		if n.Selector.QuorumsIssued() != 0 {
			t.Errorf("%s issued a quorum on follower-follower suspicion", p)
		}
	}
}

func TestLeaderSuspicionMovesLeader(t *testing.T) {
	// p3 suspects the leader p1: the edge (p1,p3) makes p2 the maximal
	// line subgraph's leader. p2 broadcasts FOLLOWERS; everyone
	// converges to the same quorum with leader p2. Note the quorum may
	// legitimately keep both p1 and p3 — their mutual suspicion is a
	// follower-follower edge under the new leader.
	fx := newFixture(t, 7, 2, quietOpts(), sim.Options{}, ids.NewProcSet())
	fx.nodes[3].Selector.OnSuspected(ids.NewProcSet(1))
	fx.net.Run(time.Second)
	want := ids.NewLeaderQuorum(2, []ids.ProcessID{1, 2, 3, 4, 5})
	for p, n := range fx.nodes {
		if n.Selector.Leader() != 2 {
			t.Errorf("%s: leader = %v, want p2", p, n.Selector.Leader())
		}
		if !n.CurrentQuorum().Equal(want) {
			t.Errorf("%s: quorum = %s, want %s", p, n.CurrentQuorum(), want)
		}
		if !n.Selector.Stable() {
			t.Errorf("%s not stable after FOLLOWERS", p)
		}
		if n.Detector.IsDetected(2) {
			t.Errorf("%s wrongly detected the correct leader p2", p)
		}
	}
}

func TestCrashedDefaultLeaderReplaced(t *testing.T) {
	// p1 is crashed; heartbeat expectations suspect it everywhere, the
	// leader moves to p2 and the selected quorum excludes p1.
	opts := follower.DefaultNodeOptions()
	opts.HeartbeatPeriod = 20 * time.Millisecond
	fx := newFixture(t, 7, 2, opts, sim.Options{Latency: sim.ConstantLatency(2 * time.Millisecond)},
		ids.NewProcSet(1))
	fx.net.Run(3 * time.Second)
	for p, n := range fx.nodes {
		q := n.CurrentQuorum()
		if q.Leader == 1 {
			t.Errorf("%s still has crashed p1 as leader", p)
		}
		if q.Contains(1) {
			t.Errorf("%s: quorum %s contains crashed p1", p, q)
		}
		if !n.Selector.Stable() {
			t.Errorf("%s not stable", p)
		}
	}
	// Agreement.
	first := fx.nodes[2].CurrentQuorum()
	for p, n := range fx.nodes {
		if !n.CurrentQuorum().Equal(first) {
			t.Errorf("Agreement violated: %s has %s, p2 has %s", p, n.CurrentQuorum(), first)
		}
	}
}

func TestEquivocatingLeaderDetected(t *testing.T) {
	fx := newFixture(t, 7, 2, quietOpts(), sim.Options{}, ids.NewProcSet())
	// Move the leader to p2.
	fx.nodes[3].Selector.OnSuspected(ids.NewProcSet(1))
	fx.net.Run(time.Second)
	if fx.nodes[4].Selector.Leader() != 2 {
		t.Fatalf("setup failed: leader = %v", fx.nodes[4].Selector.Leader())
	}
	// The leader now equivocates: a second, different (but well-formed)
	// FOLLOWERS for the same epoch.
	second := &wire.Followers{
		Leader:    2,
		Epoch:     fx.nodes[4].Selector.Epoch(),
		Followers: []ids.ProcessID{4, 5, 6, 7},
		Line:      []wire.Edge{{U: 1, V: 3}},
		Sig:       []byte{0},
	}
	for _, p := range fx.net.Config().All() {
		if p != 2 {
			fx.net.Env(2).Send(p, second)
		}
	}
	fx.net.Run(fx.net.Now() + time.Second)
	for p, n := range fx.nodes {
		if p == 2 {
			continue
		}
		if !n.Detector.IsDetected(2) {
			t.Errorf("%s did not detect the equivocating leader", p)
		}
	}
}

func TestMalformedFollowersDetected(t *testing.T) {
	fx := newFixture(t, 7, 2, quietOpts(), sim.Options{}, ids.NewProcSet())
	// Move leader to p2 so messages from p2 pass the line-28 guard.
	fx.nodes[3].Selector.OnSuspected(ids.NewProcSet(1))
	fx.net.Run(time.Second)
	n4 := fx.nodes[4]
	epoch := n4.Selector.Epoch()

	tests := []struct {
		name string
		msg  *wire.Followers
	}{
		{
			name: "wrong follower count",
			msg: &wire.Followers{Leader: 2, Epoch: epoch,
				Followers: []ids.ProcessID{4, 5}, Line: []wire.Edge{{U: 1, V: 3}}},
		},
		{
			name: "leader among followers",
			msg: &wire.Followers{Leader: 2, Epoch: epoch,
				Followers: []ids.ProcessID{2, 4, 5, 6}, Line: []wire.Edge{{U: 1, V: 3}}},
		},
		{
			name: "duplicate followers",
			msg: &wire.Followers{Leader: 2, Epoch: epoch,
				Followers: []ids.ProcessID{4, 4, 5, 6}, Line: []wire.Edge{{U: 1, V: 3}}},
		},
		{
			name: "line not a subgraph of G",
			msg: &wire.Followers{Leader: 2, Epoch: epoch,
				Followers: []ids.ProcessID{4, 5, 6, 7}, Line: []wire.Edge{{U: 5, V: 6}}},
		},
		{
			name: "line does not designate sender",
			msg: &wire.Followers{Leader: 2, Epoch: epoch,
				Followers: []ids.ProcessID{4, 5, 6, 7}, Line: nil}, // empty line designates p1
		},
		{
			name: "line has a cycle",
			msg: &wire.Followers{Leader: 2, Epoch: epoch,
				Followers: []ids.ProcessID{4, 5, 6, 7},
				Line:      []wire.Edge{{U: 1, V: 3}, {U: 3, V: 5}, {U: 5, V: 1}}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			// Fresh fixture per case to avoid cross-detections.
			fx := newFixture(t, 7, 2, quietOpts(), sim.Options{}, ids.NewProcSet())
			fx.nodes[3].Selector.OnSuspected(ids.NewProcSet(1))
			fx.net.Run(time.Second)
			tt.msg.Sig = []byte{0}
			fx.net.Env(2).Send(4, tt.msg)
			fx.net.Run(fx.net.Now() + time.Second)
			if !fx.nodes[4].Detector.IsDetected(2) {
				t.Error("malformed FOLLOWERS not detected")
			}
		})
	}
}

func TestStaleEpochFollowersIgnored(t *testing.T) {
	fx := newFixture(t, 7, 2, quietOpts(), sim.Options{}, ids.NewProcSet())
	fx.nodes[3].Selector.OnSuspected(ids.NewProcSet(1))
	fx.net.Run(time.Second)
	stale := &wire.Followers{
		Leader:    2,
		Epoch:     99, // wrong epoch
		Followers: []ids.ProcessID{4, 5, 6, 7},
		Line:      []wire.Edge{{U: 1, V: 3}},
		Sig:       []byte{0},
	}
	fx.net.Env(2).Send(4, stale)
	fx.net.Run(fx.net.Now() + time.Second)
	if fx.nodes[4].Detector.IsDetected(2) {
		t.Error("stale-epoch FOLLOWERS caused a detection")
	}
	// And the quorum did not change.
	want := ids.NewLeaderQuorum(2, []ids.ProcessID{1, 2, 3, 4, 5})
	if !fx.nodes[4].CurrentQuorum().Equal(want) {
		t.Errorf("quorum = %s, want %s", fx.nodes[4].CurrentQuorum(), want)
	}
}

func TestSelectFollowersPrefersClean(t *testing.T) {
	// Leader p2 with line (1,3); p4 has a suspicion edge to the leader
	// in G: it must be sorted after the clean candidates.
	g := graph.New(7)
	g.AddEdge(1, 3)
	g.AddEdge(2, 4)
	l, err := graph.LineSubgraphFromEdges(7, []graph.Edge{{U: 1, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if l.Leader() != 2 {
		t.Fatalf("line leader = %v", l.Leader())
	}
	fw, ok := follower.SelectFollowers(l, g, 4)
	if !ok {
		t.Fatal("SelectFollowers failed")
	}
	for _, p := range fw {
		if p == 4 {
			t.Errorf("tainted p4 selected although clean candidates sufficed: %v", fw)
		}
		if p == 2 {
			t.Errorf("leader selected as follower: %v", fw)
		}
	}
}

func TestSelectFollowersShortfall(t *testing.T) {
	l, err := graph.LineSubgraphFromEdges(4, []graph.Edge{{U: 1, V: 2}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	// Possible followers: 1, 3, 4 minus leader 4 → {1, 3}; p2 is a P3
	// middle. Asking for 3 must fail.
	if _, ok := follower.SelectFollowers(l, graph.New(4), 3); ok {
		t.Error("SelectFollowers returned ok with insufficient candidates")
	}
	if fw, ok := follower.SelectFollowers(l, graph.New(4), 2); !ok || len(fw) != 2 {
		t.Errorf("SelectFollowers = %v, %v", fw, ok)
	}
}

func TestEpochAdvanceInstallsDefaultQuorum(t *testing.T) {
	// Build a graph with no independent set of size q = 5 on n = 7:
	// suspicions must pair up 3 disjoint edges... with q=5 and n=7 a
	// vertex cover of size 2 must hit all edges; three disjoint edges
	// need 3 — so (1,2),(3,4),(5,6) block any IS of size 5 and force an
	// epoch advance everywhere.
	fx := newFixture(t, 7, 2, quietOpts(), sim.Options{}, ids.NewProcSet())
	fx.nodes[1].Selector.OnSuspected(ids.NewProcSet(2))
	fx.net.Run(500 * time.Millisecond)
	fx.nodes[1].Selector.OnSuspected(ids.NewProcSet()) // cancel again
	fx.nodes[3].Selector.OnSuspected(ids.NewProcSet(4))
	fx.net.Run(fx.net.Now() + 500*time.Millisecond)
	fx.nodes[3].Selector.OnSuspected(ids.NewProcSet())
	fx.nodes[5].Selector.OnSuspected(ids.NewProcSet(6))
	fx.net.Run(fx.net.Now() + time.Second)
	for p, n := range fx.nodes {
		if n.Selector.Epoch() < 2 {
			t.Errorf("%s: epoch = %d, want ≥ 2", p, n.Selector.Epoch())
		}
	}
	// After the advance only p5's re-stamped suspicion of p6 survives;
	// p5→p6 is a follower-follower edge, so the default leader p1 and
	// default quorum stand.
	for p, n := range fx.nodes {
		if n.Selector.Leader() != 1 {
			t.Errorf("%s: leader = %v, want default p1", p, n.Selector.Leader())
		}
		want := ids.NewLeaderQuorum(1, []ids.ProcessID{1, 2, 3, 4, 5})
		if !n.CurrentQuorum().Equal(want) {
			t.Errorf("%s: quorum = %s, want default %s", p, n.CurrentQuorum(), want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		fx := newFixture(t, 7, 2, quietOpts(), sim.Options{
			Seed:    5,
			Latency: sim.UniformLatency(time.Millisecond, 20*time.Millisecond),
		}, ids.NewProcSet())
		fx.nodes[3].Selector.OnSuspected(ids.NewProcSet(1))
		fx.nodes[6].Selector.OnSuspected(ids.NewProcSet(2))
		fx.net.Run(2 * time.Second)
		var out []string
		for _, p := range fx.net.Config().All() {
			for _, q := range fx.nodes[p].Quorums() {
				out = append(out, p.String()+":"+q.String())
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs diverge: %d vs %d quorum events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
